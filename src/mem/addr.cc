/**
 * @file
 * Address layout implementation.
 */

#include "mem/addr.hh"

#include <stdexcept>

namespace c8t::mem
{

std::uint32_t
log2i(std::uint64_t v)
{
    std::uint32_t bits = 0;
    while (v > 1) {
        v >>= 1;
        ++bits;
    }
    return bits;
}

AddrLayout::AddrLayout(std::uint32_t block_bytes, std::uint32_t num_sets)
    : _blockBytes(block_bytes), _numSets(num_sets)
{
    if (!isPowerOfTwo(block_bytes))
        throw std::invalid_argument("AddrLayout: block size not 2^n");
    if (!isPowerOfTwo(num_sets))
        throw std::invalid_argument("AddrLayout: set count not 2^n");

    _offsetBits = log2i(block_bytes);
    _setBits = log2i(num_sets);
    _blockMask = block_bytes - 1;
    _setMask = num_sets - 1;
}

} // namespace c8t::mem
