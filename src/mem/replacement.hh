/**
 * @file
 * Pluggable replacement policies.
 *
 * The paper's baseline uses LRU; Tree-PLRU, FIFO and Random are
 * provided both as substrate completeness and for the replacement
 * sensitivity ablation (bench/abl_replacement).
 */

#ifndef C8T_MEM_REPLACEMENT_HH
#define C8T_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/rng.hh"

namespace c8t::mem
{

/** Replacement policy selector. */
enum class ReplKind : std::uint8_t {
    Lru,
    TreePlru,
    Fifo,
    Random,
};

/** Human readable policy name. */
const char *toString(ReplKind k);

/** Parse a policy name ("lru", "plru", "fifo", "random").
 *  @throws std::invalid_argument on unknown names. */
ReplKind parseReplKind(const std::string &name);

/**
 * Replacement state for one cache (all sets).
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Record a hit/use of (set, way). */
    virtual void touch(std::uint32_t set, std::uint32_t way) = 0;

    /** Record a fill into (set, way). */
    virtual void insert(std::uint32_t set, std::uint32_t way) = 0;

    /**
     * Pick the victim way of @p set. Invalid ways (bit clear in
     * @p valid_mask) are preferred before any replacement heuristics.
     */
    virtual std::uint32_t victim(std::uint32_t set,
                                 std::uint64_t valid_mask) = 0;

    /** Policy name. */
    virtual std::string name() const = 0;
};

/**
 * Construct a policy instance.
 *
 * @param kind Policy selector.
 * @param sets Number of sets.
 * @param ways Associativity (<= 64).
 * @param seed Seed for the Random policy (ignored by others).
 */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplKind kind, std::uint32_t sets, std::uint32_t ways,
                      std::uint64_t seed = 12345);

/** True LRU via per-set recency stamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways);

    void touch(std::uint32_t set, std::uint32_t way) override;
    void insert(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set,
                         std::uint64_t valid_mask) override;
    std::string name() const override { return "lru"; }

  private:
    std::uint32_t _ways;
    std::uint64_t _clock = 0;
    std::vector<std::uint64_t> _stamp; // [set * ways + way]
};

/** Tree pseudo-LRU (binary decision tree per set; ways must be 2^n). */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(std::uint32_t sets, std::uint32_t ways);

    void touch(std::uint32_t set, std::uint32_t way) override;
    void insert(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set,
                         std::uint64_t valid_mask) override;
    std::string name() const override { return "plru"; }

  private:
    std::uint32_t _ways;
    std::uint32_t _nodes; // ways - 1 internal nodes per set
    std::vector<std::uint8_t> _tree; // [set * nodes + node]
};

/** FIFO: evict in fill order. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    FifoPolicy(std::uint32_t sets, std::uint32_t ways);

    void touch(std::uint32_t set, std::uint32_t way) override;
    void insert(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set,
                         std::uint64_t valid_mask) override;
    std::string name() const override { return "fifo"; }

  private:
    std::uint32_t _ways;
    std::uint64_t _clock = 0;
    std::vector<std::uint64_t> _fillStamp; // [set * ways + way]
};

/** Uniform random victim selection (deterministic seed). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint32_t sets, std::uint32_t ways,
                 std::uint64_t seed);

    void touch(std::uint32_t set, std::uint32_t way) override;
    void insert(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set,
                         std::uint64_t valid_mask) override;
    std::string name() const override { return "random"; }

  private:
    std::uint32_t _ways;
    trace::Rng _rng;
};

} // namespace c8t::mem

#endif // C8T_MEM_REPLACEMENT_HH
