/**
 * @file
 * Open-addressing hash map from word-aligned addresses to 64-bit
 * values, built for the simulation hot paths.
 *
 * std::unordered_map allocates one node per insertion, which put a heap
 * allocation on every first-touch store of the functional memory and of
 * the Markov stream's shadow state. WordMap stores its slots in one
 * flat array (linear probing, power-of-two capacity), so the only
 * allocations are the geometric capacity doublings — amortized zero per
 * insertion, and exactly zero after reserve().
 *
 * Erasure uses backward-shift deletion (no tombstones), so lookup cost
 * stays bounded under the functional memory's write-zero-erases-word
 * sparsity rule.
 */

#ifndef C8T_MEM_WORD_MAP_HH
#define C8T_MEM_WORD_MAP_HH

#include <cassert>
#include <cstdint>
#include <vector>

namespace c8t::mem
{

/**
 * Flat hash map: word-aligned 64-bit key -> 64-bit value.
 *
 * Keys must have their low three bits clear (word alignment); the
 * all-ones pattern is reserved as the empty-slot sentinel.
 */
class WordMap
{
  public:
    /** Initial capacity is allocated lazily on the first insertion. */
    WordMap() = default;

    /** Value stored under @p key, or 0 when absent. */
    std::uint64_t get(std::uint64_t key) const
    {
        assert((key & 7ull) == 0 && "WordMap keys are word aligned");
        if (_slots.empty())
            return 0;
        for (std::size_t i = indexOf(key);; i = (i + 1) & _mask) {
            if (_slots[i].key == key)
                return _slots[i].value;
            if (_slots[i].key == kEmpty)
                return 0;
        }
    }

    /** True when @p key holds an entry (even a zero value). */
    bool contains(std::uint64_t key) const
    {
        assert((key & 7ull) == 0);
        if (_slots.empty())
            return false;
        for (std::size_t i = indexOf(key);; i = (i + 1) & _mask) {
            if (_slots[i].key == key)
                return true;
            if (_slots[i].key == kEmpty)
                return false;
        }
    }

    /** Insert or overwrite @p key -> @p value. */
    void set(std::uint64_t key, std::uint64_t value)
    {
        assert((key & 7ull) == 0);
        if (_slots.empty() || (_size + 1) * 4 > capacity() * 3)
            grow();
        for (std::size_t i = indexOf(key);; i = (i + 1) & _mask) {
            if (_slots[i].key == key) {
                _slots[i].value = value;
                return;
            }
            if (_slots[i].key == kEmpty) {
                _slots[i] = {key, value};
                ++_size;
                return;
            }
        }
    }

    /** Remove @p key's entry; no-op when absent. */
    void erase(std::uint64_t key)
    {
        assert((key & 7ull) == 0);
        if (_slots.empty())
            return;
        std::size_t i = indexOf(key);
        for (;; i = (i + 1) & _mask) {
            if (_slots[i].key == kEmpty)
                return;
            if (_slots[i].key == key)
                break;
        }
        --_size;
        // Backward-shift deletion: close the probe chain so later keys
        // that probed past the vacated slot remain reachable.
        std::size_t hole = i;
        for (std::size_t j = (hole + 1) & _mask; _slots[j].key != kEmpty;
             j = (j + 1) & _mask) {
            const std::size_t home = indexOf(_slots[j].key);
            // Keep the entry when its home lies cyclically in (hole, j].
            const bool in_place = hole <= j ? (home > hole && home <= j)
                                            : (home > hole || home <= j);
            if (in_place)
                continue;
            _slots[hole] = _slots[j];
            hole = j;
        }
        _slots[hole].key = kEmpty;
    }

    /** Entries stored. */
    std::size_t size() const { return _size; }

    /** Drop every entry; capacity is kept (no deallocation). */
    void clear()
    {
        for (Slot &s : _slots)
            s.key = kEmpty;
        _size = 0;
    }

    /**
     * Grow the table so @p entries fit without further allocation.
     * Existing contents are preserved.
     */
    void reserve(std::size_t entries)
    {
        std::size_t cap = kMinCapacity;
        while (entries * 4 > cap * 3)
            cap *= 2;
        if (cap > capacity())
            rehash(cap);
    }

    /** Visit every (key, value) pair in unspecified order. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const Slot &s : _slots) {
            if (s.key != kEmpty)
                fn(s.key, s.value);
        }
    }

  private:
    struct Slot
    {
        std::uint64_t key = kEmpty;
        std::uint64_t value = 0;
    };

    static constexpr std::uint64_t kEmpty = ~0ull;
    static constexpr std::size_t kMinCapacity = 64;

    std::size_t capacity() const { return _slots.size(); }

    /** Home slot of @p key (splitmix64 finaliser as the hash). */
    std::size_t indexOf(std::uint64_t key) const
    {
        std::uint64_t h = key;
        h ^= h >> 30;
        h *= 0xbf58476d1ce4e5b9ull;
        h ^= h >> 27;
        h *= 0x94d049bb133111ebull;
        h ^= h >> 31;
        return static_cast<std::size_t>(h) & _mask;
    }

    void grow()
    {
        rehash(_slots.empty() ? kMinCapacity : capacity() * 2);
    }

    void rehash(std::size_t new_capacity)
    {
        std::vector<Slot> old;
        old.swap(_slots);
        _slots.assign(new_capacity, Slot{});
        _mask = new_capacity - 1;
        _size = 0;
        for (const Slot &s : old) {
            if (s.key != kEmpty)
                set(s.key, s.value);
        }
    }

    std::vector<Slot> _slots;
    std::size_t _mask = 0;
    std::size_t _size = 0;
};

} // namespace c8t::mem

#endif // C8T_MEM_WORD_MAP_HH
