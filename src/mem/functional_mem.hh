/**
 * @file
 * Sparse functional backing memory.
 *
 * Holds the architectural state below the cache. Storage is a sparse
 * map of 64-bit words; untouched memory reads as zero. Byte-granular
 * accessors let the cache move arbitrary block sizes. The map is a
 * flat open-addressing table (mem/word_map.hh), so servicing a miss
 * never allocates once the table has grown to the working set — the
 * controller hot path stays heap-quiet.
 */

#ifndef C8T_MEM_FUNCTIONAL_MEM_HH
#define C8T_MEM_FUNCTIONAL_MEM_HH

#include <cstdint>
#include <vector>

#include "mem/addr.hh"
#include "mem/word_map.hh"

namespace c8t::mem
{

/**
 * Sparse, word-granular functional memory.
 */
class FunctionalMemory
{
  public:
    /** Read the aligned 64-bit word containing @p addr. */
    std::uint64_t readWord(Addr addr) const;

    /** Write the aligned 64-bit word containing @p addr. */
    void writeWord(Addr addr, std::uint64_t value);

    /** Read @p len bytes starting at @p addr into @p out. */
    void readBytes(Addr addr, std::uint8_t *out, std::size_t len) const;

    /** Convenience: read @p len bytes as a vector. */
    std::vector<std::uint8_t> readBytes(Addr addr, std::size_t len) const;

    /** Write @p len bytes starting at @p addr. */
    void writeBytes(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Number of distinct words currently holding non-zero data. */
    std::size_t touchedWords() const { return _words.size(); }

    /** Drop all contents (memory reads as zero again). */
    void clear() { _words.clear(); }

    /** Pre-size the word table so @p words fit without rehashing
     *  (makes subsequent writes strictly allocation-free). */
    void reserve(std::size_t words) { _words.reserve(words); }

  private:
    WordMap _words;
};

} // namespace c8t::mem

#endif // C8T_MEM_FUNCTIONAL_MEM_HH
