/**
 * @file
 * Sparse functional backing memory.
 *
 * Holds the architectural state below the cache. Storage is a sparse
 * set of zero-filled 4 KiB pages indexed by an open-addressing page
 * table: untouched memory reads as zero, and the block-granular
 * transfers on the miss path (readBytes/writeBytes of a whole cache
 * block) cost one page-table probe plus one memcpy instead of the old
 * per-word hash probe with per-byte shifting — the dominant cost of
 * servicing a miss in the sweep profile.
 *
 * Allocation discipline: pages are allocated once on first touch and
 * recycled by clear(); reserve() pre-sizes both the page table and the
 * page pool, after which every access path is strictly allocation-free
 * (tests/hot_path_alloc_test.cc enforces this through a counting
 * global allocator).
 */

#ifndef C8T_MEM_FUNCTIONAL_MEM_HH
#define C8T_MEM_FUNCTIONAL_MEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/addr.hh"

namespace c8t::mem
{

/**
 * Sparse, page-backed functional memory with word semantics identical
 * to the historical word-map version: reads of untouched memory yield
 * zero, and touchedWords() counts words currently holding non-zero
 * data.
 */
class FunctionalMemory
{
  public:
    /** Backing page size in bytes (aligned power of two). */
    static constexpr std::size_t pageBytes = 4096;

    /** Read the aligned 64-bit word containing @p addr. */
    std::uint64_t readWord(Addr addr) const;

    /** Write the aligned 64-bit word containing @p addr. */
    void writeWord(Addr addr, std::uint64_t value);

    /** Read @p len bytes starting at @p addr into @p out. */
    void readBytes(Addr addr, std::uint8_t *out, std::size_t len) const;

    /** Convenience: read @p len bytes as a vector. */
    std::vector<std::uint8_t> readBytes(Addr addr, std::size_t len) const;

    /** Write @p len bytes starting at @p addr. */
    void writeBytes(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Number of distinct words currently holding non-zero data. */
    std::size_t touchedWords() const;

    /** Drop all contents (memory reads as zero again). Pages are
     *  recycled, not freed, so refilling does not allocate. */
    void clear();

    /** Pre-size the page table and page pool so @p words words fit
     *  without allocating (makes subsequent accesses strictly
     *  allocation-free). */
    void reserve(std::size_t words);

  private:
    /** Sentinel for an empty page-table slot (page bases are aligned,
     *  so an all-ones key can never collide with one). */
    static constexpr Addr kNoPage = ~Addr(0);

    /** Base address of the page containing @p addr. */
    static constexpr Addr pageBase(Addr addr)
    {
        return addr & ~static_cast<Addr>(pageBytes - 1);
    }

    const std::uint8_t *findPage(Addr page_base) const;
    std::uint8_t *ensurePage(Addr page_base);
    void growTable(std::size_t min_capacity);
    std::uint32_t takePage();

    /**
     * One-entry most-recently-used page cache in front of the page
     * table. Block transfers on the miss path exhibit strong page
     * locality, so this short-circuits most hash probes. Page storage
     * is per-page heap arrays whose addresses are stable across table
     * growth; only clear() invalidates the cached pointer.
     */
    mutable Addr _lastBase = kNoPage;
    mutable std::uint8_t *_lastPage = nullptr;

    /** Open-addressing page table: _keys/_pageOf are parallel. */
    std::vector<Addr> _keys;
    std::vector<std::uint32_t> _pageOf;
    std::size_t _used = 0;

    /** Page pool; indices in _freePages are zeroed and reusable. */
    std::vector<std::unique_ptr<std::uint8_t[]>> _pages;
    std::vector<std::uint32_t> _freePages;
};

} // namespace c8t::mem

#endif // C8T_MEM_FUNCTIONAL_MEM_HH
