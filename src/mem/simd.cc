/**
 * @file
 * SIMD level resolution (environment override + CPU detection).
 */

#include "mem/simd.hh"

#include <chrono>
#include <cstdlib>

namespace c8t::mem::simd
{

namespace
{

/** Sentinel for "not resolved yet". */
constexpr int kUnresolved = -1;

/** Resolved level, or kUnresolved before first use. */
int g_level = kUnresolved;

/**
 * Time one kernel over a small in-cache fixture; returns the best of
 * three rounds (seconds). The fixture mirrors the micro bench: 64
 * sets x 8 ways of xorshift tags, needles cycling through hit ways.
 */
double
timeLevel(SimdLevel level, const Addr *tags, const Addr *needles,
          std::uint32_t sets, std::uint32_t ways)
{
    using Clock = std::chrono::steady_clock;
    constexpr int kRounds = 3;
    constexpr int kPasses = 64;
    double best = 1e30;
    std::uint64_t sink = 0;
    for (int round = -1; round < kRounds; ++round) { // -1 = warm-up
        const auto t0 = Clock::now();
        for (int pass = 0; pass < kPasses; ++pass) {
            for (std::uint32_t s = 0; s < sets; ++s)
                sink += matchBits(level, tags + s * ways, ways,
                                  needles[s]);
        }
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (round >= 0 && secs < best)
            best = secs;
    }
    // Keep the accumulator observable so the loops cannot be elided.
    static volatile std::uint64_t g_sink;
    g_sink = sink;
    return best;
}

/** Measure every supported kernel and return the fastest. */
SimdLevel
calibrate()
{
    const SimdLevel best = bestSupported();
    if (best == SimdLevel::Scalar)
        return best;

    constexpr std::uint32_t kSets = 64;
    constexpr std::uint32_t kWays = 8;
    Addr tags[kSets * kWays];
    Addr needles[kSets];
    std::uint64_t x = 0x9e3779b97f4a7c15ull; // xorshift64
    for (auto &t : tags) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t = static_cast<Addr>(x);
    }
    for (std::uint32_t s = 0; s < kSets; ++s)
        needles[s] = tags[s * kWays + s % kWays]; // always one hit

    // Highest level first so an (unlikely) exact tie keeps the wider
    // kernel; every candidate produces bit-identical masks, so the
    // stopwatch is the only tie-breaker that matters.
    SimdLevel fastest = best;
    double fastest_secs =
        timeLevel(best, tags, needles, kSets, kWays);
    for (int l = static_cast<int>(best) - 1; l >= 0; --l) {
        const SimdLevel level = static_cast<SimdLevel>(l);
        const double secs =
            timeLevel(level, tags, needles, kSets, kWays);
        if (secs < fastest_secs) {
            fastest = level;
            fastest_secs = secs;
        }
    }
    return fastest;
}

} // anonymous namespace

const char *
toString(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Sse2:
        return "sse2";
      case SimdLevel::Avx2:
        return "avx2";
    }
    return "?";
}

SimdLevel
bestSupported()
{
#if defined(C8T_SIMD_X86_64) && defined(C8T_HAVE_AVX2) && \
    defined(__GNUC__)
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
#endif
#ifdef C8T_SIMD_X86_64
    return SimdLevel::Sse2; // baseline on x86-64
#else
    return SimdLevel::Scalar;
#endif
}

SimdLevel
autoCalibratedLevel()
{
    static const SimdLevel calibrated = calibrate();
    return calibrated;
}

SimdLevel
parseLevel(const std::string &spec)
{
    const SimdLevel best = bestSupported();
    if (spec == "scalar")
        return SimdLevel::Scalar;
    if (spec == "sse2")
        return best < SimdLevel::Sse2 ? best : SimdLevel::Sse2;
    if (spec == "avx2")
        return best < SimdLevel::Avx2 ? best : SimdLevel::Avx2;
    // "auto", empty, or anything unrecognised: the measured-fastest
    // level — not blindly the widest, which loses ~2x on hosts that
    // emulate 256-bit ops.
    return autoCalibratedLevel();
}

SimdLevel
activeLevel()
{
    if (g_level == kUnresolved) {
        const char *env = std::getenv("C8T_SIMD");
        g_level =
            static_cast<int>(parseLevel(env ? std::string(env) : ""));
    }
    return static_cast<SimdLevel>(g_level);
}

SimdLevel
setLevel(SimdLevel level)
{
    const SimdLevel best = bestSupported();
    g_level = static_cast<int>(level < best ? level : best);
    return static_cast<SimdLevel>(g_level);
}

#if defined(C8T_SIMD_X86_64) && !defined(C8T_HAVE_AVX2)
// Toolchain cannot target AVX2: the Avx2 level is never selected by
// bestSupported(), but keep the symbol defined for direct kernel
// benchmarking (it reports SSE2 numbers).
std::uint64_t
matchBitsAvx2(const Addr *tags, std::uint32_t ways, Addr tag)
{
    return matchBitsSse2(tags, ways, tag);
}
#endif

} // namespace c8t::mem::simd
