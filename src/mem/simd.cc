/**
 * @file
 * SIMD level resolution (environment override + CPU detection).
 */

#include "mem/simd.hh"

#include <cstdlib>

namespace c8t::mem::simd
{

namespace
{

/** Sentinel for "not resolved yet". */
constexpr int kUnresolved = -1;

/** Resolved level, or kUnresolved before first use. */
int g_level = kUnresolved;

} // anonymous namespace

const char *
toString(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Sse2:
        return "sse2";
      case SimdLevel::Avx2:
        return "avx2";
    }
    return "?";
}

SimdLevel
bestSupported()
{
#if defined(C8T_SIMD_X86_64) && defined(C8T_HAVE_AVX2) && \
    defined(__GNUC__)
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
#endif
#ifdef C8T_SIMD_X86_64
    return SimdLevel::Sse2; // baseline on x86-64
#else
    return SimdLevel::Scalar;
#endif
}

SimdLevel
parseLevel(const std::string &spec)
{
    const SimdLevel best = bestSupported();
    if (spec == "scalar")
        return SimdLevel::Scalar;
    if (spec == "sse2")
        return best < SimdLevel::Sse2 ? best : SimdLevel::Sse2;
    if (spec == "avx2")
        return best < SimdLevel::Avx2 ? best : SimdLevel::Avx2;
    // "auto", empty, or anything unrecognised: the best we can do.
    return best;
}

SimdLevel
activeLevel()
{
    if (g_level == kUnresolved) {
        const char *env = std::getenv("C8T_SIMD");
        g_level =
            static_cast<int>(parseLevel(env ? std::string(env) : ""));
    }
    return static_cast<SimdLevel>(g_level);
}

SimdLevel
setLevel(SimdLevel level)
{
    const SimdLevel best = bestSupported();
    g_level = static_cast<int>(level < best ? level : best);
    return static_cast<SimdLevel>(g_level);
}

#if defined(C8T_SIMD_X86_64) && !defined(C8T_HAVE_AVX2)
// Toolchain cannot target AVX2: the Avx2 level is never selected by
// bestSupported(), but keep the symbol defined for direct kernel
// benchmarking (it reports SSE2 numbers).
std::uint64_t
matchBitsAvx2(const Addr *tags, std::uint32_t ways, Addr tag)
{
    return matchBitsSse2(tags, ways, tag);
}
#endif

} // namespace c8t::mem::simd
