/**
 * @file
 * Tag array implementation.
 */

#include "mem/cache.hh"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace c8t::mem
{

void
CacheConfig::validate() const
{
    if (!isPowerOfTwo(blockBytes) || blockBytes < 8)
        throw std::invalid_argument(
            "CacheConfig: block size must be a power of two >= 8");
    if (ways == 0 || ways > 64)
        throw std::invalid_argument("CacheConfig: ways must be in 1..64");
    const std::uint64_t set_bytes =
        static_cast<std::uint64_t>(ways) * blockBytes;
    if (sizeBytes == 0 || sizeBytes % set_bytes != 0)
        throw std::invalid_argument(
            "CacheConfig: size must be a multiple of ways * blockBytes");
    if (!isPowerOfTwo(numSets()))
        throw std::invalid_argument(
            "CacheConfig: set count must be a power of two");
}

std::string
CacheConfig::toString() const
{
    std::ostringstream os;
    os << (sizeBytes >> 10) << "KB/" << ways << "w/" << blockBytes << "B/"
       << c8t::mem::toString(replacement);
    return os.str();
}

TagArray::TagArray(const CacheConfig &config)
    : _config(config),
      _layout((config.validate(), config.blockBytes), config.numSets()),
      _lines(static_cast<std::size_t>(config.numSets()) * config.ways),
      _repl(makeReplacementPolicy(config.replacement, config.numSets(),
                                  config.ways))
{}

TagArray::Line &
TagArray::lineAt(std::uint32_t set, std::uint32_t way)
{
    assert(set < _config.numSets() && way < _config.ways);
    return _lines[static_cast<std::size_t>(set) * _config.ways + way];
}

const TagArray::Line &
TagArray::lineAt(std::uint32_t set, std::uint32_t way) const
{
    assert(set < _config.numSets() && way < _config.ways);
    return _lines[static_cast<std::size_t>(set) * _config.ways + way];
}

LookupResult
TagArray::probe(Addr addr) const
{
    const std::uint32_t set = _layout.setOf(addr);
    const Addr tag = _layout.tagOf(addr);
    for (std::uint32_t w = 0; w < _config.ways; ++w) {
        const Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag)
            return {true, w};
    }
    return {false, 0};
}

LookupResult
TagArray::access(Addr addr)
{
    const LookupResult r = probe(addr);
    if (r.hit) {
        ++_hits;
        _repl->touch(_layout.setOf(addr), r.way);
    } else {
        ++_misses;
    }
    return r;
}

FillResult
TagArray::fill(Addr addr)
{
    assert(!probe(addr).hit && "fill of a resident block");

    const std::uint32_t set = _layout.setOf(addr);
    const std::uint32_t way = _repl->victim(set, validMask(set));

    FillResult result;
    result.way = way;

    Line &line = lineAt(set, way);
    if (line.valid) {
        result.evictedValid = true;
        result.evictedDirty = line.dirty;
        result.evictedBlockAddr = _layout.blockAddr(line.tag, set);
        ++_evictions;
        if (line.dirty)
            ++_dirtyEvictions;
    }

    line.tag = _layout.tagOf(addr);
    line.valid = true;
    line.dirty = false;
    _repl->insert(set, way);
    return result;
}

void
TagArray::markDirty(Addr addr)
{
    const LookupResult r = probe(addr);
    assert(r.hit && "markDirty on a non-resident block");
    lineAt(_layout.setOf(addr), r.way).dirty = true;
}

bool
TagArray::isDirty(std::uint32_t set, std::uint32_t way) const
{
    return lineAt(set, way).dirty;
}

void
TagArray::clearDirty(std::uint32_t set, std::uint32_t way)
{
    lineAt(set, way).dirty = false;
}

bool
TagArray::isValid(std::uint32_t set, std::uint32_t way) const
{
    return lineAt(set, way).valid;
}

Addr
TagArray::tagAt(std::uint32_t set, std::uint32_t way) const
{
    return lineAt(set, way).tag;
}

Addr
TagArray::blockAddrAt(std::uint32_t set, std::uint32_t way) const
{
    const Line &line = lineAt(set, way);
    assert(line.valid);
    return _layout.blockAddr(line.tag, set);
}

std::vector<Addr>
TagArray::tagsOfSet(std::uint32_t set) const
{
    std::vector<Addr> tags(_config.ways, 0);
    copyTagsOfSet(set, tags.data());
    return tags;
}

void
TagArray::copyTagsOfSet(std::uint32_t set, Addr *out) const
{
    for (std::uint32_t w = 0; w < _config.ways; ++w) {
        const Line &line = lineAt(set, w);
        out[w] = line.valid ? line.tag : 0;
    }
}

std::uint64_t
TagArray::validMask(std::uint32_t set) const
{
    std::uint64_t mask = 0;
    for (std::uint32_t w = 0; w < _config.ways; ++w) {
        if (lineAt(set, w).valid)
            mask |= 1ull << w;
    }
    return mask;
}

void
TagArray::registerStats(stats::Registry &reg)
{
    reg.add(_hits);
    reg.add(_misses);
    reg.add(_evictions);
    reg.add(_dirtyEvictions);
}

void
TagArray::resetCounters()
{
    _hits.reset();
    _misses.reset();
    _evictions.reset();
    _dirtyEvictions.reset();
}

} // namespace c8t::mem
