/**
 * @file
 * Tag array implementation.
 */

#include "mem/cache.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace c8t::mem
{

namespace
{

/** Largest associativity the byte-per-way LRU recency word covers. */
constexpr std::uint32_t kPackedLruMaxWays = 8;

} // anonymous namespace

void
CacheConfig::validate() const
{
    if (!isPowerOfTwo(blockBytes) || blockBytes < 8)
        throw std::invalid_argument(
            "CacheConfig: block size must be a power of two >= 8");
    if (ways == 0 || ways > 64)
        throw std::invalid_argument("CacheConfig: ways must be in 1..64");
    const std::uint64_t set_bytes =
        static_cast<std::uint64_t>(ways) * blockBytes;
    if (sizeBytes == 0 || sizeBytes % set_bytes != 0)
        throw std::invalid_argument(
            "CacheConfig: size must be a multiple of ways * blockBytes");
    if (!isPowerOfTwo(numSets()))
        throw std::invalid_argument(
            "CacheConfig: set count must be a power of two");
}

std::string
CacheConfig::toString() const
{
    std::ostringstream os;
    os << (sizeBytes >> 10) << "KB/" << ways << "w/" << blockBytes << "B/"
       << c8t::mem::toString(replacement);
    return os.str();
}

TagArray::TagArray(const CacheConfig &config)
    : _config(config),
      _layout((config.validate(), config.blockBytes), config.numSets()),
      _ways(config.ways),
      _simd(simd::activeLevel()),
      _tagStore(static_cast<std::size_t>(config.numSets()) * config.ways,
                0),
      _valid(config.numSets(), 0),
      _dirty(config.numSets(), 0),
      _replWord(config.numSets(), 0)
{
    switch (config.replacement) {
      case ReplKind::Lru:
        if (_ways <= kPackedLruMaxWays) {
            _mode = ReplMode::PackedLru;
            // Identity recency order (byte i = way i, MRU at byte 0).
            // The initial order is never consulted: victims prefer
            // invalid ways, and every way is touched by its fill
            // before the set can be full.
            std::uint64_t init = 0;
            for (std::uint32_t w = 0; w < _ways; ++w)
                init |= static_cast<std::uint64_t>(w) << (8 * w);
            std::fill(_replWord.begin(), _replWord.end(), init);
        } else {
            _mode = ReplMode::Oracle;
        }
        break;
      case ReplKind::TreePlru:
        assert(_ways >= 2 && isPowerOfTwo(_ways));
        _mode = ReplMode::PackedPlru;
        break;
      case ReplKind::Fifo:
        _mode = ReplMode::PackedFifo;
        break;
      case ReplKind::Random:
        _mode = ReplMode::PackedRandom;
        break;
      default:
        _mode = ReplMode::Oracle;
        break;
    }
    if (_mode == ReplMode::Oracle)
        _repl = makeReplacementPolicy(config.replacement,
                                      config.numSets(), config.ways);
}

void
TagArray::markDirty(Addr addr)
{
    const LookupResult r = probe(addr);
    assert(r.hit && "markDirty on a non-resident block");
    markDirtyWay(_layout.setOf(addr), r.way);
}

Addr
TagArray::blockAddrAt(std::uint32_t set, std::uint32_t way) const
{
    assert(isValid(set, way));
    return _layout.blockAddr(tagAt(set, way), set);
}

std::vector<Addr>
TagArray::tagsOfSet(std::uint32_t set) const
{
    std::vector<Addr> tags(_config.ways, 0);
    copyTagsOfSet(set, tags.data());
    return tags;
}

void
TagArray::copyTagsOfSet(std::uint32_t set, Addr *out) const
{
    const Addr *tags = &_tagStore[static_cast<std::size_t>(set) * _ways];
    const std::uint64_t valid = _valid[set];
    for (std::uint32_t w = 0; w < _ways; ++w)
        out[w] = ((valid >> w) & 1) ? tags[w] : 0;
}

void
TagArray::reservePlan(std::size_t capacity)
{
    if (_plan.set.size() >= capacity && !_planHead.empty())
        return;
    _plan.set.resize(capacity);
    _plan.tag.resize(capacity);
    _plan.way.resize(capacity);
    _plan.flags.resize(capacity);
    _plan.replWord.resize(capacity);
    _plan.evictedAddr.resize(capacity);
    _planNext.resize(capacity);
    _planTouched.reserve(capacity);
    _planHead.assign(_layout.numSets(), kPlanNone);
}

template <TagArray::ReplMode M>
void
TagArray::planSets(const trace::MemAccess *chunk)
{
    const std::uint32_t *next = _planNext.data();

    for (const std::uint32_t set : _planTouched) {
        // Stack-local copy of the set's state: the walk below is pure
        // prediction — nothing is committed until the controller
        // applies the plan in original request order.
        Addr tags[kMaxPlannedWays];
        const Addr *row =
            &_tagStore[static_cast<std::size_t>(set) * _ways];
        for (std::uint32_t w = 0; w < _ways; ++w)
            tags[w] = row[w];
        std::uint64_t valid = _valid[set];
        std::uint64_t dirty = _dirty[set];
        std::uint64_t repl = _replWord[set];

        for (std::uint32_t i = _planHead[set]; i != kPlanNone;
             i = next[i]) {
            const Addr tag = _plan.tag[i];
            const std::uint64_t m =
                simd::matchBits(_simd, tags, _ways, tag) & valid;
            std::uint32_t w;
            std::uint8_t flags;
            if (m) {
                w = static_cast<std::uint32_t>(std::countr_zero(m));
                flags = ChunkPlan::kHit;
                ++_plan.hits;
                if constexpr (M == ReplMode::PackedLru)
                    repl = lruMovedToFront(repl, w);
                else if constexpr (M == ReplMode::PackedPlru)
                    repl = plruPointedAway(repl, _ways, w);
                // FIFO: hits do not move the fill counter.
            } else {
                ++_plan.misses;
                flags = 0;
                // Victim choice, identical to victimRepl(): invalid
                // ways first in ascending order, then the packed
                // heuristic.
                w = static_cast<std::uint32_t>(std::countr_one(valid));
                if (w >= _ways) {
                    if constexpr (M == ReplMode::PackedLru)
                        w = static_cast<std::uint32_t>(
                            (repl >> (8 * (_ways - 1))) & 0xffu);
                    else if constexpr (M == ReplMode::PackedPlru)
                        w = plruVictimOf(repl, _ways);
                    else
                        w = static_cast<std::uint32_t>(repl % _ways);
                }
                const std::uint64_t bit = 1ull << w;
                if (valid & bit) {
                    flags |= ChunkPlan::kEvictValid;
                    ++_plan.evictions;
                    if (dirty & bit) {
                        flags |= ChunkPlan::kEvictDirty;
                        ++_plan.dirtyEvictions;
                    }
                    _plan.evictedAddr[i] =
                        _layout.blockAddr(tags[w], set);
                }
                tags[w] = tag;
                valid |= bit;
                dirty &= ~bit;
                if constexpr (M == ReplMode::PackedLru)
                    repl = lruMovedToFront(repl, w);
                else if constexpr (M == ReplMode::PackedPlru)
                    repl = plruPointedAway(repl, _ways, w);
                else
                    ++repl; // FIFO fill counter
            }
            if (chunk[i].isWrite())
                dirty |= 1ull << w; // markDirtyWay
            _plan.way[i] = static_cast<std::uint8_t>(w);
            _plan.flags[i] = flags;
            _plan.replWord[i] = repl;
        }
    }
}

const ChunkPlan &
TagArray::planChunk(const trace::MemAccess *chunk, std::size_t count)
{
    assert(planEligible() && "planChunk on an ineligible shape");
    reservePlan(count);

    // Stage A+B fused: decode every address once (the scheme loops
    // reuse the plan's set/tag instead of re-deriving them) while
    // threading the chunk into per-set chains. The single pass runs
    // backwards: building with push-front leaves each chain in
    // ascending access order, so per-set order — the only order tag
    // evolution depends on — is preserved exactly.
    _planTouched.clear();
    std::uint64_t reads = 0;
    for (std::size_t r = count; r-- > 0;) {
        const auto i = static_cast<std::uint32_t>(r);
        std::uint32_t set;
        Addr tag;
        _layout.splitOf(chunk[r].addr, set, tag);
        _plan.set[i] = set;
        _plan.tag[i] = tag;
        reads += chunk[r].isRead();
        if (_planHead[set] == kPlanNone)
            _planTouched.push_back(set);
        _planNext[i] = _planHead[set];
        _planHead[set] = i;
    }
    _plan.reads = reads;
    _plan.writes = count - reads;
    _plan.hits = 0;
    _plan.misses = 0;
    _plan.evictions = 0;
    _plan.dirtyEvictions = 0;
    _plan.count = count;

    // Stage C: simulate each touched set's batch.
    switch (_mode) {
      case ReplMode::PackedLru:
        planSets<ReplMode::PackedLru>(chunk);
        break;
      case ReplMode::PackedPlru:
        planSets<ReplMode::PackedPlru>(chunk);
        break;
      default:
        planSets<ReplMode::PackedFifo>(chunk);
        break;
    }

    // Reset only the touched heads so the next chunk starts clean.
    for (const std::uint32_t set : _planTouched)
        _planHead[set] = kPlanNone;
    return _plan;
}

void
TagArray::registerStats(stats::Registry &reg, const std::string &prefix)
{
    reg.add(_hits, prefix);
    reg.add(_misses, prefix);
    reg.add(_evictions, prefix);
    reg.add(_dirtyEvictions, prefix);
}

void
TagArray::resetCounters()
{
    _hits.reset();
    _misses.reset();
    _evictions.reset();
    _dirtyEvictions.reset();
}

} // namespace c8t::mem
