/**
 * @file
 * Tag array implementation.
 */

#include "mem/cache.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace c8t::mem
{

namespace
{

/** Largest associativity the byte-per-way LRU recency word covers. */
constexpr std::uint32_t kPackedLruMaxWays = 8;

} // anonymous namespace

void
CacheConfig::validate() const
{
    if (!isPowerOfTwo(blockBytes) || blockBytes < 8)
        throw std::invalid_argument(
            "CacheConfig: block size must be a power of two >= 8");
    if (ways == 0 || ways > 64)
        throw std::invalid_argument("CacheConfig: ways must be in 1..64");
    const std::uint64_t set_bytes =
        static_cast<std::uint64_t>(ways) * blockBytes;
    if (sizeBytes == 0 || sizeBytes % set_bytes != 0)
        throw std::invalid_argument(
            "CacheConfig: size must be a multiple of ways * blockBytes");
    if (!isPowerOfTwo(numSets()))
        throw std::invalid_argument(
            "CacheConfig: set count must be a power of two");
}

std::string
CacheConfig::toString() const
{
    std::ostringstream os;
    os << (sizeBytes >> 10) << "KB/" << ways << "w/" << blockBytes << "B/"
       << c8t::mem::toString(replacement);
    return os.str();
}

TagArray::TagArray(const CacheConfig &config)
    : _config(config),
      _layout((config.validate(), config.blockBytes), config.numSets()),
      _ways(config.ways),
      _tagStore(static_cast<std::size_t>(config.numSets()) * config.ways,
                0),
      _valid(config.numSets(), 0),
      _dirty(config.numSets(), 0),
      _replWord(config.numSets(), 0)
{
    switch (config.replacement) {
      case ReplKind::Lru:
        if (_ways <= kPackedLruMaxWays) {
            _mode = ReplMode::PackedLru;
            // Identity recency order (byte i = way i, MRU at byte 0).
            // The initial order is never consulted: victims prefer
            // invalid ways, and every way is touched by its fill
            // before the set can be full.
            std::uint64_t init = 0;
            for (std::uint32_t w = 0; w < _ways; ++w)
                init |= static_cast<std::uint64_t>(w) << (8 * w);
            std::fill(_replWord.begin(), _replWord.end(), init);
        } else {
            _mode = ReplMode::Oracle;
        }
        break;
      case ReplKind::TreePlru:
        assert(_ways >= 2 && isPowerOfTwo(_ways));
        _mode = ReplMode::PackedPlru;
        break;
      case ReplKind::Fifo:
        _mode = ReplMode::PackedFifo;
        break;
      case ReplKind::Random:
        _mode = ReplMode::PackedRandom;
        break;
      default:
        _mode = ReplMode::Oracle;
        break;
    }
    if (_mode == ReplMode::Oracle)
        _repl = makeReplacementPolicy(config.replacement,
                                      config.numSets(), config.ways);
}

void
TagArray::markDirty(Addr addr)
{
    const LookupResult r = probe(addr);
    assert(r.hit && "markDirty on a non-resident block");
    markDirtyWay(_layout.setOf(addr), r.way);
}

Addr
TagArray::blockAddrAt(std::uint32_t set, std::uint32_t way) const
{
    assert(isValid(set, way));
    return _layout.blockAddr(tagAt(set, way), set);
}

std::vector<Addr>
TagArray::tagsOfSet(std::uint32_t set) const
{
    std::vector<Addr> tags(_config.ways, 0);
    copyTagsOfSet(set, tags.data());
    return tags;
}

void
TagArray::copyTagsOfSet(std::uint32_t set, Addr *out) const
{
    const Addr *tags = &_tagStore[static_cast<std::size_t>(set) * _ways];
    const std::uint64_t valid = _valid[set];
    for (std::uint32_t w = 0; w < _ways; ++w)
        out[w] = ((valid >> w) & 1) ? tags[w] : 0;
}

void
TagArray::registerStats(stats::Registry &reg)
{
    reg.add(_hits);
    reg.add(_misses);
    reg.add(_evictions);
    reg.add(_dirtyEvictions);
}

void
TagArray::resetCounters()
{
    _hits.reset();
    _misses.reset();
    _evictions.reset();
    _dirtyEvictions.reset();
}

} // namespace c8t::mem
