/**
 * @file
 * Replacement policy implementations.
 */

#include "mem/replacement.hh"

#include <cassert>
#include <stdexcept>

#include "mem/addr.hh"

namespace c8t::mem
{

const char *
toString(ReplKind k)
{
    switch (k) {
      case ReplKind::Lru:
        return "lru";
      case ReplKind::TreePlru:
        return "plru";
      case ReplKind::Fifo:
        return "fifo";
      case ReplKind::Random:
        return "random";
    }
    return "?";
}

ReplKind
parseReplKind(const std::string &name)
{
    if (name == "lru")
        return ReplKind::Lru;
    if (name == "plru")
        return ReplKind::TreePlru;
    if (name == "fifo")
        return ReplKind::Fifo;
    if (name == "random")
        return ReplKind::Random;
    throw std::invalid_argument("unknown replacement policy: " + name);
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplKind kind, std::uint32_t sets, std::uint32_t ways,
                      std::uint64_t seed)
{
    switch (kind) {
      case ReplKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplKind::TreePlru:
        return std::make_unique<TreePlruPolicy>(sets, ways);
      case ReplKind::Fifo:
        return std::make_unique<FifoPolicy>(sets, ways);
      case ReplKind::Random:
        return std::make_unique<RandomPolicy>(sets, ways, seed);
    }
    throw std::invalid_argument("unknown replacement kind");
}

namespace
{

/**
 * Prefer an invalid way before consulting the policy heuristic.
 * @return The lowest invalid way, or ways if all are valid.
 */
std::uint32_t
firstInvalid(std::uint64_t valid_mask, std::uint32_t ways)
{
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!((valid_mask >> w) & 1))
            return w;
    }
    return ways;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// LruPolicy

LruPolicy::LruPolicy(std::uint32_t sets, std::uint32_t ways)
    : _ways(ways), _stamp(static_cast<std::size_t>(sets) * ways, 0)
{
    assert(ways >= 1 && ways <= 64);
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    _stamp[static_cast<std::size_t>(set) * _ways + way] = ++_clock;
}

void
LruPolicy::insert(std::uint32_t set, std::uint32_t way)
{
    touch(set, way);
}

std::uint32_t
LruPolicy::victim(std::uint32_t set, std::uint64_t valid_mask)
{
    const std::uint32_t inv = firstInvalid(valid_mask, _ways);
    if (inv < _ways)
        return inv;

    std::uint32_t victim_way = 0;
    std::uint64_t oldest = _stamp[static_cast<std::size_t>(set) * _ways];
    for (std::uint32_t w = 1; w < _ways; ++w) {
        const std::uint64_t s =
            _stamp[static_cast<std::size_t>(set) * _ways + w];
        if (s < oldest) {
            oldest = s;
            victim_way = w;
        }
    }
    return victim_way;
}

// ---------------------------------------------------------------------
// TreePlruPolicy

TreePlruPolicy::TreePlruPolicy(std::uint32_t sets, std::uint32_t ways)
    : _ways(ways), _nodes(ways - 1),
      _tree(static_cast<std::size_t>(sets) * (ways - 1), 0)
{
    assert(ways >= 2 && isPowerOfTwo(ways) && ways <= 64);
}

void
TreePlruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    // Walk from the root; at each node, point *away* from the touched
    // way's subtree.
    std::uint8_t *tree = &_tree[static_cast<std::size_t>(set) * _nodes];
    std::uint32_t node = 0;
    std::uint32_t span = _ways;
    std::uint32_t base = 0;
    while (span > 1) {
        const std::uint32_t half = span / 2;
        const bool right = way >= base + half;
        tree[node] = right ? 0 : 1; // 0 = next victim left, 1 = right
        node = 2 * node + (right ? 2 : 1);
        if (right)
            base += half;
        span = half;
    }
}

void
TreePlruPolicy::insert(std::uint32_t set, std::uint32_t way)
{
    touch(set, way);
}

std::uint32_t
TreePlruPolicy::victim(std::uint32_t set, std::uint64_t valid_mask)
{
    const std::uint32_t inv = firstInvalid(valid_mask, _ways);
    if (inv < _ways)
        return inv;

    const std::uint8_t *tree =
        &_tree[static_cast<std::size_t>(set) * _nodes];
    std::uint32_t node = 0;
    std::uint32_t span = _ways;
    std::uint32_t base = 0;
    while (span > 1) {
        const std::uint32_t half = span / 2;
        const bool right = tree[node] != 0;
        node = 2 * node + (right ? 2 : 1);
        if (right)
            base += half;
        span = half;
    }
    return base;
}

// ---------------------------------------------------------------------
// FifoPolicy

FifoPolicy::FifoPolicy(std::uint32_t sets, std::uint32_t ways)
    : _ways(ways), _fillStamp(static_cast<std::size_t>(sets) * ways, 0)
{
    assert(ways >= 1 && ways <= 64);
}

void
FifoPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    // FIFO ignores hits.
    (void)set;
    (void)way;
}

void
FifoPolicy::insert(std::uint32_t set, std::uint32_t way)
{
    _fillStamp[static_cast<std::size_t>(set) * _ways + way] = ++_clock;
}

std::uint32_t
FifoPolicy::victim(std::uint32_t set, std::uint64_t valid_mask)
{
    const std::uint32_t inv = firstInvalid(valid_mask, _ways);
    if (inv < _ways)
        return inv;

    std::uint32_t victim_way = 0;
    std::uint64_t oldest =
        _fillStamp[static_cast<std::size_t>(set) * _ways];
    for (std::uint32_t w = 1; w < _ways; ++w) {
        const std::uint64_t s =
            _fillStamp[static_cast<std::size_t>(set) * _ways + w];
        if (s < oldest) {
            oldest = s;
            victim_way = w;
        }
    }
    return victim_way;
}

// ---------------------------------------------------------------------
// RandomPolicy

RandomPolicy::RandomPolicy(std::uint32_t sets, std::uint32_t ways,
                           std::uint64_t seed)
    : _ways(ways), _rng(seed)
{
    (void)sets;
    assert(ways >= 1 && ways <= 64);
}

void
RandomPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    (void)set;
    (void)way;
}

void
RandomPolicy::insert(std::uint32_t set, std::uint32_t way)
{
    (void)set;
    (void)way;
}

std::uint32_t
RandomPolicy::victim(std::uint32_t set, std::uint64_t valid_mask)
{
    (void)set;
    const std::uint32_t inv = firstInvalid(valid_mask, _ways);
    if (inv < _ways)
        return inv;
    return static_cast<std::uint32_t>(_rng.below(_ways));
}

} // namespace c8t::mem
