/**
 * @file
 * Address arithmetic: block/set/tag decomposition for a set-associative
 * cache.
 */

#ifndef C8T_MEM_ADDR_HH
#define C8T_MEM_ADDR_HH

#include <cstdint>

namespace c8t::mem
{

/** A byte address (up to 48 bits used, matching the paper's §5.4). */
using Addr = std::uint64_t;

/** Number of address bits assumed physical (paper §5.4: 48). */
constexpr std::uint32_t physAddrBits = 48;

/** True when @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
std::uint32_t log2i(std::uint64_t v);

/**
 * Block/set/tag decomposition for a given cache shape.
 *
 * Layout (little endian bit positions):
 *   [ tag | set index | block offset ]
 */
class AddrLayout
{
  public:
    /**
     * @param block_bytes Block size in bytes (power of two).
     * @param num_sets    Number of sets (power of two).
     * @throws std::invalid_argument when either is not a power of two.
     */
    AddrLayout(std::uint32_t block_bytes, std::uint32_t num_sets);

    /** Block-aligned base of @p a. */
    Addr blockAlign(Addr a) const { return a & ~(_blockMask); }

    /** Byte offset of @p a within its block. */
    std::uint32_t blockOffset(Addr a) const
    {
        return static_cast<std::uint32_t>(a & _blockMask);
    }

    /** Set index of @p a. */
    std::uint32_t setOf(Addr a) const
    {
        return static_cast<std::uint32_t>((a >> _offsetBits) & _setMask);
    }

    /** Tag of @p a. */
    Addr tagOf(Addr a) const { return a >> (_offsetBits + _setBits); }

    /** Combined set/tag decode — the chunk planner's decode stage
     *  extracts both per access, so share the shifted intermediate. */
    void splitOf(Addr a, std::uint32_t &set, Addr &tag) const
    {
        const Addr shifted = a >> _offsetBits;
        set = static_cast<std::uint32_t>(shifted & _setMask);
        tag = shifted >> _setBits;
    }

    /** Rebuild a block base address from tag and set index. */
    Addr blockAddr(Addr tag, std::uint32_t set) const
    {
        return (tag << (_offsetBits + _setBits)) |
               (static_cast<Addr>(set) << _offsetBits);
    }

    /** Block size in bytes. */
    std::uint32_t blockBytes() const { return _blockBytes; }

    /** Number of sets. */
    std::uint32_t numSets() const { return _numSets; }

    /** Bits used for the block offset. */
    std::uint32_t offsetBits() const { return _offsetBits; }

    /** Bits used for the set index. */
    std::uint32_t setBits() const { return _setBits; }

    /** Bits left for the tag (of a 48-bit physical address). */
    std::uint32_t tagBits() const
    {
        return physAddrBits - _offsetBits - _setBits;
    }

  private:
    std::uint32_t _blockBytes;
    std::uint32_t _numSets;
    std::uint32_t _offsetBits;
    std::uint32_t _setBits;
    std::uint64_t _blockMask;
    std::uint64_t _setMask;
};

} // namespace c8t::mem

#endif // C8T_MEM_ADDR_HH
