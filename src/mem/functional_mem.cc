/**
 * @file
 * Functional memory implementation.
 */

#include "mem/functional_mem.hh"

#include <algorithm>
#include <cstring>

namespace c8t::mem
{

namespace
{

/** Finalizer-quality mixer (splitmix64) over the page base. */
inline std::size_t
hashPage(Addr page_base)
{
    std::uint64_t x = page_base;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
}

/** Smallest power of two >= @p n (and >= 64). */
std::size_t
tableCapacityFor(std::size_t n)
{
    std::size_t cap = 64;
    while (cap < n)
        cap <<= 1;
    return cap;
}

} // anonymous namespace

const std::uint8_t *
FunctionalMemory::findPage(Addr page_base) const
{
    if (page_base == _lastBase)
        return _lastPage;
    if (_keys.empty())
        return nullptr;
    const std::size_t mask = _keys.size() - 1;
    std::size_t i = hashPage(page_base) & mask;
    while (_keys[i] != kNoPage) {
        if (_keys[i] == page_base) {
            _lastBase = page_base;
            _lastPage = _pages[_pageOf[i]].get();
            return _lastPage;
        }
        i = (i + 1) & mask;
    }
    return nullptr;
}

std::uint32_t
FunctionalMemory::takePage()
{
    if (!_freePages.empty()) {
        const std::uint32_t p = _freePages.back();
        _freePages.pop_back();
        return p;
    }
    // make_unique value-initialises the array, so new pages are zero.
    _pages.push_back(std::make_unique<std::uint8_t[]>(pageBytes));
    return static_cast<std::uint32_t>(_pages.size() - 1);
}

void
FunctionalMemory::growTable(std::size_t min_capacity)
{
    const std::size_t cap = tableCapacityFor(min_capacity);
    if (cap <= _keys.size())
        return;

    std::vector<Addr> old_keys = std::move(_keys);
    std::vector<std::uint32_t> old_pages = std::move(_pageOf);
    _keys.assign(cap, kNoPage);
    _pageOf.assign(cap, 0);

    const std::size_t mask = cap - 1;
    for (std::size_t s = 0; s < old_keys.size(); ++s) {
        if (old_keys[s] == kNoPage)
            continue;
        std::size_t i = hashPage(old_keys[s]) & mask;
        while (_keys[i] != kNoPage)
            i = (i + 1) & mask;
        _keys[i] = old_keys[s];
        _pageOf[i] = old_pages[s];
    }
}

std::uint8_t *
FunctionalMemory::ensurePage(Addr page_base)
{
    if (page_base == _lastBase)
        return _lastPage;

    // Keep the load factor below 3/4 (counting the slot about to be
    // claimed).
    if (_keys.empty() || (_used + 1) * 4 > _keys.size() * 3)
        growTable(_keys.empty() ? 64 : _keys.size() * 2);

    const std::size_t mask = _keys.size() - 1;
    std::size_t i = hashPage(page_base) & mask;
    while (_keys[i] != kNoPage) {
        if (_keys[i] == page_base) {
            _lastBase = page_base;
            _lastPage = _pages[_pageOf[i]].get();
            return _lastPage;
        }
        i = (i + 1) & mask;
    }
    _keys[i] = page_base;
    _pageOf[i] = takePage();
    ++_used;
    _lastBase = page_base;
    _lastPage = _pages[_pageOf[i]].get();
    return _lastPage;
}

std::uint64_t
FunctionalMemory::readWord(Addr addr) const
{
    const Addr word = addr & ~7ull;
    const std::uint8_t *page = findPage(pageBase(word));
    if (!page)
        return 0;
    // Aligned words never straddle a page. Assemble little-endian so
    // the word view and the byte view agree on every host.
    const std::uint8_t *p = page + (word & (pageBytes - 1));
    std::uint64_t v = 0;
    for (int b = 7; b >= 0; --b)
        v = (v << 8) | p[b];
    return v;
}

void
FunctionalMemory::writeWord(Addr addr, std::uint64_t value)
{
    const Addr word = addr & ~7ull;
    if (value == 0 && !findPage(pageBase(word)))
        return; // zero store to untouched memory: nothing to record
    std::uint8_t *p = ensurePage(pageBase(word)) + (word & (pageBytes - 1));
    for (int b = 0; b < 8; ++b) {
        p[b] = static_cast<std::uint8_t>(value);
        value >>= 8;
    }
}

void
FunctionalMemory::readBytes(Addr addr, std::uint8_t *out,
                            std::size_t len) const
{
    // Fast path for the miss pipeline: a whole cache block (32/64
    // bytes, block-aligned so it never straddles a page) costs one
    // probe and one fixed-size copy the compiler inlines.
    const std::size_t off = static_cast<std::size_t>(
        addr & static_cast<Addr>(pageBytes - 1));
    if (off + len <= pageBytes && (len == 32 || len == 64)) {
        const std::uint8_t *page = findPage(pageBase(addr));
        if (!page)
            std::memset(out, 0, len);
        else if (len == 32)
            __builtin_memcpy(out, page + off, 32);
        else
            __builtin_memcpy(out, page + off, 64);
        return;
    }

    std::size_t i = 0;
    while (i < len) {
        const Addr a = addr + i;
        const Addr base = pageBase(a);
        const std::size_t off = static_cast<std::size_t>(a - base);
        const std::size_t n = std::min<std::size_t>(pageBytes - off,
                                                    len - i);
        if (const std::uint8_t *page = findPage(base))
            std::memcpy(out + i, page + off, n);
        else
            std::memset(out + i, 0, n);
        i += n;
    }
}

std::vector<std::uint8_t>
FunctionalMemory::readBytes(Addr addr, std::size_t len) const
{
    std::vector<std::uint8_t> out(len);
    readBytes(addr, out.data(), len);
    return out;
}

void
FunctionalMemory::writeBytes(Addr addr, const std::uint8_t *data,
                             std::size_t len)
{
    // Fast path mirroring readBytes(): one probe, one fixed-size copy
    // for block-granular transfers that stay within a page.
    const std::size_t off = static_cast<std::size_t>(
        addr & static_cast<Addr>(pageBytes - 1));
    if (off + len <= pageBytes && (len == 32 || len == 64)) {
        std::uint8_t *page = ensurePage(pageBase(addr));
        if (len == 32)
            __builtin_memcpy(page + off, data, 32);
        else
            __builtin_memcpy(page + off, data, 64);
        return;
    }

    std::size_t i = 0;
    while (i < len) {
        const Addr a = addr + i;
        const Addr base = pageBase(a);
        const std::size_t off = static_cast<std::size_t>(a - base);
        const std::size_t n = std::min<std::size_t>(pageBytes - off,
                                                    len - i);
        std::memcpy(ensurePage(base) + off, data + i, n);
        i += n;
    }
}

std::size_t
FunctionalMemory::touchedWords() const
{
    // Diagnostic accessor (tests, invariant checks): scan the live
    // pages for words holding non-zero data, which preserves the
    // historical "zero is not stored" semantics without the hot path
    // having to chase zero writes.
    std::size_t count = 0;
    for (std::size_t s = 0; s < _keys.size(); ++s) {
        if (_keys[s] == kNoPage)
            continue;
        const std::uint8_t *page = _pages[_pageOf[s]].get();
        for (std::size_t w = 0; w < pageBytes; w += 8) {
            std::uint64_t v;
            std::memcpy(&v, page + w, 8);
            if (v != 0)
                ++count;
        }
    }
    return count;
}

void
FunctionalMemory::clear()
{
    for (std::size_t s = 0; s < _keys.size(); ++s) {
        if (_keys[s] == kNoPage)
            continue;
        std::memset(_pages[_pageOf[s]].get(), 0, pageBytes);
        _freePages.push_back(_pageOf[s]);
        _keys[s] = kNoPage;
    }
    _used = 0;
    _lastBase = kNoPage;
    _lastPage = nullptr;
}

void
FunctionalMemory::reserve(std::size_t words)
{
    const std::size_t pages = (words * 8 + pageBytes - 1) / pageBytes;
    // Table sized so `pages` live entries stay under the 3/4 load
    // factor.
    growTable(pages * 4 / 3 + 1);
    _pages.reserve(std::max(_pages.size(), pages));
    _freePages.reserve(std::max(_freePages.size(), pages));
    while (_used + _freePages.size() < pages) {
        _pages.push_back(std::make_unique<std::uint8_t[]>(pageBytes));
        _freePages.push_back(
            static_cast<std::uint32_t>(_pages.size() - 1));
    }
}

} // namespace c8t::mem
