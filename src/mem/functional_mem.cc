/**
 * @file
 * Functional memory implementation.
 */

#include "mem/functional_mem.hh"

#include <algorithm>
#include <cstring>

namespace c8t::mem
{

std::uint64_t
FunctionalMemory::readWord(Addr addr) const
{
    return _words.get(addr & ~7ull);
}

void
FunctionalMemory::writeWord(Addr addr, std::uint64_t value)
{
    const Addr word = addr & ~7ull;
    if (value == 0) {
        // Keep the map sparse: zero is the default.
        _words.erase(word);
    } else {
        _words.set(word, value);
    }
}

void
FunctionalMemory::readBytes(Addr addr, std::uint8_t *out,
                            std::size_t len) const
{
    std::size_t i = 0;
    while (i < len) {
        const Addr a = addr + i;
        const Addr word_base = a & ~7ull;
        const std::uint64_t w = readWord(word_base);
        const std::size_t off = static_cast<std::size_t>(a - word_base);
        const std::size_t n = std::min<std::size_t>(8 - off, len - i);
        for (std::size_t b = 0; b < n; ++b)
            out[i + b] = static_cast<std::uint8_t>(w >> (8 * (off + b)));
        i += n;
    }
}

std::vector<std::uint8_t>
FunctionalMemory::readBytes(Addr addr, std::size_t len) const
{
    std::vector<std::uint8_t> out(len);
    readBytes(addr, out.data(), len);
    return out;
}

void
FunctionalMemory::writeBytes(Addr addr, const std::uint8_t *data,
                             std::size_t len)
{
    std::size_t i = 0;
    while (i < len) {
        const Addr a = addr + i;
        const Addr word_base = a & ~7ull;
        std::uint64_t w = readWord(word_base);
        const std::size_t off = static_cast<std::size_t>(a - word_base);
        const std::size_t n = std::min<std::size_t>(8 - off, len - i);
        for (std::size_t b = 0; b < n; ++b) {
            const std::size_t shift = 8 * (off + b);
            w &= ~(0xffull << shift);
            w |= static_cast<std::uint64_t>(data[i + b]) << shift;
        }
        writeWord(word_base, w);
        i += n;
    }
}

} // namespace c8t::mem
