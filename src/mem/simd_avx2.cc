/**
 * @file
 * AVX2 way-compare kernel.
 *
 * This is the only translation unit compiled with -mavx2 (see
 * src/CMakeLists.txt): everything else targets baseline x86-64, and the
 * kernel is reached exclusively through the runtime dispatch in
 * mem/simd.hh, so the binary stays runnable on CPUs without AVX2. Keep
 * this file free of inline-able library code — any comdat function
 * emitted here could be compiled with AVX2 encodings and picked by the
 * linker for callers on the baseline path.
 */

#include "mem/simd.hh"

#ifdef C8T_SIMD_X86_64

#include <immintrin.h>

namespace c8t::mem::simd
{

std::uint64_t
matchBitsAvx2(const Addr *tags, std::uint32_t ways, Addr tag)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(tag));
    std::uint64_t m = 0;
    std::uint32_t w = 0;
    for (; w + 4 <= ways; w += 4) {
        const __m256i row = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const __m256i eq = _mm256_cmpeq_epi64(row, needle);
        const int lanes =
            _mm256_movemask_pd(_mm256_castsi256_pd(eq)); // 4 bits
        m |= static_cast<std::uint64_t>(lanes) << w;
    }
    for (; w < ways; ++w)
        m |= static_cast<std::uint64_t>(tags[w] == tag) << w;
    return m;
}

} // namespace c8t::mem::simd

#endif // C8T_SIMD_X86_64
