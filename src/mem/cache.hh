/**
 * @file
 * Set-associative cache tag state.
 *
 * The TagArray owns the architectural tag/valid/dirty state and the
 * replacement policy. It deliberately does NOT own block data: data
 * lives in the SRAM data array (one physical row per set) and, under
 * the proposed schemes, temporarily in the Set-Buffer — placement is
 * the controller's job (src/core/controller.hh). Keeping tags separate
 * guarantees every write scheme sees the identical hit/miss sequence.
 */

#ifndef C8T_MEM_CACHE_HH
#define C8T_MEM_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/addr.hh"
#include "mem/replacement.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"

namespace c8t::mem
{

/** Shape and policy of one cache. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 64 * 1024;

    /** Associativity. */
    std::uint32_t ways = 4;

    /** Block size in bytes. */
    std::uint32_t blockBytes = 32;

    /** Replacement policy. */
    ReplKind replacement = ReplKind::Lru;

    /** Number of sets implied by the shape. */
    std::uint32_t numSets() const
    {
        return static_cast<std::uint32_t>(
            sizeBytes / (static_cast<std::uint64_t>(ways) * blockBytes));
    }

    /** Bytes in one set (= one SRAM row = the Set-Buffer size). */
    std::uint32_t setBytes() const { return ways * blockBytes; }

    /**
     * Check shape consistency (powers of two, exact division).
     * @throws std::invalid_argument on violation.
     */
    void validate() const;

    /** "64KB/4w/32B/lru" style description. */
    std::string toString() const;
};

/** Result of a tag lookup. */
struct LookupResult
{
    /** True when the block is resident. */
    bool hit = false;

    /** Way holding the block (valid only when hit). */
    std::uint32_t way = 0;
};

/** Result of allocating a block (a fill). */
struct FillResult
{
    /** Way the new block was placed in. */
    std::uint32_t way = 0;

    /** True when a valid block was evicted. */
    bool evictedValid = false;

    /** True when the evicted block was dirty. */
    bool evictedDirty = false;

    /** Block base address of the evicted block (when evictedValid). */
    Addr evictedBlockAddr = 0;
};

/**
 * The tag array: lookup, fill, dirty tracking, statistics.
 */
class TagArray
{
  public:
    /**
     * @param config Cache shape; validated.
     * @throws std::invalid_argument on a bad shape.
     */
    explicit TagArray(const CacheConfig &config);

    /** The address layout in effect. */
    const AddrLayout &layout() const { return _layout; }

    /** The configuration in effect. */
    const CacheConfig &config() const { return _config; }

    /**
     * Probe for @p addr without changing any state (no LRU update,
     * no statistics).
     */
    LookupResult probe(Addr addr) const;

    /**
     * Look up @p addr, updating replacement state and hit/miss
     * statistics. Does not allocate on miss.
     */
    LookupResult access(Addr addr);

    /**
     * Allocate a block for @p addr (which must currently miss):
     * chooses a victim, installs the tag, marks it valid and clean,
     * and updates replacement state.
     */
    FillResult fill(Addr addr);

    /** Mark the block holding @p addr dirty (must be resident). */
    void markDirty(Addr addr);

    /** Dirty state of way @p way in set @p set. */
    bool isDirty(std::uint32_t set, std::uint32_t way) const;

    /** Clear the dirty bit of (set, way). */
    void clearDirty(std::uint32_t set, std::uint32_t way);

    /** Valid state of way @p way in set @p set. */
    bool isValid(std::uint32_t set, std::uint32_t way) const;

    /** Tag stored in (set, way); meaningful only when valid. */
    Addr tagAt(std::uint32_t set, std::uint32_t way) const;

    /** Block base address stored in (set, way); requires valid. */
    Addr blockAddrAt(std::uint32_t set, std::uint32_t way) const;

    /** All tags of @p set (invalid ways report tag 0). Used to load
     *  the Tag-Buffer, which mirrors a whole set. */
    std::vector<Addr> tagsOfSet(std::uint32_t set) const;

    /** Allocation-free variant: write the @c ways tags of @p set into
     *  @p out (caller-provided, at least @c ways entries). */
    void copyTagsOfSet(std::uint32_t set, Addr *out) const;

    /** Valid-way bitmask of @p set. */
    std::uint64_t validMask(std::uint32_t set) const;

    /** Demand lookups that hit. */
    std::uint64_t hits() const { return _hits.value(); }

    /** Demand lookups that missed. */
    std::uint64_t misses() const { return _misses.value(); }

    /** Valid blocks evicted by fills. */
    std::uint64_t evictions() const { return _evictions.value(); }

    /** Dirty blocks evicted by fills. */
    std::uint64_t dirtyEvictions() const
    {
        return _dirtyEvictions.value();
    }

    /** Reset statistics (contents untouched). */
    void resetCounters();

    /** Register the hit/miss/eviction counters with @p reg. */
    void registerStats(stats::Registry &reg);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    Line &lineAt(std::uint32_t set, std::uint32_t way);
    const Line &lineAt(std::uint32_t set, std::uint32_t way) const;

    CacheConfig _config;
    AddrLayout _layout;
    std::vector<Line> _lines;
    std::unique_ptr<ReplacementPolicy> _repl;

    stats::Counter _hits{"cache.hits", "demand hits"};
    stats::Counter _misses{"cache.misses", "demand misses"};
    stats::Counter _evictions{"cache.evictions", "valid blocks evicted"};
    stats::Counter _dirtyEvictions{"cache.dirty_evictions",
                                   "dirty blocks evicted"};
};

} // namespace c8t::mem

#endif // C8T_MEM_CACHE_HH
