/**
 * @file
 * Set-associative cache tag state.
 *
 * The TagArray owns the architectural tag/valid/dirty state and the
 * replacement policy. It deliberately does NOT own block data: data
 * lives in the SRAM data array (one physical row per set) and, under
 * the proposed schemes, temporarily in the Set-Buffer — placement is
 * the controller's job (src/core/controller.hh). Keeping tags separate
 * guarantees every write scheme sees the identical hit/miss sequence.
 *
 * Hot-path layout (DESIGN.md §7): tag words, valid bits and dirty bits
 * are stored structure-of-arrays — a flat tag vector plus one 64-bit
 * valid and one 64-bit dirty bitmask per set — so a lookup is a
 * branchless way-compare producing a match mask, and dirty/valid
 * updates are single bit operations. Replacement is devirtualized:
 * LRU (ways <= 8), Tree-PLRU, FIFO and Random get compact per-set
 * integer encodings updated inline with zero virtual calls; shapes
 * outside the packed encodings (LRU with ways > 8) fall back to the
 * virtual ReplacementPolicy oracle, which also remains the reference
 * model for the packed encodings' property tests.
 */

#ifndef C8T_MEM_CACHE_HH
#define C8T_MEM_CACHE_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/addr.hh"
#include "mem/replacement.hh"
#include "mem/simd.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"
#include "trace/access.hh"
#include "trace/rng.hh"

namespace c8t::mem
{

/** Shape and policy of one cache. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 64 * 1024;

    /** Associativity. */
    std::uint32_t ways = 4;

    /** Block size in bytes. */
    std::uint32_t blockBytes = 32;

    /** Replacement policy. */
    ReplKind replacement = ReplKind::Lru;

    /** Number of sets implied by the shape. */
    std::uint32_t numSets() const
    {
        return static_cast<std::uint32_t>(
            sizeBytes / (static_cast<std::uint64_t>(ways) * blockBytes));
    }

    /** Bytes in one set (= one SRAM row = the Set-Buffer size). */
    std::uint32_t setBytes() const { return ways * blockBytes; }

    /**
     * Check shape consistency (powers of two, exact division).
     * @throws std::invalid_argument on violation.
     */
    void validate() const;

    /** "64KB/4w/32B/lru" style description. */
    std::string toString() const;

    /** Shape equality — the sweep drivers use it to share per-chunk
     *  access plans between controllers with identical caches. */
    bool operator==(const CacheConfig &other) const = default;
};

/** Result of a tag lookup. */
struct LookupResult
{
    /** True when the block is resident. */
    bool hit = false;

    /** Way holding the block (valid only when hit). */
    std::uint32_t way = 0;
};

/** Result of allocating a block (a fill). */
struct FillResult
{
    /** Way the new block was placed in. */
    std::uint32_t way = 0;

    /** True when a valid block was evicted. */
    bool evictedValid = false;

    /** True when the evicted block was dirty. */
    bool evictedDirty = false;

    /** Block base address of the evicted block (when evictedValid). */
    Addr evictedBlockAddr = 0;
};

/**
 * Per-chunk access plan (DESIGN.md §7): the tag-pipeline stage outputs.
 *
 * TagArray::planChunk() walks a replay chunk in per-set batches and
 * predicts, for every access, the full outcome of its tag lookup —
 * hit/miss, the way involved, the post-access replacement word, and
 * the eviction metadata of a fill — without committing any state.
 * The controller's scheme loops then consume the plan in original
 * request order, so every globally-ordered side effect (cycle clock,
 * port scheduling, buffer traffic, data movement) happens exactly
 * where the per-access path put it, while the tag compares and
 * replacement arithmetic have already been done batch-wise.
 *
 * Structure-of-arrays and pre-sized (reservePlan()): filling a plan is
 * allocation-free in steady state.
 */
struct ChunkPlan
{
    /** flags bits. */
    static constexpr std::uint8_t kHit = 1;        //!< lookup hit
    static constexpr std::uint8_t kEvictValid = 2; //!< fill evicted
    static constexpr std::uint8_t kEvictDirty = 4; //!< ... a dirty block

    std::vector<std::uint32_t> set;   //!< decoded set index
    std::vector<Addr> tag;            //!< decoded tag bits
    std::vector<std::uint8_t> way;    //!< hit way / filled way
    std::vector<std::uint8_t> flags;  //!< kHit / kEvict* bits
    std::vector<std::uint64_t> replWord; //!< post-access encoding
    std::vector<Addr> evictedAddr;    //!< block base (when kEvictValid)

    /** Chunk-wide sums, applied to the counters once per chunk. */
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /** Accesses planned (entries [0, count) are meaningful). */
    std::size_t count = 0;
};

/**
 * The tag array: lookup, fill, dirty tracking, statistics.
 */
class TagArray
{
  public:
    /**
     * @param config Cache shape; validated.
     * @throws std::invalid_argument on a bad shape.
     */
    explicit TagArray(const CacheConfig &config);

    /** The address layout in effect. */
    const AddrLayout &layout() const { return _layout; }

    /** The configuration in effect. */
    const CacheConfig &config() const { return _config; }

    /**
     * Probe for @p addr without changing any state (no LRU update,
     * no statistics).
     */
    LookupResult probe(Addr addr) const
    {
        const std::uint32_t set = _layout.setOf(addr);
        const std::uint64_t m = matchMask(set, _layout.tagOf(addr));
        if (m)
            return {true,
                    static_cast<std::uint32_t>(std::countr_zero(m))};
        return {false, 0};
    }

    /**
     * Look up @p addr, updating replacement state and hit/miss
     * statistics. Does not allocate on miss. On a hit the returned
     * way identifies the resident block.
     */
    LookupResult access(Addr addr)
    {
        const std::uint32_t set = _layout.setOf(addr);
        const std::uint64_t m = matchMask(set, _layout.tagOf(addr));
        if (m) {
            const auto way =
                static_cast<std::uint32_t>(std::countr_zero(m));
            ++_hits;
            touchRepl(set, way);
            return {true, way};
        }
        ++_misses;
        return {false, 0};
    }

    /**
     * Allocate a block for @p addr (which must currently miss):
     * chooses a victim, installs the tag, marks it valid and clean,
     * and updates replacement state. Inline: runs once per miss
     * (DESIGN.md §7).
     */
    FillResult fill(Addr addr)
    {
        assert(!probe(addr).hit && "fill of a resident block");

        const std::uint32_t set = _layout.setOf(addr);
        const std::uint32_t way = victimRepl(set);

        FillResult result;
        result.way = way;

        const std::uint64_t bit = 1ull << way;
        const std::size_t idx =
            static_cast<std::size_t>(set) * _ways + way;
        if (_valid[set] & bit) {
            result.evictedValid = true;
            result.evictedDirty = (_dirty[set] & bit) != 0;
            result.evictedBlockAddr =
                _layout.blockAddr(_tagStore[idx], set);
            ++_evictions;
            if (result.evictedDirty)
                ++_dirtyEvictions;
        }

        _tagStore[idx] = _layout.tagOf(addr);
        _valid[set] |= bit;
        _dirty[set] &= ~bit;
        insertRepl(set, way);
        return result;
    }

    /**
     * Drop the block in (set, way): clears valid and dirty without
     * touching replacement state (the stale repl entry ages out
     * naturally; victimRepl may pick the hole next, which is the
     * desired behaviour for a back-invalidated frame). Used by the
     * hierarchy's inclusion maintenance — an L2 eviction must
     * invalidate the line's L1 copy.
     */
    void invalidate(std::uint32_t set, std::uint32_t way)
    {
        const std::uint64_t bit = 1ull << way;
        _valid[set] &= ~bit;
        _dirty[set] &= ~bit;
    }

    /** Mark the block holding @p addr dirty (must be resident). */
    void markDirty(Addr addr);

    /** Mark (set, way) dirty directly — the hot path uses this when
     *  the way is already known from the lookup. */
    void markDirtyWay(std::uint32_t set, std::uint32_t way)
    {
        _dirty[set] |= 1ull << way;
    }

    /** Dirty state of way @p way in set @p set. */
    bool isDirty(std::uint32_t set, std::uint32_t way) const
    {
        return (_dirty[set] >> way) & 1;
    }

    /** Clear the dirty bit of (set, way). */
    void clearDirty(std::uint32_t set, std::uint32_t way)
    {
        _dirty[set] &= ~(1ull << way);
    }

    /** Valid state of way @p way in set @p set. */
    bool isValid(std::uint32_t set, std::uint32_t way) const
    {
        return (_valid[set] >> way) & 1;
    }

    /** Tag stored in (set, way); meaningful only when valid. */
    Addr tagAt(std::uint32_t set, std::uint32_t way) const
    {
        return _tagStore[static_cast<std::size_t>(set) * _ways + way];
    }

    /** Block base address stored in (set, way); requires valid. */
    Addr blockAddrAt(std::uint32_t set, std::uint32_t way) const;

    /** All tags of @p set (invalid ways report tag 0). Used to load
     *  the Tag-Buffer, which mirrors a whole set. */
    std::vector<Addr> tagsOfSet(std::uint32_t set) const;

    /** Allocation-free variant: write the @c ways tags of @p set into
     *  @p out (caller-provided, at least @c ways entries). */
    void copyTagsOfSet(std::uint32_t set, Addr *out) const;

    /** Valid-way bitmask of @p set. */
    std::uint64_t validMask(std::uint32_t set) const
    {
        return _valid[set];
    }

    /** Demand lookups that hit. */
    std::uint64_t hits() const { return _hits.value(); }

    /** Demand lookups that missed. */
    std::uint64_t misses() const { return _misses.value(); }

    /** Valid blocks evicted by fills. */
    std::uint64_t evictions() const { return _evictions.value(); }

    /** Dirty blocks evicted by fills. */
    std::uint64_t dirtyEvictions() const
    {
        return _dirtyEvictions.value();
    }

    /** True when this shape runs on a packed (devirtualized)
     *  replacement encoding rather than the virtual oracle. */
    bool usesPackedReplacement() const
    {
        return _mode != ReplMode::Oracle;
    }

    /** The SIMD level the way-compare runs at (resolved once at
     *  construction from simd::activeLevel()). */
    simd::SimdLevel simdLevel() const { return _simd; }

    /** Largest associativity the chunk planner handles (the packed-LRU
     *  bound: per-set state must fit the stack-local simulate). */
    static constexpr std::uint32_t kMaxPlannedWays = 8;

    /**
     * True when planChunk() covers this shape: a packed deterministic
     * replacement encoding (LRU/Tree-PLRU/FIFO) with at most
     * kMaxPlannedWays ways. Random is excluded — its victim draws
     * come from a shared RNG whose draw order is architectural, and
     * set-batched planning would reorder them. Oracle shapes keep the
     * virtual per-access path.
     */
    bool planEligible() const
    {
        return (_mode == ReplMode::PackedLru ||
                _mode == ReplMode::PackedPlru ||
                _mode == ReplMode::PackedFifo) &&
               _ways <= kMaxPlannedWays;
    }

    /** Pre-size the plan and its set-sort scratch for chunks of up to
     *  @p capacity accesses (planChunk() grows on demand otherwise;
     *  reserving up front keeps the replay loop allocation-free). */
    void reservePlan(std::size_t capacity);

    /**
     * Plan @p count accesses from @p chunk (requires planEligible()).
     *
     * Stage 1 of the chunk pipeline: decodes every address, sorts the
     * chunk into per-set batches (stable within a set), and simulates
     * each set's tag/valid/dirty/replacement evolution on stack-local
     * state — SIMD way-compares included — recording the predicted
     * outcome per access. No TagArray state is modified and no
     * statistics move: the controller applies the plan in original
     * request order via applyPlannedHit()/applyPlannedFill() and
     * flushes the chunk-wide counter sums with addPlannedCounts().
     *
     * The prediction is exact because tag-state evolution is
     * scheme-independent (every access performs exactly one lookup
     * plus, on miss, one fill; writes dirty their way) and sets are
     * independent: batching by set preserves each set's access order.
     */
    const ChunkPlan &planChunk(const trace::MemAccess *chunk,
                               std::size_t count);

    /** Apply a planned hit: store the post-access replacement word.
     *  Pairs with a plan entry whose kHit flag is set. */
    void applyPlannedHit(std::uint32_t set, std::uint64_t repl_word)
    {
        _replWord[set] = repl_word;
    }

    /** Apply a planned fill: install the tag, mark valid and clean,
     *  store the post-access replacement word. The eviction metadata
     *  was captured in the plan before this overwrite. */
    void applyPlannedFill(std::uint32_t set, std::uint32_t way,
                          Addr tag, std::uint64_t repl_word)
    {
        const std::uint64_t bit = 1ull << way;
        _tagStore[static_cast<std::size_t>(set) * _ways + way] = tag;
        _valid[set] |= bit;
        _dirty[set] &= ~bit;
        _replWord[set] = repl_word;
    }

    /** Fold a plan's chunk-wide hit/miss/eviction sums into the
     *  counters (once per chunk; order-free, so deferring them off the
     *  per-access path cannot change any dump). */
    void addPlannedCounts(const ChunkPlan &plan)
    {
        _hits += plan.hits;
        _misses += plan.misses;
        _evictions += plan.evictions;
        _dirtyEvictions += plan.dirtyEvictions;
    }

    /** Reset statistics (contents untouched). */
    void resetCounters();

    /** Register the hit/miss/eviction counters with @p reg. */
    void registerStats(stats::Registry &reg,
                       const std::string &prefix = std::string());

  private:
    /** Per-run replacement dispatch, selected once in the constructor
     *  so the access loop never takes a virtual call. */
    enum class ReplMode : std::uint8_t {
        PackedLru,    //!< 64-bit recency word, one byte per way (<= 8)
        PackedPlru,   //!< tree bits of the PLRU decision tree
        PackedFifo,   //!< per-set fill counter (round-robin)
        PackedRandom, //!< stateless; shared deterministic RNG
        Oracle,       //!< virtual ReplacementPolicy fallback
    };

    /** Valid-way match mask of @p tag in @p set (bit w set when way w
     *  is valid and holds the tag). One SIMD compare over the flat
     *  per-set tag words at the dispatched level (mem/simd.hh); every
     *  level returns bit-identical masks. */
    std::uint64_t matchMask(std::uint32_t set, Addr tag) const
    {
        const Addr *tags =
            &_tagStore[static_cast<std::size_t>(set) * _ways];
        return simd::matchBits(_simd, tags, _ways, tag) & _valid[set];
    }

    /** Record a use of (set, way) in the packed replacement state. */
    void touchRepl(std::uint32_t set, std::uint32_t way)
    {
        switch (_mode) {
          case ReplMode::PackedLru:
            lruMoveToFront(set, way);
            break;
          case ReplMode::PackedPlru:
            plruPointAway(set, way);
            break;
          case ReplMode::PackedFifo:
          case ReplMode::PackedRandom:
            break; // hits do not move FIFO/Random state
          case ReplMode::Oracle:
            _repl->touch(set, way);
            break;
        }
    }

    /** Record a fill of (set, way). */
    void insertRepl(std::uint32_t set, std::uint32_t way)
    {
        switch (_mode) {
          case ReplMode::PackedLru:
            lruMoveToFront(set, way);
            break;
          case ReplMode::PackedPlru:
            plruPointAway(set, way);
            break;
          case ReplMode::PackedFifo:
            ++_replWord[set];
            break;
          case ReplMode::PackedRandom:
            break;
          case ReplMode::Oracle:
            _repl->insert(set, way);
            break;
        }
    }

    /** Choose the victim way of @p set (invalid ways first). */
    std::uint32_t victimRepl(std::uint32_t set)
    {
        const std::uint64_t valid = _valid[set];

        // Invalid ways are preferred before any replacement
        // heuristic, in ascending way order (matching
        // ReplacementPolicy semantics).
        const auto first_invalid =
            static_cast<std::uint32_t>(std::countr_one(valid));
        if (first_invalid < _ways)
            return first_invalid;

        switch (_mode) {
          case ReplMode::PackedLru:
            return static_cast<std::uint32_t>(
                (_replWord[set] >> (8 * (_ways - 1))) & 0xffu);
          case ReplMode::PackedPlru:
            return plruVictimOf(_replWord[set], _ways);
          case ReplMode::PackedFifo:
            // Fills land on invalid ways in ascending order and the
            // only path to valid is fill(), so fill order is
            // round-robin: the oldest fill is the fill counter modulo
            // the associativity.
            return static_cast<std::uint32_t>(_replWord[set] % _ways);
          case ReplMode::PackedRandom:
            return static_cast<std::uint32_t>(_victimRng.below(_ways));
          case ReplMode::Oracle:
            return _repl->victim(set, valid);
        }
        return 0;
    }

    // Pure packed-encoding transforms, shared verbatim between the
    // live per-access path and the chunk planner's stack-local
    // simulation so both compute bit-identical replacement words.

    /** Recency word with @p way moved to the MRU byte. */
    static std::uint64_t lruMovedToFront(std::uint64_t w,
                                         std::uint32_t way)
    {
        std::uint32_t p = 0;
        while (((w >> (8 * p)) & 0xffu) != way)
            ++p;
        const std::uint64_t below =
            p ? (w & ((1ull << (8 * p)) - 1)) : 0;
        const std::uint64_t above =
            p < 7 ? (w & ~((1ull << (8 * (p + 1))) - 1)) : 0;
        return above | (below << 8) | way;
    }

    /** Tree word with every node on @p way's path pointed away. */
    static std::uint64_t plruPointedAway(std::uint64_t t,
                                         std::uint32_t ways,
                                         std::uint32_t way)
    {
        std::uint32_t node = 0;
        std::uint32_t span = ways;
        std::uint32_t base = 0;
        while (span > 1) {
            const std::uint32_t half = span / 2;
            const bool right = way >= base + half;
            const std::uint64_t bit = 1ull << node;
            t = right ? (t & ~bit) : (t | bit);
            node = 2 * node + (right ? 2 : 1);
            if (right)
                base += half;
            span = half;
        }
        return t;
    }

    /** Way the PLRU tree word points at. */
    static std::uint32_t plruVictimOf(std::uint64_t t,
                                      std::uint32_t ways)
    {
        std::uint32_t node = 0;
        std::uint32_t span = ways;
        std::uint32_t base = 0;
        while (span > 1) {
            const std::uint32_t half = span / 2;
            const bool right = (t >> node) & 1;
            node = 2 * node + (right ? 2 : 1);
            if (right)
                base += half;
            span = half;
        }
        return base;
    }

    /** Move @p way to the MRU byte of the set's recency word. */
    void lruMoveToFront(std::uint32_t set, std::uint32_t way)
    {
        _replWord[set] = lruMovedToFront(_replWord[set], way);
    }

    /** Point every PLRU tree node on @p way's path away from it. */
    void plruPointAway(std::uint32_t set, std::uint32_t way)
    {
        _replWord[set] = plruPointedAway(_replWord[set], _ways, way);
    }

    /** Per-set batch simulation of one chain of planned accesses
     *  (planChunk() stage C), specialized per packed mode so the
     *  replacement arithmetic inlines without per-access dispatch. */
    template <ReplMode M>
    void planSets(const trace::MemAccess *chunk);

    CacheConfig _config;
    AddrLayout _layout;
    std::uint32_t _ways;

    /** Way-compare dispatch level, resolved once at construction. */
    simd::SimdLevel _simd;

    // Structure-of-arrays tag state.
    std::vector<Addr> _tagStore;        //!< [set * ways + way]
    std::vector<std::uint64_t> _valid;  //!< per-set valid bitmask
    std::vector<std::uint64_t> _dirty;  //!< per-set dirty bitmask

    // Packed replacement state.
    ReplMode _mode;
    std::vector<std::uint64_t> _replWord; //!< per-set encoding
    trace::Rng _victimRng{12345};         //!< PackedRandom draws
    std::unique_ptr<ReplacementPolicy> _repl; //!< Oracle fallback only

    // Chunk-planner state (reservePlan()/planChunk()). The per-set
    // chains are intrusive linked lists over the access indices:
    // _planHead[set] is the first access touching the set (kPlanNone
    // when untouched this chunk), _planNext[i] the next access to the
    // same set. Only touched heads are reset between chunks, so the
    // cost scales with the chunk, not the cache.
    static constexpr std::uint32_t kPlanNone = 0xffffffffu;
    ChunkPlan _plan;
    std::vector<std::uint32_t> _planHead;    //!< per set, kPlanNone idle
    std::vector<std::uint32_t> _planNext;    //!< per access
    std::vector<std::uint32_t> _planTouched; //!< sets hit this chunk

    stats::Counter _hits{"cache.hits", "demand hits"};
    stats::Counter _misses{"cache.misses", "demand misses"};
    stats::Counter _evictions{"cache.evictions", "valid blocks evicted"};
    stats::Counter _dirtyEvictions{"cache.dirty_evictions",
                                   "dirty blocks evicted"};
};

} // namespace c8t::mem

#endif // C8T_MEM_CACHE_HH
