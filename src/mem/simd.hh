/**
 * @file
 * SIMD dispatch for the way-compare hot path.
 *
 * The TagArray and Tag-Buffer store their per-set tag words flat
 * (structure-of-arrays, DESIGN.md §7), so a lookup is "compare one tag
 * against W consecutive 64-bit words and collect a match mask" — the
 * textbook data-parallel shape. This header provides that kernel at
 * three ISA levels behind one runtime-dispatched entry point:
 *
 *   - Scalar: the portable fallback, identical to the historical loop.
 *   - SSE2:   x86-64 baseline (always available there), two ways per
 *             compare. SSE2 has no 64-bit integer equality, so it is
 *             emulated with a 32-bit compare, a lane-pair swap and an
 *             AND — exact for all bit patterns.
 *   - AVX2:   four ways per compare; compiled in a separate translation
 *             unit with -mavx2 (see src/mem/simd_avx2.cc) so the rest
 *             of the library stays runnable on any x86-64.
 *
 * The active level resolves once from the C8T_SIMD environment variable
 * (scalar|sse2|avx2|auto) intersected with what the CPU supports;
 * tests force levels via setLevel(). Every level produces bit-identical
 * match masks, so dispatch never changes simulation results — the
 * simd_identity_test suite pins this end to end.
 */

#ifndef C8T_MEM_SIMD_HH
#define C8T_MEM_SIMD_HH

#include <cstdint>
#include <string>

#include "mem/addr.hh"

#if defined(__x86_64__) || defined(_M_X64)
#define C8T_SIMD_X86_64 1
#include <emmintrin.h>
#endif

namespace c8t::mem::simd
{

/** Instruction-set level of the way-compare kernel. */
enum class SimdLevel : std::uint8_t {
    Scalar, //!< portable loop
    Sse2,   //!< 128-bit, x86-64 baseline
    Avx2,   //!< 256-bit, runtime-detected
};

/** Human-readable level name ("scalar", "sse2", "avx2"). */
const char *toString(SimdLevel level);

/** Highest level this binary + CPU supports. */
SimdLevel bestSupported();

/**
 * The measured-fastest supported level. The first call times every
 * supported kernel on a small in-cache fixture (one warm-up round,
 * best-of-three timed rounds each) and caches the winner; subsequent
 * calls are free. This exists because "highest ISA" is not "fastest"
 * everywhere: on hosts that emulate 256-bit ops (some VMs) the AVX2
 * kernel measures ~2x slower than SSE2, and since every level returns
 * bit-identical masks the choice can safely follow the stopwatch.
 * bench/micro_perf emits a "way_compare:auto" record guarding this.
 */
SimdLevel autoCalibratedLevel();

/**
 * The level in effect. First use resolves the C8T_SIMD environment
 * variable (scalar|sse2|avx2|auto; auto and unset mean
 * autoCalibratedLevel() — the measured-fastest level, not blindly the
 * highest; named levels above hardware support are clamped down) and
 * caches the result; subsequent calls are a load.
 */
SimdLevel activeLevel();

/** Force the active level (clamped to bestSupported()); returns the
 *  level actually installed. Test hook — not thread-safe against
 *  concurrent TagArray construction. */
SimdLevel setLevel(SimdLevel level);

/**
 * Parse a C8T_SIMD-style spec. Returns autoCalibratedLevel() for
 * "auto", empty or unknown strings; named levels are clamped to
 * hardware support.
 */
SimdLevel parseLevel(const std::string &spec);

/** Portable way-compare: bit w set when tags[w] == tag (w < ways). */
inline std::uint64_t
matchBitsScalar(const Addr *tags, std::uint32_t ways, Addr tag)
{
    std::uint64_t m = 0;
    for (std::uint32_t w = 0; w < ways; ++w)
        m |= static_cast<std::uint64_t>(tags[w] == tag) << w;
    return m;
}

#ifdef C8T_SIMD_X86_64
/** SSE2 way-compare: two 64-bit lanes per step, scalar tail. */
inline std::uint64_t
matchBitsSse2(const Addr *tags, std::uint32_t ways, Addr tag)
{
    const __m128i needle = _mm_set1_epi64x(static_cast<long long>(tag));
    std::uint64_t m = 0;
    std::uint32_t w = 0;
    for (; w + 2 <= ways; w += 2) {
        const __m128i row = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tags + w));
        // SSE2 lacks a 64-bit equality: compare 32-bit halves, swap the
        // halves within each 64-bit lane, and AND — a lane is all-ones
        // exactly when both halves matched.
        const __m128i eq32 = _mm_cmpeq_epi32(row, needle);
        const __m128i eq64 =
            _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, 0xB1));
        const int lanes =
            _mm_movemask_pd(_mm_castsi128_pd(eq64)); // 2 bits
        m |= static_cast<std::uint64_t>(lanes) << w;
    }
    for (; w < ways; ++w)
        m |= static_cast<std::uint64_t>(tags[w] == tag) << w;
    return m;
}

/** AVX2 way-compare: four 64-bit lanes per step (simd_avx2.cc, built
 *  with -mavx2; resolves to the SSE2 kernel when the toolchain cannot
 *  target AVX2). */
std::uint64_t matchBitsAvx2(const Addr *tags, std::uint32_t ways,
                            Addr tag);
#endif // C8T_SIMD_X86_64

/**
 * Way-compare at @p level: bit w set when tags[w] == tag. The caller
 * ANDs the result with its valid mask. On non-x86 targets every level
 * resolves to the scalar loop.
 */
inline std::uint64_t
matchBits(SimdLevel level, const Addr *tags, std::uint32_t ways,
          Addr tag)
{
#ifdef C8T_SIMD_X86_64
    switch (level) {
      case SimdLevel::Avx2:
        return matchBitsAvx2(tags, ways, tag);
      case SimdLevel::Sse2:
        return matchBitsSse2(tags, ways, tag);
      case SimdLevel::Scalar:
        break;
    }
#else
    (void)level;
#endif
    return matchBitsScalar(tags, ways, tag);
}

} // namespace c8t::mem::simd

#endif // C8T_MEM_SIMD_HH
