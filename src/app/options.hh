/**
 * @file
 * Command-line option parsing and workload construction for the
 * c8tsim driver (tools/c8tsim.cc). Lives in the library so it is unit
 * testable and reusable by other front ends.
 */

#ifndef C8T_APP_OPTIONS_HH
#define C8T_APP_OPTIONS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/job_spec.hh"
#include "core/write_scheme.hh"
#include "mem/cache.hh"
#include "trace/access.hh"

namespace c8t::app
{

/** Parsed c8tsim options. */
struct SimOptions
{
    /**
     * Workload specifier:
     *   spec:<benchmark>   one of the 25 calibrated SPEC profiles
     *   kernel:<name>      stream_copy | stencil3 | pointer_chase |
     *                      hash_update | transpose
     *   trace:<path>       a binary trace file
     */
    std::string workload = "spec:gcc";

    /** Schemes to run (--scheme, repeatable; --all for every scheme). */
    std::vector<core::WriteScheme> schemes = {
        core::WriteScheme::Rmw,
        core::WriteScheme::WriteGroupingReadBypass};

    /** Schemes were chosen explicitly (--scheme/--all given). A
     *  --vdd-sweep with the default selection upgrades to the full
     *  voltage-story scheme set (6T, RMW, WG, WG+RB). */
    bool schemesGiven = false;

    /** Measured accesses (--accesses). */
    std::uint64_t accesses = 1'000'000;

    /** Warm-up accesses (--warmup; default accesses/10). */
    std::uint64_t warmup = 0;

    /** Cache shape (--size KB, --ways, --block, --repl). */
    mem::CacheConfig cache;

    /** Set-Buffer entries (--buffer-entries). */
    std::uint32_t bufferEntries = 1;

    /** Disable silent-store detection (--no-silent-detection). */
    bool silentDetection = true;

    /** Enable a real inclusive write-back L2 of the given KiB
     *  capacity (--l2 KB; 0 = disabled). Historically this flag
     *  enabled a tags-only timing shim; it is kept as an alias for
     *  the hierarchy (DESIGN.md §14). */
    std::uint64_t l2SizeKb = 0;

    /** L2 shape/scheme/supply (--l2-ways, --l2-repl, --l2-scheme,
     *  --l2-vdd; each requires --l2). */
    std::uint32_t l2Ways = 8;
    mem::ReplKind l2Repl = mem::ReplKind::Lru;
    core::WriteScheme l2Scheme = core::WriteScheme::Rmw;
    double l2Vdd = 0.0;

    /** Supply voltage operating point in volts (--vdd V; 0 = nominal,
     *  voltage model detached). */
    double vdd = 0.0;

    /** Sweep the default Vdd grid instead of a single run
     *  (--vdd-sweep). */
    bool vddSweep = false;

    /** Run the design-space explorer (--explore; DESIGN.md §12). The
     *  scheme set comes from --scheme/--all when given, else the
     *  voltage-story four (6T, RMW, WG, WG+RB). */
    bool explore = false;

    /** Explorer workload axis (--explore-workloads name,name|all;
     *  empty = every calibrated SPEC profile). */
    std::vector<std::string> exploreWorkloads;

    /** Explorer cache-size axis in KiB (--explore-sizes). */
    std::vector<std::uint64_t> exploreSizesKb = {16, 32, 64, 128};

    /** Explorer associativity axis (--explore-ways). */
    std::vector<std::uint32_t> exploreWays = {2, 4, 8};

    /** Explorer block-size axis (--explore-blocks). */
    std::vector<std::uint32_t> exploreBlocks = {32, 64};

    /** Explorer replacement axis (--explore-repl). */
    std::vector<mem::ReplKind> exploreRepls = {mem::ReplKind::Lru};

    /** Explorer Vdd axis (--explore-vdd V,V|grid|none; empty =
     *  nominal-only, model detached). */
    std::vector<double> exploreVdd;

    /** Explorer L2-capacity axis in KiB (--explore-l2-sizes; empty =
     *  single-level cells). */
    std::vector<std::uint64_t> exploreL2SizesKb;

    /** Shard checkpoint directory (--checkpoint-dir; empty = no
     *  checkpointing). */
    std::string checkpointDir;

    /** Cells per explorer shard (--shard-cells). */
    std::size_t shardCells = 8;

    /** Stop after executing N shards (--explore-max-shards; 0 =
     *  unlimited) — the interrupt half of interrupt/resume. */
    std::uint64_t exploreMaxShards = 0;

    /** Worker threads for multi-scheme runs (--jobs N; 0 = auto:
     *  C8T_JOBS env var, else hardware_concurrency). */
    unsigned jobs = 0;

    /** Stream-cache budget in MiB (--stream-cache MB; 0 disables
     *  memoization, -1 = keep the C8T_STREAM_CACHE_MB / built-in
     *  default). */
    std::int64_t streamCacheMb = -1;

    /** Dump the full statistics registry after the run (--stats). */
    bool dumpStats = false;

    /** Write machine-readable per-scheme stats JSON here
     *  (--stats-json FILE; empty = off). */
    std::string statsJsonFile;

    /** Write a Perfetto-loadable Chrome trace here (--chrome-trace
     *  FILE; empty = C8T_CHROME_TRACE or off). */
    std::string chromeTraceFile;

    /** Per-controller event-ring capacity for per-access slices in
     *  the Chrome trace (--trace-events N; 0 = spans only). */
    std::uint64_t traceEvents = 0;

    /** Write a Prometheus-style metrics exposition here
     *  (--metrics-out FILE; empty = C8T_METRICS or off). Implies the
     *  phase profiler. */
    std::string metricsOutFile;

    /** Append interval counter-delta snapshots (JSON-lines) here
     *  (--interval-stats FILE; empty = off). */
    std::string intervalStatsFile;

    /** Interval snapshot period in accesses (--interval N). */
    std::uint64_t intervalAccesses = 100'000;

    /** Heartbeat sweep progress to stderr (--progress; C8T_PROGRESS
     *  also enables it). */
    bool progress = false;

    /** Emit the result table as CSV (--csv). */
    bool csv = false;

    /** Record the generated stream to this trace file (--record). */
    std::string recordTrace;

    /** --help was given. */
    bool help = false;

    /** Effective warm-up length. */
    std::uint64_t effectiveWarmup() const
    {
        return warmup ? warmup : accesses / 10;
    }
};

/**
 * Parse c8tsim arguments (argv[1..]).
 * @throws std::invalid_argument with a usable message on bad input.
 */
SimOptions parseOptions(const std::vector<std::string> &args);

/**
 * Reduce parsed options to the shared core::JobSpec (DESIGN.md §13) —
 * the same structure a c8td request parses to, so the CLI and the
 * daemon execute through one path (app::runJobSpec) and cannot drift.
 * Output-sink options (--stats-json, --chrome-trace, ...) stay on
 * SimOptions: they describe where results go, not what to run.
 */
core::JobSpec toJobSpec(const SimOptions &opt);

/** The --help text. */
std::string usageText();

/**
 * Construct the workload named by @p spec (see SimOptions::workload).
 * @throws std::invalid_argument on an unknown specifier.
 * @throws std::runtime_error when a trace file cannot be opened.
 */
std::unique_ptr<trace::AccessGenerator>
makeWorkload(const std::string &spec);

/** All valid kernel names accepted by makeWorkload(). */
std::vector<std::string> kernelNames();

} // namespace c8t::app

#endif // C8T_APP_OPTIONS_HH
