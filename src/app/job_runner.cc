/**
 * @file
 * Shared job execution implementation.
 */

#include "app/job_runner.hh"

#include <atomic>
#include <sstream>

#include "app/options.hh"
#include "core/controller.hh"
#include "core/sweep.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "sram/cell.hh"
#include "stats/json.hh"
#include "stats/registry.hh"
#include "trace/spec_profiles.hh"

namespace c8t::app
{

namespace
{

/** Resolve the spec's lower levels into controller LevelConfigs
 *  (DESIGN.md §14): a block size of 0 inherits the L1 block. */
std::vector<core::LevelConfig>
levelConfigs(const core::JobSpec &spec)
{
    std::vector<core::LevelConfig> out;
    out.reserve(spec.levels.size());
    for (const core::LevelSpec &l : spec.levels) {
        core::LevelConfig c;
        c.cache.sizeBytes = l.sizeKb * 1024;
        c.cache.ways = l.ways;
        c.cache.blockBytes =
            l.blockBytes ? l.blockBytes : spec.cache.blockBytes;
        c.cache.replacement = l.repl;
        c.scheme = l.scheme;
        c.vdd = l.vdd;
        out.push_back(c);
    }
    return out;
}

/** Execute a kind-Run job: one sweep job per scheme, per-scheme stats
 *  registries captured on the worker, document identical to c8tsim's
 *  historical writeStatsJson. */
JobOutcome
runPlain(const core::JobSpec &spec, unsigned workers,
         const JobHooks &hooks, bool include_profile)
{
    JobOutcome out;
    out.kind = core::JobKind::Run;

    const std::vector<core::WriteScheme> schemes =
        spec.effectiveSchemes();
    const std::vector<core::LevelConfig> lower = levelConfigs(spec);
    std::vector<core::ControllerConfig> cfgs;
    cfgs.reserve(schemes.size());
    for (core::WriteScheme s : schemes) {
        core::ControllerConfig c;
        c.cache = spec.cache;
        c.scheme = s;
        c.bufferEntries = spec.bufferEntries;
        c.silentDetection = spec.silentDetection;
        c.vdd = spec.vdd;
        c.lowerLevels = lower;
        cfgs.push_back(c);
    }

    const core::RunConfig rc{spec.effectiveWarmup(), spec.accesses};

    std::vector<std::string> stats_json(cfgs.size());
    std::atomic<std::uint64_t> done{0};
    const std::uint64_t total = cfgs.size();

    std::vector<core::SweepJob> jobs(cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const std::string scheme = core::toString(cfgs[i].scheme);
        jobs[i].makeGenerator = [workload = spec.workload] {
            return makeWorkload(workload);
        };
        // One generation shared by every scheme job (and, under the
        // daemon, by every request for the same workload): the
        // specifier names a deterministic stream within this process.
        jobs[i].streamKey = "c8tsim:" + spec.workload;
        jobs[i].configs = {cfgs[i]};
        if (hooks.prepare) {
            jobs[i].prepare = [&hooks, i,
                               scheme](core::MultiSchemeRunner &r) {
                hooks.prepare(i, scheme, r);
            };
        }
        jobs[i].inspect = [&, i, scheme](core::MultiSchemeRunner &r) {
            // The per-scheme registry dump is both the document's
            // "stats" payload and the partial-result payload. The
            // whole stack registers: the top level unprefixed
            // (byte-identical for a single level), lower levels
            // under "l2."/"l3.".
            stats::Registry reg;
            r.stack(0).registerStats(reg);
            std::ostringstream os;
            reg.dumpJson(os);
            stats_json[i] = os.str();
            if (hooks.inspect)
                hooks.inspect(i, scheme, r);
            if (hooks.onProgress) {
                hooks.onProgress(
                    done.fetch_add(1, std::memory_order_relaxed) + 1,
                    total);
            }
        };
    }

    core::ParallelSweeper sweeper(workers);
    const auto per_scheme =
        sweeper.run(jobs, rc, "c8tsim:" + spec.workload);
    for (const auto &r : per_scheme)
        out.runs.push_back(r.at(0));

    const obs::prof::ScopedPhase serialize_scope(
        obs::prof::Phase::Serialize);

    if (hooks.onPartial) {
        for (std::size_t i = 0; i < out.runs.size(); ++i) {
            hooks.onPartial("{\"scheme\":\"" +
                            stats::jsonEscape(out.runs[i].scheme) +
                            "\",\"stats\":" + stats_json[i] + "}");
        }
    }

    std::ostringstream os;
    os << "{\"schema_version\":" << stats::Registry::kJsonSchemaVersion
       << ",\"workload\":\"" << stats::jsonEscape(spec.workload)
       << "\",\"cache\":\"" << stats::jsonEscape(spec.cache.toString())
       << "\",\"measure_accesses\":" << spec.accesses
       << ",\"warmup_accesses\":" << spec.effectiveWarmup();
    if (include_profile) {
        // Fold this thread's times in first so the embedded profile
        // covers the whole run; worker threads already flushed per
        // job.
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
        os << ",\"profile\":";
        obs::globalMetrics().writeProfileJson(os);
    }
    os << ",\"runs\":[";
    for (std::size_t i = 0; i < out.runs.size(); ++i) {
        os << (i ? "," : "") << "\n{\"scheme\":\""
           << stats::jsonEscape(out.runs[i].scheme)
           << "\",\"stats\":" << stats_json[i] << '}';
    }
    os << "\n]}\n";
    out.document = os.str();
    return out;
}

/** Execute a kind-VddSweep job (the c8tsim --vdd-sweep path). */
JobOutcome
runVdd(const core::JobSpec &spec, unsigned workers,
       const JobHooks &hooks)
{
    JobOutcome out;
    out.kind = core::JobKind::VddSweep;

    core::VddSweepSpec vspec;
    vspec.cache = spec.cache;
    vspec.schemes = spec.effectiveSchemes();
    // A hierarchy spec sweeps the L2: the grid voltage and the scheme
    // axis apply to the lower level while the 6T L1 stays at nominal.
    vspec.lowerLevels = levelConfigs(spec);
    if (spec.vdd > 0.0) {
        // An explicit operating point narrows the sweep to it (useful
        // for drilling into one point's fault map).
        vspec.grid = {spec.vdd};
    }
    vspec.makeGenerator = [workload = spec.workload] {
        return makeWorkload(workload);
    };
    vspec.streamKey = "c8tsim:" + spec.workload;

    const core::RunConfig rc{spec.effectiveWarmup(), spec.accesses};
    if (hooks.onProgress)
        hooks.onProgress(0, vspec.grid.size());
    out.vdd = std::make_unique<core::VddSweepResult>(
        core::runVddSweep(vspec, rc, workers));
    if (hooks.onProgress)
        hooks.onProgress(vspec.grid.size(), vspec.grid.size());

    const obs::prof::ScopedPhase serialize_scope(
        obs::prof::Phase::Serialize);

    if (hooks.onPartial) {
        for (const core::VddCurve &c : out.vdd->curves) {
            std::ostringstream p;
            p << "{\"scheme\":\"" << stats::jsonEscape(c.scheme)
              << "\",\"cell\":\"" << sram::toString(c.cell)
              << "\",\"min_vdd\":";
            stats::jsonNumber(p, c.minVdd);
            p << "}";
            hooks.onPartial(p.str());
        }
    }

    std::ostringstream os;
    out.vdd->dumpJson(os);
    os << "\n";
    out.document = os.str();
    return out;
}

/** Execute a kind-Explore job (the c8tsim --explore path). */
JobOutcome
runExploreJob(const core::JobSpec &spec, unsigned workers,
              const JobHooks &hooks)
{
    JobOutcome out;
    out.kind = core::JobKind::Explore;

    core::ExplorerSpec espec;
    // The label is serialized into the result document, so both front
    // ends must use the same one for byte-identity.
    espec.label = "c8tsim_explore";
    espec.workloads = spec.exploreWorkloads.empty()
                          ? trace::specBenchmarkNames()
                          : spec.exploreWorkloads;
    espec.sizesKb = spec.exploreSizesKb;
    espec.ways = spec.exploreWays;
    espec.blocks = spec.exploreBlocks;
    espec.replacements = spec.exploreRepls;
    espec.schemes = spec.effectiveSchemes();
    espec.vddGrid = spec.exploreVdd;
    espec.l2SizesKb = spec.exploreL2SizesKb;
    espec.checkpointDir = spec.checkpointDir;
    espec.cellsPerShard = spec.shardCells;
    espec.maxShards = spec.exploreMaxShards;

    const core::RunConfig rc{spec.effectiveWarmup(), spec.accesses};
    if (hooks.onProgress)
        hooks.onProgress(0, espec.configRunCount());
    out.explore = std::make_unique<core::ExploreResult>(
        core::runExplore(espec, rc, workers));
    if (hooks.onProgress) {
        hooks.onProgress(out.explore->configRunsExecuted,
                         out.explore->configRunsTotal);
    }

    const obs::prof::ScopedPhase serialize_scope(
        obs::prof::Phase::Serialize);

    if (hooks.onPartial) {
        std::ostringstream p;
        p << "{\"shards_total\":" << out.explore->shardsTotal
          << ",\"shards_executed\":" << out.explore->shardsExecuted
          << ",\"shards_resumed\":" << out.explore->shardsResumed
          << ",\"summaries\":" << out.explore->summaries.size() << "}";
        hooks.onPartial(p.str());
    }

    std::ostringstream os;
    out.explore->dumpJson(os);
    os << "\n";
    out.document = os.str();
    return out;
}

} // anonymous namespace

JobOutcome
runJobSpec(const core::JobSpec &spec, unsigned workers,
           const JobHooks &hooks, bool include_profile)
{
    spec.validate();
    switch (spec.kind) {
      case core::JobKind::VddSweep:
        return runVdd(spec, workers, hooks);
      case core::JobKind::Explore:
        return runExploreJob(spec, workers, hooks);
      case core::JobKind::Run:
      default:
        return runPlain(spec, workers, hooks, include_profile);
    }
}

} // namespace c8t::app
