/**
 * @file
 * The shared job execution path (DESIGN.md §13): one core::JobSpec in,
 * one canonical schema-v5 result document out.
 *
 * Both front ends — the c8tsim command line and the c8td sweep daemon
 * — reduce their input to a JobSpec and call runJobSpec, so they
 * cannot drift: identical defaults, identical engine calls, identical
 * serialization, and therefore byte-identical result documents for
 * the same spec (the daemon golden tests diff the two directly).
 *
 * The outcome keeps the typed results (runs / Vdd curves / explore
 * summaries) alongside the document so the CLI can still print its
 * human tables without re-parsing its own JSON.
 */

#ifndef C8T_APP_JOB_RUNNER_HH
#define C8T_APP_JOB_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/explorer.hh"
#include "core/job_spec.hh"
#include "core/simulator.hh"
#include "core/vdd_sweep.hh"

namespace c8t::app
{

/** Optional per-job observability hooks. */
struct JobHooks
{
    /**
     * Incremental completion, (done, total) in config-run units.
     * Reported per finished scheme run for kind Run; coarser (start /
     * finish) for the sweep kinds, whose inner loops the engine owns —
     * liveness there comes from the daemon heartbeat. Called from
     * worker threads; must be thread-safe.
     */
    std::function<void(std::uint64_t done, std::uint64_t total)>
        onProgress;

    /**
     * Partial result payloads (one JSON object per call): per-scheme
     * stats for kind Run, per-scheme curve summaries for a Vdd sweep,
     * shard accounting for an explore. Emitted between completion and
     * final-document assembly — ordering is guaranteed, streaming
     * timing is not (simulation output is reduced at the end).
     */
    std::function<void(const std::string &json)> onPartial;

    /**
     * Per-scheme runner attachment points (kind Run only; the c8tsim
     * event-ring / interval-snapshot plumbing). Same threading
     * contract as SweepJob::prepare / inspect.
     */
    std::function<void(std::size_t index, const std::string &scheme,
                       core::MultiSchemeRunner &runner)>
        prepare;
    std::function<void(std::size_t index, const std::string &scheme,
                       core::MultiSchemeRunner &runner)>
        inspect;
};

/** What a job produced. */
struct JobOutcome
{
    core::JobKind kind = core::JobKind::Run;

    /** Per-scheme snapshots, spec order (kind Run). */
    std::vector<core::SchemeRunResult> runs;

    /** Sweep results (their kind only). */
    std::unique_ptr<core::VddSweepResult> vdd;
    std::unique_ptr<core::ExploreResult> explore;

    /**
     * The canonical result document: exactly the bytes `c8tsim
     * --stats-json` writes for the same spec (schema-v5; trailing
     * newline included). This is what the daemon's final-result frame
     * carries verbatim.
     */
    std::string document;
};

/**
 * Execute @p spec (validated first) and build its canonical document.
 *
 * @param spec           The job (validate() is called; throws
 *                       std::invalid_argument on a bad spec).
 * @param workers        Sweep worker threads; 0 = C8T_JOBS / hardware.
 *                       Ignored when a process SweepPool is installed.
 * @param hooks          Optional progress/partial/obs callbacks.
 * @param includeProfile Embed the process phase profile in a kind-Run
 *                       document (c8tsim passes obs::prof::enabled();
 *                       the daemon always passes false so documents
 *                       stay byte-comparable across server configs).
 */
JobOutcome runJobSpec(const core::JobSpec &spec, unsigned workers = 0,
                      const JobHooks &hooks = {},
                      bool includeProfile = false);

} // namespace c8t::app

#endif // C8T_APP_JOB_RUNNER_HH
