/**
 * @file
 * c8tsim option parsing implementation.
 */

#include "app/options.hh"

#include <sstream>
#include <stdexcept>

#include "sram/vmodel.hh"
#include "trace/kernels.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_io.hh"

namespace c8t::app
{

namespace
{

std::uint64_t
parseU64(const std::string &flag, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos, 10);
        if (pos != value.size())
            throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception &) {
        throw std::invalid_argument(flag + ": expected an integer, got '" +
                                    value + "'");
    }
}

double
parseDouble(const std::string &flag, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception &) {
        throw std::invalid_argument(flag + ": expected a number, got '" +
                                    value + "'");
    }
}

/** Split a comma-separated list ("16,32,64"); empty items rejected. */
std::vector<std::string>
splitList(const std::string &flag, const std::string &value)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(value);
    while (std::getline(is, item, ',')) {
        if (item.empty())
            throw std::invalid_argument(flag + ": empty list item in '" +
                                        value + "'");
        out.push_back(item);
    }
    if (out.empty())
        throw std::invalid_argument(flag + ": empty list");
    return out;
}

std::vector<std::uint64_t>
parseU64List(const std::string &flag, const std::string &value)
{
    std::vector<std::uint64_t> out;
    for (const std::string &item : splitList(flag, value))
        out.push_back(parseU64(flag, item));
    return out;
}

std::vector<double>
parseDoubleList(const std::string &flag, const std::string &value)
{
    std::vector<double> out;
    for (const std::string &item : splitList(flag, value))
        out.push_back(parseDouble(flag, item));
    return out;
}

} // anonymous namespace

std::string
usageText()
{
    std::ostringstream os;
    os << "c8tsim — L1 data cache simulator for 8T-SRAM write schemes\n"
          "\n"
          "usage: c8tsim [options]\n"
          "\n"
          "workload\n"
          "  --workload SPEC     spec:<bench> | kernel:<name> | "
          "trace:<path>   (default spec:gcc)\n"
          "  --accesses N        measured accesses (default 1000000)\n"
          "  --warmup N          warm-up accesses (default accesses/10)\n"
          "  --record PATH       also write the stream to a trace file\n"
          "\n"
          "cache\n"
          "  --size KB           capacity in KiB (default 64)\n"
          "  --ways N            associativity (default 4)\n"
          "  --block B           block size in bytes (default 32)\n"
          "  --repl P            lru | plru | fifo | random (default lru)\n"
          "\n"
          "scheme\n"
          "  --scheme S          6T | RMW | LocalRMW | WordGranular | WG "
          "| WG+RB (repeatable; default RMW and WG+RB)\n"
          "  --all               run every scheme\n"
          "  --buffer-entries N  Set-Buffer entries (default 1)\n"
          "  --no-silent-detection\n"
          "\n"
          "hierarchy (DESIGN.md §14)\n"
          "  --l2 KB             add an inclusive write-back L2 of KB "
          "KiB behind the L1 (deprecated alias of the retired "
          "tags-only shim; now a full second level)\n"
          "  --l2-ways N         L2 associativity (default 8)\n"
          "  --l2-repl P         L2 replacement policy (default lru)\n"
          "  --l2-scheme S       L2 write scheme (default RMW)\n"
          "  --l2-vdd V          L2 supply in volts (default: nominal); "
          "with --vdd-sweep the grid is applied to the L2 instead\n"
          "\n"
          "voltage (DESIGN.md §10)\n"
          "  --vdd V             run at supply voltage V volts "
          "(default: nominal 1.0, model detached)\n"
          "  --vdd-sweep         sweep every scheme over the default "
          "Vdd grid (1.00..0.50 V); prints per-scheme min-Vdd and "
          "energy/EDP curves\n"
          "\n"
          "design-space explorer (DESIGN.md §12)\n"
          "  --explore           cross size x ways x block x repl x "
          "Vdd x scheme x workload, reduce to a Pareto frontier per "
          "workload\n"
          "  --explore-workloads L\n"
          "                      comma list of SPEC profiles, or "
          "'all' (default all 25)\n"
          "  --explore-sizes L   KiB list (default 16,32,64,128)\n"
          "  --explore-ways L    associativity list (default 2,4,8)\n"
          "  --explore-blocks L  block-size list (default 32,64)\n"
          "  --explore-repl L    replacement list (default lru)\n"
          "  --explore-vdd L     volts list (descending), 'grid' for "
          "the default 1.00..0.50 grid, or 'none' for nominal-only "
          "(default none)\n"
          "  --explore-l2-sizes L\n"
          "                      L2 KiB list: every cell becomes a "
          "two-level hierarchy (6T L1, scheme/Vdd axes on the L2)\n"
          "  --checkpoint-dir D  write per-shard checkpoints to D; a "
          "rerun resumes, skipping completed shards byte-identically\n"
          "  --shard-cells N     cells per shard (default 8)\n"
          "  --explore-max-shards N\n"
          "                      stop after executing N shards "
          "(interrupt half of interrupt/resume; 0 = unlimited)\n"
          "\n"
          "execution\n"
          "  --jobs N            worker threads for multi-scheme runs "
          "(default: C8T_JOBS or hardware concurrency)\n"
          "  --stream-cache MB   stream memoization budget in MiB; 0 "
          "disables (default: C8T_STREAM_CACHE_MB or 512)\n"
          "\n"
          "output\n"
          "  --stats             dump the full statistics registry\n"
          "  --stats-json FILE   write per-scheme stats as JSON "
          "(schema-versioned, full histograms)\n"
          "  --csv               print the result table as CSV\n"
          "\n"
          "observability\n"
          "  --chrome-trace FILE write a Perfetto-loadable Chrome trace "
          "(sweep spans; C8T_CHROME_TRACE equivalent)\n"
          "  --trace-events N    also record the last N per-access events "
          "per scheme into the trace (0 = off)\n"
          "  --interval-stats FILE\n"
          "                      append counter-delta snapshots every "
          "--interval accesses (JSON-lines)\n"
          "  --interval N        snapshot period in accesses "
          "(default 100000)\n"
          "  --metrics-out FILE  write a Prometheus-style metrics "
          "exposition (phase times, latency histograms, cache/worker "
          "gauges); implies profiling (C8T_METRICS equivalent)\n"
          "  --progress          heartbeat sweep progress to stderr "
          "(C8T_PROGRESS equivalent)\n"
          "  --help\n"
          "\n"
          "kernels: ";
    bool first = true;
    for (const auto &k : kernelNames()) {
        if (!first)
            os << ", ";
        os << k;
        first = false;
    }
    os << "\nbenchmarks: the 25 calibrated SPEC CPU2006 profiles "
          "(see spec_profiles.cc)\n";
    return os.str();
}

SimOptions
parseOptions(const std::vector<std::string> &args)
{
    SimOptions opt;
    bool &schemes_given = opt.schemesGiven;
    std::string l2_knob; // last --l2-* flag seen (requires --l2)

    auto need_value = [&](std::size_t i, const std::string &flag) {
        if (i + 1 >= args.size())
            throw std::invalid_argument(flag + ": missing value");
        return args[i + 1];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--help" || a == "-h") {
            opt.help = true;
        } else if (a == "--workload") {
            opt.workload = need_value(i++, a);
        } else if (a == "--accesses") {
            opt.accesses = parseU64(a, need_value(i++, a));
            if (opt.accesses == 0)
                throw std::invalid_argument("--accesses: must be > 0");
        } else if (a == "--warmup") {
            opt.warmup = parseU64(a, need_value(i++, a));
        } else if (a == "--record") {
            opt.recordTrace = need_value(i++, a);
        } else if (a == "--size") {
            opt.cache.sizeBytes = parseU64(a, need_value(i++, a)) * 1024;
        } else if (a == "--ways") {
            opt.cache.ways =
                static_cast<std::uint32_t>(parseU64(a, need_value(i++, a)));
        } else if (a == "--block") {
            opt.cache.blockBytes =
                static_cast<std::uint32_t>(parseU64(a, need_value(i++, a)));
        } else if (a == "--repl") {
            opt.cache.replacement = mem::parseReplKind(need_value(i++, a));
        } else if (a == "--scheme") {
            if (!schemes_given)
                opt.schemes.clear();
            schemes_given = true;
            opt.schemes.push_back(
                core::parseWriteScheme(need_value(i++, a)));
        } else if (a == "--all") {
            schemes_given = true;
            opt.schemes = {core::WriteScheme::SixTDirect,
                           core::WriteScheme::Rmw,
                           core::WriteScheme::LocalRmw,
                           core::WriteScheme::WordGranular,
                           core::WriteScheme::WriteGrouping,
                           core::WriteScheme::WriteGroupingReadBypass};
        } else if (a == "--buffer-entries") {
            opt.bufferEntries =
                static_cast<std::uint32_t>(parseU64(a, need_value(i++, a)));
            if (opt.bufferEntries == 0)
                throw std::invalid_argument(
                    "--buffer-entries: must be >= 1");
        } else if (a == "--l2") {
            opt.l2SizeKb = parseU64(a, need_value(i++, a));
        } else if (a == "--l2-ways") {
            l2_knob = a;
            opt.l2Ways =
                static_cast<std::uint32_t>(parseU64(a, need_value(i++, a)));
        } else if (a == "--l2-repl") {
            l2_knob = a;
            opt.l2Repl = mem::parseReplKind(need_value(i++, a));
        } else if (a == "--l2-scheme") {
            l2_knob = a;
            opt.l2Scheme = core::parseWriteScheme(need_value(i++, a));
        } else if (a == "--l2-vdd") {
            l2_knob = a;
            opt.l2Vdd = parseDouble(a, need_value(i++, a));
            if (opt.l2Vdd <= 0.0)
                throw std::invalid_argument("--l2-vdd: must be > 0");
        } else if (a == "--vdd") {
            opt.vdd = parseDouble(a, need_value(i++, a));
            if (opt.vdd <= 0.0)
                throw std::invalid_argument("--vdd: must be > 0");
        } else if (a == "--vdd-sweep") {
            opt.vddSweep = true;
        } else if (a == "--explore") {
            opt.explore = true;
        } else if (a == "--explore-workloads") {
            const std::string v = need_value(i++, a);
            opt.exploreWorkloads =
                v == "all" ? std::vector<std::string>{} : splitList(a, v);
        } else if (a == "--explore-sizes") {
            opt.exploreSizesKb = parseU64List(a, need_value(i++, a));
        } else if (a == "--explore-ways") {
            opt.exploreWays.clear();
            for (const std::uint64_t v :
                 parseU64List(a, need_value(i++, a)))
                opt.exploreWays.push_back(
                    static_cast<std::uint32_t>(v));
        } else if (a == "--explore-blocks") {
            opt.exploreBlocks.clear();
            for (const std::uint64_t v :
                 parseU64List(a, need_value(i++, a)))
                opt.exploreBlocks.push_back(
                    static_cast<std::uint32_t>(v));
        } else if (a == "--explore-repl") {
            opt.exploreRepls.clear();
            for (const std::string &r :
                 splitList(a, need_value(i++, a)))
                opt.exploreRepls.push_back(mem::parseReplKind(r));
        } else if (a == "--explore-l2-sizes") {
            opt.exploreL2SizesKb = parseU64List(a, need_value(i++, a));
        } else if (a == "--explore-vdd") {
            const std::string v = need_value(i++, a);
            if (v == "none")
                opt.exploreVdd.clear();
            else if (v == "grid")
                opt.exploreVdd = sram::VddModel::defaultGrid();
            else
                opt.exploreVdd = parseDoubleList(a, v);
        } else if (a == "--checkpoint-dir") {
            opt.checkpointDir = need_value(i++, a);
        } else if (a == "--shard-cells") {
            opt.shardCells = static_cast<std::size_t>(
                parseU64(a, need_value(i++, a)));
            if (opt.shardCells == 0)
                throw std::invalid_argument(
                    "--shard-cells: must be >= 1");
        } else if (a == "--explore-max-shards") {
            opt.exploreMaxShards = parseU64(a, need_value(i++, a));
        } else if (a == "--jobs") {
            opt.jobs =
                static_cast<unsigned>(parseU64(a, need_value(i++, a)));
            if (opt.jobs == 0)
                throw std::invalid_argument("--jobs: must be >= 1");
        } else if (a == "--stream-cache") {
            opt.streamCacheMb = static_cast<std::int64_t>(
                parseU64(a, need_value(i++, a)));
        } else if (a == "--no-silent-detection") {
            opt.silentDetection = false;
        } else if (a == "--stats") {
            opt.dumpStats = true;
        } else if (a == "--stats-json") {
            opt.statsJsonFile = need_value(i++, a);
        } else if (a == "--chrome-trace") {
            opt.chromeTraceFile = need_value(i++, a);
        } else if (a == "--trace-events") {
            opt.traceEvents = parseU64(a, need_value(i++, a));
        } else if (a == "--metrics-out") {
            opt.metricsOutFile = need_value(i++, a);
        } else if (a == "--interval-stats") {
            opt.intervalStatsFile = need_value(i++, a);
        } else if (a == "--interval") {
            opt.intervalAccesses = parseU64(a, need_value(i++, a));
            if (opt.intervalAccesses == 0)
                throw std::invalid_argument("--interval: must be > 0");
        } else if (a == "--progress") {
            opt.progress = true;
        } else if (a == "--csv") {
            opt.csv = true;
        } else {
            throw std::invalid_argument("unknown option: " + a +
                                        " (try --help)");
        }
    }

    if (!l2_knob.empty() && !opt.l2SizeKb)
        throw std::invalid_argument(l2_knob + ": requires --l2 KB");
    if (!opt.help)
        opt.cache.validate();
    return opt;
}

core::JobSpec
toJobSpec(const SimOptions &opt)
{
    core::JobSpec spec;
    spec.kind = opt.explore    ? core::JobKind::Explore
                : opt.vddSweep ? core::JobKind::VddSweep
                               : core::JobKind::Run;
    spec.workload = opt.workload;
    spec.accesses = opt.accesses;
    spec.warmup = opt.warmup;
    spec.cache = opt.cache;
    // An empty spec scheme set means "kind default", which matches
    // what c8tsim applies when --scheme/--all were not given.
    if (opt.schemesGiven)
        spec.schemes = opt.schemes;
    spec.bufferEntries = opt.bufferEntries;
    spec.silentDetection = opt.silentDetection;
    if (opt.l2SizeKb) {
        core::LevelSpec l2;
        l2.sizeKb = opt.l2SizeKb;
        l2.ways = opt.l2Ways;
        l2.repl = opt.l2Repl;
        l2.scheme = opt.l2Scheme;
        l2.vdd = opt.l2Vdd;
        spec.levels.push_back(l2);
    }
    spec.vdd = opt.vdd;
    spec.exploreWorkloads = opt.exploreWorkloads;
    spec.exploreSizesKb = opt.exploreSizesKb;
    spec.exploreWays = opt.exploreWays;
    spec.exploreBlocks = opt.exploreBlocks;
    spec.exploreRepls = opt.exploreRepls;
    spec.exploreVdd = opt.exploreVdd;
    spec.exploreL2SizesKb = opt.exploreL2SizesKb;
    spec.shardCells = opt.shardCells;
    spec.checkpointDir = opt.checkpointDir;
    spec.exploreMaxShards = opt.exploreMaxShards;
    return spec;
}

std::vector<std::string>
kernelNames()
{
    return {"stream_copy", "stencil3", "pointer_chase", "hash_update",
            "transpose", "fill"};
}

std::unique_ptr<trace::AccessGenerator>
makeWorkload(const std::string &spec)
{
    const auto colon = spec.find(':');
    if (colon == std::string::npos) {
        throw std::invalid_argument(
            "workload must be spec:<bench>, kernel:<name> or "
            "trace:<path>, got '" + spec + "'");
    }
    const std::string kind = spec.substr(0, colon);
    const std::string name = spec.substr(colon + 1);

    if (kind == "spec") {
        try {
            return std::make_unique<trace::MarkovStream>(
                trace::specProfile(name));
        } catch (const std::out_of_range &) {
            throw std::invalid_argument("unknown SPEC benchmark: " + name);
        }
    }
    if (kind == "trace")
        return std::make_unique<trace::TraceReader>(name);
    if (kind == "kernel") {
        // Kernel shapes sized so the default run lengths exercise them
        // meaningfully; pass a trace file for full control.
        if (name == "stream_copy")
            return std::make_unique<trace::StreamCopyKernel>(1'000'000,
                                                             4);
        if (name == "stencil3")
            return std::make_unique<trace::StencilKernel>(1'000'000, 4);
        if (name == "pointer_chase")
            return std::make_unique<trace::PointerChaseKernel>(
                1 << 16, 8'000'000);
        if (name == "hash_update")
            return std::make_unique<trace::HashUpdateKernel>(
                1 << 14, 4'000'000, 0.35, 1.5);
        if (name == "transpose")
            return std::make_unique<trace::TransposeKernel>(1024, 8);
        if (name == "fill")
            return std::make_unique<trace::FillKernel>(500'000, 8);
        throw std::invalid_argument("unknown kernel: " + name);
    }
    throw std::invalid_argument("unknown workload kind: " + kind);
}

} // namespace c8t::app
