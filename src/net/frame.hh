/**
 * @file
 * The c8td wire protocol: length-prefixed frames over a Unix domain
 * stream socket (DESIGN.md §13).
 *
 * One frame is
 *
 *     +------+------------------+--------------------+
 *     | type |  payload length  |      payload       |
 *     | u8   |  u32, big-endian |  <length> bytes    |
 *     +------+------------------+--------------------+
 *
 * Types: Request (client -> server, a JSON job spec), Progress /
 * Partial (server -> client, advisory JSON), Final (server -> client,
 * the raw schema-v5 result document, byte-identical to the one-shot
 * drivers' --stats-json output) and Error (server -> client, JSON
 * naming the failure). Final/Error frames answer Requests strictly in
 * request order per connection; Progress/Partial frames interleave
 * and carry the 0-based request index they belong to.
 *
 * Robustness is the decoder's job: an unknown type byte or a length
 * prefix beyond kMaxFramePayload throws ProtocolError immediately —
 * a garbage or hostile peer cannot make the daemon allocate 4 GiB or
 * mis-sync the stream. Truncated frames (EOF mid-header or
 * mid-payload) are detected by the reader running dry with
 * inProgress() set.
 */

#ifndef C8T_NET_FRAME_HH
#define C8T_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>

namespace c8t::net
{

/** A peer violated the framing rules (fail the connection). */
struct ProtocolError : std::runtime_error
{
    explicit ProtocolError(const std::string &what)
        : std::runtime_error("protocol error: " + what)
    {
    }
};

/** Frame type tags (the wire byte). */
enum class FrameType : std::uint8_t {
    Request = 1,  ///< client -> server: JSON job spec
    Progress = 2, ///< server -> client: liveness / completion counts
    Partial = 3,  ///< server -> client: incremental result payload
    Final = 4,    ///< server -> client: the raw result document
    Error = 5,    ///< server -> client: JSON {"job":N,"error":"..."}
};

/** "request" / "progress" / ... for messages and logs. */
const char *toString(FrameType t);

/** Whether @p byte is a defined frame-type tag. */
bool isFrameType(std::uint8_t byte);

/** Largest accepted payload (64 MiB — a full explore document is
 *  well under 1 MiB; anything bigger is a corrupt or hostile
 *  length prefix). */
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Request;
    std::string payload;
};

/** Serialize one frame (header + payload).
 *  @throws std::invalid_argument when payload exceeds the cap. */
std::string encodeFrame(FrameType type, const std::string &payload);

/**
 * Incremental frame decoder: feed() arbitrary byte chunks as they
 * arrive, pop completed frames with next().
 */
class FrameReader
{
  public:
    /**
     * Consume @p n bytes.
     * @throws ProtocolError on an unknown type byte or an oversized
     *         length prefix (the stream is unrecoverable after this).
     */
    void feed(const char *data, std::size_t n);

    /** Pop the oldest completed frame into @p out. */
    bool next(Frame &out);

    /** Bytes of an incomplete frame are pending (EOF now = truncated
     *  frame). */
    bool inProgress() const { return !_buffer.empty(); }

  private:
    std::string _buffer; ///< partial header/payload bytes
    std::deque<Frame> _ready;
};

} // namespace c8t::net

#endif // C8T_NET_FRAME_HH
