/**
 * @file
 * Daemon client implementation.
 */

#include "net/client.hh"

#include <stdexcept>

#include <sys/socket.h>

namespace c8t::net
{

DaemonClient::DaemonClient(const std::string &path)
    : _fd(connectUnix(path))
{
}

void
DaemonClient::submit(const std::string &spec_json)
{
    const std::string bytes = encodeFrame(FrameType::Request, spec_json);
    writeAll(_fd.get(), bytes.data(), bytes.size());
}

bool
DaemonClient::read(Frame &out)
{
    for (;;) {
        if (_reader.next(out)) {
            if (out.type == FrameType::Request)
                throw ProtocolError(
                    "daemon sent a request frame to a client");
            return true;
        }
        char buf[64 * 1024];
        const std::size_t n = readSome(_fd.get(), buf, sizeof(buf));
        if (n == 0) {
            if (_reader.inProgress())
                throw ProtocolError("connection closed mid-frame");
            return false;
        }
        _reader.feed(buf, n);
    }
}

std::string
DaemonClient::call(const std::string &spec_json)
{
    submit(spec_json);
    Frame f;
    while (read(f)) {
        if (f.type == FrameType::Final)
            return std::move(f.payload);
        if (f.type == FrameType::Error)
            throw std::runtime_error("daemon error: " + f.payload);
        // progress / partial: advisory, skip
    }
    throw ProtocolError("daemon closed before the final result");
}

void
DaemonClient::finishSending()
{
    if (_fd.valid())
        ::shutdown(_fd.get(), SHUT_WR);
}

void
DaemonClient::close()
{
    _fd.close();
}

} // namespace c8t::net
