/**
 * @file
 * Frame codec implementation.
 */

#include "net/frame.hh"

namespace c8t::net
{

const char *
toString(FrameType t)
{
    switch (t) {
      case FrameType::Request:
        return "request";
      case FrameType::Progress:
        return "progress";
      case FrameType::Partial:
        return "partial";
      case FrameType::Final:
        return "final";
      case FrameType::Error:
        return "error";
    }
    return "unknown";
}

bool
isFrameType(std::uint8_t byte)
{
    return byte >= static_cast<std::uint8_t>(FrameType::Request) &&
           byte <= static_cast<std::uint8_t>(FrameType::Error);
}

std::string
encodeFrame(FrameType type, const std::string &payload)
{
    if (payload.size() > kMaxFramePayload)
        throw std::invalid_argument("encodeFrame: payload too large (" +
                                    std::to_string(payload.size()) +
                                    " bytes)");
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    std::string out;
    out.reserve(5 + payload.size());
    out.push_back(static_cast<char>(type));
    out.push_back(static_cast<char>((n >> 24) & 0xff));
    out.push_back(static_cast<char>((n >> 16) & 0xff));
    out.push_back(static_cast<char>((n >> 8) & 0xff));
    out.push_back(static_cast<char>(n & 0xff));
    out += payload;
    return out;
}

void
FrameReader::feed(const char *data, std::size_t n)
{
    _buffer.append(data, n);
    for (;;) {
        if (_buffer.size() < 5)
            return;
        const std::uint8_t type_byte =
            static_cast<std::uint8_t>(_buffer[0]);
        if (!isFrameType(type_byte)) {
            throw ProtocolError("unknown frame type byte " +
                                std::to_string(type_byte));
        }
        const std::uint32_t len =
            (static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(_buffer[1]))
             << 24) |
            (static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(_buffer[2]))
             << 16) |
            (static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(_buffer[3]))
             << 8) |
            static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(_buffer[4]));
        if (len > kMaxFramePayload) {
            throw ProtocolError("length prefix " + std::to_string(len) +
                                " exceeds the " +
                                std::to_string(kMaxFramePayload) +
                                "-byte cap");
        }
        if (_buffer.size() < 5u + len)
            return; // incomplete frame; await more bytes
        Frame f;
        f.type = static_cast<FrameType>(type_byte);
        f.payload.assign(_buffer, 5, len);
        _buffer.erase(0, 5u + len);
        _ready.push_back(std::move(f));
    }
}

bool
FrameReader::next(Frame &out)
{
    if (_ready.empty())
        return false;
    out = std::move(_ready.front());
    _ready.pop_front();
    return true;
}

} // namespace c8t::net
