/**
 * @file
 * c8td — the persistent sweep service (DESIGN.md §13).
 *
 * One daemon process serves sweep / Vdd-sweep / explore jobs to many
 * concurrent clients over a Unix domain socket, multiplexing them
 * onto ONE process-wide SweepPool (fair round-robin across clients),
 * ONE StreamCache and ONE fault-map memo — so a warm daemon answers
 * repeat operating points without regenerating a stream or re-running
 * a Monte-Carlo campaign, and identical repeat requests are served
 * verbatim from a whole-result memo.
 *
 * Per connection the daemon runs a reader thread (frame decode,
 * request queue, disconnect detection) and an executor thread
 * (strict FIFO job execution through app::runJobSpec). Final-result
 * frames carry the raw schema-v5 document bytes — byte-identical to
 * `c8tsim --stats-json` for the same spec, proven by the golden
 * tests. Budgets: the request queue is bounded (maxInflight; the
 * reader applies backpressure by not consuming further frames, so
 * FIFO response order is never violated) and advisory frames
 * (progress/partial) are dropped once a connection's response-byte
 * budget is spent — final/error frames are always delivered.
 *
 * Lifecycle: read-side EOF just ends a connection's request stream
 * (pipelining clients half-close after their last request) — accepted
 * jobs still run and deliver their finals. A client that actually
 * vanished is detected on the write side: the next heartbeat /
 * progress / final frame fails (EPIPE), which drops the client's
 * queue and cancels its slot in the shared pool (unclaimed work is
 * dropped; the in-flight batch completes with JobCancelled and the
 * result is discarded). stop() — the SIGTERM hook — drains: accepted
 * jobs finish and their final frames are delivered before serve()
 * returns.
 */

#ifndef C8T_NET_DAEMON_HH
#define C8T_NET_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/socket.hh"

namespace c8t::core
{
class SweepPool;
}

namespace c8t::net
{

/** Daemon tuning. */
struct DaemonConfig
{
    /** Socket path (required). */
    std::string socketPath;

    /** Shared-pool worker threads; 0 = C8T_JOBS / hardware. */
    unsigned workers = 0;

    /** Per-connection request-queue bound (queued + running). The
     *  reader stops consuming frames while at the bound —
     *  backpressure, not rejection, so response order is preserved. */
    std::size_t maxInflight = 8;

    /** Per-connection response-byte budget for *advisory* frames:
     *  once a connection has been sent this many bytes, progress and
     *  partial frames are dropped (counted in the metrics);
     *  final/error frames are always sent. 0 = unlimited. */
    std::uint64_t responseByteBudget = 0;

    /** Liveness heartbeat period for running jobs (ms; 0 = off). */
    unsigned heartbeatMs = 1000;

    /** Serve identical repeat requests from the whole-result memo. */
    bool memoizeResults = true;
};

/** The sweep service. */
class Daemon
{
  public:
    explicit Daemon(DaemonConfig cfg);
    ~Daemon();
    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind the socket and serve until stop(). Returns after the
     * graceful drain (all accepted jobs answered, workers joined).
     * @throws std::runtime_error when the socket cannot be bound.
     */
    void serve();

    /**
     * Request a graceful shutdown (async-signal-safe: one write(2) to
     * the stop pipe — install it directly as the SIGTERM handler's
     * action). serve() stops accepting, drains accepted jobs and
     * returns.
     */
    void stop();

    /** True once serve() has bound the socket and accepts clients. */
    bool ready() const { return _ready.load(); }

    const DaemonConfig &config() const { return _cfg; }

  private:
    struct Connection;

    void connectionReader(const std::shared_ptr<Connection> &conn);
    void connectionExecutor(const std::shared_ptr<Connection> &conn);
    /** Disconnect handling: a frame write failed, the peer is gone —
     *  drop its queue and cancel its pool slot. */
    void onWireDead(Connection &conn);
    void heartbeatLoop();
    void publishMetrics();
    /** Join and drop finished connections (called between accepts). */
    void reapFinished();

    DaemonConfig _cfg;
    std::unique_ptr<core::SweepPool> _pool;
    Fd _stopRead, _stopWrite; ///< self-pipe: stop() -> accept wakeup
    std::atomic<bool> _ready{false};
    std::atomic<bool> _draining{false};

    std::mutex _connMutex;
    std::vector<std::shared_ptr<Connection>> _connections;
    std::uint64_t _nextConnId = 0;

    // Aggregate counters for the obs::Metrics daemon snapshot.
    std::atomic<std::uint64_t> _connectionsTotal{0};
    std::atomic<std::uint64_t> _connectionsActive{0};
    std::atomic<std::uint64_t> _jobsAccepted{0};
    std::atomic<std::uint64_t> _jobsRunning{0};
    std::atomic<std::uint64_t> _jobsSucceeded{0};
    std::atomic<std::uint64_t> _jobsFailed{0};
    std::atomic<std::uint64_t> _jobsCancelled{0};
    std::atomic<std::uint64_t> _memoHits{0};
    std::atomic<std::uint64_t> _bytesOut{0};
    std::atomic<std::uint64_t> _framesDropped{0};

    std::mutex _memoMutex;
    /** Canonical spec JSON -> final document (results are pure
     *  functions of the spec, so replaying bytes is always safe). */
    std::unordered_map<std::string, std::shared_ptr<const std::string>>
        _resultMemo;

    double _traceT0Us = 0.0; ///< serve() start on the steady clock
};

} // namespace c8t::net

#endif // C8T_NET_DAEMON_HH
