/**
 * @file
 * AF_UNIX socket wrapper implementation.
 */

#include "net/socket.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace c8t::net
{

namespace
{

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un
makeAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("socket path too long (" +
                                 std::to_string(path.size()) + " > " +
                                 std::to_string(sizeof(addr.sun_path) -
                                                1) +
                                 "): " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // anonymous namespace

Fd &
Fd::operator=(Fd &&other) noexcept
{
    if (this != &other) {
        close();
        _fd = other._fd;
        other._fd = -1;
    }
    return *this;
}

void
Fd::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

void
Fd::shutdownBoth()
{
    if (_fd >= 0)
        ::shutdown(_fd, SHUT_RDWR);
}

void
Fd::shutdownRead()
{
    if (_fd >= 0)
        ::shutdown(_fd, SHUT_RD);
}

std::size_t
readSome(int fd, char *buf, std::size_t n)
{
    for (;;) {
        const ssize_t r = ::read(fd, buf, n);
        if (r >= 0)
            return static_cast<std::size_t>(r);
        if (errno == EINTR)
            continue;
        if (errno == ECONNRESET)
            return 0; // vanished peer == closing peer
        throwErrno("read");
    }
}

void
writeAll(int fd, const char *buf, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        // MSG_NOSIGNAL: a vanished peer must be an EPIPE exception,
        // not a process-killing SIGPIPE — the daemon's disconnect
        // detection lives on this error path.
        const ssize_t w =
            ::send(fd, buf + off, n - off, MSG_NOSIGNAL);
        if (w >= 0) {
            off += static_cast<std::size_t>(w);
            continue;
        }
        if (errno == EINTR)
            continue;
        throwErrno("write");
    }
}

UnixListener::UnixListener(const std::string &path) : _path(path)
{
    const sockaddr_un addr = makeAddr(path);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        throwErrno("socket");
    // A stale socket file from a killed daemon would make bind fail;
    // removing it first is the conventional Unix-socket dance.
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind " + path);
    if (::listen(fd.get(), 64) != 0)
        throwErrno("listen " + path);
    _fd = std::move(fd);
}

UnixListener::~UnixListener()
{
    _fd.close();
    ::unlink(_path.c_str());
}

Fd
UnixListener::accept(int wake_fd)
{
    for (;;) {
        pollfd fds[2];
        fds[0].fd = _fd.get();
        fds[0].events = POLLIN;
        fds[1].fd = wake_fd;
        fds[1].events = POLLIN;
        const int n = ::poll(fds, wake_fd >= 0 ? 2 : 1, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("poll");
        }
        if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLHUP)))
            return Fd{}; // stop requested
        if (!(fds[0].revents & POLLIN))
            continue;
        const int conn = ::accept(_fd.get(), nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            throwErrno("accept");
        }
        return Fd(conn);
    }
}

Fd
connectUnix(const std::string &path)
{
    const sockaddr_un addr = makeAddr(path);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        throwErrno("socket");
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        throwErrno("connect " + path);
    return fd;
}

} // namespace c8t::net
