/**
 * @file
 * Client side of the c8td frame protocol — used by c8tctl, the
 * daemon tests and bench_daemon. One DaemonClient is one connection;
 * it is deliberately synchronous (submit / read frames), since the
 * protocol's FIFO contract makes request/response association
 * positional.
 */

#ifndef C8T_NET_CLIENT_HH
#define C8T_NET_CLIENT_HH

#include <cstddef>
#include <string>

#include "net/frame.hh"
#include "net/socket.hh"

namespace c8t::net
{

/** One connection to a c8td daemon. */
class DaemonClient
{
  public:
    /** Connect to the daemon socket at @p path.
     *  @throws std::runtime_error when nothing listens there. */
    explicit DaemonClient(const std::string &path);

    /** Queue one job: send a request frame carrying @p spec_json. */
    void submit(const std::string &spec_json);

    /**
     * Block for the next frame from the daemon.
     * @return false on orderly EOF (daemon closed the connection).
     * @throws ProtocolError on a malformed stream (including EOF
     *         mid-frame) or an unexpected request frame.
     */
    bool read(Frame &out);

    /**
     * Convenience: submit @p spec_json and block until its final
     * result, discarding progress/partial frames on the way.
     * Call only with no other submissions outstanding.
     * @return the raw schema-v5 result document bytes.
     * @throws std::runtime_error carrying the daemon's error payload
     *         when the job fails, ProtocolError on a broken stream.
     */
    std::string call(const std::string &spec_json);

    /** Half-close: tell the daemon no more requests are coming. */
    void finishSending();

    /** Close the connection. */
    void close();

    int fd() const { return _fd.get(); }

  private:
    Fd _fd;
    FrameReader _reader;
};

} // namespace c8t::net

#endif // C8T_NET_CLIENT_HH
