/**
 * @file
 * Thin RAII wrappers over AF_UNIX stream sockets — just enough POSIX
 * for the c8td daemon and c8tctl client, kept in one place so the
 * rest of net/ deals in fds, frames and exceptions only.
 */

#ifndef C8T_NET_SOCKET_HH
#define C8T_NET_SOCKET_HH

#include <cstddef>
#include <string>

namespace c8t::net
{

/** Owning socket/file descriptor (move-only; closes on destruction). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : _fd(fd) {}
    ~Fd() { close(); }
    Fd(Fd &&other) noexcept : _fd(other._fd) { other._fd = -1; }
    Fd &operator=(Fd &&other) noexcept;
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return _fd; }
    bool valid() const { return _fd >= 0; }
    /** Close now (idempotent). */
    void close();
    /** shutdown(2) both directions (wakes a blocked reader). */
    void shutdownBoth();
    /** shutdown(2) the read side only. */
    void shutdownRead();

  private:
    int _fd = -1;
};

/**
 * Read up to @p n bytes (one read(2), EINTR-retried).
 * @return bytes read; 0 = orderly EOF.
 * @throws std::runtime_error on a read error (except ECONNRESET,
 *         which is reported as EOF — a vanished peer and a closing
 *         peer are the same event to the daemon).
 */
std::size_t readSome(int fd, char *buf, std::size_t n);

/** Write all @p n bytes (EINTR-retried, partial writes resumed).
 *  @throws std::runtime_error on error (including EPIPE). */
void writeAll(int fd, const char *buf, std::size_t n);

/** A listening AF_UNIX stream socket bound to @p path. */
class UnixListener
{
  public:
    /**
     * Bind + listen. An existing socket file at @p path is unlinked
     * first (stale socket from a killed daemon); the file is unlinked
     * again on destruction.
     * @throws std::runtime_error (with errno text) on failure, e.g. a
     *         path longer than sun_path.
     */
    explicit UnixListener(const std::string &path);
    ~UnixListener();
    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /**
     * Accept one connection, or return an invalid Fd when @p wake_fd
     * becomes readable first (the daemon's stop pipe) or accept is
     * interrupted by shutdown.
     */
    Fd accept(int wake_fd);

    int fd() const { return _fd.get(); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
    Fd _fd;
};

/** Connect to the daemon at @p path.
 *  @throws std::runtime_error when nothing listens there. */
Fd connectUnix(const std::string &path);

} // namespace c8t::net

#endif // C8T_NET_SOCKET_HH
