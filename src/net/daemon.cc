/**
 * @file
 * Sweep-service daemon implementation.
 */

#include "net/daemon.hh"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "app/job_runner.hh"
#include "core/job_spec.hh"
#include "core/worker_pool.hh"
#include "net/frame.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "stats/json.hh"

namespace c8t::net
{

namespace
{

using Clock = std::chrono::steady_clock;

double
usSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
        .count();
}

/** Chrome-trace pid for the daemon's connection tracks (1 = sweep
 *  workers, 2 = per-access rings). */
constexpr int kTracePid = 3;

} // anonymous namespace

/** Per-connection state shared by the reader/executor/heartbeat
 *  threads. */
struct Daemon::Connection
{
    std::uint64_t id = 0;
    Fd fd;
    core::SweepPool::ClientId client = 0;

    std::mutex mutex; ///< queue + lifecycle
    std::condition_variable cv;
    std::deque<std::string> queue; ///< request payloads, FIFO
    std::size_t running = 0;       ///< 0 or 1 (executor is serial)
    bool closed = false;           ///< reader saw EOF / fatal error

    std::mutex writeMutex; ///< one frame at a time on the wire
    std::uint64_t bytesOut = 0;
    bool writeFailed = false;

    std::uint64_t nextJob = 0;  ///< request index (reader)
    std::atomic<std::uint64_t> activeJob{0};
    std::atomic<bool> jobActive{false};
    Clock::time_point jobStart;

    std::uint64_t jobsDone = 0;
    double startUs = 0.0; ///< connection open, trace timebase

    std::thread reader;
    std::thread executor;
    std::atomic<bool> finished{false};

    /**
     * Send one frame. Advisory (droppable) frames are skipped once
     * the response-byte budget is spent; mandatory frames always go
     * out. A failed write means the peer is gone — that (not read-side
     * EOF, which a half-closing client produces legitimately) is the
     * daemon's disconnect signal, and it runs the cancel path.
     * Returns false when the frame was dropped or the wire is dead.
     */
    bool send(Daemon &d, FrameType type, const std::string &payload,
              bool droppable)
    {
        const std::string bytes = encodeFrame(type, payload);
        bool just_died = false;
        {
            const std::lock_guard<std::mutex> lock(writeMutex);
            if (writeFailed)
                return false;
            if (droppable && d._cfg.responseByteBudget &&
                bytesOut + bytes.size() > d._cfg.responseByteBudget) {
                d._framesDropped.fetch_add(1,
                                           std::memory_order_relaxed);
                return false;
            }
            try {
                writeAll(fd.get(), bytes.data(), bytes.size());
                bytesOut += bytes.size();
                d._bytesOut.fetch_add(bytes.size(),
                                      std::memory_order_relaxed);
            } catch (const std::exception &) {
                writeFailed = true;
                just_died = true;
            }
        }
        if (just_died)
            d.onWireDead(*this);
        return !just_died;
    }
};

Daemon::Daemon(DaemonConfig cfg) : _cfg(std::move(cfg))
{
    int fds[2];
    if (::pipe(fds) != 0)
        throw std::runtime_error("daemon: cannot create stop pipe");
    _stopRead = Fd(fds[0]);
    _stopWrite = Fd(fds[1]);
}

Daemon::~Daemon() = default;

void
Daemon::stop()
{
    // Async-signal-safe: a single write(2); serve()'s accept poll
    // wakes on the pipe.
    const char byte = 1;
    [[maybe_unused]] const ssize_t r =
        ::write(_stopWrite.get(), &byte, 1);
}

void
Daemon::publishMetrics()
{
    obs::Metrics::DaemonSnapshot snap;
    snap.connectionsActive = _connectionsActive.load();
    snap.connectionsTotal = _connectionsTotal.load();
    snap.jobsAccepted = _jobsAccepted.load();
    snap.jobsRunning = _jobsRunning.load();
    snap.jobsSucceeded = _jobsSucceeded.load();
    snap.jobsFailed = _jobsFailed.load();
    snap.jobsCancelled = _jobsCancelled.load();
    snap.memoHits = _memoHits.load();
    snap.bytesOut = _bytesOut.load();
    snap.framesDropped = _framesDropped.load();
    obs::globalMetrics().noteDaemon(snap);

    if (_pool) {
        const core::SweepPool::Stats ps = _pool->stats();
        obs::Metrics::PoolStats out;
        out.tasksRun = ps.tasksRun;
        out.tasksCancelled = ps.tasksCancelled;
        out.batches = ps.batches;
        out.activeClients = ps.activeClients;
        out.queuedTasks = ps.queuedTasks;
        out.workers = ps.workers;
        obs::globalMetrics().setPool(out);
    }
}

void
Daemon::connectionReader(const std::shared_ptr<Connection> &conn)
{
    FrameReader reader;
    char buf[64 * 1024];
    bool protocol_fault = false;
    std::string fault_what;

    try {
        for (;;) {
            const std::size_t n =
                readSome(conn->fd.get(), buf, sizeof(buf));
            if (n == 0) {
                if (reader.inProgress() && !_draining.load()) {
                    // EOF inside a frame: a truncated request. There
                    // is no job to answer; just note it.
                    std::cerr << "c8td: connection " << conn->id
                              << ": truncated frame at EOF\n";
                }
                break;
            }
            reader.feed(buf, n);
            Frame f;
            while (reader.next(f)) {
                if (f.type != FrameType::Request) {
                    throw ProtocolError(
                        std::string("client sent a ") +
                        net::toString(f.type) + " frame");
                }
                _jobsAccepted.fetch_add(1, std::memory_order_relaxed);
                std::unique_lock<std::mutex> lock(conn->mutex);
                // In-flight budget: backpressure. Holding the frame
                // here (not reading more bytes) keeps response order
                // exact and pushes the cost onto the greedy client's
                // socket buffer.
                conn->cv.wait(lock, [&] {
                    return conn->queue.size() + conn->running <
                               _cfg.maxInflight ||
                           conn->closed;
                });
                if (conn->closed)
                    break;
                conn->queue.push_back(std::move(f.payload));
                conn->cv.notify_all();
            }
        }
    } catch (const ProtocolError &e) {
        protocol_fault = true;
        fault_what = e.what();
    } catch (const std::exception &e) {
        protocol_fault = true;
        fault_what = e.what();
    }

    if (protocol_fault) {
        // The stream is unrecoverable; tell the client why, then
        // abandon its work.
        conn->send(*this, FrameType::Error,
                   "{\"job\":-1,\"error\":\"" +
                       stats::jsonEscape(fault_what) + "\"}",
                   /*droppable=*/false);
    }

    // Plain EOF just ends the request stream (a pipelining client
    // half-closes after its last request; a SIGTERM drain SHUT_RDs
    // us): accepted jobs still run and deliver their finals. A client
    // that actually vanished is detected on the *write* side — the
    // next heartbeat/progress/final frame fails and runs the cancel
    // path (onWireDead).
    {
        const std::lock_guard<std::mutex> lock(conn->mutex);
        conn->closed = true;
    }
    conn->cv.notify_all();
    if (protocol_fault)
        onWireDead(*conn);
}

void
Daemon::onWireDead(Connection &conn)
{
    // The peer is unreachable: nothing it asked for can be delivered,
    // so drop its queue and cancel its slot in the shared pool (the
    // in-flight batch completes with JobCancelled; unclaimed tasks
    // are dropped, freeing the workers for live clients).
    if (_pool)
        _pool->cancelClient(conn.client);
    {
        const std::lock_guard<std::mutex> lock(conn.mutex);
        conn.closed = true;
        conn.queue.clear();
    }
    conn.cv.notify_all();
}

void
Daemon::connectionExecutor(const std::shared_ptr<Connection> &conn)
{
    const core::SweepPool::ClientScope scope(conn->client);

    for (;;) {
        std::string payload;
        {
            std::unique_lock<std::mutex> lock(conn->mutex);
            conn->cv.wait(lock, [&] {
                return !conn->queue.empty() || conn->closed;
            });
            if (conn->queue.empty())
                break; // closed and drained
            payload = std::move(conn->queue.front());
            conn->queue.pop_front();
            conn->running = 1;
            conn->cv.notify_all(); // reader backpressure release
        }

        const std::uint64_t job = conn->nextJob++;
        conn->activeJob.store(job);
        conn->jobStart = Clock::now();
        conn->jobActive.store(true);
        _jobsRunning.fetch_add(1, std::memory_order_relaxed);
        bool cancelled = false;

        try {
            const core::JobSpec spec =
                core::JobSpec::fromJsonText(payload);
            const std::string memo_key = spec.toJson();

            std::shared_ptr<const std::string> document;
            if (_cfg.memoizeResults) {
                const std::lock_guard<std::mutex> lock(_memoMutex);
                const auto it = _resultMemo.find(memo_key);
                if (it != _resultMemo.end())
                    document = it->second;
            }

            if (document) {
                _memoHits.fetch_add(1, std::memory_order_relaxed);
            } else {
                app::JobHooks hooks;
                hooks.onProgress = [&](std::uint64_t done,
                                       std::uint64_t total) {
                    std::ostringstream os;
                    os << "{\"job\":" << job
                       << ",\"state\":\"running\",\"done\":" << done
                       << ",\"total\":" << total << "}";
                    conn->send(*this, FrameType::Progress, os.str(),
                               /*droppable=*/true);
                };
                hooks.onPartial = [&](const std::string &partial) {
                    std::ostringstream os;
                    os << "{\"job\":" << job
                       << ",\"partial\":" << partial << "}";
                    conn->send(*this, FrameType::Partial, os.str(),
                               /*droppable=*/true);
                };
                // The daemon never embeds the process profile: the
                // document must stay byte-comparable to a non-profiled
                // one-shot run regardless of server configuration.
                app::JobOutcome outcome = app::runJobSpec(
                    spec, _cfg.workers, hooks, /*includeProfile=*/false);
                document = std::make_shared<const std::string>(
                    std::move(outcome.document));
                if (_cfg.memoizeResults) {
                    const std::lock_guard<std::mutex> lock(_memoMutex);
                    _resultMemo.emplace(memo_key, document);
                }
            }

            conn->send(*this, FrameType::Final, *document,
                       /*droppable=*/false);
            _jobsSucceeded.fetch_add(1, std::memory_order_relaxed);
        } catch (const core::JobCancelled &) {
            _jobsCancelled.fetch_add(1, std::memory_order_relaxed);
            cancelled = true;
        } catch (const std::exception &e) {
            std::ostringstream os;
            os << "{\"job\":" << job << ",\"error\":\""
               << stats::jsonEscape(e.what()) << "\"}";
            conn->send(*this, FrameType::Error, os.str(),
                       /*droppable=*/false);
            _jobsFailed.fetch_add(1, std::memory_order_relaxed);
        }

        const double wall_us =
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      conn->jobStart)
                .count();
        conn->jobActive.store(false);
        _jobsRunning.fetch_sub(1, std::memory_order_relaxed);
        obs::globalMetrics().recordDaemonJobNs(
            static_cast<std::uint64_t>(wall_us * 1000.0));
        ++conn->jobsDone;

        if (obs::ChromeTraceWriter *trace = obs::globalTrace()) {
            trace->completeEvent(
                "conn" + std::to_string(conn->id) + "/job" +
                    std::to_string(job),
                "daemon", kTracePid,
                static_cast<int>(conn->id) + 1,
                usSince(Clock::time_point{}) - wall_us - _traceT0Us,
                wall_us);
        }

        publishMetrics();
        obs::writeGlobalMetrics();

        {
            const std::lock_guard<std::mutex> lock(conn->mutex);
            conn->running = 0;
            conn->cv.notify_all();
        }
        if (cancelled)
            break;
    }

    // Last one out: close the wire and the pool slot.
    conn->fd.shutdownBoth();
    if (_pool)
        _pool->unregisterClient(conn->client);
    if (obs::ChromeTraceWriter *trace = obs::globalTrace()) {
        std::ostringstream args;
        args << "{\"jobs\":" << conn->jobsDone << "}";
        trace->completeEvent(
            "conn" + std::to_string(conn->id), "daemon", kTracePid,
            static_cast<int>(conn->id) + 1, conn->startUs - _traceT0Us,
            usSince(Clock::time_point{}) - conn->startUs, args.str());
    }
    _connectionsActive.fetch_sub(1, std::memory_order_relaxed);
    publishMetrics();
    conn->finished.store(true);
}

void
Daemon::heartbeatLoop()
{
    if (!_cfg.heartbeatMs)
        return;
    while (!_draining.load()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(_cfg.heartbeatMs));
        std::vector<std::shared_ptr<Connection>> conns;
        {
            const std::lock_guard<std::mutex> lock(_connMutex);
            conns = _connections;
        }
        for (const auto &conn : conns) {
            if (!conn->jobActive.load())
                continue;
            const double elapsed_ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - conn->jobStart)
                    .count();
            std::ostringstream os;
            os << "{\"job\":" << conn->activeJob.load()
               << ",\"state\":\"heartbeat\",\"elapsed_ms\":"
               << static_cast<std::uint64_t>(elapsed_ms) << "}";
            conn->send(*this, FrameType::Progress, os.str(),
                       /*droppable=*/true);
        }
        publishMetrics();
        obs::writeGlobalMetrics();
    }
}

void
Daemon::reapFinished()
{
    const std::lock_guard<std::mutex> lock(_connMutex);
    auto it = _connections.begin();
    while (it != _connections.end()) {
        if ((*it)->finished.load()) {
            if ((*it)->reader.joinable())
                (*it)->reader.join();
            if ((*it)->executor.joinable())
                (*it)->executor.join();
            it = _connections.erase(it);
        } else {
            ++it;
        }
    }
}

void
Daemon::serve()
{
    if (_cfg.socketPath.empty())
        throw std::invalid_argument("daemon: no socket path");

    _pool = std::make_unique<core::SweepPool>(_cfg.workers);
    core::setGlobalSweepPool(_pool.get());
    _traceT0Us = usSince(Clock::time_point{});

    UnixListener listener(_cfg.socketPath);
    _ready.store(true);
    publishMetrics();
    obs::writeGlobalMetrics();

    std::thread heartbeat([this] { heartbeatLoop(); });

    for (;;) {
        Fd conn_fd = listener.accept(_stopRead.get());
        if (!conn_fd.valid())
            break; // stop() fired
        reapFinished();

        auto conn = std::make_shared<Connection>();
        conn->fd = std::move(conn_fd);
        conn->client = _pool->registerClient();
        conn->startUs = usSince(Clock::time_point{});
        {
            const std::lock_guard<std::mutex> lock(_connMutex);
            conn->id = _nextConnId++;
            _connections.push_back(conn);
        }
        _connectionsTotal.fetch_add(1, std::memory_order_relaxed);
        _connectionsActive.fetch_add(1, std::memory_order_relaxed);
        publishMetrics();

        conn->reader =
            std::thread([this, conn] { connectionReader(conn); });
        conn->executor =
            std::thread([this, conn] { connectionExecutor(conn); });
    }

    // Graceful drain: stop reading new requests (our own SHUT_RD; the
    // reader sees EOF with _draining set and does NOT cancel), let
    // executors finish the accepted queues and deliver their finals.
    _draining.store(true);
    {
        const std::lock_guard<std::mutex> lock(_connMutex);
        for (const auto &conn : _connections)
            conn->fd.shutdownRead();
    }
    {
        std::vector<std::shared_ptr<Connection>> conns;
        {
            const std::lock_guard<std::mutex> lock(_connMutex);
            conns = _connections;
        }
        for (const auto &conn : conns) {
            if (conn->reader.joinable())
                conn->reader.join();
            if (conn->executor.joinable())
                conn->executor.join();
        }
        const std::lock_guard<std::mutex> lock(_connMutex);
        _connections.clear();
    }
    if (heartbeat.joinable())
        heartbeat.join();

    core::setGlobalSweepPool(nullptr);
    _pool.reset();
    _ready.store(false);
    publishMetrics();
    obs::writeGlobalMetrics();
}

} // namespace c8t::net
