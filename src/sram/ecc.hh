/**
 * @file
 * SEC-DED error protection: Hamming(72,64) with overall parity.
 *
 * Bit-interleaved arrays exist so that one of these per-word codes is
 * sufficient: a physical multi-bit burst becomes at most one bit per
 * logical word. The fault-injection experiment (tab_ecc_interleaving)
 * drives this code with and without interleaving to reproduce that
 * motivation quantitatively.
 */

#ifndef C8T_SRAM_ECC_HH
#define C8T_SRAM_ECC_HH

#include <array>
#include <cstdint>

namespace c8t::sram
{

/** A 72-bit SEC-DED codeword (64 data + 7 Hamming + 1 overall parity). */
class Codeword72
{
  public:
    /** Number of bits in the codeword. */
    static constexpr std::uint32_t bits = 72;

    /** Bit value at @p idx (0..71). */
    bool get(std::uint32_t idx) const;

    /** Set bit @p idx to @p v. */
    void set(std::uint32_t idx, bool v);

    /** Flip bit @p idx (fault injection). */
    void flip(std::uint32_t idx);

    /** Raw storage (two little-endian 64-bit words; bits 64..71 in
     *  the low byte of the second word). */
    const std::array<std::uint64_t, 2> &raw() const { return _w; }

    /** Bitwise equality. */
    bool operator==(const Codeword72 &other) const = default;

  private:
    std::array<std::uint64_t, 2> _w{0, 0};
};

/** Outcome of a SEC-DED decode. */
enum class EccStatus : std::uint8_t {
    /** No error detected. */
    Ok,
    /** A single-bit error was detected and corrected. */
    Corrected,
    /** A double-bit error was detected; data is not trustworthy. */
    DetectedUncorrectable,
};

/** Human readable status name. */
const char *toString(EccStatus s);

/** Decode result: status plus best-effort data. */
struct EccDecodeResult
{
    EccStatus status = EccStatus::Ok;
    std::uint64_t data = 0;
};

/**
 * Hamming(72,64) SEC-DED codec.
 *
 * Layout: codeword positions 1..71 follow the classic Hamming
 * construction (positions that are powers of two hold check bits, the
 * remaining 64 positions hold data bits in ascending order); codeword
 * bit 0 holds the overall parity of positions 1..71.
 */
class SecDed72
{
  public:
    /** Encode 64 data bits into a 72-bit codeword. */
    static Codeword72 encode(std::uint64_t data);

    /**
     * Decode a (possibly corrupted) codeword.
     *
     * Guarantees: any single-bit error is corrected; any double-bit
     * error is detected (but not corrected). Three or more errors may
     * alias — exactly the regime bit interleaving exists to avoid.
     */
    static EccDecodeResult decode(const Codeword72 &cw);

  private:
    static bool isCheckPosition(std::uint32_t pos);
};

} // namespace c8t::sram

#endif // C8T_SRAM_ECC_HH
