/**
 * @file
 * Cell model implementations.
 */

#include "sram/cell.hh"

#include <algorithm>
#include <cmath>

namespace c8t::sram
{

const char *
toString(CellType t)
{
    return t == CellType::SixT ? "6T" : "8T";
}

bool
Cell6T::read(double vdd, double vdd_stable)
{
    const bool sensed = _q;
    if (vdd < vdd_stable) {
        // Read disturb: the voltage divider across the access device
        // raises the internal '0' node above the trip point. Worst-case
        // behavioural model: the cell flips.
        _q = !_q;
    }
    return sensed;
}

void
Cell6T::halfSelect(double vdd, double vdd_stable)
{
    // Identical bias condition to a read; discard the sensed value.
    (void)read(vdd, vdd_stable);
}

double
noiseMargin(CellType type, CellOp op, double vdd, const StabilityParams &p)
{
    const double overdrive = std::max(vdd - p.vth, 0.0);
    switch (op) {
      case CellOp::Hold:
        return p.kHold * overdrive;
      case CellOp::Read:
        if (type == CellType::SixT)
            return p.kRead6T * overdrive;
        // 8T: the read stack is decoupled from the storage node, so
        // read stability equals hold stability.
        return p.kHold * overdrive;
      case CellOp::Write:
        return p.kWrite * overdrive;
    }
    return 0.0;
}

namespace
{

/** Standard normal upper-tail probability Q(x) = P(N(0,1) > x). */
double
gaussianTail(double x)
{
    return 0.5 * std::erfc(x / std::sqrt(2.0));
}

} // anonymous namespace

double
failureProbability(CellType type, CellOp op, double vdd,
                   const StabilityParams &p)
{
    const double margin = noiseMargin(type, op, vdd, p);
    // Margin variation grows as the supply shrinks: sigma scales with
    // sigmaVth amplified at low voltage (random dopant fluctuation has
    // proportionally more impact near threshold).
    const double sigma = p.sigmaVth * std::sqrt(1.0 / std::max(vdd, 0.2));
    if (sigma <= 0.0)
        return margin > 0.0 ? 0.0 : 1.0;
    // Failure when the Gaussian margin sample falls below zero.
    return gaussianTail(margin / sigma);
}

double
vmin(CellType type, double target_pfail, const StabilityParams &p)
{
    // The binding constraint is the worst operation at each voltage.
    auto worst_pfail = [&](double v) {
        return std::max({failureProbability(type, CellOp::Hold, v, p),
                         failureProbability(type, CellOp::Read, v, p),
                         failureProbability(type, CellOp::Write, v, p)});
    };

    double lo = p.vth;
    double hi = 1.4;
    if (worst_pfail(hi) > target_pfail)
        return hi; // not attainable in range; report the ceiling

    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (worst_pfail(mid) <= target_pfail)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace c8t::sram
