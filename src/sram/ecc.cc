/**
 * @file
 * Hamming(72,64) SEC-DED implementation.
 */

#include "sram/ecc.hh"

#include <cassert>

namespace c8t::sram
{

bool
Codeword72::get(std::uint32_t idx) const
{
    assert(idx < bits);
    return (_w[idx >> 6] >> (idx & 63)) & 1;
}

void
Codeword72::set(std::uint32_t idx, bool v)
{
    assert(idx < bits);
    const std::uint64_t mask = 1ull << (idx & 63);
    if (v)
        _w[idx >> 6] |= mask;
    else
        _w[idx >> 6] &= ~mask;
}

void
Codeword72::flip(std::uint32_t idx)
{
    assert(idx < bits);
    _w[idx >> 6] ^= 1ull << (idx & 63);
}

const char *
toString(EccStatus s)
{
    switch (s) {
      case EccStatus::Ok:
        return "ok";
      case EccStatus::Corrected:
        return "corrected";
      case EccStatus::DetectedUncorrectable:
        return "detected_uncorrectable";
    }
    return "?";
}

bool
SecDed72::isCheckPosition(std::uint32_t pos)
{
    return (pos & (pos - 1)) == 0; // powers of two: 1, 2, 4, ..., 64
}

Codeword72
SecDed72::encode(std::uint64_t data)
{
    Codeword72 cw;

    // Scatter data bits into non-power-of-two positions 1..71.
    std::uint32_t data_idx = 0;
    for (std::uint32_t pos = 1; pos <= 71; ++pos) {
        if (isCheckPosition(pos))
            continue;
        cw.set(pos, (data >> data_idx) & 1);
        ++data_idx;
    }
    assert(data_idx == 64);

    // Hamming check bits: check bit at position p covers every position
    // whose index has bit p set.
    for (std::uint32_t p = 1; p <= 64; p <<= 1) {
        bool parity = false;
        for (std::uint32_t pos = 1; pos <= 71; ++pos) {
            if (pos != p && (pos & p))
                parity ^= cw.get(pos);
        }
        cw.set(p, parity);
    }

    // Overall parity over positions 1..71 stored at position 0.
    bool overall = false;
    for (std::uint32_t pos = 1; pos <= 71; ++pos)
        overall ^= cw.get(pos);
    cw.set(0, overall);

    return cw;
}

EccDecodeResult
SecDed72::decode(const Codeword72 &cw)
{
    // Syndrome: xor of the indices of all set positions.
    std::uint32_t syndrome = 0;
    for (std::uint32_t pos = 1; pos <= 71; ++pos) {
        if (cw.get(pos))
            syndrome ^= pos;
    }

    bool overall = cw.get(0);
    for (std::uint32_t pos = 1; pos <= 71; ++pos)
        overall ^= cw.get(pos);
    const bool parity_error = overall; // nonzero xor => parity mismatch

    Codeword72 fixed = cw;
    EccStatus status;

    if (syndrome == 0 && !parity_error) {
        status = EccStatus::Ok;
    } else if (parity_error) {
        // Odd number of errors; assume one and correct it. A syndrome
        // of zero means the overall-parity bit itself flipped.
        if (syndrome != 0) {
            if (syndrome <= 71) {
                fixed.flip(syndrome);
                status = EccStatus::Corrected;
            } else {
                status = EccStatus::DetectedUncorrectable;
            }
        } else {
            fixed.set(0, !fixed.get(0));
            status = EccStatus::Corrected;
        }
    } else {
        // Even number of errors with a non-zero syndrome: double error.
        status = EccStatus::DetectedUncorrectable;
    }

    // Gather the (possibly corrected) data bits.
    EccDecodeResult result;
    result.status = status;
    std::uint32_t data_idx = 0;
    for (std::uint32_t pos = 1; pos <= 71; ++pos) {
        if (isCheckPosition(pos))
            continue;
        if (fixed.get(pos))
            result.data |= 1ull << data_idx;
        ++data_idx;
    }
    return result;
}

} // namespace c8t::sram
