/**
 * @file
 * Write-assist implementation.
 */

#include "sram/write_assist.hh"

#include <cassert>

#include "trace/rng.hh"

namespace c8t::sram
{

const char *
toString(AssistLevel l)
{
    switch (l) {
      case AssistLevel::Nominal:
        return "nominal";
      case AssistLevel::WidePulse:
        return "wide_pulse";
      case AssistLevel::BoostedVoltage:
        return "boosted";
    }
    return "?";
}

WriteAssist::WriteAssist(std::uint32_t rows, WriteAssistParams params)
    : _params(params), _rowClass(rows, 0)
{
    assert(rows > 0);
    trace::Rng rng(_params.seed);
    for (auto &cls : _rowClass) {
        if (rng.chance(_params.weakRowFraction)) {
            cls = rng.chance(_params.boostNeedingFraction)
                      ? 2 : 1;
        }
    }
}

bool
WriteAssist::rowIsWeak(std::uint32_t row) const
{
    assert(row < _rowClass.size());
    return _rowClass[row] != 0;
}

AssistLevel
WriteAssist::write(std::uint32_t row)
{
    assert(row < _rowClass.size());
    switch (_rowClass[row]) {
      case 0:
        ++_nominal;
        return AssistLevel::Nominal;
      case 1:
        ++_wide;
        return AssistLevel::WidePulse;
      default:
        ++_boosted;
        return AssistLevel::BoostedVoltage;
    }
}

double
WriteAssist::meanLatencyFactor() const
{
    const std::uint64_t total =
        _nominal.value() + _wide.value() + _boosted.value();
    if (total == 0)
        return 1.0;
    const double sum =
        static_cast<double>(_nominal.value()) +
        _wide.value() * _params.widePulseLatencyFactor +
        _boosted.value() * _params.boostLatencyFactor;
    return sum / static_cast<double>(total);
}

double
WriteAssist::meanEnergyFactor() const
{
    const std::uint64_t total =
        _nominal.value() + _wide.value() + _boosted.value();
    if (total == 0)
        return 1.0;
    const double sum =
        static_cast<double>(_nominal.value()) +
        _wide.value() * _params.widePulseEnergyFactor +
        _boosted.value() * _params.boostEnergyFactor;
    return sum / static_cast<double>(total);
}

} // namespace c8t::sram
