/**
 * @file
 * The 8T array's 1R/1W port pair.
 *
 * 8T cells give the array one read port (RWL/RBL) and one write port
 * (WWL/WBL) that can operate in the same cycle — unless the write is an
 * RMW, whose read phase occupies the read port too, which is one of the
 * performance costs the paper attacks. This scheduler tracks when each
 * port is next free and measures the contention.
 */

#ifndef C8T_SRAM_PORTS_HH
#define C8T_SRAM_PORTS_HH

#include <algorithm>
#include <cstdint>

#include "stats/counter.hh"
#include "stats/registry.hh"

namespace c8t::sram
{

/** Which ports an operation occupies. */
enum class PortUse : std::uint8_t {
    /** Read port only (a plain array read). */
    ReadPort,
    /** Write port only (a write-back whose row image is buffered). */
    WritePort,
    /** Both ports (an RMW write: read phase + write phase). */
    BothPorts,
};

/**
 * Busy-until scheduler for the 1R/1W port pair.
 *
 * Operations are scheduled in non-decreasing request time; each returns
 * its actual start cycle after waiting for the ports it needs.
 */
class PortScheduler
{
  public:
    PortScheduler() = default;

    /**
     * Schedule an operation.
     *
     * Inline: this runs once or twice per simulated access
     * (DESIGN.md §7).
     *
     * @param use      Ports occupied.
     * @param earliest First cycle the operation could start.
     * @param duration Cycles the ports stay busy.
     * @return The cycle the operation actually starts.
     */
    std::uint64_t schedule(PortUse use, std::uint64_t earliest,
                           std::uint32_t duration)
    {
        const bool needs_read = use != PortUse::WritePort;
        const bool needs_write = use != PortUse::ReadPort;

        std::uint64_t start = earliest;
        if (needs_read)
            start = std::max(start, _readFreeAt);
        if (needs_write)
            start = std::max(start, _writeFreeAt);

        if (start > earliest) {
            ++_conflicts;
            _stallCycles += start - earliest;
        }

        const std::uint64_t end = start + duration;
        if (needs_read) {
            _readFreeAt = end;
            _readBusy += duration;
        }
        if (needs_write) {
            _writeFreeAt = end;
            _writeBusy += duration;
        }
        return start;
    }

    /** Cycle at which the read port becomes free. */
    std::uint64_t readFreeAt() const { return _readFreeAt; }

    /** Cycle at which the write port becomes free. */
    std::uint64_t writeFreeAt() const { return _writeFreeAt; }

    /** Total cycles operations spent waiting for a busy port. */
    std::uint64_t stallCycles() const { return _stallCycles.value(); }

    /** Number of operations that had to wait. */
    std::uint64_t conflicts() const { return _conflicts.value(); }

    /** Total cycles the read port was held. */
    std::uint64_t readBusyCycles() const { return _readBusy.value(); }

    /** Total cycles the write port was held. */
    std::uint64_t writeBusyCycles() const { return _writeBusy.value(); }

    /** Reset schedule and counters. */
    void reset();

    /** Register the contention counters with @p reg. */
    void registerStats(stats::Registry &reg,
                       const std::string &prefix = std::string());

  private:
    std::uint64_t _readFreeAt = 0;
    std::uint64_t _writeFreeAt = 0;

    stats::Counter _stallCycles{"ports.stall_cycles",
                                "cycles spent waiting for a busy port"};
    stats::Counter _conflicts{"ports.conflicts",
                              "operations delayed by port contention"};
    stats::Counter _readBusy{"ports.read_busy_cycles",
                             "cycles the read port was held"};
    stats::Counter _writeBusy{"ports.write_busy_cycles",
                              "cycles the write port was held"};
};

} // namespace c8t::sram

#endif // C8T_SRAM_PORTS_HH
