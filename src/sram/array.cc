/**
 * @file
 * SRAM array implementation.
 */

#include "sram/array.hh"

#include <cassert>
#include <stdexcept>

#include "trace/rng.hh"

namespace c8t::sram
{

SRAMArray::SRAMArray(ArrayGeometry geom)
    : _geom(geom),
      _map(geom.wordsPerRow(), ArrayGeometry::bitsPerWord,
           geom.interleaveDegree)
{
    if (_geom.rows == 0)
        throw std::invalid_argument("SRAMArray: zero rows");
    if (_geom.bytesPerRow == 0 || _geom.bytesPerRow % 8 != 0)
        throw std::invalid_argument(
            "SRAMArray: bytesPerRow must be a positive multiple of 8");
    if (_geom.wordsPerRow() % _geom.interleaveDegree != 0)
        throw std::invalid_argument(
            "SRAMArray: words per row must be a multiple of the "
            "interleave degree");

    _rows.assign(_geom.rows, RowData(_geom.bytesPerRow, 0));
}

void
SRAMArray::readRowInto(std::uint32_t row, RowData &out)
{
    assert(row < _geom.rows);
    ++_precharges;
    ++_rowReads;
    out = _rows[row];
}

RowData
SRAMArray::readRow(std::uint32_t row)
{
    RowData out;
    readRowInto(row, out);
    return out;
}

void
SRAMArray::writeRow(std::uint32_t row, const RowData &data)
{
    assert(row < _geom.rows);
    assert(data.size() == _geom.bytesPerRow);
    ++_rowWrites;
    _rows[row] = data;
}

void
SRAMArray::mergeBytes(std::uint32_t row, std::uint32_t offset,
                      const std::uint8_t *bytes, std::size_t len)
{
    assert(row < _geom.rows);
    assert(offset + len <= _geom.bytesPerRow);
    ++_rowWrites;
    std::copy(bytes, bytes + len, _rows[row].begin() + offset);
}

void
SRAMArray::writePartialUnsafe(std::uint32_t row, std::uint32_t offset,
                              const std::uint8_t *bytes, std::size_t len)
{
    assert(row < _geom.rows);
    assert(offset + len <= _geom.bytesPerRow);
    ++_rowWrites;
    ++_opCounter;

    RowData &r = _rows[row];

    const bool word_aligned = offset % 8 == 0 && len % 8 == 0;
    if (_geom.wordGranularWwl && word_aligned) {
        // Segmented WWL: only the addressed words' word-line segments
        // rise, so the unselected columns are never biased.
        std::copy(bytes, bytes + len, r.begin() + offset);
        return;
    }

    // Shared WWL: every cell in the row is written with whatever its
    // write bit lines carry. The selected range carries real data; the
    // half-selected columns carry undefined values, modelled as a
    // deterministic pseudo-random pattern per operation.
    std::uint64_t noise_state =
        (static_cast<std::uint64_t>(row) << 32) ^ _opCounter;
    for (std::uint32_t i = 0; i < _geom.bytesPerRow; ++i) {
        if (i >= offset && i < offset + len) {
            r[i] = bytes[i - offset];
        } else {
            const auto garbage = static_cast<std::uint8_t>(
                trace::splitmix64(noise_state));
            if (r[i] != garbage)
                _halfSelectCorruptions += 8; // whole byte of cells biased
            r[i] = garbage;
        }
    }
}

const RowData &
SRAMArray::peekRow(std::uint32_t row) const
{
    assert(row < _geom.rows);
    return _rows[row];
}

void
SRAMArray::pokeRow(std::uint32_t row, const RowData &data)
{
    assert(row < _geom.rows);
    assert(data.size() == _geom.bytesPerRow);
    _rows[row] = data;
}

bool
SRAMArray::physicalBit(std::uint32_t row, std::uint32_t col) const
{
    assert(row < _geom.rows && col < _geom.columns());
    const std::uint32_t word = _map.wordOf(col);
    const std::uint32_t bit = _map.bitOf(col);
    const std::uint32_t byte = word * 8 + bit / 8;
    return (_rows[row][byte] >> (bit % 8)) & 1;
}

void
SRAMArray::flipPhysicalBit(std::uint32_t row, std::uint32_t col)
{
    assert(row < _geom.rows && col < _geom.columns());
    const std::uint32_t word = _map.wordOf(col);
    const std::uint32_t bit = _map.bitOf(col);
    const std::uint32_t byte = word * 8 + bit / 8;
    _rows[row][byte] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void
SRAMArray::registerStats(stats::Registry &reg, const std::string &prefix)
{
    reg.add(_rowReads, prefix);
    reg.add(_rowWrites, prefix);
    reg.add(_precharges, prefix);
    reg.add(_halfSelectCorruptions, prefix);
}

void
SRAMArray::resetCounters()
{
    _rowReads.reset();
    _rowWrites.reset();
    _precharges.reset();
    _halfSelectCorruptions.reset();
}

} // namespace c8t::sram
