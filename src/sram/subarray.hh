/**
 * @file
 * Sub-array conflict model.
 *
 * Park et al. (the LocalRMW baseline) exploit hierarchical read bit
 * lines: the RMW's read phase stays inside one sub-array, so a
 * concurrent read can proceed — unless it targets the *same* sub-array,
 * which is busy performing the write-back. This model quantifies that
 * residual blocking: it tracks per-sub-array busy windows and reports
 * how often a read would have been blocked under
 *
 *  - global RMW   (any in-flight write blocks every read),
 *  - LocalRMW     (blocks reads to the busy sub-array only),
 *  - WG-style write-backs (write port only; reads never blocked).
 */

#ifndef C8T_SRAM_SUBARRAY_HH
#define C8T_SRAM_SUBARRAY_HH

#include <cstdint>
#include <vector>

#include "stats/counter.hh"

namespace c8t::sram
{

/** How a write engages the array for conflict purposes. */
enum class WriteStyle : std::uint8_t {
    /** Global RMW: the shared read port is held for the whole row
     *  operation — every concurrent read is blocked. */
    GlobalRmw,
    /** Park et al.: only the target sub-array is unavailable. */
    LocalRmw,
    /** Set-Buffer write-back: the read path is untouched. */
    BufferedWriteback,
};

/** Human readable style name. */
const char *toString(WriteStyle s);

/**
 * Tracks sub-array occupancy over time and classifies read-vs-write
 * conflicts for one write style.
 */
class SubarrayModel
{
  public:
    /**
     * @param rows             Total array rows.
     * @param rows_per_subarray Vertical partition size (> 0).
     * @param style            Write engagement style.
     */
    SubarrayModel(std::uint32_t rows, std::uint32_t rows_per_subarray,
                  WriteStyle style);

    /** Number of sub-arrays. */
    std::uint32_t subarrays() const { return _subarrays; }

    /** Sub-array containing @p row. */
    std::uint32_t subarrayOf(std::uint32_t row) const
    {
        return row / _rowsPerSubarray;
    }

    /**
     * Record a write to @p row occupying its resources during
     * [@p start, @p start + @p duration).
     */
    void write(std::uint32_t row, std::uint64_t start,
               std::uint32_t duration);

    /**
     * Attempt a read of @p row at @p when.
     * @return The cycle the read can actually start (== @p when if
     *         unblocked).
     */
    std::uint64_t read(std::uint32_t row, std::uint64_t when);

    /** Reads attempted. */
    std::uint64_t reads() const { return _reads.value(); }

    /** Reads delayed by an in-flight write. */
    std::uint64_t blockedReads() const { return _blockedReads.value(); }

    /** Total cycles reads spent blocked. */
    std::uint64_t blockedCycles() const
    {
        return _blockedCycles.value();
    }

    /** The style in effect. */
    WriteStyle style() const { return _style; }

  private:
    std::uint32_t _rowsPerSubarray;
    std::uint32_t _subarrays;
    WriteStyle _style;

    /** Per-sub-array busy-until cycle. */
    std::vector<std::uint64_t> _busyUntil;

    /** Global read-port busy-until (GlobalRmw only). */
    std::uint64_t _globalBusyUntil = 0;

    stats::Counter _reads{"subarray.reads", "reads attempted"};
    stats::Counter _blockedReads{"subarray.blocked_reads",
                                 "reads delayed by writes"};
    stats::Counter _blockedCycles{"subarray.blocked_cycles",
                                  "cycles reads spent blocked"};
};

} // namespace c8t::sram

#endif // C8T_SRAM_SUBARRAY_HH
