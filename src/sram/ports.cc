/**
 * @file
 * Port scheduler implementation.
 */

#include "sram/ports.hh"

#include <algorithm>

namespace c8t::sram
{

void
PortScheduler::registerStats(stats::Registry &reg)
{
    reg.add(_stallCycles);
    reg.add(_conflicts);
    reg.add(_readBusy);
    reg.add(_writeBusy);
}

void
PortScheduler::reset()
{
    _readFreeAt = 0;
    _writeFreeAt = 0;
    _stallCycles.reset();
    _conflicts.reset();
    _readBusy.reset();
    _writeBusy.reset();
}

} // namespace c8t::sram
