/**
 * @file
 * Port scheduler implementation.
 */

#include "sram/ports.hh"

#include <algorithm>

namespace c8t::sram
{

std::uint64_t
PortScheduler::schedule(PortUse use, std::uint64_t earliest,
                        std::uint32_t duration)
{
    const bool needs_read = use != PortUse::WritePort;
    const bool needs_write = use != PortUse::ReadPort;

    std::uint64_t start = earliest;
    if (needs_read)
        start = std::max(start, _readFreeAt);
    if (needs_write)
        start = std::max(start, _writeFreeAt);

    if (start > earliest) {
        ++_conflicts;
        _stallCycles += start - earliest;
    }

    const std::uint64_t end = start + duration;
    if (needs_read) {
        _readFreeAt = end;
        _readBusy += duration;
    }
    if (needs_write) {
        _writeFreeAt = end;
        _writeBusy += duration;
    }
    return start;
}

void
PortScheduler::registerStats(stats::Registry &reg)
{
    reg.add(_stallCycles);
    reg.add(_conflicts);
    reg.add(_readBusy);
    reg.add(_writeBusy);
}

void
PortScheduler::reset()
{
    _readFreeAt = 0;
    _writeFreeAt = 0;
    _stallCycles.reset();
    _conflicts.reset();
    _readBusy.reset();
    _writeBusy.reset();
}

} // namespace c8t::sram
