/**
 * @file
 * Port scheduler implementation.
 */

#include "sram/ports.hh"

#include <algorithm>

namespace c8t::sram
{

void
PortScheduler::registerStats(stats::Registry &reg,
                             const std::string &prefix)
{
    reg.add(_stallCycles, prefix);
    reg.add(_conflicts, prefix);
    reg.add(_readBusy, prefix);
    reg.add(_writeBusy, prefix);
}

void
PortScheduler::reset()
{
    _readFreeAt = 0;
    _writeFreeAt = 0;
    _stallCycles.reset();
    _conflicts.reset();
    _readBusy.reset();
    _writeBusy.reset();
}

} // namespace c8t::sram
