/**
 * @file
 * "cacti-lite": an analytic energy / latency / area model for the cache
 * data array and the proposed buffers, in the spirit of the CACTI tool
 * the paper cites for geometry arguments.
 *
 * The model is deliberately first-order: every energy is a switched
 * capacitance (sum of per-cell wire loads over the wire's span) times
 * V^2 times an activity factor, every latency is a lumped RC, every
 * area is a cell count times a per-cell footprint plus a periphery
 * overhead. Constants are representative of a 45 nm bulk process —
 * documented inline — and only *relative* magnitudes matter for the
 * paper's claims (a Set-Buffer access is far cheaper than a row access;
 * the Set-Buffer adds < 0.2 % area).
 */

#ifndef C8T_SRAM_ENERGY_HH
#define C8T_SRAM_ENERGY_HH

#include <cstdint>

#include "sram/array.hh"

namespace c8t::sram
{

/** Process / circuit constants (representative 45 nm values). */
struct TechParams
{
    /** Supply voltage (V). */
    double vdd = 1.0;

    /** Bit line capacitance contributed by one cell (F). */
    double cBitlinePerCell = 0.10e-15;

    /** Word line capacitance contributed by one cell (F). */
    double cWordlinePerCell = 0.07e-15;

    /** Sense amp / column latch input capacitance per column (F). */
    double cSensePerColumn = 1.2e-15;

    /** Capacitance of one Set-Buffer latch bit (F). */
    double cLatchBit = 0.9e-15;

    /** Capacitance of one tag-comparator XOR input (F). */
    double cCompareBit = 0.6e-15;

    /** Effective driver resistance (ohm) for RC latency estimates. */
    double rDriver = 4.0e3;

    /** Effective cell pull-down resistance (ohm). */
    double rCell = 9.0e3;

    /** 6T cell footprint (m^2): 0.374 um^2 at 45 nm. */
    double area6T = 0.374e-12;

    /** 8T cell footprint (m^2): ~30 % over 6T at 45 nm. */
    double area8T = 0.486e-12;

    /** Periphery (decoders, drivers, mux) area overhead fraction. */
    double peripheryOverhead = 0.35;

    /** Leakage per cell (W). */
    double leakPerCell = 15.0e-12;

    /** Rows per subarray after vertical partitioning. */
    std::uint32_t rowsPerSubarray = 128;

    /** Columns per subarray after horizontal partitioning. */
    std::uint32_t colsPerSubarray = 256;
};

/**
 * Per-event energy constants for deferred (count-then-multiply)
 * accounting. The controller's hot path increments integer event
 * counters only; the accumulated dynamic energy is materialized on
 * demand by multiplying each count against the constant below — every
 * constant is produced by the exact EnergyModel call the historical
 * per-access accumulation made, so the materialized total matches the
 * per-access sum to summation-order rounding (ULPs).
 */
struct EnergyEventRates
{
    /** Largest request size with its own bucket (bytes). */
    static constexpr std::uint32_t kMaxRequestBytes = 8;

    /** Full row read / write. */
    double rowRead = 0.0;
    double rowWrite = 0.0;

    /** Partial (6T / word-granular) writes, indexed by bytes 1..8. */
    double partialWrite[kMaxRequestBytes + 1] = {};

    /** Request-sized Set-Buffer accesses, indexed by bytes 1..8. */
    double setBufferRead[kMaxRequestBytes + 1] = {};
    double setBufferWrite[kMaxRequestBytes + 1] = {};

    /** Row-sized Set-Buffer accesses (write-back latch read, fill). */
    double setBufferReadRow = 0.0;
    double setBufferWriteRow = 0.0;

    /** One Tag-Buffer probe of the configured geometry. */
    double tagCompare = 0.0;
};

/**
 * Energy / latency / area model for one data array plus the WG/WG+RB
 * buffers attached to it.
 */
class EnergyModel
{
  public:
    /**
     * @param geom Array organisation (rows = sets, bytesPerRow = set
     *             size in bytes).
     * @param tech Process constants.
     */
    EnergyModel(ArrayGeometry geom, TechParams tech = TechParams{});

    // --- per-operation energies (J) -------------------------------------

    /** Full row read: precharge + RBL swing + RWL + sense. */
    double rowReadEnergy() const;

    /** Full row write: WBL pair swing + WWL + cell internal nodes. */
    double rowWriteEnergy() const;

    /**
     * Partial write of @p bytes (a 6T or word-granular-WWL write):
     * the word line still spans the row but only the selected columns'
     * bit lines are driven.
     */
    double partialWriteEnergy(std::uint32_t bytes) const;

    /** Read of @p bytes from the Set-Buffer latches. */
    double setBufferReadEnergy(std::uint32_t bytes) const;

    /** Write of @p bytes into the Set-Buffer latches. */
    double setBufferWriteEnergy(std::uint32_t bytes) const;

    /** One Tag-Buffer probe (@p tag_bits wide, @p ways comparators). */
    double tagCompareEnergy(std::uint32_t tag_bits,
                            std::uint32_t ways) const;

    /**
     * Precompute the per-event constants for deferred accounting.
     *
     * @param tag_bits  Tag width of the attached Tag-Buffer probes.
     * @param ways      Comparators per probe.
     * @param row_bytes Row image size (= set bytes) for the row-sized
     *                  Set-Buffer transfers.
     */
    EnergyEventRates eventRates(std::uint32_t tag_bits,
                                std::uint32_t ways,
                                std::uint32_t row_bytes) const;

    // --- latencies (s) ---------------------------------------------------

    /** Row read latency: RWL RC + RBL discharge RC + sense. */
    double rowReadLatency() const;

    /** Row write latency: WWL RC + WBL drive. */
    double rowWriteLatency() const;

    /** Set-Buffer access latency (small latch array, mux). */
    double setBufferLatency() const;

    // --- static power / area ---------------------------------------------

    /** Array leakage power (W). */
    double leakagePower() const;

    /** Data array area (m^2), cells + periphery, for @p cell_type. */
    double dataArrayArea(CellType cell_type) const;

    /** Set-Buffer area (m^2): one row of latches (2x cell footprint). */
    double setBufferArea() const;

    /**
     * Set-Buffer area overhead relative to the 8T data array
     * (the paper's §5.4: < 0.2 % for the 64 KB baseline).
     */
    double setBufferOverheadFraction() const;

    /**
     * Tag-Buffer storage bits: set index + @p ways tags of
     * @p tag_bits each + the Dirty bit (paper: < 150 bits for the
     * baseline with 48-bit physical addresses).
     */
    static std::uint32_t tagBufferBits(std::uint32_t set_index_bits,
                                       std::uint32_t tag_bits,
                                       std::uint32_t ways);

    /** The geometry this model was built for. */
    const ArrayGeometry &geometry() const { return _geom; }

    /** The technology constants in effect. */
    const TechParams &tech() const { return _tech; }

  private:
    /** Columns of one subarray actually cycled by a row operation. */
    double activeColumns() const;

    /** Bit line capacitance seen by one column (F). */
    double bitlineCap() const;

    /** Word line capacitance across the active columns (F). */
    double wordlineCap() const;

    ArrayGeometry _geom;
    TechParams _tech;
};

} // namespace c8t::sram

#endif // C8T_SRAM_ENERGY_HH
