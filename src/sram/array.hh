/**
 * @file
 * The bit-interleaved 8T SRAM array model.
 *
 * The array is the physical substrate under the cache data store: one
 * physical row per cache set (which is exactly the granularity of the
 * paper's Set-Buffer). Word lines are shared by a whole row, so the only
 * *safe* write is a full-row write whose unselected columns carry the
 * values they already hold — i.e. a read-modify-write. The model makes
 * the unsafe alternative observable: writePartialUnsafe() leaves the
 * half-selected columns' write bit lines carrying garbage, corrupting
 * them, exactly the column-selection failure the paper describes.
 *
 * Storage layout note: rows are stored as logical bytes; the physical
 * bit ordering (interleaving) is applied lazily through the bijective
 * InterleaveMap when physical coordinates are used (fault injection,
 * physical inspection). This is behaviourally identical to storing
 * physical bits — the map is a bijection — and keeps the simulation
 * hot path at memcpy speed.
 */

#ifndef C8T_SRAM_ARRAY_HH
#define C8T_SRAM_ARRAY_HH

#include <cstdint>
#include <vector>

#include "sram/cell.hh"
#include "sram/interleave.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"

namespace c8t::sram
{

/** Logical contents of one row. */
using RowData = std::vector<std::uint8_t>;

/** Static organisation of one SRAM array. */
struct ArrayGeometry
{
    /** Number of physical rows (= cache sets for a data array). */
    std::uint32_t rows = 512;

    /** Logical bytes per row (= assoc * block size for a data array). */
    std::uint32_t bytesPerRow = 128;

    /** Bit-interleave degree (1 = non-interleaved). */
    std::uint32_t interleaveDegree = 4;

    /**
     * Chang-style segmented write word lines: when true, partial writes
     * aligned to 64-bit words assert only their word's WWL segment and
     * are safe without RMW (at the area/ECC cost the paper describes).
     * When false (the common shared-WWL design) any partial write
     * corrupts the half-selected columns.
     */
    bool wordGranularWwl = false;

    /** Bits per logical/ECC word. */
    static constexpr std::uint32_t bitsPerWord = 64;

    /** Logical 64-bit words per row. */
    std::uint32_t wordsPerRow() const { return bytesPerRow / 8; }

    /** Physical columns per row. */
    std::uint32_t columns() const { return bytesPerRow * 8; }
};

/**
 * One SRAM array: functional storage plus event counting.
 *
 * All state-changing entry points count the circuit events they imply
 * (precharge, row read, row write) so energy accounting can be derived
 * from counters alone.
 */
class SRAMArray
{
  public:
    /**
     * Build a zero-initialised array.
     * @throws std::invalid_argument on inconsistent geometry.
     */
    explicit SRAMArray(ArrayGeometry geom);

    /** Geometry this array was built with. */
    const ArrayGeometry &geometry() const { return _geom; }

    /** The interleaving map in effect. */
    const InterleaveMap &map() const { return _map; }

    // --- counted circuit operations -----------------------------------

    /**
     * Read one full row (precharge RBLs, assert RWL, sense).
     * @param row Row index.
     * @param out Filled with the row's logical bytes.
     */
    void readRowInto(std::uint32_t row, RowData &out);

    /**
     * Counted row read returning a reference to the stored image
     * instead of copying it out (DESIGN.md §7). Same precharge/read
     * accounting as readRowInto(); the reference is invalidated by the
     * next write to the row.
     */
    const RowData &readRowRef(std::uint32_t row)
    {
        ++_precharges;
        ++_rowReads;
        return _rows[row];
    }

    /**
     * Counted full-row write performed in place: counts one row write
     * and hands the caller the row image to overwrite. Equivalent to
     * composing the new image elsewhere and calling writeRow() — every
     * column's write driver carries a defined value either way.
     */
    RowData &updateRow(std::uint32_t row)
    {
        ++_rowWrites;
        return _rows[row];
    }

    /** Convenience wrapper returning a fresh vector. */
    RowData readRow(std::uint32_t row);

    /**
     * Full-row write (the write-back half of an RMW): every column's
     * write driver carries a defined value, so nothing is corrupted.
     * @param row  Row index.
     * @param data Exactly bytesPerRow bytes.
     */
    void writeRow(std::uint32_t row, const RowData &data);

    /**
     * Partial write on an array where that is architecturally safe: a
     * 6T array (half-selected cells tolerate the read-like bias) or a
     * word-granular-WWL 8T array with an aligned range. Counts one row
     * write; only the addressed bytes change.
     *
     * @param row    Row index.
     * @param offset Byte offset of the written range within the row.
     * @param bytes  Bytes to write (offset + len <= bytesPerRow).
     * @param len    Number of bytes.
     */
    void mergeBytes(std::uint32_t row, std::uint32_t offset,
                    const std::uint8_t *bytes, std::size_t len);

    /** Convenience overload taking a byte vector. */
    void mergeBytes(std::uint32_t row, std::uint32_t offset,
                    const std::vector<std::uint8_t> &bytes)
    {
        mergeBytes(row, offset, bytes.data(), bytes.size());
    }

    /**
     * Partial write WITHOUT read-modify-write. The written byte range
     * behaves normally; every half-selected column outside it is
     * clobbered with garbage (deterministic per operation), unless the
     * geometry has word-granular WWLs and the range is word-aligned,
     * in which case the write is safe and only the range changes.
     *
     * This models asserting the shared WWL with undefined write bit
     * lines in the unselected columns; it exists so tests and the
     * motivation experiments can demonstrate the column-selection
     * failure, not for use by correct controllers.
     *
     * @param row    Row index.
     * @param offset Byte offset of the written range within the row.
     * @param bytes  Bytes to write (offset + len <= bytesPerRow).
     * @param len    Number of bytes.
     */
    void writePartialUnsafe(std::uint32_t row, std::uint32_t offset,
                            const std::uint8_t *bytes, std::size_t len);

    /** Convenience overload taking a byte vector. */
    void writePartialUnsafe(std::uint32_t row, std::uint32_t offset,
                            const std::vector<std::uint8_t> &bytes)
    {
        writePartialUnsafe(row, offset, bytes.data(), bytes.size());
    }

    // --- backdoor (uncounted) access -----------------------------------

    /** Inspect a row without causing circuit events. */
    const RowData &peekRow(std::uint32_t row) const;

    /** Overwrite a row without causing circuit events (test setup). */
    void pokeRow(std::uint32_t row, const RowData &data);

    /** Physical bit value at (row, physical column). */
    bool physicalBit(std::uint32_t row, std::uint32_t col) const;

    /** Flip a physical bit (particle strike / fault injection). */
    void flipPhysicalBit(std::uint32_t row, std::uint32_t col);

    // --- event counters -------------------------------------------------

    /** Row read operations performed. */
    std::uint64_t rowReads() const { return _rowReads.value(); }

    /** Row write operations performed (full or partial). */
    std::uint64_t rowWrites() const { return _rowWrites.value(); }

    /** RBL precharge events (one per row read). */
    std::uint64_t precharges() const { return _precharges.value(); }

    /** Half-selected cells corrupted by unsafe partial writes. */
    std::uint64_t halfSelectCorruptions() const
    {
        return _halfSelectCorruptions.value();
    }

    /** Reset all event counters (contents untouched). */
    void resetCounters();

    /** Register every event counter with @p reg. */
    void registerStats(stats::Registry &reg,
                       const std::string &prefix = std::string());

  private:
    ArrayGeometry _geom;
    InterleaveMap _map;
    std::vector<RowData> _rows;
    std::uint64_t _opCounter = 0;

    stats::Counter _rowReads{"array.row_reads", "full row reads"};
    stats::Counter _rowWrites{"array.row_writes", "row writes"};
    stats::Counter _precharges{"array.precharges", "RBL precharges"};
    stats::Counter _halfSelectCorruptions{
        "array.half_select_corruptions",
        "cells corrupted by partial writes without RMW"};
};

} // namespace c8t::sram

#endif // C8T_SRAM_ARRAY_HH
