/**
 * @file
 * Supply-voltage operating-point model (DESIGN.md §10).
 *
 * The paper's premise is that 8T cells *permit aggressive voltage
 * scaling* that 6T cells cannot survive; everything before this module
 * simulated a single implicit nominal Vdd. VddModel maps a supply
 * voltage to the three quantities the rest of the stack needs:
 *
 *  1. Energy: every per-event energy constant (sram::EnergyEventRates)
 *     is switched capacitance times V^2, so dynamic energy scales as
 *     (vdd / nominal)^2; static power follows a leakage term that
 *     decays exponentially as the supply drops (DIBL-dominated
 *     subthreshold leakage).
 *
 *  2. Reliability: per-cell read/write failure probability, separately
 *     for 6T and 8T cells, through the analytic stability model in
 *     sram/cell.hh. The 8T read curve is flat (read margin == hold
 *     margin, the decoupled read stack) while the 6T read margin
 *     collapses first — exactly the paper's stability argument. The
 *     per-cell probabilities feed the Monte-Carlo fault maps in
 *     sram/fault_injection.hh and, post-SEC-DED, the per-scheme
 *     min-operational-Vdd search in core::VddSweep.
 *
 *  3. Latency: an alpha-power-law delay factor
 *     delay(v) = v / (v - vth)^alpha (normalised to 1.0 at nominal)
 *     that the controller converts into extra stall cycles by scaling
 *     its array access latencies (ceil), while the system clock keeps
 *     its nominal period.
 *
 * The nominal point is an exact identity: energyScale, leakageScale
 * and delayFactor are all exactly 1.0 at vdd == nominalVdd, and the
 * controller treats a model attached at nominal as detached, so
 * nominal-Vdd runs are bit-identical to runs with no model at all
 * (pinned by tests/vdd_sweep_test.cc).
 */

#ifndef C8T_SRAM_VMODEL_HH
#define C8T_SRAM_VMODEL_HH

#include <cstdint>
#include <vector>

#include "sram/cell.hh"
#include "sram/energy.hh"

namespace c8t::sram
{

/** Constants of the voltage model (representative 45 nm values). */
struct VddModelParams
{
    /** Nominal supply (V); the voltage every energy/latency constant
     *  elsewhere in the simulator is calibrated at. */
    double nominalVdd = 1.0;

    /** Alpha-power-law exponent (velocity-saturated short channel:
     *  1 < alpha < 2; Sakurai-Newton's classic fit uses ~1.3). */
    double alpha = 1.3;

    /** Leakage decay voltage (V): leakage scales as
     *  exp((vdd - nominal) / leakDecayV). 0.12 V per e-fold is a
     *  DIBL-dominated 45 nm-class figure. */
    double leakDecayV = 0.12;

    /** System clock at nominal (GHz); fixed across the sweep — the
     *  array slows down relative to it (extra stall cycles). */
    double clockGhz = 2.0;

    /** Cell stability constants (shared with sram/cell.hh). */
    StabilityParams stability;

    /** @throws std::invalid_argument on non-physical constants. */
    void validate() const;
};

/** One evaluated operating point for a specific cell type. */
struct VddPoint
{
    /** Supply voltage (V). */
    double vdd = 1.0;

    /** Dynamic-energy multiplier (vdd / nominal)^2. */
    double energyScale = 1.0;

    /** Leakage-power multiplier exp((vdd - nominal) / leakDecayV). */
    double leakageScale = 1.0;

    /** Array delay multiplier (alpha-power law, 1.0 at nominal). */
    double delayFactor = 1.0;

    /** Per-cell read failure probability at this point. */
    double pfailRead = 0.0;

    /** Per-cell write failure probability at this point. */
    double pfailWrite = 0.0;

    /** Worst-case per-cell failure probability (hold/read/write) —
     *  the rate the Monte-Carlo fault maps draw from. */
    double pfailCell = 0.0;

    bool operator==(const VddPoint &other) const = default;
};

/**
 * The supply-voltage model. A small value type (constants only) so it
 * can be copied into ControllerConfig / SweepJob and shipped across
 * sweep worker threads without shared state.
 */
class VddModel
{
  public:
    /** @throws std::invalid_argument via VddModelParams::validate(). */
    explicit VddModel(VddModelParams params = VddModelParams{});

    /** The constants in effect. */
    const VddModelParams &params() const { return _p; }

    /** Full operating point for @p cell at @p vdd. */
    VddPoint at(double vdd, CellType cell) const;

    /** Dynamic energy multiplier (vdd / nominal)^2; exactly 1.0 at
     *  nominal. */
    double energyScale(double vdd) const;

    /** Leakage power multiplier; exactly 1.0 at nominal. */
    double leakageScale(double vdd) const;

    /**
     * Alpha-power-law delay multiplier d(vdd) / d(nominal) with
     * d(v) = v / (v - vth)^alpha; exactly 1.0 at nominal. The
     * overdrive is clamped at 20 mV so deep-subthreshold points
     * saturate instead of diverging.
     */
    double delayFactor(double vdd) const;

    /**
     * Array latency in cycles at @p vdd: ceil(cycles * delayFactor).
     * The difference against @p cycles is the extra stall the
     * controller pays per operation.
     */
    std::uint32_t scaleCycles(std::uint32_t cycles, double vdd) const;

    /**
     * Scale every entry of @p nominal by energyScale(vdd). At nominal
     * the multiplier is exactly 1.0, so the returned rates are
     * bit-identical to the input.
     */
    EnergyEventRates scaleRates(const EnergyEventRates &nominal,
                                double vdd) const;

    /** System clock period (s) — fixed across the sweep. */
    double clockPeriod() const { return 1e-9 / _p.clockGhz; }

    /**
     * Analytic post-SEC-DED word failure probability at @p vdd: the
     * probability that two or more of @p word_bits cells fail, i.e.
     * 1 - (1-p)^n - n*p*(1-p)^(n-1) with p the worst-case per-cell
     * rate. The Monte-Carlo fault maps converge to this.
     */
    double wordFailureProbability(double vdd, CellType cell,
                                  std::uint32_t word_bits = 72) const;

    /**
     * The default sweep grid: nominal (1.0 V) down to 0.50 V in 50 mV
     * steps, descending — 11 operating points.
     */
    static std::vector<double> defaultGrid();

  private:
    VddModelParams _p;
};

} // namespace c8t::sram

#endif // C8T_SRAM_VMODEL_HH
