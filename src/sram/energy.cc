/**
 * @file
 * cacti-lite implementation.
 */

#include "sram/energy.hh"

namespace c8t::sram
{

EnergyModel::EnergyModel(ArrayGeometry geom, TechParams tech)
    : _geom(geom), _tech(tech)
{}

double
EnergyModel::activeColumns() const
{
    // An RMW-style row operation cycles the entire set row regardless of
    // horizontal partitioning (every subarray slice of the row is
    // activated), so all columns count.
    return static_cast<double>(_geom.columns());
}

double
EnergyModel::bitlineCap() const
{
    // A column's bit line spans one subarray vertically.
    const double rows = static_cast<double>(_tech.rowsPerSubarray);
    return rows * _tech.cBitlinePerCell;
}

double
EnergyModel::wordlineCap() const
{
    return activeColumns() * _tech.cWordlinePerCell;
}

double
EnergyModel::rowReadEnergy() const
{
    const double v2 = _tech.vdd * _tech.vdd;
    // Precharge + discharge: on average half the RBLs swing fully
    // (cells holding zero discharge them), all were precharged.
    const double e_bitlines = activeColumns() * bitlineCap() * v2 * 0.5;
    const double e_wordline = wordlineCap() * v2;
    const double e_sense = activeColumns() * _tech.cSensePerColumn * v2;
    return e_bitlines + e_wordline + e_sense;
}

double
EnergyModel::rowWriteEnergy() const
{
    const double v2 = _tech.vdd * _tech.vdd;
    // Differential WBL/WBLB pair: one of the two lines swings per
    // column, plus the cell internal nodes flip with activity ~0.5.
    const double e_bitlines = activeColumns() * bitlineCap() * v2;
    const double e_wordline = wordlineCap() * v2;
    const double e_cells = activeColumns() * _tech.cLatchBit * v2 * 0.5;
    return e_bitlines + e_wordline + e_cells;
}

double
EnergyModel::partialWriteEnergy(std::uint32_t bytes) const
{
    const double v2 = _tech.vdd * _tech.vdd;
    const double cols = static_cast<double>(bytes) * 8.0;
    const double e_bitlines = cols * bitlineCap() * v2;
    const double e_wordline = wordlineCap() * v2; // WWL spans the row
    const double e_cells = cols * _tech.cLatchBit * v2 * 0.5;
    return e_bitlines + e_wordline + e_cells;
}

double
EnergyModel::setBufferReadEnergy(std::uint32_t bytes) const
{
    const double v2 = _tech.vdd * _tech.vdd;
    return static_cast<double>(bytes) * 8.0 * _tech.cLatchBit * v2 * 0.5;
}

double
EnergyModel::setBufferWriteEnergy(std::uint32_t bytes) const
{
    const double v2 = _tech.vdd * _tech.vdd;
    return static_cast<double>(bytes) * 8.0 * _tech.cLatchBit * v2;
}

double
EnergyModel::tagCompareEnergy(std::uint32_t tag_bits,
                              std::uint32_t ways) const
{
    const double v2 = _tech.vdd * _tech.vdd;
    return static_cast<double>(tag_bits) * ways * _tech.cCompareBit * v2;
}

EnergyEventRates
EnergyModel::eventRates(std::uint32_t tag_bits, std::uint32_t ways,
                        std::uint32_t row_bytes) const
{
    EnergyEventRates r;
    r.rowRead = rowReadEnergy();
    r.rowWrite = rowWriteEnergy();
    for (std::uint32_t b = 1; b <= EnergyEventRates::kMaxRequestBytes;
         ++b) {
        r.partialWrite[b] = partialWriteEnergy(b);
        r.setBufferRead[b] = setBufferReadEnergy(b);
        r.setBufferWrite[b] = setBufferWriteEnergy(b);
    }
    r.setBufferReadRow = setBufferReadEnergy(row_bytes);
    r.setBufferWriteRow = setBufferWriteEnergy(row_bytes);
    r.tagCompare = tagCompareEnergy(tag_bits, ways);
    return r;
}

double
EnergyModel::rowReadLatency() const
{
    // Lumped RC stages: word line charge, bit line discharge through
    // the cell stack, sense margin development (~0.69 RC each).
    const double t_wl = 0.69 * _tech.rDriver * wordlineCap();
    const double t_bl = 0.69 * _tech.rCell * bitlineCap();
    const double t_sense = 0.69 * _tech.rDriver * _tech.cSensePerColumn;
    return t_wl + t_bl + t_sense;
}

double
EnergyModel::rowWriteLatency() const
{
    const double t_wl = 0.69 * _tech.rDriver * wordlineCap();
    const double t_bl = 0.69 * _tech.rDriver * bitlineCap();
    return t_wl + t_bl;
}

double
EnergyModel::setBufferLatency() const
{
    // One latch stage plus a mux: a small fraction of a row access.
    const double c_word = 64.0 * _tech.cLatchBit;
    return 0.69 * _tech.rDriver * c_word;
}

double
EnergyModel::leakagePower() const
{
    const double cells =
        static_cast<double>(_geom.rows) * _geom.columns();
    return cells * _tech.leakPerCell;
}

double
EnergyModel::dataArrayArea(CellType cell_type) const
{
    const double per_cell =
        cell_type == CellType::SixT ? _tech.area6T : _tech.area8T;
    const double cells =
        static_cast<double>(_geom.rows) * _geom.columns();
    return cells * per_cell * (1.0 + _tech.peripheryOverhead);
}

double
EnergyModel::setBufferArea() const
{
    // One row of latches sharing the existing write-driver pitch: a
    // latch bit costs ~1.3x an 8T cell footprint.
    const double bits = static_cast<double>(_geom.columns());
    return bits * 1.3 * _tech.area8T;
}

double
EnergyModel::setBufferOverheadFraction() const
{
    return setBufferArea() / dataArrayArea(CellType::EightT);
}

std::uint32_t
EnergyModel::tagBufferBits(std::uint32_t set_index_bits,
                           std::uint32_t tag_bits, std::uint32_t ways)
{
    return set_index_bits + tag_bits * ways + 1; // +1: the Dirty bit
}

} // namespace c8t::sram
