/**
 * @file
 * Write-assist model: Kim et al.'s adaptive write word-line pulse
 * width and voltage modulation (the §2 related-work baseline for
 * *dynamic write failures* in bit-interleaved 8T arrays).
 *
 * Mechanism being modelled: under voltage scaling some cells are too
 * weak to be written by the nominal WWL pulse. Rather than margining
 * every write for the weakest cell (slow, power hungry), the adaptive
 * scheme tries the nominal pulse and escalates — longer pulse, then a
 * boosted WWL voltage — only when a weak cell is addressed. This model
 * captures the statistics: a deterministic pseudo-random weak-cell map
 * per array, per-write escalation decisions, and the resulting
 * latency/energy distribution, so the scheme's costs can be compared
 * against the margined design point.
 */

#ifndef C8T_SRAM_WRITE_ASSIST_HH
#define C8T_SRAM_WRITE_ASSIST_HH

#include <cstdint>
#include <vector>

#include "stats/counter.hh"

namespace c8t::sram
{

/** Escalation level used to complete a write. */
enum class AssistLevel : std::uint8_t {
    /** Nominal pulse width at nominal WWL voltage. */
    Nominal,
    /** Extended pulse width. */
    WidePulse,
    /** Extended pulse + boosted WWL voltage. */
    BoostedVoltage,
};

/** Human readable level name. */
const char *toString(AssistLevel l);

/** Parameters of the assist policy. */
struct WriteAssistParams
{
    /** Probability a row contains at least one pulse-weak cell at the
     *  operating voltage (grows as Vdd shrinks). */
    double weakRowFraction = 0.02;

    /** Fraction of the weak rows that even the wide pulse cannot
     *  write (they need the voltage boost). */
    double boostNeedingFraction = 0.1;

    /** Latency multipliers relative to the nominal pulse. */
    double widePulseLatencyFactor = 1.5;
    double boostLatencyFactor = 1.8;

    /** Energy multipliers relative to the nominal pulse. */
    double widePulseEnergyFactor = 1.4;
    double boostEnergyFactor = 2.0;

    /** Deterministic seed of the weak-cell map. */
    std::uint64_t seed = 99;
};

/**
 * Per-array write-assist controller.
 *
 * The weak-row map is fixed at construction (process variation is
 * static); writes to weak rows escalate deterministically.
 */
class WriteAssist
{
  public:
    /**
     * @param rows   Array rows.
     * @param params Policy parameters.
     */
    WriteAssist(std::uint32_t rows, WriteAssistParams params = {});

    /**
     * Account one row write.
     * @param row The target row.
     * @return The escalation level the write needed.
     */
    AssistLevel write(std::uint32_t row);

    /** True when @p row carries a pulse-weak cell. */
    bool rowIsWeak(std::uint32_t row) const;

    /** Average latency factor across all writes so far (>= 1). */
    double meanLatencyFactor() const;

    /** Average energy factor across all writes so far (>= 1). */
    double meanEnergyFactor() const;

    /**
     * The margined alternative: the factors a design would pay if
     * every write used the worst-case (boosted) pulse.
     */
    double marginedLatencyFactor() const
    {
        return _params.boostLatencyFactor;
    }
    double marginedEnergyFactor() const
    {
        return _params.boostEnergyFactor;
    }

    /** Writes completed at each level. */
    std::uint64_t nominalWrites() const { return _nominal.value(); }
    std::uint64_t widePulseWrites() const { return _wide.value(); }
    std::uint64_t boostedWrites() const { return _boosted.value(); }

    /** Parameters in effect. */
    const WriteAssistParams &params() const { return _params; }

  private:
    WriteAssistParams _params;
    /** 0 = strong, 1 = needs wide pulse, 2 = needs boost. */
    std::vector<std::uint8_t> _rowClass;

    stats::Counter _nominal{"assist.nominal", "nominal-pulse writes"};
    stats::Counter _wide{"assist.wide", "wide-pulse writes"};
    stats::Counter _boosted{"assist.boosted", "boosted writes"};
};

} // namespace c8t::sram

#endif // C8T_SRAM_WRITE_ASSIST_HH
