/**
 * @file
 * Sub-array conflict model implementation.
 */

#include "sram/subarray.hh"

#include <algorithm>
#include <cassert>

namespace c8t::sram
{

const char *
toString(WriteStyle s)
{
    switch (s) {
      case WriteStyle::GlobalRmw:
        return "global_rmw";
      case WriteStyle::LocalRmw:
        return "local_rmw";
      case WriteStyle::BufferedWriteback:
        return "buffered_writeback";
    }
    return "?";
}

SubarrayModel::SubarrayModel(std::uint32_t rows,
                             std::uint32_t rows_per_subarray,
                             WriteStyle style)
    : _rowsPerSubarray(rows_per_subarray),
      _subarrays((rows + rows_per_subarray - 1) / rows_per_subarray),
      _style(style), _busyUntil(_subarrays, 0)
{
    assert(rows_per_subarray > 0 && rows > 0);
}

void
SubarrayModel::write(std::uint32_t row, std::uint64_t start,
                     std::uint32_t duration)
{
    const std::uint64_t end = start + duration;
    switch (_style) {
      case WriteStyle::GlobalRmw:
        // The read port itself is held: everything is blocked.
        _globalBusyUntil = std::max(_globalBusyUntil, end);
        break;
      case WriteStyle::LocalRmw:
        _busyUntil[subarrayOf(row)] =
            std::max(_busyUntil[subarrayOf(row)], end);
        break;
      case WriteStyle::BufferedWriteback:
        // The row image is latched; the write drivers work without
        // touching the read path.
        break;
    }
}

std::uint64_t
SubarrayModel::read(std::uint32_t row, std::uint64_t when)
{
    ++_reads;

    std::uint64_t free_at = 0;
    switch (_style) {
      case WriteStyle::GlobalRmw:
        free_at = _globalBusyUntil;
        break;
      case WriteStyle::LocalRmw:
        free_at = _busyUntil[subarrayOf(row)];
        break;
      case WriteStyle::BufferedWriteback:
        free_at = 0;
        break;
    }

    if (free_at > when) {
        ++_blockedReads;
        _blockedCycles += free_at - when;
        return free_at;
    }
    return when;
}

} // namespace c8t::sram
