#include "sram/vmodel.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace c8t::sram
{

namespace
{

/** Minimum overdrive (V) for the alpha-power law: below vth + this the
 *  delay saturates instead of diverging. */
constexpr double kMinOverdrive = 0.02;

/** Unnormalised alpha-power-law delay d(v) = v / (v - vth)^alpha. */
double rawDelay(double vdd, const VddModelParams &p)
{
    const double overdrive = std::max(vdd - p.stability.vth, kMinOverdrive);
    return vdd / std::pow(overdrive, p.alpha);
}

} // namespace

void VddModelParams::validate() const
{
    if (!(nominalVdd > 0.0))
        throw std::invalid_argument("VddModelParams: nominalVdd must be > 0");
    if (!(nominalVdd > stability.vth))
        throw std::invalid_argument(
            "VddModelParams: nominalVdd must exceed the threshold voltage");
    if (!(alpha > 0.0))
        throw std::invalid_argument("VddModelParams: alpha must be > 0");
    if (!(leakDecayV > 0.0))
        throw std::invalid_argument("VddModelParams: leakDecayV must be > 0");
    if (!(clockGhz > 0.0))
        throw std::invalid_argument("VddModelParams: clockGhz must be > 0");
}

VddModel::VddModel(VddModelParams params) : _p(params)
{
    _p.validate();
}

double VddModel::energyScale(double vdd) const
{
    if (vdd == _p.nominalVdd)
        return 1.0;
    const double ratio = vdd / _p.nominalVdd;
    return ratio * ratio;
}

double VddModel::leakageScale(double vdd) const
{
    if (vdd == _p.nominalVdd)
        return 1.0;
    return std::exp((vdd - _p.nominalVdd) / _p.leakDecayV);
}

double VddModel::delayFactor(double vdd) const
{
    if (vdd == _p.nominalVdd)
        return 1.0;
    return rawDelay(vdd, _p) / rawDelay(_p.nominalVdd, _p);
}

std::uint32_t VddModel::scaleCycles(std::uint32_t cycles, double vdd) const
{
    const double factor = delayFactor(vdd);
    if (factor == 1.0)
        return cycles;
    const double scaled = std::ceil(static_cast<double>(cycles) * factor);
    return static_cast<std::uint32_t>(scaled);
}

EnergyEventRates VddModel::scaleRates(const EnergyEventRates &nominal,
                                      double vdd) const
{
    const double s = energyScale(vdd);
    if (s == 1.0)
        return nominal;
    EnergyEventRates out = nominal;
    out.rowRead *= s;
    out.rowWrite *= s;
    for (std::uint32_t b = 0; b <= EnergyEventRates::kMaxRequestBytes; ++b) {
        out.partialWrite[b] *= s;
        out.setBufferRead[b] *= s;
        out.setBufferWrite[b] *= s;
    }
    out.setBufferReadRow *= s;
    out.setBufferWriteRow *= s;
    out.tagCompare *= s;
    return out;
}

VddPoint VddModel::at(double vdd, CellType cell) const
{
    VddPoint pt;
    pt.vdd = vdd;
    pt.energyScale = energyScale(vdd);
    pt.leakageScale = leakageScale(vdd);
    pt.delayFactor = delayFactor(vdd);
    pt.pfailRead = failureProbability(cell, CellOp::Read, vdd, _p.stability);
    pt.pfailWrite = failureProbability(cell, CellOp::Write, vdd, _p.stability);
    const double hold =
        failureProbability(cell, CellOp::Hold, vdd, _p.stability);
    pt.pfailCell = std::max({hold, pt.pfailRead, pt.pfailWrite});
    return pt;
}

double VddModel::wordFailureProbability(double vdd, CellType cell,
                                        std::uint32_t word_bits) const
{
    const double p = at(vdd, cell).pfailCell;
    if (p <= 0.0)
        return 0.0;
    if (p >= 1.0)
        return 1.0;
    const double n = static_cast<double>(word_bits);
    // P(>= 2 failing cells) = 1 - (1-p)^n - n p (1-p)^(n-1); evaluated
    // with log1p to stay accurate for the tiny p this model produces.
    const double log_q = std::log1p(-p);
    const double p_none = std::exp(n * log_q);
    const double p_one = n * p * std::exp((n - 1.0) * log_q);
    return std::max(0.0, 1.0 - p_none - p_one);
}

std::vector<double> VddModel::defaultGrid()
{
    std::vector<double> grid;
    // 1.00, 0.95, ... 0.50 — generated from integer millivolts so the
    // grid values are exact decimals, not accumulated-step drift.
    for (int mv = 1000; mv >= 500; mv -= 50)
        grid.push_back(static_cast<double>(mv) / 1000.0);
    return grid;
}

} // namespace c8t::sram
