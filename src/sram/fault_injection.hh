/**
 * @file
 * Multi-bit-upset fault injection over ECC-protected, bit-interleaved
 * rows.
 *
 * Reproduces the motivation behind bit interleaving (paper §2): a
 * particle strike upsets a *burst* of physically adjacent cells; with
 * interleaving the burst lands in different logical words and per-word
 * SEC-DED corrects everything; without it the burst concentrates in one
 * word and defeats the code.
 */

#ifndef C8T_SRAM_FAULT_INJECTION_HH
#define C8T_SRAM_FAULT_INJECTION_HH

#include <cstdint>
#include <vector>

#include "sram/ecc.hh"
#include "sram/interleave.hh"
#include "trace/rng.hh"

namespace c8t::sram
{

/**
 * An ECC-protected row: N logical words, each stored as a 72-bit
 * SEC-DED codeword, laid out physically through an InterleaveMap over
 * the 72-bit codeword columns.
 */
class EccProtectedRow
{
  public:
    /**
     * @param words  Number of 64-bit data words in the row.
     * @param degree Interleave degree (1 = non-interleaved).
     */
    EccProtectedRow(std::uint32_t words, std::uint32_t degree);

    /** Store @p data into logical word @p w (re-encodes the codeword). */
    void writeWord(std::uint32_t w, std::uint64_t data);

    /** Decode logical word @p w. */
    EccDecodeResult readWord(std::uint32_t w) const;

    /** Flip the physical column @p col (0 .. words*72-1). */
    void strike(std::uint32_t col);

    /** Logical word that physical column @p col belongs to. */
    std::uint32_t wordOfColumn(std::uint32_t col) const
    {
        return _map.wordOf(col);
    }

    /** Total physical columns. */
    std::uint32_t columns() const { return _map.columns(); }

    /** Number of logical words. */
    std::uint32_t words() const { return _map.words(); }

  private:
    InterleaveMap _map;
    std::vector<Codeword72> _codewords;
};

/** Configuration of one upset campaign. */
struct UpsetCampaign
{
    /** Logical words per row. */
    std::uint32_t words = 16;

    /** Interleave degree. */
    std::uint32_t degree = 4;

    /** Number of independent strike trials. */
    std::uint32_t trials = 10000;

    /** Burst length in physically adjacent cells. */
    std::uint32_t burstLength = 2;

    /** RNG seed. */
    std::uint64_t seed = 7;
};

/** Outcome counts of an upset campaign. */
struct UpsetStats
{
    /** Trials executed. */
    std::uint64_t trials = 0;

    /** Words that absorbed 2+ upset bits in one trial. */
    std::uint64_t multiBitWords = 0;

    /** Word decodes ending in correction. */
    std::uint64_t corrected = 0;

    /** Word decodes ending in detected-uncorrectable. */
    std::uint64_t detectedUncorrectable = 0;

    /**
     * Word decodes that returned Ok/Corrected but WRONG data — silent
     * data corruption, the failure mode interleaving must prevent.
     */
    std::uint64_t silentCorruptions = 0;

    /** Trials after which every word decoded to its original data. */
    std::uint64_t fullyRecoveredTrials = 0;
};

/**
 * Run an upset campaign: per trial, fill a fresh row with random data,
 * strike a random physically-contiguous burst, decode every word and
 * classify the outcome.
 */
UpsetStats runUpsetCampaign(const UpsetCampaign &cfg);

} // namespace c8t::sram

#endif // C8T_SRAM_FAULT_INJECTION_HH
