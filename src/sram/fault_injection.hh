/**
 * @file
 * Multi-bit-upset fault injection over ECC-protected, bit-interleaved
 * rows.
 *
 * Reproduces the motivation behind bit interleaving (paper §2): a
 * particle strike upsets a *burst* of physically adjacent cells; with
 * interleaving the burst lands in different logical words and per-word
 * SEC-DED corrects everything; without it the burst concentrates in one
 * word and defeats the code.
 */

#ifndef C8T_SRAM_FAULT_INJECTION_HH
#define C8T_SRAM_FAULT_INJECTION_HH

#include <cstdint>
#include <vector>

#include "sram/cell.hh"
#include "sram/ecc.hh"
#include "sram/interleave.hh"
#include "trace/rng.hh"

namespace c8t::sram
{

/**
 * An ECC-protected row: N logical words, each stored as a 72-bit
 * SEC-DED codeword, laid out physically through an InterleaveMap over
 * the 72-bit codeword columns.
 */
class EccProtectedRow
{
  public:
    /**
     * @param words  Number of 64-bit data words in the row.
     * @param degree Interleave degree (1 = non-interleaved).
     */
    EccProtectedRow(std::uint32_t words, std::uint32_t degree);

    /** Store @p data into logical word @p w (re-encodes the codeword). */
    void writeWord(std::uint32_t w, std::uint64_t data);

    /** Decode logical word @p w. */
    EccDecodeResult readWord(std::uint32_t w) const;

    /** Flip the physical column @p col (0 .. words*72-1). */
    void strike(std::uint32_t col);

    /** Logical word that physical column @p col belongs to. */
    std::uint32_t wordOfColumn(std::uint32_t col) const
    {
        return _map.wordOf(col);
    }

    /** Total physical columns. */
    std::uint32_t columns() const { return _map.columns(); }

    /** Number of logical words. */
    std::uint32_t words() const { return _map.words(); }

  private:
    InterleaveMap _map;
    std::vector<Codeword72> _codewords;
};

/** Configuration of one upset campaign. */
struct UpsetCampaign
{
    /** Logical words per row. */
    std::uint32_t words = 16;

    /** Interleave degree. */
    std::uint32_t degree = 4;

    /** Number of independent strike trials. */
    std::uint32_t trials = 10000;

    /** Burst length in physically adjacent cells. */
    std::uint32_t burstLength = 2;

    /** RNG seed. */
    std::uint64_t seed = 7;
};

/** Outcome counts of an upset campaign. */
struct UpsetStats
{
    /** Trials executed. */
    std::uint64_t trials = 0;

    /** Words that absorbed 2+ upset bits in one trial. */
    std::uint64_t multiBitWords = 0;

    /** Word decodes ending in correction. */
    std::uint64_t corrected = 0;

    /** Word decodes ending in detected-uncorrectable. */
    std::uint64_t detectedUncorrectable = 0;

    /**
     * Word decodes that returned Ok/Corrected but WRONG data — silent
     * data corruption, the failure mode interleaving must prevent.
     */
    std::uint64_t silentCorruptions = 0;

    /** Trials after which every word decoded to its original data. */
    std::uint64_t fullyRecoveredTrials = 0;
};

/**
 * Run an upset campaign: per trial, fill a fresh row with random data,
 * strike a random physically-contiguous burst, decode every word and
 * classify the outcome.
 */
UpsetStats runUpsetCampaign(const UpsetCampaign &cfg);

// --- Monte-Carlo voltage-scaling fault maps (DESIGN.md §10) ------------
//
// Where the upset campaign above models *transient* particle strikes,
// the fault map models *static* variation-induced cell failures at a
// low supply voltage: every physical cell of an array independently
// fails with the per-cell probability the VddModel assigns to the
// operating point. The map is drawn once per (run seed, Vdd, geometry,
// cell type) — deterministically, so every sweep worker that evaluates
// the same operating point sees the same faulty cells.

/** Geometry + operating point of one fault-map draw. */
struct FaultMapConfig
{
    /** Campaign-level seed (the sweep's run seed). */
    std::uint64_t runSeed = 1;

    /** Supply voltage of the operating point (hashed into the draw
     *  seed, so neighbouring grid points get independent maps). */
    double vdd = 1.0;

    /** Cell flavour (hashed into the draw seed). */
    CellType cell = CellType::EightT;

    /** Per-cell failure probability at the operating point (from
     *  VddModel::at().pfailCell). */
    double pfailCell = 0.0;

    /** Rows in the modelled array. */
    std::uint32_t rows = 1024;

    /** Logical 64-bit words per row. */
    std::uint32_t wordsPerRow = 16;

    /** Interleave degree of the physical layout. */
    std::uint32_t degree = 4;
};

/**
 * A drawn fault map: the flattened physical-cell indices
 * (row * columns + column) that are faulty, in ascending order.
 */
struct FaultMap
{
    /** The configuration the map was drawn from. */
    FaultMapConfig config;

    /** Faulty cells as flattened indices, ascending. */
    std::vector<std::uint64_t> faultyCells;

    /** Total physical cells in the array. */
    std::uint64_t totalCells = 0;

    /** Fraction of cells faulty in this draw. */
    double faultFraction() const
    {
        return totalCells == 0
                   ? 0.0
                   : static_cast<double>(faultyCells.size()) /
                         static_cast<double>(totalCells);
    }
};

/** Per-word SEC-DED outcome counts over one evaluated fault map. */
struct FaultMapStats
{
    /** Words decoded (rows * wordsPerRow). */
    std::uint64_t words = 0;

    /** Words with no faulty cell. */
    std::uint64_t cleanWords = 0;

    /** Words whose single faulty cell the code corrected. */
    std::uint64_t corrected = 0;

    /** Words flagged detected-uncorrectable (2 faulty cells). */
    std::uint64_t detectedUncorrectable = 0;

    /** Words that decoded Ok/Corrected but to WRONG data (3+ faulty
     *  cells aliasing) — silent data corruption. */
    std::uint64_t silentCorruptions = 0;

    /** Words lost despite ECC (detected-uncorrectable + silent). */
    std::uint64_t failedWords() const
    {
        return detectedUncorrectable + silentCorruptions;
    }

    /** Post-ECC word failure rate — the quantity the min-Vdd search
     *  thresholds. */
    double postEccFailureRate() const
    {
        return words == 0 ? 0.0
                          : static_cast<double>(failedWords()) /
                                static_cast<double>(words);
    }
};

/**
 * Draw the fault map for @p cfg: each of the rows * wordsPerRow * 72
 * physical cells fails independently with probability cfg.pfailCell.
 * The draw seed is derived from (runSeed, vdd, rows, wordsPerRow,
 * degree, cell) via splitmix64, so the same operating point always
 * yields the same map regardless of which sweep worker asks.
 */
FaultMap buildFaultMap(const FaultMapConfig &cfg);

/**
 * Evaluate @p map through the interleaved SEC-DED layout: fill every
 * row with deterministic pseudo-random data, flip the mapped faulty
 * cells, decode every word and classify the outcome.
 */
FaultMapStats evaluateFaultMap(const FaultMap &map);

/** buildFaultMap + evaluateFaultMap in one step. */
FaultMapStats runFaultMapCampaign(const FaultMapConfig &cfg);

} // namespace c8t::sram

#endif // C8T_SRAM_FAULT_INJECTION_HH
