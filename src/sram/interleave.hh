/**
 * @file
 * Bit-interleaving maps.
 *
 * Bit interleaving spreads the bits of one logical word across the
 * physical row so that a multi-bit upset (a particle strike hitting
 * adjacent physical cells) lands in *different* words, each of which a
 * per-word SEC-DED code can then correct. This is the design decision
 * that causes the column-selection problem the paper addresses: since
 * word lines are shared by the whole physical row, a write to one word
 * half-selects the interleaved neighbours.
 *
 * The map is bijective between (word, bit) logical coordinates and
 * physical column indices. Layout for interleave degree IL: words are
 * grouped IL at a time; within a group, bit b of word w sits at column
 *
 *     group_base + b * IL + (w % IL)
 *
 * so physically adjacent columns hold the same bit index of IL
 * different words.
 */

#ifndef C8T_SRAM_INTERLEAVE_HH
#define C8T_SRAM_INTERLEAVE_HH

#include <cstdint>

namespace c8t::sram
{

/**
 * A bijective interleaving map for a row of @c words() logical words of
 * @c bitsPerWord() bits with interleave degree @c degree().
 */
class InterleaveMap
{
  public:
    /**
     * @param words         Number of logical words in the row (> 0,
     *                      multiple of @p degree).
     * @param bits_per_word Bits per logical word (> 0).
     * @param degree        Interleave degree (1 = non-interleaved).
     */
    InterleaveMap(std::uint32_t words, std::uint32_t bits_per_word,
                  std::uint32_t degree);

    /** Physical column of logical (word, bit). */
    std::uint32_t toPhysical(std::uint32_t word, std::uint32_t bit) const;

    /** Logical word index holding physical column @p col. */
    std::uint32_t wordOf(std::uint32_t col) const;

    /** Logical bit index (within its word) of physical column @p col. */
    std::uint32_t bitOf(std::uint32_t col) const;

    /** Number of logical words. */
    std::uint32_t words() const { return _words; }

    /** Bits per logical word. */
    std::uint32_t bitsPerWord() const { return _bitsPerWord; }

    /** Interleave degree. */
    std::uint32_t degree() const { return _degree; }

    /** Total physical columns in the row. */
    std::uint32_t columns() const { return _words * _bitsPerWord; }

  private:
    std::uint32_t _words;
    std::uint32_t _bitsPerWord;
    std::uint32_t _degree;
};

} // namespace c8t::sram

#endif // C8T_SRAM_INTERLEAVE_HH
