/**
 * @file
 * Interleaving map implementation.
 */

#include "sram/interleave.hh"

#include <cassert>

namespace c8t::sram
{

InterleaveMap::InterleaveMap(std::uint32_t words,
                             std::uint32_t bits_per_word,
                             std::uint32_t degree)
    : _words(words), _bitsPerWord(bits_per_word), _degree(degree)
{
    assert(words > 0 && bits_per_word > 0 && degree > 0);
    assert(words % degree == 0 &&
           "word count must be a multiple of the interleave degree");
}

std::uint32_t
InterleaveMap::toPhysical(std::uint32_t word, std::uint32_t bit) const
{
    assert(word < _words && bit < _bitsPerWord);
    const std::uint32_t group = word / _degree;
    const std::uint32_t lane = word % _degree;
    const std::uint32_t group_base = group * _bitsPerWord * _degree;
    return group_base + bit * _degree + lane;
}

std::uint32_t
InterleaveMap::wordOf(std::uint32_t col) const
{
    assert(col < columns());
    const std::uint32_t group_span = _bitsPerWord * _degree;
    const std::uint32_t group = col / group_span;
    const std::uint32_t lane = (col % group_span) % _degree;
    return group * _degree + lane;
}

std::uint32_t
InterleaveMap::bitOf(std::uint32_t col) const
{
    assert(col < columns());
    const std::uint32_t group_span = _bitsPerWord * _degree;
    return (col % group_span) / _degree;
}

} // namespace c8t::sram
