/**
 * @file
 * 6T and 8T SRAM cell models.
 *
 * Two complementary views are provided:
 *
 *  1. A *functional* single-cell model (Cell6T / Cell8T) implementing the
 *     transistor-level behaviour the paper's Figure 1 describes: write
 *     through the write access devices, read through the decoupled stack
 *     (8T) or the shared access devices (6T), and the half-select
 *     disturb semantics that motivate the whole paper.
 *
 *  2. An *analytic* stability model: static noise margin (SNM) as a
 *     function of supply voltage for read/hold/write conditions, the
 *     variation-induced failure probability, and a Vmin solver. These
 *     reproduce the qualitative motivation (6T read stability collapses
 *     under voltage scaling; the 8T read stack decouples the storage
 *     node and keeps read SNM equal to hold SNM).
 *
 * The analytic constants are representative of a 45 nm bulk process and
 * are documented next to their definitions; only the *relative*
 * behaviour of the two cells matters for the experiments.
 */

#ifndef C8T_SRAM_CELL_HH
#define C8T_SRAM_CELL_HH

#include <cstdint>

namespace c8t::sram
{

/** SRAM cell flavour. */
enum class CellType : std::uint8_t {
    SixT,
    EightT,
};

/** Human readable cell name. */
const char *toString(CellType t);

/** Operating condition for stability analysis. */
enum class CellOp : std::uint8_t {
    Hold,
    Read,
    Write,
};

/**
 * Functional 6T cell.
 *
 * Reads go through the same access transistors as writes, so a read
 * (or a half-select: word line high, bit lines precharged) disturbs the
 * storage node; below the read-stability voltage the cell may flip.
 */
class Cell6T
{
  public:
    /** Write @p v through the access devices (word line asserted). */
    void write(bool v) { _q = v; }

    /**
     * Read the cell (word line asserted, bit lines precharged).
     * At or above @p vdd_stable the read is non-destructive; below it
     * the read disturb flips the cell (worst-case model).
     *
     * @param vdd        Operating supply voltage.
     * @param vdd_stable Minimum voltage for a stable read.
     * @return The value sensed on the bit lines (pre-disturb value).
     */
    bool read(double vdd, double vdd_stable);

    /**
     * Half-select event: the word line is asserted for a write to some
     * other column. A 6T cell sees a read-like bias, so the disturb
     * semantics match read().
     */
    void halfSelect(double vdd, double vdd_stable);

    /** Stored value (test/inspection access; no bias applied). */
    bool value() const { return _q; }

  private:
    bool _q = false;
};

/**
 * Functional 8T cell (Figure 1 of the paper).
 *
 * The read stack (M7/M8) only gates the read bit line from the storage
 * node, so reads never disturb the cell at any voltage. Writes assert
 * the write word line, which drives the *write bit line values* into
 * the cell — which is exactly why a half-selected 8T cell is corrupted
 * by whatever happens to be on its column's write bit lines unless the
 * array performs read-modify-write.
 */
class Cell8T
{
  public:
    /** Write @p v through M5/M6 (write word line asserted). */
    void write(bool v) { _q = v; }

    /**
     * Read through the decoupled stack: RBL is precharged and
     * discharges through M7/M8 iff Q == 0. Never disturbs the cell.
     *
     * @return The stored value.
     */
    bool read() const { return _q; }

    /**
     * Half-select during a write: WWL is asserted for the whole row, so
     * this cell is *written* with whatever its write bit lines carry.
     *
     * @param wbl Value on the write bit line pair.
     */
    void halfSelectWrite(bool wbl) { _q = wbl; }

    /** Stored value (test/inspection access). */
    bool value() const { return _q; }

  private:
    bool _q = false;
};

/**
 * Analytic cell stability model.
 *
 * SNM model (representative 45 nm constants):
 *   hold  SNM(v) = kHold  * (v - vth)
 *   read  SNM(v) = kRead  * (v - vth)        (6T: kRead << kHold)
 *                 = hold SNM                  (8T: decoupled read)
 *   write margin(v) = kWrite * (v - vth)
 *
 * Variation: margins are Gaussian with sigma proportional to
 * sigmaVth / sqrt(v); a cell fails an operation when its margin
 * sample falls below zero. failureProbability() returns that tail
 * probability; vmin() inverts it.
 */
struct StabilityParams
{
    /** Threshold voltage (V). */
    double vth = 0.45;

    /** Hold SNM slope (V of SNM per V of overdrive). */
    double kHold = 0.38;

    /** 6T read SNM slope — degraded by the read-disturb divider. */
    double kRead6T = 0.16;

    /** Write margin slope. */
    double kWrite = 0.30;

    /** Vth variation (sigma, V) at the reference cell size. Chosen so
     *  the 6T read-failure target of 1e-6 lands just below 1.0 V and
     *  the 8T equivalent near 0.7 V — representative of the regime the
     *  paper describes (6T caps Vmin; 8T unlocks low-voltage levels). */
    double sigmaVth = 0.018;
};

/**
 * Static noise margin / write margin of a cell at voltage @p vdd.
 * Clamped at zero below threshold.
 */
double noiseMargin(CellType type, CellOp op, double vdd,
                   const StabilityParams &p = StabilityParams{});

/**
 * Probability that a single cell fails operation @p op at @p vdd due to
 * Vth variation (Gaussian tail of the margin distribution).
 */
double failureProbability(CellType type, CellOp op, double vdd,
                          const StabilityParams &p = StabilityParams{});

/**
 * Minimum supply voltage at which the per-cell failure probability for
 * the worst-case operation of @p type stays at or below @p target_pfail.
 * Solved by bisection on [vth, 1.4 V].
 */
double vmin(CellType type, double target_pfail,
            const StabilityParams &p = StabilityParams{});

} // namespace c8t::sram

#endif // C8T_SRAM_CELL_HH
