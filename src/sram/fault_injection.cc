/**
 * @file
 * Upset campaign implementation.
 */

#include "sram/fault_injection.hh"

#include <cassert>

namespace c8t::sram
{

EccProtectedRow::EccProtectedRow(std::uint32_t words, std::uint32_t degree)
    : _map(words, Codeword72::bits, degree),
      _codewords(words, SecDed72::encode(0))
{}

void
EccProtectedRow::writeWord(std::uint32_t w, std::uint64_t data)
{
    assert(w < words());
    _codewords[w] = SecDed72::encode(data);
}

EccDecodeResult
EccProtectedRow::readWord(std::uint32_t w) const
{
    assert(w < words());
    return SecDed72::decode(_codewords[w]);
}

void
EccProtectedRow::strike(std::uint32_t col)
{
    assert(col < columns());
    const std::uint32_t word = _map.wordOf(col);
    const std::uint32_t bit = _map.bitOf(col);
    _codewords[word].flip(bit);
}

UpsetStats
runUpsetCampaign(const UpsetCampaign &cfg)
{
    assert(cfg.burstLength >= 1);
    trace::Rng rng(cfg.seed);
    UpsetStats out;

    std::vector<std::uint64_t> original(cfg.words);

    for (std::uint32_t trial = 0; trial < cfg.trials; ++trial) {
        EccProtectedRow row(cfg.words, cfg.degree);
        for (std::uint32_t w = 0; w < cfg.words; ++w) {
            original[w] = rng.next();
            row.writeWord(w, original[w]);
        }

        // One physically contiguous burst, fully inside the row.
        const std::uint32_t start = static_cast<std::uint32_t>(
            rng.below(row.columns() - cfg.burstLength + 1));
        std::vector<std::uint32_t> hits_per_word(cfg.words, 0);
        for (std::uint32_t i = 0; i < cfg.burstLength; ++i) {
            row.strike(start + i);
            ++hits_per_word[row.wordOfColumn(start + i)];
        }

        bool all_recovered = true;
        for (std::uint32_t w = 0; w < cfg.words; ++w) {
            if (hits_per_word[w] >= 2)
                ++out.multiBitWords;
            if (hits_per_word[w] == 0)
                continue;

            const EccDecodeResult r = row.readWord(w);
            switch (r.status) {
              case EccStatus::Corrected:
                ++out.corrected;
                break;
              case EccStatus::DetectedUncorrectable:
                ++out.detectedUncorrectable;
                all_recovered = false;
                break;
              case EccStatus::Ok:
                break;
            }
            if (r.status != EccStatus::DetectedUncorrectable &&
                r.data != original[w]) {
                ++out.silentCorruptions;
                all_recovered = false;
            }
        }
        if (all_recovered)
            ++out.fullyRecoveredTrials;
        ++out.trials;
    }
    return out;
}

} // namespace c8t::sram
