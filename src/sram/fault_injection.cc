/**
 * @file
 * Upset campaign implementation.
 */

#include "sram/fault_injection.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace c8t::sram
{

EccProtectedRow::EccProtectedRow(std::uint32_t words, std::uint32_t degree)
    : _map(words, Codeword72::bits, degree),
      _codewords(words, SecDed72::encode(0))
{}

void
EccProtectedRow::writeWord(std::uint32_t w, std::uint64_t data)
{
    assert(w < words());
    _codewords[w] = SecDed72::encode(data);
}

EccDecodeResult
EccProtectedRow::readWord(std::uint32_t w) const
{
    assert(w < words());
    return SecDed72::decode(_codewords[w]);
}

void
EccProtectedRow::strike(std::uint32_t col)
{
    assert(col < columns());
    const std::uint32_t word = _map.wordOf(col);
    const std::uint32_t bit = _map.bitOf(col);
    _codewords[word].flip(bit);
}

UpsetStats
runUpsetCampaign(const UpsetCampaign &cfg)
{
    assert(cfg.burstLength >= 1);
    trace::Rng rng(cfg.seed);
    UpsetStats out;

    std::vector<std::uint64_t> original(cfg.words);

    for (std::uint32_t trial = 0; trial < cfg.trials; ++trial) {
        EccProtectedRow row(cfg.words, cfg.degree);
        for (std::uint32_t w = 0; w < cfg.words; ++w) {
            original[w] = rng.next();
            row.writeWord(w, original[w]);
        }

        // One physically contiguous burst, fully inside the row.
        const std::uint32_t start = static_cast<std::uint32_t>(
            rng.below(row.columns() - cfg.burstLength + 1));
        std::vector<std::uint32_t> hits_per_word(cfg.words, 0);
        for (std::uint32_t i = 0; i < cfg.burstLength; ++i) {
            row.strike(start + i);
            ++hits_per_word[row.wordOfColumn(start + i)];
        }

        bool all_recovered = true;
        for (std::uint32_t w = 0; w < cfg.words; ++w) {
            if (hits_per_word[w] >= 2)
                ++out.multiBitWords;
            if (hits_per_word[w] == 0)
                continue;

            const EccDecodeResult r = row.readWord(w);
            switch (r.status) {
              case EccStatus::Corrected:
                ++out.corrected;
                break;
              case EccStatus::DetectedUncorrectable:
                ++out.detectedUncorrectable;
                all_recovered = false;
                break;
              case EccStatus::Ok:
                break;
            }
            if (r.status != EccStatus::DetectedUncorrectable &&
                r.data != original[w]) {
                ++out.silentCorruptions;
                all_recovered = false;
            }
        }
        if (all_recovered)
            ++out.fullyRecoveredTrials;
        ++out.trials;
    }
    return out;
}

namespace
{

/**
 * Derive the fault-map draw seed. Each component is folded through one
 * splitmix64 step so the seed changes completely when any component
 * changes (in particular neighbouring Vdd grid points must not share
 * fault patterns). The Vdd is folded by bit pattern, not value, so
 * there is no epsilon question.
 */
std::uint64_t
faultMapSeed(const FaultMapConfig &cfg)
{
    std::uint64_t state = cfg.runSeed;
    trace::splitmix64(state);
    state ^= std::bit_cast<std::uint64_t>(cfg.vdd);
    trace::splitmix64(state);
    state ^= static_cast<std::uint64_t>(cfg.rows);
    trace::splitmix64(state);
    state ^= static_cast<std::uint64_t>(cfg.wordsPerRow);
    trace::splitmix64(state);
    state ^= static_cast<std::uint64_t>(cfg.degree);
    trace::splitmix64(state);
    state ^= static_cast<std::uint64_t>(cfg.cell);
    return trace::splitmix64(state);
}

} // namespace

FaultMap
buildFaultMap(const FaultMapConfig &cfg)
{
    assert(cfg.rows >= 1 && cfg.wordsPerRow >= 1 && cfg.degree >= 1);
    FaultMap map;
    map.config = cfg;

    const std::uint64_t columns =
        static_cast<std::uint64_t>(cfg.wordsPerRow) * Codeword72::bits;
    map.totalCells = static_cast<std::uint64_t>(cfg.rows) * columns;

    trace::Rng rng(faultMapSeed(cfg));
    const double p = cfg.pfailCell;
    if (p <= 0.0)
        return map;

    if (p >= 1.0) {
        map.faultyCells.resize(map.totalCells);
        for (std::uint64_t i = 0; i < map.totalCells; ++i)
            map.faultyCells[i] = i;
        return map;
    }

    // Skip-ahead sampling: instead of one Bernoulli draw per cell, draw
    // the geometric gap to the next faulty cell. One RNG draw per
    // *fault* keeps the build O(faults) — at the high-Vdd end of a
    // sweep p is ~1e-12 and a per-cell loop would dominate the sweep.
    const double log1mp = std::log1p(-p);
    std::uint64_t cell = 0;
    while (true) {
        const double u = std::max(rng.uniform(), 1e-18);
        const double gap = std::floor(std::log(u) / log1mp);
        if (gap >= static_cast<double>(map.totalCells - cell))
            break;
        cell += static_cast<std::uint64_t>(gap);
        map.faultyCells.push_back(cell);
        if (++cell >= map.totalCells)
            break;
    }
    return map;
}

FaultMapStats
evaluateFaultMap(const FaultMap &map)
{
    const FaultMapConfig &cfg = map.config;
    FaultMapStats out;
    out.words = static_cast<std::uint64_t>(cfg.rows) * cfg.wordsPerRow;

    const std::uint64_t columns =
        static_cast<std::uint64_t>(cfg.wordsPerRow) * Codeword72::bits;

    // Row fill data is deterministic but independent of the fault
    // pattern, so the same logical contents are evaluated at every
    // operating point.
    std::uint64_t fill_state = faultMapSeed(cfg) ^ 0x9e3779b97f4a7c15ull;
    trace::Rng fill_rng(trace::splitmix64(fill_state));

    std::vector<std::uint64_t> original(cfg.wordsPerRow);
    std::size_t next_fault = 0;

    for (std::uint32_t r = 0; r < cfg.rows; ++r) {
        const std::uint64_t row_base = static_cast<std::uint64_t>(r) * columns;
        const std::uint64_t row_end = row_base + columns;

        // Fault-free rows decode trivially; skip the codec work but
        // keep the fill stream position independent of the fault map.
        if (next_fault >= map.faultyCells.size() ||
            map.faultyCells[next_fault] >= row_end) {
            for (std::uint32_t w = 0; w < cfg.wordsPerRow; ++w)
                fill_rng.next();
            out.cleanWords += cfg.wordsPerRow;
            continue;
        }

        EccProtectedRow row(cfg.wordsPerRow, cfg.degree);
        for (std::uint32_t w = 0; w < cfg.wordsPerRow; ++w) {
            original[w] = fill_rng.next();
            row.writeWord(w, original[w]);
        }

        std::vector<std::uint32_t> hits_per_word(cfg.wordsPerRow, 0);
        while (next_fault < map.faultyCells.size() &&
               map.faultyCells[next_fault] < row_end) {
            const auto col = static_cast<std::uint32_t>(
                map.faultyCells[next_fault] - row_base);
            row.strike(col);
            ++hits_per_word[row.wordOfColumn(col)];
            ++next_fault;
        }

        for (std::uint32_t w = 0; w < cfg.wordsPerRow; ++w) {
            if (hits_per_word[w] == 0) {
                ++out.cleanWords;
                continue;
            }
            const EccDecodeResult res = row.readWord(w);
            if (res.status == EccStatus::DetectedUncorrectable) {
                ++out.detectedUncorrectable;
            } else if (res.data != original[w]) {
                ++out.silentCorruptions;
            } else {
                ++out.corrected;
            }
        }
    }
    return out;
}

FaultMapStats
runFaultMapCampaign(const FaultMapConfig &cfg)
{
    return evaluateFaultMap(buildFaultMap(cfg));
}

} // namespace c8t::sram
