/**
 * @file
 * Write scheme helpers.
 */

#include "core/write_scheme.hh"

#include <stdexcept>

namespace c8t::core
{

const char *
toString(WriteScheme s)
{
    switch (s) {
      case WriteScheme::SixTDirect:
        return "6T";
      case WriteScheme::Rmw:
        return "RMW";
      case WriteScheme::LocalRmw:
        return "LocalRMW";
      case WriteScheme::WordGranular:
        return "WordGranular";
      case WriteScheme::WriteGrouping:
        return "WG";
      case WriteScheme::WriteGroupingReadBypass:
        return "WG+RB";
    }
    return "?";
}

WriteScheme
parseWriteScheme(const std::string &name)
{
    if (name == "6T")
        return WriteScheme::SixTDirect;
    if (name == "RMW")
        return WriteScheme::Rmw;
    if (name == "LocalRMW")
        return WriteScheme::LocalRmw;
    if (name == "WordGranular")
        return WriteScheme::WordGranular;
    if (name == "WG")
        return WriteScheme::WriteGrouping;
    if (name == "WG+RB")
        return WriteScheme::WriteGroupingReadBypass;
    throw std::invalid_argument("unknown write scheme: " + name);
}

bool
usesGroupingBuffer(WriteScheme s)
{
    return s == WriteScheme::WriteGrouping ||
           s == WriteScheme::WriteGroupingReadBypass;
}

bool
usesRmw(WriteScheme s)
{
    return s == WriteScheme::Rmw || s == WriteScheme::LocalRmw ||
           usesGroupingBuffer(s);
}

bool
bypassesReads(WriteScheme s)
{
    return s == WriteScheme::WriteGroupingReadBypass;
}

} // namespace c8t::core
