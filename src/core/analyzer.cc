/**
 * @file
 * Stream analyzer implementation.
 */

#include "core/analyzer.hh"

#include "stats/counter.hh"

namespace c8t::core
{

StreamAnalyzer::StreamAnalyzer(const mem::AddrLayout &layout)
    : _layout(layout)
{}

void
StreamAnalyzer::observe(const trace::MemAccess &a)
{
    _instructions += a.gap + 1;

    const std::uint32_t set = _layout.setOf(a.addr);

    if (_havePrev) {
        ++_pairs;
        if (set == _prevSet) {
            const bool prev_read = _prevType == trace::AccessType::Read;
            const bool cur_read = a.isRead();
            if (prev_read && cur_read)
                ++_rr;
            else if (prev_read && !cur_read)
                ++_rw;
            else if (!prev_read && !cur_read)
                ++_ww;
            else
                ++_wr;
        }
    }

    if (a.isRead()) {
        ++_reads;
    } else {
        ++_writes;

        // Silent-store check against the architectural word value.
        const std::uint64_t word_addr = a.addr & ~7ull;
        const std::uint32_t byte_off =
            static_cast<std::uint32_t>(a.addr & 7ull);
        auto it = _shadow.find(word_addr);
        std::uint64_t word = it == _shadow.end() ? 0 : it->second;

        bool silent = true;
        for (std::uint8_t i = 0; i < a.size; ++i) {
            const std::uint32_t shift = 8 * (byte_off + i);
            const auto old_byte =
                static_cast<std::uint8_t>(word >> shift);
            const auto new_byte =
                static_cast<std::uint8_t>(a.data >> (8 * i));
            if (old_byte != new_byte) {
                silent = false;
                word &= ~(0xffull << shift);
                word |= static_cast<std::uint64_t>(new_byte) << shift;
            }
        }
        if (silent)
            ++_silentWrites;
        else
            _shadow[word_addr] = word;
    }

    _havePrev = true;
    _prevType = a.type;
    _prevSet = set;
}

double
StreamAnalyzer::readInstrFraction() const
{
    return stats::safeRatio(_reads, _instructions);
}

double
StreamAnalyzer::writeInstrFraction() const
{
    return stats::safeRatio(_writes, _instructions);
}

double
StreamAnalyzer::rrShare() const
{
    return stats::safeRatio(_rr, _pairs);
}

double
StreamAnalyzer::rwShare() const
{
    return stats::safeRatio(_rw, _pairs);
}

double
StreamAnalyzer::wwShare() const
{
    return stats::safeRatio(_ww, _pairs);
}

double
StreamAnalyzer::wrShare() const
{
    return stats::safeRatio(_wr, _pairs);
}

double
StreamAnalyzer::sameSetShare() const
{
    return stats::safeRatio(_rr + _rw + _ww + _wr, _pairs);
}

double
StreamAnalyzer::silentWriteFraction() const
{
    return stats::safeRatio(_silentWrites, _writes);
}

void
StreamAnalyzer::reset()
{
    _instructions = 0;
    _reads = 0;
    _writes = 0;
    _pairs = 0;
    _rr = 0;
    _rw = 0;
    _ww = 0;
    _wr = 0;
    _silentWrites = 0;
    _havePrev = false;
    _shadow.clear();
}

} // namespace c8t::core
