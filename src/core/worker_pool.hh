/**
 * @file
 * Process-wide sweep worker pool with per-client fair scheduling.
 *
 * The one-shot drivers each own their sweep concurrency: every
 * ParallelSweeper::run spawns (and joins) its own thread team. That is
 * the right shape for a single batch process, but the c8td daemon
 * multiplexes many concurrent client jobs in one process — letting
 * every job spawn its own team would oversubscribe the machine N-fold
 * and let one greedy client starve the rest.
 *
 * SweepPool is the daemon's answer (DESIGN.md §13): ONE process-wide
 * team of worker threads that every sweep shares. Clients register a
 * slot; work is claimed round-robin across slots at task (= SweepJob /
 * explore-shard) granularity, so a client queueing a thousand shards
 * and a client queueing one small run make progress side by side.
 * Cancellation is per-slot: a disconnected client's unclaimed tasks
 * are dropped and its waiting batch completes with JobCancelled;
 * tasks already running finish (simulation is not interruptible) and
 * their results are discarded by the caller.
 *
 * Installation is by a process global (setGlobalSweepPool):
 * ParallelSweeper::run routes its per-job closures through the pool
 * when one is installed, so runVddSweep / runExplore / every figure
 * driver picks up shared scheduling with zero signature changes. The
 * submitting thread is bound to a client slot with ClientScope (a
 * thread-local), because the submission site sits many frames below
 * the daemon's connection handler. Determinism is untouched: the pool
 * only changes WHEN a job runs, never what it computes — results stay
 * byte-identical to the one-shot drivers.
 *
 * Re-entrancy: a batch submitted from a pool worker thread runs
 * inline on that worker (nested sweeps cannot deadlock waiting for
 * their own thread).
 */

#ifndef C8T_CORE_WORKER_POOL_HH
#define C8T_CORE_WORKER_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace c8t::core
{

/** Thrown by SweepPool::runBatch when the submitting client's slot
 *  was cancelled (daemon: the client disconnected mid-job). */
struct JobCancelled : std::runtime_error
{
    JobCancelled() : std::runtime_error("sweep job cancelled") {}
};

/** Shared worker-thread team with per-client round-robin fairness. */
class SweepPool
{
  public:
    /** One unit of work; receives the executing worker's index. */
    using Task = std::function<void(unsigned worker)>;

    /** Fair-share slot handle. 0 is the built-in default slot used by
     *  submissions that never registered (one-shot drivers). */
    using ClientId = std::uint64_t;

    /** Observable behaviour (metrics, tests). */
    struct Stats
    {
        std::uint64_t tasksRun = 0;
        std::uint64_t tasksCancelled = 0;
        std::uint64_t batches = 0;
        std::uint64_t clientsRegistered = 0;
        std::uint64_t activeClients = 0;
        std::uint64_t queuedTasks = 0;
        unsigned workers = 0;
    };

    /**
     * @param workers Worker threads; 0 = resolve like ParallelSweeper
     *                (C8T_JOBS, else hardware_concurrency()).
     */
    explicit SweepPool(unsigned workers = 0);

    /** Cancels every pending task, then joins the workers. */
    ~SweepPool();

    SweepPool(const SweepPool &) = delete;
    SweepPool &operator=(const SweepPool &) = delete;

    /** Worker threads in the team. */
    unsigned workers() const { return _workers; }

    /** Open a new fair-share slot (daemon: one per connection). */
    ClientId registerClient();

    /** Cancel @p client's pending work and close its slot. */
    void unregisterClient(ClientId client);

    /**
     * Mark @p client cancelled: unclaimed tasks are dropped (their
     * batches complete with JobCancelled) and future runBatch calls
     * for the slot throw JobCancelled immediately. Running tasks
     * finish; their batch still reports JobCancelled.
     */
    void cancelClient(ClientId client);

    /**
     * Execute every task on the pool and block until all complete.
     * Tasks are interleaved round-robin with other clients' pending
     * work. Rethrows the first task exception after the batch drains;
     * throws JobCancelled when the slot was cancelled. Called from a
     * pool worker thread, the batch runs inline on that worker.
     */
    void runBatch(ClientId client, std::vector<Task> tasks);

    /** Counter snapshot. */
    Stats stats() const;

    /**
     * Binds the calling thread to a client slot for the scope's
     * lifetime; ParallelSweeper::run submits under currentClient().
     * Nests (restores the previous binding on destruction).
     */
    class ClientScope
    {
      public:
        explicit ClientScope(ClientId client);
        ~ClientScope();
        ClientScope(const ClientScope &) = delete;
        ClientScope &operator=(const ClientScope &) = delete;

      private:
        ClientId _previous;
    };

    /** The calling thread's bound slot (0 when unbound). */
    static ClientId currentClient();

    /** Whether the calling thread is one of a pool's workers. */
    static bool onWorkerThread();

  private:
    struct Batch
    {
        std::size_t remaining = 0;
        std::exception_ptr error;
    };

    struct Pending
    {
        Task fn;
        std::shared_ptr<Batch> batch;
    };

    struct Slot
    {
        std::deque<Pending> queue;
        bool cancelled = false;
    };

    void workerLoop(unsigned worker);
    /** Complete one task against its batch. Requires _mutex held. */
    void finishOne(Batch &batch, std::exception_ptr error);
    /** Drop @p slot's pending tasks as cancelled. Requires _mutex. */
    void dropPending(Slot &slot);

    const unsigned _workers;
    mutable std::mutex _mutex;
    std::condition_variable _workCv;  ///< workers wait for tasks
    std::condition_variable _batchCv; ///< runBatch waits for drain
    std::map<ClientId, Slot> _slots;  ///< ordered: RR walks key order
    ClientId _rrCursor = 0;
    ClientId _nextClient = 0;
    bool _stopping = false;
    Stats _stats;
    std::vector<std::thread> _threads;
};

/** The installed process-wide pool, or nullptr (one-shot mode). */
SweepPool *globalSweepPool();

/**
 * Install (or, with nullptr, uninstall) the process-wide pool.
 * ParallelSweeper::run routes through it while installed. The caller
 * keeps ownership and must keep the pool alive until uninstalled and
 * every in-flight sweep has returned.
 */
void setGlobalSweepPool(SweepPool *pool);

} // namespace c8t::core

#endif // C8T_CORE_WORKER_POOL_HH
