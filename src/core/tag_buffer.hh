/**
 * @file
 * The Tag-Buffer: the controller-side address-tracking structure of the
 * paper's Figure 6b, generalised to a small number of entries.
 *
 * Each entry mirrors one buffered cache set: the set index, the tags of
 * *all* blocks in that set, and the Dirty bit indicating the Set-Buffer
 * holds data newer than the array. The paper's design is a single
 * entry; the multi-entry generalisation is the natural future-work
 * extension evaluated in bench/abl_multi_entry_buffer.
 *
 * Hot-path layout (DESIGN.md §7): like the TagArray, entry state is
 * stored structure-of-arrays — one flat tag vector plus per-entry
 * scalar vectors — and the probe is a branchless way-compare over the
 * matching entry. probe() runs once per access under the grouping
 * schemes, so it is fully inline.
 */

#ifndef C8T_CORE_TAG_BUFFER_HH
#define C8T_CORE_TAG_BUFFER_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "mem/addr.hh"
#include "mem/simd.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"

namespace c8t::core
{

/** Result of a Tag-Buffer probe. */
struct TagProbe
{
    /** An entry holds the probed set. */
    bool setMatch = false;

    /** ... and the probed tag is among that set's valid tags. */
    bool tagMatch = false;

    /** The matching entry index (valid when setMatch). */
    std::uint32_t entry = 0;

    /** The way whose tag matched (valid when tagMatch). */
    std::uint32_t way = 0;
};

/**
 * A small, fully-associative buffer of set descriptors with LRU
 * replacement among entries.
 */
class TagBuffer
{
  public:
    /**
     * @param entries Number of buffered sets (paper: 1).
     * @param ways    Cache associativity (tags per entry).
     */
    TagBuffer(std::uint32_t entries, std::uint32_t ways);

    /** Like probe() but without statistics side effects. */
    TagProbe peek(std::uint32_t set, mem::Addr tag) const
    {
        TagProbe r;
        for (std::uint32_t i = 0; i < _entries; ++i) {
            if (!_valid[i] || _set[i] != set)
                continue;
            r.setMatch = true;
            r.entry = i;
            // Same SIMD way-compare as the TagArray lookup (an entry
            // mirrors one set, so the shape is identical).
            const mem::Addr *tags =
                &_tags[static_cast<std::size_t>(i) * _ways];
            const std::uint64_t m =
                mem::simd::matchBits(_simd, tags, _ways, tag) &
                _validMask[i];
            if (m) {
                r.tagMatch = true;
                r.way =
                    static_cast<std::uint32_t>(std::countr_zero(m));
            }
            break; // a set is buffered by at most one entry
        }
        return r;
    }

    /**
     * Probe for (set, tag). Counts one probe plus set/tag hit
     * statistics; does not modify entry state.
     */
    TagProbe probe(std::uint32_t set, mem::Addr tag)
    {
        ++_probes;
        const TagProbe r = peek(set, tag);
        if (r.setMatch)
            ++_setHits;
        if (r.tagMatch)
            ++_tagHits;
        return r;
    }

    /**
     * Load entry @p e with a new set descriptor.
     *
     * @param e          Entry index.
     * @param set        Cache set index.
     * @param tags       Tag of each way (at least @c ways entries, e.g.
     *                   from TagArray::copyTagsOfSet()).
     * @param valid_mask Which ways hold valid blocks.
     */
    void load(std::uint32_t e, std::uint32_t set, const mem::Addr *tags,
              std::uint64_t valid_mask);

    /** Convenience overload taking a tag vector (must hold @c ways
     *  entries). */
    void load(std::uint32_t e, std::uint32_t set,
              const std::vector<mem::Addr> &tags,
              std::uint64_t valid_mask)
    {
        assert(tags.size() == _ways);
        load(e, set, tags.data(), valid_mask);
    }

    /** Drop entry @p e. */
    void invalidate(std::uint32_t e)
    {
        assert(e < _entries);
        _valid[e] = 0;
        _dirty[e] = 0;
    }

    /** Drop every entry. */
    void invalidateAll();

    /** Mark entry @p e most recently used. */
    void touch(std::uint32_t e)
    {
        assert(e < _entries);
        _lruStamp[e] = ++_clock;
    }

    /** Entry to evict next (invalid entries first, then LRU). */
    std::uint32_t victim() const
    {
        std::uint32_t best = 0;
        bool found_valid = false;
        std::uint64_t oldest = 0;
        for (std::uint32_t i = 0; i < _entries; ++i) {
            if (!_valid[i])
                return i;
            if (!found_valid || _lruStamp[i] < oldest) {
                best = i;
                oldest = _lruStamp[i];
                found_valid = true;
            }
        }
        return best;
    }

    /** True when entry @p e holds a set. */
    bool entryValid(std::uint32_t e) const
    {
        assert(e < _entries);
        return _valid[e] != 0;
    }

    /** Set index held by entry @p e (requires valid). */
    std::uint32_t entrySet(std::uint32_t e) const
    {
        assert(e < _entries && _valid[e]);
        return _set[e];
    }

    /** Dirty bit of entry @p e. */
    bool dirty(std::uint32_t e) const
    {
        assert(e < _entries);
        return _dirty[e] != 0;
    }

    /** Set/clear the Dirty bit of entry @p e. */
    void setDirty(std::uint32_t e, bool d)
    {
        assert(e < _entries);
        _dirty[e] = d ? 1 : 0;
    }

    /** Number of entries. */
    std::uint32_t entries() const { return _entries; }

    /** Storage bits of this buffer for @p set_index_bits / @p tag_bits
     *  geometry (the §5.4 area argument). */
    std::uint64_t storageBits(std::uint32_t set_index_bits,
                              std::uint32_t tag_bits) const;

    /** Probes issued. */
    std::uint64_t probes() const { return _probes.value(); }

    /** Probes that matched a buffered set. */
    std::uint64_t setHits() const { return _setHits.value(); }

    /** Probes that matched set and tag. */
    std::uint64_t tagHits() const { return _tagHits.value(); }

    /** Reset statistics (entries untouched). */
    void resetCounters();

    /** Register the probe counters with @p reg. */
    void registerStats(stats::Registry &reg,
                       const std::string &prefix = std::string());

  private:
    std::uint32_t _entries;
    std::uint32_t _ways;

    /** Way-compare dispatch level, resolved once at construction. */
    mem::simd::SimdLevel _simd;

    // Structure-of-arrays entry state.
    std::vector<mem::Addr> _tags;          //!< [entry * ways + way]
    std::vector<std::uint32_t> _set;       //!< buffered set index
    std::vector<std::uint8_t> _valid;      //!< entry holds a set
    std::vector<std::uint8_t> _dirty;      //!< Set-Buffer newer
    std::vector<std::uint64_t> _validMask; //!< valid ways of the set
    std::vector<std::uint64_t> _lruStamp;  //!< entry recency
    std::uint64_t _clock = 0;

    stats::Counter _probes{"tagbuf.probes", "Tag-Buffer probes"};
    stats::Counter _setHits{"tagbuf.set_hits", "probes matching a set"};
    stats::Counter _tagHits{"tagbuf.tag_hits",
                            "probes matching set and tag"};
};

} // namespace c8t::core

#endif // C8T_CORE_TAG_BUFFER_HH
