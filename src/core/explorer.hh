/**
 * @file
 * The design-space explorer (DESIGN.md §12): cross-product sweeps of
 * cache geometry × replacement × write scheme × supply voltage ×
 * workload, reduced to a Pareto frontier per workload.
 *
 * The ROADMAP north-star is a production-scale engine: 10^4..10^7
 * config-runs, where a config-run is one (workload, geometry, scheme,
 * Vdd) simulation. Three mechanisms make that tractable:
 *
 *  * **Dedup.** The cross-product is expanded workload-major, so every
 *    geometry/scheme/Vdd combination of a workload is adjacent and the
 *    access stream is generated once per workload via the StreamCache
 *    signature (hit rate reported in the result). Monte-Carlo fault
 *    maps are memoized explorer-wide on (cell, interleave degree,
 *    words-per-row, grid index) exactly as in runVddSweep.
 *
 *  * **Sharding.** Cells (one cell = one workload × geometry ×
 *    replacement, i.e. runsPerCell() = schemes × grid config-runs) are
 *    grouped into fixed-size shards; each shard runs as one
 *    ParallelSweeper batch and is reduced immediately to per-design
 *    summaries — raw per-point rows are never materialized across
 *    shards, so memory stays flat regardless of grid size.
 *
 *  * **Resumable checkpointing.** With a checkpoint directory set,
 *    every completed shard writes its reduced summaries to
 *    `<dir>/shard-<index>.ckpt` (atomically: tmp file + rename). A
 *    restarted explore loads completed shards instead of re-running
 *    them; doubles round-trip through hexfloat, so a resumed explore
 *    produces the byte-identical result document
 *    (tests/explorer_test.cc). The checkpoint carries the full spec
 *    signature — resuming with a different spec or run window throws.
 *
 * Determinism: shard execution order (optionally shuffled) and worker
 * count cannot affect the result — summaries are reduced per cell from
 * bit-identical sweep results and canonically sorted at the end.
 */

#ifndef C8T_CORE_EXPLORER_HH
#define C8T_CORE_EXPLORER_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "core/write_scheme.hh"
#include "mem/cache.hh"
#include "mem/replacement.hh"
#include "sram/cell.hh"
#include "sram/vmodel.hh"

namespace c8t::core
{

/** Cross-product specification of one explore. */
struct ExplorerSpec
{
    /** Tag for bench/trace/heartbeat plumbing. */
    std::string label = "explore";

    /** SPEC profile names (trace::specProfile); must be non-empty. */
    std::vector<std::string> workloads;

    /** Cache sizes (KiB). */
    std::vector<std::uint64_t> sizesKb = {16, 32, 64, 128};

    /** Associativities. */
    std::vector<std::uint32_t> ways = {2, 4, 8};

    /** Block sizes (bytes). */
    std::vector<std::uint32_t> blocks = {32, 64};

    /** Replacement policies. */
    std::vector<mem::ReplKind> replacements = {mem::ReplKind::Lru};

    /** Write schemes (the cell type follows each scheme's traits). */
    std::vector<WriteScheme> schemes = {
        WriteScheme::SixTDirect,
        WriteScheme::Rmw,
        WriteScheme::WriteGrouping,
        WriteScheme::WriteGroupingReadBypass,
    };

    /**
     * L2-capacity axis (KiB). Empty = classic single-level cells.
     * Non-empty switches every cell into a two-level hierarchy
     * (DESIGN.md §14): the L1 is pinned to a 6T direct-write cache at
     * nominal supply with the cell's geometry, while the scheme axis
     * and the Vdd grid apply to an inclusive write-back L2 of the
     * axis capacity (8 ways, the L1's block size, the cell's
     * replacement policy). Cells whose L2 would be smaller than the
     * L1 are skipped like any other invalid geometry.
     */
    std::vector<std::uint64_t> l2SizesKb;

    /**
     * Supply grid, strictly descending (same contract as VddSweepSpec).
     * Empty = nominal-only: one config-run per scheme with the voltage
     * model detached, min-Vdd reported as the nominal supply.
     */
    std::vector<double> vddGrid;

    /** Voltage model constants (used when vddGrid is non-empty). */
    sram::VddModelParams model;

    /** Post-ECC word failure rate above which a point is not
     *  operational. */
    double failureThreshold = 1e-3;

    /** Seed for the fault-map draws. */
    std::uint64_t runSeed = 1;

    /** Rows of the Monte-Carlo fault array. */
    std::uint32_t faultRows = 1024;

    /** Cells per shard (>= 1). Small shards checkpoint more often and
     *  show progress sooner; large shards amortize sweep setup. */
    std::size_t cellsPerShard = 8;

    /** Checkpoint directory; empty disables checkpointing. Created if
     *  missing. Must not be shared between different specs. */
    std::string checkpointDir;

    /**
     * Budget of shards *executed by this process* (resumed shards are
     * free); 0 = unlimited. When the budget runs out with work left,
     * the explore stops with completed=false — together with
     * checkpointDir this is the test/CI hook for kill/resume.
     */
    std::uint64_t maxShards = 0;

    /** Execute shards in a seeded-shuffled order (results are
     *  order-invariant; this exists to prove it). */
    bool shuffleShards = false;

    /** Shuffle seed. */
    std::uint64_t shuffleSeed = 1;

    /** Force the heartbeat on (also honours C8T_PROGRESS). */
    bool progress = false;

    /** @throws std::invalid_argument on an empty axis, an unknown
     *  workload, an ascending/non-positive grid or cellsPerShard 0. */
    void validate() const;

    /** Cells = workloads × sizes × ways × blocks × replacements
     *  (× L2 sizes when that axis is non-empty). */
    std::uint64_t cellCount() const;

    /** Config-runs per cell = schemes × max(1, grid points). */
    std::uint64_t runsPerCell() const;

    /** Total config-runs (includes cells later skipped as invalid
     *  geometries — skips are decided per cell, deterministically). */
    std::uint64_t configRunCount() const;

    /** Shards = ceil(cells / cellsPerShard). */
    std::uint64_t shardCount() const;

    /**
     * Deterministic signature of everything that affects the reduced
     * numbers (all axes, model constants, seed, fault rows, sharding
     * and the run window). Stored in every checkpoint and compared on
     * resume; doubles are serialized as hexfloat so the comparison is
     * exact.
     */
    std::string signature(const RunConfig &rc) const;
};

/** Reduced summary of one (cell, scheme) design point. */
struct DesignPointSummary
{
    /** Workload profile name. */
    std::string workload;

    /** Geometry. */
    std::uint64_t sizeBytes = 0;
    std::uint32_t ways = 0;
    std::uint32_t blockBytes = 0;

    /** L2 capacity behind this point (bytes; 0 = single-level). */
    std::uint64_t l2SizeBytes = 0;

    /** Replacement policy. */
    mem::ReplKind repl = mem::ReplKind::Lru;

    /** Scheme name (toString(WriteScheme)). */
    std::string scheme;

    /** Cell the scheme runs on (recomputed from scheme traits). */
    sram::CellType cell = sram::CellType::EightT;

    /** Whether any grid point was reachable-operational. Summary
     *  metrics below are taken at min-Vdd when true, at the highest
     *  grid point when false. */
    bool operational = false;

    /** Lowest reachable operational supply (V); the nominal supply
     *  for a nominal-only explore, 0 when nothing is operational. */
    double minVdd = 0.0;

    /** Total (dynamic + leakage) energy per demand request (J). */
    double energyPerAccess = 0.0;

    /** Energy-delay product per access (J*s). */
    double edpPerAccess = 0.0;

    /** Elapsed cycles per demand request. */
    double cyclesPerAccess = 0.0;

    /** misses / requests. */
    double missRate = 0.0;

    /** Set by the frontier reduction: not dominated on
     *  (energy, EDP, min-Vdd) among the workload's operational
     *  points. */
    bool onFrontier = false;
};

/** Result of one explore (move-only; destructor flushes the pending
 *  bench record, see emitBenchRecord). */
class ExploreResult
{
  public:
    ExploreResult();
    ExploreResult(ExploreResult &&) noexcept;
    ExploreResult &operator=(ExploreResult &&) noexcept;
    ~ExploreResult();

    /** Spec echo. */
    std::string label;
    std::vector<std::string> workloads;
    std::vector<double> vddGrid;
    double failureThreshold = 0.0;

    /** Cell/config-run accounting. cellsSkipped counts invalid
     *  geometries (e.g. more ways than blocks fit); configRunsTotal
     *  counts all cells (spec.configRunCount()), configRunsExecuted
     *  only the runs this process simulated. */
    std::uint64_t cellsTotal = 0;
    std::uint64_t cellsSkipped = 0;
    std::uint64_t configRunsTotal = 0;
    std::uint64_t configRunsExecuted = 0;

    /** Shard accounting. */
    std::uint64_t shardsTotal = 0;
    std::uint64_t shardsExecuted = 0;
    std::uint64_t shardsResumed = 0;

    /** False when the maxShards budget ran out with work left. */
    bool completed = false;

    /** Run telemetry (this process only; never serialized into the
     *  result document, which must be byte-identical across resumes). */
    double wallSeconds = 0.0;
    double configRunsPerSec = 0.0;
    double streamCacheHitRate = 0.0;

    /** All reduced design points, canonically sorted (workload in spec
     *  order, then size, ways, block, replacement, scheme). */
    std::vector<DesignPointSummary> summaries;

    /** The Pareto frontier (minimize energy, EDP, min-Vdd over
     *  operational points) of @p workload, in canonical order. */
    std::vector<const DesignPointSummary *>
    frontier(const std::string &workload) const;

    /**
     * Dump the schema-v5 kind:"explore" document: spec echo, cell
     * accounting and the per-workload frontiers. Deliberately excludes
     * all run telemetry (wall time, rates, resumed-shard counts) so an
     * interrupted-and-resumed explore dumps the byte-identical
     * document as an uninterrupted one. An incomplete explore writes a
     * stub without frontiers.
     */
    void dumpJson(std::ostream &os) const;

    /**
     * Append the kind:"explore" perf record (config-runs/sec, stream-
     * cache hit rate, phase block) to C8T_BENCH_JSON and refresh the
     * metrics exposition. Deferred — like VddSweepResult — so caller
     * serialization of this result is attributed; idempotent, invoked
     * by the destructor at the latest.
     */
    void emitBenchRecord();

  private:
    friend ExploreResult runExplore(const ExplorerSpec &,
                                    const RunConfig &, unsigned);

    /** Deferred bench-record state. */
    struct Pending;
    std::unique_ptr<Pending> _pending;
};

/**
 * Run the explore: expand the spec workload-major into cells, execute
 * (or resume) each shard on a ParallelSweeper, reduce to summaries and
 * mark the per-workload Pareto frontiers.
 *
 * @param spec    Explore configuration (validated).
 * @param rc      Warm-up/measure window per config-run.
 * @param workers Sweep worker threads; 0 = C8T_JOBS / hardware.
 */
ExploreResult runExplore(const ExplorerSpec &spec, const RunConfig &rc,
                         unsigned workers = 0);

} // namespace c8t::core

#endif // C8T_CORE_EXPLORER_HH
