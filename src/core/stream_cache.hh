/**
 * @file
 * Cross-job memoization of generated access streams.
 *
 * Figure sweeps replay the identical calibrated stream through many
 * (cache config × scheme) combinations: every job regenerating its
 * MarkovStream from scratch is redundant work whose outcome is known
 * in advance. StreamCache generates each distinct workload once into
 * an immutable ref-counted buffer and hands every subsequent job a
 * zero-copy trace::ReplayGenerator over it.
 *
 * Keying: a deterministic workload signature string (for SPEC profiles
 * trace::streamSignature, which serialises every generation-relevant
 * StreamParams field exactly). Equal keys therefore guarantee
 * byte-identical streams, so replays cannot perturb results — the
 * sweep engine's bit-identical determinism contract holds with the
 * cache on or off (tests/stream_identity_test.cc).
 *
 * Memory cap: a byte budget resolved from C8T_STREAM_CACHE_MB (default
 * 512 MiB, "0" disables caching) or c8tsim --stream-cache. Entries are
 * evicted least-recently-used; a stream whose requested length alone
 * exceeds the budget is generated per job as before (never buffered,
 * so the cap also bounds transient memory). In-flight replays keep
 * their buffer alive through the shared_ptr even after eviction.
 *
 * Thread safety: acquire() may be called concurrently from sweep
 * workers. The index is guarded by one mutex; generation of a given
 * entry is serialised by a per-entry mutex so concurrent first
 * requests for the same key generate the stream exactly once.
 */

#ifndef C8T_CORE_STREAM_CACHE_HH
#define C8T_CORE_STREAM_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/access.hh"
#include "trace/replay.hh"

namespace c8t::core
{

/**
 * Process-wide cache of generated access streams.
 */
class StreamCache
{
  public:
    /** Builds the workload on a miss (a SweepJob::makeGenerator). */
    using GeneratorFactory =
        std::function<std::unique_ptr<trace::AccessGenerator>()>;

    /** Observable cache behaviour (tests, diagnostics). */
    struct Stats
    {
        /** acquire() calls served from a cached buffer. */
        std::uint64_t hits = 0;

        /** acquire() calls that generated (or regenerated) a buffer. */
        std::uint64_t misses = 0;

        /** acquire() calls bypassed: caching disabled or the stream
         *  alone would not fit in the budget. */
        std::uint64_t bypasses = 0;

        /** Entries evicted to stay within the budget. */
        std::uint64_t evictions = 0;

        /** Resident entries / bytes right now. */
        std::size_t entries = 0;
        std::size_t bytes = 0;
    };

    /** @param byte_budget Cap on resident buffer bytes; 0 disables. */
    explicit StreamCache(std::size_t byte_budget = defaultByteBudget());

    /**
     * Return a generator for the stream identified by @p key.
     *
     * On a hit the result is a ReplayGenerator over the cached buffer.
     * On a miss @p make builds the workload, the first
     * @p accesses accesses are generated into a new buffer (fewer if
     * the stream ends early) and cached, and a ReplayGenerator over it
     * is returned. When caching is off or @p accesses alone exceeds
     * the budget, the freshly built generator is returned unwrapped.
     *
     * A cached buffer satisfies a request when it holds at least
     * @p accesses accesses or the generator was exhausted when it was
     * filled (the replay then ends exactly where a live generator
     * would); otherwise the stream is regenerated at the longer
     * length.
     *
     * @param key      Deterministic workload signature; must be
     *                 non-empty.
     * @param accesses Accesses the caller will consume (warm-up +
     *                 measure).
     * @param make     Factory invoked on a miss.
     * @throws std::invalid_argument on an empty key or null factory.
     */
    std::unique_ptr<trace::AccessGenerator>
    acquire(const std::string &key, std::uint64_t accesses,
            const GeneratorFactory &make);

    /** Change the budget (evicts immediately if now over). 0 disables
     *  caching for subsequent acquire() calls and drops all entries. */
    void setByteBudget(std::size_t bytes);

    /** Current byte budget. */
    std::size_t byteBudget() const;

    /** Whether acquire() may cache at all. */
    bool enabled() const { return byteBudget() > 0; }

    /** Snapshot of the counters. */
    Stats stats() const;

    /** Drop every entry (counters keep accumulating). */
    void clear();

    /** Budget from C8T_STREAM_CACHE_MB (default 512 MiB; "0"
     *  disables; invalid values warn once and use the default). */
    static std::size_t defaultByteBudget();

  private:
    struct Entry
    {
        std::mutex fillMutex;
        trace::ReplayGenerator::Buffer buffer;
        std::string name;
        bool exhausted = false;
        std::uint64_t lastUse = 0;
    };

    void evictToFitLocked();

    mutable std::mutex _mutex;
    std::unordered_map<std::string, std::shared_ptr<Entry>> _entries;
    std::size_t _byteBudget;
    std::size_t _bytes = 0;
    std::uint64_t _useCounter = 0;
    Stats _stats;
};

/** The process-global stream cache every sweep shares. */
StreamCache &globalStreamCache();

} // namespace c8t::core

#endif // C8T_CORE_STREAM_CACHE_HH
