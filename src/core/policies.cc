/**
 * @file
 * Scheme traits table.
 */

#include "core/policies.hh"

namespace c8t::core
{

SchemeTraits
schemeTraits(WriteScheme s)
{
    SchemeTraits t;
    switch (s) {
      case WriteScheme::SixTDirect:
        t.rowReadsPerWrite = 0;
        t.rowWritesPerWrite = 1;
        t.writePortUse = sram::PortUse::WritePort;
        t.requiresEightT = false;
        break;

      case WriteScheme::Rmw:
        t.rowReadsPerWrite = 1;
        t.rowWritesPerWrite = 1;
        // The RMW read phase occupies the read port too (§2).
        t.writePortUse = sram::PortUse::BothPorts;
        break;

      case WriteScheme::LocalRmw:
        t.rowReadsPerWrite = 1;
        t.rowWritesPerWrite = 1;
        // Park et al.: the read phase is confined to the sub-array's
        // local RBL segment, so the global read port stays free.
        t.writePortUse = sram::PortUse::WritePort;
        break;

      case WriteScheme::WordGranular:
        t.rowReadsPerWrite = 0;
        t.rowWritesPerWrite = 1;
        t.writePortUse = sram::PortUse::WritePort;
        t.requiresNonInterleaved = true;
        t.requiresMultiBitEcc = true;
        break;

      case WriteScheme::WriteGrouping:
        t.rowReadsPerWrite = 1; // once per group, not per write
        t.rowWritesPerWrite = 1;
        t.writePortUse = sram::PortUse::ReadPort; // the group-opening read
        t.needsGroupingBuffer = true;
        break;

      case WriteScheme::WriteGroupingReadBypass:
        t.rowReadsPerWrite = 1;
        t.rowWritesPerWrite = 1;
        t.writePortUse = sram::PortUse::ReadPort;
        t.needsGroupingBuffer = true;
        t.canBypassReads = true;
        break;
    }
    return t;
}

} // namespace c8t::core
