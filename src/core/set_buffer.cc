/**
 * @file
 * Set-Buffer implementation.
 */

#include "core/set_buffer.hh"

#include <cassert>
#include <cstring>

namespace c8t::core
{

SetBuffer::SetBuffer(std::uint32_t entries, std::uint32_t row_bytes)
    : _entries(entries), _rowBytes(row_bytes),
      _rows(entries, sram::RowData(row_bytes, 0))
{
    assert(entries >= 1 && row_bytes >= 8);
}

void
SetBuffer::fill(std::uint32_t e, const sram::RowData &row)
{
    assert(e < _entries);
    assert(row.size() == _rowBytes);
    ++_fills;
    _rows[e] = row;
}

bool
SetBuffer::updateBytes(std::uint32_t e, std::uint32_t offset,
                       const std::uint8_t *src, std::size_t len)
{
    assert(e < _entries);
    assert(offset + len <= _rowBytes);
    ++_updates;

    std::uint8_t *dst = _rows[e].data() + offset;
    const bool changed = std::memcmp(dst, src, len) != 0;
    if (changed)
        std::memcpy(dst, src, len);
    else
        ++_silentUpdates;
    return changed;
}

void
SetBuffer::readBytes(std::uint32_t e, std::uint32_t offset,
                     std::uint8_t *dst, std::size_t len) const
{
    assert(e < _entries);
    assert(offset + len <= _rowBytes);
    ++_reads;
    std::memcpy(dst, _rows[e].data() + offset, len);
}

const sram::RowData &
SetBuffer::row(std::uint32_t e) const
{
    assert(e < _entries);
    return _rows[e];
}

void
SetBuffer::registerStats(stats::Registry &reg)
{
    reg.add(_fills);
    reg.add(_updates);
    reg.add(_silentUpdates);
    reg.add(_reads);
}

void
SetBuffer::resetCounters()
{
    _fills.reset();
    _updates.reset();
    _silentUpdates.reset();
    _reads.reset();
}

} // namespace c8t::core
