/**
 * @file
 * Set-Buffer implementation.
 */

#include "core/set_buffer.hh"

#include <cassert>
#include <cstring>

namespace c8t::core
{

SetBuffer::SetBuffer(std::uint32_t entries, std::uint32_t row_bytes)
    : _entries(entries), _rowBytes(row_bytes),
      _rows(entries, sram::RowData(row_bytes, 0))
{
    assert(entries >= 1 && row_bytes >= 8);
}

void
SetBuffer::fill(std::uint32_t e, const sram::RowData &row)
{
    assert(e < _entries);
    assert(row.size() == _rowBytes);
    ++_fills;
    _rows[e] = row;
}

const sram::RowData &
SetBuffer::row(std::uint32_t e) const
{
    assert(e < _entries);
    return _rows[e];
}

void
SetBuffer::registerStats(stats::Registry &reg, const std::string &prefix)
{
    reg.add(_fills, prefix);
    reg.add(_updates, prefix);
    reg.add(_silentUpdates, prefix);
    reg.add(_reads, prefix);
}

void
SetBuffer::resetCounters()
{
    _fills.reset();
    _updates.reset();
    _silentUpdates.reset();
    _reads.reset();
}

} // namespace c8t::core
