/**
 * @file
 * Design-space explorer implementation.
 */

#include "core/explorer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/fault_cache.hh"
#include "core/policies.hh"
#include "core/stream_cache.hh"
#include "core/sweep.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "sram/energy.hh"
#include "sram/fault_injection.hh"
#include "stats/json.hh"
#include "stats/registry.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace c8t::core
{

namespace
{

/** Exact (round-trippable) double serialization for signatures and
 *  checkpoints. */
std::string
hexDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** Parse a hexfloat (or any strtod-accepted) token exactly. */
double
parseDoubleToken(const std::string &tok)
{
    char *end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (!end || *end != '\0' || end == tok.c_str())
        throw std::runtime_error("explorer checkpoint: bad number \"" +
                                 tok + "\"");
    return v;
}

/** splitmix64 step (the shard-shuffle PRNG; no global RNG state). */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Decoded cross-product coordinates of one cell (workload-major so
 *  adjacent cells share the workload stream). */
struct CellCoord
{
    std::size_t workload = 0;
    std::size_t size = 0;
    std::size_t ways = 0;
    std::size_t block = 0;
    std::size_t repl = 0;
    std::size_t l2 = 0; ///< index into l2SizesKb; 0 when axis empty
};

CellCoord
decodeCell(const ExplorerSpec &spec, std::uint64_t index)
{
    CellCoord c;
    // The L2 axis is the innermost coordinate, so a single-level spec
    // (axis size 1 below) decodes exactly as it always did.
    const std::size_t n_l2 =
        std::max<std::size_t>(1, spec.l2SizesKb.size());
    c.l2 = index % n_l2;
    index /= n_l2;
    c.repl = index % spec.replacements.size();
    index /= spec.replacements.size();
    c.block = index % spec.blocks.size();
    index /= spec.blocks.size();
    c.ways = index % spec.ways.size();
    index /= spec.ways.size();
    c.size = index % spec.sizesKb.size();
    index /= spec.sizesKb.size();
    c.workload = index;
    return c;
}

mem::CacheConfig
cacheFor(const ExplorerSpec &spec, const CellCoord &c)
{
    mem::CacheConfig cache;
    cache.sizeBytes = spec.sizesKb[c.size] * 1024;
    cache.ways = spec.ways[c.ways];
    cache.blockBytes = spec.blocks[c.block];
    cache.replacement = spec.replacements[c.repl];
    return cache;
}

/** The L2 level of a hierarchy cell (spec.l2SizesKb non-empty): axis
 *  capacity, 8 ways, the L1's block, the cell's replacement policy.
 *  Scheme/Vdd are stamped in per config-run. */
LevelConfig
lowerFor(const ExplorerSpec &spec, const CellCoord &c,
         const mem::CacheConfig &l1)
{
    LevelConfig l2;
    l2.cache.sizeBytes = spec.l2SizesKb[c.l2] * 1024;
    l2.cache.ways = 8;
    l2.cache.blockBytes = l1.blockBytes;
    l2.cache.replacement = l1.replacement;
    return l2;
}

/** The data-array geometry the controller would build (mirrors
 *  runVddSweep / the CacheController constructor). */
sram::ArrayGeometry
geometryFor(const mem::CacheConfig &cache, WriteScheme scheme)
{
    const SchemeTraits traits = schemeTraits(scheme);
    const ControllerConfig defaults;
    return sram::ArrayGeometry{
        cache.numSets(), cache.setBytes(),
        traits.requiresNonInterleaved ? 1u : defaults.interleaveDegree,
        scheme == WriteScheme::WordGranular};
}

std::string
shardPath(const std::string &dir, std::uint64_t shard)
{
    return dir + "/shard-" + std::to_string(shard) + ".ckpt";
}

/** Serialize one shard's reduced summaries (atomic: tmp + rename). */
void
writeShardCheckpoint(const std::string &dir, std::uint64_t shard,
                     const std::string &signature, std::uint64_t first,
                     std::uint64_t count, std::uint64_t skipped,
                     const std::vector<DesignPointSummary> &points)
{
    const obs::prof::ScopedPhase serialize_scope(
        obs::prof::Phase::Serialize);
    const std::string path = shardPath(dir, shard);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            throw std::runtime_error(
                "explorer: cannot write checkpoint \"" + tmp + "\"");
        os << "c8t-explore-shard 1\n";
        os << "sig " << signature << "\n";
        os << "shard " << shard << "\n";
        os << "cells " << first << " " << count << "\n";
        os << "skipped " << skipped << "\n";
        os << "points " << points.size() << "\n";
        for (const DesignPointSummary &p : points) {
            os << "p " << p.workload << " " << p.sizeBytes << " "
               << p.ways << " " << p.blockBytes << " "
               << mem::toString(p.repl) << " " << p.scheme << " "
               << (p.operational ? 1 : 0) << " " << hexDouble(p.minVdd)
               << " " << hexDouble(p.energyPerAccess) << " "
               << hexDouble(p.edpPerAccess) << " "
               << hexDouble(p.cyclesPerAccess) << " "
               << hexDouble(p.missRate);
            // Trailing optional field: hierarchy points carry their
            // L2 capacity; single-level lines stay byte-identical to
            // the historical format.
            if (p.l2SizeBytes)
                os << " " << p.l2SizeBytes;
            os << "\n";
        }
        os << "end\n";
        os.flush();
        if (!os)
            throw std::runtime_error(
                "explorer: short write to checkpoint \"" + tmp + "\"");
    }
    std::filesystem::rename(tmp, path);
}

/** Load one shard checkpoint; returns the skipped-cell count and
 *  appends the points to @p out. */
std::uint64_t
loadShardCheckpoint(const std::string &path,
                    const std::string &signature, std::uint64_t shard,
                    std::uint64_t first, std::uint64_t count,
                    std::vector<DesignPointSummary> &out)
{
    const obs::prof::ScopedPhase serialize_scope(
        obs::prof::Phase::Serialize);
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("explorer: cannot read checkpoint \"" +
                                 path + "\"");
    const auto fail = [&](const std::string &what) -> std::runtime_error {
        return std::runtime_error("explorer: malformed checkpoint \"" +
                                  path + "\": " + what);
    };
    std::string line;
    if (!std::getline(is, line) || line != "c8t-explore-shard 1")
        throw fail("bad magic");
    if (!std::getline(is, line) || line.rfind("sig ", 0) != 0)
        throw fail("missing signature");
    if (line.substr(4) != signature) {
        throw std::invalid_argument(
            "explorer: checkpoint \"" + path +
            "\" was written by a different spec/run window; use a "
            "fresh --checkpoint-dir");
    }
    const auto parseHeader = [&](const char *keyword,
                                 std::size_t n_fields,
                                 std::uint64_t *a, std::uint64_t *b) {
        if (!std::getline(is, line))
            throw fail(std::string("missing ") + keyword + " line");
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag >> *a) || tag != keyword ||
            (n_fields == 2 && !(ls >> *b)))
            throw fail(std::string("bad ") + keyword + " line");
    };
    std::uint64_t f_shard = 0, f_first = 0, f_count = 0, skipped = 0,
                  n_points = 0, unused = 0;
    parseHeader("shard", 1, &f_shard, &unused);
    if (f_shard != shard)
        throw fail("shard index mismatch");
    parseHeader("cells", 2, &f_first, &f_count);
    if (f_first != first || f_count != count)
        throw fail("cell range mismatch");
    parseHeader("skipped", 1, &skipped, &unused);
    parseHeader("points", 1, &n_points, &unused);
    for (std::uint64_t i = 0; i < n_points; ++i) {
        if (!std::getline(is, line))
            throw fail("truncated point list");
        std::istringstream ls(line);
        std::string tag, repl_name, op_tok, min_vdd, energy, edp, cycles,
            miss;
        DesignPointSummary p;
        if (!(ls >> tag >> p.workload >> p.sizeBytes >> p.ways >>
              p.blockBytes >> repl_name >> p.scheme >> op_tok >>
              min_vdd >> energy >> edp >> cycles >> miss) ||
            tag != "p")
            throw fail("bad point line");
        p.repl = mem::parseReplKind(repl_name);
        const WriteScheme scheme = parseWriteScheme(p.scheme);
        p.cell = schemeTraits(scheme).requiresEightT
                     ? sram::CellType::EightT
                     : sram::CellType::SixT;
        p.operational = op_tok == "1";
        p.minVdd = parseDoubleToken(min_vdd);
        p.energyPerAccess = parseDoubleToken(energy);
        p.edpPerAccess = parseDoubleToken(edp);
        p.cyclesPerAccess = parseDoubleToken(cycles);
        p.missRate = parseDoubleToken(miss);
        std::uint64_t l2_bytes = 0;
        if (ls >> l2_bytes)
            p.l2SizeBytes = l2_bytes;
        out.push_back(std::move(p));
    }
    if (!std::getline(is, line) || line != "end")
        throw fail("missing end marker");
    return skipped;
}

} // anonymous namespace

void
ExplorerSpec::validate() const
{
    if (workloads.empty())
        throw std::invalid_argument("ExplorerSpec: no workloads");
    for (const std::string &w : workloads) {
        try {
            trace::specProfile(w);
        } catch (const std::out_of_range &) {
            throw std::invalid_argument(
                "ExplorerSpec: unknown workload \"" + w + "\"");
        }
    }
    if (sizesKb.empty())
        throw std::invalid_argument("ExplorerSpec: no cache sizes");
    if (ways.empty())
        throw std::invalid_argument("ExplorerSpec: no associativities");
    if (blocks.empty())
        throw std::invalid_argument("ExplorerSpec: no block sizes");
    if (replacements.empty())
        throw std::invalid_argument(
            "ExplorerSpec: no replacement policies");
    if (schemes.empty())
        throw std::invalid_argument("ExplorerSpec: no schemes");
    for (const std::uint64_t kb : l2SizesKb) {
        if (kb == 0)
            throw std::invalid_argument(
                "ExplorerSpec: L2 sizes must be > 0");
    }
    for (std::size_t i = 1; i < vddGrid.size(); ++i) {
        if (!(vddGrid[i] < vddGrid[i - 1]))
            throw std::invalid_argument(
                "ExplorerSpec: grid must be strictly descending");
    }
    if (!vddGrid.empty() && vddGrid.back() <= 0.0)
        throw std::invalid_argument(
            "ExplorerSpec: grid voltages must be > 0");
    if (faultRows == 0)
        throw std::invalid_argument(
            "ExplorerSpec: faultRows must be >= 1");
    if (cellsPerShard == 0)
        throw std::invalid_argument(
            "ExplorerSpec: cellsPerShard must be >= 1");
    model.validate();
}

std::uint64_t
ExplorerSpec::cellCount() const
{
    return static_cast<std::uint64_t>(workloads.size()) * sizesKb.size() *
           ways.size() * blocks.size() * replacements.size() *
           std::max<std::size_t>(1, l2SizesKb.size());
}

std::uint64_t
ExplorerSpec::runsPerCell() const
{
    return static_cast<std::uint64_t>(schemes.size()) *
           std::max<std::size_t>(1, vddGrid.size());
}

std::uint64_t
ExplorerSpec::configRunCount() const
{
    return cellCount() * runsPerCell();
}

std::uint64_t
ExplorerSpec::shardCount() const
{
    return (cellCount() + cellsPerShard - 1) / cellsPerShard;
}

std::string
ExplorerSpec::signature(const RunConfig &rc) const
{
    std::ostringstream os;
    os << "c8t-explore-sig 1";
    os << "; workloads";
    for (const std::string &w : workloads)
        os << " " << w;
    os << "; sizes_kb";
    for (const std::uint64_t v : sizesKb)
        os << " " << v;
    os << "; ways";
    for (const std::uint32_t v : ways)
        os << " " << v;
    os << "; blocks";
    for (const std::uint32_t v : blocks)
        os << " " << v;
    os << "; repl";
    for (const mem::ReplKind r : replacements)
        os << " " << mem::toString(r);
    os << "; schemes";
    for (const WriteScheme s : schemes)
        os << " " << toString(s);
    // Appended only when the axis is in use, so every historical
    // single-level signature (and its checkpoints) stays valid.
    if (!l2SizesKb.empty()) {
        os << "; l2_sizes_kb";
        for (const std::uint64_t v : l2SizesKb)
            os << " " << v;
    }
    os << "; grid";
    for (const double v : vddGrid)
        os << " " << hexDouble(v);
    os << "; model " << hexDouble(model.nominalVdd) << " "
       << hexDouble(model.alpha) << " " << hexDouble(model.leakDecayV)
       << " " << hexDouble(model.clockGhz) << " "
       << hexDouble(model.stability.vth) << " "
       << hexDouble(model.stability.kHold) << " "
       << hexDouble(model.stability.kRead6T) << " "
       << hexDouble(model.stability.kWrite) << " "
       << hexDouble(model.stability.sigmaVth);
    os << "; threshold " << hexDouble(failureThreshold);
    os << "; seed " << runSeed;
    os << "; fault_rows " << faultRows;
    os << "; cells_per_shard " << cellsPerShard;
    os << "; window " << rc.warmupAccesses << " " << rc.measureAccesses;
    return os.str();
}

/** Deferred bench-record state, armed by runExplore. */
struct ExploreResult::Pending
{
    RunConfig rc;
    unsigned workers = 0;
    obs::prof::PhaseTimes phasesBefore;
    bool profOn = false;
};

ExploreResult::ExploreResult() = default;
ExploreResult::ExploreResult(ExploreResult &&) noexcept = default;
ExploreResult &
ExploreResult::operator=(ExploreResult &&) noexcept = default;

ExploreResult::~ExploreResult()
{
    emitBenchRecord();
}

std::vector<const DesignPointSummary *>
ExploreResult::frontier(const std::string &workload) const
{
    std::vector<const DesignPointSummary *> out;
    for (const DesignPointSummary &p : summaries) {
        if (p.onFrontier && p.workload == workload)
            out.push_back(&p);
    }
    return out;
}

void
ExploreResult::dumpJson(std::ostream &os) const
{
    const obs::prof::ScopedPhase serialize_scope(
        obs::prof::Phase::Serialize);
    os << "{\"schema_version\":" << stats::Registry::kJsonSchemaVersion
       << ",\"kind\":\"explore\""
       << ",\"label\":\"" << stats::jsonEscape(label) << "\""
       << ",\"workloads\":[";
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        os << (i ? "," : "") << '"' << stats::jsonEscape(workloads[i])
           << '"';
    }
    os << "],\"vdd_grid\":[";
    for (std::size_t i = 0; i < vddGrid.size(); ++i) {
        os << (i ? "," : "");
        stats::jsonNumber(os, vddGrid[i]);
    }
    os << "],\"failure_threshold\":";
    stats::jsonNumber(os, failureThreshold);
    os << ",\"cells\":" << cellsTotal
       << ",\"cells_skipped\":" << cellsSkipped
       << ",\"config_runs\":" << configRunsTotal
       << ",\"completed\":" << (completed ? "true" : "false")
       << ",\"frontiers\":[";
    // An incomplete explore has no frontier to speak of (dominance
    // over a partial point set would be misleading) — emit the spec
    // echo and accounting only.
    bool first_workload = true;
    if (completed) {
        for (const std::string &w : workloads) {
            std::uint64_t n_points = 0, n_operational = 0;
            for (const DesignPointSummary &p : summaries) {
                if (p.workload != w)
                    continue;
                ++n_points;
                if (p.operational)
                    ++n_operational;
            }
            os << (first_workload ? "" : ",") << "{\"workload\":\""
               << stats::jsonEscape(w) << "\""
               << ",\"points\":" << n_points
               << ",\"operational\":" << n_operational
               << ",\"frontier\":[";
            bool first_point = true;
            for (const DesignPointSummary &p : summaries) {
                if (!p.onFrontier || p.workload != w)
                    continue;
                os << (first_point ? "" : ",") << "{\"size_kb\":"
                   << p.sizeBytes / 1024 << ",\"ways\":" << p.ways
                   << ",\"block\":" << p.blockBytes;
                // Gated key: absent for single-level documents.
                if (p.l2SizeBytes)
                    os << ",\"l2_kb\":" << p.l2SizeBytes / 1024;
                os << ",\"repl\":\""
                   << mem::toString(p.repl) << "\",\"scheme\":\""
                   << stats::jsonEscape(p.scheme) << "\",\"cell\":\""
                   << sram::toString(p.cell) << "\",\"min_vdd\":";
                stats::jsonNumber(os, p.minVdd);
                os << ",\"energy_per_access\":";
                stats::jsonNumber(os, p.energyPerAccess);
                os << ",\"edp_per_access\":";
                stats::jsonNumber(os, p.edpPerAccess);
                os << ",\"cycles_per_access\":";
                stats::jsonNumber(os, p.cyclesPerAccess);
                os << ",\"miss_rate\":";
                stats::jsonNumber(os, p.missRate);
                os << '}';
                first_point = false;
            }
            os << "]}";
            first_workload = false;
        }
    }
    os << "]}";
}

void
ExploreResult::emitBenchRecord()
{
    if (!_pending)
        return;
    const std::unique_ptr<Pending> p = std::move(_pending);
    obs::prof::PhaseTimes run_phases;
    if (p->profOn) {
        // Fold in everything this thread did since the explore started
        // — including the caller's dumpJson/table Serialize scopes —
        // and diff against the entry snapshot.
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
        const obs::prof::PhaseTimes after =
            obs::globalMetrics().phaseTimes();
        for (std::size_t i = 0; i < obs::prof::kNumPhases; ++i) {
            run_phases.ns[i] = after.ns[i] - p->phasesBefore.ns[i];
            run_phases.scopes[i] =
                after.scopes[i] - p->phasesBefore.scopes[i];
        }
    }

    const char *path = std::getenv("C8T_BENCH_JSON");
    if (path && *path) {
        std::ofstream os(path, std::ios::app);
        if (!os) {
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true)) {
                std::cerr << "explorer: cannot open C8T_BENCH_JSON=\""
                          << path
                          << "\" for append; perf records disabled\n";
            }
        } else {
            const double simulated =
                static_cast<double>(configRunsExecuted) *
                static_cast<double>(p->rc.warmupAccesses +
                                    p->rc.measureAccesses);
            os << "{\"kind\":\"explore\",\"label\":\""
               << stats::jsonEscape(label) << "\""
               << ",\"workers\":" << p->workers
               << ",\"cells\":" << cellsTotal
               << ",\"cells_skipped\":" << cellsSkipped
               << ",\"shards\":" << shardsTotal
               << ",\"shards_executed\":" << shardsExecuted
               << ",\"shards_resumed\":" << shardsResumed
               << ",\"config_runs\":" << configRunsExecuted
               << ",\"config_runs_total\":" << configRunsTotal
               << ",\"warmup_accesses\":" << p->rc.warmupAccesses
               << ",\"measure_accesses\":" << p->rc.measureAccesses
               << ",\"simulated_accesses\":"
               << static_cast<std::uint64_t>(simulated)
               << ",\"wall_seconds\":" << wallSeconds
               << ",\"accesses_per_sec\":"
               << (wallSeconds > 0.0 ? simulated / wallSeconds : 0.0)
               << ",\"config_runs_per_sec\":";
            stats::jsonNumber(os, configRunsPerSec);
            os << ",\"stream_cache_hit_rate\":";
            stats::jsonNumber(os, streamCacheHitRate);
            os << ",\"completed\":" << (completed ? "true" : "false");
            if (p->profOn) {
                os << ",\"phases\":{";
                for (std::size_t i = 0; i < obs::prof::kNumPhases; ++i) {
                    os << "\""
                       << obs::prof::toString(
                              static_cast<obs::prof::Phase>(i))
                       << "\":";
                    stats::jsonNumber(
                        os, static_cast<double>(run_phases.ns[i]) * 1e-9);
                    os << ",";
                }
                os << "\"total\":";
                stats::jsonNumber(
                    os, static_cast<double>(run_phases.totalNs()) * 1e-9);
                os << "}";
            }
            os << "}\n";
        }
    }
    obs::writeGlobalMetrics();
}

ExploreResult
runExplore(const ExplorerSpec &spec, const RunConfig &rc, unsigned workers)
{
    spec.validate();
    const auto t0 = std::chrono::steady_clock::now();
    const bool prof_on = obs::prof::enabled();
    obs::prof::PhaseTimes phases_before;
    if (prof_on) {
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
        phases_before = obs::globalMetrics().phaseTimes();
    }

    const sram::VddModel model(spec.model);
    const bool vdd_mode = !spec.vddGrid.empty();
    const bool hier_mode = !spec.l2SizesKb.empty();
    // Nominal-only mode is a one-point "grid" at the nominal supply
    // with the voltage model detached (cfg.vdd = 0) and no fault maps.
    const std::vector<double> grid =
        vdd_mode ? spec.vddGrid
                 : std::vector<double>{spec.model.nominalVdd};
    const double period = model.clockPeriod();

    const StreamCache::Stats cache_before = globalStreamCache().stats();

    ExploreResult result;
    result.label = spec.label;
    result.workloads = spec.workloads;
    result.vddGrid = spec.vddGrid;
    result.failureThreshold = spec.failureThreshold;
    result.cellsTotal = spec.cellCount();
    result.configRunsTotal = spec.configRunCount();
    result.shardsTotal = spec.shardCount();

    const bool ckpt_on = !spec.checkpointDir.empty();
    std::string sig;
    if (ckpt_on) {
        std::filesystem::create_directories(spec.checkpointDir);
        sig = spec.signature(rc);
    }

    // Shard execution order: identity, or a seeded Fisher-Yates
    // shuffle. Results are order-invariant (summaries are sorted
    // canonically below); the shuffle exists so tests can prove it.
    std::vector<std::uint64_t> order(result.shardsTotal);
    std::iota(order.begin(), order.end(), 0);
    if (spec.shuffleShards && order.size() > 1) {
        std::uint64_t state = spec.shuffleSeed;
        for (std::size_t i = order.size() - 1; i > 0; --i) {
            const std::size_t j = static_cast<std::size_t>(
                splitmix64(state) % (i + 1));
            std::swap(order[i], order[j]);
        }
    }

    ParallelSweeper sweeper(workers);
    sweeper.setProgress(false); // the explorer heartbeats per shard
    sweeper.setRecordBench(false); // one umbrella record, not per shard

    // Fault maps are memoized process-wide: they depend only on
    // (seed, cell type, interleave degree, words per row, voltage),
    // so every geometry with the same set size shares them — across
    // this explore AND every other request in a long-running daemon.
    const auto faultsAt = [&](sram::CellType cell, std::uint32_t degree,
                              std::uint32_t words_per_row,
                              std::size_t grid_index) {
        sram::FaultMapConfig fmc;
        fmc.runSeed = spec.runSeed;
        fmc.vdd = grid[grid_index];
        fmc.cell = cell;
        fmc.pfailCell = model.at(fmc.vdd, cell).pfailCell;
        fmc.rows = spec.faultRows;
        fmc.wordsPerRow = words_per_row;
        fmc.degree = degree;
        return globalFaultMapCache().evaluate(fmc);
    };

    // Reduce one executed shard: per valid cell, per scheme, walk the
    // grid for reachability and summarize at the min-Vdd point.
    const auto reduceCell =
        [&](const CellCoord &coord, const mem::CacheConfig &cache,
            const std::vector<std::vector<SchemeRunResult>> &runs,
            std::size_t job_base,
            std::vector<DesignPointSummary> &out) {
            // In hierarchy mode the swept scheme runs on the L2, so
            // fault maps, verdicts and leakage scaling follow the L2
            // shape; the pinned 6T L1 contributes a fixed leakage
            // term at nominal supply.
            const mem::CacheConfig swept_shape =
                hier_mode ? lowerFor(spec, coord, cache).cache : cache;
            double leak_top_fixed = 0.0;
            if (hier_mode) {
                const sram::EnergyModel top_em(
                    geometryFor(cache, WriteScheme::SixTDirect),
                    ControllerConfig{}.tech);
                leak_top_fixed = top_em.leakagePower();
            }
            for (std::size_t si = 0; si < spec.schemes.size(); ++si) {
                const WriteScheme scheme = spec.schemes[si];
                const SchemeTraits traits = schemeTraits(scheme);
                const sram::CellType cell =
                    traits.requiresEightT ? sram::CellType::EightT
                                          : sram::CellType::SixT;
                const sram::ArrayGeometry geom =
                    geometryFor(swept_shape, scheme);
                const sram::EnergyModel em(geom,
                                           ControllerConfig{}.tech);
                const double leak_nominal = em.leakagePower();
                const std::uint32_t words_per_row =
                    std::max<std::uint32_t>(1,
                                            swept_shape.setBytes() / 8);

                DesignPointSummary p;
                p.workload = spec.workloads[coord.workload];
                p.sizeBytes = cache.sizeBytes;
                p.ways = cache.ways;
                p.blockBytes = cache.blockBytes;
                p.l2SizeBytes =
                    hier_mode ? swept_shape.sizeBytes : 0;
                p.repl = cache.replacement;
                p.scheme = toString(scheme);
                p.cell = cell;

                // min-Vdd: the lowest grid voltage reachable from
                // nominal through operational points only (exactly
                // runVddSweep's reachability rule). Nominal-only mode
                // has no fault dimension: the single point is
                // operational by definition.
                std::size_t summary_gi = 0;
                bool reachable = true;
                for (std::size_t gi = 0; gi < grid.size(); ++gi) {
                    const bool operational =
                        !vdd_mode ||
                        faultsAt(cell, geom.interleaveDegree,
                                 words_per_row, gi)
                                .postEccFailureRate() <=
                            spec.failureThreshold;
                    if (reachable && operational) {
                        p.operational = true;
                        p.minVdd = grid[gi];
                        summary_gi = gi;
                    } else {
                        reachable = false;
                    }
                }

                const SchemeRunResult &run =
                    runs[job_base + summary_gi][si];
                const double requests =
                    static_cast<double>(run.requests);
                if (requests > 0.0) {
                    const sram::VddPoint point =
                        model.at(grid[summary_gi], cell);
                    const double seconds =
                        static_cast<double>(run.cycles) * period;
                    // totalDynamicEnergy == dynamicEnergy
                    // bit-identically for a single level.
                    const double dyn =
                        run.totalDynamicEnergy / requests;
                    const double leak = (leak_top_fixed +
                                         leak_nominal *
                                             point.leakageScale) *
                                        seconds / requests;
                    p.energyPerAccess = dyn + leak;
                    p.cyclesPerAccess =
                        static_cast<double>(run.cycles) / requests;
                    p.edpPerAccess =
                        p.energyPerAccess * p.cyclesPerAccess * period;
                    p.missRate =
                        static_cast<double>(run.misses) / requests;
                }
                out.push_back(std::move(p));
            }
        };

    const bool progress_on =
        spec.progress || ParallelSweeper::defaultProgress();
    auto last_beat = t0;
    std::uint64_t shards_accounted = 0;
    std::uint64_t cells_accounted = 0;

    const auto heartbeat = [&](bool final_beat) {
        if (!progress_on)
            return;
        const auto now = std::chrono::steady_clock::now();
        if (!final_beat &&
            std::chrono::duration<double>(now - last_beat).count() < 0.5)
            return;
        last_beat = now;
        const double elapsed =
            std::chrono::duration<double>(now - t0).count();
        const std::uint64_t runs_done =
            cells_accounted * spec.runsPerCell();
        const double exec_rate =
            elapsed > 0.0
                ? static_cast<double>(result.configRunsExecuted) / elapsed
                : 0.0;
        const std::uint64_t runs_left =
            result.configRunsTotal > runs_done
                ? result.configRunsTotal - runs_done
                : 0;
        const double eta = exec_rate > 0.0
                               ? static_cast<double>(runs_left) /
                                     exec_rate
                               : 0.0;
        const StreamCache::Stats cs = globalStreamCache().stats();
        const std::uint64_t d_hits = cs.hits - cache_before.hits;
        const std::uint64_t d_lookups =
            d_hits + (cs.misses - cache_before.misses);
        std::fprintf(
            stderr,
            "\r[%s] shards %llu/%llu · config-runs %llu/%llu · "
            "%.1f runs/s · ETA %.0fs · cache-hit %.0f%%%s",
            spec.label.c_str(),
            static_cast<unsigned long long>(shards_accounted),
            static_cast<unsigned long long>(result.shardsTotal),
            static_cast<unsigned long long>(runs_done),
            static_cast<unsigned long long>(result.configRunsTotal),
            exec_rate, eta,
            d_lookups ? 100.0 * static_cast<double>(d_hits) /
                            static_cast<double>(d_lookups)
                      : 0.0,
            final_beat ? "\n" : "");
        std::fflush(stderr);
    };

    for (const std::uint64_t shard : order) {
        const std::uint64_t first = shard * spec.cellsPerShard;
        const std::uint64_t count = std::min<std::uint64_t>(
            spec.cellsPerShard, result.cellsTotal - first);
        const std::string path =
            ckpt_on ? shardPath(spec.checkpointDir, shard)
                    : std::string();

        if (ckpt_on && std::filesystem::exists(path)) {
            result.cellsSkipped += loadShardCheckpoint(
                path, sig, shard, first, count, result.summaries);
            ++result.shardsResumed;
            ++shards_accounted;
            cells_accounted += count;
        } else if (!spec.maxShards ||
                   result.shardsExecuted < spec.maxShards) {
            const auto shard_t0 = std::chrono::steady_clock::now();

            // Expand the shard's cells into jobs: one job per grid
            // point, one controller per scheme. Invalid geometries
            // (e.g. a set smaller than one block) are skipped — the
            // verdict depends only on the spec, so it is identical on
            // every run/resume.
            std::vector<SweepJob> jobs;
            std::vector<std::pair<CellCoord, mem::CacheConfig>> valid;
            std::uint64_t skipped = 0;
            for (std::uint64_t ci = first; ci < first + count; ++ci) {
                const CellCoord coord = decodeCell(spec, ci);
                const mem::CacheConfig cache = cacheFor(spec, coord);
                try {
                    cache.validate();
                    if (hier_mode) {
                        // An L2 that cannot hold the L1 breaks
                        // inclusion — skipped like any other invalid
                        // geometry, deterministically from the spec.
                        const LevelConfig l2 =
                            lowerFor(spec, coord, cache);
                        l2.cache.validate();
                        if (l2.cache.sizeBytes < cache.sizeBytes)
                            throw std::invalid_argument(
                                "L2 smaller than L1");
                    }
                } catch (const std::invalid_argument &) {
                    ++skipped;
                    continue;
                }
                const trace::StreamParams profile =
                    trace::specProfile(spec.workloads[coord.workload]);
                const std::string key = trace::streamSignature(profile);
                for (std::size_t gi = 0; gi < grid.size(); ++gi) {
                    SweepJob job;
                    job.makeGenerator = [profile]() {
                        return std::make_unique<trace::MarkovStream>(
                            profile);
                    };
                    job.streamKey = key;
                    job.vdd = vdd_mode ? grid[gi] : 0.0;
                    job.configs.reserve(spec.schemes.size());
                    for (const WriteScheme s : spec.schemes) {
                        ControllerConfig cfg;
                        cfg.cache = cache;
                        if (hier_mode) {
                            // 6T L1 at nominal; scheme and grid Vdd
                            // ride on the L2 (DESIGN.md §14).
                            cfg.scheme = WriteScheme::SixTDirect;
                            cfg.lowerLevels = {
                                lowerFor(spec, coord, cache)};
                            cfg.lowerLevels.front().scheme = s;
                            if (vdd_mode) {
                                cfg.lowerLevels.front().vdd = grid[gi];
                                cfg.vmodel = spec.model;
                            }
                        } else {
                            cfg.scheme = s;
                            if (vdd_mode) {
                                cfg.vdd = grid[gi];
                                cfg.vmodel = spec.model;
                            }
                        }
                        job.configs.push_back(cfg);
                    }
                    jobs.push_back(std::move(job));
                }
                valid.emplace_back(coord, cache);
            }

            std::vector<DesignPointSummary> shard_points;
            if (!jobs.empty()) {
                const auto runs = sweeper.run(
                    jobs, rc,
                    spec.label + ":shard" + std::to_string(shard));
                shard_points.reserve(valid.size() *
                                     spec.schemes.size());
                for (std::size_t vi = 0; vi < valid.size(); ++vi) {
                    reduceCell(valid[vi].first, valid[vi].second, runs,
                               vi * grid.size(), shard_points);
                }
            }

            if (ckpt_on) {
                writeShardCheckpoint(spec.checkpointDir, shard, sig,
                                     first, count, skipped,
                                     shard_points);
            }
            result.summaries.insert(
                result.summaries.end(),
                std::make_move_iterator(shard_points.begin()),
                std::make_move_iterator(shard_points.end()));
            result.cellsSkipped += skipped;
            result.configRunsExecuted +=
                (count - skipped) * spec.runsPerCell();
            ++result.shardsExecuted;
            ++shards_accounted;
            cells_accounted += count;

            const auto shard_t1 = std::chrono::steady_clock::now();
            obs::globalMetrics().recordShardWallNs(
                static_cast<std::uint64_t>(
                    std::chrono::duration<double, std::nano>(shard_t1 -
                                                             shard_t0)
                        .count()));
        } else {
            // Shard budget exhausted and this shard has no checkpoint:
            // leave it for the next run.
            continue;
        }

        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
        obs::Metrics::ExplorerSnapshot snap;
        snap.shardsDone = shards_accounted;
        snap.shardsTotal = result.shardsTotal;
        snap.configRunsDone = cells_accounted * spec.runsPerCell();
        snap.configRunsTotal = result.configRunsTotal;
        snap.configRunsPerSec =
            elapsed > 0.0
                ? static_cast<double>(result.configRunsExecuted) /
                      elapsed
                : 0.0;
        snap.etaSeconds =
            snap.configRunsPerSec > 0.0
                ? static_cast<double>(snap.configRunsTotal -
                                      snap.configRunsDone) /
                      snap.configRunsPerSec
                : 0.0;
        obs::globalMetrics().noteExplorer(snap);
        heartbeat(false);
    }

    result.completed = shards_accounted == result.shardsTotal;

    // Canonical order: spec axes cannot leak execution order into the
    // result document.
    std::sort(result.summaries.begin(), result.summaries.end(),
              [](const DesignPointSummary &a,
                 const DesignPointSummary &b) {
                  return std::tie(a.workload, a.sizeBytes, a.ways,
                                  a.blockBytes, a.repl, a.l2SizeBytes,
                                  a.scheme) <
                         std::tie(b.workload, b.sizeBytes, b.ways,
                                  b.blockBytes, b.repl, b.l2SizeBytes,
                                  b.scheme);
              });

    // Pareto frontier per workload over the operational points:
    // minimize (energy/access, EDP/access, min-Vdd). A point is
    // dominated when another is no worse on all three and strictly
    // better on one; exact ties survive together.
    if (result.completed) {
        for (const std::string &w : spec.workloads) {
            std::vector<DesignPointSummary *> pts;
            for (DesignPointSummary &p : result.summaries) {
                if (p.workload == w && p.operational)
                    pts.push_back(&p);
            }
            for (DesignPointSummary *p : pts) {
                bool dominated = false;
                for (const DesignPointSummary *q : pts) {
                    if (q == p)
                        continue;
                    const bool no_worse =
                        q->energyPerAccess <= p->energyPerAccess &&
                        q->edpPerAccess <= p->edpPerAccess &&
                        q->minVdd <= p->minVdd;
                    const bool better =
                        q->energyPerAccess < p->energyPerAccess ||
                        q->edpPerAccess < p->edpPerAccess ||
                        q->minVdd < p->minVdd;
                    if (no_worse && better) {
                        dominated = true;
                        break;
                    }
                }
                p->onFrontier = !dominated;
            }
        }
    }

    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    result.wallSeconds = wall;
    result.configRunsPerSec =
        wall > 0.0 ? static_cast<double>(result.configRunsExecuted) / wall
                   : 0.0;
    const StreamCache::Stats cache_after = globalStreamCache().stats();
    const std::uint64_t d_hits = cache_after.hits - cache_before.hits;
    const std::uint64_t d_lookups =
        d_hits + (cache_after.misses - cache_before.misses);
    result.streamCacheHitRate =
        d_lookups ? static_cast<double>(d_hits) /
                        static_cast<double>(d_lookups)
                  : 0.0;
    heartbeat(true);

    result._pending = std::make_unique<ExploreResult::Pending>();
    result._pending->rc = rc;
    result._pending->workers = sweeper.workers();
    result._pending->phasesBefore = phases_before;
    result._pending->profOn = prof_on;
    return result;
}

} // namespace c8t::core
