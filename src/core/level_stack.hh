/**
 * @file
 * The composable cache-level stack (DESIGN.md §14).
 *
 * A LevelStack realises a ControllerConfig with lowerLevels as a chain
 * of full CacheController instances over one shared FunctionalMemory:
 * the top level ([0], the L1) services the CPU stream; every miss
 * fetches its block from the level below (the observed next-level
 * latency becomes the miss penalty) and every dirty victim becomes a
 * same-set write burst into the level below. The hierarchy is
 * inclusive and write-back: a lower-level eviction back-invalidates
 * every upper copy of the line, merging fresher upper-level bytes into
 * the outgoing victim, so every valid upper-level line is present
 * below at all times (the inclusion invariant, property-tested in
 * tests/hierarchy_test.cc).
 *
 * Each level keeps its own tag/data arrays, Set-/Tag-Buffers, energy
 * accounting, event ring and supply operating point, so the canonical
 * split — a 6T L1 at nominal Vdd over an 8T L2 at near-threshold — is
 * a pure configuration choice.
 *
 * A stack over a config with no lowerLevels degenerates to exactly the
 * historical single controller: no hooks, no next level, byte-identical
 * statistics and tables.
 */

#ifndef C8T_CORE_LEVEL_STACK_HH
#define C8T_CORE_LEVEL_STACK_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/controller.hh"
#include "mem/functional_mem.hh"
#include "stats/registry.hh"

namespace c8t::core
{

/**
 * An inclusive write-back stack of cache levels behind one functional
 * memory. Non-copyable and non-movable: the inter-level wiring holds
 * pointers into the stack.
 */
class LevelStack
{
  public:
    /**
     * Build the chain described by @p config: the top level from the
     * config itself, one further level per lowerLevels entry (nearest
     * first). Lower levels inherit the top's process (tech) and
     * voltage-model constants; geometry, scheme, buffering and Vdd are
     * per level. All levels share @p memory.
     *
     * @throws std::invalid_argument when a lower level's block size
     *         differs from the top's or its capacity is smaller than
     *         the level above it (inclusion needs the room).
     */
    LevelStack(const ControllerConfig &config,
               mem::FunctionalMemory &memory);

    LevelStack(const LevelStack &) = delete;
    LevelStack &operator=(const LevelStack &) = delete;

    /** Number of levels (1 = the classic single-level cache). */
    std::size_t depth() const { return _levels.size(); }

    /** Level @p i ([0] = L1, [1] = L2, ...). */
    CacheController &level(std::size_t i) { return *_levels.at(i); }
    const CacheController &level(std::size_t i) const
    {
        return *_levels.at(i);
    }

    /** The top (CPU-facing) level. */
    CacheController &top() { return *_levels.front(); }
    const CacheController &top() const { return *_levels.front(); }

    /** The shared backing memory. */
    mem::FunctionalMemory &memory() { return _mem; }

    /** Service one request through the top level. */
    AccessOutcome access(const trace::MemAccess &request)
    {
        return top().access(request);
    }

    /** Replay a chunk through the top level (see CacheController). */
    void accessChunk(const trace::MemAccess *chunk, std::size_t count,
                     const mem::ChunkPlan *plan = nullptr)
    {
        top().accessChunk(chunk, count, plan);
    }

    /** Stage-1 planning on the top level (nullptr when ineligible —
     *  always, for a stacked hierarchy). */
    const mem::ChunkPlan *planReplayChunk(const trace::MemAccess *chunk,
                                          std::size_t count)
    {
        return top().planReplayChunk(chunk, count);
    }

    /** Drain every level's buffered groups into its array. */
    void drain();

    /**
     * Backdoor: flush every dirty line of every level to the
     * functional memory, lowest level first so upper (fresher) copies
     * overwrite stale lower ones. For end-state comparison in tests.
     */
    void flushToMemory();

    /**
     * Architectural value of the aligned 64-bit word at @p addr as the
     * whole hierarchy would return it: the topmost level holding the
     * line wins; memory otherwise. Uncounted.
     */
    std::uint64_t peekWord(mem::Addr addr) const;

    /** Reset statistics and cycle clocks on every level. */
    void resetStats();

    /**
     * Register every level's statistics with @p reg: the top level
     * unprefixed (the historical single-level layout, byte-identical
     * for depth 1) and level i under "l<i+1>." ("l2.", "l3.", ...).
     */
    void registerStats(stats::Registry &reg);

    /** Hierarchy-wide dynamic energy: the sum over all levels (J). */
    double dynamicEnergy() const;

  private:
    mem::FunctionalMemory &_mem;
    std::vector<std::unique_ptr<CacheController>> _levels;
};

/** Stats prefix of level @p i: "" for 0, "l2."/"l3."/... below. */
std::string levelStatsPrefix(std::size_t i);

} // namespace c8t::core

#endif // C8T_CORE_LEVEL_STACK_HH
