/**
 * @file
 * The voltage sweep driver (DESIGN.md §10): every write scheme
 * evaluated at every supply operating point of a grid.
 *
 * For each grid voltage the driver runs one SweepJob through the
 * parallel sweep engine — one controller per scheme, all replaying the
 * byte-identical workload stream (shared via the job streamKey) with
 * the voltage model attached — and combines three ingredients into a
 * per-scheme VddCurve:
 *
 *  * the simulated run (dynamic energy, cycles) at that voltage,
 *  * the analytic operating point (leakage scale, delay factor),
 *  * a Monte-Carlo SEC-DED fault map for the scheme's cell type
 *    (sram::buildFaultMap), whose post-ECC word failure rate decides
 *    whether the point is *operational*.
 *
 * The curve's min-Vdd is the lowest grid voltage reachable from
 * nominal through operational points only — the paper's claim is that
 * this is strictly lower for 8T schemes than for the 6T baseline,
 * while WG/WG+RB recoup the 8T RMW energy tax along the way.
 *
 * Fault maps depend only on (run seed, Vdd, geometry, cell type), so
 * they are evaluated once per (cell, Vdd) on the calling thread and
 * shared across schemes; results are bit-identical for any sweep
 * worker count.
 */

#ifndef C8T_CORE_VDD_SWEEP_HH
#define C8T_CORE_VDD_SWEEP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "core/sweep.hh"
#include "core/write_scheme.hh"
#include "mem/cache.hh"
#include "sram/fault_injection.hh"
#include "sram/vmodel.hh"
#include "stats/registry.hh"
#include "trace/access.hh"

namespace c8t::core
{

/** Configuration of one voltage sweep. */
struct VddSweepSpec
{
    /** Operating points, strictly descending (validated). Default:
     *  sram::VddModel::defaultGrid(), 1.00 V down to 0.50 V. */
    std::vector<double> grid = sram::VddModel::defaultGrid();

    /** Voltage model constants. */
    sram::VddModelParams model;

    /** Post-ECC word failure rate above which an operating point stops
     *  being operational. 1e-3 over the 16 K-word fault array keeps
     *  the Monte-Carlo verdict far from shot noise. */
    double failureThreshold = 1e-3;

    /** Seed for the fault-map draws. */
    std::uint64_t runSeed = 1;

    /** Rows of the Monte-Carlo fault array (words per row and the
     *  interleave degree follow the cache geometry / controller
     *  default). */
    std::uint32_t faultRows = 1024;

    /** Cache shape shared by every scheme. */
    mem::CacheConfig cache;

    /** Schemes to sweep: the paper's voltage story compares the 6T
     *  direct-write baseline against the 8T variants. */
    std::vector<WriteScheme> schemes = {
        WriteScheme::SixTDirect,
        WriteScheme::Rmw,
        WriteScheme::WriteGrouping,
        WriteScheme::WriteGroupingReadBypass,
    };

    /**
     * Lower cache levels, nearest first (empty = the classic
     * single-level sweep). A non-empty list switches the sweep into
     * hierarchy mode (DESIGN.md §14): the top level is pinned to
     * topScheme at topVdd while the scheme axis *and the grid
     * voltage* apply to the first lower level — the paper's 6T-L1 /
     * near-threshold-8T-L2 split. Fault maps and the operational
     * verdict follow the L2 geometry and the swept scheme's cell;
     * energy and EDP are hierarchy-wide.
     */
    std::vector<LevelConfig> lowerLevels;

    /** Top-level scheme in hierarchy mode (the L1 stays a 6T
     *  direct-write cache by default). */
    WriteScheme topScheme = WriteScheme::SixTDirect;

    /** Top-level supply in hierarchy mode (V; 0 = nominal,
     *  model detached for the L1). */
    double topVdd = 0.0;

    /** Workload factory (same contract as SweepJob::makeGenerator). */
    std::function<std::unique_ptr<trace::AccessGenerator>()> makeGenerator;

    /** Stream memoization key (same contract as SweepJob::streamKey);
     *  strongly recommended — every grid point replays the identical
     *  stream, so without a key the stream is regenerated per point. */
    std::string streamKey;
};

/** One scheme evaluated at one operating point. */
struct VddPointResult
{
    /** Supply voltage (V). */
    double vdd = 0.0;

    /** Analytic operating point (scales, delay, cell failure rates)
     *  for this scheme's cell type. */
    sram::VddPoint point;

    /** Monte-Carlo SEC-DED outcome at this point. */
    sram::FaultMapStats faults;

    /** faults.postEccFailureRate() <= the spec threshold. */
    bool operational = false;

    /** Dynamic energy per demand request (J). */
    double dynamicEnergyPerAccess = 0.0;

    /** Leakage energy per demand request (J): scaled array leakage
     *  power integrated over the run's cycle time. */
    double leakageEnergyPerAccess = 0.0;

    /** Total energy per access (dynamic + leakage, J). */
    double energyPerAccess = 0.0;

    /** Elapsed cycles per demand request. */
    double cyclesPerAccess = 0.0;

    /** Energy-delay product per access (J*s). */
    double edpPerAccess = 0.0;

    /** The raw run snapshot. */
    SchemeRunResult run;
};

/** Per-scheme curve over the whole grid. */
struct VddCurve
{
    /** Scheme name (toString(WriteScheme)). */
    std::string scheme;

    /** Cell the scheme runs on (6T for the direct baseline only). */
    sram::CellType cell = sram::CellType::EightT;

    /**
     * Lowest grid voltage reachable from nominal through operational
     * points only (V); 0 when even the highest grid point fails.
     */
    double minVdd = 0.0;

    /** One entry per grid point, descending Vdd. */
    std::vector<VddPointResult> points;
};

/** Result of a voltage sweep. */
class VddSweepResult
{
  public:
    VddSweepResult();
    VddSweepResult(VddSweepResult &&) noexcept;
    VddSweepResult &operator=(VddSweepResult &&) noexcept;
    /** Emits the pending bench record (see emitBenchRecord). */
    ~VddSweepResult();

    /** Workload name (from the generator). */
    std::string workload;

    /** The failure threshold the verdicts used. */
    double failureThreshold = 0.0;

    /** The grid swept, descending. */
    std::vector<double> grid;

    /** True for a hierarchy sweep (spec.lowerLevels non-empty): the
     *  energy/EDP columns are hierarchy-wide and min-Vdd is the L2's. */
    bool hierarchy = false;

    /** One curve per spec scheme, in spec order. */
    std::vector<VddCurve> curves;

    /** Curve for @p scheme; nullptr when it was not swept. */
    const VddCurve *curve(WriteScheme scheme) const;

    /**
     * Register summary statistics (per-scheme min-Vdd and the energy
     * per access at min-Vdd) as gauges named
     * "vdd_sweep.<scheme>.min_vdd" / ".energy_per_access_at_min".
     * The gauges are owned by this result and live as long as it does.
     */
    void registerStats(stats::Registry &reg);

    /**
     * Dump the full result as one JSON object (curves with every
     * per-point quantity). Key order is fixed, so output is
     * deterministic; schema documented in DESIGN.md §10.
     */
    void dumpJson(std::ostream &os) const;

    /**
     * Append the kind:"vdd" perf record to C8T_BENCH_JSON (no-op when
     * unset) and refresh the metrics exposition. Emission is deferred
     * until here — rather than inside runVddSweep — so the record's
     * phase block captures the *caller's* serialization of this result
     * (dumpJson, table printing under a Serialize scope) instead of
     * always reporting serialize:0. Idempotent; the destructor calls
     * it, so a driver that never asks still produces the record.
     * Phase attribution diffs the process rollup across the sweep, so
     * keep one recording result live at a time.
     */
    void emitBenchRecord();

  private:
    friend VddSweepResult runVddSweep(const VddSweepSpec &,
                                      const RunConfig &, unsigned);

    /** Deferred bench-record state (set by runVddSweep). */
    struct Pending;
    std::unique_ptr<Pending> _pending;

    /** Backing storage for registerStats() gauges. */
    std::vector<std::unique_ptr<stats::Gauge>> _gauges;
};

/**
 * Run the sweep: one parallel SweepJob per grid point (label
 * "vdd_sweep:<workload>" for the bench/trace plumbing, with a "+l2"
 * suffix in hierarchy mode so the records never pair with a
 * single-level sweep's in bench_diff), fault maps per
 * (cell, Vdd) on the calling thread, curves assembled per scheme.
 *
 * Arms one kind:"vdd" JSON record (per-scheme min-Vdd plus the
 * sweep's simulation throughput) for C8T_BENCH_JSON when set; the
 * record is written by VddSweepResult::emitBenchRecord() (at the
 * latest, its destructor) so caller-side serialization of the result
 * is attributed in the record's phase block.
 *
 * @param spec    Sweep configuration (validated; throws
 *                std::invalid_argument on an empty/ascending grid, no
 *                schemes or a missing workload factory).
 * @param rc      Warm-up/measure window per (scheme, point) run.
 * @param workers Sweep worker threads; 0 = C8T_JOBS / hardware.
 */
VddSweepResult runVddSweep(const VddSweepSpec &spec, const RunConfig &rc,
                           unsigned workers = 0);

} // namespace c8t::core

#endif // C8T_CORE_VDD_SWEEP_HH
