/**
 * @file
 * Process-wide memoization of Monte-Carlo fault-map campaigns.
 *
 * A fault map's outcome is a pure function of its FaultMapConfig
 * (seed, voltage, cell, per-cell failure rate, geometry): the draws
 * are splitmix64-seeded from exactly those fields. Every voltage
 * sweep and explore evaluating the same operating point therefore
 * recomputes a known answer. Historically each runVddSweep /
 * runExplore call kept its own per-call memo; this cache hoists that
 * memo to process scope so campaigns are shared *across* requests —
 * the c8td daemon's whole reason to exist (DESIGN.md §13): a warm
 * daemon serves repeat operating points without re-running a single
 * Monte-Carlo draw.
 *
 * Correctness: the key serializes every FaultMapConfig field (doubles
 * as hexfloat, exactly), so a hit can only ever return the stats the
 * campaign itself would have produced — results are byte-identical
 * with the cache on, off, or shared between any number of requests.
 *
 * The cache stores reduced FaultMapStats (5 counters), not the maps
 * themselves, so its footprint is negligible and unbounded growth is
 * a non-issue (entries() is exported as a gauge regardless).
 */

#ifndef C8T_CORE_FAULT_CACHE_HH
#define C8T_CORE_FAULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sram/fault_injection.hh"

namespace c8t::core
{

/** Process-wide fault-map campaign memo. */
class FaultMapCache
{
  public:
    /** Observable behaviour (metrics, tests). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t entries = 0;
    };

    /**
     * The stats of the campaign described by @p cfg: served from the
     * memo when an identical config was evaluated before (by anyone,
     * in any request), run via sram::runFaultMapCampaign otherwise.
     * Concurrent first requests for the same key may both run the
     * campaign; both arrive at the identical value, so last-write-wins
     * is harmless (campaigns are pure).
     */
    sram::FaultMapStats evaluate(const sram::FaultMapConfig &cfg);

    /** Counter snapshot. */
    Stats stats() const;

    /** Drop every entry (tests; counters keep accumulating). */
    void clear();

    /** Exact serialization of @p cfg (the memo key). */
    static std::string key(const sram::FaultMapConfig &cfg);

  private:
    mutable std::mutex _mutex;
    std::unordered_map<std::string, sram::FaultMapStats> _entries;
    Stats _stats;
};

/** The process-global fault-map cache every sweep shares. */
FaultMapCache &globalFaultMapCache();

} // namespace c8t::core

#endif // C8T_CORE_FAULT_CACHE_HH
