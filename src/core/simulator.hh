/**
 * @file
 * Simulation drivers: run workloads through controllers and collect
 * comparable result snapshots. Mirrors the paper's methodology of
 * evaluating every technique on the identical access stream in one run.
 */

#ifndef C8T_CORE_SIMULATOR_HH
#define C8T_CORE_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/analyzer.hh"
#include "core/controller.hh"
#include "core/level_stack.hh"
#include "trace/access.hh"

namespace c8t::core
{

/** Run length configuration. */
struct RunConfig
{
    /** Accesses run before statistics are reset (cache warm-up; the
     *  paper fast-forwards 1 B of its 10 B instructions). */
    std::uint64_t warmupAccesses = 30'000;

    /** Accesses measured after warm-up. These defaults are the DESIGN
     *  §2 run window the figure benches use; the benches scale both
     *  (measure = C8T_BENCH_ACCESSES, warm-up = a tenth of it) while
     *  c8tsim takes --accesses/--warmup. */
    std::uint64_t measureAccesses = 300'000;
};

/** Comparable per-(workload, scheme) result snapshot. */
struct SchemeRunResult
{
    /** Workload name. */
    std::string workload;

    /** Scheme name (toString(WriteScheme)). */
    std::string scheme;

    /** Requests serviced in the measurement window. */
    std::uint64_t requests = 0;

    /** Read requests. */
    std::uint64_t reads = 0;

    /** Write requests. */
    std::uint64_t writes = 0;

    /** Demand row operations: the paper's "cache accesses". */
    std::uint64_t demandAccesses = 0;

    /** Demand row reads. */
    std::uint64_t demandRowReads = 0;

    /** Demand row writes. */
    std::uint64_t demandRowWrites = 0;

    /** Miss-handling row operations (fills, victim extraction). */
    std::uint64_t fillAccesses = 0;

    /** Cache hits / misses. */
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    /** Grouping statistics (zero for non-grouping schemes). */
    std::uint64_t groupedWrites = 0;
    std::uint64_t bypassedReads = 0;
    std::uint64_t prematureWritebacks = 0;
    std::uint64_t silentWritesDetected = 0;
    std::uint64_t silentGroupsElided = 0;
    double meanGroupSize = 0.0;

    /** Port contention. */
    std::uint64_t portStallCycles = 0;
    std::uint64_t portConflicts = 0;

    /** Mean read latency in cycles. */
    double meanReadLatency = 0.0;

    /** Dynamic energy of the measured window (J). */
    double dynamicEnergy = 0.0;

    /** Elapsed cycles. */
    std::uint64_t cycles = 0;

    /** Lower-level snapshots ([0] = L2, ...); empty for the classic
     *  single-level run, so historical results are unchanged. */
    std::vector<SchemeRunResult> levels;

    /** Hierarchy-wide dynamic energy: this level plus every level
     *  below (== dynamicEnergy for a single-level run). */
    double totalDynamicEnergy = 0.0;

    /** Field-wise (bit-exact) equality — the sweep engine's
     *  determinism guarantee is tested through this. */
    bool operator==(const SchemeRunResult &other) const = default;
};

/**
 * Run one workload through several controllers in a single generation
 * pass (every controller sees the byte-identical stream). Each
 * controller gets its own functional memory.
 *
 * The generator is reset() first; after warm-up every controller's
 * statistics are reset; after the measurement window every controller
 * is drained so open groups are accounted for.
 */
class MultiSchemeRunner
{
  public:
    /**
     * @param configs One controller configuration per scheme under
     *                test.
     */
    explicit MultiSchemeRunner(std::vector<ControllerConfig> configs);

    /**
     * Run @p gen for the configured window.
     *
     * @param gen Workload (reset() is called first).
     * @param run Window lengths.
     * @return One result per configuration, in input order.
     */
    std::vector<SchemeRunResult> run(trace::AccessGenerator &gen,
                                     const RunConfig &run);

    /** Access a top-level controller (e.g. for invariant checks after
     *  run()); identical to stack(i).top(). */
    CacheController &controller(std::size_t i);

    /** Access the whole level stack of configuration @p i (per-level
     *  controllers, hierarchy peek/flush). */
    LevelStack &stack(std::size_t i);

    /** Number of controllers (= configurations = stacks). */
    std::size_t controllers() const { return _stacks.size(); }

    /**
     * Install an interval hook: during run()'s measurement window the
     * hook fires after every @p interval_accesses accesses (with the
     * 1-based access count), so callers can sample counter deltas
     * into a time series (obs::IntervalSnapshotter). Interval 0 or a
     * null hook disables sampling (the default — the measure loop
     * then pays one predictable branch per access). The hook runs on
     * the thread executing run() and must not touch the generator or
     * the controllers' request path.
     */
    void setIntervalHook(std::uint64_t interval_accesses,
                         std::function<void(std::uint64_t)> hook)
    {
        _intervalAccesses = interval_accesses;
        _intervalHook = std::move(hook);
    }

    /** Accesses pulled per fillChunk() call in run(). 4096 records =
     *  96 KiB of scratch: large enough to amortise the per-chunk
     *  dispatch, small enough to stay cache-resident while every
     *  controller replays it. Matches the controllers' pre-sized
     *  chunk-planner scratch. */
    static constexpr std::size_t kChunkAccesses =
        CacheController::kReplayChunkAccesses;

  private:
    /**
     * Replay @p accesses from @p gen through every controller in
     * chunks. Chunk boundaries are clamped to the interval-hook grid
     * when @p measured, so the hook observes exactly the same
     * controller states as the historical per-access loop.
     */
    std::uint64_t replayWindow(trace::AccessGenerator &gen,
                               std::uint64_t accesses, bool measured);

    std::vector<ControllerConfig> _configs;
    std::vector<std::unique_ptr<mem::FunctionalMemory>> _memories;
    std::vector<std::unique_ptr<LevelStack>> _stacks;
    std::vector<trace::MemAccess> _chunk;

    /** Plan-sharing groups: _planLeader[i] is the first controller
     *  with a cache identical to controller i's. Every controller sees
     *  every access, and tag evolution is scheme-independent, so
     *  same-shape tag states march in lockstep — the leader's stage-1
     *  plan is exact for the whole group and is computed once per
     *  chunk instead of once per controller. */
    std::vector<std::size_t> _planLeader;
    std::vector<const mem::ChunkPlan *> _leaderPlan;
    std::uint64_t _intervalAccesses = 0;
    std::function<void(std::uint64_t)> _intervalHook;
};

/** Snapshot of StreamAnalyzer results (Figures 3-5 quantities). */
struct StreamStats
{
    std::string workload;
    std::uint64_t instructions = 0;
    std::uint64_t accesses = 0;
    double readInstrFraction = 0.0;
    double writeInstrFraction = 0.0;
    double rrShare = 0.0;
    double rwShare = 0.0;
    double wwShare = 0.0;
    double wrShare = 0.0;
    double sameSetShare = 0.0;
    double silentWriteFraction = 0.0;
};

/**
 * Measure a workload's stream statistics over @p accesses accesses
 * against @p layout's set mapping.
 */
StreamStats analyzeStream(trace::AccessGenerator &gen,
                          const mem::AddrLayout &layout,
                          std::uint64_t accesses);

/** Extract a result snapshot from a controller. The snapshot's
 *  totalDynamicEnergy equals its own dynamicEnergy (single level). */
SchemeRunResult snapshotResult(const std::string &workload,
                               const CacheController &ctrl);

/** Extract a result snapshot from a whole stack: the top level's
 *  snapshot plus one `levels` entry per lower level and the
 *  hierarchy-wide totalDynamicEnergy. Identical to the controller
 *  overload for a depth-1 stack. */
SchemeRunResult snapshotResult(const std::string &workload,
                               const LevelStack &stack);

} // namespace c8t::core

#endif // C8T_CORE_SIMULATOR_HH
