/**
 * @file
 * Cache controller implementation.
 */

#include "core/controller.hh"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "core/policies.hh"

namespace c8t::core
{

namespace
{

/** Serialise a little-endian value into caller-provided storage (the
 *  access hot path never touches the heap). */
void
storeLe(std::uint8_t *dst, std::uint64_t value, std::uint8_t size)
{
    for (std::uint8_t i = 0; i < size; ++i)
        dst[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

} // anonymous namespace

CacheController::CacheController(const ControllerConfig &config,
                                 mem::FunctionalMemory &memory)
    : _config(config), _traits(schemeTraits(config.scheme)),
      _mem(memory), _tags(config.cache),
      _array(sram::ArrayGeometry{
          config.cache.numSets(), config.cache.setBytes(),
          _traits.requiresNonInterleaved ? 1u : config.interleaveDegree,
          config.scheme == WriteScheme::WordGranular}),
      _energy(_array.geometry(), config.tech)
{
    if (_config.bufferEntries == 0)
        throw std::invalid_argument(
            "ControllerConfig: bufferEntries must be >= 1");

    // Deferred energy accounting: precompute every per-event energy
    // once (the exact addends the per-access accumulation used), so
    // the hot path only bumps integer counters.
    _rates = _energy.eventRates(_tags.layout().tagBits(),
                                _config.cache.ways,
                                _config.cache.setBytes());

    // Supply-voltage operating point (DESIGN.md §10): applied entirely
    // here — the energy rates and the array latency cycle counts are
    // rewritten once, so the hot path is identical whether a model is
    // attached or not. The miss penalty models the next level of the
    // hierarchy on its own supply and stays unscaled.
    if (_config.vdd > 0.0 && _config.vdd != _config.vmodel.nominalVdd) {
        const sram::VddModel vm(_config.vmodel);
        _vddPoint = vm.at(_config.vdd, cellType());
        _vddActive = true;
        _rates = vm.scaleRates(_rates, _config.vdd);
        _config.latency.rowReadCycles =
            vm.scaleCycles(_config.latency.rowReadCycles, _config.vdd);
        _config.latency.rowWriteCycles =
            vm.scaleCycles(_config.latency.rowWriteCycles, _config.vdd);
        _config.latency.setBufferCycles =
            vm.scaleCycles(_config.latency.setBufferCycles, _config.vdd);
        _vddSupply.set(_vddPoint.vdd);
        _vddEnergyScale.set(_vddPoint.energyScale);
        _vddLeakScale.set(_vddPoint.leakageScale);
        _vddDelayFactor.set(_vddPoint.delayFactor);
        _vddPfailRead.set(_vddPoint.pfailRead);
        _vddPfailWrite.set(_vddPoint.pfailWrite);
    }

    // Pre-size the chunk planner's scratch so the batched replay path
    // never allocates in steady state (hot_path_alloc_test pins this).
    if (_tags.planEligible())
        _tags.reservePlan(kReplayChunkAccesses);

    if (usesGroupingBuffer(_config.scheme)) {
        _tagBuffer = std::make_unique<TagBuffer>(_config.bufferEntries,
                                                 _config.cache.ways);
        _setBuffer = std::make_unique<SetBuffer>(_config.bufferEntries,
                                                 _config.cache.setBytes());
        _entryWritesSinceWb.assign(_config.bufferEntries, 0);
        _entryGroupSize.assign(_config.bufferEntries, 0);
    }
    _tagScratch.assign(_config.cache.ways, 0);
}

std::uint32_t
CacheController::rowOffsetOf(mem::Addr addr, std::uint32_t way) const
{
    return way * _config.cache.blockBytes +
           _tags.layout().blockOffset(addr);
}

std::uint64_t
CacheController::extractData(const sram::RowData &row,
                             std::uint32_t offset, std::uint8_t size) const
{
    assert(offset + size <= row.size());
    std::uint64_t v = 0;
    for (std::uint8_t i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(row[offset + i]) << (8 * i);
    return v;
}

std::uint64_t
CacheController::scheduleOp(sram::PortUse use, std::uint64_t earliest,
                            std::uint32_t duration)
{
    const std::uint64_t start = _ports.schedule(use, earliest, duration);
    // Blocking-cache back-pressure: the controller accepts the next
    // request only after the ports accepted this operation, so queueing
    // delay is bounded (one outstanding operation) and the latency
    // statistics stay meaningful under write-port saturation.
    if (start > _cycle)
        _cycle = start;
    return start;
}

const sram::RowData &
CacheController::demandReadRef(std::uint32_t row)
{
    const sram::RowData &out = _array.readRowRef(row);
    ++_demandRowReads;
    ++_ecounts.rowReads;
    auditEnergy(EnergyEvent::RowRead, 0);
    note(obs::EventType::ArrayRead, 0, row);
    return out;
}

void
CacheController::demandMerge(std::uint32_t row, std::uint32_t offset,
                             const std::uint8_t *bytes, std::uint32_t len)
{
    assert(len >= 1 && len <= sram::EnergyEventRates::kMaxRequestBytes);
    _array.mergeBytes(row, offset, bytes, len);
    ++_demandRowWrites;
    ++_ecounts.partialWrites[len];
    auditEnergy(EnergyEvent::PartialWrite, len);
    scheduleOp(sram::PortUse::WritePort, _cycle,
               _config.latency.rowWriteCycles);
    note(obs::EventType::ArrayWrite, 0, row);
}

std::uint32_t
CacheController::entryOfSet(std::uint32_t set) const
{
    if (!_tagBuffer)
        return 0;
    for (std::uint32_t e = 0; e < _tagBuffer->entries(); ++e) {
        if (_tagBuffer->entryValid(e) && _tagBuffer->entrySet(e) == set)
            return e;
    }
    return _tagBuffer->entries();
}

void
CacheController::writebackEntry(std::uint32_t e, stats::Counter &cause)
{
    assert(_tagBuffer && _tagBuffer->entryValid(e));
    const std::uint32_t set = _tagBuffer->entrySet(e);

    _array.writeRow(set, _setBuffer->row(e));
    ++_demandRowWrites;
    ++cause;
    note(obs::EventType::ArrayWrite, 0, set);
    ++_ecounts.rowWrites;
    auditEnergy(EnergyEvent::RowWrite, 0);
    ++_ecounts.setBufferReadRows;
    auditEnergy(EnergyEvent::SetBufferRead, _setBuffer->rowBytes());
    // The row image is already latched, so the write-back needs the
    // write port only (the grouping schemes' port-availability win);
    // the traits table is the single source of that fact.
    scheduleOp(_traits.writebackPortUse, _cycle,
               _config.latency.rowWriteCycles);

    _tagBuffer->setDirty(e, false);
    _entryWritesSinceWb[e] = 0;
}

void
CacheController::endGroup(std::uint32_t e, stats::Counter &cause)
{
    assert(_tagBuffer && _tagBuffer->entryValid(e));
    if (_entryGroupSize[e] > 0)
        _groupSizes.sample(static_cast<double>(_entryGroupSize[e]));

    if (_tagBuffer->dirty(e)) {
        writebackEntry(e, cause);
    } else if (_entryWritesSinceWb[e] > 0) {
        // Every write since the last write-back was silent: the
        // write-back is elided entirely (the Dirty-bit optimisation).
        ++_silentGroupsElided;
    }
    _entryGroupSize[e] = 0;
    _entryWritesSinceWb[e] = 0;
}

CacheController::ResidentRef
CacheController::ensureResident(mem::Addr block_addr)
{
    const mem::LookupResult r = _tags.access(block_addr);
    if (r.hit)
        return {true, r.way};
    return {false, handleMiss(block_addr)};
}

std::uint32_t
CacheController::handleMiss(mem::Addr block_addr)
{
    const std::uint32_t set = _tags.layout().setOf(block_addr);

    // The buffered row image and tag list become stale when the set's
    // contents change, so a miss to the buffered set ends its group.
    if (_tagBuffer) {
        const std::uint32_t e = entryOfSet(set);
        if (e < _tagBuffer->entries()) {
            endGroup(e, _missFlushWritebacks);
            _tagBuffer->invalidate(e);
        }
    }

    const std::uint32_t block_bytes = _config.cache.blockBytes;

    // Resolve the fill source *before* touching the tag state: a
    // next-level fetch can evict a line down there and back-invalidate
    // our copy, and doing that against settled tags keeps the victim
    // and fill ways chosen below coherent with what actually remains
    // resident. (Inclusion then guarantees the dirty-victim write
    // burst issued further down always hits — see DESIGN.md §14.)
    if (_next) {
        _lastMissPenalty = static_cast<std::uint32_t>(_next->fetchBlock(
            block_addr, _fetchScratch.data(), block_bytes));
    } else {
        _lastMissPenalty = _config.latency.missPenaltyCycles;
    }

    const mem::FillResult fill = _tags.fill(block_addr);

    // Victim extraction + fill merge, as row operations performed in
    // place on the row image (miss-handling accounting, kept separate
    // from the paper's demand counters). The victim block is drained
    // to the next level (or memory) before the new block overwrites
    // its bytes.
    const sram::RowData &cur = _array.readRowRef(set);
    ++_fillRowReads;
    ++_ecounts.rowReads;
    auditEnergy(EnergyEvent::RowRead, 0);

    if (fill.evictedValid)
        note(obs::EventType::Eviction, fill.evictedBlockAddr, set);
    if (fill.evictedValid) {
        const std::uint8_t *victim = cur.data() + fill.way * block_bytes;
        bool must_write = fill.evictedDirty;
        if (_evictionHook) {
            // Stage the victim so upper levels can merge a fresher
            // copy while dropping theirs (inclusion maintenance).
            std::memcpy(_victimScratch.data(), victim, block_bytes);
            if (_evictionHook(fill.evictedBlockAddr,
                              _victimScratch.data(), block_bytes)) {
                must_write = true;
                ++_evictionsMerged;
            }
            victim = _victimScratch.data();
        }
        if (must_write) {
            if (_next)
                _next->acceptBlockWriteback(fill.evictedBlockAddr,
                                            victim, block_bytes);
            else
                _mem.writeBytes(fill.evictedBlockAddr, victim,
                                block_bytes);
        }
    }

    sram::RowData &row = _array.updateRow(set);
    if (_next)
        std::memcpy(row.data() + fill.way * block_bytes,
                    _fetchScratch.data(), block_bytes);
    else
        _mem.readBytes(block_addr, row.data() + fill.way * block_bytes,
                       block_bytes);

    ++_fillRowWrites;
    ++_ecounts.rowWrites;
    auditEnergy(EnergyEvent::RowWrite, 0);
    return fill.way;
}

void
CacheController::attachNextLevel(CacheController *next)
{
    if (next) {
        if (next->config().cache.blockBytes != _config.cache.blockBytes)
            throw std::invalid_argument(
                "CacheController: next-level block size must match");
        _fetchScratch.assign(_config.cache.blockBytes, 0);
    }
    _next = next;
}

void
CacheController::setEvictionHook(EvictionHook hook)
{
    _evictionHook = std::move(hook);
    if (_evictionHook)
        _victimScratch.assign(_config.cache.blockBytes, 0);
}

std::uint64_t
CacheController::fetchBlock(mem::Addr block_addr, std::uint8_t *dst,
                            std::uint32_t len)
{
    assert(len == _config.cache.blockBytes);
    assert(_tags.layout().blockAlign(block_addr) == block_addr);

    // One demand access per fetch: the upper level's miss appears here
    // as a single block read, so this level's "cache access frequency"
    // counts L1 miss traffic exactly once per miss.
    trace::MemAccess req;
    req.addr = block_addr;
    req.size = 8;
    req.gap = 0;
    req.type = trace::AccessType::Read;
    const AccessOutcome out = access(req);

    // Architectural copy of the whole block image (freshest source:
    // Set-Buffer over array over memory); uncounted, like peekWord().
    for (std::uint32_t off = 0; off < len; off += 8)
        storeLe(dst + off, peekWord(block_addr + off), 8);
    return out.latencyCycles;
}

void
CacheController::acceptBlockWriteback(mem::Addr block_addr,
                                      const std::uint8_t *src,
                                      std::uint32_t len)
{
    assert(len == _config.cache.blockBytes);
    assert(_tags.layout().blockAlign(block_addr) == block_addr);

    // The eviction burst: one word-granular write per 8 bytes, all to
    // the same set — the same-set grouping profile the Set-Buffer
    // schemes are built for.
    trace::MemAccess req;
    req.gap = 0;
    req.size = 8;
    req.type = trace::AccessType::Write;
    for (std::uint32_t off = 0; off < len; off += 8) {
        req.addr = block_addr + off;
        std::uint64_t v = 0;
        for (std::uint32_t i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(src[off + i]) << (8 * i);
        req.data = v;
        access(req);
    }
}

bool
CacheController::extractInvalidate(mem::Addr block_addr,
                                   std::uint8_t *dst, std::uint32_t len)
{
    assert(len == _config.cache.blockBytes);
    const mem::LookupResult r = _tags.probe(block_addr);
    if (!r.hit)
        return false;

    const std::uint32_t set = _tags.layout().setOf(block_addr);

    // Settle any buffered group covering the set into the array so the
    // row image read below is the freshest copy of the line.
    if (_tagBuffer) {
        const std::uint32_t e = entryOfSet(set);
        if (e < _tagBuffer->entries()) {
            endGroup(e, _backInvalFlushes);
            _tagBuffer->invalidate(e);
        }
    }

    const bool dirty = _tags.isDirty(set, r.way);
    const sram::RowData &row = _array.peekRow(set);
    std::memcpy(dst, row.data() + r.way * _config.cache.blockBytes, len);
    _tags.invalidate(set, r.way);

    ++_backInvalidations;
    if (dirty)
        ++_backInvalDirty;
    note(obs::EventType::Eviction, block_addr, set);
    return dirty;
}

CacheController::ResidentRef
CacheController::applyPlanned(mem::Addr block_addr,
                              const mem::ChunkPlan &plan, std::size_t i)
{
    const std::uint32_t set = plan.set[i];
    const std::uint32_t way = plan.way[i];
    const std::uint8_t flags = plan.flags[i];

    if (flags & mem::ChunkPlan::kHit) {
        assert(_tags.probe(block_addr).hit &&
               _tags.probe(block_addr).way == way &&
               "planned hit disagrees with live tag state");
        _tags.applyPlannedHit(set, plan.replWord[i]);
        return {true, way};
    }

    // Planned miss: the handleMiss() sequence minus the tag-side work
    // stage 1 already did (victim choice, eviction metadata,
    // replacement update). The next level, eviction hook, event ring
    // and audit hook are absent by eligibility, so no globally-ordered
    // observer is skipped.
    assert(!_tags.probe(block_addr).hit &&
           "planned miss disagrees with live tag state");

    if (_tagBuffer) {
        const std::uint32_t e = entryOfSet(set);
        if (e < _tagBuffer->entries()) {
            endGroup(e, _missFlushWritebacks);
            _tagBuffer->invalidate(e);
        }
    }

    _lastMissPenalty = _config.latency.missPenaltyCycles;

    const std::uint32_t block_bytes = _config.cache.blockBytes;
    const sram::RowData &cur = _array.readRowRef(set);
    ++_fillRowReads;
    ++_ecounts.rowReads;

    if (flags & mem::ChunkPlan::kEvictDirty) {
        _mem.writeBytes(plan.evictedAddr[i],
                        cur.data() + way * block_bytes, block_bytes);
    }

    _tags.applyPlannedFill(set, way, plan.tag[i], plan.replWord[i]);

    sram::RowData &row = _array.updateRow(set);
    _mem.readBytes(block_addr, row.data() + way * block_bytes,
                   block_bytes);

    ++_fillRowWrites;
    ++_ecounts.rowWrites;
    return {false, way};
}

AccessOutcome
CacheController::access(const trace::MemAccess &request)
{
    beginAccess(request);
    switch (_config.scheme) {
      case WriteScheme::SixTDirect:
      case WriteScheme::WordGranular:
        return accessDirect(request);
      case WriteScheme::Rmw:
      case WriteScheme::LocalRmw:
        return accessRmw(request);
      case WriteScheme::WriteGrouping:
      case WriteScheme::WriteGroupingReadBypass:
        return accessGrouped(request);
    }
    return {};
}

const mem::ChunkPlan *
CacheController::planReplayChunk(const trace::MemAccess *chunk,
                                 std::size_t count)
{
    if (!plannedChunkEligible() || count == 0)
        return nullptr;
    return &_tags.planChunk(chunk, count);
}

template <typename AccessFn>
void
CacheController::runPlannedChunk(const trace::MemAccess *chunk,
                                 const mem::ChunkPlan &plan,
                                 AccessFn &&body)
{
    // Stage 2 of the pipeline: apply the plan in original request
    // order. The per-access prologue keeps only the clock (the
    // request-count bumps are order-free sums, folded in once below),
    // and each scheme body consumes the planned lookup outcome instead
    // of performing a live one.
    for (std::size_t i = 0; i < plan.count; ++i) {
        const trace::MemAccess &a = chunk[i];
        assert(a.size >= 1 && a.size <= 8);
        assert(_tags.layout().blockOffset(a.addr) + a.size <=
               _config.cache.blockBytes);
        _cycle += a.gap + 1;
        _requestCycle = _cycle;
        body(a, [this, &plan, i](mem::Addr block_addr) {
            return applyPlanned(block_addr, plan, i);
        });
    }
    _requests += plan.count;
    _readRequests += plan.reads;
    _writeRequests += plan.writes;
    _tags.addPlannedCounts(plan);
}

void
CacheController::accessChunk(const trace::MemAccess *chunk,
                             std::size_t count,
                             const mem::ChunkPlan *plan)
{
    // One scheme-specialized loop per chunk: the dispatch runs once,
    // the request paths stay hot in the branch predictor, and each
    // iteration is statistics-identical to access().
    //
    // When the batched pipeline qualifies, run stage 1 (or adopt the
    // caller's shared plan) and drive the scheme loop off it.
    const mem::ChunkPlan *p = nullptr;
    if (plannedChunkEligible() && count > 0)
        p = plan ? plan : &_tags.planChunk(chunk, count);
    assert(p == nullptr || p->count == count);

    switch (_config.scheme) {
      case WriteScheme::SixTDirect:
      case WriteScheme::WordGranular:
        if (p) {
            runPlannedChunk(chunk, *p,
                            [this](const trace::MemAccess &a,
                                   auto &&resolve) {
                                accessDirectImpl(a, resolve);
                            });
            return;
        }
        for (std::size_t i = 0; i < count; ++i) {
            beginAccess(chunk[i]);
            accessDirect(chunk[i]);
        }
        break;
      case WriteScheme::Rmw:
      case WriteScheme::LocalRmw:
        if (p) {
            runPlannedChunk(chunk, *p,
                            [this](const trace::MemAccess &a,
                                   auto &&resolve) {
                                accessRmwImpl(a, resolve);
                            });
            return;
        }
        for (std::size_t i = 0; i < count; ++i) {
            beginAccess(chunk[i]);
            accessRmw(chunk[i]);
        }
        break;
      case WriteScheme::WriteGrouping:
      case WriteScheme::WriteGroupingReadBypass:
        if (p) {
            runPlannedChunk(chunk, *p,
                            [this](const trace::MemAccess &a,
                                   auto &&resolve) {
                                accessGroupedImpl(a, resolve);
                            });
            return;
        }
        for (std::size_t i = 0; i < count; ++i) {
            beginAccess(chunk[i]);
            accessGrouped(chunk[i]);
        }
        break;
    }
}

AccessOutcome
CacheController::accessDirect(const trace::MemAccess &a)
{
    return accessDirectImpl(
        a, [this](mem::Addr b) { return ensureResident(b); });
}

AccessOutcome
CacheController::accessRmw(const trace::MemAccess &a)
{
    return accessRmwImpl(
        a, [this](mem::Addr b) { return ensureResident(b); });
}

AccessOutcome
CacheController::accessGrouped(const trace::MemAccess &a)
{
    return accessGroupedImpl(
        a, [this](mem::Addr b) { return ensureResident(b); });
}

template <typename ResolveFn>
AccessOutcome
CacheController::accessDirectImpl(const trace::MemAccess &a,
                                  ResolveFn &&resolve)
{
    AccessOutcome out;
    const mem::Addr block_addr = _tags.layout().blockAlign(a.addr);
    const ResidentRef res = resolve(block_addr);
    out.hit = res.hit;
    const std::uint32_t way = res.way;
    const std::uint32_t set = _tags.layout().setOf(a.addr);
    const std::uint32_t offset = rowOffsetOf(a.addr, way);

    std::uint64_t extra = out.hit ? 0 : _lastMissPenalty;

    if (a.isRead()) {
        const std::uint64_t start = scheduleOp(
            sram::PortUse::ReadPort, _cycle + extra,
            _config.latency.rowReadCycles);
        out.data = extractData(demandReadRef(set), offset, a.size);
        out.latencyCycles =
            start + _config.latency.rowReadCycles - _requestCycle;
        _readLatency.sample(static_cast<double>(out.latencyCycles));
    } else {
        std::uint8_t bytes[8];
        storeLe(bytes, a.data, a.size);
        demandMerge(set, offset, bytes, a.size);
        _tags.markDirtyWay(set, way);
        out.latencyCycles = extra + _config.latency.rowWriteCycles;
    }
    return out;
}

template <typename ResolveFn>
AccessOutcome
CacheController::accessRmwImpl(const trace::MemAccess &a,
                               ResolveFn &&resolve)
{
    AccessOutcome out;
    const mem::Addr block_addr = _tags.layout().blockAlign(a.addr);
    const ResidentRef res = resolve(block_addr);
    out.hit = res.hit;
    const std::uint32_t way = res.way;
    const std::uint32_t set = _tags.layout().setOf(a.addr);
    const std::uint32_t offset = rowOffsetOf(a.addr, way);

    const std::uint64_t extra = out.hit ? 0 : _lastMissPenalty;

    if (a.isRead()) {
        const std::uint64_t start = scheduleOp(
            sram::PortUse::ReadPort, _cycle + extra,
            _config.latency.rowReadCycles);
        out.data = extractData(demandReadRef(set), offset, a.size);
        out.latencyCycles =
            start + _config.latency.rowReadCycles - _requestCycle;
        _readLatency.sample(static_cast<double>(out.latencyCycles));
    } else {
        // Read-modify-write: read the row, merge the store, write the
        // row back. Under plain RMW both ports are held for the whole
        // sequence (§2); LocalRMW confines the read phase to the
        // sub-array and holds only the write port.
        note(obs::EventType::RmwTrigger, a.addr, set);
        const std::uint32_t duration = _config.latency.rowReadCycles +
                                       _config.latency.rowWriteCycles;
        scheduleOp(_traits.writePortUse, _cycle + extra, duration);

        demandReadRef(set);
        sram::RowData &row = _array.updateRow(set);
        storeLe(row.data() + offset, a.data, a.size);
        ++_demandRowWrites;
        ++_ecounts.rowWrites;
        auditEnergy(EnergyEvent::RowWrite, 0);
        note(obs::EventType::ArrayWrite, a.addr, set);

        _tags.markDirtyWay(set, way);
        out.latencyCycles = extra + duration;
    }
    return out;
}

template <typename ResolveFn>
AccessOutcome
CacheController::accessGroupedImpl(const trace::MemAccess &a,
                                   ResolveFn &&resolve)
{
    AccessOutcome out;
    const mem::Addr block_addr = _tags.layout().blockAlign(a.addr);
    const std::uint32_t set = _tags.layout().setOf(a.addr);
    const mem::Addr tag = _tags.layout().tagOf(a.addr);

    // Algorithm 1 starts with the Tag-Buffer probe.
    const TagProbe probe = _tagBuffer->probe(set, tag);
    out.tagBufferHit = probe.tagMatch;
    ++_ecounts.tagCompares;
    auditEnergy(EnergyEvent::TagCompare, 0);

    const ResidentRef res = resolve(block_addr);
    out.hit = res.hit;
    // A Tag-Buffer tag hit implies the block was resident (the buffer
    // mirrors the set's tag state), so the entry survived ensureResident.
    assert(!probe.tagMatch || out.hit);

    const std::uint32_t way = res.way;
    const std::uint32_t offset = rowOffsetOf(a.addr, way);
    const std::uint64_t extra = out.hit ? 0 : _lastMissPenalty;

    if (a.isRead()) {
        if (probe.tagMatch) {
            const std::uint32_t e = probe.entry;
            _tagBuffer->touch(e);
            if (bypassesReads(_config.scheme)) {
                // WG+RB: serve straight from the Set-Buffer. No array
                // access, no premature write-back.
                std::uint8_t buf[8] = {};
                _setBuffer->readBytes(e, offset, buf, a.size);
                std::uint64_t v = 0;
                for (std::uint8_t i = 0; i < a.size; ++i)
                    v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
                out.data = v;
                out.bypassed = true;
                ++_bypassedReads;
                note(obs::EventType::ReadBypass, a.addr, set);
                ++_ecounts.setBufferReads[a.size];
                auditEnergy(EnergyEvent::SetBufferRead, a.size);
                out.latencyCycles = _config.latency.setBufferCycles;
                _readLatency.sample(
                    static_cast<double>(out.latencyCycles));
                return out;
            }
            // WG: update the cache first if the buffer is newer, then
            // read from the array as usual.
            std::uint64_t earliest = _cycle;
            if (_tagBuffer->dirty(e)) {
                note(obs::EventType::PrematureWriteback, a.addr, set);
                writebackEntry(e, _prematureWritebacks);
                earliest += _config.latency.rowWriteCycles;
            }
            const std::uint64_t start = scheduleOp(
                sram::PortUse::ReadPort, earliest,
                _config.latency.rowReadCycles);
            out.data = extractData(demandReadRef(set), offset, a.size);
            out.latencyCycles =
                start + _config.latency.rowReadCycles - _requestCycle;
            _readLatency.sample(static_cast<double>(out.latencyCycles));
            return out;
        }

        // Tag-Buffer miss: the array row is current for this set
        // (a dirty buffered row for the same set would have produced a
        // tag match or been flushed by the miss path).
        const std::uint64_t start = scheduleOp(
            sram::PortUse::ReadPort, _cycle + extra,
            _config.latency.rowReadCycles);
        out.data = extractData(demandReadRef(set), offset, a.size);
        out.latencyCycles =
            start + _config.latency.rowReadCycles - _requestCycle;
        _readLatency.sample(static_cast<double>(out.latencyCycles));
        return out;
    }

    // Write request.
    std::uint8_t bytes[8];
    storeLe(bytes, a.data, a.size);

    if (probe.tagMatch) {
        // Grouped: merge into the Set-Buffer, zero array operations.
        const std::uint32_t e = probe.entry;
        _tagBuffer->touch(e);
        const bool changed =
            _setBuffer->updateBytes(e, offset, bytes, a.size);
        if (changed || !_config.silentDetection)
            _tagBuffer->setDirty(e, true);
        if (!changed && _config.silentDetection) {
            ++_silentWritesDetected;
            note(obs::EventType::SilentWriteDrop, a.addr, set);
        }
        ++_groupedWrites;
        note(obs::EventType::SetBufferMerge, a.addr, set);
        ++_entryGroupSize[e];
        ++_entryWritesSinceWb[e];
        _tags.markDirtyWay(set, way);
        ++_ecounts.setBufferWrites[a.size];
        auditEnergy(EnergyEvent::SetBufferWrite, a.size);
        out.latencyCycles = _config.latency.setBufferCycles;
        return out;
    }

    // Tag-Buffer miss: end the victim entry's group and open a new one
    // for this set (Algorithm 1's write-miss path).
    assert(entryOfSet(set) == _tagBuffer->entries() &&
           "a buffered set can only reach here via a flushed miss");

    const std::uint32_t e = _tagBuffer->victim();
    if (_tagBuffer->entryValid(e))
        endGroup(e, _groupWritebacks);

    // Fill the Set-Buffer by reading the row.
    const std::uint64_t start = scheduleOp(
        sram::PortUse::ReadPort, _cycle + extra,
        _config.latency.rowReadCycles);
    _setBuffer->fill(e, demandReadRef(set));
    ++_ecounts.setBufferWriteRows;
    auditEnergy(EnergyEvent::SetBufferWrite, _setBuffer->rowBytes());
    _tags.copyTagsOfSet(set, _tagScratch.data());
    _tagBuffer->load(e, set, _tagScratch.data(), _tags.validMask(set));
    _tagBuffer->touch(e);

    const bool changed =
        _setBuffer->updateBytes(e, offset, bytes, a.size);
    if (changed || !_config.silentDetection)
        _tagBuffer->setDirty(e, true);
    if (!changed && _config.silentDetection) {
        ++_silentWritesDetected;
        note(obs::EventType::SilentWriteDrop, a.addr, set);
    }
    _entryGroupSize[e] = 1;
    _entryWritesSinceWb[e] = 1;
    _tags.markDirtyWay(set, way);

    out.latencyCycles = start + _config.latency.rowReadCycles +
                        _config.latency.setBufferCycles - _requestCycle;
    return out;
}

void
CacheController::drain()
{
    if (!_tagBuffer)
        return;
    for (std::uint32_t e = 0; e < _tagBuffer->entries(); ++e) {
        if (!_tagBuffer->entryValid(e))
            continue;
        if (_entryGroupSize[e] > 0)
            _groupSizes.sample(static_cast<double>(_entryGroupSize[e]));
        if (_tagBuffer->dirty(e)) {
            const std::uint32_t set = _tagBuffer->entrySet(e);
            _array.writeRow(set, _setBuffer->row(e));
            ++_drainWrites;
            _tagBuffer->setDirty(e, false);
        }
        _entryGroupSize[e] = 0;
        _entryWritesSinceWb[e] = 0;
    }
}

void
CacheController::flushCacheToMemory()
{
    const std::uint32_t sets = _config.cache.numSets();
    const std::uint32_t ways = _config.cache.ways;
    const std::uint32_t block_bytes = _config.cache.blockBytes;

    for (std::uint32_t set = 0; set < sets; ++set) {
        const std::uint32_t e = entryOfSet(set);
        const bool buffered = _tagBuffer && e < _tagBuffer->entries();
        const sram::RowData &row =
            buffered ? _setBuffer->row(e) : _array.peekRow(set);

        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!_tags.isValid(set, w) || !_tags.isDirty(set, w))
                continue;
            const mem::Addr block_addr = _tags.blockAddrAt(set, w);
            _mem.writeBytes(block_addr, row.data() + w * block_bytes,
                            block_bytes);
            _tags.clearDirty(set, w);
        }
    }
}

std::uint64_t
CacheController::peekWord(mem::Addr addr) const
{
    const mem::Addr word_addr = addr & ~7ull;
    const mem::LookupResult r = _tags.probe(word_addr);
    if (!r.hit)
        return _mem.readWord(word_addr);

    const std::uint32_t set = _tags.layout().setOf(word_addr);
    const std::uint32_t offset = rowOffsetOf(word_addr, r.way);
    const std::uint32_t e = entryOfSet(set);
    const sram::RowData &row =
        (_tagBuffer && e < _tagBuffer->entries())
            ? _setBuffer->row(e) : _array.peekRow(set);
    return extractData(row, offset, 8);
}

double
CacheController::dynamicEnergy() const
{
    // Count-then-multiply materialization: each addend below is the
    // product of an integer event count (exact) and the per-event
    // constant the per-access accumulation would have added, so the
    // total differs from a sequential accumulation only in summation
    // order (ULP-level rounding; the deferred-energy test pins this).
    double e = static_cast<double>(_ecounts.rowReads) * _rates.rowRead +
               static_cast<double>(_ecounts.rowWrites) * _rates.rowWrite;
    for (std::uint32_t b = 1;
         b <= sram::EnergyEventRates::kMaxRequestBytes; ++b) {
        e += static_cast<double>(_ecounts.partialWrites[b]) *
                 _rates.partialWrite[b] +
             static_cast<double>(_ecounts.setBufferReads[b]) *
                 _rates.setBufferRead[b] +
             static_cast<double>(_ecounts.setBufferWrites[b]) *
                 _rates.setBufferWrite[b];
    }
    e += static_cast<double>(_ecounts.setBufferReadRows) *
             _rates.setBufferReadRow +
         static_cast<double>(_ecounts.setBufferWriteRows) *
             _rates.setBufferWriteRow +
         static_cast<double>(_ecounts.tagCompares) * _rates.tagCompare;
    return e;
}

void
CacheController::registerStats(stats::Registry &reg,
                               const std::string &prefix)
{
    reg.add(_requests, prefix);
    reg.add(_readRequests, prefix);
    reg.add(_writeRequests, prefix);
    reg.add(_demandRowReads, prefix);
    reg.add(_demandRowWrites, prefix);
    reg.add(_fillRowReads, prefix);
    reg.add(_fillRowWrites, prefix);
    reg.add(_drainWrites, prefix);
    reg.add(_groupedWrites, prefix);
    reg.add(_prematureWritebacks, prefix);
    reg.add(_groupWritebacks, prefix);
    reg.add(_missFlushWritebacks, prefix);
    reg.add(_silentGroupsElided, prefix);
    reg.add(_bypassedReads, prefix);
    reg.add(_silentWritesDetected, prefix);
    reg.add(_groupSizes, prefix);
    reg.add(_readLatency, prefix);

    // Registered only when a non-nominal supply is attached: a nominal
    // (or detached) controller's dump must stay byte-identical to a
    // pre-vmodel build. The values are constants of the operating
    // point, re-asserted here in case a resetAll() zeroed them.
    if (_vddActive) {
        _vddSupply.set(_vddPoint.vdd);
        _vddEnergyScale.set(_vddPoint.energyScale);
        _vddLeakScale.set(_vddPoint.leakageScale);
        _vddDelayFactor.set(_vddPoint.delayFactor);
        _vddPfailRead.set(_vddPoint.pfailRead);
        _vddPfailWrite.set(_vddPoint.pfailWrite);
        reg.add(_vddSupply, prefix);
        reg.add(_vddEnergyScale, prefix);
        reg.add(_vddLeakScale, prefix);
        reg.add(_vddDelayFactor, prefix);
        reg.add(_vddPfailRead, prefix);
        reg.add(_vddPfailWrite, prefix);
    }

    // Hierarchy counters exist only for stacked controllers, so a
    // single-level dump stays byte-identical to historical builds.
    if (_next || _evictionHook) {
        reg.add(_backInvalidations, prefix);
        reg.add(_backInvalDirty, prefix);
        reg.add(_backInvalFlushes, prefix);
        reg.add(_evictionsMerged, prefix);
    }

    _tags.registerStats(reg, prefix);
    _array.registerStats(reg, prefix);
    _ports.registerStats(reg, prefix);
    if (_tagBuffer)
        _tagBuffer->registerStats(reg, prefix);
    if (_setBuffer)
        _setBuffer->registerStats(reg, prefix);
}

void
CacheController::dumpStats(std::ostream &os)
{
    stats::Registry reg;
    registerStats(reg);
    reg.dump(os);
}

void
CacheController::resetStats()
{
    _cycle = 0;
    _requestCycle = 0;
    _ecounts = EnergyCounts{};
    if (_events)
        _events->clear();

    _requests.reset();
    _readRequests.reset();
    _writeRequests.reset();
    _demandRowReads.reset();
    _demandRowWrites.reset();
    _fillRowReads.reset();
    _fillRowWrites.reset();
    _drainWrites.reset();
    _groupedWrites.reset();
    _prematureWritebacks.reset();
    _groupWritebacks.reset();
    _missFlushWritebacks.reset();
    _silentGroupsElided.reset();
    _bypassedReads.reset();
    _silentWritesDetected.reset();
    _backInvalidations.reset();
    _backInvalDirty.reset();
    _backInvalFlushes.reset();
    _evictionsMerged.reset();
    _groupSizes.reset();
    _readLatency.reset();

    _tags.resetCounters();
    _array.resetCounters();
    _ports.reset();
    if (_tagBuffer)
        _tagBuffer->resetCounters();
    if (_setBuffer)
        _setBuffer->resetCounters();
}

} // namespace c8t::core
