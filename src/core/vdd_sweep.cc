/**
 * @file
 * Voltage sweep driver implementation.
 */

#include "core/vdd_sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "core/fault_cache.hh"
#include "core/policies.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "sram/energy.hh"
#include "stats/json.hh"

namespace c8t::core
{

namespace
{

void
validate(const VddSweepSpec &spec)
{
    if (spec.grid.empty())
        throw std::invalid_argument("VddSweepSpec: empty grid");
    for (std::size_t i = 1; i < spec.grid.size(); ++i) {
        if (!(spec.grid[i] < spec.grid[i - 1]))
            throw std::invalid_argument(
                "VddSweepSpec: grid must be strictly descending");
    }
    if (spec.grid.back() <= 0.0)
        throw std::invalid_argument("VddSweepSpec: grid voltages must be > 0");
    if (spec.schemes.empty())
        throw std::invalid_argument("VddSweepSpec: no schemes");
    if (!spec.makeGenerator)
        throw std::invalid_argument("VddSweepSpec: no workload factory");
    if (spec.faultRows == 0)
        throw std::invalid_argument("VddSweepSpec: faultRows must be >= 1");
    for (const LevelConfig &l : spec.lowerLevels) {
        if (l.cache.blockBytes != spec.cache.blockBytes)
            throw std::invalid_argument(
                "VddSweepSpec: lower-level block size must match the "
                "top level's");
    }
    spec.model.validate();
}

/** The cache shape whose array the swept scheme runs on: the L1 for a
 *  single-level sweep, the L2 in hierarchy mode (the scheme axis and
 *  the grid voltage apply to the L2 there). */
const mem::CacheConfig &
sweptShape(const VddSweepSpec &spec)
{
    return spec.lowerLevels.empty() ? spec.cache
                                    : spec.lowerLevels.front().cache;
}

/** The data-array geometry the controller would build for @p scheme
 *  (mirrors the CacheController constructor) on the swept shape. */
sram::ArrayGeometry
geometryFor(const VddSweepSpec &spec, WriteScheme scheme)
{
    const SchemeTraits traits = schemeTraits(scheme);
    const std::uint32_t degree =
        spec.lowerLevels.empty()
            ? ControllerConfig{}.interleaveDegree
            : spec.lowerLevels.front().interleaveDegree;
    const mem::CacheConfig &shape = sweptShape(spec);
    return sram::ArrayGeometry{
        shape.numSets(), shape.setBytes(),
        traits.requiresNonInterleaved ? 1u : degree,
        scheme == WriteScheme::WordGranular};
}

/** Append the kind:"vdd" perf record when C8T_BENCH_JSON is set. */
void
emitVddBenchJson(const std::string &label, const VddSweepResult &result,
                 const RunConfig &rc, unsigned workers,
                 double wall_seconds,
                 const obs::prof::PhaseTimes *phases)
{
    const char *path = std::getenv("C8T_BENCH_JSON");
    if (!path || !*path)
        return;

    std::uint64_t config_runs = 0;
    for (const VddCurve &c : result.curves)
        config_runs += c.points.size();
    const double simulated =
        static_cast<double>(config_runs) *
        static_cast<double>(rc.warmupAccesses + rc.measureAccesses);

    std::ofstream os(path, std::ios::app);
    if (!os) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            std::cerr << "vdd_sweep: cannot open C8T_BENCH_JSON=\"" << path
                      << "\" for append; perf records disabled\n";
        }
        return;
    }
    os << "{\"kind\":\"vdd\",\"label\":\"" << stats::jsonEscape(label)
       << "\""
       << ",\"grid_points\":" << result.grid.size()
       << ",\"schemes\":" << result.curves.size()
       << ",\"workers\":" << workers
       << ",\"config_runs\":" << config_runs
       << ",\"warmup_accesses\":" << rc.warmupAccesses
       << ",\"measure_accesses\":" << rc.measureAccesses
       << ",\"simulated_accesses\":" << static_cast<std::uint64_t>(simulated)
       << ",\"wall_seconds\":" << wall_seconds
       << ",\"accesses_per_sec\":"
       << (wall_seconds > 0.0 ? simulated / wall_seconds : 0.0)
       << ",\"min_vdd\":{";
    bool first = true;
    for (const VddCurve &c : result.curves) {
        os << (first ? "" : ",") << '"' << stats::jsonEscape(c.scheme)
           << "\":";
        stats::jsonNumber(os, c.minVdd);
        first = false;
    }
    os << "}";
    if (phases) {
        os << ",\"phases\":{";
        for (std::size_t i = 0; i < obs::prof::kNumPhases; ++i) {
            os << "\""
               << obs::prof::toString(static_cast<obs::prof::Phase>(i))
               << "\":";
            stats::jsonNumber(os, static_cast<double>(phases->ns[i]) *
                                      1e-9);
            os << ",";
        }
        os << "\"total\":";
        stats::jsonNumber(os,
                          static_cast<double>(phases->totalNs()) * 1e-9);
        os << "}";
    }
    os << "}\n";
}

} // anonymous namespace

/** Deferred bench-record state, armed by runVddSweep and consumed by
 *  emitBenchRecord(). Lives behind a unique_ptr so the header does not
 *  need the definition. */
struct VddSweepResult::Pending
{
    std::string label;
    RunConfig rc;
    unsigned workers = 0;
    double wallSeconds = 0.0;
    obs::prof::PhaseTimes phasesBefore;
    bool profOn = false;
};

VddSweepResult::VddSweepResult() = default;
VddSweepResult::VddSweepResult(VddSweepResult &&) noexcept = default;
VddSweepResult &
VddSweepResult::operator=(VddSweepResult &&) noexcept = default;

VddSweepResult::~VddSweepResult()
{
    emitBenchRecord();
}

void
VddSweepResult::emitBenchRecord()
{
    if (!_pending)
        return;
    const std::unique_ptr<Pending> p = std::move(_pending);
    obs::prof::PhaseTimes run_phases;
    if (p->profOn) {
        // Fold in everything this thread did since the sweep started —
        // including the caller's dumpJson/table Serialize scopes —
        // and diff against the entry snapshot.
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
        const obs::prof::PhaseTimes after =
            obs::globalMetrics().phaseTimes();
        for (std::size_t i = 0; i < obs::prof::kNumPhases; ++i) {
            run_phases.ns[i] = after.ns[i] - p->phasesBefore.ns[i];
            run_phases.scopes[i] =
                after.scopes[i] - p->phasesBefore.scopes[i];
        }
    }
    emitVddBenchJson(p->label, *this, p->rc, p->workers, p->wallSeconds,
                     p->profOn ? &run_phases : nullptr);
    obs::writeGlobalMetrics();
}

const VddCurve *
VddSweepResult::curve(WriteScheme scheme) const
{
    const char *name = toString(scheme);
    for (const VddCurve &c : curves) {
        if (c.scheme == name)
            return &c;
    }
    return nullptr;
}

void
VddSweepResult::registerStats(stats::Registry &reg)
{
    for (const VddCurve &c : curves) {
        auto min_vdd = std::make_unique<stats::Gauge>(
            "vdd_sweep." + c.scheme + ".min_vdd",
            "lowest operational supply voltage (V)");
        min_vdd->set(c.minVdd);
        reg.add(*min_vdd);
        _gauges.push_back(std::move(min_vdd));

        // Energy per access at the min-Vdd point (the paper's payoff
        // number: what the low-voltage mode actually costs).
        double energy_at_min = 0.0;
        for (const VddPointResult &p : c.points) {
            if (p.vdd == c.minVdd) {
                energy_at_min = p.energyPerAccess;
                break;
            }
        }
        auto energy = std::make_unique<stats::Gauge>(
            "vdd_sweep." + c.scheme + ".energy_per_access_at_min",
            "total energy per access at min-Vdd (J)");
        energy->set(energy_at_min);
        reg.add(*energy);
        _gauges.push_back(std::move(energy));
    }
}

void
VddSweepResult::dumpJson(std::ostream &os) const
{
    const obs::prof::ScopedPhase serialize_scope(
        obs::prof::Phase::Serialize);
    os << "{\"schema_version\":" << stats::Registry::kJsonSchemaVersion
       << ",\"kind\":\"vdd_sweep\"";
    // New key only when the feature is active: single-level documents
    // stay byte-identical (modulo the schema version).
    if (hierarchy)
        os << ",\"hierarchy\":true";
    os << ",\"workload\":\"" << stats::jsonEscape(workload) << "\""
       << ",\"failure_threshold\":";
    stats::jsonNumber(os, failureThreshold);
    os << ",\"grid\":[";
    for (std::size_t i = 0; i < grid.size(); ++i) {
        os << (i ? "," : "");
        stats::jsonNumber(os, grid[i]);
    }
    os << "],\"curves\":[";
    for (std::size_t ci = 0; ci < curves.size(); ++ci) {
        const VddCurve &c = curves[ci];
        os << (ci ? "," : "") << "{\"scheme\":\""
           << stats::jsonEscape(c.scheme) << "\""
           << ",\"cell\":\"" << sram::toString(c.cell) << "\""
           << ",\"min_vdd\":";
        stats::jsonNumber(os, c.minVdd);
        os << ",\"points\":[";
        for (std::size_t pi = 0; pi < c.points.size(); ++pi) {
            const VddPointResult &p = c.points[pi];
            os << (pi ? "," : "") << "{\"vdd\":";
            stats::jsonNumber(os, p.vdd);
            os << ",\"energy_scale\":";
            stats::jsonNumber(os, p.point.energyScale);
            os << ",\"leakage_scale\":";
            stats::jsonNumber(os, p.point.leakageScale);
            os << ",\"delay_factor\":";
            stats::jsonNumber(os, p.point.delayFactor);
            os << ",\"pfail_cell\":";
            stats::jsonNumber(os, p.point.pfailCell);
            os << ",\"fault_words\":" << p.faults.words
               << ",\"corrected\":" << p.faults.corrected
               << ",\"detected_uncorrectable\":"
               << p.faults.detectedUncorrectable
               << ",\"silent_corruptions\":" << p.faults.silentCorruptions
               << ",\"post_ecc_failure_rate\":";
            stats::jsonNumber(os, p.faults.postEccFailureRate());
            os << ",\"operational\":" << (p.operational ? "true" : "false")
               << ",\"dynamic_energy_per_access\":";
            stats::jsonNumber(os, p.dynamicEnergyPerAccess);
            os << ",\"leakage_energy_per_access\":";
            stats::jsonNumber(os, p.leakageEnergyPerAccess);
            os << ",\"energy_per_access\":";
            stats::jsonNumber(os, p.energyPerAccess);
            os << ",\"cycles_per_access\":";
            stats::jsonNumber(os, p.cyclesPerAccess);
            os << ",\"edp_per_access\":";
            stats::jsonNumber(os, p.edpPerAccess);
            os << '}';
        }
        os << "]}";
    }
    os << "]}";
}

VddSweepResult
runVddSweep(const VddSweepSpec &spec, const RunConfig &rc, unsigned workers)
{
    validate(spec);
    const auto t0 = std::chrono::steady_clock::now();
    const bool prof_on = obs::prof::enabled();
    obs::prof::PhaseTimes phases_before;
    if (prof_on) {
        // The sweep's phase block is the delta of the process rollup
        // across this call; flush this thread so earlier activity is
        // not charged to it (worker threads flush per job).
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
        phases_before = obs::globalMetrics().phaseTimes();
    }
    const sram::VddModel model(spec.model);

    // One job per grid point; every job replays the identical stream
    // (shared through streamKey) with one controller per scheme, the
    // model attached at that point's voltage.
    std::vector<SweepJob> jobs;
    jobs.reserve(spec.grid.size());
    for (const double vdd : spec.grid) {
        SweepJob job;
        job.makeGenerator = spec.makeGenerator;
        job.streamKey = spec.streamKey;
        job.vdd = vdd;
        job.configs.reserve(spec.schemes.size());
        for (const WriteScheme s : spec.schemes) {
            ControllerConfig cfg;
            cfg.cache = spec.cache;
            cfg.vmodel = spec.model;
            if (spec.lowerLevels.empty()) {
                cfg.scheme = s;
                cfg.vdd = vdd;
            } else {
                // Hierarchy mode: the L1 is pinned while the scheme
                // axis and the grid voltage ride on the L2.
                cfg.scheme = spec.topScheme;
                cfg.vdd = spec.topVdd;
                cfg.lowerLevels = spec.lowerLevels;
                cfg.lowerLevels.front().scheme = s;
                cfg.lowerLevels.front().vdd = vdd;
            }
            job.configs.push_back(cfg);
        }
        jobs.push_back(std::move(job));
    }

    const bool hier = !spec.lowerLevels.empty();

    VddSweepResult result;
    result.workload = spec.makeGenerator()->name();
    result.failureThreshold = spec.failureThreshold;
    result.grid = spec.grid;
    result.hierarchy = hier;

    // Hierarchy sweeps get their own label so their perf records never
    // pair with a single-level sweep of the same workload in
    // bench_diff (both kinds of record can land in one snapshot).
    const std::string label =
        "vdd_sweep:" + result.workload + (hier ? "+l2" : "");

    const ParallelSweeper sweeper(workers);
    const auto runs = sweeper.run(jobs, rc, label);

    // Fault maps depend on (seed, vdd, geometry, cell); schemes of the
    // same cell flavour and interleave degree share one evaluation,
    // and the process-global memo shares it across requests too (a
    // warm c8td daemon re-serves known operating points for free).
    const std::uint32_t words_per_row =
        std::max<std::uint32_t>(1, sweptShape(spec).setBytes() / 8);
    const auto faultsAt = [&](sram::CellType cell, std::uint32_t degree,
                              std::size_t grid_index) {
        sram::FaultMapConfig fmc;
        fmc.runSeed = spec.runSeed;
        fmc.vdd = spec.grid[grid_index];
        fmc.cell = cell;
        fmc.pfailCell = model.at(fmc.vdd, cell).pfailCell;
        fmc.rows = spec.faultRows;
        fmc.wordsPerRow = words_per_row;
        fmc.degree = degree;
        return globalFaultMapCache().evaluate(fmc);
    };

    result.curves.reserve(spec.schemes.size());
    for (std::size_t si = 0; si < spec.schemes.size(); ++si) {
        const WriteScheme scheme = spec.schemes[si];
        const SchemeTraits traits = schemeTraits(scheme);
        const sram::CellType cell = traits.requiresEightT
                                        ? sram::CellType::EightT
                                        : sram::CellType::SixT;
        const sram::ArrayGeometry geom = geometryFor(spec, scheme);
        const sram::EnergyModel em(geom, ControllerConfig{}.tech);
        const double leak_nominal = em.leakagePower();
        const double period = model.clockPeriod();

        // Hierarchy mode adds the pinned L1's leakage at its own
        // (fixed) operating point; the grid only scales the L2's.
        double leak_top_fixed = 0.0;
        if (hier) {
            const SchemeTraits top_traits = schemeTraits(spec.topScheme);
            const sram::CellType top_cell =
                top_traits.requiresEightT ? sram::CellType::EightT
                                          : sram::CellType::SixT;
            const ControllerConfig defaults;
            const sram::ArrayGeometry top_geom{
                spec.cache.numSets(), spec.cache.setBytes(),
                top_traits.requiresNonInterleaved
                    ? 1u
                    : defaults.interleaveDegree,
                spec.topScheme == WriteScheme::WordGranular};
            const sram::EnergyModel top_em(top_geom, defaults.tech);
            const double top_scale =
                spec.topVdd > 0.0
                    ? model.at(spec.topVdd, top_cell).leakageScale
                    : 1.0;
            leak_top_fixed = top_em.leakagePower() * top_scale;
        }

        VddCurve curve;
        curve.scheme = toString(scheme);
        curve.cell = cell;
        curve.points.reserve(spec.grid.size());

        bool reachable = true;
        for (std::size_t gi = 0; gi < spec.grid.size(); ++gi) {
            VddPointResult pt;
            pt.vdd = spec.grid[gi];
            pt.point = model.at(pt.vdd, cell);
            pt.faults = faultsAt(cell, geom.interleaveDegree, gi);
            pt.operational =
                pt.faults.postEccFailureRate() <= spec.failureThreshold;
            pt.run = runs[gi][si];

            const double requests =
                static_cast<double>(pt.run.requests);
            if (requests > 0.0) {
                const double seconds =
                    static_cast<double>(pt.run.cycles) * period;
                // totalDynamicEnergy == dynamicEnergy bit-identically
                // for a single level; hierarchy-wide otherwise.
                pt.dynamicEnergyPerAccess =
                    pt.run.totalDynamicEnergy / requests;
                pt.leakageEnergyPerAccess = (leak_top_fixed +
                                             leak_nominal *
                                                 pt.point.leakageScale) *
                                            seconds / requests;
                pt.energyPerAccess = pt.dynamicEnergyPerAccess +
                                     pt.leakageEnergyPerAccess;
                pt.cyclesPerAccess =
                    static_cast<double>(pt.run.cycles) / requests;
                pt.edpPerAccess =
                    pt.energyPerAccess * pt.cyclesPerAccess * period;
            }

            // min-Vdd: the lowest voltage reachable from nominal
            // through operational points only — an operational island
            // below a failing point is unusable, DVFS descends the
            // curve continuously.
            if (reachable && pt.operational)
                curve.minVdd = pt.vdd;
            else
                reachable = false;

            curve.points.push_back(std::move(pt));
        }
        result.curves.push_back(std::move(curve));
    }

    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    // Arm the deferred bench record: emitBenchRecord() (at the latest,
    // the result's destructor) writes it, so the caller's Serialize
    // scopes around dumpJson/table printing land in its phase block.
    result._pending = std::make_unique<VddSweepResult::Pending>();
    result._pending->label = label;
    result._pending->rc = rc;
    result._pending->workers = sweeper.workers();
    result._pending->wallSeconds = wall;
    result._pending->phasesBefore = phases_before;
    result._pending->profOn = prof_on;
    return result;
}

} // namespace c8t::core
