/**
 * @file
 * The L1 data-cache controller: the paper's Algorithm 1 (WG and WG+RB)
 * plus all the baseline write schemes, over the shared substrates
 * (TagArray, SRAMArray, FunctionalMemory, PortScheduler, EnergyModel).
 *
 * Accounting model (DESIGN.md §3): "cache access frequency" — the
 * quantity every figure of the paper is about — is the number of data
 * array row operations caused by *demand* requests: row reads, RMW
 * write-backs, group write-backs and premature write-backs. Row
 * operations caused by miss handling (fills, victim extraction) are
 * counted separately so the paper's numbers can be reproduced exactly
 * while the full-system numbers remain available.
 *
 * Correctness invariant (property-tested): for any access stream, every
 * read returns the same value under every scheme, and after drain() +
 * flushCacheToMemory() the functional memory is byte-identical across
 * schemes.
 */

#ifndef C8T_CORE_CONTROLLER_HH
#define C8T_CORE_CONTROLLER_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/policies.hh"
#include "core/set_buffer.hh"
#include "core/tag_buffer.hh"
#include "core/write_scheme.hh"
#include "mem/cache.hh"
#include "mem/functional_mem.hh"
#include "obs/event_ring.hh"
#include "sram/array.hh"
#include "sram/energy.hh"
#include "sram/ports.hh"
#include "sram/vmodel.hh"
#include "stats/distribution.hh"
#include "stats/registry.hh"
#include "trace/access.hh"

namespace c8t::core
{

/**
 * Shape and policy of one lower cache level (DESIGN.md §14).
 *
 * core::LevelStack derives a full ControllerConfig from it: process
 * constants (tech) and voltage-model constants (vmodel) are inherited
 * from the top-level configuration so the whole hierarchy shares one
 * technology, while geometry, write scheme, buffering and the supply
 * operating point are free per level — the canonical split runs a 6T
 * L1 at nominal Vdd over an 8T L2 at near-threshold.
 */
struct LevelConfig
{
    /** Cache shape (default: 256 KB / 8-way / 32 B / LRU). The block
     *  size must match the upper level's. */
    mem::CacheConfig cache{256 * 1024, 8, 32};

    /** Write scheme of this level's data array. */
    WriteScheme scheme = WriteScheme::Rmw;

    /** Set-Buffer / Tag-Buffer entries (grouping schemes). */
    std::uint32_t bufferEntries = 1;

    /** Detect silent stores in this level's Set-Buffer. */
    bool silentDetection = true;

    /** Bit-interleave degree of this level's data array. */
    std::uint32_t interleaveDegree = 4;

    /** Array timing; missPenaltyCycles is this level's own penalty to
     *  the level (or memory) behind it. */
    LatencyParams latency;

    /** Supply operating point (V); 0 = nominal/detached. */
    double vdd = 0.0;

    bool operator==(const LevelConfig &other) const = default;
};

/** Full configuration of one controller instance. */
struct ControllerConfig
{
    /** Cache shape (paper baseline: 64 KB / 4-way / 32 B / LRU). */
    mem::CacheConfig cache;

    /** Write scheme. */
    WriteScheme scheme = WriteScheme::Rmw;

    /** Set-Buffer / Tag-Buffer entries (paper: 1). */
    std::uint32_t bufferEntries = 1;

    /** Detect silent stores in the Set-Buffer (paper: on). */
    bool silentDetection = true;

    /** Bit-interleave degree of the data array. */
    std::uint32_t interleaveDegree = 4;

    /** Array timing. */
    LatencyParams latency;

    /** Process constants for the energy model. */
    sram::TechParams tech;

    /**
     * Lower levels of the hierarchy, nearest first ([0] is the L2).
     * Empty — the default — means a single-level cache backed directly
     * by the functional memory, byte-identical to historical builds.
     * The controller itself does not consume this list: each entry is
     * realised as a full CacheController of its own (tags, data array,
     * buffers, energy accounting, supply point) wired behind this one
     * by core::LevelStack (DESIGN.md §14), which replaced the old
     * tags-only l2Enabled shim.
     */
    std::vector<LevelConfig> lowerLevels;

    /**
     * Supply-voltage operating point (V). 0 — the default — or exactly
     * vmodel.nominalVdd means the voltage model is detached: energy
     * rates and latency cycles are the nominal ones, bit for bit, and
     * no vdd.* statistics are registered, so nominal runs are
     * byte-identical to pre-vmodel builds (DESIGN.md §10).
     */
    double vdd = 0.0;

    /** Voltage model constants (consulted only when vdd is attached). */
    sram::VddModelParams vmodel;
};

/** Per-access result. */
struct AccessOutcome
{
    /** The block was resident before the access. */
    bool hit = false;

    /** The request matched the Tag-Buffer (set + tag). */
    bool tagBufferHit = false;

    /** A read served from the Set-Buffer (WG+RB only). */
    bool bypassed = false;

    /** Loaded value for reads (little endian, access size bytes). */
    std::uint64_t data = 0;

    /** Request-to-completion latency in cycles. */
    std::uint64_t latencyCycles = 0;
};

/**
 * The controller. One instance per (scheme, shape) under test; several
 * instances typically share one FunctionalMemory per *logical machine*,
 * but comparison runs give each scheme its own memory so final states
 * can be compared.
 */
class CacheController
{
  public:
    /**
     * @param config Validated configuration.
     * @param memory Backing store (must outlive the controller).
     * @throws std::invalid_argument on inconsistent configuration.
     */
    CacheController(const ControllerConfig &config,
                    mem::FunctionalMemory &memory);

    /** Service one request (Algorithm 1 for the grouping schemes). */
    AccessOutcome access(const trace::MemAccess &request);

    /** Replay chunk length the drivers use (MultiSchemeRunner): the
     *  controller pre-sizes the chunk planner's scratch for it. */
    static constexpr std::size_t kReplayChunkAccesses = 4096;

    /**
     * Service @p count requests from @p chunk back to back. Result- and
     * statistics-identical to calling access() per element; the scheme
     * dispatch is hoisted out of the loop so each chunk runs one
     * scheme-specialized loop (MultiSchemeRunner's replay path).
     *
     * When the shape and controller qualify (packed deterministic
     * replacement, no next level or eviction hook, no event ring, no
     * energy audit hook), the
     * chunk runs as the two-stage set-batched pipeline (DESIGN.md §7):
     * stage 1 plans every tag lookup in per-set batches (SIMD
     * way-compares, replacement arithmetic on stack-local state) and
     * stage 2 applies the plan in original request order, so every
     * table, stats dump and event total stays byte-identical to the
     * per-access path. @p plan optionally supplies a stage-1 result
     * computed by a controller with an identical cache (the sweep
     * drivers share one plan across same-shape controllers); it is
     * ignored when this controller does not qualify.
     */
    void accessChunk(const trace::MemAccess *chunk, std::size_t count,
                     const mem::ChunkPlan *plan = nullptr);

    /**
     * Stage 1 only: plan @p count accesses against this controller's
     * tag state for sharing with same-shape controllers (their tag
     * trajectories are identical on identical streams, so one plan
     * serves all). Returns nullptr when the batched pipeline does not
     * apply here (see accessChunk()); the plan stays valid until the
     * next planReplayChunk()/accessChunk() call on this controller.
     */
    const mem::ChunkPlan *planReplayChunk(const trace::MemAccess *chunk,
                                          std::size_t count);

    /**
     * Write back every dirty Set-Buffer entry to the array (counted
     * separately, not as demand traffic). Call at end of simulation
     * before inspecting the array.
     */
    void drain();

    /**
     * Backdoor: copy every dirty cache line (freshest image: Set-Buffer
     * over array) to the functional memory and mark it clean. For
     * end-state comparison in tests; no events are counted.
     */
    void flushCacheToMemory();

    /**
     * Architectural value of the aligned 64-bit word at @p addr as the
     * hierarchy would return it (Set-Buffer > array > memory). Test
     * and verification access; no events are counted.
     */
    std::uint64_t peekWord(mem::Addr addr) const;

    // --- component access -------------------------------------------------

    /** The configuration in effect. */
    const ControllerConfig &config() const { return _config; }

    /** The tag array (hit/miss statistics). */
    const mem::TagArray &tags() const { return _tags; }

    /** The data array (circuit event counters). */
    const sram::SRAMArray &array() const { return _array; }

    /** The Tag-Buffer (probe statistics); null for non-grouping
     *  schemes. */
    const TagBuffer *tagBuffer() const { return _tagBuffer.get(); }

    /** The Set-Buffer; null for non-grouping schemes. */
    const SetBuffer *setBuffer() const { return _setBuffer.get(); }

    /** The port scheduler (contention statistics). */
    const sram::PortScheduler &ports() const { return _ports; }

    /** The energy model used for accounting. */
    const sram::EnergyModel &energyModel() const { return _energy; }

    /** True when a non-nominal supply point is attached. */
    bool vddActive() const { return _vddActive; }

    /** The evaluated operating point; the nominal identity (all scale
     *  factors 1.0, zero failure probabilities) when detached. */
    const sram::VddPoint &vddPoint() const { return _vddPoint; }

    /** The cell flavour the configured scheme runs on (6T only for the
     *  direct-write baseline; everything else needs 8T). */
    sram::CellType cellType() const
    {
        return _traits.requiresEightT ? sram::CellType::EightT
                                      : sram::CellType::SixT;
    }

    // --- hierarchy (DESIGN.md §14) ----------------------------------------

    /**
     * Wire @p next as the backing level of this controller (nullptr
     * to detach). With a next level attached, miss fills fetch the
     * block from it — the miss penalty becomes the observed next-level
     * latency — and dirty victim write-backs become its write stream
     * instead of going straight to the functional memory. The next
     * level must share this controller's FunctionalMemory and block
     * size; core::LevelStack owns the wiring.
     *
     * @throws std::invalid_argument on a block-size mismatch.
     */
    void attachNextLevel(CacheController *next);

    /** The backing level; nullptr for the lowest (memory-backed). */
    CacheController *nextLevel() const { return _next; }

    /**
     * Inclusion-maintenance hook, fired once per valid victim this
     * controller evicts, with the victim's block address and its
     * row-image bytes staged in a controller-owned scratch buffer.
     * The hook may overwrite the bytes with a fresher upper-level copy
     * (back-invalidation) and returns true when that copy was dirty —
     * which forces the victim to be written down even if this level
     * held it clean. Installing a hook reserves the scratch buffer, so
     * the eviction path stays allocation-free.
     */
    using EvictionHook =
        std::function<bool(mem::Addr blockAddr, std::uint8_t *block,
                           std::uint32_t blockBytes)>;

    /** Install (or clear, with an empty function) the eviction hook. */
    void setEvictionHook(EvictionHook hook);

    /**
     * Back-invalidation entry point, called on an *upper* level when a
     * lower level evicts @p block_addr: if the line is resident here,
     * settle any buffered group covering its set, copy the freshest
     * line image over @p dst (an architectural move — uncounted, like
     * peekWord()), drop the line from the tags, and report whether it
     * was dirty. Returns false (and leaves @p dst untouched) when the
     * line is not resident. @p len must equal the block size.
     */
    bool extractInvalidate(mem::Addr block_addr, std::uint8_t *dst,
                           std::uint32_t len);

    /**
     * Service an upper level's miss: one demand read access for the
     * block (counted in this level's statistics exactly like a CPU
     * read of its first word) followed by an uncounted architectural
     * copy of the whole block image into @p dst. Returns the observed
     * request-to-completion latency in cycles — the upper level's
     * miss penalty.
     */
    std::uint64_t fetchBlock(mem::Addr block_addr, std::uint8_t *dst,
                             std::uint32_t len);

    /**
     * Accept an upper level's dirty victim: one demand write access
     * per 8-byte word of the block — the eviction burst that forms
     * this level's write stream, maximally same-set grouped, which is
     * exactly the profile the grouping schemes target (EXPERIMENTS:
     * hierarchy grouping comparison).
     */
    void acceptBlockWriteback(mem::Addr block_addr,
                              const std::uint8_t *src,
                              std::uint32_t len);

    /** Lines dropped here by lower-level evictions (upper levels). */
    std::uint64_t backInvalidations() const
    {
        return _backInvalidations.value();
    }

    /** Back-invalidated lines that were dirty (their bytes were merged
     *  into the outgoing lower-level victim). */
    std::uint64_t backInvalDirty() const
    {
        return _backInvalDirty.value();
    }

    /** Evictions whose victim absorbed fresher upper-level bytes
     *  (levels with an eviction hook installed). */
    std::uint64_t evictionsMerged() const
    {
        return _evictionsMerged.value();
    }

    // --- the paper's accounting -------------------------------------------

    /** Demand row reads (group-opening reads, RMW read phases, read
     *  requests served from the array). */
    std::uint64_t demandRowReads() const
    {
        return _demandRowReads.value();
    }

    /** Demand row writes (RMW write-backs, group write-backs,
     *  premature write-backs, direct writes). */
    std::uint64_t demandRowWrites() const
    {
        return _demandRowWrites.value();
    }

    /** The paper's "cache access frequency": demand row operations. */
    std::uint64_t demandAccesses() const
    {
        return demandRowReads() + demandRowWrites();
    }

    /** Row reads caused by miss handling. */
    std::uint64_t fillRowReads() const { return _fillRowReads.value(); }

    /** Row writes caused by miss handling. */
    std::uint64_t fillRowWrites() const { return _fillRowWrites.value(); }

    /** Row writes performed by drain(). */
    std::uint64_t drainWrites() const { return _drainWrites.value(); }

    /** Requests serviced. */
    std::uint64_t requests() const { return _requests.value(); }

    /** Read requests serviced. */
    std::uint64_t readRequests() const { return _readRequests.value(); }

    /** Write requests serviced. */
    std::uint64_t writeRequests() const { return _writeRequests.value(); }

    /** Writes absorbed by the Set-Buffer with zero array operations. */
    std::uint64_t groupedWrites() const { return _groupedWrites.value(); }

    /** Write-backs forced by a read hitting the Tag-Buffer (WG). */
    std::uint64_t prematureWritebacks() const
    {
        return _prematureWritebacks.value();
    }

    /** Group-ending write-backs (buffer entry eviction). */
    std::uint64_t groupWritebacks() const
    {
        return _groupWritebacks.value();
    }

    /** Groups whose write-back was elided because every write in the
     *  group was silent (Dirty bit never set). */
    std::uint64_t silentGroupsElided() const
    {
        return _silentGroupsElided.value();
    }

    /** Reads served from the Set-Buffer (WG+RB). */
    std::uint64_t bypassedReads() const
    {
        return _bypassedReads.value();
    }

    /** Silent stores detected by the Set-Buffer comparators. */
    std::uint64_t silentWritesDetected() const
    {
        return _silentWritesDetected.value();
    }

    /**
     * Deferred energy accounting (DESIGN.md §7): the access hot path
     * increments these integer event counts only; dynamicEnergy()
     * materializes joules on demand by multiplying them against the
     * constant per-event energies (sram::EnergyEventRates). Size-
     * dependent terms are bucketed by request size so every addend is
     * the exact value the historical per-access accumulation used.
     */
    struct EnergyCounts
    {
        /** Full row operations (demand and miss handling alike). */
        std::uint64_t rowReads = 0;
        std::uint64_t rowWrites = 0;

        /** Partial writes bucketed by request bytes (index 1..8). */
        std::uint64_t partialWrites[9] = {};

        /** Request-sized Set-Buffer accesses bucketed by bytes. */
        std::uint64_t setBufferReads[9] = {};
        std::uint64_t setBufferWrites[9] = {};

        /** Row-sized Set-Buffer accesses (write-back read, fill). */
        std::uint64_t setBufferReadRows = 0;
        std::uint64_t setBufferWriteRows = 0;

        /** Tag-Buffer probes. */
        std::uint64_t tagCompares = 0;
    };

    /** Energy event kinds reported to the audit hook. */
    enum class EnergyEvent : std::uint8_t {
        RowRead,
        RowWrite,
        PartialWrite,
        SetBufferRead,
        SetBufferWrite,
        TagCompare,
    };

    /** Audit callback: (context, kind, bytes). Bytes is 0 for the
     *  size-independent kinds. */
    using EnergyAuditFn = void (*)(void *, EnergyEvent, std::uint32_t);

    /**
     * Install a per-event energy audit hook (nullptr to remove). The
     * hook fires at every point the historical implementation added to
     * its running energy total, in the same order, so tests can verify
     * the deferred materialization against a sequential per-access
     * accumulation. Costs one predictable branch per energy event.
     */
    void setEnergyAudit(EnergyAuditFn fn, void *ctx)
    {
        _energyAuditFn = fn;
        _energyAuditCtx = ctx;
    }

    /** The raw deferred energy event counts. */
    const EnergyCounts &energyCounts() const { return _ecounts; }

    /** Accumulated dynamic energy (J) of the data path, materialized
     *  from the deferred event counts. */
    double dynamicEnergy() const;

    /** Distribution of write-group sizes (writes per group). */
    const stats::Distribution &groupSizes() const { return _groupSizes; }

    /** Distribution of read latencies (cycles). */
    const stats::Distribution &readLatency() const
    {
        return _readLatency;
    }

    /** Current cycle (advances with request gaps and stalls). */
    std::uint64_t cycle() const { return _cycle; }

    /** Reset all statistics and the cycle clock; contents, tags and
     *  buffer state are untouched. An attached event ring is cleared
     *  too, so event totals always cover the same window as the
     *  counters. */
    void resetStats();

    // --- observability ----------------------------------------------------

    /**
     * Attach (or detach, with nullptr) an event ring. The controller
     * records one obs::Event per microarchitectural decision (see
     * obs::EventType); recording is allocation-free and changes no
     * simulation statistic. The ring must outlive the controller or
     * be detached first. Default: no ring — every hook is a single
     * predictable branch.
     */
    void attachEventRing(obs::EventRing *ring) { _events = ring; }

    /** The attached event ring; nullptr when tracing is off. */
    const obs::EventRing *eventRing() const { return _events; }

    /**
     * Register every statistic of the controller and its components
     * (tag array, data array, ports, buffers) with @p reg under
     * @p prefix (see stats::Registry prefixed registration). The
     * default empty prefix is the historical single-level layout; a
     * LevelStack registers lower levels under "l2.", "l3.", ... so one
     * registry carries the whole hierarchy without name collisions.
     */
    void registerStats(stats::Registry &reg,
                       const std::string &prefix = std::string());

    /** Convenience: register into a fresh registry and dump it
     *  (gem5 stats.txt flavour) to @p os. */
    void dumpStats(std::ostream &os);

  private:
    // Request paths. Each scheme body is a template over the resolver
    // that makes the block resident — the live tag lookup on the
    // per-access path, or the planned-outcome application on the
    // batched pipeline — so both paths execute the identical scheme
    // logic (defined in controller.cc; used only there).
    template <typename ResolveFn>
    AccessOutcome accessDirectImpl(const trace::MemAccess &a,
                                   ResolveFn &&resolve);
    template <typename ResolveFn>
    AccessOutcome accessRmwImpl(const trace::MemAccess &a,
                                ResolveFn &&resolve);
    template <typename ResolveFn>
    AccessOutcome accessGroupedImpl(const trace::MemAccess &a,
                                    ResolveFn &&resolve);

    AccessOutcome accessDirect(const trace::MemAccess &a);
    AccessOutcome accessRmw(const trace::MemAccess &a);
    AccessOutcome accessGrouped(const trace::MemAccess &a);

    /** Scheme loop over a planned chunk (stage 2 of the pipeline). */
    template <typename AccessFn>
    void runPlannedChunk(const trace::MemAccess *chunk,
                         const mem::ChunkPlan &plan, AccessFn &&body);

    /** True when the batched pipeline may run right now: the shape is
     *  plannable and no per-access observer (next level, eviction
     *  hook, event ring, energy audit) needs the globally-ordered tag
     *  side effects. */
    bool plannedChunkEligible() const
    {
        return !_next && !_evictionHook && !_events && !_energyAuditFn &&
               _tags.planEligible();
    }

    /** Outcome of ensureResident(): hit state plus the resident way,
     *  so the request paths never pay a second tag lookup. */
    struct ResidentRef
    {
        bool hit = false;
        std::uint32_t way = 0;
    };

    /** Ensure the block is resident; reports whether it already was
     *  and the way now holding it. */
    ResidentRef ensureResident(mem::Addr block_addr);

    /** Planned-path equivalent of ensureResident(): apply access @p i
     *  of @p plan (tag install, replacement word, victim write-back,
     *  fill data movement) in request order. */
    ResidentRef applyPlanned(mem::Addr block_addr,
                             const mem::ChunkPlan &plan, std::size_t i);

    /** Miss handling: victim write-back + fill; returns the filled
     *  way. */
    std::uint32_t handleMiss(mem::Addr block_addr);

    /** Per-request prologue shared by access() and accessChunk():
     *  request counters and the inter-request clock advance. */
    void beginAccess(const trace::MemAccess &request)
    {
        assert(request.size >= 1 && request.size <= 8);
        assert(_tags.layout().blockOffset(request.addr) + request.size <=
               _config.cache.blockBytes);

        ++_requests;
        if (request.isRead())
            ++_readRequests;
        else
            ++_writeRequests;

        _cycle += request.gap + 1;
        _requestCycle = _cycle;
    }

    /** Report an energy event to the audit hook (no-op when unset). */
    void auditEnergy(EnergyEvent ev, std::uint32_t bytes)
    {
        if (_energyAuditFn)
            _energyAuditFn(_energyAuditCtx, ev, bytes);
    }

    /** Write entry @p e's row image back to the array. */
    void writebackEntry(std::uint32_t e, stats::Counter &cause);

    /** Close entry @p e's write group: record its size, write back or
     *  elide, and reset the per-entry group state. */
    void endGroup(std::uint32_t e, stats::Counter &cause);

    /** Find the buffer entry holding @p set; entries() if none. */
    std::uint32_t entryOfSet(std::uint32_t set) const;

    /** Byte offset of @p addr within its set's row image. */
    std::uint32_t rowOffsetOf(mem::Addr addr, std::uint32_t way) const;

    /** Extract an access-sized little-endian value from a row image. */
    std::uint64_t extractData(const sram::RowData &row,
                              std::uint32_t offset,
                              std::uint8_t size) const;

    /** Schedule a port operation with blocking back-pressure: the
     *  controller's clock advances to the operation's start cycle. */
    std::uint64_t scheduleOp(sram::PortUse use, std::uint64_t earliest,
                             std::uint32_t duration);

    /** Record @p type on the attached event ring (no-op when none). */
    void note(obs::EventType type, std::uint64_t addr, std::uint32_t set)
    {
        if (_events)
            _events->record(type, _requests.value(), _cycle, addr, set);
    }

    // Counted/energy-accounted array operations. Reads hand back a
    // reference to the row image in place (DESIGN.md §7) — no copy.
    const sram::RowData &demandReadRef(std::uint32_t row);
    void demandMerge(std::uint32_t row, std::uint32_t offset,
                     const std::uint8_t *bytes, std::uint32_t len);

    ControllerConfig _config;

    /** Static traits of the configured scheme, resolved once. */
    SchemeTraits _traits;

    mem::FunctionalMemory &_mem;
    mem::TagArray _tags;
    sram::SRAMArray _array;
    sram::EnergyModel _energy;
    sram::PortScheduler _ports;
    std::unique_ptr<TagBuffer> _tagBuffer;
    std::unique_ptr<SetBuffer> _setBuffer;

    std::uint64_t _cycle = 0;
    std::uint64_t _requestCycle = 0;

    /** Attached event ring; nullptr when tracing is off. */
    obs::EventRing *_events = nullptr;

    /** Service latency of the most recent miss (next level vs memory). */
    std::uint32_t _lastMissPenalty = 0;

    /** Backing level (non-owning; core::LevelStack wires it). */
    CacheController *_next = nullptr;

    /** Inclusion-maintenance hook; empty for single-level runs. */
    EvictionHook _evictionHook;

    /** Staged victim image for the eviction hook (pre-sized at
     *  setEvictionHook(); keeps the eviction path allocation-free). */
    std::vector<std::uint8_t> _victimScratch;

    /** Staged next-level fetch (pre-sized at attachNextLevel()). */
    std::vector<std::uint8_t> _fetchScratch;

    /** Deferred energy accounting state (see dynamicEnergy()). */
    EnergyCounts _ecounts;
    sram::EnergyEventRates _rates;

    /** Supply operating point; identity while detached. Applied once
     *  at construction (rates + latency cycles), never on the hot
     *  path. */
    sram::VddPoint _vddPoint;
    bool _vddActive = false;
    EnergyAuditFn _energyAuditFn = nullptr;
    void *_energyAuditCtx = nullptr;

    /** Tag scratch for Tag-Buffer loads (pre-sized to the
     *  associativity; avoids a per-group-open heap allocation). */
    std::vector<mem::Addr> _tagScratch;

    /** Per-entry writes merged since the last write-back (silent-group
     *  elision accounting). */
    std::vector<std::uint32_t> _entryWritesSinceWb;

    /** Per-entry writes merged into the currently open group. */
    std::vector<std::uint32_t> _entryGroupSize;

    stats::Counter _requests{"ctrl.requests", "requests serviced"};
    stats::Counter _readRequests{"ctrl.reads", "read requests"};
    stats::Counter _writeRequests{"ctrl.writes", "write requests"};
    stats::Counter _demandRowReads{"ctrl.demand_row_reads",
                                   "demand row reads"};
    stats::Counter _demandRowWrites{"ctrl.demand_row_writes",
                                    "demand row writes"};
    stats::Counter _fillRowReads{"ctrl.fill_row_reads",
                                 "miss-handling row reads"};
    stats::Counter _fillRowWrites{"ctrl.fill_row_writes",
                                  "miss-handling row writes"};
    stats::Counter _drainWrites{"ctrl.drain_writes",
                                "drain() write-backs"};
    stats::Counter _groupedWrites{"ctrl.grouped_writes",
                                  "writes absorbed by the Set-Buffer"};
    stats::Counter _prematureWritebacks{
        "ctrl.premature_writebacks",
        "write-backs forced by Tag-Buffer read hits"};
    stats::Counter _groupWritebacks{"ctrl.group_writebacks",
                                    "group-ending write-backs"};
    stats::Counter _missFlushWritebacks{
        "ctrl.miss_flush_writebacks",
        "write-backs forced by misses to the buffered set"};
    stats::Counter _silentGroupsElided{
        "ctrl.silent_groups_elided",
        "groups whose write-back was skipped (Dirty clear)"};
    stats::Counter _bypassedReads{"ctrl.bypassed_reads",
                                  "reads served from the Set-Buffer"};
    stats::Counter _silentWritesDetected{
        "ctrl.silent_writes_detected",
        "silent stores caught by comparison"};

    /** Hierarchy counters; registered only when this controller is
     *  part of a level stack (next level or eviction hook wired), so
     *  single-level dumps stay byte-identical. */
    stats::Counter _backInvalidations{
        "hier.back_invalidations",
        "lines dropped by lower-level evictions"};
    stats::Counter _backInvalDirty{
        "hier.back_inval_dirty",
        "back-invalidated lines that were dirty"};
    stats::Counter _backInvalFlushes{
        "hier.back_inval_flushes",
        "buffered-group write-backs forced by back-invalidation"};
    stats::Counter _evictionsMerged{
        "hier.evictions_merged",
        "victims that absorbed fresher upper-level bytes"};

    stats::Distribution _groupSizes{"ctrl.group_sizes",
                                    "writes per write-group", 0, 64, 64};
    stats::Distribution _readLatency{"ctrl.read_latency",
                                     "read latency (cycles)", 0, 64, 64};

    /** Operating-point gauges; registered only when a non-nominal
     *  supply is attached, so nominal dumps stay byte-identical. */
    stats::Gauge _vddSupply{"vdd.supply", "supply voltage (V)"};
    stats::Gauge _vddEnergyScale{"vdd.energy_scale",
                                 "dynamic energy multiplier vs nominal"};
    stats::Gauge _vddLeakScale{"vdd.leakage_scale",
                               "leakage power multiplier vs nominal"};
    stats::Gauge _vddDelayFactor{"vdd.delay_factor",
                                 "array delay multiplier vs nominal"};
    stats::Gauge _vddPfailRead{"vdd.pfail_read",
                               "per-cell read failure probability"};
    stats::Gauge _vddPfailWrite{"vdd.pfail_write",
                                "per-cell write failure probability"};
};

} // namespace c8t::core

#endif // C8T_CORE_CONTROLLER_HH
