/**
 * @file
 * Fault-map campaign memo implementation.
 */

#include "core/fault_cache.hh"

#include <cstdio>

#include "obs/metrics.hh"
#include "obs/prof.hh"

namespace c8t::core
{

namespace
{

/** Mirror the counters into the obs push-model registry. */
void
publish(const FaultMapCache::Stats &s)
{
    obs::Metrics::FaultCacheStats out;
    out.hits = s.hits;
    out.misses = s.misses;
    out.entries = s.entries;
    obs::globalMetrics().setFaultCache(out);
}

} // anonymous namespace

std::string
FaultMapCache::key(const sram::FaultMapConfig &cfg)
{
    // Hexfloat for the doubles: two configs compare equal exactly when
    // every generation-relevant bit matches.
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%llu|%a|%d|%a|%u|%u|%u",
                  static_cast<unsigned long long>(cfg.runSeed), cfg.vdd,
                  static_cast<int>(cfg.cell), cfg.pfailCell, cfg.rows,
                  cfg.wordsPerRow, cfg.degree);
    return buf;
}

sram::FaultMapStats
FaultMapCache::evaluate(const sram::FaultMapConfig &cfg)
{
    const std::string k = key(cfg);
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        const auto it = _entries.find(k);
        if (it != _entries.end()) {
            ++_stats.hits;
            publish(_stats);
            return it->second;
        }
        ++_stats.misses;
    }
    sram::FaultMapStats stats;
    {
        const obs::prof::ScopedPhase fault_scope(
            obs::prof::Phase::FaultMap);
        stats = sram::runFaultMapCampaign(cfg);
    }
    const std::lock_guard<std::mutex> lock(_mutex);
    _entries[k] = stats;
    _stats.entries = _entries.size();
    publish(_stats);
    return stats;
}

FaultMapCache::Stats
FaultMapCache::stats() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _stats;
}

void
FaultMapCache::clear()
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
    _stats.entries = 0;
}

FaultMapCache &
globalFaultMapCache()
{
    // Leaked on purpose, like the other process-wide registries:
    // daemon worker threads may consult it arbitrarily late.
    static FaultMapCache *cache = new FaultMapCache;
    return *cache;
}

} // namespace c8t::core
