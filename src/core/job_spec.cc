/**
 * @file
 * JobSpec JSON parsing/serialization (strict unknown-key errors).
 */

#include "core/job_spec.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "stats/json.hh"

namespace c8t::core
{

namespace
{

/** Recursive-descent JSON parser over a string (no streaming). */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _text(text) {}

    JsonValue parse()
    {
        JsonValue v = value();
        skipWs();
        if (_pos != _text.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::invalid_argument("json: " + what + " at byte " +
                                    std::to_string(_pos));
    }

    void skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    char peek()
    {
        skipWs();
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_pos;
    }

    bool consumeWord(const char *w)
    {
        const std::size_t n = std::char_traits<char>::length(w);
        if (_text.compare(_pos, n, w) == 0) {
            _pos += n;
            return true;
        }
        return false;
    }

    JsonValue value()
    {
        const char c = peek();
        switch (c) {
        case '{':
            return object();
        case '[':
            return array();
        case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = string();
            return v;
        }
        case 't':
        case 'f': {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            if (consumeWord("true"))
                v.boolean = true;
            else if (consumeWord("false"))
                v.boolean = false;
            else
                fail("bad literal");
            return v;
        }
        case 'n': {
            if (!consumeWord("null"))
                fail("bad literal");
            return JsonValue{};
        }
        default:
            return numberValue();
        }
    }

    JsonValue object()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        for (;;) {
            if (peek() != '"')
                fail("expected object key");
            std::string key = string();
            for (const auto &m : v.members) {
                if (m.first == key)
                    fail("duplicate object key \"" + key + "\"");
            }
            expect(':');
            v.members.emplace_back(std::move(key), value());
            const char c = peek();
            if (c == ',') {
                ++_pos;
                continue;
            }
            if (c == '}') {
                ++_pos;
                return v;
            }
            fail("expected ',' or '}'");
        }
    }

    JsonValue array()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        for (;;) {
            v.items.push_back(value());
            const char c = peek();
            if (c == ',') {
                ++_pos;
                continue;
            }
            if (c == ']') {
                ++_pos;
                return v;
            }
            fail("expected ',' or ']'");
        }
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (_pos < _text.size()) {
            const char c = _text[_pos++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (_pos >= _text.size())
                fail("unterminated escape");
            const char e = _text[_pos++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (_pos + 4 > _text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = _text[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are beyond what our ASCII-only specs ever carry).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                fail("unknown escape");
            }
        }
        fail("unterminated string");
    }

    JsonValue numberValue()
    {
        const std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-'))
            ++_pos;
        if (_pos == start)
            fail("expected a value");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.raw = _text.substr(start, _pos - start);
        std::size_t used = 0;
        try {
            v.number = std::stod(v.raw, &used);
        } catch (const std::exception &) {
            fail("bad number '" + v.raw + "'");
        }
        if (used != v.raw.size())
            fail("bad number '" + v.raw + "'");
        return v;
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

[[noreturn]] void
specFail(const std::string &what)
{
    throw std::invalid_argument("job spec: " + what);
}

/** Reject any member of @p v whose key is not in @p known. */
void
rejectUnknownKeys(const JsonValue &v, const char *where,
                  std::initializer_list<const char *> known)
{
    for (const auto &m : v.members) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || m.first == k;
        if (!ok) {
            specFail(std::string("unknown key \"") + m.first + "\" in " +
                     where);
        }
    }
}

std::uint64_t
asU64(const JsonValue &v, const char *key)
{
    if (!v.isNumber() || v.number < 0.0 ||
        v.number != std::floor(v.number) ||
        v.raw.find_first_of(".eE") != std::string::npos)
        specFail(std::string(key) + ": expected a non-negative integer");
    return static_cast<std::uint64_t>(v.number);
}

double
asDouble(const JsonValue &v, const char *key)
{
    if (!v.isNumber())
        specFail(std::string(key) + ": expected a number");
    return v.number;
}

const std::string &
asString(const JsonValue &v, const char *key)
{
    if (!v.isString())
        specFail(std::string(key) + ": expected a string");
    return v.string;
}

bool
asBool(const JsonValue &v, const char *key)
{
    if (v.kind != JsonValue::Kind::Bool)
        specFail(std::string(key) + ": expected true or false");
    return v.boolean;
}

template <typename T, typename Fn>
std::vector<T>
asList(const JsonValue &v, const char *key, Fn item)
{
    if (!v.isArray())
        specFail(std::string(key) + ": expected an array");
    if (v.items.empty())
        specFail(std::string(key) + ": empty list");
    std::vector<T> out;
    out.reserve(v.items.size());
    for (const JsonValue &e : v.items)
        out.push_back(item(e));
    return out;
}

} // anonymous namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &m : members) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

const char *
toString(JobKind k)
{
    switch (k) {
    case JobKind::Run: return "run";
    case JobKind::VddSweep: return "vdd_sweep";
    case JobKind::Explore: return "explore";
    }
    return "?";
}

JobKind
parseJobKind(const std::string &name)
{
    if (name == "run")
        return JobKind::Run;
    if (name == "vdd_sweep")
        return JobKind::VddSweep;
    if (name == "explore")
        return JobKind::Explore;
    specFail("unknown kind \"" + name +
             "\" (want run, vdd_sweep or explore)");
}

std::vector<WriteScheme>
JobSpec::effectiveSchemes() const
{
    if (!schemes.empty())
        return schemes;
    if (kind == JobKind::Run)
        return {WriteScheme::Rmw, WriteScheme::WriteGroupingReadBypass};
    // The voltage story's four, matching VddSweepSpec / ExplorerSpec.
    return {WriteScheme::SixTDirect, WriteScheme::Rmw,
            WriteScheme::WriteGrouping,
            WriteScheme::WriteGroupingReadBypass};
}

void
JobSpec::validate() const
{
    if (accesses == 0)
        specFail("accesses must be > 0");
    if (bufferEntries == 0)
        specFail("buffer_entries must be >= 1");
    if (vdd < 0.0)
        specFail("vdd must be > 0");
    for (const LevelSpec &l : levels) {
        mem::CacheConfig lc;
        lc.sizeBytes = l.sizeKb * 1024;
        lc.ways = l.ways;
        lc.blockBytes = l.blockBytes ? l.blockBytes : cache.blockBytes;
        lc.replacement = l.repl;
        lc.validate();
        if (l.blockBytes && l.blockBytes != cache.blockBytes)
            specFail("levels[].block must match the L1 block size");
        if (l.vdd < 0.0)
            specFail("levels[].vdd must be > 0");
    }
    if (workload.find(':') == std::string::npos) {
        specFail("workload must be spec:<bench>, kernel:<name> or "
                 "trace:<path>, got '" + workload + "'");
    }
    cache.validate();
    if (kind == JobKind::Explore && shardCells == 0)
        specFail("shard_cells must be >= 1");
}

JobSpec
JobSpec::fromJson(const JsonValue &v)
{
    if (!v.isObject())
        specFail("expected a JSON object");
    rejectUnknownKeys(v, "spec",
                      {"kind", "workload", "accesses", "warmup", "cache",
                       "schemes", "buffer_entries", "silent_detection",
                       "l2_kb", "levels", "vdd", "explore"});

    JobSpec spec;
    const JsonValue *kind = v.find("kind");
    if (!kind)
        specFail("missing required key \"kind\"");
    spec.kind = parseJobKind(asString(*kind, "kind"));

    if (const JsonValue *w = v.find("workload"))
        spec.workload = asString(*w, "workload");
    if (const JsonValue *a = v.find("accesses"))
        spec.accesses = asU64(*a, "accesses");
    if (const JsonValue *w = v.find("warmup"))
        spec.warmup = asU64(*w, "warmup");

    if (const JsonValue *c = v.find("cache")) {
        if (!c->isObject())
            specFail("cache: expected an object");
        rejectUnknownKeys(*c, "cache",
                          {"size_kb", "ways", "block", "repl"});
        if (const JsonValue *s = c->find("size_kb"))
            spec.cache.sizeBytes = asU64(*s, "cache.size_kb") * 1024;
        if (const JsonValue *w = c->find("ways")) {
            spec.cache.ways =
                static_cast<std::uint32_t>(asU64(*w, "cache.ways"));
        }
        if (const JsonValue *b = c->find("block")) {
            spec.cache.blockBytes =
                static_cast<std::uint32_t>(asU64(*b, "cache.block"));
        }
        if (const JsonValue *r = c->find("repl")) {
            spec.cache.replacement =
                mem::parseReplKind(asString(*r, "cache.repl"));
        }
    }

    if (const JsonValue *s = v.find("schemes")) {
        spec.schemes = asList<WriteScheme>(
            *s, "schemes", [](const JsonValue &e) {
                return parseWriteScheme(asString(e, "schemes[]"));
            });
    }
    if (const JsonValue *b = v.find("buffer_entries")) {
        spec.bufferEntries =
            static_cast<std::uint32_t>(asU64(*b, "buffer_entries"));
    }
    if (const JsonValue *s = v.find("silent_detection"))
        spec.silentDetection = asBool(*s, "silent_detection");
    if (const JsonValue *lv = v.find("levels")) {
        if (!lv->isArray())
            specFail("levels: expected an array");
        if (lv->items.empty())
            specFail("levels: empty list");
        for (const JsonValue &e : lv->items) {
            if (!e.isObject())
                specFail("levels[]: expected an object");
            rejectUnknownKeys(e, "levels[]",
                              {"size_kb", "ways", "block", "repl",
                               "scheme", "vdd"});
            LevelSpec l;
            if (const JsonValue *s = e.find("size_kb"))
                l.sizeKb = asU64(*s, "levels[].size_kb");
            if (const JsonValue *w = e.find("ways")) {
                l.ways = static_cast<std::uint32_t>(
                    asU64(*w, "levels[].ways"));
            }
            if (const JsonValue *b = e.find("block")) {
                l.blockBytes = static_cast<std::uint32_t>(
                    asU64(*b, "levels[].block"));
            }
            if (const JsonValue *r = e.find("repl")) {
                l.repl =
                    mem::parseReplKind(asString(*r, "levels[].repl"));
            }
            if (const JsonValue *s = e.find("scheme")) {
                l.scheme =
                    parseWriteScheme(asString(*s, "levels[].scheme"));
            }
            if (const JsonValue *d = e.find("vdd")) {
                l.vdd = asDouble(*d, "levels[].vdd");
                if (l.vdd <= 0.0)
                    specFail("levels[].vdd: must be > 0");
            }
            spec.levels.push_back(l);
        }
    }
    if (const JsonValue *l = v.find("l2_kb")) {
        // Deprecated alias for the retired tags-only shim: a bare
        // capacity becomes a default-shaped L2 level.
        if (!spec.levels.empty())
            specFail("l2_kb is a deprecated alias for levels; give "
                     "one or the other");
        if (const std::uint64_t kb = asU64(*l, "l2_kb")) {
            LevelSpec l2;
            l2.sizeKb = kb;
            spec.levels.push_back(l2);
        }
    }
    if (const JsonValue *d = v.find("vdd")) {
        spec.vdd = asDouble(*d, "vdd");
        if (spec.vdd <= 0.0)
            specFail("vdd: must be > 0");
    }

    if (const JsonValue *e = v.find("explore")) {
        if (spec.kind != JobKind::Explore)
            specFail("explore axes given for a non-explore kind");
        if (!e->isObject())
            specFail("explore: expected an object");
        rejectUnknownKeys(*e, "explore",
                          {"workloads", "sizes_kb", "ways", "blocks",
                           "repl", "vdd", "l2_sizes_kb", "shard_cells"});
        if (const JsonValue *w = e->find("workloads")) {
            spec.exploreWorkloads = asList<std::string>(
                *w, "explore.workloads", [](const JsonValue &i) {
                    return asString(i, "explore.workloads[]");
                });
        }
        if (const JsonValue *s = e->find("sizes_kb")) {
            spec.exploreSizesKb = asList<std::uint64_t>(
                *s, "explore.sizes_kb", [](const JsonValue &i) {
                    return asU64(i, "explore.sizes_kb[]");
                });
        }
        if (const JsonValue *w = e->find("ways")) {
            spec.exploreWays = asList<std::uint32_t>(
                *w, "explore.ways", [](const JsonValue &i) {
                    return static_cast<std::uint32_t>(
                        asU64(i, "explore.ways[]"));
                });
        }
        if (const JsonValue *b = e->find("blocks")) {
            spec.exploreBlocks = asList<std::uint32_t>(
                *b, "explore.blocks", [](const JsonValue &i) {
                    return static_cast<std::uint32_t>(
                        asU64(i, "explore.blocks[]"));
                });
        }
        if (const JsonValue *r = e->find("repl")) {
            spec.exploreRepls = asList<mem::ReplKind>(
                *r, "explore.repl", [](const JsonValue &i) {
                    return mem::parseReplKind(
                        asString(i, "explore.repl[]"));
                });
        }
        if (const JsonValue *g = e->find("vdd")) {
            spec.exploreVdd = asList<double>(
                *g, "explore.vdd", [](const JsonValue &i) {
                    return asDouble(i, "explore.vdd[]");
                });
        }
        if (const JsonValue *l = e->find("l2_sizes_kb")) {
            spec.exploreL2SizesKb = asList<std::uint64_t>(
                *l, "explore.l2_sizes_kb", [](const JsonValue &i) {
                    return asU64(i, "explore.l2_sizes_kb[]");
                });
        }
        if (const JsonValue *s = e->find("shard_cells")) {
            spec.shardCells = static_cast<std::size_t>(
                asU64(*s, "explore.shard_cells"));
        }
    }

    spec.validate();
    return spec;
}

JobSpec
JobSpec::fromJsonText(const std::string &text)
{
    return fromJson(parseJson(text));
}

std::string
JobSpec::toJson() const
{
    std::ostringstream os;
    os << "{\"kind\":\"" << toString(kind) << "\""
       << ",\"workload\":\"" << stats::jsonEscape(workload) << "\""
       << ",\"accesses\":" << accesses << ",\"warmup\":" << warmup
       << ",\"cache\":{\"size_kb\":" << (cache.sizeBytes >> 10)
       << ",\"ways\":" << cache.ways << ",\"block\":" << cache.blockBytes
       << ",\"repl\":\"" << mem::toString(cache.replacement) << "\"}";
    if (!schemes.empty()) {
        os << ",\"schemes\":[";
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            os << (i ? "," : "") << "\""
               << core::toString(schemes[i]) << "\"";
        }
        os << "]";
    }
    os << ",\"buffer_entries\":" << bufferEntries
       << ",\"silent_detection\":"
       << (silentDetection ? "true" : "false");
    if (!levels.empty()) {
        os << ",\"levels\":[";
        for (std::size_t i = 0; i < levels.size(); ++i) {
            const LevelSpec &l = levels[i];
            os << (i ? "," : "") << "{\"size_kb\":" << l.sizeKb
               << ",\"ways\":" << l.ways << ",\"block\":" << l.blockBytes
               << ",\"repl\":\"" << mem::toString(l.repl)
               << "\",\"scheme\":\"" << core::toString(l.scheme) << "\"";
            if (l.vdd > 0.0) {
                os << ",\"vdd\":";
                stats::jsonNumber(os, l.vdd);
            }
            os << "}";
        }
        os << "]";
    }
    if (vdd > 0.0) {
        os << ",\"vdd\":";
        stats::jsonNumber(os, vdd);
    }
    if (kind == JobKind::Explore) {
        os << ",\"explore\":{";
        bool first = true;
        const auto sep = [&] {
            if (!first)
                os << ",";
            first = false;
        };
        if (!exploreWorkloads.empty()) {
            sep();
            os << "\"workloads\":[";
            for (std::size_t i = 0; i < exploreWorkloads.size(); ++i) {
                os << (i ? "," : "") << "\""
                   << stats::jsonEscape(exploreWorkloads[i]) << "\"";
            }
            os << "]";
        }
        sep();
        os << "\"sizes_kb\":[";
        for (std::size_t i = 0; i < exploreSizesKb.size(); ++i)
            os << (i ? "," : "") << exploreSizesKb[i];
        os << "],\"ways\":[";
        for (std::size_t i = 0; i < exploreWays.size(); ++i)
            os << (i ? "," : "") << exploreWays[i];
        os << "],\"blocks\":[";
        for (std::size_t i = 0; i < exploreBlocks.size(); ++i)
            os << (i ? "," : "") << exploreBlocks[i];
        os << "],\"repl\":[";
        for (std::size_t i = 0; i < exploreRepls.size(); ++i) {
            os << (i ? "," : "") << "\""
               << mem::toString(exploreRepls[i]) << "\"";
        }
        os << "]";
        if (!exploreVdd.empty()) {
            os << ",\"vdd\":[";
            for (std::size_t i = 0; i < exploreVdd.size(); ++i) {
                os << (i ? "," : "");
                stats::jsonNumber(os, exploreVdd[i]);
            }
            os << "]";
        }
        if (!exploreL2SizesKb.empty()) {
            os << ",\"l2_sizes_kb\":[";
            for (std::size_t i = 0; i < exploreL2SizesKb.size(); ++i)
                os << (i ? "," : "") << exploreL2SizesKb[i];
            os << "]";
        }
        os << ",\"shard_cells\":" << shardCells << "}";
    }
    os << "}";
    return os.str();
}

} // namespace c8t::core
