/**
 * @file
 * Simulation drivers.
 */

#include "core/simulator.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hh"
#include "obs/prof.hh"

namespace c8t::core
{

MultiSchemeRunner::MultiSchemeRunner(std::vector<ControllerConfig> configs)
    : _configs(std::move(configs))
{
    if (_configs.empty())
        throw std::invalid_argument("MultiSchemeRunner: no configs");

    _memories.reserve(_configs.size());
    _stacks.reserve(_configs.size());
    for (const auto &cfg : _configs) {
        _memories.push_back(std::make_unique<mem::FunctionalMemory>());
        _stacks.push_back(
            std::make_unique<LevelStack>(cfg, *_memories.back()));
    }

    // Plan-sharing groups by cache shape (see simulator.hh): the first
    // controller of each shape leads and runs stage 1 for the group.
    // Stacked configurations must also agree on their lower levels —
    // back-invalidations perturb the top level's tag trajectory, so a
    // hierarchy only marches in lockstep with an identical hierarchy.
    // (A stacked top level is plan-ineligible anyway; the grouping
    // just keeps leaders from doing stage-1 work nobody can adopt.)
    _planLeader.resize(_configs.size());
    _leaderPlan.assign(_configs.size(), nullptr);
    for (std::size_t i = 0; i < _configs.size(); ++i) {
        std::size_t leader = i;
        for (std::size_t j = 0; j < i; ++j) {
            if (_configs[j].cache == _configs[i].cache &&
                _configs[j].lowerLevels == _configs[i].lowerLevels) {
                leader = j;
                break;
            }
        }
        _planLeader[i] = leader;
    }
}

CacheController &
MultiSchemeRunner::controller(std::size_t i)
{
    return _stacks.at(i)->top();
}

LevelStack &
MultiSchemeRunner::stack(std::size_t i)
{
    return *_stacks.at(i);
}

std::uint64_t
MultiSchemeRunner::replayWindow(trace::AccessGenerator &gen,
                                std::uint64_t accesses, bool measured)
{
    const bool hooked = measured && _intervalAccesses && _intervalHook;
    // One atomic read per window, not per chunk; the scopes below are
    // completely inert (no clock read) when the profiler is off.
    const bool prof_on = obs::prof::enabled();

    std::uint64_t done = 0;
    while (done < accesses) {
        std::uint64_t want =
            std::min<std::uint64_t>(kChunkAccesses, accesses - done);
        if (hooked) {
            // Never let a chunk straddle an interval boundary: the
            // hook must observe the controllers exactly at multiples
            // of the interval, as the per-access loop did.
            want = std::min(want,
                            _intervalAccesses - done % _intervalAccesses);
        }
        // Prefer a zero-copy view (ReplayGenerator lends its buffer);
        // fall back to copying into the local chunk otherwise.
        std::size_t got = 0;
        const trace::MemAccess *chunk = nullptr;
        {
            const obs::prof::ScopedPhase gen_scope(
                obs::prof::Phase::StreamGenerate, prof_on);
            chunk = gen.borrowChunk(static_cast<std::size_t>(want), got);
            if (!chunk) {
                got = gen.fillChunk(_chunk.data(),
                                    static_cast<std::size_t>(want));
                chunk = _chunk.data();
            }
        }
        if (got == 0)
            break;

        std::chrono::steady_clock::time_point chunk_t0;
        if (prof_on)
            chunk_t0 = std::chrono::steady_clock::now();

        // Controllers are fully independent (each owns its memory), so
        // feeding them one after the other from the flat chunk is
        // result-identical to interleaving them per access. accessChunk
        // hoists the write-scheme dispatch out of the per-access loop,
        // and same-shape controllers share the group leader's stage-1
        // plan: their tag trajectories are identical, so the tag
        // compares and replacement arithmetic run once per shape, not
        // once per scheme.
        {
            const obs::prof::ScopedPhase replay_scope(
                obs::prof::Phase::Replay, prof_on);
            for (std::size_t i = 0; i < _stacks.size(); ++i) {
                const mem::ChunkPlan *plan = nullptr;
                if (_planLeader[i] == i) {
                    const obs::prof::ScopedPhase plan_scope(
                        obs::prof::Phase::Plan, prof_on);
                    plan = _stacks[i]->planReplayChunk(chunk, got);
                    _leaderPlan[i] = plan;
                } else {
                    plan = _leaderPlan[_planLeader[i]];
                }
                _stacks[i]->accessChunk(chunk, got, plan);
            }
        }
        if (prof_on) {
            obs::globalMetrics().recordChunkReplayNs(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - chunk_t0)
                        .count()));
        }

        done += got;
        if (hooked && done % _intervalAccesses == 0)
            _intervalHook(done);
    }
    return done;
}

std::vector<SchemeRunResult>
MultiSchemeRunner::run(trace::AccessGenerator &gen, const RunConfig &run)
{
    gen.reset();
    if (_chunk.size() < kChunkAccesses)
        _chunk.resize(kChunkAccesses);

    replayWindow(gen, run.warmupAccesses, false);
    for (auto &stack : _stacks)
        stack->resetStats();

    replayWindow(gen, run.measureAccesses, true);

    std::vector<SchemeRunResult> results;
    {
        // Drain + result materialization is where the deferred energy
        // event counters turn into joules — the "energy" phase.
        const obs::prof::ScopedPhase energy_scope(
            obs::prof::Phase::Energy);
        for (auto &stack : _stacks)
            stack->drain();
        results.reserve(_stacks.size());
        for (auto &stack : _stacks)
            results.push_back(snapshotResult(gen.name(), *stack));
    }
    return results;
}

SchemeRunResult
snapshotResult(const std::string &workload, const CacheController &ctrl)
{
    SchemeRunResult r;
    r.workload = workload;
    r.scheme = toString(ctrl.config().scheme);
    r.requests = ctrl.requests();
    r.reads = ctrl.readRequests();
    r.writes = ctrl.writeRequests();
    r.demandAccesses = ctrl.demandAccesses();
    r.demandRowReads = ctrl.demandRowReads();
    r.demandRowWrites = ctrl.demandRowWrites();
    r.fillAccesses = ctrl.fillRowReads() + ctrl.fillRowWrites();
    r.hits = ctrl.tags().hits();
    r.misses = ctrl.tags().misses();
    r.groupedWrites = ctrl.groupedWrites();
    r.bypassedReads = ctrl.bypassedReads();
    r.prematureWritebacks = ctrl.prematureWritebacks();
    r.silentWritesDetected = ctrl.silentWritesDetected();
    r.silentGroupsElided = ctrl.silentGroupsElided();
    r.meanGroupSize = ctrl.groupSizes().mean();
    r.portStallCycles = ctrl.ports().stallCycles();
    r.portConflicts = ctrl.ports().conflicts();
    r.meanReadLatency = ctrl.readLatency().mean();
    r.dynamicEnergy = ctrl.dynamicEnergy();
    r.cycles = ctrl.cycle();
    // A lone controller is its own hierarchy: the total is the one
    // addend, bit-identically.
    r.totalDynamicEnergy = r.dynamicEnergy;
    return r;
}

SchemeRunResult
snapshotResult(const std::string &workload, const LevelStack &stack)
{
    SchemeRunResult r = snapshotResult(workload, stack.top());
    r.levels.reserve(stack.depth() - 1);
    for (std::size_t i = 1; i < stack.depth(); ++i)
        r.levels.push_back(snapshotResult(workload, stack.level(i)));
    for (const SchemeRunResult &lvl : r.levels)
        r.totalDynamicEnergy += lvl.dynamicEnergy;
    return r;
}

StreamStats
analyzeStream(trace::AccessGenerator &gen, const mem::AddrLayout &layout,
              std::uint64_t accesses)
{
    gen.reset();
    StreamAnalyzer analyzer(layout);

    trace::MemAccess a;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        if (!gen.next(a))
            break;
        analyzer.observe(a);
    }

    StreamStats s;
    s.workload = gen.name();
    s.instructions = analyzer.instructions();
    s.accesses = analyzer.accesses();
    s.readInstrFraction = analyzer.readInstrFraction();
    s.writeInstrFraction = analyzer.writeInstrFraction();
    s.rrShare = analyzer.rrShare();
    s.rwShare = analyzer.rwShare();
    s.wwShare = analyzer.wwShare();
    s.wrShare = analyzer.wrShare();
    s.sameSetShare = analyzer.sameSetShare();
    s.silentWriteFraction = analyzer.silentWriteFraction();
    return s;
}

} // namespace c8t::core
