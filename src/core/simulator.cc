/**
 * @file
 * Simulation drivers.
 */

#include "core/simulator.hh"

#include <stdexcept>

namespace c8t::core
{

MultiSchemeRunner::MultiSchemeRunner(std::vector<ControllerConfig> configs)
    : _configs(std::move(configs))
{
    if (_configs.empty())
        throw std::invalid_argument("MultiSchemeRunner: no configs");

    _memories.reserve(_configs.size());
    _controllers.reserve(_configs.size());
    for (const auto &cfg : _configs) {
        _memories.push_back(std::make_unique<mem::FunctionalMemory>());
        _controllers.push_back(
            std::make_unique<CacheController>(cfg, *_memories.back()));
    }
}

CacheController &
MultiSchemeRunner::controller(std::size_t i)
{
    return *_controllers.at(i);
}

std::vector<SchemeRunResult>
MultiSchemeRunner::run(trace::AccessGenerator &gen, const RunConfig &run)
{
    gen.reset();

    trace::MemAccess a;
    for (std::uint64_t i = 0; i < run.warmupAccesses; ++i) {
        if (!gen.next(a))
            break;
        for (auto &ctrl : _controllers)
            ctrl->access(a);
    }
    for (auto &ctrl : _controllers)
        ctrl->resetStats();

    for (std::uint64_t i = 0; i < run.measureAccesses; ++i) {
        if (!gen.next(a))
            break;
        for (auto &ctrl : _controllers)
            ctrl->access(a);
        if (_intervalAccesses && (i + 1) % _intervalAccesses == 0 &&
            _intervalHook) {
            _intervalHook(i + 1);
        }
    }
    for (auto &ctrl : _controllers)
        ctrl->drain();

    std::vector<SchemeRunResult> results;
    results.reserve(_controllers.size());
    for (auto &ctrl : _controllers)
        results.push_back(snapshotResult(gen.name(), *ctrl));
    return results;
}

SchemeRunResult
snapshotResult(const std::string &workload, const CacheController &ctrl)
{
    SchemeRunResult r;
    r.workload = workload;
    r.scheme = toString(ctrl.config().scheme);
    r.requests = ctrl.requests();
    r.reads = ctrl.readRequests();
    r.writes = ctrl.writeRequests();
    r.demandAccesses = ctrl.demandAccesses();
    r.demandRowReads = ctrl.demandRowReads();
    r.demandRowWrites = ctrl.demandRowWrites();
    r.fillAccesses = ctrl.fillRowReads() + ctrl.fillRowWrites();
    r.hits = ctrl.tags().hits();
    r.misses = ctrl.tags().misses();
    r.groupedWrites = ctrl.groupedWrites();
    r.bypassedReads = ctrl.bypassedReads();
    r.prematureWritebacks = ctrl.prematureWritebacks();
    r.silentWritesDetected = ctrl.silentWritesDetected();
    r.silentGroupsElided = ctrl.silentGroupsElided();
    r.meanGroupSize = ctrl.groupSizes().mean();
    r.portStallCycles = ctrl.ports().stallCycles();
    r.portConflicts = ctrl.ports().conflicts();
    r.meanReadLatency = ctrl.readLatency().mean();
    r.dynamicEnergy = ctrl.dynamicEnergy();
    r.cycles = ctrl.cycle();
    return r;
}

StreamStats
analyzeStream(trace::AccessGenerator &gen, const mem::AddrLayout &layout,
              std::uint64_t accesses)
{
    gen.reset();
    StreamAnalyzer analyzer(layout);

    trace::MemAccess a;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        if (!gen.next(a))
            break;
        analyzer.observe(a);
    }

    StreamStats s;
    s.workload = gen.name();
    s.instructions = analyzer.instructions();
    s.accesses = analyzer.accesses();
    s.readInstrFraction = analyzer.readInstrFraction();
    s.writeInstrFraction = analyzer.writeInstrFraction();
    s.rrShare = analyzer.rrShare();
    s.rwShare = analyzer.rwShare();
    s.wwShare = analyzer.wwShare();
    s.wrShare = analyzer.wrShare();
    s.sameSetShare = analyzer.sameSetShare();
    s.silentWriteFraction = analyzer.silentWriteFraction();
    return s;
}

} // namespace c8t::core
