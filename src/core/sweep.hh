/**
 * @file
 * The parallel sweep engine.
 *
 * Every figure/table binary replays many independent (workload,
 * cache-config, scheme-set) runs; historically they ran serially
 * through one loop. ParallelSweeper fans those runs across a pool of
 * worker threads. Each job is fully self-contained — it constructs its
 * own AccessGenerator (seeded deterministically from the workload
 * parameters), its own FunctionalMemory instances and its own
 * MultiSchemeRunner — so no simulation state is shared between threads
 * and the results are byte-identical to the serial order for any
 * worker count (including 1, which runs inline without spawning
 * threads).
 *
 * Worker count resolution: an explicit constructor argument wins, then
 * the C8T_JOBS environment variable, then hardware_concurrency().
 *
 * When the C8T_BENCH_JSON environment variable names a file, every
 * run() appends one JSON record (JSON-lines) with wall-clock time and
 * simulated accesses/second, so sweep performance can be tracked
 * across commits (tools/bench_report.sh collects these into
 * BENCH_<date>.json).
 *
 * Observability (DESIGN.md §6): with C8T_PROGRESS set (or
 * setProgress(true), c8tsim --progress) run() heartbeats a throttled
 * progress line to stderr — jobs done/total, aggregate simulated
 * accesses/s, ETA. With C8T_CHROME_TRACE naming a file (or c8tsim
 * --chrome-trace) every job contributes one span to a Perfetto-
 * loadable Chrome trace, on its worker's track.
 */

#ifndef C8T_CORE_SWEEP_HH
#define C8T_CORE_SWEEP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "mem/cache.hh"
#include "trace/access.hh"

namespace c8t::core
{

/**
 * One independent unit of sweep work: a workload factory plus the
 * controller configurations to run it through.
 *
 * The factory (not a live generator) is what makes the job safely
 * parallel AND deterministic: each execution builds a fresh generator,
 * so repeated runs and different thread counts see the identical
 * stream.
 */
struct SweepJob
{
    /** Build the job's workload. Called once, on the worker thread. */
    std::function<std::unique_ptr<trace::AccessGenerator>()> makeGenerator;

    /**
     * Deterministic workload signature for cross-job stream
     * memoization (core::StreamCache). Empty (the default) opts the
     * job out: every execution builds a fresh generator. When set, it
     * MUST uniquely identify the byte stream makeGenerator produces —
     * equal keys promise byte-identical streams (use
     * trace::streamSignature for SPEC profiles). The first job with a
     * given key generates the stream once; later jobs replay the
     * shared buffer zero-copy, which cannot change any result.
     */
    std::string streamKey;

    /** Controller configurations (one result per config). */
    std::vector<ControllerConfig> configs;

    /**
     * Supply voltage this job evaluates, 0 when the job has no voltage
     * dimension (every pre-vmodel sweep). Annotation only — the
     * operating point that actually drives the simulation is
     * configs[i].vdd — carried here so progress tooling and the Chrome
     * trace can label jobs of a VddSweep without digging through
     * configs.
     */
    double vdd = 0.0;

    /**
     * Optional pre-run hook, invoked on the worker thread after the
     * runner is constructed but before any access is replayed. This
     * is the attachment point for observability: event rings
     * (CacheController::attachEventRing) and interval snapshotters
     * (MultiSchemeRunner::setIntervalHook). Same synchronisation
     * rules as inspect.
     */
    std::function<void(MultiSchemeRunner &)> prepare;

    /**
     * Optional post-run hook, invoked on the worker thread after the
     * runner has completed (and drained). Use it to inspect controller
     * or memory state that the SchemeRunResult snapshot does not carry
     * (e.g. the memory-equivalence property tests). It must only touch
     * job-local state or appropriately synchronised captures.
     */
    std::function<void(MultiSchemeRunner &)> inspect;
};

/**
 * Thread-pool executor for independent sweep jobs.
 */
class ParallelSweeper
{
  public:
    /**
     * @param workers Worker threads; 0 = resolve from C8T_JOBS or
     *                hardware_concurrency().
     */
    explicit ParallelSweeper(unsigned workers = 0);

    /** Worker threads this sweeper will use. */
    unsigned workers() const { return _workers; }

    /** Resolved default worker count (C8T_JOBS env var if set and
     *  valid, else hardware_concurrency(), at least 1). */
    static unsigned defaultWorkers();

    /**
     * Enable/disable the stderr heartbeat: a throttled progress line
     * (jobs done/total, aggregate simulated accesses/s, ETA) printed
     * as jobs complete, plus a final summary. Default: the
     * C8T_PROGRESS environment variable (set and not "0" = on).
     */
    void setProgress(bool on) { _progress = on; }

    /** Whether the heartbeat is enabled. */
    bool progress() const { return _progress; }

    /** Heartbeat default: C8T_PROGRESS set and not "0". */
    static bool defaultProgress();

    /**
     * Enable/disable the per-run C8T_BENCH_JSON record (default on).
     * Drivers that execute many small runs under one umbrella record
     * (the design-space explorer runs one sweep per shard) turn it
     * off so the snapshot file is not flooded with per-shard rows.
     */
    void setRecordBench(bool on) { _recordBench = on; }

    /** Whether run() appends a C8T_BENCH_JSON record. */
    bool recordBench() const { return _recordBench; }

    /**
     * Run every job and collect the per-job result vectors in
     * submission order.
     *
     * Jobs are claimed from an atomic cursor by the workers; because
     * every job owns all of its state, the schedule cannot influence
     * the numbers — results are bit-identical for any worker count.
     * The first exception thrown by a job is rethrown here after all
     * workers have stopped.
     *
     * @param jobs  The work list.
     * @param rc    Warm-up/measure window (shared by all jobs).
     * @param label Tag for the C8T_BENCH_JSON perf record.
     */
    std::vector<std::vector<SchemeRunResult>>
    run(const std::vector<SweepJob> &jobs, const RunConfig &rc,
        const std::string &label = "sweep") const;

  private:
    unsigned _workers;
    bool _progress = defaultProgress();
    bool _recordBench = true;
};

/**
 * One SweepJob per calibrated SPEC profile: the workload is the
 * profile's MarkovStream, run through one controller per scheme on
 * @p cache. This is the shape every figure/table sweep uses.
 */
std::vector<SweepJob>
specSweepJobs(const mem::CacheConfig &cache,
              const std::vector<WriteScheme> &schemes);

} // namespace c8t::core

#endif // C8T_CORE_SWEEP_HH
