/**
 * @file
 * Shared sweep worker pool implementation.
 */

#include "core/worker_pool.hh"

#include <atomic>
#include <utility>

#include "core/sweep.hh"

namespace c8t::core
{

namespace
{

thread_local SweepPool::ClientId t_client = 0;
thread_local bool t_isWorker = false;
thread_local unsigned t_workerIndex = 0;

std::atomic<SweepPool *> g_pool{nullptr};

} // anonymous namespace

SweepPool::SweepPool(unsigned workers)
    : _workers(workers ? workers : ParallelSweeper::defaultWorkers())
{
    _stats.workers = _workers;
    _slots[0]; // the default slot for unregistered submissions
    _threads.reserve(_workers);
    for (unsigned w = 0; w < _workers; ++w)
        _threads.emplace_back([this, w] { workerLoop(w); });
}

SweepPool::~SweepPool()
{
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
        for (auto &entry : _slots)
            dropPending(entry.second);
    }
    _workCv.notify_all();
    _batchCv.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

SweepPool::ClientId
SweepPool::registerClient()
{
    const std::lock_guard<std::mutex> lock(_mutex);
    const ClientId id = ++_nextClient;
    _slots[id];
    ++_stats.clientsRegistered;
    return id;
}

void
SweepPool::unregisterClient(ClientId client)
{
    if (client == 0)
        return; // the default slot is permanent
    const std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _slots.find(client);
    if (it == _slots.end())
        return;
    dropPending(it->second);
    _slots.erase(it);
}

void
SweepPool::cancelClient(ClientId client)
{
    if (client == 0)
        return;
    const std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _slots.find(client);
    if (it == _slots.end())
        return;
    it->second.cancelled = true;
    dropPending(it->second);
}

void
SweepPool::dropPending(Slot &slot)
{
    for (Pending &p : slot.queue) {
        ++_stats.tasksCancelled;
        finishOne(*p.batch, std::make_exception_ptr(JobCancelled()));
    }
    slot.queue.clear();
}

void
SweepPool::finishOne(Batch &batch, std::exception_ptr error)
{
    if (error && !batch.error)
        batch.error = error;
    if (--batch.remaining == 0)
        _batchCv.notify_all();
}

void
SweepPool::runBatch(ClientId client, std::vector<Task> tasks)
{
    if (tasks.empty())
        return;

    if (t_isWorker) {
        // Nested sweep from a worker thread: run inline rather than
        // queueing work this thread would then block on.
        for (Task &t : tasks)
            t(t_workerIndex);
        return;
    }

    const auto batch = std::make_shared<Batch>();
    batch->remaining = tasks.size();
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        if (_stopping)
            throw std::runtime_error("SweepPool: shutting down");
        const auto it = _slots.find(client);
        if (it == _slots.end())
            throw std::invalid_argument("SweepPool: unknown client " +
                                        std::to_string(client));
        if (it->second.cancelled)
            throw JobCancelled();
        for (Task &t : tasks)
            it->second.queue.push_back(Pending{std::move(t), batch});
        ++_stats.batches;
    }
    _workCv.notify_all();

    std::unique_lock<std::mutex> lock(_mutex);
    _batchCv.wait(lock, [&] { return batch->remaining == 0; });
    if (batch->error)
        std::rethrow_exception(batch->error);
    // Every task may have been claimed before the cancel landed; the
    // contract is still "cancelled batches throw".
    const auto it = _slots.find(client);
    if (it != _slots.end() && it->second.cancelled)
        throw JobCancelled();
}

void
SweepPool::workerLoop(unsigned worker)
{
    t_isWorker = true;
    t_workerIndex = worker;
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        // Claim the next task round-robin across slots: resume the
        // key-order walk just past the slot served last, so a slot
        // with a deep queue cannot shut the others out.
        Pending pending;
        bool found = false;
        if (!_slots.empty()) {
            auto it = _slots.upper_bound(_rrCursor);
            for (std::size_t n = 0; n < _slots.size(); ++n) {
                if (it == _slots.end())
                    it = _slots.begin();
                if (!it->second.queue.empty()) {
                    pending = std::move(it->second.queue.front());
                    it->second.queue.pop_front();
                    _rrCursor = it->first;
                    found = true;
                    break;
                }
                ++it;
            }
        }
        if (!found) {
            if (_stopping)
                return;
            _workCv.wait(lock);
            continue;
        }

        lock.unlock();
        std::exception_ptr error;
        try {
            pending.fn(worker);
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        ++_stats.tasksRun;
        finishOne(*pending.batch, error);
    }
}

SweepPool::Stats
SweepPool::stats() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    Stats out = _stats;
    out.activeClients = _slots.size() - 1; // minus the default slot
    std::uint64_t queued = 0;
    for (const auto &entry : _slots)
        queued += entry.second.queue.size();
    out.queuedTasks = queued;
    return out;
}

SweepPool::ClientScope::ClientScope(ClientId client)
    : _previous(t_client)
{
    t_client = client;
}

SweepPool::ClientScope::~ClientScope() { t_client = _previous; }

SweepPool::ClientId
SweepPool::currentClient()
{
    return t_client;
}

bool
SweepPool::onWorkerThread()
{
    return t_isWorker;
}

SweepPool *
globalSweepPool()
{
    return g_pool.load(std::memory_order_acquire);
}

void
setGlobalSweepPool(SweepPool *pool)
{
    g_pool.store(pool, std::memory_order_release);
}

} // namespace c8t::core
