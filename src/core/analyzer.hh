/**
 * @file
 * Stream analyzer: measures exactly the quantities the paper's
 * motivation figures report, directly on an access stream (no cache
 * model involved, matching the paper's methodology).
 *
 *  - Figure 3: read/write accesses as a share of executed instructions.
 *  - Figure 4: consecutive same-set scenario breakdown (RR/RW/WW/WR).
 *  - Figure 5: silent write frequency.
 */

#ifndef C8T_CORE_ANALYZER_HH
#define C8T_CORE_ANALYZER_HH

#include <cstdint>
#include <unordered_map>

#include "mem/addr.hh"
#include "stats/counter.hh"
#include "trace/access.hh"

namespace c8t::core
{

/**
 * Accumulates stream statistics access by access.
 */
class StreamAnalyzer
{
  public:
    /**
     * @param layout The cache layout defining "same set" (the paper
     *               uses the baseline 64 KB / 4-way / 32 B shape).
     */
    explicit StreamAnalyzer(const mem::AddrLayout &layout);

    /** Feed one access. */
    void observe(const trace::MemAccess &a);

    // --- Figure 3 ---------------------------------------------------------

    /** Executed instructions (memory accesses + gaps). */
    std::uint64_t instructions() const { return _instructions; }

    /** Memory accesses observed. */
    std::uint64_t accesses() const { return _reads + _writes; }

    /** Read accesses observed. */
    std::uint64_t reads() const { return _reads; }

    /** Write accesses observed. */
    std::uint64_t writes() const { return _writes; }

    /** Reads as a fraction of instructions. */
    double readInstrFraction() const;

    /** Writes as a fraction of instructions. */
    double writeInstrFraction() const;

    // --- Figure 4 ---------------------------------------------------------

    /** Consecutive pairs observed (accesses - 1). */
    std::uint64_t pairs() const { return _pairs; }

    /** Same-set read-then-read pairs. */
    std::uint64_t rrPairs() const { return _rr; }

    /** Same-set read-then-write pairs. */
    std::uint64_t rwPairs() const { return _rw; }

    /** Same-set write-then-write pairs. */
    std::uint64_t wwPairs() const { return _ww; }

    /** Same-set write-then-read pairs. */
    std::uint64_t wrPairs() const { return _wr; }

    /** RR share of all pairs. */
    double rrShare() const;

    /** RW share of all pairs. */
    double rwShare() const;

    /** WW share of all pairs. */
    double wwShare() const;

    /** WR share of all pairs. */
    double wrShare() const;

    /** Total same-set share of all pairs. */
    double sameSetShare() const;

    // --- Figure 5 ---------------------------------------------------------

    /** Writes that stored the value already present. */
    std::uint64_t silentWrites() const { return _silentWrites; }

    /** Silent writes as a fraction of all writes. */
    double silentWriteFraction() const;

    /** Reset all statistics and the silent-write shadow state. */
    void reset();

  private:
    mem::AddrLayout _layout;

    std::uint64_t _instructions = 0;
    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;
    std::uint64_t _pairs = 0;
    std::uint64_t _rr = 0;
    std::uint64_t _rw = 0;
    std::uint64_t _ww = 0;
    std::uint64_t _wr = 0;
    std::uint64_t _silentWrites = 0;

    bool _havePrev = false;
    trace::AccessType _prevType = trace::AccessType::Read;
    std::uint32_t _prevSet = 0;

    /** Architectural word values for silent-store detection. */
    std::unordered_map<std::uint64_t, std::uint64_t> _shadow;
};

} // namespace c8t::core

#endif // C8T_CORE_ANALYZER_HH
