/**
 * @file
 * Level-stack implementation (DESIGN.md §14).
 */

#include "core/level_stack.hh"

#include <stdexcept>
#include <string>

namespace c8t::core
{

namespace
{

/** Derive a full controller configuration for one lower level:
 *  process and voltage-model constants come from the top config, the
 *  rest from the level entry. */
ControllerConfig
configForLevel(const ControllerConfig &top, const LevelConfig &level)
{
    ControllerConfig c;
    c.cache = level.cache;
    c.scheme = level.scheme;
    c.bufferEntries = level.bufferEntries;
    c.silentDetection = level.silentDetection;
    c.interleaveDegree = level.interleaveDegree;
    c.latency = level.latency;
    c.tech = top.tech;
    c.vdd = level.vdd;
    c.vmodel = top.vmodel;
    return c;
}

} // anonymous namespace

std::string
levelStatsPrefix(std::size_t i)
{
    if (i == 0)
        return std::string();
    return "l" + std::to_string(i + 1) + ".";
}

LevelStack::LevelStack(const ControllerConfig &config,
                       mem::FunctionalMemory &memory)
    : _mem(memory)
{
    _levels.reserve(1 + config.lowerLevels.size());
    _levels.push_back(std::make_unique<CacheController>(config, _mem));

    std::uint64_t upper_size = config.cache.sizeBytes;
    for (const LevelConfig &lvl : config.lowerLevels) {
        if (lvl.cache.blockBytes != config.cache.blockBytes)
            throw std::invalid_argument(
                "LevelStack: every level must use the top level's "
                "block size");
        if (lvl.cache.sizeBytes < upper_size)
            throw std::invalid_argument(
                "LevelStack: a lower level must be at least as large "
                "as the level above it (inclusion needs the room)");
        upper_size = lvl.cache.sizeBytes;
        _levels.push_back(std::make_unique<CacheController>(
            configForLevel(config, lvl), _mem));
    }

    // Wire the chain: each level fetches from / writes back to the one
    // below, and each lower level back-invalidates every level above
    // on eviction. The hook walks the upper levels nearest-first and
    // lets each overwrite the staged victim, so the topmost (freshest)
    // copy wins; any dirty upper copy forces the write-down.
    for (std::size_t i = 0; i + 1 < _levels.size(); ++i)
        _levels[i]->attachNextLevel(_levels[i + 1].get());
    for (std::size_t i = 1; i < _levels.size(); ++i) {
        _levels[i]->setEvictionHook(
            [this, i](mem::Addr addr, std::uint8_t *block,
                      std::uint32_t len) {
                bool dirty = false;
                for (std::size_t j = i; j-- > 0;) {
                    if (_levels[j]->extractInvalidate(addr, block, len))
                        dirty = true;
                }
                return dirty;
            });
    }
}

void
LevelStack::drain()
{
    for (auto &lvl : _levels)
        lvl->drain();
}

void
LevelStack::flushToMemory()
{
    // Lowest first: an upper level's line is at least as fresh as any
    // lower copy, so flushing upward lets the freshest bytes land last.
    for (std::size_t i = _levels.size(); i-- > 0;)
        _levels[i]->flushCacheToMemory();
}

std::uint64_t
LevelStack::peekWord(mem::Addr addr) const
{
    const mem::Addr word_addr = addr & ~7ull;
    for (const auto &lvl : _levels) {
        if (lvl->tags().probe(word_addr).hit)
            return lvl->peekWord(word_addr);
    }
    return _mem.readWord(word_addr);
}

void
LevelStack::resetStats()
{
    for (auto &lvl : _levels)
        lvl->resetStats();
}

void
LevelStack::registerStats(stats::Registry &reg)
{
    for (std::size_t i = 0; i < _levels.size(); ++i)
        _levels[i]->registerStats(reg, levelStatsPrefix(i));
}

double
LevelStack::dynamicEnergy() const
{
    double e = 0.0;
    for (const auto &lvl : _levels)
        e += lvl->dynamicEnergy();
    return e;
}

} // namespace c8t::core
