/**
 * @file
 * Tag-Buffer implementation.
 */

#include "core/tag_buffer.hh"

#include <cassert>

namespace c8t::core
{

TagBuffer::TagBuffer(std::uint32_t entries, std::uint32_t ways)
    : _entries(entries), _ways(ways), _store(entries)
{
    assert(entries >= 1 && ways >= 1);
    for (auto &e : _store)
        e.tags.assign(ways, 0);
}

TagProbe
TagBuffer::peek(std::uint32_t set, mem::Addr tag) const
{
    TagProbe r;
    for (std::uint32_t i = 0; i < _entries; ++i) {
        const Entry &e = _store[i];
        if (!e.valid || e.set != set)
            continue;
        r.setMatch = true;
        r.entry = i;
        for (std::uint32_t w = 0; w < _ways; ++w) {
            if (((e.validMask >> w) & 1) && e.tags[w] == tag) {
                r.tagMatch = true;
                r.way = w;
                break;
            }
        }
        break; // a set is buffered by at most one entry
    }
    return r;
}

TagProbe
TagBuffer::probe(std::uint32_t set, mem::Addr tag)
{
    ++_probes;
    const TagProbe r = peek(set, tag);
    if (r.setMatch)
        ++_setHits;
    if (r.tagMatch)
        ++_tagHits;
    return r;
}

void
TagBuffer::load(std::uint32_t e, std::uint32_t set,
                const mem::Addr *tags, std::uint64_t valid_mask)
{
    assert(e < _entries);
    Entry &entry = _store[e];
    entry.set = set;
    entry.valid = true;
    entry.dirty = false;
    entry.validMask = valid_mask;
    // Entry tag storage is pre-sized to the associativity at
    // construction; copying in place keeps load() allocation-free.
    entry.tags.assign(tags, tags + _ways);
    entry.lruStamp = ++_clock;
}

void
TagBuffer::invalidate(std::uint32_t e)
{
    assert(e < _entries);
    _store[e].valid = false;
    _store[e].dirty = false;
}

void
TagBuffer::invalidateAll()
{
    for (std::uint32_t e = 0; e < _entries; ++e)
        invalidate(e);
}

void
TagBuffer::touch(std::uint32_t e)
{
    assert(e < _entries);
    _store[e].lruStamp = ++_clock;
}

std::uint32_t
TagBuffer::victim() const
{
    std::uint32_t best = 0;
    bool found_valid = false;
    std::uint64_t oldest = 0;
    for (std::uint32_t i = 0; i < _entries; ++i) {
        const Entry &e = _store[i];
        if (!e.valid)
            return i;
        if (!found_valid || e.lruStamp < oldest) {
            best = i;
            oldest = e.lruStamp;
            found_valid = true;
        }
    }
    return best;
}

bool
TagBuffer::entryValid(std::uint32_t e) const
{
    assert(e < _entries);
    return _store[e].valid;
}

std::uint32_t
TagBuffer::entrySet(std::uint32_t e) const
{
    assert(e < _entries && _store[e].valid);
    return _store[e].set;
}

bool
TagBuffer::dirty(std::uint32_t e) const
{
    assert(e < _entries);
    return _store[e].dirty;
}

void
TagBuffer::setDirty(std::uint32_t e, bool d)
{
    assert(e < _entries);
    _store[e].dirty = d;
}

std::uint64_t
TagBuffer::storageBits(std::uint32_t set_index_bits,
                       std::uint32_t tag_bits) const
{
    // Per entry: set index + per-way (tag + valid) + dirty.
    const std::uint64_t per_entry =
        set_index_bits +
        static_cast<std::uint64_t>(_ways) * (tag_bits + 1) + 1;
    return per_entry * _entries;
}

void
TagBuffer::registerStats(stats::Registry &reg)
{
    reg.add(_probes);
    reg.add(_setHits);
    reg.add(_tagHits);
}

void
TagBuffer::resetCounters()
{
    _probes.reset();
    _setHits.reset();
    _tagHits.reset();
}

} // namespace c8t::core
