/**
 * @file
 * Tag-Buffer implementation (cold paths; the probe is in the header).
 */

#include "core/tag_buffer.hh"

#include <algorithm>
#include <cassert>

namespace c8t::core
{

TagBuffer::TagBuffer(std::uint32_t entries, std::uint32_t ways)
    : _entries(entries), _ways(ways),
      _simd(mem::simd::activeLevel()),
      _tags(static_cast<std::size_t>(entries) * ways, 0),
      _set(entries, 0), _valid(entries, 0), _dirty(entries, 0),
      _validMask(entries, 0), _lruStamp(entries, 0)
{
    assert(entries >= 1 && ways >= 1);
}

void
TagBuffer::load(std::uint32_t e, std::uint32_t set,
                const mem::Addr *tags, std::uint64_t valid_mask)
{
    assert(e < _entries);
    _set[e] = set;
    _valid[e] = 1;
    _dirty[e] = 0;
    _validMask[e] = valid_mask;
    // Entry tag storage is pre-sized to the associativity at
    // construction; copying in place keeps load() allocation-free.
    std::copy(tags, tags + _ways,
              _tags.begin() + static_cast<std::size_t>(e) * _ways);
    _lruStamp[e] = ++_clock;
}

void
TagBuffer::invalidateAll()
{
    for (std::uint32_t e = 0; e < _entries; ++e)
        invalidate(e);
}

std::uint64_t
TagBuffer::storageBits(std::uint32_t set_index_bits,
                       std::uint32_t tag_bits) const
{
    // Per entry: set index + per-way (tag + valid) + dirty.
    const std::uint64_t per_entry =
        set_index_bits +
        static_cast<std::uint64_t>(_ways) * (tag_bits + 1) + 1;
    return per_entry * _entries;
}

void
TagBuffer::registerStats(stats::Registry &reg, const std::string &prefix)
{
    reg.add(_probes, prefix);
    reg.add(_setHits, prefix);
    reg.add(_tagHits, prefix);
}

void
TagBuffer::resetCounters()
{
    _probes.reset();
    _setHits.reset();
    _tagHits.reset();
}

} // namespace c8t::core
