/**
 * @file
 * Static per-scheme cost traits.
 *
 * A compact, declarative statement of what each write scheme costs per
 * request class. The controller implements the dynamics; this table is
 * the single place where the *static* properties live, and the docs,
 * area bench and tests all read from it so prose and code cannot
 * drift apart.
 */

#ifndef C8T_CORE_POLICIES_HH
#define C8T_CORE_POLICIES_HH

#include <cstdint>

#include "core/write_scheme.hh"
#include "sram/ports.hh"

namespace c8t::core
{

/** Static cost/requirement traits of one write scheme. */
struct SchemeTraits
{
    /** Row reads per (non-grouped) demand write. */
    std::uint32_t rowReadsPerWrite = 0;

    /** Row writes per (non-grouped) demand write. */
    std::uint32_t rowWritesPerWrite = 1;

    /** Ports a demand write occupies. */
    sram::PortUse writePortUse = sram::PortUse::WritePort;

    /** Ports a write-back from the Set-Buffer occupies (grouping
     *  schemes only; the row image is already latched so no read
     *  phase is needed). */
    sram::PortUse writebackPortUse = sram::PortUse::WritePort;

    /** The scheme needs the Set-Buffer / Tag-Buffer pair. */
    bool needsGroupingBuffer = false;

    /** The scheme can serve reads from the Set-Buffer. */
    bool canBypassReads = false;

    /** The array must be non-interleaved (word-granular WWL). */
    bool requiresNonInterleaved = false;

    /** The array needs multi-bit-correcting ECC (no interleaving). */
    bool requiresMultiBitEcc = false;

    /** The cell type the scheme is defined for. */
    bool requiresEightT = true;
};

/** Look up the traits of @p s. */
SchemeTraits schemeTraits(WriteScheme s);

} // namespace c8t::core

#endif // C8T_CORE_POLICIES_HH
