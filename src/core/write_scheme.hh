/**
 * @file
 * The write-scheme taxonomy: the paper's two proposals plus every
 * baseline the paper discusses.
 */

#ifndef C8T_CORE_WRITE_SCHEME_HH
#define C8T_CORE_WRITE_SCHEME_HH

#include <cstdint>
#include <string>

namespace c8t::core
{

/**
 * How the L1 data array services writes.
 */
enum class WriteScheme : std::uint8_t {
    /**
     * Conventional 6T array: partial writes are safe (half-selected
     * cells tolerate the read-like bias), one array access per request.
     * The no-column-selection-problem reference point.
     */
    SixTDirect,

    /**
     * 8T array with Morita et al. read-modify-write: every write costs
     * a row read plus a row write and occupies both ports.
     */
    Rmw,

    /**
     * Park et al. local RMW: hierarchical read bit lines confine the
     * RMW's read phase to one sub-array, freeing the global read port;
     * access counts equal RMW, timing improves.
     */
    LocalRmw,

    /**
     * Chang et al. word-granular write word lines on a non-interleaved
     * array: partial writes are safe again (one access per write) at
     * the cost of multi-bit ECC and larger WWL drivers.
     */
    WordGranular,

    /**
     * This paper's Write Grouping: Set-Buffer + Tag-Buffer group
     * same-set writes into one RMW and elide silent groups.
     */
    WriteGrouping,

    /**
     * Write Grouping + Read Bypassing: additionally serves Tag-Buffer
     * read hits from the Set-Buffer.
     */
    WriteGroupingReadBypass,
};

/** Human readable scheme name ("6T", "RMW", "WG", "WG+RB", ...). */
const char *toString(WriteScheme s);

/** Parse a scheme name as printed by toString().
 *  @throws std::invalid_argument on unknown names. */
WriteScheme parseWriteScheme(const std::string &name);

/** True for the schemes that use the Set-Buffer/Tag-Buffer pair. */
bool usesGroupingBuffer(WriteScheme s);

/** True for the schemes whose writes require read-modify-write. */
bool usesRmw(WriteScheme s);

/** True when reads may be served from the Set-Buffer. */
bool bypassesReads(WriteScheme s);

/** Array access latencies (cycles) and the L1 miss penalty. */
struct LatencyParams
{
    /** Full row read (precharge + sense). */
    std::uint32_t rowReadCycles = 2;

    /** Full row write. */
    std::uint32_t rowWriteCycles = 2;

    /** Set-Buffer access (paper §5.5: less than the cache latency). */
    std::uint32_t setBufferCycles = 1;

    /** Demand miss penalty (next level round trip). */
    std::uint32_t missPenaltyCycles = 40;

    bool operator==(const LatencyParams &other) const = default;
};

} // namespace c8t::core

#endif // C8T_CORE_WRITE_SCHEME_HH
