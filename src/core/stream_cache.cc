/**
 * @file
 * StreamCache implementation.
 */

#include "core/stream_cache.hh"

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "obs/prof.hh"

namespace c8t::core
{

namespace
{

/** Fallback budget: 512 MiB holds every default-length figure sweep
 *  (25 profiles × 330 k accesses × 24 B ≈ 198 MiB) with headroom. */
constexpr std::size_t kDefaultBudgetBytes = 512ull << 20;

} // anonymous namespace

std::size_t
StreamCache::defaultByteBudget()
{
    static const std::size_t chosen = [] {
        const char *env = std::getenv("C8T_STREAM_CACHE_MB");
        if (!env)
            return kDefaultBudgetBytes;
        char *end = nullptr;
        errno = 0;
        const unsigned long long mb = std::strtoull(env, &end, 10);
        if (end == env || *end != '\0' || errno == ERANGE) {
            std::cerr << "stream-cache: ignoring invalid "
                         "C8T_STREAM_CACHE_MB=\""
                      << env << "\" (want a non-negative integer)\n";
            return kDefaultBudgetBytes;
        }
        return static_cast<std::size_t>(mb) << 20;
    }();
    return chosen;
}

StreamCache::StreamCache(std::size_t byte_budget)
    : _byteBudget(byte_budget)
{
}

std::size_t
StreamCache::byteBudget() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _byteBudget;
}

StreamCache::Stats
StreamCache::stats() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    Stats s = _stats;
    s.entries = _entries.size();
    s.bytes = _bytes;
    return s;
}

void
StreamCache::clear()
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
    _bytes = 0;
}

void
StreamCache::setByteBudget(std::size_t bytes)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _byteBudget = bytes;
    if (_byteBudget == 0) {
        _entries.clear();
        _bytes = 0;
    } else {
        evictToFitLocked();
    }
}

void
StreamCache::evictToFitLocked()
{
    // Recompute instead of tracking deltas: the map is tiny (one entry
    // per distinct workload) and recomputing makes the accounting
    // immune to entries that were cleared while a generation was in
    // flight.
    _bytes = 0;
    for (const auto &[key, entry] : _entries) {
        if (entry->buffer)
            _bytes += entry->buffer->size() * sizeof(trace::MemAccess);
    }

    while (_bytes > _byteBudget) {
        // Evict the least-recently-used filled entry. Unfilled entries
        // (generation in progress elsewhere) hold no bytes.
        auto victim = _entries.end();
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (!it->second->buffer)
                continue;
            if (victim == _entries.end() ||
                it->second->lastUse < victim->second->lastUse) {
                victim = it;
            }
        }
        if (victim == _entries.end())
            break;
        _bytes -=
            victim->second->buffer->size() * sizeof(trace::MemAccess);
        _entries.erase(victim);
        ++_stats.evictions;
    }
}

std::unique_ptr<trace::AccessGenerator>
StreamCache::acquire(const std::string &key, std::uint64_t accesses,
                     const GeneratorFactory &make)
{
    if (key.empty())
        throw std::invalid_argument("StreamCache: empty key");
    if (!make)
        throw std::invalid_argument("StreamCache: null factory");

    std::shared_ptr<Entry> entry;
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        // Streams that alone exceed the budget are never buffered, so
        // the cap bounds transient memory too, not just residency.
        if (_byteBudget == 0 ||
            accesses > _byteBudget / sizeof(trace::MemAccess)) {
            ++_stats.bypasses;
        } else {
            auto &slot = _entries[key];
            if (!slot)
                slot = std::make_shared<Entry>();
            entry = slot;
            entry->lastUse = ++_useCounter;
        }
    }
    if (!entry)
        return make();

    // Per-entry lock: concurrent first requests for one workload
    // generate it exactly once; requests for other keys proceed in
    // parallel.
    std::unique_lock<std::mutex> fill(entry->fillMutex);
    if (entry->buffer &&
        (entry->buffer->size() >= accesses || entry->exhausted)) {
        trace::ReplayGenerator::Buffer buffer = entry->buffer;
        std::string name = entry->name;
        fill.unlock();
        const std::lock_guard<std::mutex> lock(_mutex);
        ++_stats.hits;
        return std::make_unique<trace::ReplayGenerator>(std::move(name),
                                                        std::move(buffer));
    }

    // Miss (or a shorter buffer than this request needs): build the
    // workload and capture the whole requested window in one pass.
    // This is the bulk of the process's stream-generation time, so it
    // carries the StreamGenerate phase scope (replays out of the
    // buffer are near-free and show up under Replay instead).
    const obs::prof::ScopedPhase gen_scope(
        obs::prof::Phase::StreamGenerate);
    const std::unique_ptr<trace::AccessGenerator> gen = make();
    if (!gen)
        throw std::invalid_argument("StreamCache: factory returned null");
    gen->reset();

    auto buf = std::make_shared<std::vector<trace::MemAccess>>(
        static_cast<std::size_t>(accesses));
    const std::size_t filled =
        gen->fillChunk(buf->data(), static_cast<std::size_t>(accesses));
    const bool exhausted = filled < accesses;
    buf->resize(filled);
    buf->shrink_to_fit();

    entry->buffer = std::move(buf);
    entry->name = gen->name();
    entry->exhausted = exhausted;
    trace::ReplayGenerator::Buffer buffer = entry->buffer;
    std::string name = entry->name;
    fill.unlock();

    {
        const std::lock_guard<std::mutex> lock(_mutex);
        ++_stats.misses;
        evictToFitLocked();
    }
    return std::make_unique<trace::ReplayGenerator>(std::move(name),
                                                    std::move(buffer));
}

StreamCache &
globalStreamCache()
{
    static StreamCache cache;
    return cache;
}

} // namespace c8t::core
