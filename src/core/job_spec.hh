/**
 * @file
 * The shared job specification: one parsed, validated description of
 * a sweep / Vdd-sweep / explore request, used identically by the
 * c8tsim command line and the c8td socket protocol (DESIGN.md §13).
 *
 * Both front ends reduce their input to a JobSpec and hand it to
 * app::runJobSpec, so the two paths cannot drift: the same defaults,
 * the same validation, the same execution translation, and therefore
 * byte-identical result documents for the same spec.
 *
 * The JSON form (the c8td request payload) is parsed strictly: an
 * unknown key anywhere in the document is an error naming the key,
 * never silently ignored — a client typo ("acceses") must fail loudly
 * instead of simulating the default. Checkpointing knobs
 * (--checkpoint-dir, --explore-max-shards) are deliberately absent
 * from the JSON schema: they name server-side files and interrupt
 * semantics that only make sense for a one-shot CLI process.
 */

#ifndef C8T_CORE_JOB_SPEC_HH
#define C8T_CORE_JOB_SPEC_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/write_scheme.hh"
#include "mem/cache.hh"
#include "mem/replacement.hh"

namespace c8t::core
{

/**
 * Minimal recursive JSON value, just rich enough for the request /
 * response documents the daemon exchanges. Objects preserve key
 * order; numbers are kept as doubles plus the raw token so integer
 * consumers can reject fractional input.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string raw;    ///< number token as written (exactness checks)
    std::string string; ///< string payload
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Member lookup (objects only); nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
};

/**
 * Parse @p text as one JSON document.
 * @throws std::invalid_argument (with byte offset) on malformed
 *         input, trailing garbage or duplicate object keys.
 */
JsonValue parseJson(const std::string &text);

/** What a job asks the engine to do. */
enum class JobKind : std::uint8_t {
    Run,      ///< one multi-scheme run (the plain c8tsim table)
    VddSweep, ///< runVddSweep over the default/narrowed grid
    Explore,  ///< runExplore over the spec's axes
};

/** "run" / "vdd_sweep" / "explore". */
const char *toString(JobKind k);

/** Parse a kind name. @throws std::invalid_argument. */
JobKind parseJobKind(const std::string &name);

/**
 * One lower cache level of a hierarchy job ([0] = L2, DESIGN.md §14).
 * JSON form: an object in the "levels" array with the strict key set
 * {"size_kb", "ways", "block", "repl", "scheme", "vdd"}.
 */
struct LevelSpec
{
    /** Capacity (KiB). */
    std::uint64_t sizeKb = 256;

    /** Associativity. */
    std::uint32_t ways = 8;

    /** Block size (bytes); 0 = inherit the top level's block (the
     *  only legal choice once resolved — LevelStack enforces it). */
    std::uint32_t blockBytes = 0;

    /** Replacement policy. */
    mem::ReplKind repl = mem::ReplKind::Lru;

    /** Write scheme of this level. */
    WriteScheme scheme = WriteScheme::Rmw;

    /** Supply operating point (V; 0 = nominal/detached). */
    double vdd = 0.0;

    bool operator==(const LevelSpec &other) const = default;
};

/** One sweep-service job, CLI- and wire-shared. */
struct JobSpec
{
    JobKind kind = JobKind::Run;

    /** Workload specifier (spec:/kernel:/trace:, app::makeWorkload). */
    std::string workload = "spec:gcc";

    /** Measured accesses. */
    std::uint64_t accesses = 1'000'000;

    /** Warm-up accesses; 0 = accesses/10. */
    std::uint64_t warmup = 0;

    /** Cache shape. */
    mem::CacheConfig cache;

    /** Schemes; empty = kind default (run: RMW + WG+RB, vdd_sweep /
     *  explore: the voltage-story four). */
    std::vector<WriteScheme> schemes;

    /** Set-Buffer entries. */
    std::uint32_t bufferEntries = 1;

    /** Silent-store detection. */
    bool silentDetection = true;

    /** Lower cache levels, nearest first ([0] = L2); empty = the
     *  classic single-level run. JSON key "levels"; the retired
     *  tags-only shim's "l2_kb" key is accepted as a deprecated alias
     *  for a default L2 of that capacity. */
    std::vector<LevelSpec> levels;

    /** Operating point (V; 0 = nominal/detached). For a vdd_sweep a
     *  non-zero value narrows the grid to this single point. */
    double vdd = 0.0;

    /** Explore axes (kind Explore only). */
    std::vector<std::string> exploreWorkloads; ///< empty = all SPEC
    std::vector<std::uint64_t> exploreSizesKb = {16, 32, 64, 128};
    std::vector<std::uint32_t> exploreWays = {2, 4, 8};
    std::vector<std::uint32_t> exploreBlocks = {32, 64};
    std::vector<mem::ReplKind> exploreRepls = {mem::ReplKind::Lru};
    std::vector<double> exploreVdd; ///< empty = nominal-only
    std::vector<std::uint64_t> exploreL2SizesKb; ///< empty = no L2 axis
    std::size_t shardCells = 8;

    /** CLI-only (not in the JSON schema, see file comment). */
    std::string checkpointDir;
    std::uint64_t exploreMaxShards = 0;

    /** Effective warm-up length. */
    std::uint64_t effectiveWarmup() const
    {
        return warmup ? warmup : accesses / 10;
    }

    /** Scheme set with the kind default applied. */
    std::vector<WriteScheme> effectiveSchemes() const;

    /** Shape/range validation shared by both front ends.
     *  @throws std::invalid_argument. */
    void validate() const;

    /**
     * Parse the strict JSON form. Every known key is optional except
     * "kind"; any unknown key (top level, "cache" or "explore"
     * sub-object) throws naming the key.
     */
    static JobSpec fromJson(const JsonValue &v);

    /** Convenience: parseJson + fromJson. */
    static JobSpec fromJsonText(const std::string &text);

    /**
     * Serialize to the canonical JSON request form (round-trips
     * through fromJson to an equivalent spec). Deterministic key
     * order, so equal specs produce equal bytes — the daemon keys its
     * duplicate-request log on this.
     */
    std::string toJson() const;
};

} // namespace c8t::core

#endif // C8T_CORE_JOB_SPEC_HH
