/**
 * @file
 * Parallel sweep engine implementation.
 */

#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/stream_cache.hh"
#include "core/worker_pool.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "stats/json.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace c8t::core
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Microseconds from @p t0 to @p t. */
double
usSince(Clock::time_point t0, Clock::time_point t)
{
    return std::chrono::duration<double, std::micro>(t - t0).count();
}

/** Execute one job start to finish (worker-thread body). */
std::vector<SchemeRunResult>
executeJob(const SweepJob &job, const RunConfig &rc)
{
    if (!job.makeGenerator)
        throw std::invalid_argument("SweepJob: no generator factory");
    if (job.configs.empty())
        throw std::invalid_argument("SweepJob: no configs");

    std::unique_ptr<trace::AccessGenerator> gen;
    {
        // Covers cache-hit buffer handoff and lock waits too; the
        // generation proper (inside acquire, or lazily in fillChunk)
        // carries its own nested scope of the same phase.
        const obs::prof::ScopedPhase gen_scope(
            obs::prof::Phase::StreamGenerate);
        if (!job.streamKey.empty()) {
            gen = globalStreamCache().acquire(
                job.streamKey, rc.warmupAccesses + rc.measureAccesses,
                job.makeGenerator);
        } else {
            gen = job.makeGenerator();
        }
    }
    MultiSchemeRunner runner(job.configs);
    if (job.prepare)
        job.prepare(runner);
    std::vector<SchemeRunResult> results = runner.run(*gen, rc);
    if (job.inspect)
        job.inspect(runner);
    return results;
}

/** One job's wall-clock span, for the Chrome trace and profiling. */
struct JobSpan
{
    double startUs = 0.0;
    double endUs = 0.0;
    unsigned worker = 0;
    std::size_t configRuns = 0;
    double vdd = 0.0;
    obs::prof::PhaseTimes phases; ///< self-times, profiler on only
};

/** Copy core StreamCache counters into the obs push-model mirror. */
obs::Metrics::StreamCacheStats
streamCacheSnapshot()
{
    const StreamCache::Stats s = globalStreamCache().stats();
    obs::Metrics::StreamCacheStats out;
    out.hits = s.hits;
    out.misses = s.misses;
    out.bypasses = s.bypasses;
    out.evictions = s.evictions;
    out.entries = s.entries;
    out.bytes = s.bytes;
    return out;
}

/**
 * Shared heartbeat state. Workers call noteJobDone() after every job;
 * the progress gauges (jobs done, jobs/s, ETA, queue depth) and the
 * StreamCache mirror in obs::Metrics are refreshed every time, and a
 * throttled progress line (always including the final one) goes to
 * stderr when enabled.
 */
class Heartbeat
{
  public:
    Heartbeat(bool enabled, const std::string &label, std::size_t jobs,
              std::uint64_t accesses_per_job, unsigned workers,
              Clock::time_point t0)
        : _enabled(enabled), _label(label), _jobs(jobs),
          _accessesPerJob(accesses_per_job), _workers(workers), _t0(t0)
    {
    }

    void noteJobDone()
    {
        const std::size_t done =
            _done.fetch_add(1, std::memory_order_relaxed) + 1;
        const auto now = Clock::now();
        const double elapsed =
            std::chrono::duration<double>(now - _t0).count();
        const double jobs_per_s =
            elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
        const double eta =
            done ? elapsed * static_cast<double>(_jobs - done) /
                       static_cast<double>(done)
                 : 0.0;

        // Keep the process-wide gauges fresh even with the stderr
        // line off: a --metrics-out / C8T_METRICS consumer watching
        // the exposition file sees live progress either way.
        obs::Metrics::SweepSnapshot snap;
        snap.jobsDone = done;
        snap.jobsTotal = _jobs;
        snap.queueDepth = _jobs - done;
        snap.jobsPerSec = jobs_per_s;
        snap.etaSeconds = eta;
        snap.workers = _workers;
        obs::globalMetrics().noteSweep(snap);
        const obs::Metrics::StreamCacheStats cache =
            streamCacheSnapshot();
        obs::globalMetrics().setStreamCache(cache);

        if (!_enabled)
            return;
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            // Throttle to ~2 lines/s, but always print the last job.
            if (done != _jobs && now - _lastPrint < _minGap)
                return;
            _lastPrint = now;
        }

        const double simulated = static_cast<double>(done) *
                                 static_cast<double>(_accessesPerJob);
        const double rate = elapsed > 0.0 ? simulated / elapsed : 0.0;

        char line[256];
        std::snprintf(line, sizeof(line),
                      "[sweep %s] %zu/%zu jobs  %.2fs elapsed  "
                      "%.2fM acc/s  %.2f jobs/s  ETA %.0fs  "
                      "cache-hit %.0f%%\n",
                      _label.c_str(), done, _jobs, elapsed, rate / 1e6,
                      jobs_per_s, eta, 100.0 * cache.hitRate());
        std::cerr << line;
    }

  private:
    const bool _enabled;
    const std::string &_label;
    const std::size_t _jobs;
    const std::uint64_t _accessesPerJob;
    const unsigned _workers;
    const Clock::time_point _t0;
    std::atomic<std::size_t> _done{0};
    std::mutex _mutex;
    Clock::time_point _lastPrint{};
    static constexpr std::chrono::milliseconds _minGap{500};
};

/**
 * Append one JSON-lines perf record when C8T_BENCH_JSON is set.
 * @p phases, when non-null, adds a "phases" block (per-phase self
 * time in seconds, plus their total) so tools/bench_diff.sh can
 * attribute a throughput change to the phase that moved.
 */
void
emitBenchJson(const std::string &label,
              const std::vector<std::vector<SchemeRunResult>> &results,
              const RunConfig &rc, unsigned workers, double wall_seconds,
              const obs::prof::PhaseTimes *phases)
{
    const char *path = std::getenv("C8T_BENCH_JSON");
    if (!path || !*path)
        return;

    std::uint64_t config_runs = 0;
    for (const auto &job : results)
        config_runs += job.size();
    const double simulated =
        static_cast<double>(config_runs) *
        static_cast<double>(rc.warmupAccesses + rc.measureAccesses);

    std::ofstream os(path, std::ios::app);
    if (!os) {
        // Mirror the bench C8T_BENCH_ACCESSES notice style: warn once
        // instead of dropping every perf record silently.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            std::cerr << "sweep: cannot open C8T_BENCH_JSON=\"" << path
                      << "\" for append; perf records disabled\n";
        }
        return;
    }
    os << "{\"kind\":\"sweep\",\"label\":\"" << stats::jsonEscape(label)
       << "\""
       << ",\"jobs\":" << results.size()
       << ",\"workers\":" << workers
       << ",\"config_runs\":" << config_runs
       << ",\"warmup_accesses\":" << rc.warmupAccesses
       << ",\"measure_accesses\":" << rc.measureAccesses
       << ",\"simulated_accesses\":" << static_cast<std::uint64_t>(simulated)
       << ",\"wall_seconds\":" << wall_seconds
       << ",\"accesses_per_sec\":"
       << (wall_seconds > 0.0 ? simulated / wall_seconds : 0.0);
    if (phases) {
        os << ",\"phases\":{";
        for (std::size_t i = 0; i < obs::prof::kNumPhases; ++i) {
            os << "\""
               << obs::prof::toString(static_cast<obs::prof::Phase>(i))
               << "\":";
            stats::jsonNumber(os, static_cast<double>(phases->ns[i]) *
                                      1e-9);
            os << ",";
        }
        os << "\"total\":";
        stats::jsonNumber(os,
                          static_cast<double>(phases->totalNs()) * 1e-9);
        os << "}";
    }
    os << "}\n";
}

/**
 * Emit one complete span per job onto the worker's track of the
 * process-global Chrome trace (no-op when tracing is off).
 */
void
emitTraceSpans(const std::string &label,
               const std::vector<JobSpan> &spans, unsigned pool)
{
    obs::ChromeTraceWriter *trace = obs::globalTrace();
    if (!trace)
        return;

    constexpr int pid = 1; // the sweep's process track
    trace->processName(pid, "sweep");
    for (unsigned w = 0; w < pool; ++w) {
        trace->threadName(pid, static_cast<int>(w) + 1,
                          "worker " + std::to_string(w));
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const JobSpan &s = spans[i];
        std::ostringstream args;
        args << "{\"job\":" << i << ",\"config_runs\":" << s.configRuns;
        if (s.vdd > 0.0)
            args << ",\"vdd\":" << s.vdd;
        args << '}';
        trace->completeEvent(label + "/job" + std::to_string(i), "sweep",
                             pid, static_cast<int>(s.worker) + 1,
                             s.startUs, s.endUs - s.startUs, args.str());

        // Phase sub-spans (profiler on only): each job's per-phase
        // self times, laid out back-to-back from the job's start so
        // they nest under its span. The layout is an aggregate — a
        // phase's real occurrences interleave within the job — but
        // the proportions and totals are exact.
        if (s.phases.empty())
            continue;
        double cursor = s.startUs;
        for (std::size_t p = 0; p < obs::prof::kNumPhases; ++p) {
            const double dur_us =
                static_cast<double>(s.phases.ns[p]) / 1000.0;
            if (dur_us <= 0.0)
                continue;
            trace->completeEvent(
                std::string("phase:") +
                    obs::prof::toString(static_cast<obs::prof::Phase>(p)),
                "phase", pid, static_cast<int>(s.worker) + 1, cursor,
                dur_us);
            cursor += dur_us;
        }
    }
}

} // anonymous namespace

unsigned
ParallelSweeper::defaultWorkers()
{
    if (const char *env = std::getenv("C8T_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 4096)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

bool
ParallelSweeper::defaultProgress()
{
    const char *env = std::getenv("C8T_PROGRESS");
    return env && *env && std::string(env) != "0";
}

ParallelSweeper::ParallelSweeper(unsigned workers)
    : _workers(workers ? workers : defaultWorkers())
{
}

std::vector<std::vector<SchemeRunResult>>
ParallelSweeper::run(const std::vector<SweepJob> &jobs, const RunConfig &rc,
                     const std::string &label) const
{
    const auto t0 = Clock::now();
    const bool prof_on = obs::prof::enabled();
    if (prof_on) {
        // Flush whatever phase time this thread accumulated before
        // the sweep into the process rollup, so the inline path's
        // first per-job delta below starts from zero.
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
    }
    std::vector<std::vector<SchemeRunResult>> results(jobs.size());
    std::vector<JobSpan> spans(jobs.size());

    std::uint64_t accesses_per_job = 0;
    for (const SweepJob &job : jobs) {
        accesses_per_job = std::max<std::uint64_t>(
            accesses_per_job,
            job.configs.size() * (rc.warmupAccesses + rc.measureAccesses));
    }
    const unsigned pool =
        static_cast<unsigned>(std::min<std::size_t>(_workers, jobs.size()));

    // When a process-wide SweepPool is installed (the c8td daemon),
    // route the jobs through it instead of spawning a private thread
    // team: all concurrent sweeps then share one team with per-client
    // fairness. Submissions from a pool worker (nested sweeps) fall
    // back to the inline/private paths below via runBatch's inline
    // guard — but we keep them off the shared path entirely so their
    // span worker indices stay consistent.
    SweepPool *shared = globalSweepPool();
    const bool use_shared = shared && !SweepPool::onWorkerThread();
    const unsigned tracks =
        use_shared ? shared->workers() : (pool ? pool : 1);

    Heartbeat heartbeat(_progress, label, jobs.size(), accesses_per_job,
                        tracks, t0);

    const auto run_one = [&](std::size_t i, unsigned worker) {
        spans[i].worker = worker;
        spans[i].vdd = jobs[i].vdd;
        spans[i].startUs = usSince(t0, Clock::now());
        results[i] = executeJob(jobs[i], rc);
        spans[i].endUs = usSince(t0, Clock::now());
        spans[i].configRuns = results[i].size();
        if (prof_on) {
            // Nothing else ran on this thread since the previous
            // take, so the thread-local delta is exactly this job's.
            spans[i].phases = obs::prof::takeThreadTimes();
            obs::globalMetrics().recordJobWallNs(
                static_cast<std::uint64_t>(
                    (spans[i].endUs - spans[i].startUs) * 1000.0));
        }
        heartbeat.noteJobDone();
    };

    if (use_shared) {
        std::vector<SweepPool::Task> tasks;
        tasks.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            tasks.push_back([&run_one, i](unsigned w) { run_one(i, w); });
        // Rethrows the first job error; throws JobCancelled when this
        // thread's client slot was cancelled (client disconnect).
        shared->runBatch(SweepPool::currentClient(), std::move(tasks));
    } else if (pool <= 1) {
        // Inline serial path: reference order, no thread overhead.
        for (std::size_t i = 0; i < jobs.size(); ++i)
            run_one(i, 0);
    } else {
        std::atomic<std::size_t> cursor{0};
        std::mutex error_mutex;
        std::exception_ptr first_error;

        const auto worker = [&](unsigned w) {
            for (;;) {
                const std::size_t i =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size())
                    return;
                try {
                    run_one(i, w);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (unsigned t = 0; t < pool; ++t)
            threads.emplace_back(worker, t);
        for (std::thread &t : threads)
            t.join();

        if (first_error)
            std::rethrow_exception(first_error);
    }

    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    {
        // Trace-span emission and the metrics rewrite are in-run
        // serialization work; scope them so the perf record below
        // attributes them instead of reporting serialize:0. Both
        // no-op (and cost nothing) when their sink is unset.
        const obs::prof::ScopedPhase serialize_scope(
            obs::prof::Phase::Serialize);
        emitTraceSpans(label, spans, tracks);
        obs::writeGlobalMetrics();
    }

    obs::prof::PhaseTimes run_phases;
    if (prof_on) {
        // The main thread contributed the serialize scope above (per
        // job, run_one already flushed the workers' thread-locals).
        run_phases.add(obs::prof::takeThreadTimes());
        std::vector<double> busy(tracks, 0.0);
        std::vector<std::uint64_t> worker_jobs(tracks, 0);
        for (const JobSpan &s : spans) {
            run_phases.add(s.phases);
            busy[s.worker] += (s.endUs - s.startUs) * 1e-6;
            ++worker_jobs[s.worker];
        }
        obs::globalMetrics().addPhaseTimes(run_phases);
        for (unsigned w = 0; w < tracks; ++w) {
            obs::globalMetrics().noteWorker(
                w, busy[w], std::max(0.0, wall - busy[w]),
                worker_jobs[w]);
        }
    }

    if (_recordBench) {
        emitBenchJson(label, results, rc, tracks, wall,
                      prof_on ? &run_phases : nullptr);
    }
    // Keep the exposition file fresh after every run (no-op when no
    // metrics path is configured); this rewrite includes the phase
    // fold above, the scoped one inside the record does not.
    obs::writeGlobalMetrics();
    return results;
}

std::vector<SweepJob>
specSweepJobs(const mem::CacheConfig &cache,
              const std::vector<WriteScheme> &schemes)
{
    std::vector<SweepJob> jobs;
    const auto &profiles = trace::specProfiles();
    jobs.reserve(profiles.size());
    for (const trace::StreamParams &p : profiles) {
        SweepJob job;
        job.makeGenerator = [p]() -> std::unique_ptr<trace::AccessGenerator> {
            return std::make_unique<trace::MarkovStream>(p);
        };
        // The signature ignores the cache/scheme configuration, so the
        // same profile swept over several geometries (fig11) replays
        // one shared buffer instead of regenerating per sweep.
        job.streamKey = trace::streamSignature(p);
        job.configs.reserve(schemes.size());
        for (WriteScheme s : schemes) {
            ControllerConfig c;
            c.cache = cache;
            c.scheme = s;
            job.configs.push_back(c);
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace c8t::core
