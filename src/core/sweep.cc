/**
 * @file
 * Parallel sweep engine implementation.
 */

#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace c8t::core
{

namespace
{

/** Execute one job start to finish (worker-thread body). */
std::vector<SchemeRunResult>
executeJob(const SweepJob &job, const RunConfig &rc)
{
    if (!job.makeGenerator)
        throw std::invalid_argument("SweepJob: no generator factory");
    if (job.configs.empty())
        throw std::invalid_argument("SweepJob: no configs");

    const std::unique_ptr<trace::AccessGenerator> gen = job.makeGenerator();
    MultiSchemeRunner runner(job.configs);
    std::vector<SchemeRunResult> results = runner.run(*gen, rc);
    if (job.inspect)
        job.inspect(runner);
    return results;
}

/** Append one JSON-lines perf record when C8T_BENCH_JSON is set. */
void
emitBenchJson(const std::string &label,
              const std::vector<std::vector<SchemeRunResult>> &results,
              const RunConfig &rc, unsigned workers, double wall_seconds)
{
    const char *path = std::getenv("C8T_BENCH_JSON");
    if (!path || !*path)
        return;

    std::uint64_t config_runs = 0;
    for (const auto &job : results)
        config_runs += job.size();
    const double simulated =
        static_cast<double>(config_runs) *
        static_cast<double>(rc.warmupAccesses + rc.measureAccesses);

    std::ofstream os(path, std::ios::app);
    if (!os)
        return;
    os << "{\"kind\":\"sweep\",\"label\":\"" << label << "\""
       << ",\"jobs\":" << results.size()
       << ",\"workers\":" << workers
       << ",\"config_runs\":" << config_runs
       << ",\"warmup_accesses\":" << rc.warmupAccesses
       << ",\"measure_accesses\":" << rc.measureAccesses
       << ",\"simulated_accesses\":" << static_cast<std::uint64_t>(simulated)
       << ",\"wall_seconds\":" << wall_seconds
       << ",\"accesses_per_sec\":"
       << (wall_seconds > 0.0 ? simulated / wall_seconds : 0.0)
       << "}\n";
}

} // anonymous namespace

unsigned
ParallelSweeper::defaultWorkers()
{
    if (const char *env = std::getenv("C8T_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 4096)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ParallelSweeper::ParallelSweeper(unsigned workers)
    : _workers(workers ? workers : defaultWorkers())
{
}

std::vector<std::vector<SchemeRunResult>>
ParallelSweeper::run(const std::vector<SweepJob> &jobs, const RunConfig &rc,
                     const std::string &label) const
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::vector<SchemeRunResult>> results(jobs.size());

    const unsigned pool =
        static_cast<unsigned>(std::min<std::size_t>(_workers, jobs.size()));

    if (pool <= 1) {
        // Inline serial path: reference order, no thread overhead.
        for (std::size_t i = 0; i < jobs.size(); ++i)
            results[i] = executeJob(jobs[i], rc);
    } else {
        std::atomic<std::size_t> cursor{0};
        std::mutex error_mutex;
        std::exception_ptr first_error;

        const auto worker = [&]() {
            for (;;) {
                const std::size_t i =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size())
                    return;
                try {
                    results[i] = executeJob(jobs[i], rc);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (unsigned t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();

        if (first_error)
            std::rethrow_exception(first_error);
    }

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    emitBenchJson(label, results, rc, pool ? pool : 1, wall);
    return results;
}

std::vector<SweepJob>
specSweepJobs(const mem::CacheConfig &cache,
              const std::vector<WriteScheme> &schemes)
{
    std::vector<SweepJob> jobs;
    const auto &profiles = trace::specProfiles();
    jobs.reserve(profiles.size());
    for (const trace::StreamParams &p : profiles) {
        SweepJob job;
        job.makeGenerator = [p]() -> std::unique_ptr<trace::AccessGenerator> {
            return std::make_unique<trace::MarkovStream>(p);
        };
        job.configs.reserve(schemes.size());
        for (WriteScheme s : schemes) {
            ControllerConfig c;
            c.cache = cache;
            c.scheme = s;
            job.configs.push_back(c);
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace c8t::core
