/**
 * @file
 * The Set-Buffer: the datapath buffer of the paper's Figure 6a, sized
 * to one cache set (one SRAM row), generalised to a small number of
 * entries (one per Tag-Buffer entry).
 *
 * The buffer sits between the column multiplexer and the write
 * drivers: it is filled by a row read, updated in place by write
 * requests (which is where silent stores are detected by comparison),
 * and drained by a single full-row write-back.
 */

#ifndef C8T_CORE_SET_BUFFER_HH
#define C8T_CORE_SET_BUFFER_HH

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "sram/array.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"

namespace c8t::core
{

/**
 * Data storage for the grouping buffer entries.
 */
class SetBuffer
{
  public:
    /**
     * @param entries   Number of entries (paper: 1).
     * @param row_bytes Bytes per entry (= one cache set).
     */
    SetBuffer(std::uint32_t entries, std::uint32_t row_bytes);

    /** Fill entry @p e from a row image (a row read's result). */
    void fill(std::uint32_t e, const sram::RowData &row);

    /**
     * Merge @p len bytes at @p offset into entry @p e, comparing
     * against the previous contents — the silent-store check the
     * proposed hardware performs with comparators on the latch inputs.
     *
     * Inline with a whole-word fast path: this runs once per write
     * under the grouping schemes, and the dominant request size is the
     * full 8-byte word, where the fixed-size compare/copy compiles to
     * two register moves instead of a libc call.
     *
     * @return True when any byte changed (i.e. the write was NOT
     *         silent).
     */
    bool updateBytes(std::uint32_t e, std::uint32_t offset,
                     const std::uint8_t *src, std::size_t len)
    {
        assert(e < _entries);
        assert(offset + len <= _rowBytes);
        ++_updates;

        std::uint8_t *dst = _rows[e].data() + offset;
        const bool changed = len == 8
                                 ? __builtin_memcmp(dst, src, 8) != 0
                                 : std::memcmp(dst, src, len) != 0;
        if (changed) {
            if (len == 8)
                __builtin_memcpy(dst, src, 8);
            else
                std::memcpy(dst, src, len);
        } else {
            ++_silentUpdates;
        }
        return changed;
    }

    /** Read @p len bytes at @p offset from entry @p e. Inline: runs
     *  once per bypassed read under WG+RB. */
    void readBytes(std::uint32_t e, std::uint32_t offset,
                   std::uint8_t *dst, std::size_t len) const
    {
        assert(e < _entries);
        assert(offset + len <= _rowBytes);
        ++_reads;
        if (len == 8)
            __builtin_memcpy(dst, _rows[e].data() + offset, 8);
        else
            std::memcpy(dst, _rows[e].data() + offset, len);
    }

    /** Whole row image of entry @p e (for write-back). */
    const sram::RowData &row(std::uint32_t e) const;

    /** Entry count. */
    std::uint32_t entries() const { return _entries; }

    /** Bytes per entry. */
    std::uint32_t rowBytes() const { return _rowBytes; }

    /** Buffer fills (row loads). */
    std::uint64_t fills() const { return _fills.value(); }

    /** In-place merges. */
    std::uint64_t updates() const { return _updates.value(); }

    /** Merges whose data matched (silent stores caught). */
    std::uint64_t silentUpdates() const { return _silentUpdates.value(); }

    /** Buffer read accesses (bypassed reads). */
    std::uint64_t reads() const { return _reads.value(); }

    /** Reset statistics (contents untouched). */
    void resetCounters();

    /** Register the buffer counters with @p reg. */
    void registerStats(stats::Registry &reg,
                       const std::string &prefix = std::string());

  private:
    std::uint32_t _entries;
    std::uint32_t _rowBytes;
    std::vector<sram::RowData> _rows;

    stats::Counter _fills{"setbuf.fills", "Set-Buffer row loads"};
    stats::Counter _updates{"setbuf.updates", "in-place merges"};
    stats::Counter _silentUpdates{"setbuf.silent_updates",
                                  "merges detected as silent"};
    /** Mutable: reads are logically const but still counted. */
    mutable stats::Counter _reads{"setbuf.reads", "buffer read accesses"};
};

} // namespace c8t::core

#endif // C8T_CORE_SET_BUFFER_HH
