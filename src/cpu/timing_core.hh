/**
 * @file
 * A simple in-order timing core for the paper's §5.5 performance
 * discussion.
 *
 * Model: one instruction issues per cycle. Non-memory instructions
 * never stall. Loads are on the critical path: a read whose L1 latency
 * exceeds the pipelined load-to-use slack stalls the core for the
 * difference (so WG+RB's 1-cycle Set-Buffer hits turn into fewer stall
 * cycles, and RMW's port contention turns into more). Stores retire
 * through the write path off the critical path, exactly the paper's
 * argument for why WG's write latency is tolerable.
 */

#ifndef C8T_CPU_TIMING_CORE_HH
#define C8T_CPU_TIMING_CORE_HH

#include <cstdint>

#include "core/controller.hh"
#include "trace/access.hh"

namespace c8t::cpu
{

/** Core timing parameters. */
struct CoreParams
{
    /** L1 read cycles fully hidden by the pipeline (load-to-use
     *  slack). A read costing more than this stalls the difference. */
    std::uint32_t loadToUseSlack = 1;
};

/** Result of a timed run. */
struct TimingResult
{
    /** Instructions executed (memory + non-memory). */
    std::uint64_t instructions = 0;

    /** Total cycles: base issue cycles + read stalls. */
    std::uint64_t cycles = 0;

    /** Cycles lost to read latency beyond the load-to-use slack. */
    std::uint64_t readStallCycles = 0;

    /** Cycles per instruction. */
    double cpi() const
    {
        return instructions == 0
                   ? 0.0
                   : static_cast<double>(cycles) / instructions;
    }

    /** Instructions per cycle. */
    double ipc() const
    {
        return cycles == 0
                   ? 0.0
                   : static_cast<double>(instructions) / cycles;
    }
};

/**
 * The in-order core: pulls accesses from a generator, issues them to a
 * cache controller and accounts stalls.
 */
class TimingCore
{
  public:
    /**
     * @param params Core parameters.
     * @param ctrl   The L1 data cache (must outlive the core).
     */
    TimingCore(CoreParams params, core::CacheController &ctrl);

    /**
     * Execute @p accesses memory accesses (plus their instruction
     * gaps) from @p gen.
     */
    TimingResult run(trace::AccessGenerator &gen, std::uint64_t accesses);

  private:
    CoreParams _params;
    core::CacheController &_ctrl;
};

} // namespace c8t::cpu

#endif // C8T_CPU_TIMING_CORE_HH
