/**
 * @file
 * A DVFS governor with a cache-limited voltage floor.
 *
 * The paper's framing (§1): DVFS switches between predefined
 * voltage/frequency levels, and the *minimum* usable level is set by
 * the weakest component — typically the 6T SRAM cache. Replacing it
 * with an 8T cache lowers the floor and unlocks the low-voltage
 * levels, at the cost of the RMW write problem the paper then solves.
 * This governor makes that chain quantitative: given a level table and
 * a cell-limited Vmin, it reports which levels are usable and picks
 * the lowest-energy level that meets a performance demand.
 */

#ifndef C8T_CPU_DVFS_HH
#define C8T_CPU_DVFS_HH

#include <cstdint>
#include <vector>

namespace c8t::cpu
{

/** One operating point. */
struct DvfsLevel
{
    /** Supply voltage (V). */
    double vdd = 1.0;

    /** Clock frequency at this voltage (GHz). */
    double freqGhz = 2.0;
};

/**
 * The governor: a sorted level table filtered by a voltage floor.
 */
class DvfsGovernor
{
  public:
    /**
     * @param levels     Operating points (any order; sorted
     *                   internally by descending voltage).
     * @param vmin_floor Lowest usable supply voltage — the cache
     *                   cell's Vmin for the target failure rate.
     * @throws std::invalid_argument when no level is usable.
     */
    DvfsGovernor(std::vector<DvfsLevel> levels, double vmin_floor);

    /** All levels at or above the floor, fastest first. */
    const std::vector<DvfsLevel> &usableLevels() const
    {
        return _usable;
    }

    /** Levels excluded by the floor. */
    std::uint32_t lockedOutLevels() const { return _lockedOut; }

    /** The fastest usable level. */
    const DvfsLevel &fastest() const { return _usable.front(); }

    /** The most efficient (lowest-voltage) usable level. */
    const DvfsLevel &slowest() const { return _usable.back(); }

    /**
     * Lowest-voltage usable level whose frequency still meets
     * @p demand (a fraction of the table's maximum frequency,
     * clamped to [0, 1]).
     */
    const DvfsLevel &levelFor(double demand) const;

    /**
     * Dynamic energy at @p level for work that costs
     * @p energy_at_nominal joules at @p nominal_vdd (CV^2 scaling).
     */
    static double scaleEnergy(double energy_at_nominal,
                              double nominal_vdd,
                              const DvfsLevel &level);

  private:
    std::vector<DvfsLevel> _usable;
    std::uint32_t _lockedOut = 0;
    double _maxFreq = 0.0;
};

/** A representative 45 nm-class level table (1.0 V .. 0.55 V). */
std::vector<DvfsLevel> defaultDvfsLevels();

} // namespace c8t::cpu

#endif // C8T_CPU_DVFS_HH
