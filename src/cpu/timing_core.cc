/**
 * @file
 * Timing core implementation.
 */

#include "cpu/timing_core.hh"

namespace c8t::cpu
{

TimingCore::TimingCore(CoreParams params, core::CacheController &ctrl)
    : _params(params), _ctrl(ctrl)
{}

TimingResult
TimingCore::run(trace::AccessGenerator &gen, std::uint64_t accesses)
{
    TimingResult result;

    trace::MemAccess a;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        if (!gen.next(a))
            break;

        const core::AccessOutcome out = _ctrl.access(a);
        result.instructions += a.gap + 1;

        if (a.isRead() && out.latencyCycles > _params.loadToUseSlack)
            result.readStallCycles +=
                out.latencyCycles - _params.loadToUseSlack;
    }

    result.cycles = result.instructions + result.readStallCycles;
    return result;
}

} // namespace c8t::cpu
