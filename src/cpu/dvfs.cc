/**
 * @file
 * DVFS governor implementation.
 */

#include "cpu/dvfs.hh"

#include <algorithm>
#include <stdexcept>

namespace c8t::cpu
{

DvfsGovernor::DvfsGovernor(std::vector<DvfsLevel> levels,
                           double vmin_floor)
{
    std::sort(levels.begin(), levels.end(),
              [](const DvfsLevel &a, const DvfsLevel &b) {
                  return a.vdd > b.vdd;
              });
    for (const DvfsLevel &l : levels) {
        if (l.vdd >= vmin_floor)
            _usable.push_back(l);
        else
            ++_lockedOut;
    }
    if (_usable.empty())
        throw std::invalid_argument(
            "DvfsGovernor: the voltage floor excludes every level");
    for (const DvfsLevel &l : levels)
        _maxFreq = std::max(_maxFreq, l.freqGhz);
}

const DvfsLevel &
DvfsGovernor::levelFor(double demand) const
{
    demand = std::clamp(demand, 0.0, 1.0);
    const double needed = demand * _maxFreq;
    // Walk from the slowest usable level up.
    for (auto it = _usable.rbegin(); it != _usable.rend(); ++it) {
        if (it->freqGhz >= needed)
            return *it;
    }
    return _usable.front();
}

double
DvfsGovernor::scaleEnergy(double energy_at_nominal, double nominal_vdd,
                          const DvfsLevel &level)
{
    const double ratio = level.vdd / nominal_vdd;
    return energy_at_nominal * ratio * ratio;
}

std::vector<DvfsLevel>
defaultDvfsLevels()
{
    // Representative voltage/frequency pairs: frequency degrades
    // super-linearly as Vdd approaches threshold (alpha-power law
    // flavour).
    return {
        {1.00, 2.00}, {0.90, 1.70}, {0.80, 1.40}, {0.70, 1.05},
        {0.65, 0.85}, {0.60, 0.65}, {0.55, 0.45},
    };
}

} // namespace c8t::cpu
