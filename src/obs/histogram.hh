/**
 * @file
 * Fixed-size log-bucketed latency histogram (HDR style).
 *
 * Averages hide tails: a speculation-failure replay cost or a
 * stream-cache-miss job shows up at p99, not in the mean. Histogram
 * records unsigned 64-bit values (the codebase uses nanoseconds)
 * into a fixed array of buckets whose width grows with magnitude:
 * values below 16 get exact unit buckets; above that each power-of-2
 * octave is split into 16 sub-buckets, bounding the relative error
 * of any reported bound at 1/16 (6.25 %) while keeping the whole
 * structure at 976 buckets (~15 KiB) — no allocation ever, so
 * record() is safe on the counting-allocator-guarded hot path and
 * cheap enough to call once per replayed chunk.
 *
 * Counts, sum, min and max are exact; quantile(q) returns the upper
 * bound of the bucket holding the q-th recorded value (an upper
 * bound on the true quantile, clamped to the exact max). The class
 * is not thread-safe; obs::Metrics serialises access to the shared
 * instances.
 */

#ifndef C8T_OBS_HISTOGRAM_HH
#define C8T_OBS_HISTOGRAM_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace c8t::obs
{

/** Log-bucketed value distribution with exact count/sum/min/max. */
class Histogram
{
  public:
    /// Sub-buckets per octave; also the size of the exact region.
    static constexpr std::size_t kSubBuckets = 16;
    /// Octaves above the exact region: bit widths 5..64.
    static constexpr std::size_t kOctaves = 60;
    static constexpr std::size_t kBuckets =
        kSubBuckets + kOctaves * kSubBuckets; // 976

    /** Bucket index for @p v (total order, contiguous from 0). */
    static constexpr std::size_t bucketIndex(std::uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<std::size_t>(v);
        const unsigned shift =
            static_cast<unsigned>(std::bit_width(v)) - 5;
        return kSubBuckets * static_cast<std::size_t>(shift) +
               static_cast<std::size_t>(v >> shift);
    }

    /** Smallest value mapping to bucket @p i. */
    static constexpr std::uint64_t bucketLowerBound(std::size_t i)
    {
        if (i < 2 * kSubBuckets)
            return static_cast<std::uint64_t>(i);
        const unsigned octave =
            static_cast<unsigned>(i / kSubBuckets) - 1;
        const std::uint64_t sub = kSubBuckets + i % kSubBuckets;
        return sub << octave;
    }

    /** Largest value mapping to bucket @p i. */
    static constexpr std::uint64_t bucketUpperBound(std::size_t i)
    {
        if (i + 1 >= kBuckets)
            return std::numeric_limits<std::uint64_t>::max();
        return bucketLowerBound(i + 1) - 1;
    }

    void record(std::uint64_t v)
    {
        ++_counts[bucketIndex(v)];
        ++_count;
        _sum += v;
        if (v > _max)
            _max = v;
        if (v < _min)
            _min = v;
    }

    std::uint64_t count() const { return _count; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t max() const { return _count ? _max : 0; }
    std::uint64_t min() const { return _count ? _min : 0; }
    double mean() const
    {
        return _count ? static_cast<double>(_sum) /
                            static_cast<double>(_count)
                      : 0.0;
    }

    /**
     * Upper bound on the @p q quantile (0 < q <= 1) of the recorded
     * values: the upper bound of the bucket containing the
     * ceil(q*count)-th smallest recording, clamped to the exact
     * maximum. Returns 0 when empty.
     */
    std::uint64_t quantile(double q) const;

    /** Exact count of recordings that fell into bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const { return _counts[i]; }

    void reset();

  private:
    std::uint64_t _counts[kBuckets] = {};
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _max = 0;
    std::uint64_t _min = std::numeric_limits<std::uint64_t>::max();
};

} // namespace c8t::obs

#endif // C8T_OBS_HISTOGRAM_HH
