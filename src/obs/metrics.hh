/**
 * @file
 * Process-wide metrics registry: phase times, latency histograms and
 * engine gauges, with Prometheus-style text exposition.
 *
 * obs::prof accumulates per-thread; this registry is where those
 * times (and the job-wall / chunk-replay latency histograms, the
 * StreamCache counters and the ParallelSweeper worker telemetry)
 * meet. The sweep engine pushes into it after every job; exporters
 * pull a consistent snapshot out of it:
 *
 *   * writePrometheus() — text exposition (one c8t_* family per
 *     metric, counters/gauges/summaries) written to --metrics-out /
 *     C8T_METRICS, scrapeable or just human-readable,
 *   * writeProfileJson() — the "profile" section embedded in the
 *     schema-v3 `c8tsim --stats-json` document and golden-tested.
 *
 * Layering: core depends on obs, so this header must not include
 * core headers. Producers therefore *push* their state in (e.g. the
 * sweep engine copies core::StreamCache::Stats field-by-field into
 * setStreamCache()) rather than Metrics pulling it.
 *
 * All methods are internally locked; recording paths (histogram
 * record, phase-time add) do not allocate, so they are safe under
 * the counting-allocator hot-path tests.
 */

#ifndef C8T_OBS_METRICS_HH
#define C8T_OBS_METRICS_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/histogram.hh"
#include "obs/prof.hh"

namespace c8t::obs
{

/** Process-wide profiling/telemetry rollup. */
class Metrics
{
  public:
    /** Mirror of core::StreamCache::Stats (push-model, see above). */
    struct StreamCacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t bypasses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t entries = 0;
        std::uint64_t bytes = 0;

        double hitRate() const
        {
            const std::uint64_t lookups = hits + misses;
            return lookups ? static_cast<double>(hits) /
                                 static_cast<double>(lookups)
                           : 0.0;
        }
    };

    /** Sweep-engine progress gauges (last run() wins). */
    struct SweepSnapshot
    {
        std::uint64_t jobsDone = 0;
        std::uint64_t jobsTotal = 0;
        std::uint64_t queueDepth = 0; ///< jobsTotal - jobsDone
        double jobsPerSec = 0.0;
        double etaSeconds = 0.0;
        std::uint32_t workers = 0;
    };

    /** Cumulative per-worker telemetry (index = worker id). */
    struct WorkerStats
    {
        double busySeconds = 0.0;
        double idleSeconds = 0.0;
        std::uint64_t jobs = 0;
    };

    /** Design-space explorer progress gauges (last explore wins).
     *  Config-runs are the explorer's unit of throughput: one
     *  (workload, geometry, scheme, Vdd) simulation. */
    struct ExplorerSnapshot
    {
        std::uint64_t shardsDone = 0;
        std::uint64_t shardsTotal = 0;
        std::uint64_t configRunsDone = 0;
        std::uint64_t configRunsTotal = 0;
        double configRunsPerSec = 0.0;
        double etaSeconds = 0.0;
    };

    /** Mirror of core::FaultMapCache::Stats (push-model). */
    struct FaultCacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t entries = 0;
    };

    /** Mirror of core::SweepPool::Stats (push-model). */
    struct PoolStats
    {
        std::uint64_t tasksRun = 0;
        std::uint64_t tasksCancelled = 0;
        std::uint64_t batches = 0;
        std::uint64_t activeClients = 0;
        std::uint64_t queuedTasks = 0;
        std::uint32_t workers = 0;
    };

    /** c8td sweep-service gauges/counters (pushed by the daemon). */
    struct DaemonSnapshot
    {
        std::uint64_t connectionsActive = 0;
        std::uint64_t connectionsTotal = 0;
        std::uint64_t jobsAccepted = 0;
        std::uint64_t jobsRunning = 0;
        std::uint64_t jobsSucceeded = 0;
        std::uint64_t jobsFailed = 0;
        std::uint64_t jobsCancelled = 0;
        std::uint64_t memoHits = 0;   ///< whole-result duplicate hits
        std::uint64_t bytesOut = 0;   ///< response bytes written
        std::uint64_t framesDropped = 0; ///< budget-dropped frames
    };

    // --- producers -----------------------------------------------
    void addPhaseTimes(const prof::PhaseTimes &t);
    void recordJobWallNs(std::uint64_t ns);
    void recordChunkReplayNs(std::uint64_t ns);
    void recordShardWallNs(std::uint64_t ns);
    void noteSweep(const SweepSnapshot &s);
    void noteExplorer(const ExplorerSnapshot &s);
    /** Adds (cumulatively) onto worker @p worker's totals. */
    void noteWorker(std::uint32_t worker, double busy_seconds,
                    double idle_seconds, std::uint64_t jobs);
    void setStreamCache(const StreamCacheStats &s);
    void setFaultCache(const FaultCacheStats &s);
    void setPool(const PoolStats &s);
    void noteDaemon(const DaemonSnapshot &s);
    /** End-to-end daemon job latency (request decode to final frame). */
    void recordDaemonJobNs(std::uint64_t ns);

    // --- consumers -----------------------------------------------
    prof::PhaseTimes phaseTimes() const;
    Histogram jobWall() const;
    Histogram chunkReplay() const;
    Histogram shardWall() const;
    Histogram daemonJob() const;
    SweepSnapshot sweep() const;
    ExplorerSnapshot explorer() const;
    std::vector<WorkerStats> workers() const;
    StreamCacheStats streamCache() const;
    FaultCacheStats faultCache() const;
    PoolStats pool() const;
    DaemonSnapshot daemon() const;

    /** Prometheus text exposition (# HELP/# TYPE + samples). */
    void writePrometheus(std::ostream &os) const;

    /**
     * The "profile" JSON object for the schema-v3 stats document:
     * {"phases":{...},"histograms":{...}} — phase self-times in
     * seconds with scope counts, histogram quantiles in microseconds.
     */
    void writeProfileJson(std::ostream &os) const;

    /** Drop everything (tests; the registry is otherwise for-life). */
    void reset();

  private:
    mutable std::mutex _mutex;
    prof::PhaseTimes _phases;
    Histogram _jobWall;
    Histogram _chunkReplay;
    Histogram _shardWall;
    Histogram _daemonJob;
    SweepSnapshot _sweep;
    ExplorerSnapshot _explorer;
    std::vector<WorkerStats> _workers;
    StreamCacheStats _streamCache;
    FaultCacheStats _faultCache;
    PoolStats _pool;
    DaemonSnapshot _daemon;
    bool _daemonSeen = false; ///< gate the daemon families in the text
};

/** The process-wide registry (never destroyed). */
Metrics &globalMetrics();

/**
 * Install an explicit exposition output path (`--metrics-out`);
 * takes precedence over C8T_METRICS and implies prof::setEnabled().
 */
void setGlobalMetricsPath(const std::string &path);

/**
 * The effective exposition path: the explicit one if installed, else
 * C8T_METRICS, else empty (exposition off).
 */
std::string resolvedMetricsPath();

/**
 * Write the exposition file if a path is configured. The write is
 * atomic (tmp file + rename), so a reader — or a process dying
 * mid-write on a fatal error path — can never observe a truncated
 * exposition. The sweep engine calls this after every run and the
 * drivers at exit (including their fatal-error paths), so long
 * multi-sweep processes keep the file fresh; a write failure warns
 * once and disables further attempts.
 */
void writeGlobalMetrics();

} // namespace c8t::obs

#endif // C8T_OBS_METRICS_HH
