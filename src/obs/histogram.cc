/**
 * @file
 * Histogram quantile walk and reset.
 */

#include "obs/histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace c8t::obs
{

std::uint64_t
Histogram::quantile(double q) const
{
    if (!_count)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th smallest recording, 1-based; q=1 -> count.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(_count))));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cum += _counts[i];
        if (cum >= rank)
            return std::min(bucketUpperBound(i), _max);
    }
    return _max; // unreachable: cum == _count after the loop
}

void
Histogram::reset()
{
    std::memset(_counts, 0, sizeof(_counts));
    _count = 0;
    _sum = 0;
    _max = 0;
    _min = std::numeric_limits<std::uint64_t>::max();
}

} // namespace c8t::obs
