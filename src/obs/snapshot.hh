/**
 * @file
 * Interval snapshots: periodic counter-delta sampling.
 *
 * End-of-run totals hide phase behaviour — a Set-Buffer merge rate
 * that collapses mid-run averages out to an unremarkable mean. An
 * IntervalSnapshotter is bound to a stats::Registry once, then
 * sample()d every N accesses (MultiSchemeRunner::setIntervalHook
 * drives this); each call appends one JSON line holding the *deltas*
 * of every counter that moved since the previous sample, producing a
 * time series over the measurement window:
 *
 *   {"kind":"interval","label":"WG+RB","access":100000,
 *    "elapsed_us":184211,"deltas":{"ctrl.grouped_writes":3121,...}}
 *
 * elapsed_us is measured on the steady clock from the snapshotter's
 * construction (the start of the measurement window), so deltas
 * between consecutive samples stay monotone even while NTP slews the
 * wall clock under a long sweep.
 *
 * Counters that did not move are omitted so the lines stay compact;
 * gauges and distributions are not sampled (counters carry every
 * per-access decision in this codebase). An optional mutex serialises
 * lines when several sweep jobs share one output stream.
 */

#ifndef C8T_OBS_SNAPSHOT_HH
#define C8T_OBS_SNAPSHOT_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "stats/registry.hh"

namespace c8t::obs
{

/** JSON-lines counter-delta sampler over one Registry. */
class IntervalSnapshotter
{
  public:
    /**
     * @param reg      Registry to sample; its registration set must
     *                 not change afterwards, and it must outlive the
     *                 snapshotter.
     * @param os       Destination stream (one JSON object per line).
     * @param label    Free-form tag carried on every line (e.g. the
     *                 scheme or workload name).
     * @param os_mutex Optional lock taken around each line when the
     *                 stream is shared between threads.
     */
    IntervalSnapshotter(const stats::Registry &reg, std::ostream &os,
                        std::string label = "",
                        std::mutex *os_mutex = nullptr);

    /**
     * Append one sample line: deltas of every counter relative to the
     * previous sample() (or zero, for the first call — the registry
     * is assumed freshly reset at the start of the window).
     *
     * @param access_index Accesses completed so far in the window.
     */
    void sample(std::uint64_t access_index);

    /** Samples emitted so far. */
    std::uint64_t samples() const { return _samples; }

  private:
    std::ostream &_os;
    std::string _label;
    std::mutex *_osMutex;
    std::vector<const stats::Counter *> _counters;
    std::vector<std::uint64_t> _last;
    std::uint64_t _samples = 0;
    /// Window origin for the per-line elapsed_us stamp: steady clock,
    /// immune to NTP slew (a wall clock could run backwards mid-run).
    std::chrono::steady_clock::time_point _t0 =
        std::chrono::steady_clock::now();
};

} // namespace c8t::obs

#endif // C8T_OBS_SNAPSHOT_HH
