/**
 * @file
 * Metrics registry implementation and the Prometheus / profile-JSON
 * exporters.
 */

#include "obs/metrics.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "stats/json.hh"

namespace c8t::obs
{

namespace
{

/** ns -> seconds for export (histograms record nanoseconds). */
double
sec(std::uint64_t ns)
{
    return static_cast<double>(ns) * 1e-9;
}

/** ns -> microseconds for the profile-JSON histogram block. */
double
us(std::uint64_t ns)
{
    return static_cast<double>(ns) * 1e-3;
}

void
num(std::ostream &os, double v)
{
    stats::jsonNumber(os, v);
}

/** One "name{quantile=...}" summary family plus a _max gauge. */
void
writeSummary(std::ostream &os, const char *name, const char *help,
             const Histogram &h)
{
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " summary\n";
    for (const double q : {0.5, 0.95, 0.99}) {
        os << name << "{quantile=\"" << q << "\"} ";
        num(os, sec(h.quantile(q)));
        os << "\n";
    }
    os << name << "_sum ";
    num(os, sec(h.sum()));
    os << "\n";
    os << name << "_count " << h.count() << "\n";
    os << "# HELP " << name << "_max Largest recorded value.\n";
    os << "# TYPE " << name << "_max gauge\n";
    os << name << "_max ";
    num(os, sec(h.max()));
    os << "\n";
}

void
writeGauge(std::ostream &os, const char *name, const char *help,
           double v)
{
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " gauge\n";
    os << name << " ";
    num(os, v);
    os << "\n";
}

void
writeCounter(std::ostream &os, const char *name, const char *help,
             std::uint64_t v)
{
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " counter\n";
    os << name << " " << v << "\n";
}

void
writeHistogramJson(std::ostream &os, const Histogram &h)
{
    os << "{\"count\":" << h.count() << ",\"mean\":";
    num(os, us(static_cast<std::uint64_t>(h.mean())));
    os << ",\"p50\":";
    num(os, us(h.quantile(0.5)));
    os << ",\"p95\":";
    num(os, us(h.quantile(0.95)));
    os << ",\"p99\":";
    num(os, us(h.quantile(0.99)));
    os << ",\"max\":";
    num(os, us(h.max()));
    os << "}";
}

} // anonymous namespace

void
Metrics::addPhaseTimes(const prof::PhaseTimes &t)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _phases.add(t);
}

void
Metrics::recordJobWallNs(std::uint64_t ns)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _jobWall.record(ns);
}

void
Metrics::recordChunkReplayNs(std::uint64_t ns)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _chunkReplay.record(ns);
}

void
Metrics::recordShardWallNs(std::uint64_t ns)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _shardWall.record(ns);
}

void
Metrics::noteSweep(const SweepSnapshot &s)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _sweep = s;
}

void
Metrics::noteExplorer(const ExplorerSnapshot &s)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _explorer = s;
}

void
Metrics::noteWorker(std::uint32_t worker, double busy_seconds,
                    double idle_seconds, std::uint64_t jobs)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    if (_workers.size() <= worker)
        _workers.resize(worker + 1);
    _workers[worker].busySeconds += busy_seconds;
    _workers[worker].idleSeconds += idle_seconds;
    _workers[worker].jobs += jobs;
}

void
Metrics::setStreamCache(const StreamCacheStats &s)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _streamCache = s;
}

void
Metrics::setFaultCache(const FaultCacheStats &s)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _faultCache = s;
}

void
Metrics::setPool(const PoolStats &s)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _pool = s;
}

void
Metrics::noteDaemon(const DaemonSnapshot &s)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _daemon = s;
    _daemonSeen = true;
}

void
Metrics::recordDaemonJobNs(std::uint64_t ns)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _daemonJob.record(ns);
}

prof::PhaseTimes
Metrics::phaseTimes() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _phases;
}

Histogram
Metrics::jobWall() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _jobWall;
}

Histogram
Metrics::chunkReplay() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _chunkReplay;
}

Histogram
Metrics::shardWall() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _shardWall;
}

Metrics::SweepSnapshot
Metrics::sweep() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _sweep;
}

Metrics::ExplorerSnapshot
Metrics::explorer() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _explorer;
}

std::vector<Metrics::WorkerStats>
Metrics::workers() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _workers;
}

Metrics::StreamCacheStats
Metrics::streamCache() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _streamCache;
}

Metrics::FaultCacheStats
Metrics::faultCache() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _faultCache;
}

Metrics::PoolStats
Metrics::pool() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _pool;
}

Metrics::DaemonSnapshot
Metrics::daemon() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _daemon;
}

Histogram
Metrics::daemonJob() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _daemonJob;
}

void
Metrics::writePrometheus(std::ostream &os) const
{
    const std::lock_guard<std::mutex> lock(_mutex);

    writeGauge(os, "c8t_profiling_enabled",
               "Phase profiler recording state (1 = on).",
               prof::enabled() ? 1.0 : 0.0);

    os << "# HELP c8t_phase_seconds_total Cumulative self time per "
          "pipeline phase.\n";
    os << "# TYPE c8t_phase_seconds_total counter\n";
    for (std::size_t i = 0; i < prof::kNumPhases; ++i) {
        os << "c8t_phase_seconds_total{phase=\""
           << prof::toString(static_cast<prof::Phase>(i)) << "\"} ";
        num(os, sec(_phases.ns[i]));
        os << "\n";
    }
    os << "# HELP c8t_phase_scopes_total Scope entries per pipeline "
          "phase.\n";
    os << "# TYPE c8t_phase_scopes_total counter\n";
    for (std::size_t i = 0; i < prof::kNumPhases; ++i) {
        os << "c8t_phase_scopes_total{phase=\""
           << prof::toString(static_cast<prof::Phase>(i)) << "\"} "
           << _phases.scopes[i] << "\n";
    }

    writeSummary(os, "c8t_job_wall_seconds",
                 "Sweep-job wall-time distribution.", _jobWall);
    writeSummary(os, "c8t_chunk_replay_seconds",
                 "Per-chunk replay-time distribution.", _chunkReplay);
    writeSummary(os, "c8t_shard_wall_seconds",
                 "Explorer per-shard wall-time distribution.",
                 _shardWall);

    writeCounter(os, "c8t_stream_cache_hits_total",
                 "StreamCache lookup hits.", _streamCache.hits);
    writeCounter(os, "c8t_stream_cache_misses_total",
                 "StreamCache lookup misses (stream generated).",
                 _streamCache.misses);
    writeCounter(os, "c8t_stream_cache_bypasses_total",
                 "StreamCache lookups bypassed (over-budget streams).",
                 _streamCache.bypasses);
    writeCounter(os, "c8t_stream_cache_evictions_total",
                 "StreamCache LRU evictions.", _streamCache.evictions);
    writeGauge(os, "c8t_stream_cache_hit_ratio",
               "Hits over lookups (0 when unused).",
               _streamCache.hitRate());
    writeGauge(os, "c8t_stream_cache_entries",
               "Resident cached streams.",
               static_cast<double>(_streamCache.entries));
    writeGauge(os, "c8t_stream_cache_resident_bytes",
               "Bytes held by cached streams.",
               static_cast<double>(_streamCache.bytes));

    writeGauge(os, "c8t_sweep_jobs", "Jobs in the current/last sweep.",
               static_cast<double>(_sweep.jobsTotal));
    writeGauge(os, "c8t_sweep_jobs_done", "Jobs completed so far.",
               static_cast<double>(_sweep.jobsDone));
    writeGauge(os, "c8t_sweep_queue_depth",
               "Jobs not yet completed.",
               static_cast<double>(_sweep.queueDepth));
    writeGauge(os, "c8t_sweep_jobs_per_second",
               "Completed-job throughput of the current/last sweep.",
               _sweep.jobsPerSec);
    writeGauge(os, "c8t_sweep_eta_seconds",
               "Estimated seconds to sweep completion (0 when done).",
               _sweep.etaSeconds);
    writeGauge(os, "c8t_sweep_workers",
               "Worker threads used by the current/last sweep.",
               static_cast<double>(_sweep.workers));

    writeGauge(os, "c8t_explorer_shards",
               "Shards in the current/last explore.",
               static_cast<double>(_explorer.shardsTotal));
    writeGauge(os, "c8t_explorer_shards_done",
               "Explorer shards completed so far.",
               static_cast<double>(_explorer.shardsDone));
    writeGauge(os, "c8t_explorer_config_runs",
               "Config-runs in the current/last explore.",
               static_cast<double>(_explorer.configRunsTotal));
    writeGauge(os, "c8t_explorer_config_runs_done",
               "Explorer config-runs completed so far.",
               static_cast<double>(_explorer.configRunsDone));
    writeGauge(os, "c8t_explorer_config_runs_per_second",
               "Config-run throughput of the current/last explore.",
               _explorer.configRunsPerSec);
    writeGauge(os, "c8t_explorer_eta_seconds",
               "Estimated seconds to explore completion (0 when done).",
               _explorer.etaSeconds);

    if (!_workers.empty()) {
        os << "# HELP c8t_worker_busy_seconds_total Per-worker time "
              "spent executing jobs.\n";
        os << "# TYPE c8t_worker_busy_seconds_total counter\n";
        for (std::size_t w = 0; w < _workers.size(); ++w) {
            os << "c8t_worker_busy_seconds_total{worker=\"" << w
               << "\"} ";
            num(os, _workers[w].busySeconds);
            os << "\n";
        }
        os << "# HELP c8t_worker_idle_seconds_total Per-worker time "
              "spent waiting for work.\n";
        os << "# TYPE c8t_worker_idle_seconds_total counter\n";
        for (std::size_t w = 0; w < _workers.size(); ++w) {
            os << "c8t_worker_idle_seconds_total{worker=\"" << w
               << "\"} ";
            num(os, _workers[w].idleSeconds);
            os << "\n";
        }
        os << "# HELP c8t_worker_jobs_total Jobs executed per "
              "worker.\n";
        os << "# TYPE c8t_worker_jobs_total counter\n";
        for (std::size_t w = 0; w < _workers.size(); ++w) {
            os << "c8t_worker_jobs_total{worker=\"" << w << "\"} "
               << _workers[w].jobs << "\n";
        }
    }

    writeCounter(os, "c8t_fault_cache_hits_total",
                 "Fault-map campaign memo hits.", _faultCache.hits);
    writeCounter(os, "c8t_fault_cache_misses_total",
                 "Fault-map campaign memo misses (campaign run).",
                 _faultCache.misses);
    writeGauge(os, "c8t_fault_cache_entries",
               "Memoized fault-map campaigns.",
               static_cast<double>(_faultCache.entries));

    // Daemon families only once a daemon pushed a snapshot: the
    // one-shot drivers' exposition stays exactly as before.
    if (_daemonSeen) {
        writeCounter(os, "c8t_pool_tasks_total",
                     "Tasks executed by the shared sweep pool.",
                     _pool.tasksRun);
        writeCounter(os, "c8t_pool_tasks_cancelled_total",
                     "Pool tasks dropped by client cancellation.",
                     _pool.tasksCancelled);
        writeCounter(os, "c8t_pool_batches_total",
                     "Batches submitted to the shared sweep pool.",
                     _pool.batches);
        writeGauge(os, "c8t_pool_clients",
                   "Registered pool client slots.",
                   static_cast<double>(_pool.activeClients));
        writeGauge(os, "c8t_pool_queue_depth",
                   "Tasks queued in the shared sweep pool.",
                   static_cast<double>(_pool.queuedTasks));
        writeGauge(os, "c8t_pool_workers",
                   "Worker threads in the shared sweep pool.",
                   static_cast<double>(_pool.workers));

        writeGauge(os, "c8t_daemon_connections_active",
                   "Open daemon client connections.",
                   static_cast<double>(_daemon.connectionsActive));
        writeCounter(os, "c8t_daemon_connections_total",
                     "Daemon client connections accepted.",
                     _daemon.connectionsTotal);
        writeCounter(os, "c8t_daemon_jobs_accepted_total",
                     "Request frames accepted.", _daemon.jobsAccepted);
        writeGauge(os, "c8t_daemon_jobs_running",
                   "Jobs currently executing.",
                   static_cast<double>(_daemon.jobsRunning));
        writeCounter(os, "c8t_daemon_jobs_succeeded_total",
                     "Jobs answered with a final-result frame.",
                     _daemon.jobsSucceeded);
        writeCounter(os, "c8t_daemon_jobs_failed_total",
                     "Jobs answered with an error frame.",
                     _daemon.jobsFailed);
        writeCounter(os, "c8t_daemon_jobs_cancelled_total",
                     "Jobs abandoned by client disconnect.",
                     _daemon.jobsCancelled);
        writeCounter(os, "c8t_daemon_memo_hits_total",
                     "Jobs served verbatim from the result memo.",
                     _daemon.memoHits);
        writeCounter(os, "c8t_daemon_bytes_out_total",
                     "Response bytes written to clients.",
                     _daemon.bytesOut);
        writeCounter(os, "c8t_daemon_frames_dropped_total",
                     "Advisory frames dropped by response budgets.",
                     _daemon.framesDropped);
        writeSummary(os, "c8t_daemon_job_seconds",
                     "End-to-end daemon job latency distribution.",
                     _daemonJob);
    }
}

void
Metrics::writeProfileJson(std::ostream &os) const
{
    const std::lock_guard<std::mutex> lock(_mutex);

    os << "{\"phases\":{";
    for (std::size_t i = 0; i < prof::kNumPhases; ++i) {
        if (i)
            os << ",";
        os << "\"" << prof::toString(static_cast<prof::Phase>(i))
           << "\":{\"seconds\":";
        num(os, sec(_phases.ns[i]));
        os << ",\"scopes\":" << _phases.scopes[i] << "}";
    }
    os << "},\"total_seconds\":";
    num(os, sec(_phases.totalNs()));
    os << ",\"histograms\":{\"job_wall_us\":";
    writeHistogramJson(os, _jobWall);
    os << ",\"chunk_replay_us\":";
    writeHistogramJson(os, _chunkReplay);
    os << ",\"shard_wall_us\":";
    writeHistogramJson(os, _shardWall);
    os << "}}";
}

void
Metrics::reset()
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _phases = prof::PhaseTimes{};
    _jobWall.reset();
    _chunkReplay.reset();
    _shardWall.reset();
    _daemonJob.reset();
    _sweep = SweepSnapshot{};
    _explorer = ExplorerSnapshot{};
    _workers.clear();
    _streamCache = StreamCacheStats{};
    _faultCache = FaultCacheStats{};
    _pool = PoolStats{};
    _daemon = DaemonSnapshot{};
    _daemonSeen = false;
}

Metrics &
globalMetrics()
{
    // Leaked on purpose: worker threads and atexit-ordered writers
    // may touch the registry arbitrarily late in process shutdown.
    static Metrics *metrics = new Metrics;
    return *metrics;
}

namespace
{

std::mutex g_path_mutex;
std::string g_explicit_path;      // --metrics-out, wins over the env
bool g_write_failed = false;      // one warning, then stay silent

} // anonymous namespace

void
setGlobalMetricsPath(const std::string &path)
{
    {
        const std::lock_guard<std::mutex> lock(g_path_mutex);
        g_explicit_path = path;
        g_write_failed = false;
    }
    prof::setEnabled(true);
}

std::string
resolvedMetricsPath()
{
    {
        const std::lock_guard<std::mutex> lock(g_path_mutex);
        if (!g_explicit_path.empty())
            return g_explicit_path;
    }
    if (const char *env = std::getenv("C8T_METRICS"); env && *env)
        return env;
    return "";
}

void
writeGlobalMetrics()
{
    const std::string path = resolvedMetricsPath();
    if (path.empty())
        return;
    {
        const std::lock_guard<std::mutex> lock(g_path_mutex);
        if (g_write_failed)
            return;
    }
    // Atomic rewrite: compose into a tmp file and rename over the
    // target. A scraper (or a process dying on a fatal error path
    // mid-exposition) can then never observe a truncated file — the
    // previous complete exposition stays in place until the new one
    // is fully flushed.
    const std::string tmp = path + ".tmp";
    const auto fail = [&] {
        const std::lock_guard<std::mutex> lock(g_path_mutex);
        if (!g_write_failed) {
            std::cerr << "metrics: cannot write \"" << path
                      << "\"; exposition disabled\n";
            g_write_failed = true;
        }
        std::remove(tmp.c_str());
    };
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            fail();
            return;
        }
        globalMetrics().writePrometheus(os);
        os.flush();
        if (!os) {
            fail();
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fail();
}

} // namespace c8t::obs
