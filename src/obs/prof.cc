/**
 * @file
 * Phase profiler: process-global switch and thread-local storage.
 */

#include "obs/prof.hh"

#include <cstdlib>
#include <cstring>

namespace c8t::obs::prof
{

namespace
{

/**
 * Default from the environment: C8T_PROF=<non-zero> turns the
 * profiler on directly; a metrics output path (C8T_METRICS) implies
 * it, since an exposition file without phase times would be empty of
 * its main payload.
 */
bool
envEnabled()
{
    if (const char *env = std::getenv("C8T_PROF");
        env && *env && std::strcmp(env, "0") != 0)
        return true;
    if (const char *env = std::getenv("C8T_METRICS"); env && *env)
        return true;
    return false;
}

} // anonymous namespace

namespace detail
{

std::atomic<bool> g_enabled{envEnabled()};

ThreadState &
threadState()
{
    thread_local ThreadState state;
    return state;
}

} // namespace detail

const char *
toString(Phase p)
{
    switch (p) {
    case Phase::StreamGenerate: return "stream_generate";
    case Phase::Plan:           return "plan";
    case Phase::Replay:         return "replay";
    case Phase::Energy:         return "energy";
    case Phase::FaultMap:       return "fault_map";
    case Phase::Serialize:      return "serialize";
    }
    return "?";
}

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

PhaseTimes
threadTimes()
{
    return detail::threadState().times;
}

PhaseTimes
takeThreadTimes()
{
    detail::ThreadState &s = detail::threadState();
    const PhaseTimes out = s.times;
    s.times = PhaseTimes{};
    return out;
}

} // namespace c8t::obs::prof
