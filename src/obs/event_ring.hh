/**
 * @file
 * Fixed-capacity, allocation-free per-controller event ring.
 *
 * The paper's claims live in per-access microarchitectural decisions
 * (RMW reads, Set-Buffer merges, silent-write drops, premature
 * write-backs, Read Bypassing hits); the counters in stats:: record
 * *how often* they happen, this ring records *when* and *in which
 * order*. A controller records one Event per decision; the ring keeps
 * the most recent `capacity` of them plus cumulative per-type totals
 * that survive wrap-around, so event counts always reconcile exactly
 * with the Registry counter totals for the same run.
 *
 * Hot-path contract (enforced by tests/hot_path_alloc_test.cc): the
 * ring's storage is sized once at construction and record() never
 * touches the heap; a disabled ring (capacity 0, or simply not
 * attached to the controller) reduces every hook to a single branch.
 */

#ifndef C8T_OBS_EVENT_RING_HH
#define C8T_OBS_EVENT_RING_HH

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace c8t::obs
{

/** The controller's event taxonomy (DESIGN.md §6). */
enum class EventType : std::uint8_t
{
    /** Demand data-array row read (group opens, RMW read phases,
     *  reads served from the array). */
    ArrayRead,

    /** Demand data-array row write (RMW write-backs, group
     *  write-backs, premature write-backs, direct/partial writes). */
    ArrayWrite,

    /** A write request entered an RMW sequence (read-merge-write). */
    RmwTrigger,

    /** A write merged into the Set-Buffer with zero array operations. */
    SetBufferMerge,

    /** A silent store was detected and the Dirty bit left clear. */
    SilentWriteDrop,

    /** A write-back forced by a read hitting the Tag-Buffer (WG). */
    PrematureWriteback,

    /** A read served from the Set-Buffer (WG+RB). */
    ReadBypass,

    /** A valid block was evicted by miss handling. */
    Eviction,
};

/** Number of event types (size of the per-type total array). */
constexpr std::size_t kEventTypes = 8;

/** Short stable name of @p t ("array_read", "set_buffer_merge", ...). */
const char *toString(EventType t);

/** One recorded event. */
struct Event
{
    /** Sequence number: position in the controller's event stream
     *  (0-based, never resets except through clear()). */
    std::uint64_t seq = 0;

    /** Ordinal of the request being serviced when the event fired
     *  (the controller's 1-based request count). */
    std::uint64_t accessIndex = 0;

    /** Controller cycle at which the event fired. */
    std::uint64_t cycle = 0;

    /** Address context: request address, row/set base or victim block
     *  address depending on the type; 0 when not meaningful. */
    std::uint64_t addr = 0;

    /** Set (= physical row) the event concerns. */
    std::uint32_t set = 0;

    /** What happened. */
    EventType type = EventType::ArrayRead;
};

/**
 * The ring. Capacity 0 (the default constructor) means disabled:
 * record() is a no-op and nothing is ever counted, so a
 * default-constructed ring is safe to pass around unconditionally.
 */
class EventRing
{
  public:
    /** A disabled ring (capacity 0). */
    EventRing() = default;

    /** A ring retaining the last @p capacity events. */
    explicit EventRing(std::size_t capacity) : _slots(capacity) {}

    /** True when the ring records events (capacity > 0). */
    bool enabled() const { return !_slots.empty(); }

    /** Maximum retained events. */
    std::size_t capacity() const { return _slots.size(); }

    /** Events currently retained (<= capacity()). */
    std::size_t size() const
    {
        return _recorded < _slots.size()
                   ? static_cast<std::size_t>(_recorded)
                   : _slots.size();
    }

    /** Total events recorded since construction/clear() (including
     *  those overwritten by wrap-around). */
    std::uint64_t recorded() const { return _recorded; }

    /** Events lost to wrap-around. */
    std::uint64_t dropped() const { return _recorded - size(); }

    /** Cumulative number of @p t events recorded (wrap-proof). */
    std::uint64_t typeCount(EventType t) const
    {
        return _typeCounts[static_cast<std::size_t>(t)];
    }

    /** All cumulative per-type totals, indexed by EventType value. */
    const std::array<std::uint64_t, kEventTypes> &typeCounts() const
    {
        return _typeCounts;
    }

    /**
     * Record one event. Allocation-free; overwrites the oldest
     * retained event once full. No-op when disabled.
     */
    void record(EventType type, std::uint64_t access_index,
                std::uint64_t cycle, std::uint64_t addr,
                std::uint32_t set)
    {
        if (_slots.empty())
            return;
        Event &e = _slots[static_cast<std::size_t>(_recorded %
                                                   _slots.size())];
        e.seq = _recorded;
        e.accessIndex = access_index;
        e.cycle = cycle;
        e.addr = addr;
        e.set = set;
        e.type = type;
        ++_typeCounts[static_cast<std::size_t>(type)];
        ++_recorded;
    }

    /**
     * The @p i-th oldest retained event (0 = oldest, size()-1 =
     * newest). Sequence numbers of the retained window are contiguous.
     */
    const Event &at(std::size_t i) const
    {
        assert(i < size());
        const std::uint64_t oldest = _recorded - size();
        return _slots[static_cast<std::size_t>((oldest + i) %
                                               _slots.size())];
    }

    /** Forget every event and zero the totals; capacity unchanged. */
    void clear()
    {
        _recorded = 0;
        _typeCounts.fill(0);
    }

  private:
    std::vector<Event> _slots;
    std::uint64_t _recorded = 0;
    std::array<std::uint64_t, kEventTypes> _typeCounts{};
};

} // namespace c8t::obs

#endif // C8T_OBS_EVENT_RING_HH
