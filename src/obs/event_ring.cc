/**
 * @file
 * Event taxonomy names.
 */

#include "obs/event_ring.hh"

namespace c8t::obs
{

const char *
toString(EventType t)
{
    switch (t) {
      case EventType::ArrayRead:
        return "array_read";
      case EventType::ArrayWrite:
        return "array_write";
      case EventType::RmwTrigger:
        return "rmw_trigger";
      case EventType::SetBufferMerge:
        return "set_buffer_merge";
      case EventType::SilentWriteDrop:
        return "silent_write_drop";
      case EventType::PrematureWriteback:
        return "premature_writeback";
      case EventType::ReadBypass:
        return "read_bypass";
      case EventType::Eviction:
        return "eviction";
    }
    return "unknown";
}

} // namespace c8t::obs
