/**
 * @file
 * Chrome trace-event JSON exporter implementation.
 */

#include "obs/chrome_trace.hh"

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "stats/json.hh"

namespace c8t::obs
{

ChromeTraceWriter::ChromeTraceWriter(const std::string &path)
    : _path(path), _os(path, std::ios::trunc)
{
    if (!_os) {
        throw std::runtime_error("chrome trace: cannot open \"" + path +
                                 "\" for writing");
    }
    _os << "{\"traceEvents\":[";
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    close();
}

void
ChromeTraceWriter::emit(const std::string &body)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    if (_closed)
        return;
    if (!_first)
        _os << ',';
    _os << '\n' << body;
    _first = false;
}

void
ChromeTraceWriter::threadName(int pid, int tid, const std::string &name)
{
    std::ostringstream os;
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
       << stats::jsonEscape(name) << "\"}}";
    emit(os.str());
}

void
ChromeTraceWriter::processName(int pid, const std::string &name)
{
    std::ostringstream os;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << stats::jsonEscape(name)
       << "\"}}";
    emit(os.str());
}

void
ChromeTraceWriter::completeEvent(const std::string &name,
                                 const std::string &cat, int pid, int tid,
                                 double ts_us, double dur_us,
                                 const std::string &args_json)
{
    std::ostringstream os;
    os << "{\"ph\":\"X\",\"name\":\"" << stats::jsonEscape(name)
       << "\",\"cat\":\"" << stats::jsonEscape(cat) << "\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"ts\":";
    stats::jsonNumber(os, ts_us);
    os << ",\"dur\":";
    stats::jsonNumber(os, dur_us);
    if (!args_json.empty())
        os << ",\"args\":" << args_json;
    os << '}';
    emit(os.str());
}

void
ChromeTraceWriter::instantEvent(const std::string &name,
                                const std::string &cat, int pid, int tid,
                                double ts_us, const std::string &args_json)
{
    std::ostringstream os;
    os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << stats::jsonEscape(name)
       << "\",\"cat\":\"" << stats::jsonEscape(cat) << "\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"ts\":";
    stats::jsonNumber(os, ts_us);
    if (!args_json.empty())
        os << ",\"args\":" << args_json;
    os << '}';
    emit(os.str());
}

void
ChromeTraceWriter::close()
{
    const std::lock_guard<std::mutex> lock(_mutex);
    if (_closed)
        return;
    _os << "\n]}\n";
    _os.flush();
    _closed = true;
}

void
appendEventRing(ChromeTraceWriter &w, const EventRing &ring,
                const std::string &track, int pid, int tid)
{
    w.threadName(pid, tid, track);

    for (std::size_t i = 0; i < ring.size(); ++i) {
        const Event &e = ring.at(i);
        std::ostringstream args;
        args << "{\"seq\":" << e.seq << ",\"access\":" << e.accessIndex
             << ",\"addr\":" << e.addr << ",\"set\":" << e.set << '}';
        w.instantEvent(toString(e.type), "access",
                       pid, tid, static_cast<double>(e.cycle),
                       args.str());
    }

    // Wrap-proof per-type totals: this record — not the (possibly
    // truncated) instant list — is what reconciles against the
    // Registry counter totals.
    std::ostringstream args;
    args << "{\"recorded\":" << ring.recorded()
         << ",\"dropped\":" << ring.dropped();
    for (std::size_t t = 0; t < kEventTypes; ++t) {
        args << ",\"" << toString(static_cast<EventType>(t))
             << "\":" << ring.typeCounts()[t];
    }
    args << '}';
    const double ts =
        ring.size() ? static_cast<double>(ring.at(ring.size() - 1).cycle)
                    : 0.0;
    w.instantEvent("event_totals", "summary", pid, tid, ts, args.str());
}

namespace
{

/** Single slot behind globalTrace()/setGlobalTracePath(). */
std::unique_ptr<ChromeTraceWriter> &
globalSlot()
{
    // Thread-safe first-use initialisation from the environment; the
    // unique_ptr's destructor finalises the JSON at process exit.
    static std::unique_ptr<ChromeTraceWriter> writer = [] {
        std::unique_ptr<ChromeTraceWriter> w;
        if (const char *env = std::getenv("C8T_CHROME_TRACE");
            env && *env) {
            try {
                w = std::make_unique<ChromeTraceWriter>(env);
            } catch (const std::exception &e) {
                std::cerr << "obs: ignoring C8T_CHROME_TRACE: " << e.what()
                          << "\n";
            }
        }
        return w;
    }();
    return writer;
}

} // anonymous namespace

ChromeTraceWriter *
globalTrace()
{
    return globalSlot().get();
}

void
setGlobalTracePath(const std::string &path)
{
    globalSlot() = std::make_unique<ChromeTraceWriter>(path);
}

} // namespace c8t::obs
