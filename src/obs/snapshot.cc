/**
 * @file
 * Interval snapshot implementation.
 */

#include "obs/snapshot.hh"

#include <sstream>

#include "stats/json.hh"

namespace c8t::obs
{

IntervalSnapshotter::IntervalSnapshotter(const stats::Registry &reg,
                                         std::ostream &os,
                                         std::string label,
                                         std::mutex *os_mutex)
    : _os(os), _label(std::move(label)), _osMutex(os_mutex),
      _counters(reg.counters()), _last(_counters.size(), 0)
{
}

void
IntervalSnapshotter::sample(std::uint64_t access_index)
{
    // Render outside the stream lock so contention stays on the
    // write, not the formatting.
    const std::uint64_t elapsed_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - _t0)
            .count());
    std::ostringstream line;
    line << "{\"kind\":\"interval\",\"label\":\""
         << stats::jsonEscape(_label) << "\",\"sample\":" << _samples
         << ",\"access\":" << access_index
         << ",\"elapsed_us\":" << elapsed_us << ",\"deltas\":{";
    bool first = true;
    for (std::size_t i = 0; i < _counters.size(); ++i) {
        const std::uint64_t now = _counters[i]->value();
        const std::uint64_t delta = now - _last[i];
        _last[i] = now;
        if (delta == 0)
            continue;
        line << (first ? "" : ",") << '"'
             << stats::jsonEscape(_counters[i]->name()) << "\":" << delta;
        first = false;
    }
    line << "}}\n";
    ++_samples;

    if (_osMutex) {
        const std::lock_guard<std::mutex> lock(*_osMutex);
        _os << line.str();
    } else {
        _os << line.str();
    }
}

} // namespace c8t::obs
