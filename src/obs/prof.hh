/**
 * @file
 * Self-profiling phase timers for the sweep pipeline.
 *
 * A sweep job's wall time decomposes into six phases — stream
 * generation, chunk planning, replay, energy/stats materialization,
 * fault-map campaigns and serialization — and the scaling work ahead
 * (the design-space explorer, the c8td daemon) needs that breakdown
 * without attaching an external profiler. prof::ScopedPhase is an
 * RAII scope placed at each phase boundary; scopes nest, and time is
 * attributed as *self time*: entering an inner scope accrues the
 * elapsed slice to the outer phase first, so the six buckets
 * partition the instrumented span without double counting. Each
 * boundary costs exactly one steady_clock read.
 *
 * The profiler is process-global and off by default. When disabled a
 * scope is two branches and no clock read, no allocation and no
 * shared-state traffic — cheap enough to leave compiled into the
 * per-chunk hot path (tests/hot_path_alloc_test.cc enforces the
 * zero-alloc half, tests/metrics_test.cc the changes-nothing half).
 * Enable with C8T_PROF=1, by setting a metrics output path
 * (C8T_METRICS / --metrics-out), or programmatically via
 * setEnabled().
 *
 * Accumulation is thread-local. The sweep engine snapshots the
 * calling thread's accumulator after every job (takeThreadTimes()),
 * attributes the delta to that job, and rolls the totals up into the
 * process-wide obs::Metrics registry; code that drives
 * MultiSchemeRunner directly flushes the same way when it is done.
 */

#ifndef C8T_OBS_PROF_HH
#define C8T_OBS_PROF_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace c8t::obs::prof
{

/** The pipeline phase taxonomy (DESIGN.md §11). */
enum class Phase : std::uint8_t {
    StreamGenerate, ///< synthetic trace generation / stream-cache fill
    Plan,           ///< set-batched chunk planning (TagArray::planChunk)
    Replay,         ///< per-access replay through the controllers
    Energy,         ///< drain + energy/stats materialization
    FaultMap,       ///< Monte-Carlo fault-map campaigns (Vdd sweeps)
    Serialize,      ///< JSON/table/trace output
};

inline constexpr std::size_t kNumPhases = 6;

/** Stable lower-case name ("stream_generate", ...), for export keys. */
const char *toString(Phase p);

/** Per-phase self-time accumulator (nanoseconds + scope entries). */
struct PhaseTimes
{
    std::uint64_t ns[kNumPhases] = {};
    std::uint64_t scopes[kNumPhases] = {};

    void add(const PhaseTimes &other)
    {
        for (std::size_t i = 0; i < kNumPhases; ++i) {
            ns[i] += other.ns[i];
            scopes[i] += other.scopes[i];
        }
    }

    std::uint64_t totalNs() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t v : ns)
            total += v;
        return total;
    }

    bool empty() const
    {
        for (std::size_t i = 0; i < kNumPhases; ++i)
            if (ns[i] || scopes[i])
                return false;
        return true;
    }
};

namespace detail
{

extern std::atomic<bool> g_enabled;

/** Per-thread accumulator plus the currently-open phase. */
struct ThreadState
{
    PhaseTimes times;
    int active = -1; ///< index of the innermost open phase, -1 = none
    std::chrono::steady_clock::time_point stamp{};
};

ThreadState &threadState();

inline std::uint64_t
nsBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
            .count());
}

} // namespace detail

/** Whether phase scopes currently record (relaxed atomic read). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn recording on/off process-wide (tests, --metrics-out). */
void setEnabled(bool on);

/** Copy of the calling thread's accumulator. */
PhaseTimes threadTimes();

/**
 * Copy-and-reset the calling thread's accumulator. Call between
 * units of work (the sweep engine calls it after every job) with no
 * scope open on this thread.
 */
PhaseTimes takeThreadTimes();

/**
 * RAII phase scope. One steady_clock read on entry, one on exit;
 * nothing at all when the profiler is disabled. Scopes nest freely
 * (self-time attribution); they must be destroyed in LIFO order,
 * which stack scoping guarantees.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase p) : ScopedPhase(p, enabled()) {}

    /**
     * @param active Caller-hoisted enabled() value, so a loop that
     *               opens many scopes reads the atomic once.
     */
    ScopedPhase(Phase p, bool active)
    {
        if (!active) {
            _state = nullptr;
            return;
        }
        detail::ThreadState &s = detail::threadState();
        const auto now = std::chrono::steady_clock::now();
        if (s.active >= 0)
            s.times.ns[s.active] += detail::nsBetween(s.stamp, now);
        _state = &s;
        _parent = s.active;
        _phase = static_cast<int>(p);
        s.active = _phase;
        s.stamp = now;
        ++s.times.scopes[_phase];
    }

    ~ScopedPhase()
    {
        if (!_state)
            return;
        const auto now = std::chrono::steady_clock::now();
        _state->times.ns[_phase] += detail::nsBetween(_state->stamp, now);
        _state->active = _parent;
        _state->stamp = now;
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    detail::ThreadState *_state;
    int _parent = -1;
    int _phase = 0;
};

} // namespace c8t::obs::prof

#endif // C8T_OBS_PROF_HH
