/**
 * @file
 * Chrome trace-event JSON exporter (Perfetto / chrome://tracing).
 *
 * Writes the "JSON object format" ({"traceEvents": [...]}) described
 * by the Trace Event Format spec; the files load directly in
 * https://ui.perfetto.dev. Two producers use it:
 *
 *   * core::ParallelSweeper emits one complete ("X") span per sweep
 *     job on the worker thread's track, so a sweep's schedule and
 *     load balance are visible on a timeline, and
 *   * obs::appendEventRing() turns a controller's EventRing into
 *     instant ("i") events on a per-run track (timestamp = controller
 *     cycle, read as microseconds) plus one "event_totals" summary
 *     record carrying the wrap-proof per-type totals.
 *
 * The writer streams events to disk as they arrive (no in-memory
 * event list) and is internally locked, so sweep workers can append
 * concurrently. The JSON is finalised by close() or the destructor.
 *
 * A process-global writer can be resolved from the C8T_CHROME_TRACE
 * environment variable (or installed explicitly by a CLI flag) via
 * globalTrace()/setGlobalTracePath(); the sweep engine picks it up
 * automatically so every figure/table bench can produce a trace with
 * no code changes.
 */

#ifndef C8T_OBS_CHROME_TRACE_HH
#define C8T_OBS_CHROME_TRACE_HH

#include <fstream>
#include <mutex>
#include <string>

#include "obs/event_ring.hh"

namespace c8t::obs
{

/** Streaming trace-event JSON writer. */
class ChromeTraceWriter
{
  public:
    /**
     * Open @p path for writing and emit the document header.
     * @throws std::runtime_error when the file cannot be opened.
     */
    explicit ChromeTraceWriter(const std::string &path);

    /** Finalises the document (close()). */
    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** The path given at construction. */
    const std::string &path() const { return _path; }

    /**
     * Name the (pid, tid) track ("thread_name" metadata event);
     * Perfetto shows @p name instead of the raw tid.
     */
    void threadName(int pid, int tid, const std::string &name);

    /** Name the pid track ("process_name" metadata event). */
    void processName(int pid, const std::string &name);

    /**
     * A complete ("X") span.
     *
     * @param name      Span label.
     * @param cat       Category string (Perfetto filterable).
     * @param pid,tid   Track.
     * @param ts_us     Start timestamp in microseconds.
     * @param dur_us    Duration in microseconds.
     * @param args_json Optional pre-rendered JSON object ("{...}")
     *                  attached as the event's args; empty = none.
     */
    void completeEvent(const std::string &name, const std::string &cat,
                       int pid, int tid, double ts_us, double dur_us,
                       const std::string &args_json = "");

    /** An instant ("i", thread-scoped) event. */
    void instantEvent(const std::string &name, const std::string &cat,
                      int pid, int tid, double ts_us,
                      const std::string &args_json = "");

    /**
     * Emit the closing bracket and flush. Idempotent; called by the
     * destructor. Events arriving after close() are dropped.
     */
    void close();

  private:
    /** Emit one event object; assumes the caller holds no lock. */
    void emit(const std::string &body);

    std::string _path;
    std::ofstream _os;
    std::mutex _mutex;
    bool _first = true;
    bool _closed = false;
};

/**
 * Export a controller's event ring onto the (pid, tid) track of @p w:
 * one instant event per retained Event (ts = cycle, as microseconds)
 * and one trailing "event_totals" instant carrying the cumulative
 * per-type counts (these reconcile with the stats::Registry totals
 * even when the ring wrapped). @p track names the tid track.
 */
void appendEventRing(ChromeTraceWriter &w, const EventRing &ring,
                     const std::string &track, int pid, int tid);

/**
 * The process-global writer: resolved once, from the explicit path
 * installed by setGlobalTracePath() if any, else from the
 * C8T_CHROME_TRACE environment variable. Returns nullptr when
 * tracing is off or the file cannot be opened (a one-time warning is
 * printed). The file is finalised at process exit.
 */
ChromeTraceWriter *globalTrace();

/**
 * Install (or replace) the process-global writer with one writing to
 * @p path — the `c8tsim --chrome-trace` hook. Call from the main
 * thread before any worker threads may touch globalTrace().
 * @throws std::runtime_error when the file cannot be opened.
 */
void setGlobalTracePath(const std::string &path);

} // namespace c8t::obs

#endif // C8T_OBS_CHROME_TRACE_HH
