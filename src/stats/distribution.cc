/**
 * @file
 * Bucketed histogram implementation.
 */

#include "stats/distribution.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace c8t::stats
{

Distribution::Distribution(std::string name, std::string desc,
                           double min, double max, std::size_t buckets)
    : _name(std::move(name)), _desc(std::move(desc)),
      _min(min), _max(max),
      _buckets(std::max<std::size_t>(buckets, 1), 0)
{
    assert(max > min && "distribution range must be non-empty");
    // Same division sample() historically performed per call; doing it
    // once here keeps bucket boundaries bit-identical.
    _width = (_max - _min) / static_cast<double>(_buckets.size());
}

double
Distribution::mean() const
{
    if (_count == 0)
        return 0.0;
    return _sum / static_cast<double>(_count);
}

double
Distribution::variance() const
{
    if (_count == 0)
        return 0.0;
    const double m = mean();
    const double var = _sumSq / static_cast<double>(_count) - m * m;
    // Numerical cancellation can produce a tiny negative value.
    return var > 0.0 ? var : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

double
Distribution::bucketLow(std::size_t i) const
{
    const double width = (_max - _min) / _buckets.size();
    return _min + width * static_cast<double>(i);
}

double
Distribution::bucketHigh(std::size_t i) const
{
    const double width = (_max - _min) / _buckets.size();
    return _min + width * static_cast<double>(i + 1);
}

double
Distribution::percentile(double p) const
{
    std::uint64_t in_range = 0;
    for (auto b : _buckets)
        in_range += b;
    if (in_range == 0)
        return 0.0;

    p = std::clamp(p, 0.0, 100.0);
    const double target = p / 100.0 * static_cast<double>(in_range);

    double cumulative = 0.0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        const double next = cumulative + static_cast<double>(_buckets[i]);
        if (next >= target && _buckets[i] > 0) {
            const double frac =
                (target - cumulative) / static_cast<double>(_buckets[i]);
            return bucketLow(i) + frac * (bucketHigh(i) - bucketLow(i));
        }
        cumulative = next;
    }
    return bucketHigh(_buckets.size() - 1);
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = 0;
    _overflow = 0;
    _count = 0;
    _sum = 0.0;
    _sumSq = 0.0;
    _minSeen = 0.0;
    _maxSeen = 0.0;
}

} // namespace c8t::stats
