/**
 * @file
 * JSON rendering helper implementation.
 */

#include "stats/json.hh"

#include <cmath>
#include <cstdio>
#include <limits>

namespace c8t::stats
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    // Integral values print without an exponent or trailing ".0" so
    // counters embedded in formulas stay visually integral.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*g",
                  std::numeric_limits<double>::max_digits10, v);
    os << buf;
}

} // namespace c8t::stats
