/**
 * @file
 * Minimal JSON rendering helpers shared by the machine-readable
 * exporters (stats::Registry::dumpJson, the obs:: Chrome trace and
 * interval-snapshot writers). Only what those writers need: string
 * escaping and finite-number formatting — not a JSON library.
 */

#ifndef C8T_STATS_JSON_HH
#define C8T_STATS_JSON_HH

#include <ostream>
#include <string>
#include <string_view>

namespace c8t::stats
{

/**
 * Escape @p s for use inside a double-quoted JSON string (quotes,
 * backslashes, control characters; everything else passes through).
 */
std::string jsonEscape(std::string_view s);

/**
 * Write @p v to @p os as a valid JSON number: round-trippable
 * precision for finite values, and 0 for NaN/infinity (JSON has no
 * representation for either, and our statistics treat "no samples"
 * as zero everywhere else).
 */
void jsonNumber(std::ostream &os, double v);

} // namespace c8t::stats

#endif // C8T_STATS_JSON_HH
