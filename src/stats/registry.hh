/**
 * @file
 * A named registry of statistics with hierarchical group support.
 *
 * Components register their counters/gauges/distributions under a group
 * prefix ("l1d.wg.", "array.", ...); reporting code walks the registry
 * and renders everything uniformly.
 */

#ifndef C8T_STATS_REGISTRY_HH
#define C8T_STATS_REGISTRY_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "stats/counter.hh"
#include "stats/distribution.hh"

namespace c8t::stats
{

/**
 * Registry of statistics owned elsewhere.
 *
 * The registry stores non-owning pointers: statistic objects live inside
 * the components that update them (so updates stay a plain member access)
 * and are registered once at construction time. The registering component
 * must outlive the registry or deregister on destruction; in this codebase
 * components and their registry share the simulation's lifetime.
 */
class Registry
{
  public:
    /** Register a counter. Names must be unique within the registry. */
    void add(Counter &c) { add(c, std::string()); }

    /** Register a gauge. */
    void add(Gauge &g) { add(g, std::string()); }

    /** Register a formula. */
    void add(Formula &f) { add(f, std::string()); }

    /** Register a distribution. */
    void add(Distribution &d) { add(d, std::string()); }

    /**
     * Prefixed registration: the statistic is stored (and reported)
     * under @p prefix + its own name, e.g. prefix "l2." turns
     * "ctrl.requests" into "l2.ctrl.requests". The statistic object
     * itself is not renamed — updates stay a plain member access and
     * one object may appear in different registries under different
     * prefixes. Used by the cache hierarchy to report per-level stats
     * from identical controller code (DESIGN.md §14). An empty prefix
     * is the classic unprefixed registration.
     */
    void add(Counter &c, const std::string &prefix);

    /** Prefixed gauge registration; see add(Counter&, prefix). */
    void add(Gauge &g, const std::string &prefix);

    /** Prefixed formula registration; see add(Counter&, prefix). */
    void add(Formula &f, const std::string &prefix);

    /** Prefixed distribution registration; see add(Counter&, prefix). */
    void add(Distribution &d, const std::string &prefix);

    /** Look up a counter by exact name; nullptr when absent. */
    const Counter *counter(const std::string &name) const;

    /** Look up a gauge by exact name; nullptr when absent. */
    const Gauge *gauge(const std::string &name) const;

    /** Look up a formula by exact name; nullptr when absent. */
    const Formula *formula(const std::string &name) const;

    /** Look up a distribution by exact name; nullptr when absent. */
    const Distribution *distribution(const std::string &name) const;

    /** All registered counters, in name order. */
    std::vector<const Counter *> counters() const;

    /** All registered gauges, in name order. */
    std::vector<const Gauge *> gauges() const;

    /** All registered formulas, in name order. */
    std::vector<const Formula *> formulas() const;

    /** All registered distributions, in name order. */
    std::vector<const Distribution *> distributions() const;

    /** Reset every registered mutable statistic to zero. */
    void resetAll();

    /**
     * Dump every statistic (gem5 stats.txt flavour) to @p os.
     * Counters and gauges print raw values; formulas print their
     * evaluated value; distributions print summary moments.
     */
    void dump(std::ostream &os) const;

    /**
     * Version of the dumpJson() schema. Bump whenever a key is
     * renamed, removed or its meaning changes; adding keys is
     * backwards compatible and does not require a bump.
     *
     * History:
     *  1  initial schema.
     *  2  supply-voltage model (DESIGN.md §10): controllers running at
     *     a non-nominal Vdd register vdd.* gauges, and the VddSweep
     *     result document (kind "vdd_sweep") shares this version tag.
     *     Nominal-Vdd dumps carry no new keys — only the version
     *     number changes.
     *  3  self-profiling subsystem (DESIGN.md §11): the `c8tsim
     *     --stats-json` document carries a top-level "profile"
     *     section (phase self-times + latency histograms) when the
     *     profiler is on, and interval snapshot lines gain a
     *     steady-clock "elapsed_us" field. Registry dumps themselves
     *     carry no new keys.
     *  4  design-space explorer (DESIGN.md §12): new top-level
     *     kind:"explore" document (ExploreResult::dumpJson) and a
     *     "shard_wall_us" histogram in the profile section. Registry
     *     and vdd_sweep dumps carry no new keys.
     *  5  two-level hierarchy (DESIGN.md §14): lower-level controllers
     *     register their statistics under an "l2." prefix in the same
     *     registry, so a two-level dump interleaves l2.cache.*,
     *     l2.ctrl.*, ... alongside the unprefixed L1 keys. vdd_sweep
     *     and explore documents gain hierarchy keys ("levels",
     *     "l2_kb") only when a hierarchy is configured. Single-level
     *     dumps carry no new keys — only the version number changes.
     */
    static constexpr int kJsonSchemaVersion = 5;

    /**
     * Dump every statistic as one machine-readable JSON object:
     *
     *   { "schema_version": 1,
     *     "counters":      { name: {"desc": ..., "value": N},  ... },
     *     "gauges":        { name: {"desc": ..., "value": x},  ... },
     *     "formulas":      { name: {"desc": ..., "value": x},  ... },
     *     "distributions": { name: {"desc": ..., "count": N,
     *                               "mean": x, "stddev": x,
     *                               "min": x, "max": x,
     *                               "underflow": N, "overflow": N,
     *                               "range_min": x, "range_max": x,
     *                               "buckets": [N, ...]}, ... } }
     *
     * Unlike dump(), distributions carry their full bucket vector so
     * downstream tooling can re-plot histograms. Keys appear in name
     * order (map iteration), so the output is deterministic.
     */
    void dumpJson(std::ostream &os) const;

    /** Number of registered statistics of all kinds. */
    std::size_t size() const;

  private:
    std::map<std::string, Counter *> _counters;
    std::map<std::string, Gauge *> _gauges;
    std::map<std::string, Formula *> _formulas;
    std::map<std::string, Distribution *> _distributions;
};

} // namespace c8t::stats

#endif // C8T_STATS_REGISTRY_HH
