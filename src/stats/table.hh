/**
 * @file
 * Aligned-column table and CSV formatting.
 *
 * Every bench binary reproduces one of the paper's tables or figures and
 * prints it as rows; this module centralises the rendering so all outputs
 * share one look and can also be emitted as CSV for plotting.
 */

#ifndef C8T_STATS_TABLE_HH
#define C8T_STATS_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace c8t::stats
{

/**
 * A cell in a table: text, integer, or floating point (with per-table
 * precision control applied at render time).
 */
using Cell = std::variant<std::string, std::int64_t, double>;

/**
 * A simple rectangular table.
 *
 * Usage:
 * @code
 * Table t("Figure 9: cache access frequency reduction");
 * t.setHeader({"benchmark", "WG (%)", "WG+RB (%)"});
 * t.addRow({"bwaves", 47.1, 49.3});
 * t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct a table with an optional caption printed above it. */
    explicit Table(std::string caption = "");

    /** Set the column headers; fixes the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append one row. Row width must match the header width. */
    void addRow(std::vector<Cell> row);

    /** Number of data rows. */
    std::size_t rows() const { return _rows.size(); }

    /** Number of columns (0 before setHeader()). */
    std::size_t cols() const { return _header.size(); }

    /** Digits after the decimal point for double cells (default 2). */
    void setPrecision(int digits) { _precision = digits; }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180 quoting for embedded commas/quotes). */
    void printCsv(std::ostream &os) const;

    /** Table caption. */
    const std::string &caption() const { return _caption; }

    /** Access a cell (row-major); bounds are asserted. */
    const Cell &at(std::size_t row, std::size_t col) const;

  private:
    std::string renderCell(const Cell &c) const;
    static std::string csvEscape(const std::string &s);

    std::string _caption;
    std::vector<std::string> _header;
    std::vector<std::vector<Cell>> _rows;
    int _precision = 2;
};

/**
 * Compute the arithmetic mean of a column of doubles; string cells are
 * skipped, integer cells are included. Returns 0 on an empty column.
 */
double columnMean(const Table &t, std::size_t col);

} // namespace c8t::stats

#endif // C8T_STATS_TABLE_HH
