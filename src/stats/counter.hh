/**
 * @file
 * Scalar statistics: event counters, gauges and derived formulas.
 *
 * These are the building blocks used throughout the simulator. They are
 * intentionally lightweight (a counter increment is a single add) so that
 * instrumenting hot paths is free in practice.
 */

#ifndef C8T_STATS_COUNTER_HH
#define C8T_STATS_COUNTER_HH

#include <cstdint>
#include <functional>
#include <string>

namespace c8t::stats
{

/**
 * A monotonically increasing event counter.
 *
 * Counters are the canonical statistic for "number of times X happened"
 * (array reads, Tag-Buffer hits, silent writes, ...). They carry a name
 * and description so that reporting code can render them without extra
 * bookkeeping at the call site.
 */
class Counter
{
  public:
    Counter() = default;

    /**
     * Construct a named counter.
     *
     * @param name Short dotted name, e.g. "array.row_reads".
     * @param desc One-line human readable description.
     */
    Counter(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    /** Increment by @p n events (default one). */
    void inc(std::uint64_t n = 1) { _value += n; }

    /** Reset the counter to zero. */
    void reset() { _value = 0; }

    /** Current value. */
    std::uint64_t value() const { return _value; }

    /** Counter name. */
    const std::string &name() const { return _name; }

    /** Counter description. */
    const std::string &desc() const { return _desc; }

    /** Pre-increment sugar: ++counter. */
    Counter &operator++() { inc(); return *this; }

    /** Compound add sugar: counter += n. */
    Counter &operator+=(std::uint64_t n) { inc(n); return *this; }

  private:
    std::string _name;
    std::string _desc;
    std::uint64_t _value = 0;
};

/**
 * A floating point gauge: a value that can move in both directions
 * (occupancy, voltage, energy accumulated in joules, ...).
 */
class Gauge
{
  public:
    Gauge() = default;

    /** Construct a named gauge. */
    Gauge(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    /** Add @p delta (may be negative). */
    void add(double delta) { _value += delta; }

    /** Set the gauge to an absolute value. */
    void set(double v) { _value = v; }

    /** Reset to zero. */
    void reset() { _value = 0.0; }

    /** Current value. */
    double value() const { return _value; }

    /** Gauge name. */
    const std::string &name() const { return _name; }

    /** Gauge description. */
    const std::string &desc() const { return _desc; }

  private:
    std::string _name;
    std::string _desc;
    double _value = 0.0;
};

/**
 * A derived statistic computed on demand from other statistics.
 *
 * Formulas are evaluated lazily at reporting time, so they always reflect
 * the final counter values without requiring explicit update calls.
 */
class Formula
{
  public:
    Formula() = default;

    /**
     * Construct a named formula.
     *
     * @param name Short dotted name.
     * @param desc One-line description.
     * @param fn   Evaluation function; called at reporting time.
     */
    Formula(std::string name, std::string desc, std::function<double()> fn)
        : _name(std::move(name)), _desc(std::move(desc)), _fn(std::move(fn))
    {}

    /** Evaluate the formula. Returns 0 when no function is bound. */
    double value() const { return _fn ? _fn() : 0.0; }

    /** Formula name. */
    const std::string &name() const { return _name; }

    /** Formula description. */
    const std::string &desc() const { return _desc; }

  private:
    std::string _name;
    std::string _desc;
    std::function<double()> _fn;
};

/**
 * Divide two counters, returning 0 when the denominator is zero.
 *
 * This is the common "rate" pattern (hits / accesses) with the divide-by-
 * zero edge handled once, centrally.
 */
double safeRatio(std::uint64_t num, std::uint64_t den);

/** Percentage variant of safeRatio(): 100 * num / den, 0 if den == 0. */
double safePercent(std::uint64_t num, std::uint64_t den);

} // namespace c8t::stats

#endif // C8T_STATS_COUNTER_HH
