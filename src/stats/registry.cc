/**
 * @file
 * Statistics registry implementation.
 */

#include "stats/registry.hh"

#include <cassert>
#include <iomanip>

#include "stats/json.hh"

namespace c8t::stats
{

void
Registry::add(Counter &c, const std::string &prefix)
{
    assert(!c.name().empty() && "stat must be named before registration");
    auto [it, inserted] = _counters.emplace(prefix + c.name(), &c);
    (void)it;
    assert(inserted && "duplicate counter name");
    (void)inserted;
}

void
Registry::add(Gauge &g, const std::string &prefix)
{
    assert(!g.name().empty() && "stat must be named before registration");
    auto [it, inserted] = _gauges.emplace(prefix + g.name(), &g);
    (void)it;
    assert(inserted && "duplicate gauge name");
    (void)inserted;
}

void
Registry::add(Formula &f, const std::string &prefix)
{
    assert(!f.name().empty() && "stat must be named before registration");
    auto [it, inserted] = _formulas.emplace(prefix + f.name(), &f);
    (void)it;
    assert(inserted && "duplicate formula name");
    (void)inserted;
}

void
Registry::add(Distribution &d, const std::string &prefix)
{
    assert(!d.name().empty() && "stat must be named before registration");
    auto [it, inserted] = _distributions.emplace(prefix + d.name(), &d);
    (void)it;
    assert(inserted && "duplicate distribution name");
    (void)inserted;
}

const Counter *
Registry::counter(const std::string &name) const
{
    auto it = _counters.find(name);
    return it == _counters.end() ? nullptr : it->second;
}

const Gauge *
Registry::gauge(const std::string &name) const
{
    auto it = _gauges.find(name);
    return it == _gauges.end() ? nullptr : it->second;
}

const Formula *
Registry::formula(const std::string &name) const
{
    auto it = _formulas.find(name);
    return it == _formulas.end() ? nullptr : it->second;
}

const Distribution *
Registry::distribution(const std::string &name) const
{
    auto it = _distributions.find(name);
    return it == _distributions.end() ? nullptr : it->second;
}

std::vector<const Counter *>
Registry::counters() const
{
    std::vector<const Counter *> out;
    out.reserve(_counters.size());
    for (const auto &kv : _counters)
        out.push_back(kv.second);
    return out;
}

std::vector<const Gauge *>
Registry::gauges() const
{
    std::vector<const Gauge *> out;
    out.reserve(_gauges.size());
    for (const auto &kv : _gauges)
        out.push_back(kv.second);
    return out;
}

std::vector<const Formula *>
Registry::formulas() const
{
    std::vector<const Formula *> out;
    out.reserve(_formulas.size());
    for (const auto &kv : _formulas)
        out.push_back(kv.second);
    return out;
}

std::vector<const Distribution *>
Registry::distributions() const
{
    std::vector<const Distribution *> out;
    out.reserve(_distributions.size());
    for (const auto &kv : _distributions)
        out.push_back(kv.second);
    return out;
}

void
Registry::resetAll()
{
    for (auto &kv : _counters)
        kv.second->reset();
    for (auto &kv : _gauges)
        kv.second->reset();
    for (auto &kv : _distributions)
        kv.second->reset();
}

void
Registry::dump(std::ostream &os) const
{
    const auto flags = os.flags();

    for (const auto &kv : _counters) {
        os << std::left << std::setw(44) << kv.first
           << std::right << std::setw(16) << kv.second->value()
           << "  # " << kv.second->desc() << '\n';
    }
    for (const auto &kv : _gauges) {
        os << std::left << std::setw(44) << kv.first
           << std::right << std::setw(16) << kv.second->value()
           << "  # " << kv.second->desc() << '\n';
    }
    for (const auto &kv : _formulas) {
        os << std::left << std::setw(44) << kv.first
           << std::right << std::setw(16) << kv.second->value()
           << "  # " << kv.second->desc() << '\n';
    }
    for (const auto &kv : _distributions) {
        const auto *d = kv.second;
        os << std::left << std::setw(44) << (kv.first + "::count")
           << std::right << std::setw(16) << d->count()
           << "  # " << d->desc() << '\n';
        os << std::left << std::setw(44) << (kv.first + "::mean")
           << std::right << std::setw(16) << d->mean() << '\n';
        os << std::left << std::setw(44) << (kv.first + "::stddev")
           << std::right << std::setw(16) << d->stddev() << '\n';
        os << std::left << std::setw(44) << (kv.first + "::min")
           << std::right << std::setw(16) << d->min() << '\n';
        os << std::left << std::setw(44) << (kv.first + "::max")
           << std::right << std::setw(16) << d->max() << '\n';
    }

    os.flags(flags);
}

void
Registry::dumpJson(std::ostream &os) const
{
    os << "{\"schema_version\":" << kJsonSchemaVersion;

    os << ",\"counters\":{";
    bool first = true;
    for (const auto &kv : _counters) {
        os << (first ? "" : ",") << '"' << jsonEscape(kv.first)
           << "\":{\"desc\":\"" << jsonEscape(kv.second->desc())
           << "\",\"value\":" << kv.second->value() << '}';
        first = false;
    }

    os << "},\"gauges\":{";
    first = true;
    for (const auto &kv : _gauges) {
        os << (first ? "" : ",") << '"' << jsonEscape(kv.first)
           << "\":{\"desc\":\"" << jsonEscape(kv.second->desc())
           << "\",\"value\":";
        jsonNumber(os, kv.second->value());
        os << '}';
        first = false;
    }

    os << "},\"formulas\":{";
    first = true;
    for (const auto &kv : _formulas) {
        os << (first ? "" : ",") << '"' << jsonEscape(kv.first)
           << "\":{\"desc\":\"" << jsonEscape(kv.second->desc())
           << "\",\"value\":";
        jsonNumber(os, kv.second->value());
        os << '}';
        first = false;
    }

    os << "},\"distributions\":{";
    first = true;
    for (const auto &kv : _distributions) {
        const Distribution *d = kv.second;
        os << (first ? "" : ",") << '"' << jsonEscape(kv.first)
           << "\":{\"desc\":\"" << jsonEscape(d->desc())
           << "\",\"count\":" << d->count() << ",\"mean\":";
        jsonNumber(os, d->mean());
        os << ",\"stddev\":";
        jsonNumber(os, d->stddev());
        os << ",\"min\":";
        jsonNumber(os, d->min());
        os << ",\"max\":";
        jsonNumber(os, d->max());
        os << ",\"underflow\":" << d->underflow()
           << ",\"overflow\":" << d->overflow() << ",\"range_min\":";
        jsonNumber(os, d->buckets().empty() ? 0.0 : d->bucketLow(0));
        os << ",\"range_max\":";
        jsonNumber(os, d->buckets().empty()
                           ? 0.0
                           : d->bucketHigh(d->buckets().size() - 1));
        os << ",\"buckets\":[";
        for (std::size_t i = 0; i < d->buckets().size(); ++i)
            os << (i ? "," : "") << d->buckets()[i];
        os << "]}";
        first = false;
    }

    os << "}}";
}

std::size_t
Registry::size() const
{
    return _counters.size() + _gauges.size() + _formulas.size() +
           _distributions.size();
}

} // namespace c8t::stats
