/**
 * @file
 * Scalar statistic helpers.
 */

#include "stats/counter.hh"

namespace c8t::stats
{

double
safeRatio(std::uint64_t num, std::uint64_t den)
{
    if (den == 0)
        return 0.0;
    return static_cast<double>(num) / static_cast<double>(den);
}

double
safePercent(std::uint64_t num, std::uint64_t den)
{
    return 100.0 * safeRatio(num, den);
}

} // namespace c8t::stats
