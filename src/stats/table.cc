/**
 * @file
 * Table rendering implementation.
 */

#include "stats/table.hh"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace c8t::stats
{

Table::Table(std::string caption)
    : _caption(std::move(caption))
{}

void
Table::setHeader(std::vector<std::string> header)
{
    assert(_rows.empty() && "set the header before adding rows");
    _header = std::move(header);
}

void
Table::addRow(std::vector<Cell> row)
{
    assert(row.size() == _header.size() && "row width != header width");
    _rows.push_back(std::move(row));
}

const Cell &
Table::at(std::size_t row, std::size_t col) const
{
    assert(row < _rows.size() && col < _header.size());
    return _rows[row][col];
}

std::string
Table::renderCell(const Cell &c) const
{
    std::ostringstream os;
    if (std::holds_alternative<std::string>(c)) {
        os << std::get<std::string>(c);
    } else if (std::holds_alternative<std::int64_t>(c)) {
        os << std::get<std::int64_t>(c);
    } else {
        os << std::fixed << std::setprecision(_precision)
           << std::get<double>(c);
    }
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    if (!_caption.empty())
        os << _caption << '\n';

    // Column widths: max over header and rendered cells.
    std::vector<std::size_t> width(_header.size());
    for (std::size_t c = 0; c < _header.size(); ++c)
        width[c] = _header[c].size();
    std::vector<std::vector<std::string>> rendered;
    rendered.reserve(_rows.size());
    for (const auto &row : _rows) {
        std::vector<std::string> r;
        r.reserve(row.size());
        for (std::size_t c = 0; c < row.size(); ++c) {
            r.push_back(renderCell(row[c]));
            width[c] = std::max(width[c], r.back().size());
        }
        rendered.push_back(std::move(r));
    }

    auto rule = [&]() {
        for (std::size_t c = 0; c < _header.size(); ++c) {
            os << '+' << std::string(width[c] + 2, '-');
        }
        os << "+\n";
    };

    rule();
    os << '|';
    for (std::size_t c = 0; c < _header.size(); ++c)
        os << ' ' << std::left << std::setw(width[c]) << _header[c] << " |";
    os << '\n';
    rule();

    for (std::size_t i = 0; i < rendered.size(); ++i) {
        const auto &r = rendered[i];
        os << '|';
        for (std::size_t c = 0; c < r.size(); ++c) {
            // Numbers right-align, text left-aligns.
            const bool text = std::holds_alternative<std::string>(_rows[i][c]);
            if (text)
                os << ' ' << std::left << std::setw(width[c]) << r[c] << " |";
            else
                os << ' ' << std::right << std::setw(width[c]) << r[c] << " |";
        }
        os << '\n';
    }
    rule();
}

std::string
Table::csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += '"';
    return out;
}

void
Table::printCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < _header.size(); ++c) {
        if (c)
            os << ',';
        os << csvEscape(_header[c]);
    }
    os << '\n';
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << csvEscape(renderCell(row[c]));
        }
        os << '\n';
    }
}

double
columnMean(const Table &t, std::size_t col)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t r = 0; r < t.rows(); ++r) {
        const Cell &c = t.at(r, col);
        if (std::holds_alternative<double>(c)) {
            sum += std::get<double>(c);
            ++n;
        } else if (std::holds_alternative<std::int64_t>(c)) {
            sum += static_cast<double>(std::get<std::int64_t>(c));
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // namespace c8t::stats
