/**
 * @file
 * Sample distributions: running moments plus a bucketed histogram.
 *
 * Used for quantities such as write-group sizes, read latencies and
 * inter-access distances where the shape of the distribution matters,
 * not just the mean.
 */

#ifndef C8T_STATS_DISTRIBUTION_HH
#define C8T_STATS_DISTRIBUTION_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace c8t::stats
{

/**
 * A fixed-bucket histogram with running mean/min/max.
 *
 * Buckets cover [min, max) in equal-width bins; samples outside the range
 * are counted in dedicated underflow/overflow bins so no sample is ever
 * silently dropped.
 */
class Distribution
{
  public:
    Distribution() = default;

    /**
     * Construct a distribution.
     *
     * @param name    Short dotted name.
     * @param desc    One-line description.
     * @param min     Inclusive lower bound of the bucketed range.
     * @param max     Exclusive upper bound of the bucketed range.
     * @param buckets Number of equal-width buckets (>= 1).
     */
    Distribution(std::string name, std::string desc,
                 double min, double max, std::size_t buckets);

    /** Record one sample. Inline: this runs once per read request
     *  (latency) and once per write group (size) on the hot path. */
    void sample(double v) { sample(v, 1); }

    /** Record @p n identical samples. */
    void sample(double v, std::uint64_t n)
    {
        if (n == 0)
            return;

        if (_count == 0) {
            _minSeen = v;
            _maxSeen = v;
        } else {
            _minSeen = std::min(_minSeen, v);
            _maxSeen = std::max(_maxSeen, v);
        }

        _count += n;
        _sum += v * static_cast<double>(n);
        _sumSq += v * v * static_cast<double>(n);

        if (v < _min) {
            _underflow += n;
        } else if (v >= _max) {
            _overflow += n;
        } else if (v == _lastValue) {
            // Hot-path shortcut: consecutive samples are overwhelmingly
            // the repeated common-case latency, so remembering the last
            // value's bucket skips the FP divide. Bit-exact: the cached
            // index is exactly what the divide below computed for this
            // value.
            _buckets[_lastBucket] += n;
        } else {
            auto idx = static_cast<std::size_t>((v - _min) / _width);
            idx = std::min(idx, _buckets.size() - 1);
            _lastValue = v;
            _lastBucket = idx;
            _buckets[idx] += n;
        }
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return _count; }

    /** Mean of all samples (0 when empty). */
    double mean() const;

    /** Population variance of all samples (0 when empty). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample seen (0 when empty). */
    double min() const { return _count ? _minSeen : 0.0; }

    /** Largest sample seen (0 when empty). */
    double max() const { return _count ? _maxSeen : 0.0; }

    /** Samples below the bucketed range. */
    std::uint64_t underflow() const { return _underflow; }

    /** Samples at or above the bucketed range. */
    std::uint64_t overflow() const { return _overflow; }

    /** Per-bucket counts (size == bucket count passed at construction). */
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

    /** Inclusive lower bound of bucket @p i. */
    double bucketLow(std::size_t i) const;

    /** Exclusive upper bound of bucket @p i. */
    double bucketHigh(std::size_t i) const;

    /**
     * Approximate p-th percentile (0 <= p <= 100) from the histogram.
     * Linear interpolation within the containing bucket. Requires at
     * least one in-range sample; returns 0 otherwise.
     */
    double percentile(double p) const;

    /** Clear all samples. */
    void reset();

    /** Distribution name. */
    const std::string &name() const { return _name; }

    /** Distribution description. */
    const std::string &desc() const { return _desc; }

  private:
    std::string _name;
    std::string _desc;
    double _min = 0.0;
    double _max = 1.0;
    double _width = 1.0; //!< bucket width, fixed at construction
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _minSeen = 0.0;
    double _maxSeen = 0.0;

    /** Last in-range sample and its bucket (the bucket mapping is
     *  fixed at construction, so the memo stays valid across reset()).
     *  NaN compares unequal to everything, so the first sample always
     *  takes the divide. */
    double _lastValue = std::numeric_limits<double>::quiet_NaN();
    std::size_t _lastBucket = 0;
};

} // namespace c8t::stats

#endif // C8T_STATS_DISTRIBUTION_HH
