/**
 * @file
 * MemAccess helpers.
 */

#include "trace/access.hh"

#include <sstream>

namespace c8t::trace
{

const char *
toString(AccessType t)
{
    return t == AccessType::Read ? "R" : "W";
}

std::size_t
AccessGenerator::fillChunk(MemAccess *dst, std::size_t n)
{
    std::size_t i = 0;
    while (i < n && next(dst[i]))
        ++i;
    return i;
}

std::string
MemAccess::toString() const
{
    std::ostringstream os;
    os << c8t::trace::toString(type) << " 0x" << std::hex << addr
       << std::dec << " sz=" << static_cast<unsigned>(size)
       << " gap=" << gap;
    if (isWrite())
        os << " data=0x" << std::hex << data << std::dec;
    return os.str();
}

} // namespace c8t::trace
