/**
 * @file
 * xoshiro256** implementation.
 */

#include "trace/rng.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace c8t::trace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : _s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    assert(bound != 0 && "below(0) is meaningless");
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (l < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

std::uint64_t
Rng::geometric(double p, std::uint64_t cap)
{
    if (p >= 1.0)
        return 0;
    p = std::max(p, 1e-9);
    return geometricFromLog(std::log1p(-p), cap);
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    assert(n != 0);
    if (n == 1)
        return 0;
    // Inverse-power transform: heavy-tailed toward 0. For s <= 0 fall
    // back to uniform.
    if (s <= 0.0)
        return below(n);
    const double u = uniform();
    const double nd = static_cast<double>(n);
    // Power transform: u^(1+s) biases the draw toward small indices;
    // larger s means a heavier head. Clamped into [0, n).
    const double x = std::pow(u, 1.0 + s) * nd;
    auto idx = static_cast<std::uint64_t>(x);
    if (idx >= n)
        idx = n - 1;
    return idx;
}

} // namespace c8t::trace
