/**
 * @file
 * Kernel workloads: small, recognisable access-pattern generators used
 * by the examples and the scheme-comparison ablation bench. Unlike the
 * calibrated SPEC profiles these are *programs*: each generator walks a
 * concrete data structure, so their behaviour under the write schemes
 * has an obvious code-level interpretation.
 */

#ifndef C8T_TRACE_KERNELS_HH
#define C8T_TRACE_KERNELS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "trace/access.hh"
#include "trace/rng.hh"

namespace c8t::trace
{

/**
 * Common machinery for kernels: an architectural shadow memory so write
 * payloads are real values and silent stores are genuinely silent.
 */
class KernelBase : public AccessGenerator
{
  public:
    explicit KernelBase(std::uint64_t seed) : _rng(seed), _seed(seed) {}

    /** Architectural value of the word at @p addr (0 if never written). */
    std::uint64_t shadowValue(std::uint64_t addr) const;

  protected:
    /** Emit a read of the 8-byte word at @p addr. */
    MemAccess makeRead(std::uint64_t addr, std::uint32_t gap = 0);

    /** Emit a write of @p value to the word at @p addr. */
    MemAccess makeWrite(std::uint64_t addr, std::uint64_t value,
                        std::uint32_t gap = 0);

    /** Emit a write that re-stores the current value (a silent store). */
    MemAccess makeSilentWrite(std::uint64_t addr, std::uint32_t gap = 0);

    /** A fresh value guaranteed to differ from the current one. */
    std::uint64_t freshValue(std::uint64_t addr);

    /** Reset shadow state and RNG (call from subclass reset()). */
    void resetBase();

    Rng _rng;

  private:
    std::uint64_t _seed;
    std::unordered_map<std::uint64_t, std::uint64_t> _shadow;
    std::uint64_t _valueCounter = 0;
};

/**
 * STREAM-style copy: for i in [0, n): load src[i]; store dst[i].
 * Pure streaming; writes are never silent. Exercises sequential WW/RW
 * behaviour at block granularity.
 */
class StreamCopyKernel : public KernelBase
{
  public:
    /**
     * @param elements Number of 8-byte elements to copy.
     * @param passes   Number of full passes over the arrays.
     * @param seed     RNG seed (used only for data values).
     */
    StreamCopyKernel(std::uint64_t elements, std::uint32_t passes = 1,
                     std::uint64_t seed = 42);

    bool next(MemAccess &out) override;
    std::size_t fillChunk(MemAccess *dst, std::size_t n) override;
    void reset() override;
    std::string name() const override { return "stream_copy"; }

  private:
    std::uint64_t _elements;
    std::uint32_t _passes;
    std::uint64_t _i = 0;
    std::uint32_t _pass = 0;
    bool _phaseWrite = false;
};

/**
 * 1-D 3-point stencil: for i: load a[i-1], a[i], a[i+1]; store b[i].
 * Read-dominated with strong spatial reuse; the classic WG+RB-friendly
 * shape (many RR pairs within one set).
 */
class StencilKernel : public KernelBase
{
  public:
    StencilKernel(std::uint64_t elements, std::uint32_t passes = 1,
                  std::uint64_t seed = 43);

    bool next(MemAccess &out) override;
    std::size_t fillChunk(MemAccess *dst, std::size_t n) override;
    void reset() override;
    std::string name() const override { return "stencil3"; }

  private:
    std::uint64_t _elements;
    std::uint32_t _passes;
    std::uint64_t _i = 1;
    std::uint32_t _pass = 0;
    int _step = 0; // 0..2 loads, 3 store
};

/**
 * Pointer chase: repeatedly load node->next over a scrambled ring.
 * Read-only, no spatial locality — the worst case for grouping and the
 * best case for showing that WG adds no overhead to read streams.
 */
class PointerChaseKernel : public KernelBase
{
  public:
    PointerChaseKernel(std::uint64_t nodes, std::uint64_t hops,
                       std::uint64_t seed = 44);

    bool next(MemAccess &out) override;
    std::size_t fillChunk(MemAccess *dst, std::size_t n) override;
    void reset() override;
    std::string name() const override { return "pointer_chase"; }

  private:
    std::uint64_t _nodes;
    std::uint64_t _hops;
    std::uint64_t _done = 0;
    std::uint64_t _pos = 0;
    std::uint64_t _inc;
};

/**
 * Histogram / hash-update kernel: load bucket, store bucket (an
 * in-place read-modify-write at the program level). A fraction of the
 * updates store an unchanged value — e.g. saturating counters or
 * re-inserted keys — producing genuine silent stores. Dense WR/RW
 * same-set pairs make this the natural Write Grouping showcase.
 */
class HashUpdateKernel : public KernelBase
{
  public:
    /**
     * @param buckets     Number of 8-byte buckets.
     * @param updates     Number of update operations (each = 1R + 1W).
     * @param silentFrac  Fraction of updates whose store is silent.
     * @param skew        Hot-bucket skew (0 = uniform).
     * @param seed        RNG seed.
     */
    HashUpdateKernel(std::uint64_t buckets, std::uint64_t updates,
                     double silent_frac = 0.3, double skew = 0.8,
                     std::uint64_t seed = 45);

    bool next(MemAccess &out) override;
    std::size_t fillChunk(MemAccess *dst, std::size_t n) override;
    void reset() override;
    std::string name() const override { return "hash_update"; }

  private:
    std::uint64_t _buckets;
    std::uint64_t _updates;
    double _silentFrac;
    double _skew;
    std::uint64_t _done = 0;
    bool _phaseWrite = false;
    std::uint64_t _curAddr = 0;
};

/**
 * memset-style fill kernel: write every word of a buffer with one
 * value, repeatedly. From the second pass on every store is silent —
 * the densest silent-write workload possible (zeroing pools, clearing
 * bitmaps, re-initialising buffers are the real-world analogues the
 * silent-store literature cites).
 */
class FillKernel : public KernelBase
{
  public:
    /**
     * @param elements Number of 8-byte words in the buffer.
     * @param passes   Number of fill passes (>= 1).
     * @param value    The fill value.
     * @param seed     RNG seed (unused; kept for interface symmetry).
     */
    FillKernel(std::uint64_t elements, std::uint32_t passes = 2,
               std::uint64_t value = 0xa5a5a5a5a5a5a5a5ull,
               std::uint64_t seed = 47);

    bool next(MemAccess &out) override;
    std::size_t fillChunk(MemAccess *dst, std::size_t n) override;
    void reset() override;
    std::string name() const override { return "fill"; }

  private:
    std::uint64_t _elements;
    std::uint32_t _passes;
    std::uint64_t _value;
    std::uint64_t _i = 0;
    std::uint32_t _pass = 0;
};

/**
 * Blocked matrix transpose-like kernel: reads a row-major tile, writes
 * a column-major tile. Mixed strides stress the set-mapping logic.
 */
class TransposeKernel : public KernelBase
{
  public:
    /**
     * @param dim  Matrix dimension (dim x dim of 8-byte elements).
     * @param tile Tile edge length in elements.
     * @param seed RNG seed.
     */
    TransposeKernel(std::uint64_t dim, std::uint64_t tile = 8,
                    std::uint64_t seed = 46);

    bool next(MemAccess &out) override;
    std::size_t fillChunk(MemAccess *dst, std::size_t n) override;
    void reset() override;
    std::string name() const override { return "transpose"; }

  private:
    bool advance();

    std::uint64_t _dim;
    std::uint64_t _tile;
    std::uint64_t _ti = 0, _tj = 0; // tile origin
    std::uint64_t _i = 0, _j = 0;   // within tile
    bool _phaseWrite = false;
    bool _finished = false;
};

} // namespace c8t::trace

#endif // C8T_TRACE_KERNELS_HH
