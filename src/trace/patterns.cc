/**
 * @file
 * Address pattern implementations.
 */

#include "trace/patterns.hh"

#include <cassert>
#include <numeric>

namespace c8t::trace
{

SequentialPattern::SequentialPattern(std::uint64_t base, std::uint64_t length,
                                     std::uint64_t stride)
    : _base(base), _length(length), _stride(stride)
{
    assert(length > 0 && stride > 0 && stride % 8 == 0);
}

std::uint64_t
SequentialPattern::nextAddr(Rng &rng)
{
    (void)rng;
    const std::uint64_t addr = _base + _offset;
    _offset += _stride;
    if (_offset >= _length)
        _offset = 0;
    return addr;
}

void
SequentialPattern::reset()
{
    _offset = 0;
}

RandomPattern::RandomPattern(std::uint64_t base, std::uint64_t length,
                             std::uint64_t align)
    : _base(base), _slots(length / align), _align(align)
{
    assert(length >= align && align >= 8 && (align & (align - 1)) == 0);
}

std::uint64_t
RandomPattern::nextAddr(Rng &rng)
{
    return _base + rng.below(_slots) * _align;
}

WindowedRandomPattern::WindowedRandomPattern(std::uint64_t base,
                                             std::uint64_t length,
                                             std::uint64_t window_bytes,
                                             std::uint64_t draws_per_window)
    : _base(base), _length(length), _window(window_bytes),
      _drawsPerWindow(draws_per_window)
{
    assert(length >= window_bytes && window_bytes >= 8);
    assert(draws_per_window > 0);
}

std::uint64_t
WindowedRandomPattern::nextAddr(Rng &rng)
{
    if (_draws % _drawsPerWindow == 0) {
        // Jump to a fresh phase: any window-aligned-ish position that
        // keeps the window inside the region.
        _windowBase = rng.below(_length - _window + 1) & ~7ull;
    }
    ++_draws;
    return _base + _windowBase + rng.below(_window / 8) * 8;
}

void
WindowedRandomPattern::reset()
{
    _windowBase = 0;
    _draws = 0;
}

HotspotPattern::HotspotPattern(std::uint64_t base, std::uint64_t length,
                               double skew)
    : _base(base), _slots(length / 8), _skew(skew)
{
    assert(length >= 8);
}

std::uint64_t
HotspotPattern::nextAddr(Rng &rng)
{
    return _base + rng.zipf(_slots, _skew) * 8;
}

PointerChasePattern::PointerChasePattern(std::uint64_t base,
                                         std::uint64_t nodes,
                                         std::uint64_t node_size)
    : _base(base), _nodes(nodes), _nodeSize(node_size)
{
    assert(nodes > 0 && node_size % 8 == 0 && node_size > 0);
    // pos' = (pos + inc) mod nodes with gcd(inc, nodes) == 1 visits every
    // node exactly once per cycle; inc near nodes/2 makes consecutive
    // visits land far apart, which is the locality-free behaviour we want.
    _mult = 1;
    _inc = nodes / 2 + 1;
    while (std::gcd(_inc, _nodes) != 1)
        ++_inc;
}

std::uint64_t
PointerChasePattern::nextAddr(Rng &rng)
{
    (void)rng;
    _pos = (_pos * _mult + _inc) % _nodes;
    return _base + _pos * _nodeSize;
}

void
PointerChasePattern::reset()
{
    _pos = 0;
}

void
MixturePattern::add(std::unique_ptr<AddressPattern> p, double weight)
{
    assert(p && weight > 0.0);
    _totalWeight += weight;
    _parts.push_back(Part{std::move(p), weight});
}

std::uint64_t
MixturePattern::nextAddr(Rng &rng)
{
    assert(!_parts.empty());
    double pick = rng.uniform() * _totalWeight;
    for (auto &part : _parts) {
        pick -= part.weight;
        if (pick < 0.0)
            return part.pattern->nextAddr(rng);
    }
    return _parts.back().pattern->nextAddr(rng);
}

void
MixturePattern::reset()
{
    for (auto &part : _parts)
        part.pattern->reset();
}

} // namespace c8t::trace
