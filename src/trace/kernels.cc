/**
 * @file
 * Kernel workload implementations.
 */

#include "trace/kernels.hh"

#include <cassert>
#include <numeric>

namespace c8t::trace
{

namespace
{

/** Disjoint base addresses for the kernels' data structures. */
constexpr std::uint64_t srcBase = 0x200000000ull;
constexpr std::uint64_t dstBase = 0x240000000ull;

/**
 * Shared fillChunk body: the explicitly qualified K::next call binds
 * statically, so the per-access loop pays no virtual dispatch while
 * staying byte-identical to repeated next().
 */
template <typename K>
std::size_t
fillDirect(K &k, MemAccess *dst, std::size_t n)
{
    std::size_t i = 0;
    while (i < n && k.K::next(dst[i]))
        ++i;
    return i;
}

} // anonymous namespace

std::uint64_t
KernelBase::shadowValue(std::uint64_t addr) const
{
    auto it = _shadow.find(addr & ~7ull);
    return it == _shadow.end() ? 0 : it->second;
}

MemAccess
KernelBase::makeRead(std::uint64_t addr, std::uint32_t gap)
{
    MemAccess a;
    a.addr = addr & ~7ull;
    a.type = AccessType::Read;
    a.size = 8;
    a.gap = gap;
    return a;
}

MemAccess
KernelBase::makeWrite(std::uint64_t addr, std::uint64_t value,
                      std::uint32_t gap)
{
    MemAccess a;
    a.addr = addr & ~7ull;
    a.type = AccessType::Write;
    a.size = 8;
    a.gap = gap;
    a.data = value;
    _shadow[a.addr] = value;
    return a;
}

MemAccess
KernelBase::makeSilentWrite(std::uint64_t addr, std::uint32_t gap)
{
    MemAccess a;
    a.addr = addr & ~7ull;
    a.type = AccessType::Write;
    a.size = 8;
    a.gap = gap;
    a.data = shadowValue(a.addr);
    return a;
}

std::uint64_t
KernelBase::freshValue(std::uint64_t addr)
{
    std::uint64_t state = ++_valueCounter;
    std::uint64_t v = splitmix64(state);
    if (v == shadowValue(addr))
        ++v;
    return v;
}

void
KernelBase::resetBase()
{
    _rng.seed(_seed);
    _shadow.clear();
    _valueCounter = 0;
}

// ---------------------------------------------------------------------
// StreamCopyKernel

StreamCopyKernel::StreamCopyKernel(std::uint64_t elements,
                                   std::uint32_t passes, std::uint64_t seed)
    : KernelBase(seed), _elements(elements), _passes(passes)
{
    assert(elements > 0 && passes > 0);
}

bool
StreamCopyKernel::next(MemAccess &out)
{
    if (_pass >= _passes)
        return false;

    const std::uint64_t src = srcBase + _i * 8;
    const std::uint64_t dst = dstBase + _i * 8;

    if (!_phaseWrite) {
        out = makeRead(src, 2);
        _phaseWrite = true;
    } else {
        out = makeWrite(dst, freshValue(dst), 1);
        _phaseWrite = false;
        if (++_i == _elements) {
            _i = 0;
            ++_pass;
        }
    }
    return true;
}

std::size_t
StreamCopyKernel::fillChunk(MemAccess *dst, std::size_t n)
{
    return fillDirect(*this, dst, n);
}

void
StreamCopyKernel::reset()
{
    resetBase();
    _i = 0;
    _pass = 0;
    _phaseWrite = false;
}

// ---------------------------------------------------------------------
// StencilKernel

StencilKernel::StencilKernel(std::uint64_t elements, std::uint32_t passes,
                             std::uint64_t seed)
    : KernelBase(seed), _elements(elements), _passes(passes)
{
    assert(elements >= 3 && passes > 0);
}

bool
StencilKernel::next(MemAccess &out)
{
    if (_pass >= _passes)
        return false;

    if (_step < 3) {
        // Loads a[i-1], a[i], a[i+1].
        const std::uint64_t idx = _i - 1 + static_cast<std::uint64_t>(_step);
        out = makeRead(srcBase + idx * 8, _step == 0 ? 2 : 0);
        ++_step;
    } else {
        out = makeWrite(dstBase + _i * 8, freshValue(dstBase + _i * 8), 1);
        _step = 0;
        if (++_i >= _elements - 1) {
            _i = 1;
            ++_pass;
        }
    }
    return true;
}

std::size_t
StencilKernel::fillChunk(MemAccess *dst, std::size_t n)
{
    return fillDirect(*this, dst, n);
}

void
StencilKernel::reset()
{
    resetBase();
    _i = 1;
    _pass = 0;
    _step = 0;
}

// ---------------------------------------------------------------------
// PointerChaseKernel

PointerChaseKernel::PointerChaseKernel(std::uint64_t nodes,
                                       std::uint64_t hops,
                                       std::uint64_t seed)
    : KernelBase(seed), _nodes(nodes), _hops(hops)
{
    assert(nodes > 0 && hops > 0);
    _inc = nodes / 2 + 1;
    while (std::gcd(_inc, _nodes) != 1)
        ++_inc;
}

bool
PointerChaseKernel::next(MemAccess &out)
{
    if (_done >= _hops)
        return false;

    _pos = (_pos + _inc) % _nodes;
    out = makeRead(srcBase + _pos * 64, 3);
    ++_done;
    return true;
}

std::size_t
PointerChaseKernel::fillChunk(MemAccess *dst, std::size_t n)
{
    return fillDirect(*this, dst, n);
}

void
PointerChaseKernel::reset()
{
    resetBase();
    _done = 0;
    _pos = 0;
}

// ---------------------------------------------------------------------
// HashUpdateKernel

HashUpdateKernel::HashUpdateKernel(std::uint64_t buckets,
                                   std::uint64_t updates,
                                   double silent_frac, double skew,
                                   std::uint64_t seed)
    : KernelBase(seed), _buckets(buckets), _updates(updates),
      _silentFrac(silent_frac), _skew(skew)
{
    assert(buckets > 0 && updates > 0);
}

bool
HashUpdateKernel::next(MemAccess &out)
{
    if (_done >= _updates)
        return false;

    if (!_phaseWrite) {
        _curAddr = srcBase + _rng.zipf(_buckets, _skew) * 8;
        out = makeRead(_curAddr, 2);
        _phaseWrite = true;
    } else {
        if (_rng.chance(_silentFrac))
            out = makeSilentWrite(_curAddr);
        else
            out = makeWrite(_curAddr, freshValue(_curAddr));
        _phaseWrite = false;
        ++_done;
    }
    return true;
}

std::size_t
HashUpdateKernel::fillChunk(MemAccess *dst, std::size_t n)
{
    return fillDirect(*this, dst, n);
}

void
HashUpdateKernel::reset()
{
    resetBase();
    _done = 0;
    _phaseWrite = false;
    _curAddr = 0;
}

// ---------------------------------------------------------------------
// FillKernel

FillKernel::FillKernel(std::uint64_t elements, std::uint32_t passes,
                       std::uint64_t value, std::uint64_t seed)
    : KernelBase(seed), _elements(elements), _passes(passes),
      _value(value)
{
    assert(elements > 0 && passes > 0);
}

bool
FillKernel::next(MemAccess &out)
{
    if (_pass >= _passes)
        return false;

    const std::uint64_t addr = dstBase + _i * 8;
    // makeWrite updates the shadow, so second-pass stores carry the
    // value already present — genuinely silent.
    if (shadowValue(addr) == _value)
        out = makeSilentWrite(addr, 1);
    else
        out = makeWrite(addr, _value, 1);

    if (++_i == _elements) {
        _i = 0;
        ++_pass;
    }
    return true;
}

std::size_t
FillKernel::fillChunk(MemAccess *dst, std::size_t n)
{
    return fillDirect(*this, dst, n);
}

void
FillKernel::reset()
{
    resetBase();
    _i = 0;
    _pass = 0;
}

// ---------------------------------------------------------------------
// TransposeKernel

TransposeKernel::TransposeKernel(std::uint64_t dim, std::uint64_t tile,
                                 std::uint64_t seed)
    : KernelBase(seed), _dim(dim), _tile(tile)
{
    assert(dim > 0 && tile > 0 && tile <= dim && dim % tile == 0);
}

bool
TransposeKernel::advance()
{
    if (++_j == _tile) {
        _j = 0;
        if (++_i == _tile) {
            _i = 0;
            _tj += _tile;
            if (_tj >= _dim) {
                _tj = 0;
                _ti += _tile;
                if (_ti >= _dim) {
                    _finished = true;
                    return false;
                }
            }
        }
    }
    return true;
}

bool
TransposeKernel::next(MemAccess &out)
{
    if (_finished)
        return false;

    const std::uint64_t row = _ti + _i;
    const std::uint64_t col = _tj + _j;

    if (!_phaseWrite) {
        // Read src[row][col] (row-major).
        out = makeRead(srcBase + (row * _dim + col) * 8, 1);
        _phaseWrite = true;
    } else {
        // Write dst[col][row] (transposed position).
        const std::uint64_t addr = dstBase + (col * _dim + row) * 8;
        out = makeWrite(addr, freshValue(addr), 1);
        _phaseWrite = false;
        advance();
    }
    return true;
}

std::size_t
TransposeKernel::fillChunk(MemAccess *dst, std::size_t n)
{
    return fillDirect(*this, dst, n);
}

void
TransposeKernel::reset()
{
    resetBase();
    _ti = _tj = _i = _j = 0;
    _phaseWrite = false;
    _finished = false;
}

} // namespace c8t::trace
