/**
 * @file
 * The calibrated Markov access-stream model.
 *
 * This is the substitution for Pin-instrumented SPEC CPU2006 runs (see
 * DESIGN.md §2): a first-order Markov model over (access type, cache-set
 * relation) whose stationary statistics are *exactly* the per-benchmark
 * quantities the paper measures in Figures 3-5:
 *
 *  - memory-instruction fraction (Fig. 3),
 *  - read/write mix (Fig. 3),
 *  - consecutive same-set scenario shares RR/RW/WW/WR (Fig. 4),
 *  - silent-store fraction (Fig. 5).
 *
 * On top of the pair-level model, set-return knobs (@c pWriteReturn,
 * @c pReadReturn) reproduce the longer-range set reuse real programs
 * exhibit: accesses that leave the current set sometimes return to the
 * most recently written set. Such returns never form a *consecutive*
 * same-set pair
 * (they are only taken when the previous access sits in a different
 * set), so they are invisible to Figure 4 while exercising the Write
 * Grouping and Read Bypassing machinery exactly the way non-adjacent
 * set reuse does in real code.
 *
 * "Same set" is defined against a fixed reference geometry (32 B blocks,
 * 512 sets = the paper's 64 KB / 4-way baseline). Streams are geometry-
 * independent addresses; measuring them under other geometries yields
 * the paper's sensitivity behaviour (larger blocks merge neighbouring
 * reference blocks into one set, so grouping improves, etc.).
 */

#ifndef C8T_TRACE_MARKOV_STREAM_HH
#define C8T_TRACE_MARKOV_STREAM_HH

#include <cstdint>
#include <memory>
#include <string>

#include "mem/word_map.hh"
#include "trace/access.hh"
#include "trace/patterns.hh"
#include "trace/rng.hh"

namespace c8t::trace
{

/** Reference block size used to define "same set" during generation. */
constexpr std::uint64_t refBlockBytes = 32;

/** Reference set count (64 KB, 4-way, 32 B blocks). */
constexpr std::uint64_t refSetCount = 512;

/** Span of one pass over all reference sets (16 KB). */
constexpr std::uint64_t refSetSpan = refBlockBytes * refSetCount;

/** Reference set index of an address. */
constexpr std::uint64_t
refSetOf(std::uint64_t addr)
{
    return (addr / refBlockBytes) % refSetCount;
}

/**
 * Parameters of one synthetic benchmark stream. All probabilities are
 * stationary targets; the generator realises them exactly (up to
 * sampling noise) by construction.
 */
struct StreamParams
{
    /** Benchmark name, e.g. "bwaves". */
    std::string name;

    /** P(an executed instruction is a memory access). */
    double memFraction = 0.40;

    /** P(read | memory access). */
    double readShare = 0.65;

    /**
     * Consecutive same-set scenario shares, as fractions of all
     * consecutive access *pairs* (the paper's Figure 4 semantics).
     * rr: read followed by same-set read, rw: read then same-set write,
     * ww: write then same-set write, wr: write then same-set read.
     * Their sum is the same-set share (paper average: 0.27).
     */
    double rr = 0.12;
    double rw = 0.02;
    double ww = 0.10;
    double wr = 0.03;

    /** P(a write stores the value already present) — Figure 5. */
    double silentFraction = 0.42;

    /** P(a same-set access targets the same reference block). */
    double sameBlockBias = 0.85;

    /**
     * P(a WRITE leaving the current set returns to the most recently
     * written set). Models non-adjacent write reuse (see file comment);
     * this is what lets write groups span intervening accesses.
     */
    double pWriteReturn = 0.30;

    /**
     * P(a READ leaving the current set returns to the most recently
     * written set). Read returns are what Read Bypassing profits from
     * (and what forces premature write-backs under plain WG).
     */
    double pReadReturn = 0.12;

    /** Footprint in bytes (rounded up to a multiple of refSetSpan). */
    std::uint64_t footprintBytes = 8ull << 20;

    /**
     * Working-set window of the random component in bytes (0 = the
     * whole footprint). A window smaller than the cache models the
     * phase-local temporal reuse of real programs; benchmarks known
     * for cache-hostile access (mcf, milc) leave it at 0.
     */
    std::uint64_t randWindowBytes = 48 * 1024;

    /** Diff-set address mixture weights (need not sum to 1). */
    double seqWeight = 0.5;
    double randWeight = 0.3;
    double hotWeight = 0.1;
    double chaseWeight = 0.1;

    /** Zipf-ish skew of the hot region. */
    double hotSkew = 1.0;

    /** RNG seed; streams are fully deterministic given the params. */
    std::uint64_t seed = 1;

    /**
     * Check internal consistency (shares within their marginals, the
     * residual type probability within [0, 1], probabilities in range).
     * @throws std::invalid_argument with a precise message on failure.
     */
    void validate() const;

    /** Same-set share of all consecutive pairs (rr + rw + ww + wr). */
    double sameSetShare() const { return rr + rw + ww + wr; }

    /** P(write | memory access). */
    double writeShare() const { return 1.0 - readShare; }

    /**
     * Residual probability that a diff-set access is a write, derived
     * so the stationary type mix equals readShare/writeShare (see
     * markov_stream.cc for the algebra).
     */
    double diffSetWriteProb() const;
};

/**
 * The stream generator. Unbounded: next() always produces an access;
 * callers bound the run length.
 */
class MarkovStream : public AccessGenerator
{
  public:
    /**
     * Build a generator from validated parameters.
     * @throws std::invalid_argument when @p params fails validation.
     */
    explicit MarkovStream(StreamParams params);

    bool next(MemAccess &out) override;
    std::size_t fillChunk(MemAccess *dst, std::size_t n) override;
    void reset() override;
    std::string name() const override { return _params.name; }

    /** The parameters this stream was built from. */
    const StreamParams &params() const { return _params; }

    /**
     * Architectural value of the 8-byte word at @p addr after all
     * accesses generated so far (zero if never written). Exposed so
     * tests can cross-check simulated memory state.
     */
    std::uint64_t shadowValue(std::uint64_t addr) const;

  private:
    void generate(MemAccess &out);
    std::uint64_t sameSetAddr(std::uint64_t prev);
    std::uint64_t diffSetAddr(std::uint64_t prev, AccessType cur);
    std::uint64_t freshValue(std::uint64_t addr);
    void buildPatterns();

    StreamParams _params;
    Rng _rng;
    std::unique_ptr<MixturePattern> _mixture;

    bool _first = true;
    AccessType _prevType = AccessType::Read;
    std::uint64_t _prevAddr = 0;
    std::uint64_t _lastWriteAddr = 0;
    bool _haveLastWrite = false;

    /** Architectural word values; absent means zero. Flat map so
     *  next() never allocates per first-touch write (only amortized
     *  capacity doublings). */
    mem::WordMap _shadow;
    std::uint64_t _valueCounter = 0;

    std::uint64_t _base;
    std::uint64_t _footprint;

    /** Hoisted ln(1-memFraction) for the per-access gap draw (see
     *  Rng::geometricFromLog); _gapZero covers memFraction >= 1. */
    double _gapLogQ = 0.0;
    bool _gapZero = false;

    /** Hoisted Markov transition thresholds (constructor): exactly the
     *  per-draw expressions generate() historically computed, so the
     *  comparisons — and hence the stream — are bit-identical. */
    bool _hasReadShare = false;
    bool _hasWriteShare = false;
    double _rrGivenRead = 0.0;
    double _rwGivenRead = 0.0;
    double _wwGivenWrite = 0.0;
    double _wrGivenWrite = 0.0;
    double _diffSetWriteProb = 0.0;
};

/**
 * Deterministic identity of the stream a StreamParams value generates.
 *
 * Two parameter sets produce byte-identical streams if and only if
 * their signatures compare equal: every generation-relevant field
 * (including the seed and the name the results are reported under)
 * is serialised exactly — doubles in hexfloat form, so no rounding can
 * alias distinct parameters. This is the core::StreamCache key for
 * SPEC-profile sweep jobs.
 */
std::string streamSignature(const StreamParams &params);

} // namespace c8t::trace

#endif // C8T_TRACE_MARKOV_STREAM_HH
