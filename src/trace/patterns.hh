/**
 * @file
 * Composable address-pattern library.
 *
 * Patterns produce the "new location" addresses used by the workload
 * models whenever a stream leaves its current cache set: sequential
 * walks (streaming array code), strided walks (column-major / stencil
 * code), uniform random (pointer-heavy code), hot regions (locks,
 * globals) and pointer chases (linked structures). The Markov stream
 * model composes them with per-benchmark weights.
 */

#ifndef C8T_TRACE_PATTERNS_HH
#define C8T_TRACE_PATTERNS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/rng.hh"

namespace c8t::trace
{

/**
 * A source of addresses. Patterns are deterministic given the Rng that
 * is threaded through them.
 */
class AddressPattern
{
  public:
    virtual ~AddressPattern() = default;

    /** Produce the next address (8-byte aligned). */
    virtual std::uint64_t nextAddr(Rng &rng) = 0;

    /** Restart the pattern (position state only; Rng is external). */
    virtual void reset() = 0;

    /** Short pattern name for reports. */
    virtual std::string name() const = 0;
};

/**
 * Sequential walk: base, base+stride, base+2*stride, ... wrapping at
 * base+length. Models streaming loops; with stride == element size it
 * generates strong spatial locality.
 */
class SequentialPattern : public AddressPattern
{
  public:
    /**
     * @param base   Region start (8-byte aligned).
     * @param length Region length in bytes (> 0).
     * @param stride Step in bytes (> 0, multiple of 8).
     */
    SequentialPattern(std::uint64_t base, std::uint64_t length,
                      std::uint64_t stride);

    std::uint64_t nextAddr(Rng &rng) override;
    void reset() override;
    std::string name() const override { return "sequential"; }

  private:
    std::uint64_t _base;
    std::uint64_t _length;
    std::uint64_t _stride;
    std::uint64_t _offset = 0;
};

/**
 * Uniform random addresses over a region, aligned to @c align bytes.
 * Models irregular/pointer-heavy access with a given footprint.
 */
class RandomPattern : public AddressPattern
{
  public:
    /**
     * @param base   Region start.
     * @param length Region length in bytes (> 0).
     * @param align  Address alignment in bytes (power of two, >= 8).
     */
    RandomPattern(std::uint64_t base, std::uint64_t length,
                  std::uint64_t align = 8);

    std::uint64_t nextAddr(Rng &rng) override;
    void reset() override {}
    std::string name() const override { return "random"; }

  private:
    std::uint64_t _base;
    std::uint64_t _slots;
    std::uint64_t _align;
};

/**
 * Random accesses within a drifting working-set window: draws are
 * uniform over a window of @c windowBytes that jumps to a new random
 * position in the region every @c drawsPerWindow draws. Models the
 * phase behaviour of real programs — strong temporal locality inside a
 * phase, none across phases — which plain RandomPattern lacks.
 */
class WindowedRandomPattern : public AddressPattern
{
  public:
    /**
     * @param base             Region start.
     * @param length           Region length in bytes (>= window).
     * @param window_bytes     Working-set window size (>= 8).
     * @param draws_per_window Draws before the window jumps (> 0).
     */
    WindowedRandomPattern(std::uint64_t base, std::uint64_t length,
                          std::uint64_t window_bytes,
                          std::uint64_t draws_per_window = 4096);

    std::uint64_t nextAddr(Rng &rng) override;
    void reset() override;
    std::string name() const override { return "windowed_random"; }

  private:
    std::uint64_t _base;
    std::uint64_t _length;
    std::uint64_t _window;
    std::uint64_t _drawsPerWindow;
    std::uint64_t _windowBase = 0;
    std::uint64_t _draws = 0;
};

/**
 * Hot-region accesses: Zipf-biased over a (usually small) region, so a
 * few lines absorb most touches. Models globals, locks, stack tops.
 */
class HotspotPattern : public AddressPattern
{
  public:
    /**
     * @param base   Region start.
     * @param length Region length in bytes (> 0).
     * @param skew   Zipf-style skew (0 = uniform; larger = hotter head).
     */
    HotspotPattern(std::uint64_t base, std::uint64_t length,
                   double skew = 1.0);

    std::uint64_t nextAddr(Rng &rng) override;
    void reset() override {}
    std::string name() const override { return "hotspot"; }

  private:
    std::uint64_t _base;
    std::uint64_t _slots;
    double _skew;
};

/**
 * Pointer chase over @c nodes fixed pseudo-random locations: visits a
 * full-period permutation of node slots, so consecutive addresses have
 * essentially no spatial locality, like linked-list traversal.
 */
class PointerChasePattern : public AddressPattern
{
  public:
    /**
     * @param base     Region start.
     * @param nodes    Number of nodes (> 0).
     * @param nodeSize Bytes per node (multiple of 8).
     */
    PointerChasePattern(std::uint64_t base, std::uint64_t nodes,
                        std::uint64_t node_size = 64);

    std::uint64_t nextAddr(Rng &rng) override;
    void reset() override;
    std::string name() const override { return "pointer_chase"; }

  private:
    std::uint64_t _base;
    std::uint64_t _nodes;
    std::uint64_t _nodeSize;
    std::uint64_t _pos = 0;
    std::uint64_t _mult;
    std::uint64_t _inc;
};

/**
 * Weighted mixture of sub-patterns: each call draws one sub-pattern
 * according to the weights and returns its next address.
 */
class MixturePattern : public AddressPattern
{
  public:
    MixturePattern() = default;

    /** Add a component with relative weight @p weight (> 0). */
    void add(std::unique_ptr<AddressPattern> p, double weight);

    std::uint64_t nextAddr(Rng &rng) override;
    void reset() override;
    std::string name() const override { return "mixture"; }

    /** Number of components. */
    std::size_t components() const { return _parts.size(); }

  private:
    struct Part
    {
        std::unique_ptr<AddressPattern> pattern;
        double weight;
    };
    std::vector<Part> _parts;
    double _totalWeight = 0.0;
};

} // namespace c8t::trace

#endif // C8T_TRACE_PATTERNS_HH
