/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The standard library's distributions are not guaranteed to produce the
 * same sequences across implementations, which would make the calibrated
 * workloads non-reproducible between platforms. This module provides a
 * fixed, documented generator (xoshiro256** seeded via splitmix64) and the
 * handful of distributions the workload engine needs, all with exactly
 * specified algorithms.
 */

#ifndef C8T_TRACE_RNG_HH
#define C8T_TRACE_RNG_HH

#include <cstdint>

namespace c8t::trace
{

/**
 * splitmix64: used to expand a single 64-bit seed into generator state.
 * Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
 * generators" (the exact constants below are the canonical ones).
 */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, and fully
 * deterministic across platforms. Not cryptographic; not intended to be.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x8f0c31415926535bull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound); bound must be non-zero. Unbiased
     *  (Lemire's multiply-shift with rejection). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1) with 53 bits of randomness. */
    double uniform();

    /** Bernoulli trial: true with probability @p p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Geometric number of failures before the first success with success
     * probability @p p in (0, 1]; capped at @p cap to bound pathological
     * draws. Used for instruction-gap generation.
     */
    std::uint64_t geometric(double p, std::uint64_t cap = 1000);

    /**
     * Zipf-distributed value in [0, n) with exponent @p s, favouring
     * small values. Implemented by inverse-CDF over a precomputed-free
     * rejection scheme; exact distribution is implementation-defined but
     * deterministic and heavy-tailed, which is all the hot-region model
     * needs.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Re-seed in place. */
    void seed(std::uint64_t seed);

  private:
    std::uint64_t _s[4];
};

} // namespace c8t::trace

#endif // C8T_TRACE_RNG_HH
