/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The standard library's distributions are not guaranteed to produce the
 * same sequences across implementations, which would make the calibrated
 * workloads non-reproducible between platforms. This module provides a
 * fixed, documented generator (xoshiro256** seeded via splitmix64) and the
 * handful of distributions the workload engine needs, all with exactly
 * specified algorithms.
 */

#ifndef C8T_TRACE_RNG_HH
#define C8T_TRACE_RNG_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace c8t::trace
{

/**
 * splitmix64: used to expand a single 64-bit seed into generator state.
 * Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
 * generators" (the exact constants below are the canonical ones).
 */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, and fully
 * deterministic across platforms. Not cryptographic; not intended to be.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x8f0c31415926535bull);

    /** Next raw 64-bit value. Inline: every stream-generation draw
     *  funnels through here (DESIGN.md §7). */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        const std::uint64_t t = _s[1] << 17;

        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);

        return result;
    }

    /** Uniform in [0, bound); bound must be non-zero. Unbiased
     *  (Lemire's multiply-shift with rejection). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1) with 53 bits of randomness. */
    double uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial: true with probability @p p (clamped to [0,1]). */
    bool chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * Geometric number of failures before the first success with success
     * probability @p p in (0, 1]; capped at @p cap to bound pathological
     * draws. Used for instruction-gap generation.
     */
    std::uint64_t geometric(double p, std::uint64_t cap = 1000);

    /**
     * geometric() with the constant factor ln(1-p) precomputed by the
     * caller (@p log1mp must be std::log1p(-p) for the clamped p the
     * plain overload would use, and p must be < 1). Draws the exact
     * same sequence as geometric(); hoisting the logarithm matters
     * because gap generation performs this draw once per access.
     */
    std::uint64_t geometricFromLog(double log1mp, std::uint64_t cap = 1000)
    {
        // Inverse transform: floor(ln(U) / ln(1-p)).
        const double u = std::max(uniform(), 1e-18);
        const double v = std::floor(std::log(u) / log1mp);
        const auto k = static_cast<std::uint64_t>(v);
        return std::min(k, cap);
    }

    /**
     * Zipf-distributed value in [0, n) with exponent @p s, favouring
     * small values. Implemented by inverse-CDF over a precomputed-free
     * rejection scheme; exact distribution is implementation-defined but
     * deterministic and heavy-tailed, which is all the hot-region model
     * needs.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Re-seed in place. */
    void seed(std::uint64_t seed);

  private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _s[4];
};

} // namespace c8t::trace

#endif // C8T_TRACE_RNG_HH
