/**
 * @file
 * Trace file I/O: a compact binary format plus a text format.
 *
 * Traces decouple workload generation from simulation: a stream can be
 * generated once, written to disk, and replayed through every write
 * scheme, guaranteeing that all schemes observe byte-identical input
 * (the examples/trace_replay example demonstrates this flow).
 *
 * Binary format (version 1, little endian):
 *   magic   "C8TTRACE"            8 bytes
 *   version u32                   4 bytes
 *   count   u64 (record count)    8 bytes
 *   records: { addr u64, data u64, gap u32, size u8, type u8 } packed,
 *            30 bytes each.
 */

#ifndef C8T_TRACE_TRACE_IO_HH
#define C8T_TRACE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/access.hh"

namespace c8t::trace
{

/** Current binary trace format version. */
constexpr std::uint32_t traceFormatVersion = 1;

/**
 * Streaming binary trace writer.
 *
 * The record count in the header is back-patched by finish(); a writer
 * destroyed without finish() leaves a count of zero, which readers treat
 * as an error, so truncated traces are detected.
 */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.
     * @throws std::runtime_error when the file cannot be opened.
     */
    explicit TraceWriter(const std::string &path);

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void write(const MemAccess &a);

    /** Back-patch the header record count and flush. Idempotent. */
    void finish();

    /** Number of records written so far. */
    std::uint64_t count() const { return _count; }

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
    std::uint64_t _count = 0;
    bool _finished = false;
};

/**
 * Binary trace reader; doubles as an AccessGenerator so traces can be
 * replayed anywhere a synthetic generator is accepted.
 */
class TraceReader : public AccessGenerator
{
  public:
    /**
     * Open and validate @p path.
     * @throws std::runtime_error on missing file, bad magic, unsupported
     *         version, or zero record count (truncated writer).
     */
    explicit TraceReader(const std::string &path);

    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(MemAccess &out) override;
    void reset() override;
    std::string name() const override;

    /** Total records in the trace. */
    std::uint64_t count() const { return _total; }

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
    std::string _path;
    std::uint64_t _total = 0;
    std::uint64_t _readSoFar = 0;
};

/**
 * Write a whole trace as human-readable text, one access per line
 * ("R 0xdeadbeef sz=8 gap=3"). Intended for debugging small traces.
 */
void writeTextTrace(std::ostream &os, const std::vector<MemAccess> &trace);

/**
 * Parse a text trace produced by writeTextTrace().
 * @throws std::runtime_error on malformed lines.
 */
std::vector<MemAccess> readTextTrace(std::istream &is);

/** Drain up to @p limit accesses from @p gen into a vector. */
std::vector<MemAccess> collect(AccessGenerator &gen, std::uint64_t limit);

} // namespace c8t::trace

#endif // C8T_TRACE_TRACE_IO_HH
