/**
 * @file
 * Calibrated SPEC CPU2006 stream profiles.
 *
 * One StreamParams per benchmark, calibrated so the measured stream
 * statistics reproduce the paper's Figures 3-5 anchors (see DESIGN.md):
 * the paper gives exact values for a handful of benchmarks (bwaves WW
 * share 24 %, silent 77 %, writes > 22 % of instructions; wrf and lbm
 * similar; gamess and cactusADM read-reuse heavy) and averages for the
 * rest (26 % reads / 14 % writes of instructions, 27 % same-set pairs,
 * 42 % silent writes). Per-benchmark values for unanchored benchmarks
 * are chosen from the well-known qualitative behaviour of each SPEC
 * workload and constrained to reproduce the paper's averages.
 */

#ifndef C8T_TRACE_SPEC_PROFILES_HH
#define C8T_TRACE_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "trace/markov_stream.hh"

namespace c8t::trace
{

/**
 * All 25 benchmark profiles, in the order used by every figure/table
 * (the paper runs "25 out of 29" SPEC CPU2006 benchmarks; the four
 * omissions are not named in the paper — we omit dealII, tonto,
 * omnetpp and xalancbmk).
 */
const std::vector<StreamParams> &specProfiles();

/**
 * Look up a profile by benchmark name.
 * @throws std::out_of_range when @p name is not one of the 25.
 */
const StreamParams &specProfile(const std::string &name);

/** The 25 benchmark names, in canonical order. */
std::vector<std::string> specBenchmarkNames();

} // namespace c8t::trace

#endif // C8T_TRACE_SPEC_PROFILES_HH
