/**
 * @file
 * Zero-copy replay of a pre-generated access stream.
 *
 * ReplayGenerator adapts an immutable, ref-counted MemAccess buffer to
 * the AccessGenerator interface. The core::StreamCache hands the same
 * buffer to every sweep job that requests the same workload signature,
 * so the stream is generated once per process and replayed by plain
 * memcpy afterwards — the accesses are byte-identical to what the
 * original generator would have produced, and concurrent replays never
 * contend (each generator only advances its own cursor).
 */

#ifndef C8T_TRACE_REPLAY_HH
#define C8T_TRACE_REPLAY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/access.hh"

namespace c8t::trace
{

/**
 * Replays a shared immutable buffer of accesses.
 */
class ReplayGenerator : public AccessGenerator
{
  public:
    /** The shared stream storage; never mutated after construction. */
    using Buffer = std::shared_ptr<const std::vector<MemAccess>>;

    /**
     * @param name   Name the originating generator reported (results
     *               must be indistinguishable from a live run).
     * @param buffer The pre-generated stream; must not be null.
     * @throws std::invalid_argument when @p buffer is null.
     */
    ReplayGenerator(std::string name, Buffer buffer);

    bool next(MemAccess &out) override;
    std::size_t fillChunk(MemAccess *dst, std::size_t n) override;

    /** Lend a window of the immutable buffer directly — the replay
     *  fast path costs a pointer bump instead of a 96 KiB copy. */
    const MemAccess *borrowChunk(std::size_t n,
                                 std::size_t &got) override
    {
        got = std::min(n, _buffer->size() - _pos);
        const MemAccess *view = _buffer->data() + _pos;
        _pos += got;
        return view;
    }

    void reset() override { _pos = 0; }
    std::string name() const override { return _name; }

    /** Total accesses in the underlying buffer. */
    std::size_t size() const { return _buffer->size(); }

    /** Accesses remaining before the stream ends. */
    std::size_t remaining() const { return _buffer->size() - _pos; }

  private:
    std::string _name;
    Buffer _buffer;
    std::size_t _pos = 0;
};

} // namespace c8t::trace

#endif // C8T_TRACE_REPLAY_HH
