/**
 * @file
 * Markov stream model implementation.
 *
 * Type/scenario algebra. Let r = readShare, w = 1 - r, and let rr, rw,
 * ww, wr be the same-set pair shares (fractions of all pairs). Then:
 *
 *   P(cur = R, same | prev = R) = rr / r
 *   P(cur = W, same | prev = R) = rw / r
 *   P(cur = R, same | prev = W) = wr / w
 *   P(cur = W, same | prev = W) = ww / w
 *
 * reproduce the pair shares exactly (multiply by the stationary type
 * probability of the previous access). The remaining probability mass in
 * each row is a diff-set access whose type is drawn independently with
 * P(write) = wStar. Stationarity of the type marginal requires
 *
 *   w = rw + ww + wStar * (1 - rr - rw - ww - wr)
 *   =>  wStar = (w - ww - rw) / (1 - sameSetShare)
 *
 * which validate() checks lands in [0, 1].
 */

#include "trace/markov_stream.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace c8t::trace
{

namespace
{

/** Base virtual address of every stream's data region. */
constexpr std::uint64_t regionBase = 0x100000000ull;

void
requireProb(double v, const char *what, const std::string &bench)
{
    if (v < 0.0 || v > 1.0) {
        std::ostringstream os;
        os << "StreamParams[" << bench << "]: " << what << " = " << v
           << " outside [0, 1]";
        throw std::invalid_argument(os.str());
    }
}

} // anonymous namespace

double
StreamParams::diffSetWriteProb() const
{
    const double same = sameSetShare();
    if (same >= 1.0)
        return 0.0;
    return (writeShare() - ww - rw) / (1.0 - same);
}

void
StreamParams::validate() const
{
    requireProb(memFraction, "memFraction", name);
    requireProb(readShare, "readShare", name);
    requireProb(rr, "rr", name);
    requireProb(rw, "rw", name);
    requireProb(ww, "ww", name);
    requireProb(wr, "wr", name);
    requireProb(silentFraction, "silentFraction", name);
    requireProb(sameBlockBias, "sameBlockBias", name);
    requireProb(pWriteReturn, "pWriteReturn", name);
    requireProb(pReadReturn, "pReadReturn", name);

    if (memFraction <= 0.0) {
        throw std::invalid_argument(
            "StreamParams[" + name + "]: memFraction must be positive");
    }

    const double same = sameSetShare();
    if (same >= 1.0) {
        throw std::invalid_argument(
            "StreamParams[" + name + "]: same-set shares sum to >= 1");
    }
    if (rr + rw > readShare + 1e-12) {
        throw std::invalid_argument(
            "StreamParams[" + name +
            "]: rr + rw exceeds readShare (impossible pair shares)");
    }
    if (ww + wr > writeShare() + 1e-12) {
        throw std::invalid_argument(
            "StreamParams[" + name +
            "]: ww + wr exceeds writeShare (impossible pair shares)");
    }

    const double w_star = diffSetWriteProb();
    if (w_star < -1e-12 || w_star > 1.0 + 1e-12) {
        std::ostringstream os;
        os << "StreamParams[" << name << "]: residual write probability "
           << w_star << " outside [0, 1]; the type mix and pair shares "
           << "are jointly infeasible";
        throw std::invalid_argument(os.str());
    }

    if (footprintBytes < refSetSpan) {
        throw std::invalid_argument(
            "StreamParams[" + name + "]: footprint smaller than one pass "
            "over the reference sets (" + std::to_string(refSetSpan) +
            " bytes)");
    }
    if (seqWeight + randWeight + hotWeight + chaseWeight <= 0.0) {
        throw std::invalid_argument(
            "StreamParams[" + name + "]: all mixture weights are zero");
    }
}

MarkovStream::MarkovStream(StreamParams params)
    : _params(std::move(params)), _rng(_params.seed)
{
    _params.validate();
    // Round the footprint up to a whole number of reference-set spans so
    // that same-set tag hops can wrap without changing the set index.
    _footprint =
        (_params.footprintBytes + refSetSpan - 1) / refSetSpan * refSetSpan;
    _base = regionBase;
    // The gap draw runs once per generated access; hoist the constant
    // ln(1-p) term with the same clamping Rng::geometric applies.
    _gapZero = _params.memFraction >= 1.0;
    if (!_gapZero)
        _gapLogQ = std::log1p(-std::max(_params.memFraction, 1e-9));
    // Hoist the per-access transition thresholds: each is the exact
    // expression generate() historically evaluated per draw, computed
    // once (bit-identical comparisons, divides paid at construction).
    const double r = _params.readShare;
    const double w = _params.writeShare();
    _hasReadShare = r > 0.0;
    _hasWriteShare = w > 0.0;
    _rrGivenRead = _hasReadShare ? _params.rr / r : 0.0;
    _rwGivenRead = _hasReadShare ? (_params.rr + _params.rw) / r : 0.0;
    _wwGivenWrite = _hasWriteShare ? _params.ww / w : 0.0;
    _wrGivenWrite =
        _hasWriteShare ? (_params.ww + _params.wr) / w : 0.0;
    _diffSetWriteProb = _params.diffSetWriteProb();
    buildPatterns();
}

void
MarkovStream::buildPatterns()
{
    _mixture = std::make_unique<MixturePattern>();
    if (_params.seqWeight > 0.0) {
        _mixture->add(std::make_unique<SequentialPattern>(
                          _base, _footprint, 8),
                      _params.seqWeight);
    }
    if (_params.randWeight > 0.0) {
        if (_params.randWindowBytes >= 8 &&
            _params.randWindowBytes < _footprint) {
            // Phase length amortises the window's cold start: ~4
            // touches per word in the window per phase.
            const std::uint64_t phase_draws =
                _params.randWindowBytes / 2;
            _mixture->add(std::make_unique<WindowedRandomPattern>(
                              _base, _footprint,
                              _params.randWindowBytes, phase_draws),
                          _params.randWeight);
        } else {
            _mixture->add(std::make_unique<RandomPattern>(
                              _base, _footprint, 8),
                          _params.randWeight);
        }
    }
    if (_params.hotWeight > 0.0) {
        // Hot region: two reference-set spans (32 KB) — comfortably
        // cache-resident.
        const std::uint64_t hot_len = std::min<std::uint64_t>(
            _footprint, 2 * refSetSpan);
        _mixture->add(std::make_unique<HotspotPattern>(
                          _base, hot_len, _params.hotSkew),
                      _params.hotWeight);
    }
    if (_params.chaseWeight > 0.0) {
        _mixture->add(std::make_unique<PointerChasePattern>(
                          _base, _footprint / 64, 64),
                      _params.chaseWeight);
    }
}

void
MarkovStream::reset()
{
    _rng.seed(_params.seed);
    _mixture->reset();
    _first = true;
    _prevType = AccessType::Read;
    _prevAddr = 0;
    _lastWriteAddr = 0;
    _haveLastWrite = false;
    _shadow.clear();
    _valueCounter = 0;
}

std::uint64_t
MarkovStream::shadowValue(std::uint64_t addr) const
{
    return _shadow.get(addr & ~7ull);
}

std::uint64_t
MarkovStream::sameSetAddr(std::uint64_t prev)
{
    const std::uint64_t block = prev / refBlockBytes * refBlockBytes;
    if (_rng.chance(_params.sameBlockBias)) {
        // Same reference block, random word within it.
        return block + _rng.below(refBlockBytes / 8) * 8;
    }
    // Different block, same reference set: hop a small number of set
    // spans, wrapping within the footprint (a multiple of refSetSpan,
    // so the set index is preserved).
    const std::uint64_t hops = _rng.between(1, 3);
    const std::uint64_t word = block + _rng.below(refBlockBytes / 8) * 8;
    const std::uint64_t off = (word - _base + hops * refSetSpan) % _footprint;
    return _base + off;
}

std::uint64_t
MarkovStream::diffSetAddr(std::uint64_t prev, AccessType cur)
{
    // Optionally return to the most recently written set — but only when
    // that would not accidentally create a consecutive same-set pair,
    // which would distort the calibrated Figure 4 shares. Writes return
    // more often than reads (spatio-temporal store reuse).
    const double p_return = cur == AccessType::Write
                                ? _params.pWriteReturn
                                : _params.pReadReturn;
    if (_haveLastWrite && _rng.chance(p_return) &&
        refSetOf(_lastWriteAddr) != refSetOf(prev)) {
        const std::uint64_t block =
            _lastWriteAddr / refBlockBytes * refBlockBytes;
        return block + _rng.below(refBlockBytes / 8) * 8;
    }

    std::uint64_t addr = _mixture->nextAddr(_rng) & ~7ull;
    if (!_first && refSetOf(addr) == refSetOf(prev)) {
        // Bump one reference block forward: adjacent blocks map to
        // adjacent sets, so this guarantees a different set while
        // preserving the pattern's spatial character.
        addr += refBlockBytes;
        if (addr >= _base + _footprint)
            addr -= _footprint;
    }
    return addr;
}

std::uint64_t
MarkovStream::freshValue(std::uint64_t addr)
{
    // Unique-per-write values so a non-silent write can never be
    // accidentally silent.
    std::uint64_t state = ++_valueCounter;
    std::uint64_t v = splitmix64(state);
    const std::uint64_t current = _shadow.get(addr & ~7ull);
    if (v == current)
        ++v;
    return v;
}

bool
MarkovStream::next(MemAccess &out)
{
    generate(out);
    return true;
}

std::size_t
MarkovStream::fillChunk(MemAccess *dst, std::size_t n)
{
    // Unbounded stream: always produces n accesses. The non-virtual
    // inner loop is what the chunked runner buys over per-access
    // next() dispatch.
    for (std::size_t i = 0; i < n; ++i)
        generate(dst[i]);
    return n;
}

void
MarkovStream::generate(MemAccess &out)
{
    out.gap = _gapZero ? 0u
                       : static_cast<std::uint32_t>(
                             _rng.geometricFromLog(_gapLogQ));
    out.size = 8;

    AccessType cur;
    bool same_set;

    if (_first) {
        cur = _rng.chance(_params.writeShare()) ? AccessType::Write
                                                : AccessType::Read;
        same_set = false;
    } else if (_prevType == AccessType::Read) {
        const double u = _rng.uniform();
        if (_hasReadShare && u < _rrGivenRead) {
            cur = AccessType::Read;
            same_set = true;
        } else if (_hasReadShare && u < _rwGivenRead) {
            cur = AccessType::Write;
            same_set = true;
        } else {
            same_set = false;
            cur = _rng.chance(_diffSetWriteProb)
                      ? AccessType::Write : AccessType::Read;
        }
    } else {
        const double u = _rng.uniform();
        if (_hasWriteShare && u < _wwGivenWrite) {
            cur = AccessType::Write;
            same_set = true;
        } else if (_hasWriteShare && u < _wrGivenWrite) {
            cur = AccessType::Read;
            same_set = true;
        } else {
            same_set = false;
            cur = _rng.chance(_diffSetWriteProb)
                      ? AccessType::Write : AccessType::Read;
        }
    }

    const std::uint64_t addr = (_first || !same_set)
                                   ? diffSetAddr(_prevAddr, cur)
                                   : sameSetAddr(_prevAddr);

    out.addr = addr;
    out.type = cur;
    out.data = 0;

    if (cur == AccessType::Write) {
        const std::uint64_t word = addr & ~7ull;
        if (_rng.chance(_params.silentFraction)) {
            out.data = _shadow.get(word);
        } else {
            out.data = freshValue(addr);
            _shadow.set(word, out.data);
        }
        _lastWriteAddr = addr;
        _haveLastWrite = true;
    }

    _prevType = cur;
    _prevAddr = addr;
    _first = false;
}

std::string
streamSignature(const StreamParams &p)
{
    // Hexfloat rendering is exact: distinct doubles can never collide,
    // and equal doubles always render identically.
    const auto put_f = [](std::ostringstream &os, const char *field,
                          double v) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%a", v);
        os << '|' << field << '=' << buf;
    };

    std::ostringstream os;
    os << "markov:v1|name=" << p.name;
    put_f(os, "mem", p.memFraction);
    put_f(os, "read", p.readShare);
    put_f(os, "rr", p.rr);
    put_f(os, "rw", p.rw);
    put_f(os, "ww", p.ww);
    put_f(os, "wr", p.wr);
    put_f(os, "silent", p.silentFraction);
    put_f(os, "blockbias", p.sameBlockBias);
    put_f(os, "wret", p.pWriteReturn);
    put_f(os, "rret", p.pReadReturn);
    os << "|foot=" << p.footprintBytes
       << "|window=" << p.randWindowBytes;
    put_f(os, "seq", p.seqWeight);
    put_f(os, "rand", p.randWeight);
    put_f(os, "hot", p.hotWeight);
    put_f(os, "chase", p.chaseWeight);
    put_f(os, "skew", p.hotSkew);
    os << "|seed=" << p.seed;
    return os.str();
}

} // namespace c8t::trace
