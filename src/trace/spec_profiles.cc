/**
 * @file
 * The calibrated per-benchmark parameter table.
 *
 * Table columns (per benchmark):
 *   rd_i, wr_i : read / write fraction of *instructions* (Fig. 3)
 *   rr..wr     : consecutive same-set pair shares (Fig. 4)
 *   silent     : silent-store fraction of writes (Fig. 5)
 *   p_wret     : non-adjacent write-return probability (grouping reach)
 *   p_rret     : non-adjacent read-return probability (bypassing reach)
 *   foot_mb    : footprint in MiB
 *   seq/rnd/hot/chase : diff-set address mixture weights
 *
 * Anchors from the paper text: bwaves (writes > 22 % of instructions,
 * WW = 24 %, silent = 77 %, best WG reduction), wrf and lbm close
 * behind, gamess and cactusADM with the highest RR shares. Averages:
 * reads 26 % / writes 14 % of instructions, same-set 27 %, silent 42 %.
 */

#include "trace/spec_profiles.hh"

#include <stdexcept>

namespace c8t::trace
{

namespace
{

StreamParams
make(const std::string &name, double rd_i, double wr_i,
     double rr, double rw, double ww, double wr,
     double silent, double p_wret, double p_rret, double foot_mb,
     double seq, double rnd, double hot, double chase,
     std::uint64_t seed)
{
    StreamParams p;
    p.name = name;
    p.memFraction = rd_i + wr_i;
    p.readShare = rd_i / p.memFraction;
    p.rr = rr;
    p.rw = rw;
    p.ww = ww;
    p.wr = wr;
    p.silentFraction = silent;
    p.pWriteReturn = p_wret;
    p.pReadReturn = p_rret;
    p.footprintBytes = static_cast<std::uint64_t>(foot_mb * (1 << 20));
    p.seqWeight = seq;
    p.randWeight = rnd;
    p.hotWeight = hot;
    p.chaseWeight = chase;
    p.seed = seed;
    // Cache-hostile benchmarks draw random addresses over the whole
    // footprint; the rest reuse a phase-local working set.
    if (name == "mcf" || name == "milc" || name == "soplex")
        p.randWindowBytes = 0;
    else if (name == "astar" || name == "gobmk" || name == "sjeng")
        p.randWindowBytes = 256 * 1024;
    p.validate();
    return p;
}

std::vector<StreamParams>
buildProfiles()
{
    std::vector<StreamParams> v;
    v.reserve(25);

    //            name         rd_i  wr_i   rr    rw    ww    wr  silent p_wret p_rret foot  seq  rnd  hot  chase seed
    v.push_back(make("perlbench", 0.29, 0.16, 0.12, 0.03, 0.10, 0.04, 0.45, 0.49, 0.054,  4, 0.35, 0.150, 0.375, 0.050, 101));
    v.push_back(make("bzip2",     0.26, 0.12, 0.11, 0.02, 0.08, 0.03, 0.35, 0.44, 0.045,  8, 0.55, 0.150, 0.250, 0.013, 102));
    v.push_back(make("gcc",       0.27, 0.15, 0.13, 0.03, 0.11, 0.04, 0.50, 0.49, 0.054,  6, 0.30, 0.175, 0.375, 0.050, 103));
    v.push_back(make("bwaves",    0.28, 0.22, 0.10, 0.02, 0.24, 0.03, 0.77, 0.64, 0.090, 16, 0.70, 0.075, 0.250, 0.013, 104));
    v.push_back(make("gamess",    0.30, 0.12, 0.20, 0.02, 0.07, 0.02, 0.38, 0.54, 0.068,  2, 0.45, 0.100, 0.600, 0.013, 105));
    v.push_back(make("mcf",       0.26, 0.09, 0.08, 0.02, 0.05, 0.02, 0.30, 0.34, 0.023, 32, 0.10, 0.200, 0.125, 0.113, 106));
    v.push_back(make("milc",      0.26, 0.14, 0.09, 0.02, 0.10, 0.03, 0.40, 0.44, 0.045, 24, 0.60, 0.125, 0.250, 0.013, 107));
    v.push_back(make("zeusmp",    0.24, 0.14, 0.10, 0.02, 0.12, 0.03, 0.48, 0.49, 0.054, 12, 0.65, 0.100, 0.250, 0.013, 108));
    v.push_back(make("gromacs",   0.25, 0.12, 0.12, 0.02, 0.09, 0.03, 0.42, 0.49, 0.054,  4, 0.50, 0.125, 0.375, 0.025, 109));
    v.push_back(make("cactusADM", 0.31, 0.13, 0.19, 0.02, 0.08, 0.02, 0.40, 0.54, 0.068,  8, 0.55, 0.100, 0.500, 0.013, 110));
    v.push_back(make("leslie3d",  0.27, 0.15, 0.11, 0.02, 0.13, 0.03, 0.52, 0.52, 0.063, 12, 0.65, 0.100, 0.250, 0.013, 111));
    v.push_back(make("namd",      0.25, 0.11, 0.12, 0.02, 0.08, 0.03, 0.38, 0.46, 0.050,  4, 0.50, 0.125, 0.375, 0.025, 112));
    v.push_back(make("gobmk",     0.22, 0.11, 0.10, 0.02, 0.07, 0.03, 0.35, 0.42, 0.041,  4, 0.25, 0.175, 0.375, 0.062, 113));
    v.push_back(make("soplex",    0.28, 0.11, 0.12, 0.02, 0.07, 0.02, 0.33, 0.44, 0.045, 16, 0.40, 0.175, 0.250, 0.037, 114));
    v.push_back(make("povray",    0.28, 0.13, 0.13, 0.03, 0.09, 0.03, 0.40, 0.49, 0.054,  2, 0.40, 0.125, 0.600, 0.025, 115));
    v.push_back(make("calculix",  0.27, 0.13, 0.12, 0.02, 0.10, 0.03, 0.44, 0.49, 0.054,  6, 0.55, 0.125, 0.375, 0.013, 116));
    v.push_back(make("hmmer",     0.30, 0.16, 0.14, 0.03, 0.12, 0.04, 0.47, 0.52, 0.063,  2, 0.50, 0.125, 0.500, 0.013, 117));
    v.push_back(make("sjeng",     0.21, 0.10, 0.09, 0.02, 0.06, 0.03, 0.32, 0.39, 0.032,  4, 0.20, 0.200, 0.375, 0.062, 118));
    v.push_back(make("GemsFDTD",  0.28, 0.16, 0.11, 0.02, 0.14, 0.03, 0.55, 0.54, 0.068, 16, 0.70, 0.075, 0.250, 0.013, 119));
    v.push_back(make("libquantum",0.22, 0.12, 0.10, 0.02, 0.13, 0.03, 0.60, 0.54, 0.068,  8, 0.80, 0.050, 0.125, 0.013, 120));
    v.push_back(make("h264ref",   0.28, 0.14, 0.13, 0.03, 0.10, 0.03, 0.41, 0.49, 0.054,  4, 0.45, 0.125, 0.500, 0.025, 121));
    v.push_back(make("lbm",       0.26, 0.21, 0.09, 0.02, 0.21, 0.03, 0.70, 0.62, 0.086, 16, 0.75, 0.050, 0.250, 0.013, 122));
    v.push_back(make("astar",     0.26, 0.10, 0.10, 0.02, 0.06, 0.02, 0.30, 0.39, 0.032,  8, 0.20, 0.200, 0.250, 0.075, 123));
    v.push_back(make("wrf",       0.27, 0.18, 0.10, 0.02, 0.18, 0.03, 0.65, 0.59, 0.077, 12, 0.70, 0.075, 0.250, 0.013, 124));
    v.push_back(make("sphinx3",   0.28, 0.12, 0.13, 0.02, 0.08, 0.03, 0.38, 0.46, 0.050,  6, 0.50, 0.125, 0.375, 0.025, 125));

    return v;
}

} // anonymous namespace

const std::vector<StreamParams> &
specProfiles()
{
    static const std::vector<StreamParams> profiles = buildProfiles();
    return profiles;
}

const StreamParams &
specProfile(const std::string &name)
{
    for (const auto &p : specProfiles()) {
        if (p.name == name)
            return p;
    }
    throw std::out_of_range("specProfile: unknown benchmark " + name);
}

std::vector<std::string>
specBenchmarkNames()
{
    std::vector<std::string> names;
    names.reserve(specProfiles().size());
    for (const auto &p : specProfiles())
        names.push_back(p.name);
    return names;
}

} // namespace c8t::trace
