/**
 * @file
 * ReplayGenerator implementation.
 */

#include "trace/replay.hh"

#include <algorithm>
#include <stdexcept>

namespace c8t::trace
{

ReplayGenerator::ReplayGenerator(std::string name, Buffer buffer)
    : _name(std::move(name)), _buffer(std::move(buffer))
{
    if (!_buffer)
        throw std::invalid_argument("ReplayGenerator: null buffer");
}

bool
ReplayGenerator::next(MemAccess &out)
{
    if (_pos >= _buffer->size())
        return false;
    out = (*_buffer)[_pos++];
    return true;
}

std::size_t
ReplayGenerator::fillChunk(MemAccess *dst, std::size_t n)
{
    const std::size_t got = std::min(n, _buffer->size() - _pos);
    std::copy_n(_buffer->data() + _pos, got, dst);
    _pos += got;
    return got;
}

} // namespace c8t::trace
