/**
 * @file
 * The memory-access record exchanged between workload generators, traces
 * and the cache model, plus the generator interface.
 */

#ifndef C8T_TRACE_ACCESS_HH
#define C8T_TRACE_ACCESS_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace c8t::trace
{

/** Kind of memory access. */
enum class AccessType : std::uint8_t {
    Read = 0,
    Write = 1,
};

/** Human-readable name ("R"/"W"). */
const char *toString(AccessType t);

/**
 * One dynamic memory access.
 *
 * The record carries the data payload so that silent stores are a real,
 * observable property of the stream (the Set-Buffer detects them by value
 * comparison, exactly as the proposed hardware does) rather than a flag.
 *
 * @c gap is the number of non-memory instructions executed since the
 * previous memory access; it reconstructs the paper's "share of executed
 * instructions that are memory requests" (Figure 3) and feeds the timing
 * model.
 */
struct MemAccess
{
    /** Byte address (physical; up to 48 bits used). */
    std::uint64_t addr = 0;

    /** Data payload for writes (little endian, @c size bytes valid).
     *  Ignored for reads. */
    std::uint64_t data = 0;

    /** Non-memory instructions since the previous memory access. */
    std::uint32_t gap = 0;

    /** Access size in bytes: 1, 2, 4 or 8; must not straddle an 8-byte
     *  word boundary. */
    std::uint8_t size = 8;

    /** Read or write. */
    AccessType type = AccessType::Read;

    /** True when the access is a write. */
    bool isWrite() const { return type == AccessType::Write; }

    /** True when the access is a read. */
    bool isRead() const { return type == AccessType::Read; }

    /** Render as "R 0x1234 sz=8" style text (for debugging/traces). */
    std::string toString() const;

    /** Field-wise equality (used by trace round-trip tests). */
    bool operator==(const MemAccess &other) const = default;
};

/**
 * A source of memory accesses.
 *
 * Implementations include the calibrated SPEC-profile Markov model, the
 * kernel workloads, and the trace-file reader. Generators are pull-based:
 * the simulator asks for the next access until the stream ends.
 */
class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /**
     * Produce the next access.
     *
     * @param out Filled in on success.
     * @retval true  An access was produced.
     * @retval false The stream has ended; @p out is unchanged.
     */
    virtual bool next(MemAccess &out) = 0;

    /**
     * Produce up to @p n accesses into @p dst.
     *
     * Semantically equivalent to calling next() repeatedly: the
     * concatenation of all fillChunk() results is byte-identical to
     * the next() stream (tests/stream_identity_test.cc pins this for
     * every generator). The base implementation loops over next();
     * hot generators (MarkovStream, the kernels, ReplayGenerator)
     * override it with a tight non-virtual inner loop so the sweep
     * engine pays one virtual dispatch per chunk instead of one per
     * access.
     *
     * @param dst Destination array with room for @p n records.
     * @param n   Maximum number of accesses to produce.
     * @return Number of accesses produced; less than @p n only when
     *         the stream ended.
     */
    virtual std::size_t fillChunk(MemAccess *dst, std::size_t n);

    /**
     * Zero-copy variant of fillChunk(): advance the stream by up to
     * @p n accesses and return a pointer into generator-owned storage
     * holding them, or nullptr when the generator cannot lend a view
     * (the base implementation; callers then fall back to
     * fillChunk()). A returned pointer stays valid until the next
     * call that advances or resets the stream. The lent records are
     * byte-identical to what fillChunk() would have copied out, so
     * replay consumers (MultiSchemeRunner) skip one bulk copy per
     * chunk with no observable difference.
     *
     * @param n   Maximum number of accesses to produce.
     * @param got Set to the number of accesses in the returned view
     *            (0 at end of stream); untouched when nullptr is
     *            returned.
     * @return Pointer to @p got consecutive records, or nullptr when
     *         borrowing is unsupported.
     */
    virtual const MemAccess *borrowChunk(std::size_t n, std::size_t &got)
    {
        (void)n;
        (void)got;
        return nullptr;
    }

    /** Restart the stream from the beginning (same seed, same content). */
    virtual void reset() = 0;

    /** Short generator name for reports. */
    virtual std::string name() const = 0;
};

} // namespace c8t::trace

#endif // C8T_TRACE_ACCESS_HH
