/**
 * @file
 * Trace I/O implementation.
 */

#include "trace/trace_io.hh"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace c8t::trace
{

namespace
{

constexpr std::array<char, 8> traceMagic =
    {'C', '8', 'T', 'T', 'R', 'A', 'C', 'E'};

constexpr std::size_t headerSize = 8 + 4 + 8;
constexpr std::size_t recordSize = 8 + 8 + 4 + 1 + 1;

void
packU32(char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void
packU64(char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t
unpackU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
unpackU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

} // anonymous namespace

struct TraceWriter::Impl
{
    std::ofstream out;
};

TraceWriter::TraceWriter(const std::string &path)
    : _impl(std::make_unique<Impl>())
{
    _impl->out.open(path, std::ios::binary | std::ios::trunc);
    if (!_impl->out)
        throw std::runtime_error("TraceWriter: cannot open " + path);

    char header[headerSize] = {};
    std::memcpy(header, traceMagic.data(), traceMagic.size());
    packU32(header + 8, traceFormatVersion);
    packU64(header + 12, 0); // count back-patched by finish()
    _impl->out.write(header, headerSize);
}

TraceWriter::~TraceWriter()
{
    // Intentionally no implicit finish(): an unfinished trace keeps a
    // zero record count so readers reject it as truncated.
}

void
TraceWriter::write(const MemAccess &a)
{
    char rec[recordSize];
    packU64(rec + 0, a.addr);
    packU64(rec + 8, a.data);
    packU32(rec + 16, a.gap);
    rec[20] = static_cast<char>(a.size);
    rec[21] = static_cast<char>(a.type);
    _impl->out.write(rec, recordSize);
    ++_count;
}

void
TraceWriter::finish()
{
    if (_finished)
        return;
    _finished = true;
    _impl->out.seekp(12, std::ios::beg);
    char buf[8];
    packU64(buf, _count);
    _impl->out.write(buf, 8);
    _impl->out.flush();
    if (!_impl->out)
        throw std::runtime_error("TraceWriter: write failure on finish");
}

struct TraceReader::Impl
{
    std::ifstream in;
};

TraceReader::TraceReader(const std::string &path)
    : _impl(std::make_unique<Impl>()), _path(path)
{
    _impl->in.open(path, std::ios::binary);
    if (!_impl->in)
        throw std::runtime_error("TraceReader: cannot open " + path);

    char header[headerSize];
    _impl->in.read(header, headerSize);
    if (_impl->in.gcount() != static_cast<std::streamsize>(headerSize))
        throw std::runtime_error("TraceReader: truncated header in " + path);
    if (std::memcmp(header, traceMagic.data(), traceMagic.size()) != 0)
        throw std::runtime_error("TraceReader: bad magic in " + path);
    const std::uint32_t version = unpackU32(header + 8);
    if (version != traceFormatVersion) {
        throw std::runtime_error(
            "TraceReader: unsupported version in " + path);
    }
    _total = unpackU64(header + 12);
    if (_total == 0) {
        throw std::runtime_error(
            "TraceReader: zero-length or unfinished trace " + path);
    }
}

TraceReader::~TraceReader() = default;

bool
TraceReader::next(MemAccess &out)
{
    if (_readSoFar >= _total)
        return false;

    char rec[recordSize];
    _impl->in.read(rec, recordSize);
    if (_impl->in.gcount() != static_cast<std::streamsize>(recordSize))
        throw std::runtime_error("TraceReader: truncated record in " + _path);

    out.addr = unpackU64(rec + 0);
    out.data = unpackU64(rec + 8);
    out.gap = unpackU32(rec + 16);
    out.size = static_cast<std::uint8_t>(rec[20]);
    out.type = static_cast<AccessType>(rec[21]);
    ++_readSoFar;
    return true;
}

void
TraceReader::reset()
{
    _impl->in.clear();
    _impl->in.seekg(headerSize, std::ios::beg);
    _readSoFar = 0;
}

std::string
TraceReader::name() const
{
    return "trace:" + _path;
}

void
writeTextTrace(std::ostream &os, const std::vector<MemAccess> &trace)
{
    for (const auto &a : trace)
        os << a.toString() << '\n';
}

std::vector<MemAccess>
readTextTrace(std::istream &is)
{
    std::vector<MemAccess> out;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;

        std::istringstream ls(line);
        std::string type_tok, addr_tok, size_tok, gap_tok, data_tok;
        ls >> type_tok >> addr_tok >> size_tok >> gap_tok;

        MemAccess a;
        if (type_tok == "R") {
            a.type = AccessType::Read;
        } else if (type_tok == "W") {
            a.type = AccessType::Write;
            ls >> data_tok;
        } else {
            throw std::runtime_error(
                "readTextTrace: bad type at line " + std::to_string(lineno));
        }

        auto parseField = [&](const std::string &tok,
                              const std::string &prefix) -> std::uint64_t {
            if (tok.rfind(prefix, 0) != 0) {
                throw std::runtime_error("readTextTrace: expected '" +
                                         prefix + "...' at line " +
                                         std::to_string(lineno));
            }
            const std::string value = tok.substr(prefix.size());
            const int base =
                value.rfind("0x", 0) == 0 ? 16 : 10;
            return std::stoull(value, nullptr, base);
        };

        if (addr_tok.rfind("0x", 0) != 0) {
            throw std::runtime_error(
                "readTextTrace: bad address at line " +
                std::to_string(lineno));
        }
        a.addr = std::stoull(addr_tok, nullptr, 16);
        a.size = static_cast<std::uint8_t>(parseField(size_tok, "sz="));
        a.gap = static_cast<std::uint32_t>(parseField(gap_tok, "gap="));
        if (a.isWrite())
            a.data = parseField(data_tok, "data=");

        out.push_back(a);
    }
    return out;
}

std::vector<MemAccess>
collect(AccessGenerator &gen, std::uint64_t limit)
{
    std::vector<MemAccess> out;
    out.reserve(limit);
    MemAccess a;
    while (out.size() < limit && gen.next(a))
        out.push_back(a);
    return out;
}

} // namespace c8t::trace
