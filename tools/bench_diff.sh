#!/usr/bin/env bash
# Compare two BENCH_<date>.json performance snapshots (as written by
# tools/bench_report.sh) record-by-record and fail when throughput
# regressed.
#
#   * JSON-lines records are matched on (kind, label, workers) and
#     compared on accesses_per_sec — kind is "sweep" for plain sweeps,
#     "vdd" for voltage-sweep records, "hierarchy" for two-level
#     sweeps (whose l2_min_vdd map rides along for context; the
#     record pairs and diffs on throughput like any other),
#     "explore" for design-space
#     explorer soaks (whose config_runs_per_sec rides along for
#     context) and "micro" for the way-compare microbenchmark rows, so
#     unlike kinds never pair even when they share a label; a snapshot
#     may mix any subset of kinds,
#   * micro-benchmark entries are matched on name and compared on
#     items_per_second (entries without an items/s rate, e.g. the
#     SEC-DED codec rows, are compared on 1/real_time),
#   * when BOTH paired records carry a "phases" block (per-phase self
#     time in seconds, written when the sweep ran with C8T_PROF=1), a
#     per-phase breakdown diff is printed under the rate line so a
#     regression can be attributed to the phase that moved. Records
#     lacking the block (older snapshots, profiling off) are compared
#     on rate alone.
#
# A record counts as a regression when the new rate falls below the old
# rate by more than the threshold (default 10 %). Records present in
# only one snapshot are reported but do not fail the diff (benchmarks
# come and go across commits).
#
# Both snapshots must come from optimized builds: the comparison reads
# each record's top-level "build_type"/"optimized" fields (written by
# bench_report.sh) and refuses unoptimized snapshots — a debug-built
# number on either side makes the percentage meaningless. Legacy
# records without those fields are judged by the benchmark library's
# context.library_build_type, the only clue they carry. Set
# C8T_BENCH_ALLOW_DEBUG=1 to compare anyway (loud warning).
#
# Usage: tools/bench_diff.sh OLD.json NEW.json [threshold-percent]
# Exit status: 0 = no regression, 1 = regression, 2 = usage/parse error
# or unoptimized snapshot.

set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: $0 OLD.json NEW.json [threshold-percent]" >&2
    exit 2
fi

old_json=$1
new_json=$2
threshold=${3:-10}

for f in "$old_json" "$new_json"; do
    if [ ! -r "$f" ]; then
        echo "bench_diff: cannot read $f" >&2
        exit 2
    fi
done

python3 - "$old_json" "$new_json" "$threshold" <<'PY'
import json
import os
import sys

old_path, new_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_optimized(doc, path):
    """Refuse snapshots from unoptimized trees (see file header)."""
    if "optimized" in doc:
        ok = bool(doc["optimized"])
        how = f"build_type={doc.get('build_type', '?')!r}"
    else:
        # Legacy record predating the build_type field: the benchmark
        # library's build flavour is the only clue it carries.
        lib = doc.get("micro", {}).get("context", {}) \
                 .get("library_build_type", "unknown")
        ok = lib.lower() == "release"
        how = f"legacy record, library_build_type={lib!r}"
    if ok:
        return
    if os.environ.get("C8T_BENCH_ALLOW_DEBUG") == "1":
        print(f"bench_diff: WARNING: {path} is not from an optimized "
              f"build ({how}); comparing anyway because "
              f"C8T_BENCH_ALLOW_DEBUG=1", file=sys.stderr)
        return
    print(f"bench_diff: {path} is not from an optimized build ({how}); "
          f"percentages against it are meaningless. Re-record with "
          f"tools/bench_report.sh on a Release tree, or set "
          f"C8T_BENCH_ALLOW_DEBUG=1 to compare anyway.", file=sys.stderr)
    sys.exit(2)


# Canonical phase order (obs::prof::Phase); unknown future phase
# names sort after these, "total" always prints last.
PHASE_ORDER = ["stream_generate", "plan", "replay", "energy",
               "fault_map", "serialize"]


def rates(doc, path):
    """Map record key -> (rate, unit, phases) per comparable record;
    phases is the record's {"phases": {...}} block (seconds, written
    by profiling-enabled sweeps) or None."""
    out = {}
    for rec in doc.get("sweeps", []):
        # Records carry a "kind" ("sweep", "vdd", "micro", ...);
        # keying on it keeps e.g. a vdd record from pairing with a
        # sweep record that happens to share a label. Legacy records
        # have no kind field and keep their historical "sweep:" keys.
        # Unknown future kinds compare fine as long as they carry the
        # common accesses_per_sec rate field; ones that do not are
        # reported (not silently dropped, not fatal).
        kind = rec.get("kind", "sweep")
        key = (f"{kind}:{rec.get('label', '?')}"
               f"/workers={rec.get('workers', '?')}")
        rate = rec.get("accesses_per_sec")
        phases = rec.get("phases")
        if not isinstance(phases, dict):
            phases = None
        if isinstance(rate, (int, float)) and rate > 0:
            # Same-key repeats (a binary driving the same labelled
            # sweep several times) keep the best run, matching the
            # best-of-reps rule the micro rows use below. The kept
            # run's phases travel with its rate so the breakdown
            # describes the compared number.
            if key not in out or float(rate) > out[key][0]:
                out[key] = (float(rate), "acc/s", phases)
        else:
            print(f"bench_diff: note: {path}: record {key} has no "
                  f"accesses_per_sec rate; skipping it", file=sys.stderr)
    for rec in doc.get("micro", {}).get("benchmarks", []):
        if rec.get("run_type") == "aggregate":
            continue
        key = f"micro:{rec.get('name', '?')}"
        rate = rec.get("items_per_second")
        if isinstance(rate, (int, float)) and rate > 0:
            rate_unit = (float(rate), "items/s", None)
        elif isinstance(rec.get("real_time"), (int, float)) \
                and rec["real_time"] > 0:
            rate_unit = (1.0 / rec["real_time"], "1/t", None)
        else:
            continue
        # Repeated runs share a name; keep the best repetition (the
        # least-disturbed one on a noisy machine).
        if key not in out or rate_unit[0] > out[key][0]:
            out[key] = rate_unit
    if not out:
        print(f"bench_diff: {path}: no comparable records", file=sys.stderr)
        sys.exit(2)
    return out


def print_phase_diff(old_ph, new_ph):
    """Per-phase seconds diff, canonical order, total last."""
    names = [n for n in PHASE_ORDER if n in old_ph or n in new_ph]
    names += sorted((set(old_ph) | set(new_ph)) -
                    set(names) - {"total"})
    names.append("total")
    for name in names:
        o, n = old_ph.get(name), new_ph.get(name)
        if not isinstance(o, (int, float)):
            o = 0.0
        if not isinstance(n, (int, float)):
            n = 0.0
        if o == 0.0 and n == 0.0:
            continue
        delta = f"{100.0 * (n - o) / o:+.1f}%" if o > 0 else "new"
        print(f"             phase {name:<16} "
              f"{o:8.3f}s -> {n:8.3f}s ({delta})")


old_doc = load(old_path)
new_doc = load(new_path)
check_optimized(old_doc, old_path)
check_optimized(new_doc, new_path)
old = rates(old_doc, old_path)
new = rates(new_doc, new_path)

regressions = 0
compared = 0
for key in sorted(old):
    if key not in new:
        print(f"  only-old   {key}")
        continue
    old_rate, unit, old_phases = old[key]
    new_rate, _, new_phases = new[key]
    compared += 1
    delta = 100.0 * (new_rate - old_rate) / old_rate
    mark = "ok        "
    if delta < -threshold:
        mark = "REGRESSED "
        regressions += 1
    print(f"  {mark} {key}: {old_rate:.3g} -> {new_rate:.3g} {unit} "
          f"({delta:+.1f}%)")
    # Attribution: which phase the time moved to/from. Only when both
    # sides carry the block — a one-sided breakdown has no baseline.
    if old_phases and new_phases:
        print_phase_diff(old_phases, new_phases)
for key in sorted(set(new) - set(old)):
    print(f"  only-new   {key}")

if compared == 0:
    print("bench_diff: no records in common", file=sys.stderr)
    sys.exit(2)
if regressions:
    print(f"bench_diff: {regressions} record(s) regressed more than "
          f"{threshold:g}% ({compared} compared)")
    sys.exit(1)
print(f"bench_diff: no regression beyond {threshold:g}% "
      f"({compared} records compared)")
PY
