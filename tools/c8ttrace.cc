/**
 * @file
 * c8ttrace — trace file utility.
 *
 *   c8ttrace gen  --workload spec:gcc --accesses 1000000 --out g.trc
 *   c8ttrace info g.trc           # header + Figure 3-5 style stats
 *   c8ttrace dump g.trc --limit 20  # human-readable records
 */

#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/options.hh"
#include "core/simulator.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace c8t;

int
cmdGen(const std::vector<std::string> &args)
{
    std::string workload = "spec:gcc";
    std::uint64_t accesses = 1'000'000;
    std::string out;

    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--workload" && i + 1 < args.size())
            workload = args[++i];
        else if (args[i] == "--accesses" && i + 1 < args.size())
            accesses = std::stoull(args[++i]);
        else if (args[i] == "--out" && i + 1 < args.size())
            out = args[++i];
        else
            throw std::invalid_argument("gen: unknown option " + args[i]);
    }
    if (out.empty())
        throw std::invalid_argument("gen: --out PATH is required");

    auto gen = app::makeWorkload(workload);
    trace::TraceWriter writer(out);
    trace::MemAccess a;
    for (std::uint64_t i = 0; i < accesses && gen->next(a); ++i)
        writer.write(a);
    writer.finish();
    std::cout << "wrote " << writer.count() << " accesses of '"
              << gen->name() << "' to " << out << "\n";
    return 0;
}

int
cmdInfo(const std::vector<std::string> &args)
{
    if (args.empty())
        throw std::invalid_argument("info: trace path required");

    trace::TraceReader reader(args[0]);
    std::cout << "trace:    " << args[0] << "\n"
              << "records:  " << reader.count() << "\n";

    const mem::AddrLayout layout(32, 512); // the paper's baseline
    const core::StreamStats s =
        core::analyzeStream(reader, layout, reader.count());

    std::cout << "instructions:      " << s.instructions << "\n"
              << "memory fraction:   "
              << 100.0 * s.accesses / s.instructions << " %\n"
              << "reads / writes:    "
              << 100.0 * s.readInstrFraction << " % / "
              << 100.0 * s.writeInstrFraction
              << " % of instructions\n"
              << "same-set pairs:    " << 100.0 * s.sameSetShare
              << " %  (RR " << 100.0 * s.rrShare << ", RW "
              << 100.0 * s.rwShare << ", WW " << 100.0 * s.wwShare
              << ", WR " << 100.0 * s.wrShare << ")\n"
              << "silent writes:     "
              << 100.0 * s.silentWriteFraction << " %\n";
    return 0;
}

int
cmdDump(const std::vector<std::string> &args)
{
    if (args.empty())
        throw std::invalid_argument("dump: trace path required");

    std::uint64_t limit = 50;
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--limit" && i + 1 < args.size())
            limit = std::stoull(args[++i]);
        else
            throw std::invalid_argument("dump: unknown option " +
                                        args[i]);
    }

    trace::TraceReader reader(args[0]);
    trace::MemAccess a;
    for (std::uint64_t i = 0; i < limit && reader.next(a); ++i)
        std::cout << a.toString() << "\n";
    return 0;
}

const char *usage =
    "c8ttrace — trace file utility\n"
    "\n"
    "  c8ttrace gen  --workload SPEC --accesses N --out PATH\n"
    "  c8ttrace info PATH\n"
    "  c8ttrace dump PATH [--limit N]\n"
    "\n"
    "Workload specifiers match c8tsim: spec:<bench>, kernel:<name>,\n"
    "trace:<path>.\n";

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        if (args.empty() || args[0] == "--help" || args[0] == "-h") {
            std::cout << usage;
            return args.empty() ? 1 : 0;
        }
        const std::string cmd = args[0];
        args.erase(args.begin());
        if (cmd == "gen")
            return cmdGen(args);
        if (cmd == "info")
            return cmdInfo(args);
        if (cmd == "dump")
            return cmdDump(args);
        throw std::invalid_argument("unknown command: " + cmd);
    } catch (const std::exception &e) {
        std::cerr << "c8ttrace: " << e.what() << "\n";
        return 1;
    }
}
