/**
 * @file
 * c8tctl — submit jobs to a running c8td and print the results.
 *
 * Each positional argument is one job: inline JSON (starts with '{'),
 * a path to a spec file, or "-" for stdin. Jobs are pipelined on one
 * connection; the daemon answers in order. Final documents go to
 * stdout (exactly the bytes `c8tsim --stats-json` would write);
 * progress/partial frames go to stderr with --verbose.
 *
 * Examples:
 *   c8tctl --socket /tmp/c8t.sock '{"kind":"run","workload":"spec:gcc"}'
 *   c8tctl --socket /tmp/c8t.sock job1.json job2.json
 *   echo '{"kind":"vdd_sweep"}' | c8tctl --socket /tmp/c8t.sock -
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "net/client.hh"

namespace
{

using namespace c8t;

const char kUsage[] =
    "usage: c8tctl --socket PATH [options] JOB [JOB...]\n"
    "\n"
    "  JOB                 inline JSON ('{...}'), a spec file path,\n"
    "                      or '-' for stdin\n"
    "  --socket PATH       daemon socket (required)\n"
    "  --output FILE       write final documents here instead of stdout\n"
    "                      (concatenated in request order)\n"
    "  --verbose           print progress/partial frames to stderr\n"
    "  --help              this text\n";

std::string
loadJob(const std::string &arg)
{
    if (!arg.empty() && arg[0] == '{')
        return arg;
    if (arg == "-") {
        std::ostringstream os;
        os << std::cin.rdbuf();
        return os.str();
    }
    std::ifstream is(arg);
    if (!is)
        throw std::runtime_error("cannot open spec file: " + arg);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

int
run(const std::vector<std::string> &args)
{
    std::string socket_path;
    std::string output_path;
    bool verbose = false;
    std::vector<std::string> jobs;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--help" || a == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (a == "--socket") {
            if (i + 1 >= args.size())
                throw std::invalid_argument("--socket: missing value");
            socket_path = args[++i];
        } else if (a == "--output") {
            if (i + 1 >= args.size())
                throw std::invalid_argument("--output: missing value");
            output_path = args[++i];
        } else if (a == "--verbose" || a == "-v") {
            verbose = true;
        } else if (!a.empty() && a[0] == '-' && a != "-") {
            throw std::invalid_argument("unknown option: " + a +
                                        " (see --help)");
        } else {
            jobs.push_back(loadJob(a));
        }
    }
    if (socket_path.empty())
        throw std::invalid_argument("--socket is required (see --help)");
    if (jobs.empty())
        throw std::invalid_argument("no jobs given (see --help)");

    std::ofstream output_file;
    if (!output_path.empty()) {
        output_file.open(output_path, std::ios::trunc);
        if (!output_file)
            throw std::runtime_error("cannot open output file: " +
                                     output_path);
    }
    std::ostream &out = output_path.empty() ? std::cout : output_file;

    net::DaemonClient client(socket_path);
    // Pipeline everything up front; the daemon preserves FIFO order,
    // so the k-th final/error frame answers the k-th job.
    for (const std::string &job : jobs)
        client.submit(job);
    client.finishSending();

    std::size_t finished = 0;
    int failures = 0;
    net::Frame f;
    while (finished < jobs.size() && client.read(f)) {
        switch (f.type) {
          case net::FrameType::Progress:
          case net::FrameType::Partial:
            if (verbose)
                std::cerr << "c8tctl: " << net::toString(f.type) << " "
                          << f.payload << "\n";
            break;
          case net::FrameType::Final:
            out << f.payload;
            ++finished;
            break;
          case net::FrameType::Error:
            std::cerr << "c8tctl: job failed: " << f.payload << "\n";
            ++finished;
            ++failures;
            break;
          default:
            break;
        }
    }
    if (finished < jobs.size()) {
        std::cerr << "c8tctl: daemon closed after " << finished
                  << " of " << jobs.size() << " jobs\n";
        return 1;
    }
    if (!output_path.empty() && !output_file.flush())
        throw std::runtime_error("write to " + output_path + " failed");
    return failures ? 1 : 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    try {
        return run(args);
    } catch (const std::exception &e) {
        std::cerr << "c8tctl: " << e.what() << "\n";
        return 1;
    }
}
