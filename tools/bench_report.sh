#!/usr/bin/env bash
# Build a Release tree and collect a machine-readable performance
# snapshot of the simulator:
#
#   * bench/micro_perf in google-benchmark JSON format (per-access
#     controller/generator costs and the whole-sweep throughput rows),
#   * one parallel Fig. 9 sweep, timed by the sweep engine itself via
#     C8T_BENCH_JSON (JSON-lines: workers, simulated accesses,
#     accesses/sec).
#
# Both are bundled into BENCH_<date>.json in the repository root so
# successive commits can be compared.
#
# Usage: tools/bench_report.sh [build-dir]   (default: build-bench)

set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}
out="$repo_root/BENCH_$(date +%Y%m%d).json"

micro_json=$(mktemp)
sweep_jsonl=$(mktemp)
trap 'rm -f "$micro_json" "$sweep_jsonl"' EXIT

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target micro_perf fig09_access_reduction -j "$(nproc)"

"$build_dir/bench/micro_perf" \
    --benchmark_format=json --benchmark_out="$micro_json" \
    --benchmark_out_format=json

# A short parallel sweep; the engine appends its own perf record.
C8T_BENCH_JSON="$sweep_jsonl" C8T_BENCH_ACCESSES=100000 \
    "$build_dir/bench/fig09_access_reduction" > /dev/null

# Both producers must actually have written something; an empty file
# here means a benchmark silently produced no records (e.g. the sweep
# engine could not append to C8T_BENCH_JSON) and the report would be
# misleading.
if [ ! -s "$micro_json" ]; then
    echo "bench_report: micro_perf produced no benchmark JSON" >&2
    exit 1
fi
if [ ! -s "$sweep_jsonl" ]; then
    echo "bench_report: no sweep perf records in C8T_BENCH_JSON" \
         "(check the warning from the sweep engine above)" >&2
    exit 1
fi

# Compose the report: {"date": ..., "sweeps": [<jsonl>], "micro": <json>}
{
    printf '{"date":"%s","jobs_default":%s,"sweeps":[' \
        "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$(nproc)"
    first=1
    while IFS= read -r line; do
        [ -n "$line" ] || continue
        [ "$first" = 1 ] || printf ','
        printf '%s' "$line"
        first=0
    done < "$sweep_jsonl"
    printf '],"micro":'
    cat "$micro_json"
    printf '}\n'
} > "$out"

echo "wrote $out"
