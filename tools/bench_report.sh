#!/usr/bin/env bash
# Build a Release tree and collect a machine-readable performance
# snapshot of the simulator:
#
#   * bench/micro_perf in google-benchmark JSON format (per-access
#     controller/generator costs, the vectorized way-compare per
#     dispatch level, and the whole-sweep throughput rows); the binary
#     also appends one kind:"micro" JSON-lines record per supported
#     SIMD level (way_compare:scalar|sse2|avx2, accesses_per_sec),
#   * one parallel Fig. 9 sweep, timed by the sweep engine itself via
#     C8T_BENCH_JSON (JSON-lines: workers, simulated accesses,
#     accesses/sec),
#   * one voltage sweep (bench/bench_vdd), which appends a kind:"vdd"
#     record carrying the per-scheme min-Vdd alongside its throughput,
#   * one two-level sweep (bench/bench_hierarchy, DESIGN.md §14) — a
#     6T L1 pinned at nominal over an 8T L2 swept to near threshold —
#     which appends a kind:"hierarchy" record (per-scheme L2 min-Vdd,
#     level geometries, hierarchy-sweep throughput),
#   * one design-space explore (bench/bench_explorer, DESIGN.md §12),
#     which appends a kind:"explore" record (config-runs/sec,
#     stream-cache hit rate, accesses/sec) from a 14,400-config-run
#     cross-product,
#   * one sweep-service soak (bench/bench_daemon, DESIGN.md §13),
#     which appends a kind:"daemon" record (cold/warm jobs-per-sec,
#     warm-over-cold speedup, client-observed p50/p99/p999 latency)
#     from N concurrent clients against one in-process daemon.
#
# Both are bundled into BENCH_<date>.json in the repository root so
# successive commits can be compared.
#
# The snapshot records the tree's CMAKE_BUILD_TYPE as "build_type" and
# refuses to write a record from a non-optimized tree (Debug or
# unset): an unoptimized snapshot silently poisons every later
# bench_diff. Set C8T_BENCH_ALLOW_DEBUG=1 to override; the record is
# then loudly tagged "optimized": false. Note that google-benchmark's
# own context.library_build_type reflects the *benchmark library's*
# build, not ours, and can read "debug" even for a Release tree — only
# the build_type field written here is authoritative.
#
# Usage: tools/bench_report.sh [build-dir] [out-file]
#   build-dir defaults to build-bench, out-file to BENCH_<date>.json
#   in the repository root.

set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}
out=${2:-"$repo_root/BENCH_$(date +%Y%m%d).json"}

micro_json=$(mktemp)
sweep_jsonl=$(mktemp)
trap 'rm -f "$micro_json" "$sweep_jsonl"' EXIT

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target micro_perf fig09_access_reduction \
    bench_vdd bench_hierarchy bench_explorer bench_daemon -j "$(nproc)"

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
    "$build_dir/CMakeCache.txt")
optimized=false
case "$build_type" in
    Release|RelWithDebInfo|MinSizeRel) optimized=true ;;
esac
if [ "$optimized" != true ]; then
    if [ "${C8T_BENCH_ALLOW_DEBUG:-0}" = 1 ]; then
        echo "bench_report: WARNING: recording from a" \
             "'${build_type:-<unset>}' tree (C8T_BENCH_ALLOW_DEBUG=1);" \
             "the record will be tagged optimized=false and" \
             "bench_diff will refuse it by default" >&2
    else
        echo "bench_report: refusing to record from a" \
             "'${build_type:-<unset>}' tree: benchmark numbers from an" \
             "unoptimized build are meaningless as a baseline." \
             "Use a Release/RelWithDebInfo build dir, or set" \
             "C8T_BENCH_ALLOW_DEBUG=1 to tag-and-record anyway." >&2
        exit 1
    fi
fi

# Five repetitions per benchmark: the short per-access rows are noisy
# on small/shared machines, and bench_diff compares best-of-reps so
# one quiet repetition is enough for a stable record. Deliberately
# run WITHOUT C8T_BENCH_JSON: BM_SweepThroughput drives the sweep
# engine hundreds of times and every drive would append its own
# kind:"sweep" row, drowning the snapshot in duplicates.
"$build_dir/bench/micro_perf" \
    --benchmark_repetitions=5 \
    --benchmark_format=json --benchmark_out="$micro_json" \
    --benchmark_out_format=json

# The kind:"micro" way-compare records (one per supported SIMD level,
# self-timed) are appended by the binary regardless of the benchmark
# filter, so a matches-nothing filter gets just the records into the
# same JSON-lines file the sweeps use. bench_diff keys records on
# (kind, label, workers), so the mixed kinds never cross-pair.
C8T_BENCH_JSON="$sweep_jsonl" "$build_dir/bench/micro_perf" \
    --benchmark_filter='^$' > /dev/null

# A short parallel sweep; the engine appends its own perf record.
# C8T_PROF=1 turns the phase profiler on so the record carries a
# "phases" block (per-phase self time) — bench_diff prints a phase
# breakdown when both sides have one, which is what lets a perf-smoke
# failure name the phase that moved. Profiling is byte-identity-safe
# (enforced by tests/metrics_test.cc) and costs < 2 % wall time.
C8T_BENCH_JSON="$sweep_jsonl" C8T_BENCH_ACCESSES=100000 C8T_PROF=1 \
    "$build_dir/bench/fig09_access_reduction" > /dev/null

# The voltage sweep appends a kind:"vdd" record (per-scheme min-Vdd
# plus throughput) alongside the sweep engine's own kind:"sweep" row.
C8T_BENCH_JSON="$sweep_jsonl" C8T_BENCH_ACCESSES=100000 C8T_PROF=1 \
    "$build_dir/bench/bench_vdd" > /dev/null

# The two-level sweep appends a kind:"hierarchy" record (per-scheme
# L2 min-Vdd over the 6T-L1 + 8T-L2 split, hierarchy throughput) plus
# the engine's own kind:"sweep"/"vdd" rows for the same run.
C8T_BENCH_JSON="$sweep_jsonl" C8T_BENCH_ACCESSES=100000 C8T_PROF=1 \
    "$build_dir/bench/bench_hierarchy" > /dev/null

# The explorer soak appends one kind:"explore" record (config-runs/sec
# plus the stream-cache hit rate over 14,400 config-runs). It sets its
# own short per-run window, so C8T_BENCH_ACCESSES is deliberately NOT
# forwarded — 100k accesses x 14,400 runs would take hours.
C8T_BENCH_JSON="$sweep_jsonl" C8T_PROF=1 \
    "$build_dir/bench/bench_explorer" > /dev/null

# The daemon soak appends one kind:"daemon" record (cold/warm jobs/s,
# warm speedup, p50/p99/p999 job latency). The binary scrubs
# C8T_BENCH_JSON from its own environment while the daemon runs, so
# its thousands of internal sweeps never spam kind:"sweep" rows here.
# It sets its own small per-job window; C8T_BENCH_ACCESSES is
# deliberately NOT forwarded.
C8T_BENCH_JSON="$sweep_jsonl" "$build_dir/bench/bench_daemon" \
    > /dev/null

# Both producers must actually have written something; an empty file
# here means a benchmark silently produced no records (e.g. the sweep
# engine could not append to C8T_BENCH_JSON) and the report would be
# misleading.
if [ ! -s "$micro_json" ]; then
    echo "bench_report: micro_perf produced no benchmark JSON" >&2
    exit 1
fi
if [ ! -s "$sweep_jsonl" ]; then
    echo "bench_report: no sweep perf records in C8T_BENCH_JSON" \
         "(check the warning from the sweep engine above)" >&2
    exit 1
fi

# Compose the report: {"date": ..., "build_type": ..., "optimized": ...,
#                      "sweeps": [<jsonl>], "micro": <json>}
{
    printf '{"date":"%s","build_type":"%s","optimized":%s,"jobs_default":%s,"sweeps":[' \
        "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$build_type" "$optimized" \
        "$(nproc)"
    first=1
    while IFS= read -r line; do
        [ -n "$line" ] || continue
        [ "$first" = 1 ] || printf ','
        printf '%s' "$line"
        first=0
    done < "$sweep_jsonl"
    printf '],"micro":'
    cat "$micro_json"
    printf '}\n'
} > "$out"

echo "wrote $out (build_type=$build_type)"
