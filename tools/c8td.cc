/**
 * @file
 * c8td — the persistent sweep daemon (DESIGN.md §13).
 *
 * Serves sweep / Vdd-sweep / explore jobs over a Unix domain socket,
 * multiplexing concurrent clients onto one shared worker pool, one
 * stream cache and one fault-map memo. Final results are byte-
 * identical to `c8tsim --stats-json` for the same spec.
 *
 * Examples:
 *   c8td --socket /tmp/c8t.sock --jobs 8 --metrics-out /tmp/c8t.prom &
 *   c8tctl --socket /tmp/c8t.sock '{"kind":"run","workload":"spec:gcc"}'
 *   kill -TERM %1       # graceful drain: accepted jobs still answered
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/stream_cache.hh"
#include "net/daemon.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"

namespace
{

using namespace c8t;

net::Daemon *g_daemon = nullptr;

extern "C" void
onSignal(int)
{
    // stop() is one write(2) on the self-pipe: async-signal-safe.
    if (g_daemon)
        g_daemon->stop();
}

const char kUsage[] =
    "usage: c8td --socket PATH [options]\n"
    "\n"
    "  --socket PATH       Unix socket to listen on (required)\n"
    "  --jobs N            shared-pool worker threads (default:\n"
    "                      C8T_JOBS, else hardware concurrency)\n"
    "  --max-inflight N    per-connection request-queue bound; the\n"
    "                      reader backpressures at the bound (default 8)\n"
    "  --byte-budget N     per-connection byte budget for advisory\n"
    "                      progress/partial frames; 0 = unlimited\n"
    "  --heartbeat-ms N    running-job heartbeat period; 0 = off\n"
    "                      (default 1000)\n"
    "  --no-memo           disable the whole-result request memo\n"
    "  --stream-cache MB   stream-cache byte budget (0 disables)\n"
    "  --metrics-out FILE  Prometheus exposition file (also C8T_METRICS)\n"
    "  --chrome-trace FILE Chrome trace (also C8T_CHROME_TRACE)\n"
    "  --help              this text\n"
    "\n"
    "SIGTERM/SIGINT drain gracefully: accepted jobs finish and their\n"
    "final frames are delivered before the daemon exits.\n";

std::uint64_t
parseU64(const std::string &flag, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos, 10);
        if (pos != value.size())
            throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception &) {
        throw std::invalid_argument(flag + ": expected an integer, got '" +
                                    value + "'");
    }
}

int
run(const std::vector<std::string> &args)
{
    net::DaemonConfig cfg;
    std::string metrics_out;
    std::string chrome_trace;
    std::int64_t stream_cache_mb = -1;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                throw std::invalid_argument(a + ": missing value");
            return args[++i];
        };
        if (a == "--help" || a == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (a == "--socket") {
            cfg.socketPath = value();
        } else if (a == "--jobs") {
            cfg.workers = static_cast<unsigned>(parseU64(a, value()));
        } else if (a == "--max-inflight") {
            cfg.maxInflight =
                static_cast<std::size_t>(parseU64(a, value()));
            if (!cfg.maxInflight)
                throw std::invalid_argument(
                    "--max-inflight: must be >= 1");
        } else if (a == "--byte-budget") {
            cfg.responseByteBudget = parseU64(a, value());
        } else if (a == "--heartbeat-ms") {
            cfg.heartbeatMs =
                static_cast<unsigned>(parseU64(a, value()));
        } else if (a == "--no-memo") {
            cfg.memoizeResults = false;
        } else if (a == "--stream-cache") {
            stream_cache_mb =
                static_cast<std::int64_t>(parseU64(a, value()));
        } else if (a == "--metrics-out") {
            metrics_out = value();
        } else if (a == "--chrome-trace") {
            chrome_trace = value();
        } else {
            throw std::invalid_argument("unknown option: " + a +
                                        " (see --help)");
        }
    }
    if (cfg.socketPath.empty())
        throw std::invalid_argument("--socket is required (see --help)");

    if (!chrome_trace.empty())
        obs::setGlobalTracePath(chrome_trace);
    if (!metrics_out.empty())
        obs::setGlobalMetricsPath(metrics_out);
    if (stream_cache_mb >= 0) {
        core::globalStreamCache().setByteBudget(
            static_cast<std::size_t>(stream_cache_mb) << 20);
    }

    net::Daemon daemon(cfg);
    g_daemon = &daemon;
    // A client vanishing mid-write must be an EPIPE errno, not a
    // process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    std::cerr << "c8td: serving on " << cfg.socketPath << " ("
              << (cfg.workers ? std::to_string(cfg.workers)
                              : std::string("auto"))
              << " workers)\n";
    daemon.serve();
    std::cerr << "c8td: drained, exiting\n";
    g_daemon = nullptr;

    if (obs::ChromeTraceWriter *trace = obs::globalTrace())
        trace->close();
    obs::writeGlobalMetrics();
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    try {
        return run(args);
    } catch (const std::exception &e) {
        std::cerr << "c8td: " << e.what() << "\n";
        obs::writeGlobalMetrics();
        return 1;
    }
}
