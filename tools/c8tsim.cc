/**
 * @file
 * c8tsim — the command-line simulator driver.
 *
 * Examples:
 *   c8tsim --workload spec:bwaves --all
 *   c8tsim --workload kernel:hash_update --scheme WG --scheme WG+RB \
 *          --size 32 --block 64 --stats
 *   c8tsim --workload trace:/tmp/app.trc --scheme RMW --csv
 *   c8tsim --workload spec:gcc --all --stats-json stats.json \
 *          --chrome-trace trace.json --trace-events 65536 --progress
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "app/options.hh"
#include "core/explorer.hh"
#include "core/simulator.hh"
#include "core/stream_cache.hh"
#include "core/sweep.hh"
#include "core/vdd_sweep.hh"
#include "obs/chrome_trace.hh"
#include "obs/event_ring.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "obs/snapshot.hh"
#include "stats/json.hh"
#include "stats/table.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace c8t;

/**
 * Per-scheme observability plumbing, shared between the single-run
 * and sweep paths. Slots are written by at most one worker each;
 * the sweep join provides the happens-before for the main-thread
 * reads below.
 */
struct ObsPlumbing
{
    std::uint64_t ringCapacity = 0;
    std::vector<std::unique_ptr<obs::EventRing>> rings;
    std::vector<std::unique_ptr<stats::Registry>> registries;
    std::vector<std::unique_ptr<obs::IntervalSnapshotter>> snapshotters;
    std::vector<std::string> statsText;
    std::vector<std::string> statsJson;
    std::unique_ptr<std::ofstream> intervalOs;
    std::mutex intervalMutex;
    std::uint64_t intervalAccesses = 0;
};

/** Attach rings / interval sampling to a just-constructed runner. */
void
prepareRunner(const app::SimOptions &opt, ObsPlumbing &obs_state,
              std::size_t i, const std::string &scheme,
              core::MultiSchemeRunner &runner)
{
    core::CacheController &ctrl = runner.controller(0);
    if (obs_state.ringCapacity) {
        obs_state.rings[i] = std::make_unique<obs::EventRing>(
            static_cast<std::size_t>(obs_state.ringCapacity));
        ctrl.attachEventRing(obs_state.rings[i].get());
    }
    if (obs_state.intervalOs) {
        obs_state.registries[i] = std::make_unique<stats::Registry>();
        ctrl.registerStats(*obs_state.registries[i]);
        obs_state.snapshotters[i] =
            std::make_unique<obs::IntervalSnapshotter>(
                *obs_state.registries[i], *obs_state.intervalOs, scheme,
                &obs_state.intervalMutex);
        obs::IntervalSnapshotter *snap = obs_state.snapshotters[i].get();
        runner.setIntervalHook(
            opt.intervalAccesses,
            [snap](std::uint64_t access) { snap->sample(access); });
    }
}

/** Collect stats dumps / trace slices after a runner has completed. */
void
inspectRunner(const app::SimOptions &opt, ObsPlumbing &obs_state,
              std::size_t i, const std::string &scheme,
              core::MultiSchemeRunner &runner)
{
    core::CacheController &ctrl = runner.controller(0);
    if (opt.dumpStats) {
        std::ostringstream os;
        ctrl.dumpStats(os);
        obs_state.statsText[i] = os.str();
    }
    if (!opt.statsJsonFile.empty()) {
        stats::Registry reg;
        ctrl.registerStats(reg);
        std::ostringstream os;
        reg.dumpJson(os);
        obs_state.statsJson[i] = os.str();
    }
    if (obs_state.rings[i]) {
        // pid 2 is the per-access track family (pid 1 holds the sweep
        // worker spans); one tid per scheme.
        if (obs::ChromeTraceWriter *trace = obs::globalTrace()) {
            trace->processName(2, "accesses");
            obs::appendEventRing(*trace, *obs_state.rings[i], scheme, 2,
                                 static_cast<int>(i) + 1);
        }
        ctrl.attachEventRing(nullptr);
    }
}

/**
 * Flush this thread's phase times into the process rollup and write
 * the Prometheus exposition file (no-op without a metrics path).
 */
void
finishMetrics()
{
    if (obs::prof::enabled())
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
    obs::writeGlobalMetrics();
    const std::string path = obs::resolvedMetricsPath();
    if (!path.empty())
        std::cerr << "wrote metrics exposition to " << path << "\n";
}

/** Write the combined --stats-json document. */
void
writeStatsJson(const app::SimOptions &opt,
               const std::vector<core::SchemeRunResult> &results,
               const ObsPlumbing &obs_state)
{
    std::ofstream os(opt.statsJsonFile, std::ios::trunc);
    if (!os) {
        throw std::runtime_error("--stats-json: cannot open \"" +
                                 opt.statsJsonFile + "\" for writing");
    }
    const obs::prof::ScopedPhase serialize_scope(
        obs::prof::Phase::Serialize);
    os << "{\"schema_version\":" << stats::Registry::kJsonSchemaVersion
       << ",\"workload\":\"" << stats::jsonEscape(opt.workload)
       << "\",\"cache\":\"" << stats::jsonEscape(opt.cache.toString())
       << "\",\"measure_accesses\":" << opt.accesses
       << ",\"warmup_accesses\":" << opt.effectiveWarmup();
    if (obs::prof::enabled()) {
        // Fold this thread's (single-scheme path) times in first so
        // the embedded profile covers the whole run; worker threads
        // already flushed per job.
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
        os << ",\"profile\":";
        obs::globalMetrics().writeProfileJson(os);
    }
    os << ",\"runs\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << (i ? "," : "") << "\n{\"scheme\":\""
           << stats::jsonEscape(results[i].scheme)
           << "\",\"stats\":" << obs_state.statsJson[i] << '}';
    }
    os << "\n]}\n";
    if (!os.flush()) {
        throw std::runtime_error("--stats-json: write to \"" +
                                 opt.statsJsonFile + "\" failed");
    }
}

/**
 * --vdd-sweep: every scheme over the default Vdd grid. Prints the
 * energy-per-access curve (pJ) with non-operational points marked, the
 * per-scheme min-Vdd summary, and writes the full curve document to
 * --stats-json when given.
 */
int
runVddSweepCli(const app::SimOptions &opt)
{
    if (!opt.chromeTraceFile.empty())
        obs::setGlobalTracePath(opt.chromeTraceFile);
    if (!opt.metricsOutFile.empty())
        obs::setGlobalMetricsPath(opt.metricsOutFile);
    if (opt.streamCacheMb >= 0) {
        core::globalStreamCache().setByteBudget(
            static_cast<std::size_t>(opt.streamCacheMb) << 20);
    }
    if (opt.progress) {
        // runVddSweep owns its sweeper; the heartbeat is enabled the
        // same way the env var would.
        setenv("C8T_PROGRESS", "1", 1);
    }

    core::VddSweepSpec spec;
    spec.cache = opt.cache;
    if (opt.schemesGiven)
        spec.schemes = opt.schemes;
    if (opt.vdd > 0.0) {
        // An explicit --vdd narrows the sweep to that single point
        // (useful for drilling into one operating point's fault map).
        spec.grid = {opt.vdd};
    }
    spec.makeGenerator = [workload = opt.workload] {
        return app::makeWorkload(workload);
    };
    spec.streamKey = "c8tsim:" + opt.workload;

    const core::RunConfig rc{opt.effectiveWarmup(), opt.accesses};
    core::VddSweepResult result =
        core::runVddSweep(spec, rc, opt.jobs);

    stats::Table t("vdd sweep: " + opt.workload + " on " +
                   opt.cache.toString() +
                   " (energy/access, pJ; * = not operational)");
    std::vector<std::string> header{"vdd"};
    for (const core::VddCurve &c : result.curves)
        header.push_back(c.scheme);
    t.setHeader(header);
    t.setPrecision(3);
    for (std::size_t gi = 0; gi < result.grid.size(); ++gi) {
        std::vector<stats::Cell> row{result.grid[gi]};
        for (const core::VddCurve &c : result.curves) {
            const core::VddPointResult &p = c.points[gi];
            std::ostringstream cell;
            cell.precision(3);
            cell << std::fixed << p.energyPerAccess * 1e12;
            if (!p.operational)
                cell << '*';
            row.emplace_back(cell.str());
        }
        t.addRow(row);
    }
    if (opt.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    std::cout << "\nmin operational Vdd (post-ECC word failure rate <= ";
    std::cout << result.failureThreshold << "):";
    for (const core::VddCurve &c : result.curves) {
        std::cout << "  " << c.scheme << " ("
                  << sram::toString(c.cell) << ") ";
        if (c.minVdd > 0.0)
            std::cout << c.minVdd << " V";
        else
            std::cout << "none";
    }
    std::cout << "\n";

    if (!opt.statsJsonFile.empty()) {
        std::ofstream os(opt.statsJsonFile, std::ios::trunc);
        if (!os) {
            throw std::runtime_error("--stats-json: cannot open \"" +
                                     opt.statsJsonFile +
                                     "\" for writing");
        }
        result.dumpJson(os);
        os << "\n";
        if (!os.flush()) {
            throw std::runtime_error("--stats-json: write to \"" +
                                     opt.statsJsonFile + "\" failed");
        }
        std::cerr << "wrote vdd sweep JSON to " << opt.statsJsonFile
                  << "\n";
    }
    if (obs::ChromeTraceWriter *trace = obs::globalTrace()) {
        trace->close();
        std::cerr << "wrote Chrome trace to " << trace->path()
                  << " (load in https://ui.perfetto.dev)\n";
    }
    finishMetrics();
    return 0;
}

/**
 * --explore: run the design-space explorer (DESIGN.md §12) and print
 * the per-workload Pareto frontier. An interrupted explore (shard
 * budget exhausted) prints a resume hint instead of a frontier.
 */
int
runExploreCli(const app::SimOptions &opt)
{
    if (!opt.chromeTraceFile.empty())
        obs::setGlobalTracePath(opt.chromeTraceFile);
    if (!opt.metricsOutFile.empty())
        obs::setGlobalMetricsPath(opt.metricsOutFile);
    if (opt.streamCacheMb >= 0) {
        core::globalStreamCache().setByteBudget(
            static_cast<std::size_t>(opt.streamCacheMb) << 20);
    }

    core::ExplorerSpec spec;
    spec.label = "c8tsim_explore";
    spec.workloads = opt.exploreWorkloads.empty()
                         ? trace::specBenchmarkNames()
                         : opt.exploreWorkloads;
    spec.sizesKb = opt.exploreSizesKb;
    spec.ways = opt.exploreWays;
    spec.blocks = opt.exploreBlocks;
    spec.replacements = opt.exploreRepls;
    if (opt.schemesGiven)
        spec.schemes = opt.schemes;
    spec.vddGrid = opt.exploreVdd;
    spec.checkpointDir = opt.checkpointDir;
    spec.cellsPerShard = opt.shardCells;
    spec.maxShards = opt.exploreMaxShards;
    spec.progress = opt.progress;

    const core::RunConfig rc{opt.effectiveWarmup(), opt.accesses};
    core::ExploreResult result = core::runExplore(spec, rc, opt.jobs);

    {
        const obs::prof::ScopedPhase serialize_scope(
            obs::prof::Phase::Serialize);
        if (!result.completed) {
            std::cerr << "explore interrupted after "
                      << result.shardsExecuted << " of "
                      << result.shardsTotal << " shards ("
                      << result.configRunsExecuted
                      << " config-runs); rerun with the same "
                         "--checkpoint-dir to resume\n";
        } else {
            stats::Table t(
                "explore frontier (" +
                std::to_string(result.summaries.size()) +
                " design points; energy pJ, EDP pJ*ns at min Vdd)");
            t.setHeader({"workload", "config", "repl", "scheme",
                         "cell", "minVdd", "energy", "EDP", "cyc/acc",
                         "miss%"});
            t.setPrecision(3);
            for (const std::string &w : result.workloads) {
                for (const core::DesignPointSummary *p :
                     result.frontier(w)) {
                    std::ostringstream cfg;
                    cfg << (p->sizeBytes >> 10) << "K/" << p->ways
                        << "w/" << p->blockBytes << "B";
                    t.addRow({w, cfg.str(), mem::toString(p->repl),
                              p->scheme, sram::toString(p->cell),
                              p->minVdd, p->energyPerAccess * 1e12,
                              p->edpPerAccess * 1e21,
                              p->cyclesPerAccess, p->missRate * 100.0});
                }
            }
            if (opt.csv)
                t.printCsv(std::cout);
            else
                t.print(std::cout);
        }
        std::cerr << "explore: " << result.configRunsExecuted << "/"
                  << result.configRunsTotal << " config-runs in "
                  << result.wallSeconds << " s ("
                  << result.configRunsPerSec
                  << " config-runs/s, stream-cache hit rate "
                  << 100.0 * result.streamCacheHitRate << "%"
                  << (result.shardsResumed
                          ? ", " + std::to_string(result.shardsResumed) +
                                " shards resumed"
                          : std::string())
                  << ")\n";

        if (!opt.statsJsonFile.empty()) {
            std::ofstream os(opt.statsJsonFile, std::ios::trunc);
            if (!os) {
                throw std::runtime_error("--stats-json: cannot open \"" +
                                         opt.statsJsonFile +
                                         "\" for writing");
            }
            result.dumpJson(os);
            os << "\n";
            if (!os.flush()) {
                throw std::runtime_error("--stats-json: write to \"" +
                                         opt.statsJsonFile +
                                         "\" failed");
            }
            std::cerr << "wrote explore JSON to " << opt.statsJsonFile
                      << "\n";
        }
    }
    // Flush the kind:"explore" record now so the serialization above is
    // attributed to it (instead of at destructor time, after
    // finishMetrics has written the exposition).
    result.emitBenchRecord();
    if (obs::ChromeTraceWriter *trace = obs::globalTrace()) {
        trace->close();
        std::cerr << "wrote Chrome trace to " << trace->path()
                  << " (load in https://ui.perfetto.dev)\n";
    }
    finishMetrics();
    return 0;
}

int
run(const app::SimOptions &opt)
{
    if (opt.explore)
        return runExploreCli(opt);
    if (opt.vddSweep)
        return runVddSweepCli(opt);
    // Observability sinks resolve before any simulation starts so a
    // bad path fails fast, not after a minutes-long sweep.
    if (!opt.chromeTraceFile.empty())
        obs::setGlobalTracePath(opt.chromeTraceFile);
    if (!opt.metricsOutFile.empty())
        obs::setGlobalMetricsPath(opt.metricsOutFile);

    if (opt.streamCacheMb >= 0) {
        core::globalStreamCache().setByteBudget(
            static_cast<std::size_t>(opt.streamCacheMb) << 20);
    }

    // Optionally record the exact stream being simulated.
    if (!opt.recordTrace.empty()) {
        auto workload = app::makeWorkload(opt.workload);
        trace::TraceWriter writer(opt.recordTrace);
        trace::MemAccess a;
        const std::uint64_t total =
            opt.effectiveWarmup() + opt.accesses;
        for (std::uint64_t i = 0; i < total && workload->next(a); ++i)
            writer.write(a);
        writer.finish();
        std::cerr << "recorded " << writer.count() << " accesses to "
                  << opt.recordTrace << "\n";
    }

    std::vector<core::ControllerConfig> cfgs;
    for (core::WriteScheme s : opt.schemes) {
        core::ControllerConfig c;
        c.cache = opt.cache;
        c.scheme = s;
        c.bufferEntries = opt.bufferEntries;
        c.silentDetection = opt.silentDetection;
        c.vdd = opt.vdd;
        if (opt.l2SizeKb) {
            c.l2Enabled = true;
            c.l2.sizeBytes = opt.l2SizeKb * 1024;
            c.l2.blockBytes = opt.cache.blockBytes;
        }
        cfgs.push_back(c);
    }

    const core::RunConfig rc{opt.effectiveWarmup(), opt.accesses};

    ObsPlumbing obs_state;
    obs_state.ringCapacity = opt.traceEvents;
    obs_state.rings.resize(cfgs.size());
    obs_state.registries.resize(cfgs.size());
    obs_state.snapshotters.resize(cfgs.size());
    obs_state.statsText.resize(cfgs.size());
    obs_state.statsJson.resize(cfgs.size());
    if (!opt.intervalStatsFile.empty()) {
        obs_state.intervalOs = std::make_unique<std::ofstream>(
            opt.intervalStatsFile, std::ios::app);
        if (!*obs_state.intervalOs) {
            throw std::runtime_error("--interval-stats: cannot open \"" +
                                     opt.intervalStatsFile +
                                     "\" for append");
        }
        obs_state.intervalAccesses = opt.intervalAccesses;
    }

    // Multi-scheme runs fan one job per scheme across the sweep
    // engine's worker threads. Each job replays the workload from its
    // own generator (deterministic: same spec, same stream), so the
    // results are identical to the serial single-runner path. The
    // observability hooks attach per job; dumps are captured per job
    // and printed in order below.
    std::vector<core::SchemeRunResult> results;
    if (cfgs.size() > 1) {
        std::vector<core::SweepJob> jobs(cfgs.size());
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            const std::string scheme = core::toString(cfgs[i].scheme);
            jobs[i].makeGenerator = [&opt] {
                return app::makeWorkload(opt.workload);
            };
            // One generation shared by every scheme job: the workload
            // specifier names a deterministic stream within this
            // process (spec/kernel parameters are fixed; a trace file
            // does not change mid-run).
            jobs[i].streamKey = "c8tsim:" + opt.workload;
            jobs[i].configs = {cfgs[i]};
            jobs[i].prepare = [&opt, &obs_state, i,
                               scheme](core::MultiSchemeRunner &r) {
                prepareRunner(opt, obs_state, i, scheme, r);
            };
            jobs[i].inspect = [&opt, &obs_state, i,
                               scheme](core::MultiSchemeRunner &r) {
                inspectRunner(opt, obs_state, i, scheme, r);
            };
        }
        core::ParallelSweeper sweeper(opt.jobs);
        if (opt.progress)
            sweeper.setProgress(true);
        const auto per_scheme =
            sweeper.run(jobs, rc, "c8tsim:" + opt.workload);
        for (const auto &r : per_scheme)
            results.push_back(r.at(0));
    } else {
        auto workload = app::makeWorkload(opt.workload);
        core::MultiSchemeRunner runner(cfgs);
        const std::string scheme = core::toString(cfgs[0].scheme);
        prepareRunner(opt, obs_state, 0, scheme, runner);
        results = runner.run(*workload, rc);
        inspectRunner(opt, obs_state, 0, scheme, runner);
    }

    stats::Table t("c8tsim: " + opt.workload + " on " +
                   opt.cache.toString());
    t.setHeader({"scheme", "requests", "hits", "demand ops",
                 "fill ops", "grouped", "bypassed", "silent",
                 "read lat", "energy (uJ)"});
    t.setPrecision(2);
    for (const auto &r : results) {
        t.addRow({r.scheme, static_cast<std::int64_t>(r.requests),
                  static_cast<std::int64_t>(r.hits),
                  static_cast<std::int64_t>(r.demandAccesses),
                  static_cast<std::int64_t>(r.fillAccesses),
                  static_cast<std::int64_t>(r.groupedWrites),
                  static_cast<std::int64_t>(r.bypassedReads),
                  static_cast<std::int64_t>(r.silentWritesDetected),
                  r.meanReadLatency, r.dynamicEnergy * 1e6});
    }

    if (opt.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    // Relative view when a baseline RMW run is present.
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].scheme != "RMW")
            continue;
        std::cout << "\nreduction vs RMW:";
        for (const auto &r : results) {
            if (r.scheme == "RMW")
                continue;
            std::cout << "  " << r.scheme << " "
                      << 100.0 * (1.0 -
                                  static_cast<double>(r.demandAccesses) /
                                      results[i].demandAccesses)
                      << "%";
        }
        std::cout << "\n";
        break;
    }

    if (opt.dumpStats) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            std::cout << "\n---- stats: " << results[i].scheme
                      << " ----\n"
                      << obs_state.statsText[i];
        }
    }

    if (!opt.statsJsonFile.empty()) {
        writeStatsJson(opt, results, obs_state);
        std::cerr << "wrote stats JSON to " << opt.statsJsonFile << "\n";
    }
    if (obs::ChromeTraceWriter *trace = obs::globalTrace()) {
        trace->close();
        std::cerr << "wrote Chrome trace to " << trace->path()
                  << " (load in https://ui.perfetto.dev)\n";
    }
    finishMetrics();
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        const app::SimOptions opt = app::parseOptions(args);
        if (opt.help) {
            std::cout << app::usageText();
            return 0;
        }
        return run(opt);
    } catch (const std::exception &e) {
        std::cerr << "c8tsim: " << e.what() << "\n";
        return 1;
    }
}
