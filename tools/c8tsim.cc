/**
 * @file
 * c8tsim — the command-line simulator driver.
 *
 * Examples:
 *   c8tsim --workload spec:bwaves --all
 *   c8tsim --workload kernel:hash_update --scheme WG --scheme WG+RB \
 *          --size 32 --block 64 --stats
 *   c8tsim --workload trace:/tmp/app.trc --scheme RMW --csv
 *   c8tsim --workload spec:gcc --all --stats-json stats.json \
 *          --chrome-trace trace.json --trace-events 65536 --progress
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "app/job_runner.hh"
#include "app/options.hh"
#include "core/simulator.hh"
#include "core/stream_cache.hh"
#include "obs/chrome_trace.hh"
#include "obs/event_ring.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "obs/snapshot.hh"
#include "stats/table.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace c8t;

/**
 * Per-scheme observability plumbing, shared between the single-run
 * and sweep paths. Slots are written by at most one worker each;
 * the sweep join provides the happens-before for the main-thread
 * reads below.
 */
struct ObsPlumbing
{
    std::uint64_t ringCapacity = 0;
    /** One ring per (scheme, cache level): rings[i][0] is the L1's,
     *  deeper entries follow the hierarchy (DESIGN.md §14). */
    std::vector<std::vector<std::unique_ptr<obs::EventRing>>> rings;
    std::vector<std::unique_ptr<stats::Registry>> registries;
    std::vector<std::unique_ptr<obs::IntervalSnapshotter>> snapshotters;
    std::vector<std::string> statsText;
    std::vector<std::string> statsJson;
    std::unique_ptr<std::ofstream> intervalOs;
    std::mutex intervalMutex;
    std::uint64_t intervalAccesses = 0;
};

/** Attach rings / interval sampling to a just-constructed runner. */
void
prepareRunner(const app::SimOptions &opt, ObsPlumbing &obs_state,
              std::size_t i, const std::string &scheme,
              core::MultiSchemeRunner &runner)
{
    core::LevelStack &stack = runner.stack(0);
    if (obs_state.ringCapacity) {
        obs_state.rings[i].resize(stack.depth());
        for (std::size_t lvl = 0; lvl < stack.depth(); ++lvl) {
            obs_state.rings[i][lvl] = std::make_unique<obs::EventRing>(
                static_cast<std::size_t>(obs_state.ringCapacity));
            stack.level(lvl).attachEventRing(
                obs_state.rings[i][lvl].get());
        }
    }
    if (obs_state.intervalOs) {
        obs_state.registries[i] = std::make_unique<stats::Registry>();
        // Whole-stack registration: the top level keeps the historical
        // unprefixed names, lower levels sample under "l2."/"l3.".
        stack.registerStats(*obs_state.registries[i]);
        obs_state.snapshotters[i] =
            std::make_unique<obs::IntervalSnapshotter>(
                *obs_state.registries[i], *obs_state.intervalOs, scheme,
                &obs_state.intervalMutex);
        obs::IntervalSnapshotter *snap = obs_state.snapshotters[i].get();
        runner.setIntervalHook(
            opt.intervalAccesses,
            [snap](std::uint64_t access) { snap->sample(access); });
    }
}

/** Collect stats dumps / trace slices after a runner has completed. */
void
inspectRunner(const app::SimOptions &opt, ObsPlumbing &obs_state,
              std::size_t i, const std::string &scheme,
              core::MultiSchemeRunner &runner)
{
    core::LevelStack &stack = runner.stack(0);
    if (opt.dumpStats) {
        // Equivalent to CacheController::dumpStats for a single level;
        // a hierarchy folds the lower levels in under their prefixes.
        stats::Registry reg;
        stack.registerStats(reg);
        std::ostringstream os;
        reg.dump(os);
        obs_state.statsText[i] = os.str();
    }
    if (!opt.statsJsonFile.empty()) {
        stats::Registry reg;
        stack.registerStats(reg);
        std::ostringstream os;
        reg.dumpJson(os);
        obs_state.statsJson[i] = os.str();
    }
    if (!obs_state.rings[i].empty()) {
        // pid 2 is the per-access track family (pid 1 holds the sweep
        // worker spans); one tid per scheme, lower cache levels on
        // their own tids ("WG/l2", ...) so the per-level event streams
        // stay separable in the viewer.
        if (obs::ChromeTraceWriter *trace = obs::globalTrace()) {
            trace->processName(2, "accesses");
            for (std::size_t lvl = 0; lvl < obs_state.rings[i].size();
                 ++lvl) {
                const std::string track =
                    lvl ? scheme + "/l" + std::to_string(lvl + 1)
                        : scheme;
                obs::appendEventRing(*trace, *obs_state.rings[i][lvl],
                                     track, 2,
                                     static_cast<int>(i) + 1 +
                                         100 * static_cast<int>(lvl));
            }
        }
        for (std::size_t lvl = 0; lvl < obs_state.rings[i].size(); ++lvl)
            stack.level(lvl).attachEventRing(nullptr);
    }
}

/**
 * Flush this thread's phase times into the process rollup and write
 * the Prometheus exposition file (no-op without a metrics path).
 */
void
finishMetrics()
{
    if (obs::prof::enabled())
        obs::globalMetrics().addPhaseTimes(obs::prof::takeThreadTimes());
    obs::writeGlobalMetrics();
    const std::string path = obs::resolvedMetricsPath();
    if (!path.empty())
        std::cerr << "wrote metrics exposition to " << path << "\n";
}

/**
 * Write the canonical result document (built by app::runJobSpec — the
 * same bytes a c8td final-result frame carries) to --stats-json.
 */
void
writeDocument(const std::string &path, const std::string &document,
              const char *what)
{
    const obs::prof::ScopedPhase serialize_scope(
        obs::prof::Phase::Serialize);
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        throw std::runtime_error("--stats-json: cannot open \"" + path +
                                 "\" for writing");
    }
    os << document;
    if (!os.flush()) {
        throw std::runtime_error("--stats-json: write to \"" + path +
                                 "\" failed");
    }
    std::cerr << "wrote " << what << " to " << path << "\n";
}

/**
 * Resolve the observability sinks and engine knobs shared by all
 * three job kinds. Runs before any simulation so a bad path fails
 * fast, not after a minutes-long sweep.
 */
void
setupSinks(const app::SimOptions &opt)
{
    if (!opt.chromeTraceFile.empty())
        obs::setGlobalTracePath(opt.chromeTraceFile);
    if (!opt.metricsOutFile.empty())
        obs::setGlobalMetricsPath(opt.metricsOutFile);
    if (opt.streamCacheMb >= 0) {
        core::globalStreamCache().setByteBudget(
            static_cast<std::size_t>(opt.streamCacheMb) << 20);
    }
    if (opt.progress) {
        // The sweep engines (and the explorer) take their heartbeat
        // default from the environment; --progress is its equivalent.
        setenv("C8T_PROGRESS", "1", 1);
    }
}

/** Close out the Chrome trace (if any) with a pointer to the viewer. */
void
finishTrace()
{
    if (obs::ChromeTraceWriter *trace = obs::globalTrace()) {
        trace->close();
        std::cerr << "wrote Chrome trace to " << trace->path()
                  << " (load in https://ui.perfetto.dev)\n";
    }
}

/**
 * --vdd-sweep: every scheme over the default Vdd grid. Prints the
 * energy-per-access curve (pJ) with non-operational points marked, the
 * per-scheme min-Vdd summary, and writes the full curve document to
 * --stats-json when given.
 */
int
runVddSweepCli(const app::SimOptions &opt)
{
    setupSinks(opt);

    const app::JobOutcome outcome =
        app::runJobSpec(app::toJobSpec(opt), opt.jobs);
    const core::VddSweepResult &result = *outcome.vdd;

    // In hierarchy mode (--l2) the grid sweeps the L2's supply while
    // the L1 stays pinned; columns are hierarchy-wide energy.
    const std::string subject =
        result.hierarchy
            ? opt.cache.toString() + " + " +
                  std::to_string(opt.l2SizeKb) + "K L2 (L2 swept)"
            : opt.cache.toString();
    stats::Table t("vdd sweep: " + opt.workload + " on " + subject +
                   " (energy/access, pJ; * = not operational)");
    std::vector<std::string> header{"vdd"};
    for (const core::VddCurve &c : result.curves)
        header.push_back(c.scheme);
    t.setHeader(header);
    t.setPrecision(3);
    for (std::size_t gi = 0; gi < result.grid.size(); ++gi) {
        std::vector<stats::Cell> row{result.grid[gi]};
        for (const core::VddCurve &c : result.curves) {
            const core::VddPointResult &p = c.points[gi];
            std::ostringstream cell;
            cell.precision(3);
            cell << std::fixed << p.energyPerAccess * 1e12;
            if (!p.operational)
                cell << '*';
            row.emplace_back(cell.str());
        }
        t.addRow(row);
    }
    if (opt.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    std::cout << "\nmin operational "
              << (result.hierarchy ? "L2 " : "")
              << "Vdd (post-ECC word failure rate <= ";
    std::cout << result.failureThreshold << "):";
    for (const core::VddCurve &c : result.curves) {
        std::cout << "  " << c.scheme << " ("
                  << sram::toString(c.cell) << ") ";
        if (c.minVdd > 0.0)
            std::cout << c.minVdd << " V";
        else
            std::cout << "none";
    }
    std::cout << "\n";

    if (!opt.statsJsonFile.empty())
        writeDocument(opt.statsJsonFile, outcome.document,
                      "vdd sweep JSON");
    finishTrace();
    finishMetrics();
    return 0;
}

/**
 * --explore: run the design-space explorer (DESIGN.md §12) and print
 * the per-workload Pareto frontier. An interrupted explore (shard
 * budget exhausted) prints a resume hint instead of a frontier.
 */
int
runExploreCli(const app::SimOptions &opt)
{
    setupSinks(opt);

    app::JobOutcome outcome =
        app::runJobSpec(app::toJobSpec(opt), opt.jobs);
    core::ExploreResult &result = *outcome.explore;

    {
        const obs::prof::ScopedPhase serialize_scope(
            obs::prof::Phase::Serialize);
        if (!result.completed) {
            std::cerr << "explore interrupted after "
                      << result.shardsExecuted << " of "
                      << result.shardsTotal << " shards ("
                      << result.configRunsExecuted
                      << " config-runs); rerun with the same "
                         "--checkpoint-dir to resume\n";
        } else {
            stats::Table t(
                "explore frontier (" +
                std::to_string(result.summaries.size()) +
                " design points; energy pJ, EDP pJ*ns at min Vdd)");
            t.setHeader({"workload", "config", "repl", "scheme",
                         "cell", "minVdd", "energy", "EDP", "cyc/acc",
                         "miss%"});
            t.setPrecision(3);
            for (const std::string &w : result.workloads) {
                for (const core::DesignPointSummary *p :
                     result.frontier(w)) {
                    std::ostringstream cfg;
                    cfg << (p->sizeBytes >> 10) << "K/" << p->ways
                        << "w/" << p->blockBytes << "B";
                    if (p->l2SizeBytes)
                        cfg << "+L2:" << (p->l2SizeBytes >> 10) << "K";
                    t.addRow({w, cfg.str(), mem::toString(p->repl),
                              p->scheme, sram::toString(p->cell),
                              p->minVdd, p->energyPerAccess * 1e12,
                              p->edpPerAccess * 1e21,
                              p->cyclesPerAccess, p->missRate * 100.0});
                }
            }
            if (opt.csv)
                t.printCsv(std::cout);
            else
                t.print(std::cout);
        }
        std::cerr << "explore: " << result.configRunsExecuted << "/"
                  << result.configRunsTotal << " config-runs in "
                  << result.wallSeconds << " s ("
                  << result.configRunsPerSec
                  << " config-runs/s, stream-cache hit rate "
                  << 100.0 * result.streamCacheHitRate << "%"
                  << (result.shardsResumed
                          ? ", " + std::to_string(result.shardsResumed) +
                                " shards resumed"
                          : std::string())
                  << ")\n";

        if (!opt.statsJsonFile.empty())
            writeDocument(opt.statsJsonFile, outcome.document,
                          "explore JSON");
    }
    // Flush the kind:"explore" record now so the serialization above is
    // attributed to it (instead of at destructor time, after
    // finishMetrics has written the exposition).
    result.emitBenchRecord();
    finishTrace();
    finishMetrics();
    return 0;
}

int
run(const app::SimOptions &opt)
{
    if (opt.explore)
        return runExploreCli(opt);
    if (opt.vddSweep)
        return runVddSweepCli(opt);
    setupSinks(opt);

    // Optionally record the exact stream being simulated.
    if (!opt.recordTrace.empty()) {
        auto workload = app::makeWorkload(opt.workload);
        trace::TraceWriter writer(opt.recordTrace);
        trace::MemAccess a;
        const std::uint64_t total =
            opt.effectiveWarmup() + opt.accesses;
        for (std::uint64_t i = 0; i < total && workload->next(a); ++i)
            writer.write(a);
        writer.finish();
        std::cerr << "recorded " << writer.count() << " accesses to "
                  << opt.recordTrace << "\n";
    }

    ObsPlumbing obs_state;
    obs_state.ringCapacity = opt.traceEvents;
    const std::size_t n_schemes = opt.schemes.size();
    obs_state.rings.resize(n_schemes);
    obs_state.registries.resize(n_schemes);
    obs_state.snapshotters.resize(n_schemes);
    obs_state.statsText.resize(n_schemes);
    obs_state.statsJson.resize(n_schemes);
    if (!opt.intervalStatsFile.empty()) {
        obs_state.intervalOs = std::make_unique<std::ofstream>(
            opt.intervalStatsFile, std::ios::app);
        if (!*obs_state.intervalOs) {
            throw std::runtime_error("--interval-stats: cannot open \"" +
                                     opt.intervalStatsFile +
                                     "\" for append");
        }
        obs_state.intervalAccesses = opt.intervalAccesses;
    }

    // Execution goes through the shared job path (DESIGN.md §13): one
    // sweep job per scheme, each replaying the workload from its own
    // (stream-cache-memoized) generation, so results are identical to
    // the historical serial path — and byte-identical to what the c8td
    // daemon produces for the same spec. The CLI-only event-ring /
    // interval-snapshot plumbing rides along on the hooks.
    app::JobHooks hooks;
    hooks.prepare = [&opt, &obs_state](std::size_t i,
                                       const std::string &scheme,
                                       core::MultiSchemeRunner &r) {
        prepareRunner(opt, obs_state, i, scheme, r);
    };
    hooks.inspect = [&opt, &obs_state](std::size_t i,
                                       const std::string &scheme,
                                       core::MultiSchemeRunner &r) {
        inspectRunner(opt, obs_state, i, scheme, r);
    };
    const app::JobOutcome outcome = app::runJobSpec(
        app::toJobSpec(opt), opt.jobs, hooks, obs::prof::enabled());
    const std::vector<core::SchemeRunResult> &results = outcome.runs;

    stats::Table t("c8tsim: " + opt.workload + " on " +
                   opt.cache.toString());
    t.setHeader({"scheme", "requests", "hits", "demand ops",
                 "fill ops", "grouped", "bypassed", "silent",
                 "read lat", "energy (uJ)"});
    t.setPrecision(2);
    for (const auto &r : results) {
        t.addRow({r.scheme, static_cast<std::int64_t>(r.requests),
                  static_cast<std::int64_t>(r.hits),
                  static_cast<std::int64_t>(r.demandAccesses),
                  static_cast<std::int64_t>(r.fillAccesses),
                  static_cast<std::int64_t>(r.groupedWrites),
                  static_cast<std::int64_t>(r.bypassedReads),
                  static_cast<std::int64_t>(r.silentWritesDetected),
                  r.meanReadLatency, r.dynamicEnergy * 1e6});
    }

    if (opt.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    // Relative view when a baseline RMW run is present.
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].scheme != "RMW")
            continue;
        std::cout << "\nreduction vs RMW:";
        for (const auto &r : results) {
            if (r.scheme == "RMW")
                continue;
            std::cout << "  " << r.scheme << " "
                      << 100.0 * (1.0 -
                                  static_cast<double>(r.demandAccesses) /
                                      results[i].demandAccesses)
                      << "%";
        }
        std::cout << "\n";
        break;
    }

    if (opt.dumpStats) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            std::cout << "\n---- stats: " << results[i].scheme
                      << " ----\n"
                      << obs_state.statsText[i];
        }
    }

    if (!opt.statsJsonFile.empty())
        writeDocument(opt.statsJsonFile, outcome.document,
                      "stats JSON");
    finishTrace();
    finishMetrics();
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        const app::SimOptions opt = app::parseOptions(args);
        if (opt.help) {
            std::cout << app::usageText();
            return 0;
        }
        return run(opt);
    } catch (const std::exception &e) {
        std::cerr << "c8tsim: " << e.what() << "\n";
        // A throw mid-sweep must still leave a complete exposition
        // file behind (the write itself is atomic: tmp + rename), not
        // a truncated or missing one — scrapers read it after failed
        // runs too.
        obs::writeGlobalMetrics();
        return 1;
    }
}
