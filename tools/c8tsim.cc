/**
 * @file
 * c8tsim — the command-line simulator driver.
 *
 * Examples:
 *   c8tsim --workload spec:bwaves --all
 *   c8tsim --workload kernel:hash_update --scheme WG --scheme WG+RB \
 *          --size 32 --block 64 --stats
 *   c8tsim --workload trace:/tmp/app.trc --scheme RMW --csv
 */

#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "app/options.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "stats/table.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace c8t;

int
run(const app::SimOptions &opt)
{
    // Optionally record the exact stream being simulated.
    if (!opt.recordTrace.empty()) {
        auto workload = app::makeWorkload(opt.workload);
        trace::TraceWriter writer(opt.recordTrace);
        trace::MemAccess a;
        const std::uint64_t total =
            opt.effectiveWarmup() + opt.accesses;
        for (std::uint64_t i = 0; i < total && workload->next(a); ++i)
            writer.write(a);
        writer.finish();
        std::cerr << "recorded " << writer.count() << " accesses to "
                  << opt.recordTrace << "\n";
    }

    std::vector<core::ControllerConfig> cfgs;
    for (core::WriteScheme s : opt.schemes) {
        core::ControllerConfig c;
        c.cache = opt.cache;
        c.scheme = s;
        c.bufferEntries = opt.bufferEntries;
        c.silentDetection = opt.silentDetection;
        if (opt.l2SizeKb) {
            c.l2Enabled = true;
            c.l2.sizeBytes = opt.l2SizeKb * 1024;
            c.l2.blockBytes = opt.cache.blockBytes;
        }
        cfgs.push_back(c);
    }

    const core::RunConfig rc{opt.effectiveWarmup(), opt.accesses};

    // Multi-scheme runs fan one job per scheme across the sweep
    // engine's worker threads. Each job replays the workload from its
    // own generator (deterministic: same spec, same stream), so the
    // results are identical to the serial single-runner path. The
    // --stats dumps are captured per job and printed in order below.
    std::vector<core::SchemeRunResult> results;
    std::vector<std::string> statsDumps(cfgs.size());
    if (cfgs.size() > 1) {
        std::vector<core::SweepJob> jobs(cfgs.size());
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            jobs[i].makeGenerator = [&opt] {
                return app::makeWorkload(opt.workload);
            };
            jobs[i].configs = {cfgs[i]};
            if (opt.dumpStats) {
                jobs[i].inspect =
                    [&statsDumps, i](core::MultiSchemeRunner &r) {
                        std::ostringstream os;
                        r.controller(0).dumpStats(os);
                        statsDumps[i] = os.str();
                    };
            }
        }
        const core::ParallelSweeper sweeper(opt.jobs);
        const auto per_scheme =
            sweeper.run(jobs, rc, "c8tsim:" + opt.workload);
        for (const auto &r : per_scheme)
            results.push_back(r.at(0));
    } else {
        auto workload = app::makeWorkload(opt.workload);
        core::MultiSchemeRunner runner(cfgs);
        results = runner.run(*workload, rc);
        if (opt.dumpStats) {
            std::ostringstream os;
            runner.controller(0).dumpStats(os);
            statsDumps[0] = os.str();
        }
    }

    stats::Table t("c8tsim: " + opt.workload + " on " +
                   opt.cache.toString());
    t.setHeader({"scheme", "requests", "hits", "demand ops",
                 "fill ops", "grouped", "bypassed", "silent",
                 "read lat", "energy (uJ)"});
    t.setPrecision(2);
    for (const auto &r : results) {
        t.addRow({r.scheme, static_cast<std::int64_t>(r.requests),
                  static_cast<std::int64_t>(r.hits),
                  static_cast<std::int64_t>(r.demandAccesses),
                  static_cast<std::int64_t>(r.fillAccesses),
                  static_cast<std::int64_t>(r.groupedWrites),
                  static_cast<std::int64_t>(r.bypassedReads),
                  static_cast<std::int64_t>(r.silentWritesDetected),
                  r.meanReadLatency, r.dynamicEnergy * 1e6});
    }

    if (opt.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    // Relative view when a baseline RMW run is present.
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].scheme != "RMW")
            continue;
        std::cout << "\nreduction vs RMW:";
        for (const auto &r : results) {
            if (r.scheme == "RMW")
                continue;
            std::cout << "  " << r.scheme << " "
                      << 100.0 * (1.0 -
                                  static_cast<double>(r.demandAccesses) /
                                      results[i].demandAccesses)
                      << "%";
        }
        std::cout << "\n";
        break;
    }

    if (opt.dumpStats) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            std::cout << "\n---- stats: " << results[i].scheme
                      << " ----\n"
                      << statsDumps[i];
        }
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        const app::SimOptions opt = app::parseOptions(args);
        if (opt.help) {
            std::cout << app::usageText();
            return 0;
        }
        return run(opt);
    } catch (const std::exception &e) {
        std::cerr << "c8tsim: " << e.what() << "\n";
        return 1;
    }
}
