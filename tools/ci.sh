#!/usr/bin/env bash
# One-command verification gate: the tier-1 suite plus sanitizer
# builds and a Release performance smoke.
#
#   1. Configure + build the default tree and run the full ctest suite
#      (this is the roadmap's tier-1 definition of "not broken"),
#      then run it again with C8T_SIMD=scalar so the portable
#      way-compare fallback stays exercised on hardware that would
#      otherwise always dispatch to SSE2/AVX2.
#   2. Configure + build an ASan/UBSan tree (-DC8T_ASAN=ON) and run the
#      stream/cache/sweep/alloc tests under it. halt_on_error is the
#      sanitizer default, so any heap misuse fails the script.
#   3. Configure + build a standalone UBSan tree (-DC8T_UBSAN=ON,
#      -fno-sanitize-recover=all) and run the voltage-model tests
#      under it (the numeric subsystem with the most UB surface:
#      pow/exp/ceil scaling, bit_cast seeding, fault-map index math).
#   4. Configure + build a TSan tree (-DC8T_TSAN=ON) and run the
#      parallel sweep test under it (the data-race surface).
#   5. Metrics smoke: run the fig11 sweep with the phase profiler off
#      and on (C8T_PROF=1 + C8T_METRICS) and require byte-identical
#      stdout plus a non-empty Prometheus exposition — profiling must
#      observe, never perturb.
#   6. Explorer smoke: the same small design-space explore three ways
#      — uninterrupted, interrupted after one shard (checkpointed),
#      and resumed from those checkpoints — and require the resumed
#      run's --stats-json document to be byte-identical to the
#      uninterrupted one (DESIGN.md §12's resumability contract,
#      checked end-to-end through the c8tsim CLI).
#   7. Daemon smoke: start c8td on a throwaway socket, run three
#      concurrent c8tctl clients (two run kinds plus a Vdd sweep) and
#      require each answer to be byte-identical to the one-shot
#      c8tsim --stats-json document for the same operating point; then
#      exercise the SIGTERM drain — a job submitted just before the
#      signal must still be answered and the daemon must exit 0.
#   8. Hierarchy smoke: build the two-level tests (l2_test,
#      hierarchy_test) under the ASan tree and run them — the
#      fetch/writeback/back-invalidation paths are the newest
#      pointer-heavy surface — then run one two-level JobSpec through
#      c8td and require the answer byte-identical to the one-shot
#      c8tsim --l2 document for the same operating point (the
#      shared-JobSpec contract extended to the hierarchy).
#   9. Record a Release benchmark snapshot (tools/bench_report.sh into
#      build-bench) and bench_diff it against the newest recorded
#      BENCH_*.json in the repo root (a local, gitignored artifact —
#      seed one with tools/bench_report.sh); any record more than
#      C8T_CI_PERF_THRESHOLD percent (default 25) below the baseline
#      fails the gate. The default is sized for the shared/virtualized
#      machines this repo develops on, where run-to-run noise on the
#      short micro rows reaches ~15 % even best-of-5 — it still
#      catches the failure classes the gate exists for (debug-built
#      binaries are 5-10x off, accidental complexity regressions
#      usually >25 %). Tighten via the environment on quiet hardware.
#      Skipped with a notice when no baseline exists; set
#      C8T_CI_SKIP_PERF=1 to skip explicitly. Snapshots are recorded
#      with C8T_PROF=1, so when both sides carry a "phases" block the
#      diff prints per-phase attribution — a failing gate names the
#      phase that moved.
#
# Usage: tools/ci.sh [jobs]        (default: nproc)
# Exit status: non-zero if any build, test or perf gate fails.

set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${1:-$(nproc)}

echo "==== tier-1: build + full test suite ===="
cmake -B "$repo_root/build" -S "$repo_root"
cmake --build "$repo_root/build" -j "$jobs"
ctest --test-dir "$repo_root/build" --output-on-failure -j "$jobs"

echo "==== tier-1: full test suite, forced-scalar dispatch ===="
C8T_SIMD=scalar \
    ctest --test-dir "$repo_root/build" --output-on-failure -j "$jobs"

echo "==== asan: build + stream/sweep/alloc tests ===="
cmake -B "$repo_root/build-asan" -S "$repo_root" -DC8T_ASAN=ON
cmake --build "$repo_root/build-asan" -j "$jobs" --target \
    stream_identity_test simd_identity_test sweep_test \
    hot_path_alloc_test functional_mem_test
for t in stream_identity_test simd_identity_test sweep_test \
         hot_path_alloc_test functional_mem_test; do
    echo "---- asan: $t ----"
    "$repo_root/build-asan/tests/$t"
done

echo "==== ubsan: build + voltage-model tests ===="
cmake -B "$repo_root/build-ubsan" -S "$repo_root" -DC8T_UBSAN=ON
cmake --build "$repo_root/build-ubsan" -j "$jobs" --target \
    vmodel_test vdd_sweep_test
for t in vmodel_test vdd_sweep_test; do
    echo "---- ubsan: $t ----"
    "$repo_root/build-ubsan/tests/$t"
done

echo "==== tsan: build + parallel sweep test ===="
cmake -B "$repo_root/build-tsan" -S "$repo_root" -DC8T_TSAN=ON
cmake --build "$repo_root/build-tsan" -j "$jobs" --target sweep_test
"$repo_root/build-tsan/tests/sweep_test"

echo "==== metrics: profiling byte-identity + exposition ===="
# The profiler must be invisible to results: the same fig11 sweep with
# profiling on and off must print byte-identical tables, and a
# profiling run must leave a non-empty Prometheus exposition behind.
# Uses the tier-1 tree built above.
metrics_plain=$(mktemp)
metrics_prof=$(mktemp)
metrics_expo=$(mktemp)
# (cleaned up explicitly below — the perf stage installs its own EXIT
# trap, so a trap here would be overwritten)
C8T_BENCH_ACCESSES=20000 C8T_JOBS=2 \
    "$repo_root/build/bench/fig11_cache_size" > "$metrics_plain"
C8T_BENCH_ACCESSES=20000 C8T_JOBS=2 C8T_PROF=1 \
    C8T_METRICS="$metrics_expo" \
    "$repo_root/build/bench/fig11_cache_size" > "$metrics_prof"
if ! cmp -s "$metrics_plain" "$metrics_prof"; then
    echo "ci: fig11 output differs with profiling enabled" >&2
    diff "$metrics_plain" "$metrics_prof" >&2 || true
    exit 1
fi
if ! grep -q '^c8t_phase_seconds_total' "$metrics_expo"; then
    echo "ci: metrics exposition missing phase times" \
         "(C8T_METRICS produced no usable output)" >&2
    exit 1
fi
rm -f "$metrics_plain" "$metrics_prof" "$metrics_expo"
echo "ci: profiling byte-identity holds; exposition non-empty"

echo "==== explorer: CLI interrupt/resume byte-identity ===="
# A small explore (16 config-runs over 2 workloads) run three ways:
# uninterrupted; interrupted after one shard into a checkpoint dir;
# resumed from those checkpoints. The resumed JSON document must be
# byte-identical to the uninterrupted one. Uses the tier-1 tree.
explore_dir=$(mktemp -d)
explore_a=$(mktemp)
explore_b=$(mktemp)
explore_args=(--explore --explore-workloads gcc,mcf
    --explore-sizes 16,32 --explore-ways 2,4 --explore-blocks 32
    --explore-vdd 1.0,0.8 --accesses 3000 --warmup 300 --jobs 2
    --shard-cells 3)
"$repo_root/build/tools/c8tsim" "${explore_args[@]}" \
    --stats-json "$explore_a" > /dev/null
"$repo_root/build/tools/c8tsim" "${explore_args[@]}" \
    --checkpoint-dir "$explore_dir" --explore-max-shards 1 > /dev/null
"$repo_root/build/tools/c8tsim" "${explore_args[@]}" \
    --checkpoint-dir "$explore_dir" \
    --stats-json "$explore_b" > /dev/null
if ! cmp -s "$explore_a" "$explore_b"; then
    echo "ci: resumed explore JSON differs from uninterrupted run" >&2
    diff "$explore_a" "$explore_b" >&2 || true
    exit 1
fi
rm -rf "$explore_dir"
rm -f "$explore_a" "$explore_b"
echo "ci: explorer interrupt/resume is byte-identical"

echo "==== daemon: c8td answers vs one-shot c8tsim + SIGTERM drain ===="
# Three concurrent clients against one daemon; every answer must be
# byte-identical to the one-shot driver's --stats-json document for
# the same operating point (the shared-JobSpec contract, end-to-end
# through the real binaries). Uses the tier-1 tree.
daemon_dir=$(mktemp -d)
daemon_sock="$daemon_dir/c8td.sock"
"$repo_root/build/tools/c8td" --socket "$daemon_sock" > /dev/null &
daemon_pid=$!
daemon_up=0
for _ in $(seq 1 100); do
    if [ -S "$daemon_sock" ]; then daemon_up=1; break; fi
    sleep 0.1
done
if [ "$daemon_up" != 1 ]; then
    echo "ci: c8td did not come up on $daemon_sock" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
fi
"$repo_root/build/tools/c8tctl" --socket "$daemon_sock" \
    --output "$daemon_dir/a.json" \
    '{"kind":"run","workload":"spec:gcc","accesses":20000}' &
daemon_ca=$!
"$repo_root/build/tools/c8tctl" --socket "$daemon_sock" \
    --output "$daemon_dir/b.json" \
    '{"kind":"run","workload":"spec:mcf","accesses":20000,"cache":{"size_kb":32}}' &
daemon_cb=$!
"$repo_root/build/tools/c8tctl" --socket "$daemon_sock" \
    --output "$daemon_dir/c.json" \
    '{"kind":"vdd_sweep","workload":"spec:gcc","accesses":20000}' &
daemon_cc=$!
wait "$daemon_ca" "$daemon_cb" "$daemon_cc"
"$repo_root/build/tools/c8tsim" --workload spec:gcc --accesses 20000 \
    --stats-json "$daemon_dir/a.ref" > /dev/null
"$repo_root/build/tools/c8tsim" --workload spec:mcf --accesses 20000 \
    --size 32 --stats-json "$daemon_dir/b.ref" > /dev/null
"$repo_root/build/tools/c8tsim" --vdd-sweep --workload spec:gcc \
    --accesses 20000 --stats-json "$daemon_dir/c.ref" > /dev/null
for f in a b c; do
    if ! cmp -s "$daemon_dir/$f.json" "$daemon_dir/$f.ref"; then
        echo "ci: daemon answer '$f' differs from one-shot c8tsim" >&2
        kill "$daemon_pid" 2>/dev/null || true
        exit 1
    fi
done
# SIGTERM drain: a job in flight when the signal lands must still get
# its final frame, and the daemon must exit cleanly.
"$repo_root/build/tools/c8tctl" --socket "$daemon_sock" \
    --output "$daemon_dir/d.json" \
    '{"kind":"run","workload":"spec:gcc","accesses":500000}' &
daemon_cd=$!
sleep 0.2
kill -TERM "$daemon_pid"
wait "$daemon_cd"
wait "$daemon_pid"
if ! [ -s "$daemon_dir/d.json" ]; then
    echo "ci: SIGTERM drain dropped the in-flight job's answer" >&2
    exit 1
fi
rm -rf "$daemon_dir"
echo "ci: daemon bytes match one-shot; SIGTERM drain delivered finals"

echo "==== hierarchy: ASan two-level tests + daemon golden diff ===="
# The two-level paths (L2 fetch, dirty-victim write-back bursts,
# back-invalidation on L2 eviction) are the newest pointer-heavy
# surface; run their tests under the ASan tree built above.
cmake --build "$repo_root/build-asan" -j "$jobs" --target \
    l2_test hierarchy_test
for t in l2_test hierarchy_test; do
    echo "---- asan: $t ----"
    "$repo_root/build-asan/tests/$t"
done
# One two-level JobSpec through the daemon must answer byte-identical
# to the one-shot driver — same contract the single-level stage checks,
# now with a "levels" array in the spec.
hier_dir=$(mktemp -d)
hier_sock="$hier_dir/c8td.sock"
"$repo_root/build/tools/c8td" --socket "$hier_sock" > /dev/null &
hier_pid=$!
hier_up=0
for _ in $(seq 1 100); do
    if [ -S "$hier_sock" ]; then hier_up=1; break; fi
    sleep 0.1
done
if [ "$hier_up" != 1 ]; then
    echo "ci: c8td did not come up on $hier_sock" >&2
    kill "$hier_pid" 2>/dev/null || true
    exit 1
fi
"$repo_root/build/tools/c8tctl" --socket "$hier_sock" \
    --output "$hier_dir/h.json" \
    '{"kind":"run","workload":"spec:gcc","accesses":20000,"levels":[{"size_kb":256}]}'
kill -TERM "$hier_pid"
wait "$hier_pid"
"$repo_root/build/tools/c8tsim" --workload spec:gcc --accesses 20000 \
    --l2 256 --stats-json "$hier_dir/h.ref" > /dev/null
if ! cmp -s "$hier_dir/h.json" "$hier_dir/h.ref"; then
    echo "ci: daemon two-level answer differs from one-shot c8tsim" >&2
    diff "$hier_dir/h.json" "$hier_dir/h.ref" >&2 || true
    exit 1
fi
rm -rf "$hier_dir"
echo "ci: two-level tests clean under ASan; daemon hierarchy bytes match"

echo "==== perf: Release snapshot vs committed baseline ===="
if [ "${C8T_CI_SKIP_PERF:-0}" = 1 ]; then
    echo "ci: perf smoke skipped (C8T_CI_SKIP_PERF=1)"
else
    baseline=$(ls -1 "$repo_root"/BENCH_*.json 2>/dev/null | sort | tail -1)
    if [ -z "$baseline" ]; then
        echo "ci: no committed BENCH_*.json baseline; skipping perf smoke"
    else
        snapshot=$(mktemp --suffix=.json)
        trap 'rm -f "$snapshot"' EXIT
        "$repo_root/tools/bench_report.sh" "$repo_root/build-bench" \
            "$snapshot"
        "$repo_root/tools/bench_diff.sh" "$baseline" "$snapshot" \
            "${C8T_CI_PERF_THRESHOLD:-25}"
    fi
fi

echo "ci: all green"
