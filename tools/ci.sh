#!/usr/bin/env bash
# One-command verification gate: the tier-1 suite plus an
# AddressSanitizer+UBSan build running the stream-identity and
# hot-path tests (the determinism and memory-safety surface of the
# batched/memoized stream engine).
#
#   1. Configure + build the default tree and run the full ctest suite
#      (this is the roadmap's tier-1 definition of "not broken").
#   2. Configure + build an ASan/UBSan tree (-DC8T_ASAN=ON) and run the
#      stream/cache/sweep/alloc tests under it. halt_on_error is the
#      sanitizer default, so any heap misuse fails the script.
#
# Usage: tools/ci.sh [jobs]        (default: nproc)
# Exit status: non-zero if any build or test fails.

set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${1:-$(nproc)}

echo "==== tier-1: build + full test suite ===="
cmake -B "$repo_root/build" -S "$repo_root"
cmake --build "$repo_root/build" -j "$jobs"
ctest --test-dir "$repo_root/build" --output-on-failure -j "$jobs"

echo "==== asan: build + stream/sweep/alloc tests ===="
cmake -B "$repo_root/build-asan" -S "$repo_root" -DC8T_ASAN=ON
cmake --build "$repo_root/build-asan" -j "$jobs" --target \
    stream_identity_test sweep_test hot_path_alloc_test \
    functional_mem_test
for t in stream_identity_test sweep_test hot_path_alloc_test \
         functional_mem_test; do
    echo "---- asan: $t ----"
    "$repo_root/build-asan/tests/$t"
done

echo "ci: all green"
