/**
 * @file
 * Tests for the voltage sweep driver (core/vdd_sweep.hh) and the
 * controller's operating-point wiring (DESIGN.md §10).
 *
 * The two contracts pinned here:
 *   - nominal identity: a voltage model attached at nominal Vdd is
 *     byte-identical to no model at all — stats dump, JSON document
 *     and event totals;
 *   - determinism: the sweep result (including the Monte-Carlo fault
 *     maps) is bit-identical for any worker count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/controller.hh"
#include "core/vdd_sweep.hh"
#include "mem/functional_mem.hh"
#include "obs/event_ring.hh"
#include "stats/registry.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;
using core::CacheController;
using core::ControllerConfig;
using core::RunConfig;
using core::VddSweepResult;
using core::VddSweepSpec;
using core::WriteScheme;

std::vector<trace::MemAccess>
gccStream(std::uint64_t n)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    std::vector<trace::MemAccess> out(n);
    for (auto &a : out)
        gen.next(a);
    return out;
}

VddSweepSpec
testSpec()
{
    VddSweepSpec spec;
    spec.makeGenerator = [] {
        return std::make_unique<trace::MarkovStream>(
            trace::specProfile("gcc"));
    };
    spec.streamKey = "vdd_sweep_test:gcc";
    return spec;
}

// ---------------------------------------------------------------------
// Satellite: nominal-Vdd identity. A model attached at nominal is the
// detached simulator, byte for byte.
// ---------------------------------------------------------------------

TEST(VddNominalIdentity, AttachedAtNominalIsByteIdentical)
{
    const auto stream = gccStream(40'000);

    for (WriteScheme scheme :
         {WriteScheme::SixTDirect, WriteScheme::Rmw,
          WriteScheme::WriteGroupingReadBypass}) {
        ControllerConfig detached;
        detached.scheme = scheme;
        ASSERT_EQ(detached.vdd, 0.0);

        ControllerConfig attached = detached;
        attached.vdd = attached.vmodel.nominalVdd; // explicit nominal

        mem::FunctionalMemory mem_a, mem_b;
        CacheController a(detached, mem_a);
        CacheController b(attached, mem_b);
        EXPECT_FALSE(a.vddActive());
        EXPECT_FALSE(b.vddActive());

        obs::EventRing ring_a(512), ring_b(512);
        a.attachEventRing(&ring_a);
        b.attachEventRing(&ring_b);
        for (const auto &acc : stream) {
            a.access(acc);
            b.access(acc);
        }

        // Human-readable dump.
        std::ostringstream dump_a, dump_b;
        a.dumpStats(dump_a);
        b.dumpStats(dump_b);
        EXPECT_EQ(dump_a.str(), dump_b.str()) << toString(scheme);

        // JSON document, including the absence of vdd.* gauges.
        stats::Registry reg_a, reg_b;
        a.registerStats(reg_a);
        b.registerStats(reg_b);
        std::ostringstream json_a, json_b;
        reg_a.dumpJson(json_a);
        reg_b.dumpJson(json_b);
        EXPECT_EQ(json_a.str(), json_b.str()) << toString(scheme);
        EXPECT_EQ(json_b.str().find("vdd."), std::string::npos);

        // Event totals.
        EXPECT_EQ(ring_a.typeCounts(), ring_b.typeCounts())
            << toString(scheme);
        EXPECT_EQ(a.cycle(), b.cycle()) << toString(scheme);
        EXPECT_EQ(a.dynamicEnergy(), b.dynamicEnergy())
            << toString(scheme);
    }
}

TEST(VddNominalIdentity, SubNominalVddActuallyChangesTheRun)
{
    const auto stream = gccStream(20'000);

    ControllerConfig nominal;
    nominal.scheme = WriteScheme::Rmw;
    ControllerConfig low = nominal;
    low.vdd = 0.7;

    mem::FunctionalMemory mem_a, mem_b;
    CacheController a(nominal, mem_a);
    CacheController b(low, mem_b);
    EXPECT_FALSE(a.vddActive());
    EXPECT_TRUE(b.vddActive());
    EXPECT_DOUBLE_EQ(b.vddPoint().vdd, 0.7);

    for (const auto &acc : stream) {
        a.access(acc);
        b.access(acc);
    }

    // CV^2 cuts dynamic energy, the alpha-power delay adds cycles;
    // functional behaviour (hits, misses, data) is untouched.
    EXPECT_LT(b.dynamicEnergy(), a.dynamicEnergy() * 0.55);
    EXPECT_GT(b.cycle(), a.cycle());
    EXPECT_EQ(a.requests(), b.requests());
    EXPECT_EQ(a.demandAccesses(), b.demandAccesses());
}

// ---------------------------------------------------------------------
// The sweep driver.
// ---------------------------------------------------------------------

TEST(VddSweep, EndToEndCurvesMatchThePaperStory)
{
    const VddSweepSpec spec = testSpec();
    const RunConfig rc{2'000, 20'000};
    const VddSweepResult result = core::runVddSweep(spec, rc);

    EXPECT_EQ(result.workload, "gcc");
    ASSERT_EQ(result.curves.size(), spec.schemes.size());
    ASSERT_GE(result.grid.size(), 8u);
    for (const core::VddCurve &c : result.curves)
        ASSERT_EQ(c.points.size(), result.grid.size());

    const core::VddCurve *sixt = result.curve(WriteScheme::SixTDirect);
    const core::VddCurve *rmw = result.curve(WriteScheme::Rmw);
    const core::VddCurve *wg = result.curve(WriteScheme::WriteGrouping);
    const core::VddCurve *wgrb =
        result.curve(WriteScheme::WriteGroupingReadBypass);
    ASSERT_NE(sixt, nullptr);
    ASSERT_NE(rmw, nullptr);
    ASSERT_NE(wg, nullptr);
    ASSERT_NE(wgrb, nullptr);
    EXPECT_EQ(result.curve(WriteScheme::LocalRmw), nullptr);

    // The headline: 6T runs on the 6T cell and stops scaling first;
    // every 8T scheme shares the same (cell, Vdd) fault maps, so all
    // three reach the same, strictly lower min-Vdd.
    EXPECT_EQ(sixt->cell, sram::CellType::SixT);
    EXPECT_EQ(rmw->cell, sram::CellType::EightT);
    EXPECT_GT(sixt->minVdd, 0.0);
    EXPECT_LT(rmw->minVdd, sixt->minVdd);
    EXPECT_DOUBLE_EQ(wg->minVdd, rmw->minVdd);
    EXPECT_DOUBLE_EQ(wgrb->minVdd, rmw->minVdd);

    for (std::size_t gi = 0; gi < result.grid.size(); ++gi) {
        // Write grouping recoups the RMW tax at every operating point.
        EXPECT_LT(wgrb->points[gi].energyPerAccess,
                  rmw->points[gi].energyPerAccess)
            << result.grid[gi];
        EXPECT_LT(wg->points[gi].energyPerAccess,
                  rmw->points[gi].energyPerAccess)
            << result.grid[gi];
        // Identical fault maps for every 8T scheme at each point.
        EXPECT_EQ(rmw->points[gi].faults.failedWords(),
                  wgrb->points[gi].faults.failedWords())
            << result.grid[gi];
        // Per-point bookkeeping is coherent.
        const core::VddPointResult &p = wgrb->points[gi];
        EXPECT_DOUBLE_EQ(p.energyPerAccess,
                         p.dynamicEnergyPerAccess +
                             p.leakageEnergyPerAccess);
        EXPECT_GT(p.cyclesPerAccess, 0.0);
        EXPECT_GT(p.edpPerAccess, 0.0);
    }

    // Nominal heads every curve and is always operational.
    EXPECT_TRUE(sixt->points.front().operational);
    EXPECT_TRUE(wgrb->points.front().operational);
    EXPECT_EQ(wgrb->points.front().point.energyScale, 1.0);
}

TEST(VddSweep, ResultIsIdenticalForAnyWorkerCount)
{
    VddSweepSpec spec = testSpec();
    spec.grid = {1.0, 0.85, 0.7, 0.6}; // keep the matrix small
    const RunConfig rc{1'000, 10'000};

    std::vector<std::string> dumps;
    for (unsigned workers : {1u, 2u, 8u}) {
        const VddSweepResult r = core::runVddSweep(spec, rc, workers);
        std::ostringstream os;
        r.dumpJson(os);
        dumps.push_back(os.str());
    }
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_EQ(dumps[0], dumps[2]);
}

TEST(VddSweep, DumpJsonIsVersionedAndWellFormed)
{
    VddSweepSpec spec = testSpec();
    spec.grid = {1.0, 0.7};
    const VddSweepResult r =
        core::runVddSweep(spec, RunConfig{500, 5'000});

    std::ostringstream os;
    r.dumpJson(os);
    const std::string out = os.str();
    EXPECT_EQ(out.find("{\"schema_version\":5,\"kind\":\"vdd_sweep\""),
              0u);
    for (const char *key :
         {"\"workload\":\"gcc\"", "\"failure_threshold\"", "\"grid\"",
          "\"curves\"", "\"scheme\":\"6T\"", "\"scheme\":\"WG+RB\"",
          "\"cell\":\"8T\"", "\"min_vdd\"", "\"energy_per_access\"",
          "\"post_ecc_failure_rate\"", "\"operational\"",
          "\"delay_factor\""}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
    EXPECT_EQ(out.find(",}"), std::string::npos);
    EXPECT_EQ(out.find(",]"), std::string::npos);
}

TEST(VddSweep, RegisterStatsExposesPerSchemeSummaries)
{
    VddSweepSpec spec = testSpec();
    spec.grid = {1.0, 0.7};
    VddSweepResult r = core::runVddSweep(spec, RunConfig{500, 5'000});

    stats::Registry reg;
    r.registerStats(reg);
    for (const char *name :
         {"vdd_sweep.6T.min_vdd", "vdd_sweep.RMW.min_vdd",
          "vdd_sweep.WG.min_vdd", "vdd_sweep.WG+RB.min_vdd",
          "vdd_sweep.WG+RB.energy_per_access_at_min"}) {
        ASSERT_NE(reg.gauge(name), nullptr) << name;
    }
    EXPECT_DOUBLE_EQ(reg.gauge("vdd_sweep.6T.min_vdd")->value(),
                     r.curve(WriteScheme::SixTDirect)->minVdd);
}

TEST(VddSweep, SpecValidationRejectsBrokenInput)
{
    const RunConfig rc{100, 1'000};

    VddSweepSpec no_factory = testSpec();
    no_factory.makeGenerator = nullptr;
    EXPECT_THROW(core::runVddSweep(no_factory, rc),
                 std::invalid_argument);

    VddSweepSpec empty_grid = testSpec();
    empty_grid.grid.clear();
    EXPECT_THROW(core::runVddSweep(empty_grid, rc),
                 std::invalid_argument);

    VddSweepSpec ascending = testSpec();
    ascending.grid = {0.5, 0.7, 1.0};
    EXPECT_THROW(core::runVddSweep(ascending, rc),
                 std::invalid_argument);

    VddSweepSpec no_schemes = testSpec();
    no_schemes.schemes.clear();
    EXPECT_THROW(core::runVddSweep(no_schemes, rc),
                 std::invalid_argument);
}

} // anonymous namespace
