/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "trace/rng.hh"

namespace
{

using c8t::trace::Rng;
using c8t::trace::splitmix64;

TEST(SplitMix64, KnownVector)
{
    // Reference values for the canonical splitmix64 with seed 0.
    std::uint64_t state = 0;
    EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafull);
    EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(splitmix64(state), 0x06c45d188009454full);
}

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const std::uint64_t first = a.next();
    a.next();
    a.seed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(11);
    std::vector<int> histo(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++histo[r.below(10)];
    for (int count : histo) {
        EXPECT_GT(count, n / 10 * 0.9);
        EXPECT_LT(count, n / 10 * 1.1);
    }
}

TEST(Rng, BetweenInclusiveBounds)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = r.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng r(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-0.5));
        EXPECT_TRUE(r.chance(1.5));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatchesTheory)
{
    Rng r(17);
    const double p = 0.4;
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(p));
    // E[failures before success] = (1-p)/p = 1.5.
    EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Rng, GeometricRespectsCap)
{
    Rng r(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LE(r.geometric(0.001, 10), 10u);
}

TEST(Rng, GeometricOfOneIsZero)
{
    Rng r(19);
    EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, ZipfInRange)
{
    Rng r(23);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.zipf(100, 1.0), 100u);
}

TEST(Rng, ZipfSkewsTowardHead)
{
    Rng r(29);
    const int n = 100000;
    int head = 0;
    for (int i = 0; i < n; ++i)
        head += r.zipf(100, 2.0) < 10;
    // With skew 2 far more than the uniform 10 % land in the head.
    EXPECT_GT(head, n / 4);
}

TEST(Rng, ZipfZeroSkewIsUniform)
{
    Rng r(31);
    const int n = 100000;
    int head = 0;
    for (int i = 0; i < n; ++i)
        head += r.zipf(100, 0.0) < 10;
    EXPECT_NEAR(static_cast<double>(head) / n, 0.10, 0.01);
}

TEST(Rng, ZipfSingleElement)
{
    Rng r(37);
    EXPECT_EQ(r.zipf(1, 2.0), 0u);
}

TEST(Rng, NoShortCycles)
{
    Rng r(41);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(r.next());
    EXPECT_EQ(seen.size(), 10000u);
}

} // anonymous namespace
