/**
 * @file
 * Calibration property over ALL 25 SPEC profiles: the stream each
 * profile generates must measure back to the profile's own targets
 * (memory fraction, read/write mix, RR/RW/WW/WR shares, silent
 * fraction) under the baseline set mapping. This is the regression
 * guard for the whole Figure 3-5 reproduction.
 */

#include <gtest/gtest.h>

#include "core/analyzer.hh"
#include "core/controller.hh"
#include "mem/addr.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;

class ProfileCalibration
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(ProfileCalibration, StreamMeasuresBackToTargets)
{
    const trace::StreamParams &p = trace::specProfile(GetParam());
    trace::MarkovStream gen(p);
    mem::AddrLayout layout(32, 512);
    core::StreamAnalyzer an(layout);

    trace::MemAccess a;
    constexpr std::uint64_t n = 150'000;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(gen.next(a));
        an.observe(a);
    }

    const double mem_frac =
        static_cast<double>(an.accesses()) / an.instructions();
    EXPECT_NEAR(mem_frac, p.memFraction, 0.012) << "memFraction";
    EXPECT_NEAR(an.readInstrFraction() / mem_frac, p.readShare, 0.012)
        << "readShare";
    EXPECT_NEAR(an.rrShare(), p.rr, 0.012) << "rr";
    EXPECT_NEAR(an.rwShare(), p.rw, 0.012) << "rw";
    EXPECT_NEAR(an.wwShare(), p.ww, 0.012) << "ww";
    EXPECT_NEAR(an.wrShare(), p.wr, 0.012) << "wr";
    EXPECT_NEAR(an.silentWriteFraction(), p.silentFraction, 0.012)
        << "silent";
}

TEST_P(ProfileCalibration, MissRateWithinSanityBounds)
{
    // Workload realism guard: no profile should produce a pathological
    // L1 behaviour (near-0 % would mean no fills are exercised,
    // near-100 % would mean no temporal locality at all). mcf is the
    // intentional cache-hostile outlier.
    const trace::StreamParams &p = trace::specProfile(GetParam());
    trace::MarkovStream gen(p);

    mem::FunctionalMemory memory;
    core::ControllerConfig cfg;
    core::CacheController c(cfg, memory);

    trace::MemAccess a;
    for (std::uint64_t i = 0; i < 100'000; ++i) {
        ASSERT_TRUE(gen.next(a));
        c.access(a);
    }
    const double miss_rate =
        static_cast<double>(c.tags().misses()) /
        (c.tags().hits() + c.tags().misses());
    EXPECT_GT(miss_rate, 0.01);
    if (GetParam() == "mcf")
        EXPECT_GT(miss_rate, 0.4);
    else
        EXPECT_LT(miss_rate, 0.55);
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileCalibration,
    ::testing::ValuesIn(c8t::trace::specBenchmarkNames()),
    [](const auto &info) { return info.param; });

} // anonymous namespace
