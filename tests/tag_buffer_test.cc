/**
 * @file
 * Unit tests for the Tag-Buffer.
 */

#include <gtest/gtest.h>

#include "core/tag_buffer.hh"

namespace
{

using namespace c8t::core;

TEST(TagBuffer, StartsInvalid)
{
    TagBuffer tb(1, 4);
    EXPECT_FALSE(tb.entryValid(0));
    const TagProbe p = tb.probe(3, 0x77);
    EXPECT_FALSE(p.setMatch);
    EXPECT_FALSE(p.tagMatch);
}

TEST(TagBuffer, SetAndTagMatch)
{
    TagBuffer tb(1, 4);
    tb.load(0, 9, {0xa, 0xb, 0xc, 0xd}, 0b1111);

    TagProbe p = tb.probe(9, 0xc);
    EXPECT_TRUE(p.setMatch);
    EXPECT_TRUE(p.tagMatch);
    EXPECT_EQ(p.entry, 0u);
    EXPECT_EQ(p.way, 2u);

    p = tb.probe(9, 0xf);
    EXPECT_TRUE(p.setMatch);
    EXPECT_FALSE(p.tagMatch);

    p = tb.probe(8, 0xa);
    EXPECT_FALSE(p.setMatch);
}

TEST(TagBuffer, InvalidWaysDoNotMatch)
{
    TagBuffer tb(1, 4);
    tb.load(0, 9, {0xa, 0xb, 0xc, 0xd}, 0b0101); // ways 1, 3 invalid
    EXPECT_TRUE(tb.probe(9, 0xa).tagMatch);
    EXPECT_FALSE(tb.probe(9, 0xb).tagMatch);
    EXPECT_TRUE(tb.probe(9, 0xc).tagMatch);
    EXPECT_FALSE(tb.probe(9, 0xd).tagMatch);
}

TEST(TagBuffer, DirtyBitLifecycle)
{
    TagBuffer tb(1, 4);
    tb.load(0, 1, {1, 2, 3, 4}, 0b1111);
    EXPECT_FALSE(tb.dirty(0)); // load clears dirty
    tb.setDirty(0, true);
    EXPECT_TRUE(tb.dirty(0));
    tb.setDirty(0, false);
    EXPECT_FALSE(tb.dirty(0));
}

TEST(TagBuffer, InvalidateDropsEntry)
{
    TagBuffer tb(1, 4);
    tb.load(0, 1, {1, 2, 3, 4}, 0b1111);
    tb.setDirty(0, true);
    tb.invalidate(0);
    EXPECT_FALSE(tb.entryValid(0));
    EXPECT_FALSE(tb.dirty(0));
    EXPECT_FALSE(tb.probe(1, 1).setMatch);
}

TEST(TagBuffer, ProbeStatistics)
{
    TagBuffer tb(1, 4);
    tb.load(0, 5, {1, 2, 3, 4}, 0b1111);
    tb.probe(5, 1); // set+tag hit
    tb.probe(5, 9); // set hit only
    tb.probe(6, 1); // miss
    EXPECT_EQ(tb.probes(), 3u);
    EXPECT_EQ(tb.setHits(), 2u);
    EXPECT_EQ(tb.tagHits(), 1u);
}

TEST(TagBuffer, PeekHasNoStatisticsSideEffects)
{
    TagBuffer tb(1, 4);
    tb.load(0, 5, {1, 2, 3, 4}, 0b1111);
    (void)tb.peek(5, 1);
    EXPECT_EQ(tb.probes(), 0u);
}

TEST(TagBuffer, MultiEntryHoldsSeveralSets)
{
    TagBuffer tb(4, 4);
    tb.load(0, 10, {1, 0, 0, 0}, 0b0001);
    tb.load(1, 20, {2, 0, 0, 0}, 0b0001);
    tb.load(2, 30, {3, 0, 0, 0}, 0b0001);
    EXPECT_TRUE(tb.probe(10, 1).tagMatch);
    EXPECT_TRUE(tb.probe(20, 2).tagMatch);
    EXPECT_TRUE(tb.probe(30, 3).tagMatch);
    EXPECT_FALSE(tb.probe(40, 4).setMatch);
}

TEST(TagBuffer, VictimPrefersInvalidEntries)
{
    TagBuffer tb(3, 4);
    tb.load(0, 1, {1, 0, 0, 0}, 0b0001);
    EXPECT_GE(tb.victim(), 1u); // entries 1 and 2 still invalid
}

TEST(TagBuffer, VictimIsLruAmongValid)
{
    TagBuffer tb(2, 4);
    tb.load(0, 1, {1, 0, 0, 0}, 0b0001);
    tb.load(1, 2, {2, 0, 0, 0}, 0b0001);
    tb.touch(0); // entry 1 becomes LRU
    EXPECT_EQ(tb.victim(), 1u);
    tb.touch(1);
    EXPECT_EQ(tb.victim(), 0u);
}

TEST(TagBuffer, InvalidateAll)
{
    TagBuffer tb(2, 4);
    tb.load(0, 1, {1, 0, 0, 0}, 0b0001);
    tb.load(1, 2, {2, 0, 0, 0}, 0b0001);
    tb.invalidateAll();
    EXPECT_FALSE(tb.entryValid(0));
    EXPECT_FALSE(tb.entryValid(1));
}

TEST(TagBuffer, StorageBitsMatchPaperBound)
{
    // Paper §5.4: < 150 bits for the baseline (9 set bits, 34-bit tags,
    // 4 ways). Our entry adds per-way valid bits.
    TagBuffer tb(1, 4);
    const std::uint64_t bits = tb.storageBits(9, 34);
    EXPECT_LT(bits, 150u + 4u); // paper bound + the 4 valid bits
    EXPECT_EQ(bits, 9u + 4u * 35u + 1u);
}

TEST(TagBuffer, ResetCountersKeepsEntries)
{
    TagBuffer tb(1, 4);
    tb.load(0, 5, {1, 2, 3, 4}, 0b1111);
    tb.probe(5, 1);
    tb.resetCounters();
    EXPECT_EQ(tb.probes(), 0u);
    EXPECT_TRUE(tb.entryValid(0));
}

} // anonymous namespace
