/**
 * @file
 * Zero-allocation guarantee for the access hot path.
 *
 * The figure sweeps run hundreds of millions of accesses; a single heap
 * allocation per access dominates the simulator's own run time. This
 * binary replaces the global allocator with a counting one and asserts
 * that a warmed-up controller services requests with *strictly zero*
 * heap traffic for every scheme, and that MarkovStream::next() only
 * allocates on the shadow map's amortized capacity doublings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/controller.hh"
#include "obs/event_ring.hh"
#include "obs/histogram.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "trace/markov_stream.hh"
#include "trace/replay.hh"
#include "trace/spec_profiles.hh"

namespace
{

std::atomic<std::uint64_t> g_allocations{0};

} // anonymous namespace

// Counting global allocator. Only the test binary links this; the
// library under test goes through it for every new/delete.
void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace c8t;
using core::CacheController;
using core::ControllerConfig;
using core::WriteScheme;

constexpr std::uint64_t kWarmup = 20'000;
constexpr std::uint64_t kMeasure = 100'000;

/** Pre-generate a stream so generator-side allocations cannot be
 *  confused with controller-side ones. */
std::vector<trace::MemAccess>
pregenerate(std::uint64_t n)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    std::vector<trace::MemAccess> out(n);
    for (auto &a : out)
        gen.next(a);
    return out;
}

TEST(HotPathAllocations, ControllerAccessPathIsAllocationFree)
{
    const auto stream = pregenerate(kWarmup + kMeasure);

    for (WriteScheme scheme :
         {WriteScheme::SixTDirect, WriteScheme::Rmw, WriteScheme::LocalRmw,
          WriteScheme::WordGranular, WriteScheme::WriteGrouping,
          WriteScheme::WriteGroupingReadBypass}) {
        mem::FunctionalMemory memory;
        // Pre-size the word table beyond the run's footprint so misses
        // never trigger a rehash inside the measurement window.
        memory.reserve(1u << 20);

        ControllerConfig cfg;
        cfg.scheme = scheme;
        CacheController ctrl(cfg, memory);

        for (std::uint64_t i = 0; i < kWarmup; ++i)
            ctrl.access(stream[i]);

        const std::uint64_t before =
            g_allocations.load(std::memory_order_relaxed);
        for (std::uint64_t i = kWarmup; i < stream.size(); ++i)
            ctrl.access(stream[i]);
        const std::uint64_t delta =
            g_allocations.load(std::memory_order_relaxed) - before;

        EXPECT_EQ(delta, 0u)
            << toString(scheme) << ": " << delta
            << " heap allocations in " << kMeasure << " accesses";
    }
}

TEST(HotPathAllocations, EventRingRecordingIsAllocationFree)
{
    const auto stream = pregenerate(kWarmup + kMeasure);

    for (WriteScheme scheme :
         {WriteScheme::SixTDirect, WriteScheme::Rmw, WriteScheme::LocalRmw,
          WriteScheme::WordGranular, WriteScheme::WriteGrouping,
          WriteScheme::WriteGroupingReadBypass}) {
        mem::FunctionalMemory memory;
        memory.reserve(1u << 20);

        ControllerConfig cfg;
        cfg.scheme = scheme;
        CacheController ctrl(cfg, memory);

        // Small capacity on purpose: the measurement window wraps the
        // ring thousands of times, so wrap-around handling is also
        // covered by the zero-allocation assertion.
        obs::EventRing ring(1024);
        ctrl.attachEventRing(&ring);

        for (std::uint64_t i = 0; i < kWarmup; ++i)
            ctrl.access(stream[i]);

        const std::uint64_t before =
            g_allocations.load(std::memory_order_relaxed);
        for (std::uint64_t i = kWarmup; i < stream.size(); ++i)
            ctrl.access(stream[i]);
        const std::uint64_t delta =
            g_allocations.load(std::memory_order_relaxed) - before;

        EXPECT_EQ(delta, 0u)
            << toString(scheme) << ": " << delta
            << " heap allocations in " << kMeasure
            << " accesses with the event ring attached";
        EXPECT_GT(ring.recorded(), 0u) << toString(scheme);
    }
}

TEST(HotPathAllocations, BatchedChunkPipelineIsAllocationFree)
{
    const auto stream = pregenerate(kWarmup + kMeasure);
    constexpr std::size_t kChunk = 4096;

    for (WriteScheme scheme :
         {WriteScheme::SixTDirect, WriteScheme::Rmw,
          WriteScheme::WriteGrouping,
          WriteScheme::WriteGroupingReadBypass}) {
        mem::FunctionalMemory memory;
        memory.reserve(1u << 20);

        ControllerConfig cfg;
        cfg.scheme = scheme;
        CacheController ctrl(cfg, memory);

        // Drive the set-batched pipeline directly: plan each chunk,
        // then apply it. The first planReplayChunk() sizes the plan
        // scratch (set/tag/way/flags arrays and the per-set chains);
        // after this warm-up pass the pipeline must never touch the
        // heap again — the scratch is pre-sized and reused.
        auto feed = [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; i += kChunk) {
                const std::size_t n = std::min(kChunk, end - i);
                const mem::ChunkPlan *plan =
                    ctrl.planReplayChunk(stream.data() + i, n);
                ASSERT_NE(plan, nullptr) << toString(scheme);
                ctrl.accessChunk(stream.data() + i, n, plan);
            }
        };
        feed(0, kWarmup);

        const std::uint64_t before =
            g_allocations.load(std::memory_order_relaxed);
        feed(kWarmup, stream.size());
        const std::uint64_t delta =
            g_allocations.load(std::memory_order_relaxed) - before;

        EXPECT_EQ(delta, 0u)
            << toString(scheme) << ": " << delta
            << " heap allocations in " << kMeasure
            << " batched accesses";
    }
}

TEST(HotPathAllocations, DrainAndFlushStayAllocationFree)
{
    const auto stream = pregenerate(kWarmup);
    mem::FunctionalMemory memory;
    memory.reserve(1u << 20);
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGroupingReadBypass;
    CacheController ctrl(cfg, memory);
    for (const auto &a : stream)
        ctrl.access(a);

    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    ctrl.drain();
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

TEST(HotPathAllocations, MarkovStreamNextIsAmortizedAllocationFree)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    trace::MemAccess a;
    // Let the shadow map grow to the steady-state working set first.
    for (std::uint64_t i = 0; i < 200'000; ++i)
        gen.next(a);

    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < kMeasure; ++i)
        gen.next(a);
    const std::uint64_t delta =
        g_allocations.load(std::memory_order_relaxed) - before;

    // The flat shadow map may still double capacity a handful of times
    // as the footprint expands; per-access node allocations (the old
    // unordered_map behaviour, one per first-touch write) would show up
    // as tens of thousands.
    EXPECT_LE(delta, 8u) << delta << " allocations in " << kMeasure
                         << " generated accesses";
}

TEST(HotPathAllocations, MarkovStreamFillChunkIsAmortizedAllocationFree)
{
    trace::MarkovStream gen(trace::specProfile("gcc"));
    std::vector<trace::MemAccess> chunk(4096);
    // Warm the shadow map to the steady-state working set first.
    for (std::uint64_t i = 0; i < 200'000; i += chunk.size())
        gen.fillChunk(chunk.data(), chunk.size());

    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < kMeasure; i += chunk.size())
        gen.fillChunk(chunk.data(), chunk.size());
    const std::uint64_t delta =
        g_allocations.load(std::memory_order_relaxed) - before;

    // Same budget as next(): only the shadow map's amortized capacity
    // doublings may allocate; the chunked path adds nothing.
    EXPECT_LE(delta, 8u) << delta << " allocations in " << kMeasure
                         << " chunk-generated accesses";
}

TEST(HotPathAllocations, ProfilingAndMetricsRecordingIsAllocationFree)
{
    // The phase profiler and metrics registry sit on the per-chunk hot
    // path; with recording ENABLED they must still be heap-silent —
    // fixed arrays only, no string building, no map nodes.
    obs::prof::setEnabled(true);
    obs::prof::takeThreadTimes();
    obs::Histogram h;
    obs::Metrics &m = obs::globalMetrics();
    // Warm everything once: thread-local state, the leaked registry.
    {
        obs::prof::ScopedPhase warm(obs::prof::Phase::Replay);
        h.record(1);
        m.recordChunkReplayNs(1);
    }
    obs::prof::takeThreadTimes();

    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < 10'000; ++i) {
        obs::prof::ScopedPhase outer(obs::prof::Phase::Replay);
        {
            obs::prof::ScopedPhase inner(obs::prof::Phase::Plan);
            h.record(i * 37);
        }
        m.recordChunkReplayNs(i * 91);
        m.recordJobWallNs(i * 13);
    }
    m.addPhaseTimes(obs::prof::takeThreadTimes());
    const std::uint64_t delta =
        g_allocations.load(std::memory_order_relaxed) - before;

    EXPECT_EQ(delta, 0u)
        << delta << " heap allocations in 10000 profiled scopes";

    obs::prof::setEnabled(false);
    m.reset();
}

TEST(HotPathAllocations, ReplayGeneratorChunkedReplayIsAllocationFree)
{
    auto buffer = std::make_shared<std::vector<trace::MemAccess>>(
        pregenerate(kMeasure));
    trace::ReplayGenerator replay("gcc", buffer);
    std::vector<trace::MemAccess> chunk(4096);

    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    // Replaying a cached stream is a pure copy loop: strictly zero
    // heap traffic, including the reset between passes.
    for (int pass = 0; pass < 3; ++pass) {
        while (replay.fillChunk(chunk.data(), chunk.size()) > 0) {
        }
        replay.reset();
    }
    const std::uint64_t delta =
        g_allocations.load(std::memory_order_relaxed) - before;

    EXPECT_EQ(delta, 0u)
        << delta << " heap allocations replaying " << kMeasure
        << " cached accesses three times";
}

} // anonymous namespace
