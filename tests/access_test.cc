/**
 * @file
 * Unit tests for the MemAccess record.
 */

#include <gtest/gtest.h>

#include "trace/access.hh"

namespace
{

using namespace c8t::trace;

TEST(AccessType, Names)
{
    EXPECT_STREQ(toString(AccessType::Read), "R");
    EXPECT_STREQ(toString(AccessType::Write), "W");
}

TEST(MemAccess, Defaults)
{
    MemAccess a;
    EXPECT_EQ(a.addr, 0u);
    EXPECT_EQ(a.size, 8);
    EXPECT_TRUE(a.isRead());
    EXPECT_FALSE(a.isWrite());
}

TEST(MemAccess, TypePredicates)
{
    MemAccess a;
    a.type = AccessType::Write;
    EXPECT_TRUE(a.isWrite());
    EXPECT_FALSE(a.isRead());
}

TEST(MemAccess, ReadToString)
{
    MemAccess a;
    a.addr = 0x1234;
    a.size = 4;
    a.gap = 3;
    const std::string s = a.toString();
    EXPECT_EQ(s, "R 0x1234 sz=4 gap=3");
}

TEST(MemAccess, WriteToStringIncludesData)
{
    MemAccess a;
    a.addr = 0xbeef;
    a.type = AccessType::Write;
    a.data = 0xff;
    a.gap = 0;
    const std::string s = a.toString();
    EXPECT_EQ(s, "W 0xbeef sz=8 gap=0 data=0xff");
}

TEST(MemAccess, Equality)
{
    MemAccess a, b;
    a.addr = b.addr = 0x10;
    EXPECT_EQ(a, b);
    b.gap = 1;
    EXPECT_NE(a, b);
}

} // anonymous namespace
