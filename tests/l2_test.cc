/**
 * @file
 * Tests for the two-level hierarchy seen from the L2's side
 * (DESIGN.md §14): construction guards, fill/refetch behaviour,
 * write-back semantics and the guarantee that a second level never
 * changes architectural values. The inclusion invariant and the
 * event-ring reconciliation live in tests/hierarchy_test.cc.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/controller.hh"
#include "core/level_stack.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;
using core::CacheController;
using core::ControllerConfig;
using core::LevelConfig;
using core::LevelStack;
using core::WriteScheme;

trace::MemAccess
readAcc(std::uint64_t addr, std::uint32_t gap = 0)
{
    trace::MemAccess a;
    a.addr = addr;
    a.gap = gap;
    return a;
}

trace::MemAccess
writeAcc(std::uint64_t addr, std::uint64_t data)
{
    trace::MemAccess a;
    a.addr = addr;
    a.type = trace::AccessType::Write;
    a.data = data;
    return a;
}

/** Default 64K/4w/32B L1 over the default 256K/8w/32B L2. */
ControllerConfig
hierConfig()
{
    ControllerConfig cfg;
    cfg.lowerLevels.push_back(LevelConfig{});
    return cfg;
}

/** Span between addresses mapping to the same L1 set (default L1:
 *  64 KB / 4-way / 32 B = 512 sets). */
constexpr std::uint64_t kL1SetSpan = 32 * 512;

TEST(L2, SingleLevelStackHasDepthOne)
{
    mem::FunctionalMemory memory;
    LevelStack stack(ControllerConfig{}, memory);
    EXPECT_EQ(stack.depth(), 1u);
    EXPECT_EQ(&stack.top(), &stack.level(0));
}

TEST(L2, RejectsMismatchedBlockSize)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg = hierConfig();
    cfg.lowerLevels[0].cache.blockBytes = 64; // L1 uses 32
    EXPECT_THROW(LevelStack(cfg, memory), std::invalid_argument);
}

TEST(L2, RejectsLowerLevelSmallerThanUpper)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg = hierConfig();
    cfg.lowerLevels[0].cache.sizeBytes = 32 * 1024; // L1 is 64 K
    EXPECT_THROW(LevelStack(cfg, memory), std::invalid_argument);
}

TEST(L2, ColdMissFillsBothLevels)
{
    mem::FunctionalMemory memory;
    LevelStack stack(hierConfig(), memory);
    stack.access(readAcc(0x1000));
    ASSERT_EQ(stack.depth(), 2u);
    EXPECT_EQ(stack.level(1).tags().misses(), 1u);
    EXPECT_EQ(stack.level(1).tags().hits(), 0u);
    EXPECT_TRUE(stack.level(1).tags().probe(0x1000).hit);
    EXPECT_TRUE(stack.top().tags().probe(0x1000).hit);
}

TEST(L2, VictimRefetchHitsL2)
{
    // Evict a block from the small L1, then re-read it: the refetch
    // must hit the (larger) L2 and pay far less than a memory miss.
    mem::FunctionalMemory memory;
    LevelStack stack(hierConfig(), memory);

    const std::uint64_t cold_latency =
        stack.access(readAcc(0x1000)).latencyCycles;
    for (std::uint64_t i = 1; i <= 4; ++i)
        stack.access(readAcc(0x1000 + i * kL1SetSpan, 100));
    ASSERT_FALSE(stack.top().tags().probe(0x1000).hit);

    const std::uint64_t l2_hits_before = stack.level(1).tags().hits();
    const core::AccessOutcome out = stack.access(readAcc(0x1000, 1000));
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(stack.level(1).tags().hits(), l2_hits_before + 1);
    // An L2 hit services the refetch without the memory round trip the
    // cold miss paid.
    EXPECT_LT(out.latencyCycles, cold_latency);
}

TEST(L2, MemoryMissStillPaysFullPenalty)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg = hierConfig();
    LevelStack stack(cfg, memory);
    const core::AccessOutcome out = stack.access(readAcc(0x9000));
    // A double miss pays at least the L2's memory penalty.
    EXPECT_GE(out.latencyCycles,
              cfg.lowerLevels[0].latency.missPenaltyCycles);
}

TEST(L2, NeverChangesValues)
{
    // The same stream with and without the L2 returns identical data:
    // the hierarchy shapes timing and energy, never architecture.
    for (WriteScheme s :
         {WriteScheme::Rmw, WriteScheme::WriteGroupingReadBypass}) {
        trace::MarkovStream gen_a(trace::specProfile("mcf"));
        trace::MarkovStream gen_b(trace::specProfile("mcf"));

        mem::FunctionalMemory mem_a, mem_b;
        ControllerConfig plain;
        plain.scheme = s;
        ControllerConfig with_l2 = hierConfig();
        with_l2.scheme = s;
        LevelStack a(plain, mem_a), b(with_l2, mem_b);

        trace::MemAccess acc_a, acc_b;
        for (int i = 0; i < 30'000; ++i) {
            ASSERT_TRUE(gen_a.next(acc_a));
            ASSERT_TRUE(gen_b.next(acc_b));
            ASSERT_EQ(acc_a, acc_b);
            const auto out_a = a.access(acc_a);
            const auto out_b = b.access(acc_b);
            if (acc_a.isRead())
                ASSERT_EQ(out_a.data, out_b.data) << "access " << i;
        }
        // End state agrees architecturally, word by spot-checked word.
        a.drain();
        b.drain();
        for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 8) {
            ASSERT_EQ(a.peekWord(addr), b.peekWord(addr))
                << "addr " << addr;
        }
    }
}

TEST(L2, ReducesMeanReadLatencyOnRefetchHeavyStream)
{
    auto run = [](bool with_l2) {
        trace::MarkovStream gen(trace::specProfile("mcf"));
        mem::FunctionalMemory memory;
        LevelStack stack(with_l2 ? hierConfig() : ControllerConfig{},
                         memory);
        trace::MemAccess a;
        for (int i = 0; i < 50'000; ++i) {
            gen.next(a);
            stack.access(a);
        }
        return stack.top().readLatency().mean();
    };
    EXPECT_LT(run(true), run(false));
}

TEST(L2, DirtyVictimsWriteBackIntoL2NotMemory)
{
    mem::FunctionalMemory memory;
    LevelStack stack(hierConfig(), memory);
    stack.access(writeAcc(0x2000, 0x77)); // dirty in L1 (and L2-filled)
    for (std::uint64_t i = 1; i <= 4; ++i)
        stack.access(readAcc(0x2000 + i * kL1SetSpan));
    ASSERT_FALSE(stack.top().tags().probe(0x2000).hit);

    // The victim landed in the L2 (write-back, not write-through):
    // the hierarchy is current, the functional memory still stale.
    EXPECT_TRUE(stack.level(1).tags().probe(0x2000).hit);
    EXPECT_EQ(stack.peekWord(0x2000), 0x77u);
    EXPECT_EQ(memory.readWord(0x2000), 0u);

    // The backdoor flush makes memory architecturally current.
    stack.drain();
    stack.flushToMemory();
    EXPECT_EQ(memory.readWord(0x2000), 0x77u);
}

TEST(L2, ResetStatsClearsAllLevels)
{
    mem::FunctionalMemory memory;
    LevelStack stack(hierConfig(), memory);
    stack.access(readAcc(0x1000));
    stack.resetStats();
    EXPECT_EQ(stack.top().tags().misses(), 0u);
    EXPECT_EQ(stack.level(1).tags().misses(), 0u);
}

} // anonymous namespace
