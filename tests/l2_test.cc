/**
 * @file
 * Tests for the optional tags-only L2: latency shaping, hit/miss
 * accounting, and the guarantee that it never changes values.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/controller.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;
using core::CacheController;
using core::ControllerConfig;
using core::WriteScheme;

trace::MemAccess
readAcc(std::uint64_t addr, std::uint32_t gap = 0)
{
    trace::MemAccess a;
    a.addr = addr;
    a.gap = gap;
    return a;
}

trace::MemAccess
writeAcc(std::uint64_t addr, std::uint64_t data)
{
    trace::MemAccess a;
    a.addr = addr;
    a.type = trace::AccessType::Write;
    a.data = data;
    return a;
}

ControllerConfig
l2Config()
{
    ControllerConfig cfg;
    cfg.l2Enabled = true;
    return cfg;
}

TEST(L2, DisabledByDefault)
{
    mem::FunctionalMemory memory;
    CacheController c(ControllerConfig{}, memory);
    EXPECT_EQ(c.l2(), nullptr);
}

TEST(L2, RejectsMismatchedBlockSize)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg = l2Config();
    cfg.l2.blockBytes = 64; // L1 uses 32
    EXPECT_THROW(CacheController(cfg, memory), std::invalid_argument);
}

TEST(L2, ColdMissFillsBothLevels)
{
    mem::FunctionalMemory memory;
    CacheController c(l2Config(), memory);
    c.access(readAcc(0x1000));
    ASSERT_NE(c.l2(), nullptr);
    EXPECT_EQ(c.l2()->misses(), 1u);
    EXPECT_EQ(c.l2()->hits(), 0u);
    EXPECT_TRUE(c.l2()->probe(0x1000).hit);
}

TEST(L2, VictimRefetchHitsL2)
{
    // Evict a block from the small L1, then re-read it: the refetch
    // must hit the L2 and pay the shorter penalty.
    mem::FunctionalMemory memory;
    ControllerConfig cfg = l2Config();
    CacheController c(cfg, memory);

    const std::uint64_t set_span = 32 * 512;
    c.access(readAcc(0x1000));
    for (std::uint64_t i = 1; i <= 4; ++i)
        c.access(readAcc(0x1000 + i * set_span, 100));

    const core::AccessOutcome out = c.access(readAcc(0x1000, 1000));
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(c.l2()->hits(), 1u);
    // Latency bounded by the L2 service, far below the memory penalty.
    EXPECT_LT(out.latencyCycles, cfg.latency.missPenaltyCycles);
    EXPECT_GE(out.latencyCycles, cfg.l2LatencyCycles);
}

TEST(L2, MemoryMissStillPaysFullPenalty)
{
    mem::FunctionalMemory memory;
    ControllerConfig cfg = l2Config();
    CacheController c(cfg, memory);
    const core::AccessOutcome out = c.access(readAcc(0x9000));
    EXPECT_GE(out.latencyCycles, cfg.latency.missPenaltyCycles);
}

TEST(L2, NeverChangesValues)
{
    // The same stream with and without the L2 returns identical data.
    for (WriteScheme s :
         {WriteScheme::Rmw, WriteScheme::WriteGroupingReadBypass}) {
        trace::MarkovStream gen_a(trace::specProfile("mcf"));
        trace::MarkovStream gen_b(trace::specProfile("mcf"));

        mem::FunctionalMemory mem_a, mem_b;
        ControllerConfig plain;
        plain.scheme = s;
        ControllerConfig with_l2 = l2Config();
        with_l2.scheme = s;
        CacheController a(plain, mem_a), b(with_l2, mem_b);

        trace::MemAccess acc_a, acc_b;
        for (int i = 0; i < 30'000; ++i) {
            ASSERT_TRUE(gen_a.next(acc_a));
            ASSERT_TRUE(gen_b.next(acc_b));
            ASSERT_EQ(acc_a, acc_b);
            const auto out_a = a.access(acc_a);
            const auto out_b = b.access(acc_b);
            if (acc_a.isRead())
                ASSERT_EQ(out_a.data, out_b.data) << "access " << i;
        }
        // Demand accounting is also unaffected (L2 is timing-only).
        EXPECT_EQ(a.demandAccesses(), b.demandAccesses());
    }
}

TEST(L2, ReducesMeanReadLatencyOnRefetchHeavyStream)
{
    auto run = [](bool with_l2) {
        trace::MarkovStream gen(trace::specProfile("mcf"));
        mem::FunctionalMemory memory;
        ControllerConfig cfg;
        cfg.l2Enabled = with_l2;
        CacheController c(cfg, memory);
        trace::MemAccess a;
        for (int i = 0; i < 50'000; ++i) {
            gen.next(a);
            c.access(a);
        }
        return c.readLatency().mean();
    };
    EXPECT_LT(run(true), run(false));
}

TEST(L2, DirtyVictimsAreInstalled)
{
    mem::FunctionalMemory memory;
    CacheController c(l2Config(), memory);
    const std::uint64_t set_span = 32 * 512;
    c.access(writeAcc(0x2000, 0x77)); // dirty in L1 (and L2-filled)
    for (std::uint64_t i = 1; i <= 4; ++i)
        c.access(readAcc(0x2000 + i * set_span));
    // The victim stays L2-resident and memory is architecturally
    // current.
    EXPECT_TRUE(c.l2()->probe(0x2000).hit);
    EXPECT_EQ(memory.readWord(0x2000), 0x77u);
}

TEST(L2, ResetStatsClearsL2Counters)
{
    mem::FunctionalMemory memory;
    CacheController c(l2Config(), memory);
    c.access(readAcc(0x1000));
    c.resetStats();
    EXPECT_EQ(c.l2()->misses(), 0u);
}

} // anonymous namespace
