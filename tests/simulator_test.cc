/**
 * @file
 * Unit tests for the simulation drivers.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/simulator.hh"
#include "trace/kernels.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t::core;

std::vector<ControllerConfig>
threeSchemes()
{
    std::vector<ControllerConfig> cfgs(3);
    cfgs[0].scheme = WriteScheme::Rmw;
    cfgs[1].scheme = WriteScheme::WriteGrouping;
    cfgs[2].scheme = WriteScheme::WriteGroupingReadBypass;
    return cfgs;
}

TEST(MultiSchemeRunner, RejectsEmptyConfigList)
{
    EXPECT_THROW(MultiSchemeRunner{std::vector<ControllerConfig>{}},
                 std::invalid_argument);
}

TEST(MultiSchemeRunner, ProducesOneResultPerConfig)
{
    c8t::trace::HashUpdateKernel gen(1024, 20000, 0.3, 0.5);
    MultiSchemeRunner runner(threeSchemes());
    const auto results = runner.run(gen, {1000, 10000});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].scheme, "RMW");
    EXPECT_EQ(results[1].scheme, "WG");
    EXPECT_EQ(results[2].scheme, "WG+RB");
    for (const auto &r : results)
        EXPECT_EQ(r.workload, "hash_update");
}

TEST(MultiSchemeRunner, WarmupExcludedFromMeasurement)
{
    c8t::trace::MarkovStream gen(c8t::trace::specProfile("sphinx3"));
    MultiSchemeRunner runner(threeSchemes());
    const auto results = runner.run(gen, {5000, 20000});
    for (const auto &r : results)
        EXPECT_EQ(r.requests, 20000u);
}

TEST(MultiSchemeRunner, BoundedGeneratorStopsEarly)
{
    c8t::trace::StreamCopyKernel gen(1000, 1); // 2000 accesses total
    MultiSchemeRunner runner(threeSchemes());
    const auto results = runner.run(gen, {500, 10000});
    for (const auto &r : results)
        EXPECT_EQ(r.requests, 1500u);
}

TEST(MultiSchemeRunner, ResultFieldsConsistent)
{
    c8t::trace::MarkovStream gen(c8t::trace::specProfile("gcc"));
    MultiSchemeRunner runner(threeSchemes());
    const auto results = runner.run(gen, {2000, 30000});
    for (const auto &r : results) {
        EXPECT_EQ(r.requests, r.reads + r.writes);
        EXPECT_EQ(r.demandAccesses,
                  r.demandRowReads + r.demandRowWrites);
        EXPECT_EQ(r.requests, r.hits + r.misses);
        EXPECT_GT(r.dynamicEnergy, 0.0);
        EXPECT_GT(r.cycles, 0u);
        EXPECT_GT(r.meanReadLatency, 0.0);
    }
}

TEST(MultiSchemeRunner, ReductionShapeOnFriendlyWorkload)
{
    // A store-heavy, reuse-heavy kernel must reproduce the paper's
    // ordering: WG+RB <= WG < RMW.
    c8t::trace::HashUpdateKernel gen(512, 50000, 0.4, 1.0);
    MultiSchemeRunner runner(threeSchemes());
    const auto results = runner.run(gen, {2000, 80000});
    EXPECT_LT(results[1].demandAccesses, results[0].demandAccesses);
    EXPECT_LE(results[2].demandAccesses, results[1].demandAccesses);
}

TEST(MultiSchemeRunner, SameStreamForEveryScheme)
{
    c8t::trace::MarkovStream gen(c8t::trace::specProfile("namd"));
    MultiSchemeRunner runner(threeSchemes());
    const auto results = runner.run(gen, {1000, 10000});
    for (const auto &r : results) {
        EXPECT_EQ(r.reads, results[0].reads);
        EXPECT_EQ(r.writes, results[0].writes);
        EXPECT_EQ(r.misses, results[0].misses);
    }
}

TEST(AnalyzeStream, MatchesKernelStructure)
{
    // stream_copy alternates R/W: 50 % writes, no silent stores.
    c8t::trace::StreamCopyKernel gen(5000, 1);
    c8t::mem::AddrLayout layout(32, 512);
    const StreamStats s = analyzeStream(gen, layout, 10000);
    EXPECT_EQ(s.accesses, 10000u);
    EXPECT_NEAR(
        s.writeInstrFraction / (s.readInstrFraction + s.writeInstrFraction),
        0.5, 1e-9);
    EXPECT_DOUBLE_EQ(s.silentWriteFraction, 0.0);
    EXPECT_EQ(s.workload, "stream_copy");
}

TEST(AnalyzeStream, ResetsGeneratorFirst)
{
    c8t::trace::StreamCopyKernel gen(100, 1);
    c8t::mem::AddrLayout layout(32, 512);
    const StreamStats a = analyzeStream(gen, layout, 200);
    const StreamStats b = analyzeStream(gen, layout, 200);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_DOUBLE_EQ(a.wwShare, b.wwShare);
}

TEST(SnapshotResult, CopiesCounters)
{
    c8t::mem::FunctionalMemory mem;
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGrouping;
    CacheController c(cfg, mem);

    c8t::trace::MemAccess w;
    w.addr = 0x1000;
    w.type = c8t::trace::AccessType::Write;
    w.data = 5;
    c.access(w);
    c.access(w);

    const SchemeRunResult r = snapshotResult("unit", c);
    EXPECT_EQ(r.workload, "unit");
    EXPECT_EQ(r.scheme, "WG");
    EXPECT_EQ(r.requests, 2u);
    EXPECT_EQ(r.writes, 2u);
    EXPECT_EQ(r.groupedWrites, 1u);
}

} // anonymous namespace
