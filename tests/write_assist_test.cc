/**
 * @file
 * Unit tests for the adaptive write-assist model (Kim et al.).
 */

#include <gtest/gtest.h>

#include "sram/write_assist.hh"

namespace
{

using namespace c8t::sram;

TEST(WriteAssist, LevelNames)
{
    EXPECT_STREQ(toString(AssistLevel::Nominal), "nominal");
    EXPECT_STREQ(toString(AssistLevel::WidePulse), "wide_pulse");
    EXPECT_STREQ(toString(AssistLevel::BoostedVoltage), "boosted");
}

TEST(WriteAssist, NoWeakRowsMeansAllNominal)
{
    WriteAssistParams p;
    p.weakRowFraction = 0.0;
    WriteAssist wa(512, p);
    for (std::uint32_t r = 0; r < 512; ++r)
        EXPECT_EQ(wa.write(r), AssistLevel::Nominal);
    EXPECT_EQ(wa.nominalWrites(), 512u);
    EXPECT_DOUBLE_EQ(wa.meanLatencyFactor(), 1.0);
    EXPECT_DOUBLE_EQ(wa.meanEnergyFactor(), 1.0);
}

TEST(WriteAssist, WeakMapIsDeterministic)
{
    WriteAssistParams p;
    p.weakRowFraction = 0.1;
    WriteAssist a(1024, p), b(1024, p);
    for (std::uint32_t r = 0; r < 1024; ++r)
        EXPECT_EQ(a.rowIsWeak(r), b.rowIsWeak(r));
}

TEST(WriteAssist, WeakRowFractionApproximatelyRespected)
{
    WriteAssistParams p;
    p.weakRowFraction = 0.10;
    WriteAssist wa(20000, p);
    std::uint32_t weak = 0;
    for (std::uint32_t r = 0; r < 20000; ++r)
        weak += wa.rowIsWeak(r);
    EXPECT_NEAR(static_cast<double>(weak) / 20000, 0.10, 0.01);
}

TEST(WriteAssist, EscalationIsConsistentPerRow)
{
    WriteAssistParams p;
    p.weakRowFraction = 0.3;
    WriteAssist wa(256, p);
    for (std::uint32_t r = 0; r < 256; ++r) {
        const AssistLevel first = wa.write(r);
        EXPECT_EQ(wa.write(r), first) << "row " << r;
        EXPECT_EQ(wa.rowIsWeak(r), first != AssistLevel::Nominal);
    }
}

TEST(WriteAssist, MeanFactorsBetweenNominalAndMargined)
{
    WriteAssistParams p;
    p.weakRowFraction = 0.05;
    WriteAssist wa(4096, p);
    for (std::uint32_t i = 0; i < 40960; ++i)
        wa.write(i % 4096);

    EXPECT_GE(wa.meanLatencyFactor(), 1.0);
    EXPECT_LT(wa.meanLatencyFactor(), wa.marginedLatencyFactor());
    EXPECT_GE(wa.meanEnergyFactor(), 1.0);
    EXPECT_LT(wa.meanEnergyFactor(), wa.marginedEnergyFactor());
    // The adaptive point should sit close to nominal when weak rows
    // are rare — the scheme's whole selling point.
    EXPECT_LT(wa.meanEnergyFactor(), 1.1);
}

TEST(WriteAssist, CountsPartitionTotalWrites)
{
    WriteAssistParams p;
    p.weakRowFraction = 0.2;
    p.boostNeedingFraction = 0.5;
    WriteAssist wa(1000, p);
    for (std::uint32_t r = 0; r < 1000; ++r)
        wa.write(r);
    EXPECT_EQ(wa.nominalWrites() + wa.widePulseWrites() +
                  wa.boostedWrites(),
              1000u);
    EXPECT_GT(wa.widePulseWrites(), 0u);
    EXPECT_GT(wa.boostedWrites(), 0u);
}

TEST(WriteAssist, EmptyHistoryFactorsAreOne)
{
    WriteAssist wa(16);
    EXPECT_DOUBLE_EQ(wa.meanLatencyFactor(), 1.0);
    EXPECT_DOUBLE_EQ(wa.meanEnergyFactor(), 1.0);
}

} // anonymous namespace
