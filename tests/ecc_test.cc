/**
 * @file
 * Unit and exhaustive property tests for the Hamming(72,64) SEC-DED
 * codec.
 */

#include <gtest/gtest.h>

#include "sram/ecc.hh"
#include "trace/rng.hh"

namespace
{

using namespace c8t::sram;

TEST(Codeword72, GetSetFlip)
{
    Codeword72 cw;
    EXPECT_FALSE(cw.get(0));
    cw.set(0, true);
    cw.set(71, true);
    EXPECT_TRUE(cw.get(0));
    EXPECT_TRUE(cw.get(71));
    cw.flip(71);
    EXPECT_FALSE(cw.get(71));
}

TEST(SecDed, CleanDecodeRoundTrips)
{
    c8t::trace::Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t data = rng.next();
        const auto r = SecDed72::decode(SecDed72::encode(data));
        EXPECT_EQ(r.status, EccStatus::Ok);
        EXPECT_EQ(r.data, data);
    }
}

TEST(SecDed, ZeroAndAllOnes)
{
    for (std::uint64_t data : {0ull, ~0ull}) {
        const auto r = SecDed72::decode(SecDed72::encode(data));
        EXPECT_EQ(r.status, EccStatus::Ok);
        EXPECT_EQ(r.data, data);
    }
}

TEST(SecDed, EverySingleBitErrorIsCorrected)
{
    c8t::trace::Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        const std::uint64_t data = rng.next();
        for (std::uint32_t bit = 0; bit < Codeword72::bits; ++bit) {
            Codeword72 cw = SecDed72::encode(data);
            cw.flip(bit);
            const auto r = SecDed72::decode(cw);
            EXPECT_EQ(r.status, EccStatus::Corrected)
                << "bit " << bit;
            EXPECT_EQ(r.data, data) << "bit " << bit;
        }
    }
}

TEST(SecDed, EveryDoubleBitErrorIsDetected)
{
    // Exhaustive over all C(72,2) = 2556 double-bit patterns.
    const std::uint64_t data = 0x123456789abcdef0ull;
    for (std::uint32_t i = 0; i < Codeword72::bits; ++i) {
        for (std::uint32_t j = i + 1; j < Codeword72::bits; ++j) {
            Codeword72 cw = SecDed72::encode(data);
            cw.flip(i);
            cw.flip(j);
            const auto r = SecDed72::decode(cw);
            EXPECT_EQ(r.status, EccStatus::DetectedUncorrectable)
                << "bits " << i << ", " << j;
        }
    }
}

TEST(SecDed, DoubleErrorNeverSilentlyCorrupts)
{
    // Double errors must never decode to Ok/Corrected-with-wrong-data.
    c8t::trace::Rng rng(3);
    for (int trial = 0; trial < 500; ++trial) {
        const std::uint64_t data = rng.next();
        const std::uint32_t i =
            static_cast<std::uint32_t>(rng.below(Codeword72::bits));
        std::uint32_t j;
        do {
            j = static_cast<std::uint32_t>(rng.below(Codeword72::bits));
        } while (j == i);

        Codeword72 cw = SecDed72::encode(data);
        cw.flip(i);
        cw.flip(j);
        const auto r = SecDed72::decode(cw);
        if (r.status != EccStatus::DetectedUncorrectable) {
            EXPECT_EQ(r.data, data);
        }
    }
}

TEST(SecDed, StatusNames)
{
    EXPECT_STREQ(toString(EccStatus::Ok), "ok");
    EXPECT_STREQ(toString(EccStatus::Corrected), "corrected");
    EXPECT_STREQ(toString(EccStatus::DetectedUncorrectable),
                 "detected_uncorrectable");
}

/** Parameterized single-bit sweep across data patterns. */
class SecDedDataPattern : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SecDedDataPattern, SingleErrorCorrectionHolds)
{
    const std::uint64_t data = GetParam();
    for (std::uint32_t bit = 0; bit < Codeword72::bits; ++bit) {
        Codeword72 cw = SecDed72::encode(data);
        cw.flip(bit);
        const auto r = SecDed72::decode(cw);
        EXPECT_EQ(r.status, EccStatus::Corrected);
        EXPECT_EQ(r.data, data);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, SecDedDataPattern,
    ::testing::Values(0ull, ~0ull, 0x5555555555555555ull,
                      0xaaaaaaaaaaaaaaaaull, 0x0123456789abcdefull,
                      0x8000000000000001ull, 0x00000000ffffffffull));

} // anonymous namespace
