/**
 * @file
 * SweepPool tests: batch execution, per-client fairness bookkeeping,
 * cancellation semantics and worker-thread re-entrancy (DESIGN.md
 * §13).
 */

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/worker_pool.hh"

namespace
{

using namespace c8t;
using core::SweepPool;

TEST(SweepPoolTest, RunsEveryTaskExactlyOnce)
{
    SweepPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);

    std::vector<std::atomic<int>> hits(64);
    std::vector<SweepPool::Task> tasks;
    for (std::size_t i = 0; i < hits.size(); ++i) {
        tasks.push_back([&hits, i](unsigned worker) {
            EXPECT_LT(worker, 4u);
            hits[i].fetch_add(1);
        });
    }
    pool.runBatch(0, std::move(tasks));
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);

    const SweepPool::Stats s = pool.stats();
    EXPECT_EQ(s.tasksRun, 64u);
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.queuedTasks, 0u);
}

TEST(SweepPoolTest, RethrowsFirstTaskError)
{
    SweepPool pool(2);
    std::vector<SweepPool::Task> tasks;
    tasks.push_back([](unsigned) {});
    tasks.push_back([](unsigned) {
        throw std::runtime_error("task exploded");
    });
    tasks.push_back([](unsigned) {});
    EXPECT_THROW(pool.runBatch(0, std::move(tasks)),
                 std::runtime_error);
}

TEST(SweepPoolTest, ConcurrentClientsAllComplete)
{
    SweepPool pool(3);
    std::atomic<int> total{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&pool, &total] {
            const SweepPool::ClientId id = pool.registerClient();
            std::vector<SweepPool::Task> tasks;
            for (int i = 0; i < 16; ++i)
                tasks.push_back(
                    [&total](unsigned) { total.fetch_add(1); });
            pool.runBatch(id, std::move(tasks));
            pool.unregisterClient(id);
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(total.load(), 4 * 16);
    EXPECT_EQ(pool.stats().activeClients, 0u);
    EXPECT_EQ(pool.stats().clientsRegistered, 4u);
}

TEST(SweepPoolTest, CancelledSlotThrowsJobCancelled)
{
    SweepPool pool(1);
    const SweepPool::ClientId id = pool.registerClient();

    // Occupy the single worker so the victim's tasks stay unclaimed,
    // then cancel while the batch is pending.
    std::atomic<bool> blocker_running{false};
    std::atomic<bool> release{false};
    std::thread blocker([&pool, &blocker_running, &release] {
        std::vector<SweepPool::Task> tasks;
        tasks.push_back([&blocker_running, &release](unsigned) {
            blocker_running.store(true);
            while (!release.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        });
        pool.runBatch(0, std::move(tasks));
    });
    while (!blocker_running.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    std::atomic<bool> victim_ran{false};
    std::thread victim([&pool, id, &victim_ran] {
        std::vector<SweepPool::Task> tasks;
        tasks.push_back(
            [&victim_ran](unsigned) { victim_ran.store(true); });
        EXPECT_THROW(pool.runBatch(id, std::move(tasks)),
                     core::JobCancelled);
    });

    // Let the victim enqueue behind the blocker (or hit the cancelled
    // slot directly — both paths must throw).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pool.cancelClient(id);
    release.store(true);
    victim.join();
    blocker.join();
    EXPECT_FALSE(victim_ran.load());
    EXPECT_GE(pool.stats().tasksCancelled, 1u);

    // A cancelled slot rejects future submissions outright.
    std::vector<SweepPool::Task> more;
    more.push_back([](unsigned) {});
    EXPECT_THROW(pool.runBatch(id, std::move(more)),
                 core::JobCancelled);
    pool.unregisterClient(id);
}

TEST(SweepPoolTest, NestedSubmissionRunsInlineOnWorker)
{
    SweepPool pool(2);
    std::atomic<int> inner_runs{0};
    std::vector<SweepPool::Task> outer;
    outer.push_back([&pool, &inner_runs](unsigned) {
        EXPECT_TRUE(SweepPool::onWorkerThread());
        std::vector<SweepPool::Task> inner;
        for (int i = 0; i < 8; ++i)
            inner.push_back(
                [&inner_runs](unsigned) { inner_runs.fetch_add(1); });
        // Must not deadlock even with every other worker busy.
        pool.runBatch(0, std::move(inner));
    });
    pool.runBatch(0, std::move(outer));
    EXPECT_EQ(inner_runs.load(), 8);
    EXPECT_FALSE(SweepPool::onWorkerThread());
}

TEST(SweepPoolTest, ClientScopeBindsAndRestores)
{
    EXPECT_EQ(SweepPool::currentClient(), 0u);
    {
        const SweepPool::ClientScope outer(7);
        EXPECT_EQ(SweepPool::currentClient(), 7u);
        {
            const SweepPool::ClientScope inner(9);
            EXPECT_EQ(SweepPool::currentClient(), 9u);
        }
        EXPECT_EQ(SweepPool::currentClient(), 7u);
    }
    EXPECT_EQ(SweepPool::currentClient(), 0u);
}

TEST(SweepPoolTest, GlobalInstallUninstall)
{
    EXPECT_EQ(core::globalSweepPool(), nullptr);
    {
        SweepPool pool(1);
        core::setGlobalSweepPool(&pool);
        EXPECT_EQ(core::globalSweepPool(), &pool);
        core::setGlobalSweepPool(nullptr);
    }
    EXPECT_EQ(core::globalSweepPool(), nullptr);
}

} // namespace
