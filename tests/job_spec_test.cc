/**
 * @file
 * JobSpec JSON tests: strict unknown-key rejection (the satellite
 * contract: a client typo must fail loudly, never simulate the
 * default), defaults, round-tripping and validation (DESIGN.md §13).
 */

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/job_spec.hh"

namespace
{

using namespace c8t;
using core::JobKind;
using core::JobSpec;

/** EXPECT that parsing @p text throws mentioning @p needle. */
void
expectParseError(const std::string &text, const std::string &needle)
{
    try {
        JobSpec::fromJsonText(text);
        FAIL() << "expected failure parsing: " << text;
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message '" << e.what() << "' lacks '" << needle << "'";
    }
}

TEST(JobSpecTest, MinimalRunSpecGetsDefaults)
{
    const JobSpec spec = JobSpec::fromJsonText("{\"kind\":\"run\"}");
    EXPECT_EQ(spec.kind, JobKind::Run);
    EXPECT_EQ(spec.workload, "spec:gcc");
    EXPECT_EQ(spec.accesses, 1'000'000u);
    EXPECT_EQ(spec.warmup, 0u);
    EXPECT_EQ(spec.effectiveWarmup(), 100'000u);
    EXPECT_TRUE(spec.schemes.empty());
    // Kind defaults: run = the paper's baseline pair.
    EXPECT_EQ(spec.effectiveSchemes().size(), 2u);
    EXPECT_TRUE(spec.silentDetection);
    EXPECT_EQ(spec.bufferEntries, 1u);
}

TEST(JobSpecTest, KindIsRequired)
{
    expectParseError("{}", "kind");
    expectParseError("{\"workload\":\"spec:gcc\"}", "kind");
}

TEST(JobSpecTest, UnknownKindRejected)
{
    expectParseError("{\"kind\":\"sweep\"}", "unknown kind");
}

TEST(JobSpecTest, UnknownTopLevelKeyRejected)
{
    // The canonical typo: "acceses" must not silently simulate 1M.
    expectParseError("{\"kind\":\"run\",\"acceses\":5}",
                     "unknown key \"acceses\"");
}

TEST(JobSpecTest, UnknownNestedCacheKeyRejected)
{
    expectParseError(
        "{\"kind\":\"run\",\"cache\":{\"size_kb\":32,\"way\":4}}",
        "unknown key \"way\"");
}

TEST(JobSpecTest, UnknownNestedExploreKeyRejected)
{
    expectParseError(
        "{\"kind\":\"explore\",\"explore\":{\"sizes\":[16]}}",
        "unknown key \"sizes\"");
}

TEST(JobSpecTest, ExploreAxesOnNonExploreKindRejected)
{
    expectParseError(
        "{\"kind\":\"run\",\"explore\":{\"sizes_kb\":[16]}}",
        "non-explore");
}

TEST(JobSpecTest, DuplicateKeysRejected)
{
    expectParseError("{\"kind\":\"run\",\"kind\":\"run\"}",
                     "duplicate");
}

TEST(JobSpecTest, FractionalIntegerRejected)
{
    expectParseError("{\"kind\":\"run\",\"accesses\":10.5}",
                     "accesses");
    // Scientific notation is exact-integer-ambiguous; the raw token
    // check rejects it for integer fields.
    expectParseError("{\"kind\":\"run\",\"accesses\":1e6}",
                     "accesses");
}

TEST(JobSpecTest, MalformedJsonRejectedWithOffset)
{
    expectParseError("{\"kind\":\"run\"", "byte");
    expectParseError("{\"kind\":\"run\"} trailing", "byte");
    expectParseError("", "byte");
}

TEST(JobSpecTest, FullSpecParses)
{
    const JobSpec spec = JobSpec::fromJsonText(
        "{\"kind\":\"run\",\"workload\":\"kernel:hash_update\","
        "\"accesses\":250000,\"warmup\":1000,"
        "\"cache\":{\"size_kb\":64,\"ways\":8,\"block\":32,"
        "\"repl\":\"lru\"},"
        "\"schemes\":[\"RMW\",\"WG+RB\"],\"buffer_entries\":4,"
        "\"silent_detection\":false,\"l2_kb\":256,\"vdd\":0.8}");
    EXPECT_EQ(spec.workload, "kernel:hash_update");
    EXPECT_EQ(spec.accesses, 250'000u);
    EXPECT_EQ(spec.warmup, 1'000u);
    EXPECT_EQ(spec.cache.sizeBytes, 64u * 1024);
    EXPECT_EQ(spec.cache.ways, 8u);
    EXPECT_EQ(spec.cache.blockBytes, 32u);
    EXPECT_EQ(spec.schemes.size(), 2u);
    EXPECT_EQ(spec.bufferEntries, 4u);
    EXPECT_FALSE(spec.silentDetection);
    // "l2_kb" is the deprecated alias: a default L2 of that capacity.
    ASSERT_EQ(spec.levels.size(), 1u);
    EXPECT_EQ(spec.levels[0].sizeKb, 256u);
    EXPECT_EQ(spec.levels[0].ways, 8u);
    EXPECT_DOUBLE_EQ(spec.vdd, 0.8);
}

TEST(JobSpecTest, LevelsArrayParses)
{
    const JobSpec spec = JobSpec::fromJsonText(
        "{\"kind\":\"run\",\"levels\":[{\"size_kb\":512,\"ways\":16,"
        "\"repl\":\"fifo\",\"scheme\":\"WG\",\"vdd\":0.7}]}");
    ASSERT_EQ(spec.levels.size(), 1u);
    EXPECT_EQ(spec.levels[0].sizeKb, 512u);
    EXPECT_EQ(spec.levels[0].ways, 16u);
    EXPECT_EQ(spec.levels[0].blockBytes, 0u); // inherits the L1 block
    EXPECT_EQ(spec.levels[0].repl, mem::ReplKind::Fifo);
    EXPECT_EQ(spec.levels[0].scheme, core::WriteScheme::WriteGrouping);
    EXPECT_DOUBLE_EQ(spec.levels[0].vdd, 0.7);
}

TEST(JobSpecTest, UnknownLevelKeyRejected)
{
    expectParseError(
        "{\"kind\":\"run\",\"levels\":[{\"size_kb\":256,\"way\":8}]}",
        "unknown key \"way\"");
}

TEST(JobSpecTest, DuplicateLevelKeyRejected)
{
    expectParseError(
        "{\"kind\":\"run\","
        "\"levels\":[{\"size_kb\":256,\"size_kb\":512}]}",
        "duplicate");
}

TEST(JobSpecTest, L2AliasAndLevelsAreMutuallyExclusive)
{
    expectParseError("{\"kind\":\"run\",\"l2_kb\":256,"
                     "\"levels\":[{\"size_kb\":256}]}",
                     "deprecated alias");
}

TEST(JobSpecTest, LevelSpecRoundTripsThroughCanonicalForm)
{
    const JobSpec spec = JobSpec::fromJsonText(
        "{\"kind\":\"run\",\"levels\":[{\"size_kb\":256,\"ways\":8,"
        "\"scheme\":\"RMW\",\"vdd\":0.75}]}");
    const std::string canonical = spec.toJson();
    // The alias never survives serialization: the canonical form
    // carries the "levels" array.
    EXPECT_EQ(canonical.find("l2_kb"), std::string::npos);
    EXPECT_NE(canonical.find("\"levels\""), std::string::npos);
    const JobSpec again = JobSpec::fromJsonText(canonical);
    EXPECT_EQ(again.toJson(), canonical);
    EXPECT_EQ(again.levels, spec.levels);
}

TEST(JobSpecTest, SingleLevelCanonicalFormHasNoLevelsKey)
{
    // The gating contract: a single-level spec serializes without any
    // hierarchy key, byte-identical to pre-hierarchy builds.
    JobSpec spec;
    EXPECT_EQ(spec.toJson().find("levels"), std::string::npos);
    EXPECT_EQ(spec.toJson().find("l2_kb"), std::string::npos);
}

TEST(JobSpecTest, LevelValidationCatchesBadShapes)
{
    // Block mismatch with the L1 (default 32 B) and negative vdd.
    expectParseError(
        "{\"kind\":\"run\",\"levels\":[{\"block\":64}]}", "block");
    expectParseError(
        "{\"kind\":\"run\",\"levels\":[{\"vdd\":-0.5}]}", "vdd");
}

TEST(JobSpecTest, ExploreL2SizesParses)
{
    const JobSpec spec = JobSpec::fromJsonText(
        "{\"kind\":\"explore\",\"explore\":{\"sizes_kb\":[16],"
        "\"l2_sizes_kb\":[128,256]}}");
    ASSERT_EQ(spec.exploreL2SizesKb.size(), 2u);
    EXPECT_EQ(spec.exploreL2SizesKb[0], 128u);
    const std::string canonical = spec.toJson();
    const JobSpec again = JobSpec::fromJsonText(canonical);
    EXPECT_EQ(again.toJson(), canonical);
    EXPECT_EQ(again.exploreL2SizesKb, spec.exploreL2SizesKb);
}

TEST(JobSpecTest, ExploreSpecParses)
{
    const JobSpec spec = JobSpec::fromJsonText(
        "{\"kind\":\"explore\",\"accesses\":50000,"
        "\"explore\":{\"workloads\":[\"gcc\",\"mcf\"],"
        "\"sizes_kb\":[16,32],\"ways\":[2],\"blocks\":[64],"
        "\"repl\":[\"lru\"],\"vdd\":[0.7,0.8],\"shard_cells\":4}}");
    EXPECT_EQ(spec.kind, JobKind::Explore);
    EXPECT_EQ(spec.exploreWorkloads.size(), 2u);
    EXPECT_EQ(spec.exploreSizesKb.size(), 2u);
    EXPECT_EQ(spec.exploreVdd.size(), 2u);
    EXPECT_EQ(spec.shardCells, 4u);
    // Explore kind default: the voltage-story four.
    EXPECT_EQ(spec.effectiveSchemes().size(), 4u);
}

TEST(JobSpecTest, ToJsonRoundTripsEquivalently)
{
    const JobSpec spec = JobSpec::fromJsonText(
        "{\"kind\":\"explore\",\"accesses\":50000,"
        "\"schemes\":[\"RMW\"],"
        "\"explore\":{\"workloads\":[\"gcc\"],\"sizes_kb\":[16],"
        "\"ways\":[2],\"blocks\":[64],\"vdd\":[0.75]}}");
    const std::string canonical = spec.toJson();
    const JobSpec again = JobSpec::fromJsonText(canonical);
    // Canonical form is a fixed point: equal specs -> equal bytes
    // (the daemon keys its whole-result memo on this).
    EXPECT_EQ(again.toJson(), canonical);
    EXPECT_EQ(again.kind, spec.kind);
    EXPECT_EQ(again.accesses, spec.accesses);
    EXPECT_EQ(again.schemes, spec.schemes);
    EXPECT_EQ(again.exploreWorkloads, spec.exploreWorkloads);
    EXPECT_EQ(again.exploreVdd, spec.exploreVdd);
}

TEST(JobSpecTest, DefaultSpecRoundTrips)
{
    for (const char *kind : {"run", "vdd_sweep", "explore"}) {
        JobSpec spec;
        spec.kind = core::parseJobKind(kind);
        const JobSpec again = JobSpec::fromJsonText(spec.toJson());
        EXPECT_EQ(again.toJson(), spec.toJson()) << kind;
    }
}

TEST(JobSpecTest, ValidationCatchesBadShapes)
{
    expectParseError("{\"kind\":\"run\",\"accesses\":0}",
                     "accesses");
    expectParseError("{\"kind\":\"run\",\"buffer_entries\":0}",
                     "buffer_entries");
    expectParseError("{\"kind\":\"run\",\"vdd\":-0.5}", "vdd");
    expectParseError("{\"kind\":\"run\",\"workload\":\"gcc\"}",
                     "workload");
    expectParseError(
        "{\"kind\":\"explore\",\"explore\":{\"shard_cells\":0}}",
        "shard_cells");
}

TEST(JobSpecTest, CheckpointKnobsAreNotWireKeys)
{
    // Server-side file paths stay out of the JSON schema by design.
    expectParseError(
        "{\"kind\":\"explore\",\"checkpoint_dir\":\"/tmp/x\"}",
        "unknown key \"checkpoint_dir\"");
    expectParseError(
        "{\"kind\":\"explore\",\"explore_max_shards\":2}",
        "unknown key \"explore_max_shards\"");
}

} // namespace
