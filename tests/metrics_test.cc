/**
 * @file
 * obs::prof / obs::Metrics: phase attribution, golden exports, and
 * the profiling-changes-nothing guarantee (the sweep produces
 * byte-identical results with the profiler on and off).
 */

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "core/sweep.hh"
#include "obs/event_ring.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "stats/json.hh"
#include "stats/registry.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;
using core::ControllerConfig;
using core::MultiSchemeRunner;
using core::ParallelSweeper;
using core::RunConfig;
using core::SchemeRunResult;
using core::SweepJob;
using core::WriteScheme;
using obs::Metrics;
using obs::prof::Phase;
using obs::prof::PhaseTimes;
using obs::prof::ScopedPhase;

/** Restore the profiler's disabled default whatever the test does. */
struct ProfGuard
{
    ~ProfGuard()
    {
        obs::prof::setEnabled(false);
        obs::prof::takeThreadTimes();
    }
};

/** Busy-wait until the steady clock has visibly advanced, so every
 *  open phase accrues a strictly positive self time even on coarse
 *  clocks. */
void
spinPastClockTick()
{
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() == t0) {
    }
}

// ---------------------------------------------------------------------
// Phase timers.
// ---------------------------------------------------------------------

TEST(Prof, DisabledScopesRecordNothing)
{
    ProfGuard guard;
    obs::prof::setEnabled(false);
    obs::prof::takeThreadTimes();
    {
        ScopedPhase outer(Phase::Replay);
        spinPastClockTick();
        ScopedPhase inner(Phase::Plan);
        spinPastClockTick();
    }
    EXPECT_TRUE(obs::prof::threadTimes().empty());
    // The hoisted-flag overload must honour the flag, not the global.
    obs::prof::setEnabled(true);
    {
        ScopedPhase off(Phase::Energy, false);
        spinPastClockTick();
    }
    EXPECT_TRUE(obs::prof::threadTimes().empty());
}

TEST(Prof, NestedScopesAttributeSelfTimeWithoutDoubleCounting)
{
    ProfGuard guard;
    obs::prof::setEnabled(true);
    obs::prof::takeThreadTimes();
    {
        ScopedPhase outer(Phase::Replay);
        spinPastClockTick();
        {
            ScopedPhase inner(Phase::Plan);
            spinPastClockTick();
        }
        spinPastClockTick();
    }
    const PhaseTimes t = obs::prof::takeThreadTimes();
    const auto idx = [](Phase p) { return static_cast<std::size_t>(p); };
    EXPECT_EQ(t.scopes[idx(Phase::Replay)], 1u);
    EXPECT_EQ(t.scopes[idx(Phase::Plan)], 1u);
    EXPECT_GT(t.ns[idx(Phase::Replay)], 0u);
    EXPECT_GT(t.ns[idx(Phase::Plan)], 0u);
    // Self-time partition: only the two entered phases hold time.
    EXPECT_EQ(t.totalNs(),
              t.ns[idx(Phase::Replay)] + t.ns[idx(Phase::Plan)]);
    // And the take reset the thread-local accumulator.
    EXPECT_TRUE(obs::prof::threadTimes().empty());
}

TEST(Prof, PhaseNamesAreStableExportKeys)
{
    EXPECT_STREQ(obs::prof::toString(Phase::StreamGenerate),
                 "stream_generate");
    EXPECT_STREQ(obs::prof::toString(Phase::Plan), "plan");
    EXPECT_STREQ(obs::prof::toString(Phase::Replay), "replay");
    EXPECT_STREQ(obs::prof::toString(Phase::Energy), "energy");
    EXPECT_STREQ(obs::prof::toString(Phase::FaultMap), "fault_map");
    EXPECT_STREQ(obs::prof::toString(Phase::Serialize), "serialize");
}

// ---------------------------------------------------------------------
// Export goldens. Seconds values go through the same ns * 1e-9
// conversion and stats::jsonNumber formatting as the implementation,
// so the goldens pin placement and structure without baking in
// float-printing artifacts.
// ---------------------------------------------------------------------

std::string
fmtNum(double v)
{
    std::ostringstream os;
    stats::jsonNumber(os, v);
    return os.str();
}

std::string
fmtSec(std::uint64_t ns)
{
    return fmtNum(static_cast<double>(ns) * 1e-9);
}

/** Inject one exactly-known state into a fresh registry. */
void
injectKnownState(Metrics &m)
{
    PhaseTimes t;
    t.ns[static_cast<std::size_t>(Phase::Replay)] = 250'000'000;
    t.scopes[static_cast<std::size_t>(Phase::Replay)] = 4;
    t.ns[static_cast<std::size_t>(Phase::StreamGenerate)] = 1'500'000'000;
    t.scopes[static_cast<std::size_t>(Phase::StreamGenerate)] = 2;
    m.addPhaseTimes(t);

    m.recordJobWallNs(1000);
    m.recordJobWallNs(1000);

    Metrics::StreamCacheStats sc;
    sc.hits = 75;
    sc.misses = 25;
    sc.bypasses = 3;
    sc.evictions = 1;
    sc.entries = 4;
    sc.bytes = 65536;
    m.setStreamCache(sc);

    Metrics::SweepSnapshot sw;
    sw.jobsDone = 18;
    sw.jobsTotal = 18;
    sw.queueDepth = 0;
    sw.jobsPerSec = 4.5;
    sw.etaSeconds = 0.0;
    sw.workers = 2;
    m.noteSweep(sw);

    m.noteWorker(1, 1.5, 0.5, 3);
}

TEST(Metrics, PrometheusExpositionGolden)
{
    ProfGuard guard;
    obs::prof::setEnabled(false);
    Metrics m;
    injectKnownState(m);

    std::ostringstream os;
    m.writePrometheus(os);
    const std::string out = os.str();

    const std::vector<std::string> expected_lines = {
             std::string("c8t_profiling_enabled 0\n"),
             "c8t_phase_seconds_total{phase=\"replay\"} " +
                 fmtSec(250'000'000) + "\n",
             "c8t_phase_seconds_total{phase=\"stream_generate\"} " +
                 fmtSec(1'500'000'000) + "\n",
             std::string("c8t_phase_seconds_total{phase=\"plan\"} 0\n"),
             std::string("c8t_phase_scopes_total{phase=\"replay\"} 4\n"),
             std::string("c8t_phase_scopes_total{phase=\"serialize\"} 0\n"),
             "c8t_job_wall_seconds{quantile=\"0.5\"} " + fmtSec(1000) +
                 "\n",
             "c8t_job_wall_seconds_sum " + fmtSec(2000) + "\n",
             std::string("c8t_job_wall_seconds_count 2\n"),
             "c8t_job_wall_seconds_max " + fmtSec(1000) + "\n",
             std::string("c8t_chunk_replay_seconds_count 0\n"),
             std::string("c8t_stream_cache_hits_total 75\n"),
             std::string("c8t_stream_cache_misses_total 25\n"),
             std::string("c8t_stream_cache_bypasses_total 3\n"),
             std::string("c8t_stream_cache_evictions_total 1\n"),
             std::string("c8t_stream_cache_hit_ratio 0.75\n"),
             std::string("c8t_stream_cache_entries 4\n"),
             std::string("c8t_stream_cache_resident_bytes 65536\n"),
             std::string("c8t_sweep_jobs 18\n"),
             std::string("c8t_sweep_jobs_done 18\n"),
             std::string("c8t_sweep_queue_depth 0\n"),
             std::string("c8t_sweep_jobs_per_second 4.5\n"),
             std::string("c8t_sweep_eta_seconds 0\n"),
             std::string("c8t_sweep_workers 2\n"),
             std::string("c8t_worker_busy_seconds_total{worker=\"0\"} 0\n"),
             "c8t_worker_busy_seconds_total{worker=\"1\"} " + fmtNum(1.5) +
                 "\n",
             "c8t_worker_idle_seconds_total{worker=\"1\"} " + fmtNum(0.5) +
                 "\n",
             std::string("c8t_worker_jobs_total{worker=\"1\"} 3\n"),
    };
    for (const std::string &line : expected_lines)
        EXPECT_NE(out.find(line), std::string::npos) << line;
    // Every family is announced (HELP + TYPE precede the samples).
    EXPECT_NE(out.find("# TYPE c8t_phase_seconds_total counter"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE c8t_job_wall_seconds summary"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE c8t_sweep_workers gauge"),
              std::string::npos);
}

TEST(Metrics, ProfileJsonGolden)
{
    Metrics m;
    injectKnownState(m);
    std::ostringstream os;
    m.writeProfileJson(os);

    // Exact document: injected values are deterministic, so this is a
    // full-string golden (numbers formatted by the same helper).
    const std::string expected =
        "{\"phases\":{"
        "\"stream_generate\":{\"seconds\":" + fmtSec(1'500'000'000) +
        ",\"scopes\":2},"
        "\"plan\":{\"seconds\":0,\"scopes\":0},"
        "\"replay\":{\"seconds\":" + fmtSec(250'000'000) +
        ",\"scopes\":4},"
        "\"energy\":{\"seconds\":0,\"scopes\":0},"
        "\"fault_map\":{\"seconds\":0,\"scopes\":0},"
        "\"serialize\":{\"seconds\":0,\"scopes\":0}"
        "},\"total_seconds\":" + fmtSec(1'750'000'000) +
        ",\"histograms\":{"
        "\"job_wall_us\":{\"count\":2,\"mean\":1,\"p50\":1,\"p95\":1,"
        "\"p99\":1,\"max\":1},"
        "\"chunk_replay_us\":{\"count\":0,\"mean\":0,\"p50\":0,"
        "\"p95\":0,\"p99\":0,\"max\":0},"
        "\"shard_wall_us\":{\"count\":0,\"mean\":0,\"p50\":0,"
        "\"p95\":0,\"p99\":0,\"max\":0}"
        "}}";
    EXPECT_EQ(os.str(), expected);
}

TEST(Metrics, ResetDropsEverything)
{
    Metrics m;
    injectKnownState(m);
    m.reset();
    EXPECT_TRUE(m.phaseTimes().empty());
    EXPECT_EQ(m.jobWall().count(), 0u);
    EXPECT_EQ(m.shardWall().count(), 0u);
    EXPECT_EQ(m.sweep().jobsTotal, 0u);
    EXPECT_EQ(m.explorer().shardsTotal, 0u);
    EXPECT_TRUE(m.workers().empty());
    EXPECT_EQ(m.streamCache().hits, 0u);
}

// ---------------------------------------------------------------------
// Profiling changes nothing: the whole sweep pipeline must produce
// byte-identical results with the profiler on and off (ISSUE 7
// acceptance criterion; the ci.sh metrics stage enforces the same at
// the fig11 binary level).
// ---------------------------------------------------------------------

const std::vector<const char *> kProfiles = {"bwaves", "mcf", "sjeng"};
const std::vector<WriteScheme> kSchemes = {
    WriteScheme::Rmw, WriteScheme::WriteGrouping,
    WriteScheme::WriteGroupingReadBypass};
constexpr RunConfig kRc{2'000, 10'000};

std::vector<ControllerConfig>
configsFor()
{
    std::vector<ControllerConfig> cfgs;
    for (WriteScheme s : kSchemes) {
        ControllerConfig c;
        c.scheme = s;
        cfgs.push_back(c);
    }
    return cfgs;
}

std::vector<SweepJob>
makeJobs()
{
    std::vector<SweepJob> jobs;
    for (const char *name : kProfiles) {
        SweepJob job;
        job.makeGenerator = [name] {
            return std::make_unique<trace::MarkovStream>(
                trace::specProfile(name));
        };
        job.configs = configsFor();
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST(Metrics, ProfilingChangesNothing)
{
    ProfGuard guard;

    // Reference: profiler off.
    obs::prof::setEnabled(false);
    const auto reference =
        ParallelSweeper(1).run(makeJobs(), kRc, "prof_off");

    // Same sweep with the profiler on, across worker counts.
    obs::prof::setEnabled(true);
    for (unsigned workers : {1u, 2u, 8u}) {
        const auto profiled =
            ParallelSweeper(workers).run(makeJobs(), kRc, "prof_on");
        ASSERT_EQ(profiled.size(), reference.size()) << workers;
        for (std::size_t p = 0; p < reference.size(); ++p) {
            ASSERT_EQ(profiled[p].size(), reference[p].size());
            for (std::size_t s = 0; s < reference[p].size(); ++s) {
                EXPECT_TRUE(profiled[p][s] == reference[p][s])
                    << workers << " workers, profile " << kProfiles[p]
                    << ", scheme " << reference[p][s].scheme;
            }
        }
    }
}

/** One single-scheme run capturing the stats-registry JSON dump and
 *  the event-ring type totals. */
struct ObservedRun
{
    std::string statsJson;
    std::array<std::uint64_t, obs::kEventTypes> eventTotals{};
};

ObservedRun
observeRun()
{
    ObservedRun out;
    obs::EventRing ring(64);
    trace::MarkovStream gen(trace::specProfile("mcf"));
    MultiSchemeRunner runner(configsFor());
    for (std::size_t i = 0; i < runner.controllers(); ++i)
        runner.controller(i).attachEventRing(&ring);
    runner.run(gen, kRc);
    std::ostringstream os;
    for (std::size_t i = 0; i < runner.controllers(); ++i) {
        // One registry per controller: stat names repeat per scheme.
        stats::Registry reg;
        runner.controller(i).registerStats(reg);
        reg.dumpJson(os);
    }
    out.statsJson = os.str();
    out.eventTotals = ring.typeCounts();
    return out;
}

TEST(Metrics, ProfilingLeavesStatsJsonAndEventTotalsIdentical)
{
    ProfGuard guard;
    obs::prof::setEnabled(false);
    const ObservedRun off = observeRun();
    obs::prof::setEnabled(true);
    const ObservedRun on = observeRun();
    EXPECT_EQ(off.statsJson, on.statsJson);
    EXPECT_EQ(off.eventTotals, on.eventTotals);
}

TEST(Metrics, SweepPopulatesTheGlobalRegistry)
{
    ProfGuard guard;
    obs::globalMetrics().reset();
    obs::prof::setEnabled(true);

    const auto jobs = makeJobs();
    // Larger window than the identity tests: phase coverage is a
    // ratio against job wall, and with tiny jobs the uninstrumented
    // fixed cost (runner construction) is a visible fraction.
    constexpr RunConfig big_rc{5'000, 50'000};
    ParallelSweeper(2).run(jobs, big_rc, "metrics_fill");

    Metrics &m = obs::globalMetrics();
    const PhaseTimes phases = m.phaseTimes();
    EXPECT_GT(phases.totalNs(), 0u);
    EXPECT_GT(phases.scopes[static_cast<std::size_t>(Phase::Replay)], 0u);

    // One job-wall sample per job; phases must cover the bulk of the
    // summed job wall (the taxonomy leaves no big anonymous gaps).
    // The bound is looser than the >= 95 % measured on the real fig11
    // sweep (EXPERIMENTS.md): these jobs are milliseconds long, so
    // construction cost and test-harness scheduling noise weigh more.
    const obs::Histogram wall = m.jobWall();
    EXPECT_EQ(wall.count(), jobs.size());
    EXPECT_GE(static_cast<double>(phases.totalNs()),
              0.85 * static_cast<double>(wall.sum()));

    EXPECT_GT(m.chunkReplay().count(), 0u);

    const Metrics::SweepSnapshot sw = m.sweep();
    EXPECT_EQ(sw.jobsDone, jobs.size());
    EXPECT_EQ(sw.jobsTotal, jobs.size());
    EXPECT_EQ(sw.queueDepth, 0u);
    EXPECT_EQ(sw.workers, 2u);
    EXPECT_GT(sw.jobsPerSec, 0.0);

    const auto workers = m.workers();
    ASSERT_EQ(workers.size(), 2u);
    std::uint64_t jobs_seen = 0;
    for (const auto &w : workers)
        jobs_seen += w.jobs;
    EXPECT_EQ(jobs_seen, jobs.size());

    obs::globalMetrics().reset();
}

} // namespace
