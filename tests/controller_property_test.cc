/**
 * @file
 * Property tests over the whole controller stack: for arbitrary
 * calibrated streams and kernels, every scheme must be architecturally
 * indistinguishable (same read values, same final memory) and the
 * access-count dominance relations the paper claims must hold.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/controller.hh"
#include "trace/kernels.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t::core;
using c8t::mem::FunctionalMemory;
using c8t::trace::AccessGenerator;
using c8t::trace::MemAccess;

constexpr std::uint64_t accessesPerRun = 60'000;

struct Rig
{
    std::vector<std::unique_ptr<FunctionalMemory>> memories;
    std::vector<std::unique_ptr<CacheController>> controllers;

    explicit Rig(std::uint32_t buffer_entries = 1)
    {
        for (WriteScheme s :
             {WriteScheme::SixTDirect, WriteScheme::Rmw,
              WriteScheme::LocalRmw, WriteScheme::WordGranular,
              WriteScheme::WriteGrouping,
              WriteScheme::WriteGroupingReadBypass}) {
            ControllerConfig cfg;
            cfg.scheme = s;
            cfg.bufferEntries = buffer_entries;
            memories.push_back(std::make_unique<FunctionalMemory>());
            controllers.push_back(std::make_unique<CacheController>(
                cfg, *memories.back()));
        }
    }

    CacheController &byScheme(WriteScheme s)
    {
        for (auto &c : controllers)
            if (c->config().scheme == s)
                return *c;
        throw std::logic_error("scheme not in rig");
    }
};

/** Drive every controller with the same stream, checking read values
 *  against each other on every single access. */
void
runEquivalence(AccessGenerator &gen, Rig &rig,
               std::uint64_t n = accessesPerRun)
{
    gen.reset();
    MemAccess a;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (!gen.next(a))
            break;
        std::uint64_t reference = 0;
        for (std::size_t c = 0; c < rig.controllers.size(); ++c) {
            const AccessOutcome out = rig.controllers[c]->access(a);
            if (!a.isRead())
                continue;
            if (c == 0)
                reference = out.data;
            else
                ASSERT_EQ(out.data, reference)
                    << "scheme "
                    << toString(rig.controllers[c]->config().scheme)
                    << " diverged at access " << i << ": "
                    << a.toString();
        }
    }
}

class SpecEquivalence : public ::testing::TestWithParam<const char *>
{};

TEST_P(SpecEquivalence, AllSchemesReturnIdenticalReadValues)
{
    c8t::trace::MarkovStream gen(
        c8t::trace::specProfile(GetParam()));
    Rig rig;
    runEquivalence(gen, rig);
}

TEST_P(SpecEquivalence, ReadValuesMatchGeneratorShadow)
{
    // End-to-end oracle: the architectural value tracked by the
    // generator must be what any scheme's hierarchy returns.
    c8t::trace::MarkovStream gen(c8t::trace::specProfile(GetParam()));
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::WriteGroupingReadBypass;
    FunctionalMemory mem;
    CacheController c(cfg, mem);

    MemAccess a;
    for (std::uint64_t i = 0; i < accessesPerRun; ++i) {
        ASSERT_TRUE(gen.next(a));
        const AccessOutcome out = c.access(a);
        if (a.isRead()) {
            ASSERT_EQ(out.data, gen.shadowValue(a.addr))
                << "access " << i << ": " << a.toString();
        }
    }
}

TEST_P(SpecEquivalence, FinalMemoryIdenticalAcrossSchemes)
{
    c8t::trace::MarkovStream gen(c8t::trace::specProfile(GetParam()));
    Rig rig;
    runEquivalence(gen, rig, 30'000);

    // Publish all cached state, then compare the memories word by
    // word via the generator's write log.
    for (auto &c : rig.controllers) {
        c->drain();
        c->flushCacheToMemory();
    }

    gen.reset();
    MemAccess a;
    std::set<std::uint64_t> written;
    for (std::uint64_t i = 0; i < 30'000; ++i) {
        ASSERT_TRUE(gen.next(a));
        if (a.isWrite())
            written.insert(a.addr & ~7ull);
    }
    for (const std::uint64_t addr : written) {
        const std::uint64_t expect = gen.shadowValue(addr);
        for (std::size_t c = 0; c < rig.memories.size(); ++c) {
            ASSERT_EQ(rig.memories[c]->readWord(addr), expect)
                << "scheme "
                << toString(rig.controllers[c]->config().scheme)
                << " at 0x" << std::hex << addr;
        }
    }
}

TEST_P(SpecEquivalence, AccessCountDominanceRelations)
{
    c8t::trace::MarkovStream gen(c8t::trace::specProfile(GetParam()));
    Rig rig;
    runEquivalence(gen, rig);
    for (auto &c : rig.controllers)
        c->drain();

    const auto demand = [&](WriteScheme s) {
        return rig.byScheme(s).demandAccesses();
    };

    // RMW is never cheaper than the 6T reference; grouping only helps.
    EXPECT_GE(demand(WriteScheme::Rmw), demand(WriteScheme::SixTDirect));
    EXPECT_EQ(demand(WriteScheme::Rmw), demand(WriteScheme::LocalRmw));
    EXPECT_LE(demand(WriteScheme::WriteGrouping),
              demand(WriteScheme::Rmw));
    EXPECT_LE(demand(WriteScheme::WriteGroupingReadBypass),
              demand(WriteScheme::WriteGrouping));

    // RMW total = reads + 2 * writes (demand ops).
    const CacheController &rmw = rig.byScheme(WriteScheme::Rmw);
    EXPECT_EQ(rmw.demandAccesses(),
              rmw.readRequests() + 2 * rmw.writeRequests());
}

TEST_P(SpecEquivalence, GroupingConservationLaws)
{
    c8t::trace::MarkovStream gen(c8t::trace::specProfile(GetParam()));
    Rig rig;
    runEquivalence(gen, rig);

    const CacheController &wg = rig.byScheme(WriteScheme::WriteGrouping);

    // Every write is either grouped (free) or opens a group (one row
    // read). Group-opening reads = writes - groupedWrites.
    EXPECT_EQ(wg.writeRequests(),
              wg.groupedWrites() +
                  (wg.demandRowReads() - wg.readRequests()));

    // Write-backs can never exceed group-opening events + premature
    // triggers.
    EXPECT_LE(wg.groupWritebacks() + wg.prematureWritebacks(),
              wg.writeRequests() + wg.readRequests());

    // Bypasses only exist under WG+RB.
    EXPECT_EQ(wg.bypassedReads(), 0u);
    const CacheController &rb =
        rig.byScheme(WriteScheme::WriteGroupingReadBypass);
    EXPECT_EQ(rb.demandRowReads() + rb.bypassedReads() -
                  (rb.writeRequests() - rb.groupedWrites()),
              rb.readRequests());
}

TEST_P(SpecEquivalence, HitMissSequenceIdenticalAcrossSchemes)
{
    // The tag state machine must be scheme-independent; otherwise the
    // paper's comparison would be confounded.
    c8t::trace::MarkovStream gen(c8t::trace::specProfile(GetParam()));
    Rig rig;
    runEquivalence(gen, rig, 30'000);
    const std::uint64_t hits0 = rig.controllers[0]->tags().hits();
    const std::uint64_t miss0 = rig.controllers[0]->tags().misses();
    for (auto &c : rig.controllers) {
        EXPECT_EQ(c->tags().hits(), hits0);
        EXPECT_EQ(c->tags().misses(), miss0);
    }
}

INSTANTIATE_TEST_SUITE_P(Profiles, SpecEquivalence,
                         ::testing::Values("bwaves", "gamess", "mcf",
                                           "lbm", "sjeng", "sphinx3"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

/** The same equivalence over the kernel workloads. */
class KernelEquivalence : public ::testing::TestWithParam<int>
{
  protected:
    std::unique_ptr<AccessGenerator> makeKernel() const
    {
        using namespace c8t::trace;
        switch (GetParam()) {
          case 0:
            return std::make_unique<StreamCopyKernel>(20000, 2);
          case 1:
            return std::make_unique<StencilKernel>(20000, 2);
          case 2:
            return std::make_unique<PointerChaseKernel>(4096, 40000);
          case 3:
            return std::make_unique<HashUpdateKernel>(4096, 20000, 0.4,
                                                      0.8);
          default:
            return std::make_unique<TransposeKernel>(128, 8);
        }
    }
};

TEST_P(KernelEquivalence, AllSchemesAgree)
{
    auto gen = makeKernel();
    Rig rig;
    runEquivalence(*gen, rig);

    for (auto &c : rig.controllers) {
        c->drain();
        c->flushCacheToMemory();
    }
    // Cross-check a few words against the 6T reference memory.
    gen->reset();
    MemAccess a;
    std::set<std::uint64_t> written;
    while (gen->next(a) && written.size() < 2000) {
        if (a.isWrite())
            written.insert(a.addr & ~7ull);
    }
    for (const std::uint64_t addr : written) {
        const std::uint64_t expect = rig.memories[0]->readWord(addr);
        for (auto &m : rig.memories)
            ASSERT_EQ(m->readWord(addr), expect);
    }
}

TEST_P(KernelEquivalence, MultiEntryBufferPreservesCorrectness)
{
    for (std::uint32_t entries : {2u, 4u}) {
        auto gen = makeKernel();
        Rig rig(entries);
        runEquivalence(*gen, rig, 30'000);
    }
}

std::string
kernelCaseName(const ::testing::TestParamInfo<int> &info)
{
    static const char *const names[] = {"stream_copy", "stencil",
                                        "pointer_chase", "hash_update",
                                        "transpose"};
    return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelEquivalence,
                         ::testing::Range(0, 5), kernelCaseName);

TEST(MultiEntryDominance, DeeperBuffersNeverIncreaseDemand)
{
    // The future-work extension must be monotone on a grouping-friendly
    // stream.
    c8t::trace::MarkovStream gen(c8t::trace::specProfile("bwaves"));
    std::uint64_t prev = ~0ull;
    for (std::uint32_t entries : {1u, 2u, 4u, 8u}) {
        gen.reset();
        FunctionalMemory mem;
        ControllerConfig cfg;
        cfg.scheme = WriteScheme::WriteGrouping;
        cfg.bufferEntries = entries;
        CacheController c(cfg, mem);
        MemAccess a;
        for (std::uint64_t i = 0; i < accessesPerRun; ++i) {
            ASSERT_TRUE(gen.next(a));
            c.access(a);
        }
        c.drain();
        EXPECT_LE(c.demandAccesses(), prev) << entries << " entries";
        prev = c.demandAccesses();
    }
}

} // anonymous namespace
