/**
 * @file
 * Unit tests for the address pattern library.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/patterns.hh"

namespace
{

using namespace c8t::trace;

TEST(SequentialPattern, WalksAndWraps)
{
    Rng rng(1);
    SequentialPattern p(0x1000, 32, 8);
    EXPECT_EQ(p.nextAddr(rng), 0x1000u);
    EXPECT_EQ(p.nextAddr(rng), 0x1008u);
    EXPECT_EQ(p.nextAddr(rng), 0x1010u);
    EXPECT_EQ(p.nextAddr(rng), 0x1018u);
    EXPECT_EQ(p.nextAddr(rng), 0x1000u); // wrapped
}

TEST(SequentialPattern, ResetRestarts)
{
    Rng rng(1);
    SequentialPattern p(0x1000, 64, 8);
    p.nextAddr(rng);
    p.nextAddr(rng);
    p.reset();
    EXPECT_EQ(p.nextAddr(rng), 0x1000u);
}

TEST(SequentialPattern, CustomStride)
{
    Rng rng(1);
    SequentialPattern p(0, 256, 64);
    EXPECT_EQ(p.nextAddr(rng), 0u);
    EXPECT_EQ(p.nextAddr(rng), 64u);
}

TEST(RandomPattern, StaysInRegionAndAligned)
{
    Rng rng(2);
    RandomPattern p(0x10000, 4096, 8);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t a = p.nextAddr(rng);
        EXPECT_GE(a, 0x10000u);
        EXPECT_LT(a, 0x11000u);
        EXPECT_EQ(a % 8, 0u);
    }
}

TEST(RandomPattern, CoversRegion)
{
    Rng rng(3);
    RandomPattern p(0, 64, 8); // 8 slots
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(p.nextAddr(rng));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(HotspotPattern, SkewConcentratesHead)
{
    Rng rng(4);
    HotspotPattern p(0, 8192, 2.0);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 10000; ++i)
        ++counts[p.nextAddr(rng)];
    // The hottest slot should absorb far more than uniform share.
    int max_count = 0;
    for (const auto &kv : counts)
        max_count = std::max(max_count, kv.second);
    EXPECT_GT(max_count, 10000 / 1024 * 20);
}

TEST(PointerChasePattern, FullPeriodPermutation)
{
    Rng rng(5);
    PointerChasePattern p(0, 64, 64);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 64; ++i)
        seen.insert(p.nextAddr(rng));
    EXPECT_EQ(seen.size(), 64u); // visits every node exactly once
}

TEST(PointerChasePattern, NoSpatialLocality)
{
    Rng rng(6);
    PointerChasePattern p(0, 1024, 64);
    std::uint64_t prev = p.nextAddr(rng);
    int adjacent = 0;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t cur = p.nextAddr(rng);
        const std::uint64_t dist =
            cur > prev ? cur - prev : prev - cur;
        if (dist <= 64)
            ++adjacent;
        prev = cur;
    }
    EXPECT_LT(adjacent, 20);
}

TEST(PointerChasePattern, ResetRestarts)
{
    Rng rng(7);
    PointerChasePattern p(0, 16, 64);
    const std::uint64_t first = p.nextAddr(rng);
    p.nextAddr(rng);
    p.reset();
    EXPECT_EQ(p.nextAddr(rng), first);
}

TEST(MixturePattern, DrawsFromAllComponents)
{
    Rng rng(8);
    MixturePattern mix;
    mix.add(std::make_unique<SequentialPattern>(0x0, 64, 8), 1.0);
    mix.add(std::make_unique<SequentialPattern>(0x100000, 64, 8), 1.0);
    EXPECT_EQ(mix.components(), 2u);

    int low = 0, high = 0;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t a = mix.nextAddr(rng);
        if (a < 0x1000)
            ++low;
        else
            ++high;
    }
    EXPECT_GT(low, 300);
    EXPECT_GT(high, 300);
}

TEST(MixturePattern, WeightsRespected)
{
    Rng rng(9);
    MixturePattern mix;
    mix.add(std::make_unique<SequentialPattern>(0x0, 64, 8), 9.0);
    mix.add(std::make_unique<SequentialPattern>(0x100000, 64, 8), 1.0);

    int low = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        low += mix.nextAddr(rng) < 0x1000;
    EXPECT_NEAR(static_cast<double>(low) / n, 0.9, 0.03);
}

TEST(MixturePattern, ResetPropagates)
{
    Rng rng(10);
    MixturePattern mix;
    mix.add(std::make_unique<SequentialPattern>(0x0, 64, 8), 1.0);
    mix.nextAddr(rng);
    mix.nextAddr(rng);
    mix.reset();
    // After reset the sequential component starts from its base again;
    // the next draw from it must be the base address.
    EXPECT_EQ(mix.nextAddr(rng), 0x0u);
}

} // anonymous namespace
