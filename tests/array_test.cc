/**
 * @file
 * Unit tests for the SRAM array: functional storage, event counting,
 * and — crucially — the column-selection failure semantics that
 * motivate the paper.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sram/array.hh"

namespace
{

using namespace c8t::sram;

ArrayGeometry
smallGeom()
{
    ArrayGeometry g;
    g.rows = 8;
    g.bytesPerRow = 32;
    g.interleaveDegree = 4;
    return g;
}

RowData
patternRow(std::uint32_t bytes, std::uint8_t seed)
{
    RowData r(bytes);
    for (std::uint32_t i = 0; i < bytes; ++i)
        r[i] = static_cast<std::uint8_t>(seed + i);
    return r;
}

TEST(SRAMArray, StartsZeroed)
{
    SRAMArray a(smallGeom());
    for (std::uint32_t row = 0; row < 8; ++row)
        for (std::uint8_t byte : a.peekRow(row))
            EXPECT_EQ(byte, 0);
}

TEST(SRAMArray, RejectsBadGeometry)
{
    ArrayGeometry g = smallGeom();
    g.rows = 0;
    EXPECT_THROW(SRAMArray{g}, std::invalid_argument);

    g = smallGeom();
    g.bytesPerRow = 30; // not a multiple of 8
    EXPECT_THROW(SRAMArray{g}, std::invalid_argument);

    g = smallGeom();
    g.interleaveDegree = 3; // 4 words not divisible by 3
    EXPECT_THROW(SRAMArray{g}, std::invalid_argument);
}

TEST(SRAMArray, WriteReadRoundTrip)
{
    SRAMArray a(smallGeom());
    const RowData data = patternRow(32, 7);
    a.writeRow(3, data);
    EXPECT_EQ(a.readRow(3), data);
}

TEST(SRAMArray, ReadCountsPrechargeAndRead)
{
    SRAMArray a(smallGeom());
    RowData out;
    a.readRowInto(0, out);
    a.readRowInto(1, out);
    EXPECT_EQ(a.rowReads(), 2u);
    EXPECT_EQ(a.precharges(), 2u);
    EXPECT_EQ(a.rowWrites(), 0u);
}

TEST(SRAMArray, WriteCounts)
{
    SRAMArray a(smallGeom());
    a.writeRow(0, patternRow(32, 1));
    a.mergeBytes(0, 8, std::vector<std::uint8_t>(8, 0xff));
    EXPECT_EQ(a.rowWrites(), 2u);
}

TEST(SRAMArray, PeekPokeAreUncounted)
{
    SRAMArray a(smallGeom());
    a.pokeRow(0, patternRow(32, 9));
    (void)a.peekRow(0);
    EXPECT_EQ(a.rowReads(), 0u);
    EXPECT_EQ(a.rowWrites(), 0u);
}

TEST(SRAMArray, MergeBytesOnlyChangesRange)
{
    SRAMArray a(smallGeom());
    a.pokeRow(2, patternRow(32, 3));
    const RowData before = a.peekRow(2);

    a.mergeBytes(2, 16, std::vector<std::uint8_t>(4, 0xee));

    const RowData &after = a.peekRow(2);
    for (std::uint32_t i = 0; i < 32; ++i) {
        if (i >= 16 && i < 20)
            EXPECT_EQ(after[i], 0xee);
        else
            EXPECT_EQ(after[i], before[i]) << "byte " << i;
    }
}

TEST(SRAMArray, UnsafePartialWriteCorruptsHalfSelectedCells)
{
    // The column-selection failure: writing one word of an interleaved
    // shared-WWL row clobbers the rest of the row.
    SRAMArray a(smallGeom());
    a.pokeRow(1, patternRow(32, 5));
    const RowData before = a.peekRow(1);

    a.writePartialUnsafe(1, 8, std::vector<std::uint8_t>(8, 0x77));

    const RowData &after = a.peekRow(1);
    // The selected range carries the written data...
    for (std::uint32_t i = 8; i < 16; ++i)
        EXPECT_EQ(after[i], 0x77);
    // ...and at least some half-selected bytes were corrupted.
    bool corrupted = false;
    for (std::uint32_t i = 0; i < 32; ++i) {
        if (i >= 8 && i < 16)
            continue;
        corrupted |= after[i] != before[i];
    }
    EXPECT_TRUE(corrupted);
    EXPECT_GT(a.halfSelectCorruptions(), 0u);
}

TEST(SRAMArray, WordGranularWwlMakesAlignedPartialWritesSafe)
{
    // Chang et al.: segmented write word lines remove the hazard for
    // word-aligned writes.
    ArrayGeometry g = smallGeom();
    g.wordGranularWwl = true;
    g.interleaveDegree = 1;
    SRAMArray a(g);
    a.pokeRow(1, patternRow(32, 5));
    const RowData before = a.peekRow(1);

    a.writePartialUnsafe(1, 8, std::vector<std::uint8_t>(8, 0x77));

    const RowData &after = a.peekRow(1);
    for (std::uint32_t i = 0; i < 32; ++i) {
        if (i >= 8 && i < 16)
            EXPECT_EQ(after[i], 0x77);
        else
            EXPECT_EQ(after[i], before[i]);
    }
    EXPECT_EQ(a.halfSelectCorruptions(), 0u);
}

TEST(SRAMArray, UnalignedPartialWriteUnsafeEvenWithSegmentedWwl)
{
    ArrayGeometry g = smallGeom();
    g.wordGranularWwl = true;
    g.interleaveDegree = 1;
    SRAMArray a(g);
    a.pokeRow(0, patternRow(32, 1));

    // 4-byte (sub-word) write cannot use the word-granular path.
    a.writePartialUnsafe(0, 4, std::vector<std::uint8_t>(4, 0x11));
    EXPECT_GT(a.halfSelectCorruptions(), 0u);
}

TEST(SRAMArray, RmwSequenceIsSafe)
{
    // Read row, merge, write row: the canonical safe write.
    SRAMArray a(smallGeom());
    a.pokeRow(4, patternRow(32, 11));
    const RowData before = a.peekRow(4);

    RowData row = a.readRow(4);
    for (std::uint32_t i = 0; i < 8; ++i)
        row[i] = 0xab;
    a.writeRow(4, row);

    const RowData &after = a.peekRow(4);
    for (std::uint32_t i = 0; i < 32; ++i) {
        if (i < 8)
            EXPECT_EQ(after[i], 0xab);
        else
            EXPECT_EQ(after[i], before[i]);
    }
    EXPECT_EQ(a.halfSelectCorruptions(), 0u);
}

TEST(SRAMArray, PhysicalBitViewMatchesLogicalBytes)
{
    SRAMArray a(smallGeom());
    RowData row(32, 0);
    row[0] = 0x01; // word 0, bit 0
    row[8] = 0x80; // word 1, bit 7
    a.pokeRow(0, row);

    const auto &map = a.map();
    EXPECT_TRUE(a.physicalBit(0, map.toPhysical(0, 0)));
    EXPECT_TRUE(a.physicalBit(0, map.toPhysical(1, 7)));
    EXPECT_FALSE(a.physicalBit(0, map.toPhysical(0, 1)));
}

TEST(SRAMArray, FlipPhysicalBitRoundTrips)
{
    SRAMArray a(smallGeom());
    for (std::uint32_t col = 0; col < a.geometry().columns(); col += 37) {
        EXPECT_FALSE(a.physicalBit(0, col));
        a.flipPhysicalBit(0, col);
        EXPECT_TRUE(a.physicalBit(0, col));
        a.flipPhysicalBit(0, col);
        EXPECT_FALSE(a.physicalBit(0, col));
    }
}

TEST(SRAMArray, ResetCountersKeepsContents)
{
    SRAMArray a(smallGeom());
    a.writeRow(0, patternRow(32, 2));
    a.resetCounters();
    EXPECT_EQ(a.rowWrites(), 0u);
    EXPECT_EQ(a.peekRow(0), patternRow(32, 2));
}

TEST(ArrayGeometry, DerivedQuantities)
{
    ArrayGeometry g;
    g.rows = 512;
    g.bytesPerRow = 128;
    EXPECT_EQ(g.wordsPerRow(), 16u);
    EXPECT_EQ(g.columns(), 1024u);
}

} // anonymous namespace
