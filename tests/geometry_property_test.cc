/**
 * @file
 * Cache-geometry property suite: the correctness invariants and the
 * paper's dominance relations must hold for *every* cache shape, not
 * just the baseline. Runs the cross-scheme equivalence over a grid of
 * sizes, associativities and block sizes.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/controller.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t;
using core::CacheController;
using core::ControllerConfig;
using core::WriteScheme;

struct Shape
{
    std::uint64_t sizeKb;
    std::uint32_t ways;
    std::uint32_t blockBytes;
};

class GeometryProperty : public ::testing::TestWithParam<Shape>
{};

std::string
shapeName(const ::testing::TestParamInfo<Shape> &info)
{
    return std::to_string(info.param.sizeKb) + "KB_" +
           std::to_string(info.param.ways) + "w_" +
           std::to_string(info.param.blockBytes) + "B";
}

TEST_P(GeometryProperty, AllSchemesAgreeOnEveryRead)
{
    const Shape shape = GetParam();
    mem::CacheConfig cache{shape.sizeKb * 1024, shape.ways,
                           shape.blockBytes};

    std::vector<std::unique_ptr<mem::FunctionalMemory>> memories;
    std::vector<std::unique_ptr<CacheController>> controllers;
    for (WriteScheme s :
         {WriteScheme::SixTDirect, WriteScheme::Rmw,
          WriteScheme::WriteGrouping,
          WriteScheme::WriteGroupingReadBypass}) {
        ControllerConfig cfg;
        cfg.cache = cache;
        cfg.scheme = s;
        memories.push_back(std::make_unique<mem::FunctionalMemory>());
        controllers.push_back(
            std::make_unique<CacheController>(cfg, *memories.back()));
    }

    trace::MarkovStream gen(trace::specProfile("gcc"));
    trace::MemAccess a;
    for (std::uint64_t i = 0; i < 30'000; ++i) {
        ASSERT_TRUE(gen.next(a));
        std::uint64_t reference = 0;
        for (std::size_t c = 0; c < controllers.size(); ++c) {
            const core::AccessOutcome out = controllers[c]->access(a);
            if (!a.isRead())
                continue;
            if (c == 0) {
                reference = out.data;
                // The 6T reference must equal the generator's shadow.
                ASSERT_EQ(out.data, gen.shadowValue(a.addr))
                    << "access " << i;
            } else {
                ASSERT_EQ(out.data, reference)
                    << toString(controllers[c]->config().scheme)
                    << " at access " << i;
            }
        }
    }
}

TEST_P(GeometryProperty, DominanceRelationsHold)
{
    const Shape shape = GetParam();
    mem::CacheConfig cache{shape.sizeKb * 1024, shape.ways,
                           shape.blockBytes};

    std::uint64_t demand[3] = {};
    const WriteScheme schemes[] = {WriteScheme::Rmw,
                                   WriteScheme::WriteGrouping,
                                   WriteScheme::WriteGroupingReadBypass};
    for (int s = 0; s < 3; ++s) {
        trace::MarkovStream gen(trace::specProfile("leslie3d"));
        mem::FunctionalMemory memory;
        ControllerConfig cfg;
        cfg.cache = cache;
        cfg.scheme = schemes[s];
        CacheController c(cfg, memory);
        trace::MemAccess a;
        for (std::uint64_t i = 0; i < 30'000; ++i) {
            ASSERT_TRUE(gen.next(a));
            c.access(a);
        }
        c.drain();
        demand[s] = c.demandAccesses();
    }
    EXPECT_LE(demand[1], demand[0]); // WG <= RMW
    EXPECT_LE(demand[2], demand[1]); // WG+RB <= WG
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryProperty,
    ::testing::Values(Shape{16, 2, 16}, Shape{16, 1, 32},
                      Shape{32, 4, 64}, Shape{64, 4, 32},
                      Shape{64, 8, 32}, Shape{128, 8, 64},
                      Shape{256, 16, 32}, Shape{8, 2, 64}),
    shapeName);

} // anonymous namespace
