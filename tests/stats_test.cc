/**
 * @file
 * Unit tests for the statistics substrate.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/counter.hh"
#include "stats/distribution.hh"
#include "stats/registry.hh"
#include "stats/table.hh"

namespace
{

using namespace c8t::stats;

TEST(Counter, StartsAtZero)
{
    Counter c("a", "desc");
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementsByOneAndN)
{
    Counter c("a", "desc");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, OperatorSugar)
{
    Counter c("a", "desc");
    ++c;
    c += 9;
    EXPECT_EQ(c.value(), 10u);
}

TEST(Counter, ResetClears)
{
    Counter c("a", "desc");
    c.inc(5);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, KeepsNameAndDesc)
{
    Counter c("cache.hits", "demand hits");
    EXPECT_EQ(c.name(), "cache.hits");
    EXPECT_EQ(c.desc(), "demand hits");
}

TEST(Gauge, AddAndSet)
{
    Gauge g("g", "d");
    g.add(1.5);
    g.add(-0.5);
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
    g.set(7.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Formula, EvaluatesLazily)
{
    Counter c("c", "d");
    Formula f("f", "d", [&] { return c.value() * 2.0; });
    c.inc(3);
    EXPECT_DOUBLE_EQ(f.value(), 6.0);
    c.inc(1);
    EXPECT_DOUBLE_EQ(f.value(), 8.0);
}

TEST(Formula, UnboundReturnsZero)
{
    Formula f;
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
}

TEST(SafeRatio, HandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(safeRatio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(safeRatio(5, 10), 0.5);
    EXPECT_DOUBLE_EQ(safePercent(1, 4), 25.0);
}

TEST(Distribution, MeanMinMax)
{
    Distribution d("d", "desc", 0, 100, 10);
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
}

TEST(Distribution, WeightedSamples)
{
    Distribution d("d", "desc", 0, 10, 10);
    d.sample(2.0, 3);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Distribution, VarianceOfConstantIsZero)
{
    Distribution d("d", "desc", 0, 10, 10);
    for (int i = 0; i < 100; ++i)
        d.sample(5.0);
    EXPECT_NEAR(d.variance(), 0.0, 1e-9);
}

TEST(Distribution, VarianceMatchesKnownValues)
{
    Distribution d("d", "desc", 0, 10, 10);
    d.sample(1.0);
    d.sample(3.0);
    // mean 2, population variance = ((1)^2+(1)^2)/2 = 1.
    EXPECT_NEAR(d.variance(), 1.0, 1e-12);
    EXPECT_NEAR(d.stddev(), 1.0, 1e-12);
}

TEST(Distribution, UnderflowOverflowBins)
{
    Distribution d("d", "desc", 0, 10, 5);
    d.sample(-1.0);
    d.sample(10.0);
    d.sample(100.0);
    d.sample(5.0);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.count(), 4u);
}

TEST(Distribution, BucketBoundaries)
{
    Distribution d("d", "desc", 0, 10, 5);
    EXPECT_DOUBLE_EQ(d.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(d.bucketHigh(0), 2.0);
    EXPECT_DOUBLE_EQ(d.bucketLow(4), 8.0);
    EXPECT_DOUBLE_EQ(d.bucketHigh(4), 10.0);
}

TEST(Distribution, PercentileApproximation)
{
    Distribution d("d", "desc", 0, 100, 100);
    for (int i = 0; i < 100; ++i)
        d.sample(i + 0.5);
    const double p50 = d.percentile(50);
    EXPECT_GT(p50, 40.0);
    EXPECT_LT(p50, 60.0);
    const double p95 = d.percentile(95);
    EXPECT_GT(p95, 90.0);
}

TEST(Distribution, ResetClearsEverything)
{
    Distribution d("d", "desc", 0, 10, 5);
    d.sample(5.0);
    d.sample(100.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.overflow(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Registry, RegistersAndLooksUp)
{
    Registry reg;
    Counter c("a.b", "d");
    Gauge g("a.g", "d");
    Distribution d("a.d", "d", 0, 1, 2);
    reg.add(c);
    reg.add(g);
    reg.add(d);
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.counter("a.b"), &c);
    EXPECT_EQ(reg.gauge("a.g"), &g);
    EXPECT_EQ(reg.distribution("a.d"), &d);
    EXPECT_EQ(reg.counter("missing"), nullptr);
}

TEST(Registry, ResetAllZeroesEverything)
{
    Registry reg;
    Counter c("c", "d");
    Gauge g("g", "d");
    reg.add(c);
    reg.add(g);
    c.inc(10);
    g.set(3.0);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Registry, DumpContainsNamesAndValues)
{
    Registry reg;
    Counter c("cache.hits", "demand hits");
    c.inc(7);
    reg.add(c);
    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("cache.hits"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("demand hits"), std::string::npos);
}

TEST(Registry, SortedIteration)
{
    Registry reg;
    Counter c2("b", "d");
    Counter c1("a", "d");
    reg.add(c2);
    reg.add(c1);
    const auto all = reg.counters();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0]->name(), "a");
    EXPECT_EQ(all[1]->name(), "b");
}

TEST(Table, RendersAlignedColumns)
{
    Table t("caption");
    t.setHeader({"bench", "value"});
    t.addRow({std::string("bwaves"), 47.25});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("caption"), std::string::npos);
    EXPECT_NE(out.find("bwaves"), std::string::npos);
    EXPECT_NE(out.find("47.25"), std::string::npos);
    EXPECT_NE(out.find("| bench"), std::string::npos);
}

TEST(Table, CsvQuotingRfc4180)
{
    Table t;
    t.setHeader({"name", "note"});
    t.addRow({std::string("a,b"), std::string("say \"hi\"")});
    std::ostringstream os;
    t.printCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"a,b\""), std::string::npos);
    EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, PrecisionControl)
{
    Table t;
    t.setHeader({"v"});
    t.setPrecision(1);
    t.addRow({3.14159});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3.1"), std::string::npos);
    EXPECT_EQ(os.str().find("3.14"), std::string::npos);
}

TEST(Table, ColumnMeanSkipsText)
{
    Table t;
    t.setHeader({"name", "v"});
    t.addRow({std::string("x"), 10.0});
    t.addRow({std::string("y"), 20.0});
    t.addRow({std::string("z"), std::int64_t{30}});
    EXPECT_DOUBLE_EQ(columnMean(t, 1), 20.0);
    EXPECT_DOUBLE_EQ(columnMean(t, 0), 0.0);
}

TEST(Table, IntegerCellsRenderWithoutDecimals)
{
    Table t;
    t.setHeader({"n"});
    t.addRow({std::int64_t{42}});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("42"), std::string::npos);
    EXPECT_EQ(os.str().find("42.00"), std::string::npos);
}

} // anonymous namespace
