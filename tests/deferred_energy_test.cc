/**
 * @file
 * Tests of the deferred (count-then-multiply) energy accounting.
 *
 * The controller's hot path increments integer event counters only;
 * dynamicEnergy() materializes joules on demand (DESIGN.md §7). The
 * audit hook fires at every point the historical implementation added
 * to its running total, in the same order — so a sequential per-event
 * accumulation built from the hook must agree with the materialized
 * value to summation-order rounding (ULPs) on golden streams, for
 * every write scheme. Interval consumers (the MultiSchemeRunner hook
 * feeding obs::IntervalSnapshotter) must still observe monotone
 * non-decreasing energy per window.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/controller.hh"
#include "core/simulator.hh"
#include "mem/functional_mem.hh"
#include "obs/snapshot.hh"
#include "stats/registry.hh"
#include "trace/markov_stream.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace c8t::core;
using c8t::mem::FunctionalMemory;
using c8t::trace::MarkovStream;
using c8t::trace::MemAccess;
using c8t::trace::specProfile;

/** Sequential reference accumulator fed by the audit hook: replays
 *  the historical per-access `_dynamicEnergy +=` accumulation. */
struct ReferenceAccumulator
{
    const CacheController *ctrl = nullptr;
    double energy = 0.0;
    std::uint64_t events = 0;

    static void hook(void *ctx, CacheController::EnergyEvent ev,
                     std::uint32_t bytes)
    {
        auto *self = static_cast<ReferenceAccumulator *>(ctx);
        const auto &em = self->ctrl->energyModel();
        ++self->events;
        switch (ev) {
          case CacheController::EnergyEvent::RowRead:
            self->energy += em.rowReadEnergy();
            break;
          case CacheController::EnergyEvent::RowWrite:
            self->energy += em.rowWriteEnergy();
            break;
          case CacheController::EnergyEvent::PartialWrite:
            self->energy += em.partialWriteEnergy(bytes);
            break;
          case CacheController::EnergyEvent::SetBufferRead:
            self->energy += em.setBufferReadEnergy(bytes);
            break;
          case CacheController::EnergyEvent::SetBufferWrite:
            self->energy += em.setBufferWriteEnergy(bytes);
            break;
          case CacheController::EnergyEvent::TagCompare:
            self->energy += em.tagCompareEnergy(
                self->ctrl->tags().layout().tagBits(),
                self->ctrl->config().cache.ways);
            break;
        }
    }
};

/** Total events implied by the deferred counters. */
std::uint64_t
countedEvents(const CacheController::EnergyCounts &c)
{
    std::uint64_t n = c.rowReads + c.rowWrites + c.setBufferReadRows +
                      c.setBufferWriteRows + c.tagCompares;
    for (int b = 1; b <= 8; ++b)
        n += c.partialWrites[b] + c.setBufferReads[b] +
             c.setBufferWrites[b];
    return n;
}

class DeferredEnergyScheme
    : public ::testing::TestWithParam<WriteScheme>
{};

TEST_P(DeferredEnergyScheme, MaterializationMatchesSequentialSum)
{
    ControllerConfig cfg;
    cfg.scheme = GetParam();
    FunctionalMemory memory;
    CacheController ctrl(cfg, memory);

    ReferenceAccumulator ref;
    ref.ctrl = &ctrl;
    ctrl.setEnergyAudit(&ReferenceAccumulator::hook, &ref);

    MarkovStream gen(specProfile("gcc"));
    MemAccess a;
    for (int i = 0; i < 40'000 && gen.next(a); ++i)
        ctrl.access(a);
    ctrl.drain();

    ASSERT_GT(ref.events, 0u);
    EXPECT_EQ(countedEvents(ctrl.energyCounts()), ref.events);

    // Same addends, different summation order: agreement to ULPs.
    const double got = ctrl.dynamicEnergy();
    ASSERT_GT(got, 0.0);
    EXPECT_NEAR(got, ref.energy, 1e-9 * std::abs(ref.energy));
}

TEST_P(DeferredEnergyScheme, ChunkedReplayAuditsIdentically)
{
    // accessChunk() must fire the same audit sequence (hence the same
    // counters and energy) as per-access replay of the same stream.
    ControllerConfig cfg;
    cfg.scheme = GetParam();

    FunctionalMemory memA, memB;
    CacheController perAccess(cfg, memA);
    CacheController chunked(cfg, memB);

    ReferenceAccumulator refA, refB;
    refA.ctrl = &perAccess;
    refB.ctrl = &chunked;
    perAccess.setEnergyAudit(&ReferenceAccumulator::hook, &refA);
    chunked.setEnergyAudit(&ReferenceAccumulator::hook, &refB);

    std::vector<MemAccess> stream;
    MarkovStream gen(specProfile("leslie3d"));
    MemAccess a;
    for (int i = 0; i < 20'000 && gen.next(a); ++i)
        stream.push_back(a);

    for (const MemAccess &m : stream)
        perAccess.access(m);
    for (std::size_t at = 0; at < stream.size(); at += 1000)
        chunked.accessChunk(stream.data() + at,
                            std::min<std::size_t>(
                                1000, stream.size() - at));

    EXPECT_EQ(refA.events, refB.events);
    EXPECT_DOUBLE_EQ(refA.energy, refB.energy);
    EXPECT_DOUBLE_EQ(perAccess.dynamicEnergy(), chunked.dynamicEnergy());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, DeferredEnergyScheme,
    ::testing::Values(WriteScheme::SixTDirect, WriteScheme::Rmw,
                      WriteScheme::LocalRmw, WriteScheme::WordGranular,
                      WriteScheme::WriteGrouping,
                      WriteScheme::WriteGroupingReadBypass),
    [](const ::testing::TestParamInfo<WriteScheme> &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(DeferredEnergy, ResetStatsClearsCounts)
{
    ControllerConfig cfg;
    cfg.scheme = WriteScheme::Rmw;
    FunctionalMemory memory;
    CacheController ctrl(cfg, memory);

    MarkovStream gen(specProfile("gcc"));
    MemAccess a;
    for (int i = 0; i < 2'000 && gen.next(a); ++i)
        ctrl.access(a);
    ASSERT_GT(ctrl.dynamicEnergy(), 0.0);

    ctrl.resetStats();
    EXPECT_EQ(countedEvents(ctrl.energyCounts()), 0u);
    EXPECT_EQ(ctrl.dynamicEnergy(), 0.0);
}

TEST(DeferredEnergy, IntervalWindowsSeeMonotoneEnergy)
{
    // The runner's interval hook (the feed for IntervalSnapshotter
    // time series) must observe non-decreasing materialized energy at
    // every window boundary, for every scheme in the run.
    std::vector<ControllerConfig> cfgs(3);
    cfgs[0].scheme = WriteScheme::Rmw;
    cfgs[1].scheme = WriteScheme::WriteGrouping;
    cfgs[2].scheme = WriteScheme::WriteGroupingReadBypass;
    MultiSchemeRunner runner(cfgs);

    // A snapshotter on controller 0's registry rides along, proving
    // the counter time-series path still works over chunked replay.
    c8t::stats::Registry reg;
    runner.controller(0).registerStats(reg);
    std::ostringstream series;
    c8t::obs::IntervalSnapshotter snap(reg, series, "rmw");

    std::vector<std::vector<double>> perWindow(cfgs.size());
    runner.setIntervalHook(5'000, [&](std::uint64_t done) {
        snap.sample(done);
        for (std::size_t c = 0; c < cfgs.size(); ++c)
            perWindow[c].push_back(runner.controller(c).dynamicEnergy());
    });

    MarkovStream gen(specProfile("gcc"));
    RunConfig run;
    run.warmupAccesses = 10'000;
    run.measureAccesses = 50'000;
    runner.run(gen, run);

    EXPECT_EQ(snap.samples(), 10u);
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        ASSERT_EQ(perWindow[c].size(), 10u) << "scheme " << c;
        EXPECT_GT(perWindow[c].front(), 0.0) << "scheme " << c;
        for (std::size_t i = 1; i < perWindow[c].size(); ++i)
            EXPECT_GE(perWindow[c][i], perWindow[c][i - 1])
                << "scheme " << c << " window " << i;
    }

    // One JSON line per sample.
    const std::string text = series.str();
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(text.begin(), text.end(), '\n')),
              snap.samples());
}

} // namespace
