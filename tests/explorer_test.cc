/**
 * @file
 * Tests for the design-space explorer (core/explorer.hh).
 *
 * The contracts pinned here:
 *   - determinism: the result document is byte-identical for any
 *     worker count and any shard execution order;
 *   - resumability: an interrupted explore (shard budget) resumed
 *     from its checkpoint directory reproduces the byte-identical
 *     document of an uninterrupted run, and re-running over a
 *     complete directory re-executes nothing;
 *   - safety: checkpoints from a different spec are rejected;
 *   - dedup: the workload-major expansion keeps the stream-cache hit
 *     rate high (the tentpole's perf claim).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/explorer.hh"
#include "sram/vmodel.hh"

namespace
{

using namespace c8t;
using core::DesignPointSummary;
using core::ExploreResult;
using core::ExplorerSpec;
using core::RunConfig;
using core::WriteScheme;

RunConfig
testWindow()
{
    RunConfig rc;
    rc.warmupAccesses = 500;
    rc.measureAccesses = 3'000;
    return rc;
}

/** 8 cells (2 workloads × 2 sizes × 2 ways), 2 schemes × 2 grid
 *  points = 32 config-runs; 3 cells/shard makes the last shard
 *  ragged. */
ExplorerSpec
testSpec()
{
    ExplorerSpec spec;
    spec.label = "explorer_test";
    spec.workloads = {"gcc", "mcf"};
    spec.sizesKb = {16, 32};
    spec.ways = {2, 4};
    spec.blocks = {32};
    spec.replacements = {mem::ReplKind::Lru};
    spec.schemes = {WriteScheme::Rmw,
                    WriteScheme::WriteGroupingReadBypass};
    spec.vddGrid = {1.0, 0.8};
    spec.cellsPerShard = 3;
    spec.faultRows = 128;
    return spec;
}

std::string
dump(const ExploreResult &r)
{
    std::ostringstream os;
    r.dumpJson(os);
    return os.str();
}

/** RAII temp checkpoint directory. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/c8t_explorer_test_XXXXXX";
        path = mkdtemp(tmpl);
    }

    ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(Explorer, SpecValidation)
{
    EXPECT_NO_THROW(testSpec().validate());

    ExplorerSpec no_workloads = testSpec();
    no_workloads.workloads.clear();
    EXPECT_THROW(no_workloads.validate(), std::invalid_argument);

    ExplorerSpec unknown = testSpec();
    unknown.workloads.push_back("no_such_profile");
    EXPECT_THROW(unknown.validate(), std::invalid_argument);

    ExplorerSpec ascending = testSpec();
    ascending.vddGrid = {0.8, 1.0};
    EXPECT_THROW(ascending.validate(), std::invalid_argument);

    ExplorerSpec zero_shard = testSpec();
    zero_shard.cellsPerShard = 0;
    EXPECT_THROW(zero_shard.validate(), std::invalid_argument);

    EXPECT_EQ(testSpec().cellCount(), 8u);
    EXPECT_EQ(testSpec().runsPerCell(), 4u);
    EXPECT_EQ(testSpec().configRunCount(), 32u);
    EXPECT_EQ(testSpec().shardCount(), 3u);
}

TEST(Explorer, ResultIsWorkerCountAndShardOrderInvariant)
{
    const ExploreResult base = runExplore(testSpec(), testWindow(), 1);
    ASSERT_TRUE(base.completed);
    EXPECT_EQ(base.cellsTotal, 8u);
    EXPECT_EQ(base.cellsSkipped, 0u);
    EXPECT_EQ(base.shardsExecuted, 3u);
    EXPECT_EQ(base.configRunsExecuted, 32u);
    const std::string expect = dump(base);

    for (unsigned workers : {2u, 8u}) {
        const ExploreResult r =
            runExplore(testSpec(), testWindow(), workers);
        EXPECT_EQ(dump(r), expect) << workers << " workers";
    }

    ExplorerSpec shuffled = testSpec();
    shuffled.shuffleShards = true;
    shuffled.shuffleSeed = 99;
    const ExploreResult r = runExplore(shuffled, testWindow(), 2);
    EXPECT_EQ(dump(r), expect);
}

TEST(Explorer, InterruptAndResumeIsByteIdentical)
{
    const std::string expect =
        dump(runExplore(testSpec(), testWindow(), 2));

    TempDir dir;
    ExplorerSpec spec = testSpec();
    spec.checkpointDir = dir.path;

    // "Kill" after one shard: the budget runs out with work left.
    ExplorerSpec interrupted = spec;
    interrupted.maxShards = 1;
    {
        const ExploreResult r =
            runExplore(interrupted, testWindow(), 2);
        EXPECT_FALSE(r.completed);
        EXPECT_EQ(r.shardsExecuted, 1u);
        EXPECT_EQ(r.shardsResumed, 0u);
        // The incomplete document is a stub without frontiers.
        EXPECT_NE(dump(r).find("\"completed\":false"),
                  std::string::npos);
        EXPECT_NE(dump(r).find("\"frontiers\":[]"), std::string::npos);
    }

    // Resume: the completed shard is loaded, the rest executed; the
    // document is byte-identical to the uninterrupted run's. Resume
    // under a different worker count and a shuffled order to stack
    // the invariances.
    ExplorerSpec resumed = spec;
    resumed.shuffleShards = true;
    resumed.shuffleSeed = 7;
    {
        const ExploreResult r = runExplore(resumed, testWindow(), 1);
        EXPECT_TRUE(r.completed);
        EXPECT_EQ(r.shardsResumed, 1u);
        EXPECT_EQ(r.shardsExecuted, 2u);
        EXPECT_EQ(dump(r), expect);
    }

    // Re-run over the now-complete directory: nothing executes.
    {
        const ExploreResult r = runExplore(spec, testWindow(), 2);
        EXPECT_TRUE(r.completed);
        EXPECT_EQ(r.shardsResumed, 3u);
        EXPECT_EQ(r.shardsExecuted, 0u);
        EXPECT_EQ(r.configRunsExecuted, 0u);
        EXPECT_EQ(dump(r), expect);
    }
}

TEST(Explorer, CheckpointFromDifferentSpecIsRejected)
{
    TempDir dir;
    ExplorerSpec spec = testSpec();
    spec.checkpointDir = dir.path;
    { runExplore(spec, testWindow(), 2); }

    // A different grid changes the signature.
    ExplorerSpec other = spec;
    other.vddGrid = {1.0, 0.9};
    EXPECT_THROW(runExplore(other, testWindow(), 2),
                 std::invalid_argument);

    // So does a different run window.
    RunConfig longer = testWindow();
    longer.measureAccesses *= 2;
    EXPECT_THROW(runExplore(spec, longer, 2), std::invalid_argument);
}

TEST(Explorer, StreamCacheDedupKeepsHitRateHigh)
{
    // 4 geometries × 2 grid points per workload = 8 acquires of the
    // same stream: 1 miss + 7 hits → 87.5 % (the acceptance bar is
    // > 50 % on a dedup-friendly grid).
    const ExploreResult r = runExplore(testSpec(), testWindow(), 1);
    EXPECT_GT(r.streamCacheHitRate, 0.5);
}

TEST(Explorer, InvalidGeometriesAreSkippedDeterministically)
{
    ExplorerSpec spec = testSpec();
    // A 16 KiB cache cannot be 512-way × 32 B (sets would vanish);
    // those cells must be skipped, not fail the explore.
    spec.ways = {2, 512};
    const ExploreResult a = runExplore(spec, testWindow(), 2);
    ASSERT_TRUE(a.completed);
    EXPECT_GT(a.cellsSkipped, 0u);
    EXPECT_LT(a.cellsSkipped, a.cellsTotal);
    EXPECT_EQ(a.summaries.size(),
              (a.cellsTotal - a.cellsSkipped) * spec.schemes.size());
    const ExploreResult b = runExplore(spec, testWindow(), 1);
    EXPECT_EQ(dump(a), dump(b));
}

TEST(Explorer, NominalOnlyGridRunsDetached)
{
    ExplorerSpec spec = testSpec();
    spec.vddGrid.clear(); // nominal-only
    const ExploreResult r = runExplore(spec, testWindow(), 2);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.configRunsExecuted, 16u); // one grid point, 2 schemes
    for (const DesignPointSummary &p : r.summaries) {
        EXPECT_TRUE(p.operational);
        EXPECT_EQ(p.minVdd, spec.model.nominalVdd);
        EXPECT_GT(p.energyPerAccess, 0.0);
        EXPECT_GT(p.cyclesPerAccess, 0.0);
    }
}

TEST(Explorer, FrontierIsTheNonDominatedSet)
{
    const ExploreResult r = runExplore(testSpec(), testWindow(), 2);
    ASSERT_TRUE(r.completed);

    for (const std::string &w : r.workloads) {
        const auto front = r.frontier(w);
        ASSERT_FALSE(front.empty()) << w;

        // Every operational point off the frontier is dominated by
        // some frontier point; no frontier point dominates another.
        for (const DesignPointSummary &p : r.summaries) {
            if (p.workload != w || !p.operational)
                continue;
            bool dominated = false;
            for (const DesignPointSummary *q : front) {
                if (q == &p)
                    continue;
                const bool no_worse =
                    q->energyPerAccess <= p.energyPerAccess &&
                    q->edpPerAccess <= p.edpPerAccess &&
                    q->minVdd <= p.minVdd;
                const bool better =
                    q->energyPerAccess < p.energyPerAccess ||
                    q->edpPerAccess < p.edpPerAccess ||
                    q->minVdd < p.minVdd;
                if (no_worse && better) {
                    dominated = true;
                    break;
                }
            }
            EXPECT_EQ(p.onFrontier, !dominated)
                << w << " " << p.sizeBytes << "/" << p.ways << " "
                << p.scheme;
        }

        // The 8T scheme unlocks a lower min-Vdd than anything the
        // explorer would report for a failing configuration: frontier
        // points are all operational.
        for (const DesignPointSummary *q : front)
            EXPECT_TRUE(q->operational);
    }
}

} // namespace
