/**
 * @file
 * Unit tests for the write-scheme taxonomy and the static traits table.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/policies.hh"
#include "core/write_scheme.hh"

namespace
{

using namespace c8t::core;

const WriteScheme allSchemes[] = {
    WriteScheme::SixTDirect,   WriteScheme::Rmw,
    WriteScheme::LocalRmw,     WriteScheme::WordGranular,
    WriteScheme::WriteGrouping, WriteScheme::WriteGroupingReadBypass,
};

TEST(WriteScheme, NamesRoundTrip)
{
    for (WriteScheme s : allSchemes)
        EXPECT_EQ(parseWriteScheme(toString(s)), s);
    EXPECT_THROW(parseWriteScheme("bogus"), std::invalid_argument);
}

TEST(WriteScheme, GroupingPredicates)
{
    EXPECT_TRUE(usesGroupingBuffer(WriteScheme::WriteGrouping));
    EXPECT_TRUE(usesGroupingBuffer(WriteScheme::WriteGroupingReadBypass));
    EXPECT_FALSE(usesGroupingBuffer(WriteScheme::Rmw));
    EXPECT_FALSE(usesGroupingBuffer(WriteScheme::SixTDirect));
}

TEST(WriteScheme, RmwPredicates)
{
    EXPECT_TRUE(usesRmw(WriteScheme::Rmw));
    EXPECT_TRUE(usesRmw(WriteScheme::LocalRmw));
    EXPECT_TRUE(usesRmw(WriteScheme::WriteGrouping));
    EXPECT_FALSE(usesRmw(WriteScheme::SixTDirect));
    EXPECT_FALSE(usesRmw(WriteScheme::WordGranular));
}

TEST(WriteScheme, BypassOnlyInWgRb)
{
    for (WriteScheme s : allSchemes) {
        EXPECT_EQ(bypassesReads(s),
                  s == WriteScheme::WriteGroupingReadBypass);
    }
}

TEST(SchemeTraits, RmwCostsAnExtraReadPerWrite)
{
    const SchemeTraits t = schemeTraits(WriteScheme::Rmw);
    EXPECT_EQ(t.rowReadsPerWrite, 1u);
    EXPECT_EQ(t.rowWritesPerWrite, 1u);
    EXPECT_EQ(t.writePortUse, c8t::sram::PortUse::BothPorts);
}

TEST(SchemeTraits, SixTWritesAreSingleAccess)
{
    const SchemeTraits t = schemeTraits(WriteScheme::SixTDirect);
    EXPECT_EQ(t.rowReadsPerWrite, 0u);
    EXPECT_EQ(t.rowWritesPerWrite, 1u);
    EXPECT_FALSE(t.requiresEightT);
}

TEST(SchemeTraits, LocalRmwFreesTheReadPort)
{
    // Park et al.'s contribution is purely about port availability.
    const SchemeTraits rmw = schemeTraits(WriteScheme::Rmw);
    const SchemeTraits local = schemeTraits(WriteScheme::LocalRmw);
    EXPECT_EQ(local.rowReadsPerWrite, rmw.rowReadsPerWrite);
    EXPECT_EQ(local.writePortUse, c8t::sram::PortUse::WritePort);
}

TEST(SchemeTraits, WordGranularNeedsNonInterleavedAndMultiBitEcc)
{
    const SchemeTraits t = schemeTraits(WriteScheme::WordGranular);
    EXPECT_TRUE(t.requiresNonInterleaved);
    EXPECT_TRUE(t.requiresMultiBitEcc);
    EXPECT_EQ(t.rowReadsPerWrite, 0u);
}

TEST(SchemeTraits, GroupingSchemesNeedBuffers)
{
    for (WriteScheme s : {WriteScheme::WriteGrouping,
                          WriteScheme::WriteGroupingReadBypass}) {
        const SchemeTraits t = schemeTraits(s);
        EXPECT_TRUE(t.needsGroupingBuffer);
        // The write-back carries a latched row image: write port only.
        EXPECT_EQ(t.writebackPortUse, c8t::sram::PortUse::WritePort);
    }
    EXPECT_TRUE(schemeTraits(WriteScheme::WriteGroupingReadBypass)
                    .canBypassReads);
    EXPECT_FALSE(schemeTraits(WriteScheme::WriteGrouping).canBypassReads);
}

TEST(LatencyParams, DefaultsAreConsistent)
{
    const LatencyParams l;
    // The Set-Buffer must be faster than the array (paper §5.5).
    EXPECT_LT(l.setBufferCycles, l.rowReadCycles);
    EXPECT_GT(l.missPenaltyCycles, l.rowReadCycles);
}

} // anonymous namespace
